package atlarge

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"atlarge/internal/exec"
)

// Runner executes registered experiments across a bounded worker pool. It is
// a thin adapter over the streaming work-plan executor (internal/exec): the
// plan holds one task per (experiment, replica), completions stream back as
// they finish, and collection is positional.
//
// Every (experiment, replica) pair derives its own seed from the base seed,
// and results are collected positionally, so the output is identical for any
// parallelism level — running with Parallelism 8 and Parallelism 1 must and
// does produce byte-identical reports.
type Runner struct {
	// Registry supplies the experiments; nil means DefaultRegistry().
	Registry *Registry
	// Parallelism bounds the worker pool; <= 0 means GOMAXPROCS.
	Parallelism int
	// Replicas runs each experiment this many times under distinct derived
	// seeds and aggregates numeric outputs (mean and 95% confidence
	// interval); <= 0 means 1.
	Replicas int
	// Progress, when non-nil, observes every task completion as it streams
	// out of the executor: done counts completions so far (including the one
	// being reported), total is the plan size, and id names the finished
	// (experiment, replica) task ("tab9#2"). Calls arrive sequentially from
	// the collecting goroutine, in completion order.
	Progress func(done, total int, id string)
	// Stats, when non-nil, receives the executor's live queue counters
	// (shared across runs by the serve layer for backpressure and metrics).
	Stats *exec.Stats
	// SpanObserver, when non-nil, turns on executor span recording and
	// receives every non-skipped task's span (see exec.TaskSpan) along with
	// the task's error, in completion order from the collecting goroutine.
	SpanObserver func(index int, id string, span exec.TaskSpan, err error)
}

// Result is the outcome of one experiment under the Runner.
type Result struct {
	ID    string
	Title string
	// Seed is the derived base seed of replica 0.
	Seed int64
	// Report is the replica-0 report (the canonical single-run output).
	Report *Report
	// Reports holds every replica's report, replica index order.
	Reports []*Report
	// Aggregate is the value-space aggregation of the replica documents
	// (see AggregateReports): every metric and numeric table cell carries
	// the replica mean with a 95% CI half-width, labels matched exactly.
	// Nil when Replicas == 1.
	Aggregate *Report
	// Err is the first error any replica produced, nil on success.
	Err error
	// Elapsed sums the run time of all replicas of this experiment.
	Elapsed time.Duration
}

// DeriveSeed maps (base seed, experiment ID, replica) to the seed an
// experiment replica runs under. The derivation is an FNV-1a hash of the ID
// finalized with a splitmix64 mix, so experiments are decorrelated from each
// other and replicas from one another, yet every run with the same inputs
// sees the same seed regardless of execution order.
func DeriveSeed(base int64, id string, replica int) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	h ^= uint64(base)
	h += uint64(replica) * 0x9e3779b97f4a7c15
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h)
}

// RunAll executes every registered experiment in catalog order.
func (r *Runner) RunAll(baseSeed int64) ([]Result, error) {
	return r.Run(r.registry().IDs(), baseSeed)
}

// Run executes the given experiments; it is RunContext under a background
// context.
func (r *Runner) Run(ids []string, baseSeed int64) ([]Result, error) {
	return r.RunContext(context.Background(), ids, baseSeed)
}

// RunContext executes the given experiments under a context. Unknown IDs
// fail the whole call with the canonical unknown-experiment error before
// anything runs. Individual experiment failures are reported per Result (and
// joined into the returned error) without aborting the other experiments.
//
// Cancelling ctx stops the run cooperatively: tasks not yet started are
// skipped, in-flight experiments that honour ctx (Experiment.RunContext)
// return early, and every unfinished (experiment, replica) carries the
// context's error in its Result and in the joined return error.
func (r *Runner) RunContext(ctx context.Context, ids []string, baseSeed int64) ([]Result, error) {
	reg := r.registry()
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, err := reg.Get(id)
		if err != nil {
			return nil, err
		}
		exps[i] = e
	}
	replicas := r.Replicas
	if replicas <= 0 {
		replicas = 1
	}

	// One task per (experiment, replica), in experiment-major order; the
	// positional index i*replicas+k is the collection slot, so reports land
	// exactly where the sequential loop would have put them.
	plan := &exec.Plan[*Report]{}
	for i := range exps {
		e := exps[i]
		for k := 0; k < replicas; k++ {
			seed := DeriveSeed(baseSeed, e.ID, k)
			plan.Add(e.ID+"#"+strconv.Itoa(k), func(ctx context.Context) (*Report, error) {
				return e.run(ctx, seed)
			})
		}
	}

	events := exec.Stream(ctx, plan, exec.Options[*Report]{
		Workers: r.Parallelism,
		Stats:   r.Stats,
		Spans:   r.SpanObserver != nil,
	})
	elapsed := make([]time.Duration, plan.Len())
	done := 0
	reports, errs := exec.Collect(events, plan.Len(), func(ev exec.Event[*Report]) {
		elapsed[ev.Index] = ev.Elapsed
		done++
		if r.Progress != nil {
			r.Progress(done, plan.Len(), ev.ID)
		}
		if r.SpanObserver != nil && ev.Span != nil {
			r.SpanObserver(ev.Index, ev.ID, *ev.Span, ev.Err)
		}
	})

	results := make([]Result, len(exps))
	var failures []error
	for i, e := range exps {
		res := Result{
			ID:    e.ID,
			Title: e.Title,
			Seed:  DeriveSeed(baseSeed, e.ID, 0),
			// Full slice expression: capacity stops at this experiment's
			// window, so a caller appending to Reports can never clobber
			// the next experiment's replica slots.
			Reports: reports[i*replicas : (i+1)*replicas : (i+1)*replicas],
		}
		for k := 0; k < replicas; k++ {
			res.Elapsed += elapsed[i*replicas+k]
			if err := errs[i*replicas+k]; err != nil && res.Err == nil {
				res.Err = fmt.Errorf("atlarge: experiment %s (replica %d): %w", e.ID, k, err)
			}
		}
		if res.Err != nil {
			failures = append(failures, res.Err)
		} else {
			res.Report = res.Reports[0]
			if replicas > 1 {
				res.Aggregate = AggregateReports(res.Reports)
			}
		}
		results[i] = res
	}
	return results, errors.Join(failures...)
}

func (r *Runner) registry() *Registry {
	if r.Registry != nil {
		return r.Registry
	}
	return DefaultRegistry()
}

// RunAll executes every registered experiment with the default parallel
// runner (GOMAXPROCS workers, one replica).
func RunAll(seed int64) ([]Result, error) {
	return (&Runner{}).RunAll(seed)
}
