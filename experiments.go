package atlarge

import "context"

// Experiments lists the reproducible artifact IDs in canonical order.
func Experiments() []string {
	return DefaultRegistry().IDs()
}

// RunExperiment reproduces one paper artifact and returns its report.
func RunExperiment(id string, seed int64) (*Report, error) {
	e, err := DefaultRegistry().Get(id)
	if err != nil {
		return nil, err
	}
	return e.run(context.Background(), seed)
}
