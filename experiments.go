package atlarge

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"atlarge/internal/autoscale"
	"atlarge/internal/biblio"
	"atlarge/internal/core"
	"atlarge/internal/faas"
	"atlarge/internal/graphproc"
	"atlarge/internal/mmog"
	"atlarge/internal/p2p"
	"atlarge/internal/portfolio"
	"atlarge/internal/refarch"
)

// Report is the printable outcome of one reproduced paper artifact.
type Report struct {
	ID    string
	Title string
	Rows  []string
}

// Experiments lists the reproducible artifact IDs in canonical order.
func Experiments() []string {
	return []string{
		"fig1", "fig2", "fig3", "fig7", "fig9",
		"tab5", "tab6", "tab7", "tab8", "tab9",
		"autoscale", "bdc",
	}
}

// RunExperiment reproduces one paper artifact and returns its report.
func RunExperiment(id string, seed int64) (*Report, error) {
	switch id {
	case "fig1":
		return runFig1(seed)
	case "fig2":
		return runFig2(seed)
	case "fig3":
		return runFig3(seed)
	case "fig7":
		return runFig7(seed)
	case "fig9":
		return runFig9()
	case "tab5":
		return runTab5(seed)
	case "tab6":
		return runTab6(seed)
	case "tab7":
		return runTab7(seed)
	case "tab8":
		return runTab8(seed)
	case "tab9":
		return runTab9(seed)
	case "autoscale":
		return runAutoscale(seed)
	case "bdc":
		return runBDC(seed)
	default:
		return nil, fmt.Errorf("atlarge: unknown experiment %q (known: %s)", id, strings.Join(Experiments(), ", "))
	}
}

func runFig1(seed int64) (*Report, error) {
	cfg := biblio.DefaultCorpusConfig()
	cfg.Seed = seed
	corpus, err := biblio.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig1", Title: "Figure 1: keyword presence in top systems venues (2013-2018)"}
	for _, kc := range biblio.Figure1(corpus) {
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-18s %6d", kc.Keyword, kc.Count))
	}
	return rep, nil
}

func runFig2(seed int64) (*Report, error) {
	cfg := biblio.DefaultCorpusConfig()
	cfg.Seed = seed
	corpus, err := biblio.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig2", Title: "Figure 2: design articles per venue per 5-year block since 1980"}
	rows := biblio.Figure2(corpus)
	byVenue := map[string][]biblio.BlockCount{}
	var venues []string
	for _, r := range rows {
		if _, ok := byVenue[r.Venue]; !ok {
			venues = append(venues, r.Venue)
		}
		byVenue[r.Venue] = append(byVenue[r.Venue], r)
	}
	trend := biblio.Figure2Trend(rows)
	for _, v := range venues {
		var parts []string
		total := 0
		for _, b := range byVenue[v] {
			parts = append(parts, fmt.Sprintf("%d:%d", b.BlockStart, b.Designs))
			total += b.Designs
		}
		mark := ""
		if trend[v] {
			mark = "  [post-2000 increase]"
		}
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-8s total=%-5d %s%s", v, total, strings.Join(parts, " "), mark))
	}
	return rep, nil
}

func runFig3(seed int64) (*Report, error) {
	cfg := biblio.DefaultReviewConfig()
	cfg.Seed = seed
	reviews, err := biblio.GenerateReviews(cfg)
	if err != nil {
		return nil, err
	}
	violins, err := biblio.Figure3(reviews)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig3", Title: "Figure 3: violin summaries of review scores (merit/quality/topic)"}
	var cats []string
	for c := range violins {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		for _, aspect := range []biblio.Aspect{biblio.AspectMerit, biblio.AspectQuality, biblio.AspectTopic} {
			v := violins[c][aspect]
			rep.Rows = append(rep.Rows, fmt.Sprintf(
				"%-22s %-8s n=%-4d mean=%.2f median=%.1f IQR=[%.1f,%.1f] whiskers=[%.1f,%.1f]",
				c, aspect, v.N, v.Mean, v.Median, v.Q1, v.Q3, v.WhiskerLo, v.WhiskerHi))
		}
	}
	f := biblio.AnalyzeFigure3(reviews, violins)
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"findings: design merit mean %.2f vs non-design %.2f; %.0f%% of design subs score <3; topic median %.1f",
		f.DesignMeritMean, f.NonDesignMeritMean, f.DesignBelow3Pct, f.TopicMedian))
	return rep, nil
}

func runFig7(seed int64) (*Report, error) {
	res, err := RunFigure7(6, 2, 0.06, 600, seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig7", Title: "Figures 6-7: design-space exploration processes"}
	var names []string
	for n := range res.Outcomes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		o := res.Outcomes[n]
		rep.Rows = append(rep.Rows, fmt.Sprintf(
			"%-14s attempts=%-4d solutions=%-3d failures=%-4d hit-rate=%.3f",
			n, o.Attempts, o.Solutions, o.Failures, o.HitRate))
	}
	co := res.CoEvolving
	h1, h2 := 0.0, 0.0
	if co.Phase1.Attempts > 0 {
		h1 = float64(co.Phase1.Solutions) / float64(co.Phase1.Attempts)
	}
	if co.Phase2.Attempts > 0 {
		h2 = float64(co.Phase2.Solutions) / float64(co.Phase2.Attempts)
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"co-evolving phases: problem-1 hit-rate %.3f -> after evolution %.3f (evolved=%v)",
		h1, h2, co.Evolved))
	return rep, nil
}

func runFig9() (*Report, error) {
	reg, err := refarch.StandardRegistry()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig9", Title: "Figure 9: datacenter reference architecture coverage"}
	cov := refarch.AnalyzeCoverage(reg)
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"components=%d old-architecture places %d, new architecture places %d",
		cov.Total, cov.OldPlaceable, cov.NewPlaceable))
	rep.Rows = append(rep.Rows, "unplaceable in old architecture: "+strings.Join(cov.Unplaceable, ", "))
	for _, l := range refarch.Layers() {
		var names []string
		for _, c := range reg.ByLayer(l) {
			names = append(names, c.Name)
		}
		rep.Rows = append(rep.Rows, fmt.Sprintf("layer %d %-18s %s", int(l), l.String()+":", strings.Join(names, ", ")))
	}
	for _, m := range refarch.IndustryMappings() {
		if err := refarch.ValidateMapping(reg, m); err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, fmt.Sprintf("mapping %-28s %d components OK", m.Ecosystem, len(m.Components)))
	}
	return rep, nil
}

func runTab5(seed int64) (*Report, error) {
	rows, err := p2p.RunTable5(seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "tab5", Title: "Table 5: co-evolving problem-solutions in P2P"}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-18s %-22s %s", r.Study, r.Feature, r.Finding))
	}
	return rep, nil
}

func runTab6(seed int64) (*Report, error) {
	rows := mmog.RunTable6(seed)
	rep := &Report{ID: "tab6", Title: "Table 6: co-evolving problem-solutions in MMOG"}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-12s %-28s %s", r.Study, r.Feature, r.Finding))
	}
	return rep, nil
}

func runTab7(seed int64) (*Report, error) {
	rows, err := faas.RunTable7(seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "tab7", Title: "Table 7: co-evolving problem-solutions in serverless"}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-22s %-26s %s", r.Study, r.Feature, r.Finding))
	}
	return rep, nil
}

func runTab8(seed int64) (*Report, error) {
	cfg := graphproc.DefaultBenchmarkConfig()
	cfg.Seed = seed
	res, err := graphproc.RunBenchmark(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "tab8", Title: "Table 8: the Graphalytics ecosystem and the PAD/HPAD laws"}
	pad, err := graphproc.AnalyzePAD(res)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"PAD law: %d distinct winning platforms; variance split platform=%.2f workload=%.2f interaction=%.2f",
		pad.DistinctWinners, pad.PlatformFrac, pad.WorkloadFrac, pad.InteractionFrac))
	var cols []string
	for c := range pad.WinnerByColumn {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	for _, c := range cols {
		rep.Rows = append(rep.Rows, fmt.Sprintf("winner %-18s %s", c, pad.WinnerByColumn[c]))
	}
	hpad, err := graphproc.AnalyzeHPAD(res, cfg.Engines)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"HPAD: winners without H=%d, with H=%d; heterogeneous platform wins %d columns",
		hpad.WinnersWithoutH, hpad.WinnersWithH, hpad.HWinsColumns))
	return rep, nil
}

func runTab9(seed int64) (*Report, error) {
	cfg := portfolio.DefaultTable9Config()
	cfg.Seed = seed
	rows, err := portfolio.RunTable9(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "tab9", Title: "Table 9: portfolio scheduling across workloads and environments"}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, fmt.Sprintf(
			"%-22s W=%-8s Env=%-5s PS=%.2f best=%.2f(%s) worst=%.2f(%s) regret=%+.1f%% -> %s | next: %s",
			r.Study, r.Workload, r.Environment, r.Portfolio,
			r.BestStatic, r.BestPolicy, r.WorstStatic, r.WorstPolicy,
			100*r.SelectionRegret, r.Finding, r.NewQuestion))
	}
	return rep, nil
}

func runAutoscale(seed int64) (*Report, error) {
	cfg := autoscale.DefaultExperimentConfig()
	cfg.Seed = seed
	res, err := autoscale.RunExperiment(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "autoscale", Title: "§6.7: autoscaling experiments (in-vitro + in-silico)"}
	var names []string
	for n := range res.Vitro {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return res.AvgRankVitro[names[i]] < res.AvgRankVitro[names[j]] })
	for _, n := range names {
		m := res.Vitro[n]
		rep.Rows = append(rep.Rows, fmt.Sprintf(
			"%-8s rank=%.1f grade=%.2f accU=%.3f accO=%.3f tU=%.2f tO=%.2f resp=%.0fs slowdown=%.2f cost/h=$%.2f miss=%.0f%%",
			n, res.AvgRankVitro[n], res.GradesVitro[n],
			m.AccuracyUnder, m.AccuracyOver, m.TimeshareUnder, m.TimeshareOver,
			m.MeanResponse, m.MeanSlowdown, res.CostByModel["per-hour"][n], m.DeadlineMissPct))
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"in-vitro vs in-silico rank correlation (Spearman) = %.2f (corroborating but not identical)",
		res.RankCorrelation))
	return rep, nil
}

func runBDC(seed int64) (*Report, error) {
	if err := core.ValidateCatalog(); err != nil {
		return nil, err
	}
	rep := &Report{ID: "bdc", Title: "Tables 1-3 + Figure 8: framework catalog and BDC mechanics"}
	for _, p := range core.Principles() {
		rep.Rows = append(rep.Rows, fmt.Sprintf("P%d (%s): %s", p.Index, p.Category, p.Text))
	}
	for _, c := range core.Challenges() {
		ps := make([]string, len(c.Principles))
		for i, pi := range c.Principles {
			ps[i] = fmt.Sprintf("P%d", pi)
		}
		rep.Rows = append(rep.Rows, fmt.Sprintf("C%d (%s): %s [%s]", c.Index, c.Category, c.Key, strings.Join(ps, ",")))
	}
	// Run a demonstration BDC: a noisy design search that satisfices.
	r := rand.New(rand.NewSource(seed))
	cy := &core.Cycle{
		Name: "demo",
		Stages: map[core.Stage]core.StageFunc{
			core.StageDesign: func(ctx *core.Context) error {
				score := r.Float64()
				ctx.AddSolution(core.Artifact{Name: "candidate", Score: score, Satisficing: score > 0.8})
				return nil
			},
		},
		Stop: core.StoppingCriteria{SatisficeAfter: 1, MaxIterations: 100},
	}
	tr, err := cy.Run(nil)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"demo BDC: stop=%s after %d iterations, %d solutions, %d failures",
		tr.Stop, len(tr.Iterations), len(tr.Solutions), tr.Failures))
	// Figure 4: the pre-training student design under the review rubric.
	student := core.Figure4StudentDesign()
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"Figure 4 student design: score %.2f -> %s; missing: %s",
		student.Score(), student.Assess(), strings.Join(student.Missing(0.5), ", ")))
	return rep, nil
}
