// Package atlarge is the public API of the AtLarge design-framework
// reproduction: the ATLARGE framework for the design of distributed systems
// and ecosystems (Iosup et al., ICDCS 2019) together with the simulated
// substrates that reproduce every table and figure of the paper's
// evaluation.
//
// The framework itself (reasoning model, principles, challenges, Basic
// Design Cycle, design-space exploration) is re-exported here from the
// internal packages. The per-artifact experiments are first-class
// descriptors in a Registry (see DefaultRegistry); RunExperiment runs one,
// and Runner/RunAll execute any subset across a bounded worker pool with
// deterministic per-experiment seed derivation and optional replica
// aggregation.
package atlarge

import (
	"atlarge/internal/core"
	"atlarge/internal/designspace"
)

// Re-exported framework types: the Dorst reasoning model (Figure 5).
type (
	// ReasoningMode is a row of the extended Dorst reasoning model.
	ReasoningMode = core.ReasoningMode
	// Element is a slot of the reasoning equation (What/How/Outcome).
	Element = core.Element
)

// Reasoning modes.
const (
	Deduction       = core.Deduction
	Induction       = core.Induction
	NormalAbduction = core.NormalAbduction
	DesignAbduction = core.DesignAbduction
	Unreasoning     = core.Unreasoning
)

// Classify returns the reasoning mode for a knowledge state; design
// abduction is knowing only the desired outcome.
func Classify(knowWhat, knowHow, knowOutcome bool) ReasoningMode {
	return core.Classify(knowWhat, knowHow, knowOutcome)
}

// Framework catalogs (Tables 1-3, §3.4, §5.1).
type (
	// Principle is one of the eight core principles of MCS design.
	Principle = core.Principle
	// Challenge is one of the ten open challenges.
	Challenge = core.Challenge
	// ProblemArchetype is a §3.4 problem kind.
	ProblemArchetype = core.ProblemArchetype
	// CreativityLevel is an Altshuller design level.
	CreativityLevel = core.CreativityLevel
	// FrameworkOverview is the Table 1 summary.
	FrameworkOverview = core.FrameworkOverview
)

// Principles returns the Table 2 catalog (P1-P8).
func Principles() []Principle { return core.Principles() }

// Challenges returns the Table 3 catalog (C1-C10).
func Challenges() []Challenge { return core.Challenges() }

// ProblemArchetypes returns the §3.4 problem catalog.
func ProblemArchetypes() []ProblemArchetype { return core.ProblemArchetypes() }

// Overview returns the Table 1 framework summary.
func Overview() FrameworkOverview { return core.Overview() }

// AssessCreativity maps a design's adapted/new shares to an Altshuller level.
func AssessCreativity(adaptedShare, newShare float64, opensEcosystem bool) (CreativityLevel, error) {
	return core.AssessCreativity(adaptedShare, newShare, opensEcosystem)
}

// The Basic Design Cycle (§3.5, Figure 8).
type (
	// Cycle is an executable Basic Design Cycle with skippable stages.
	Cycle = core.Cycle
	// Stage is a BDC stage.
	Stage = core.Stage
	// StageFunc executes one stage.
	StageFunc = core.StageFunc
	// Context is the shared process state.
	Context = core.Context
	// Artifact is a produced design.
	Artifact = core.Artifact
	// StoppingCriteria configures the five stopping criteria.
	StoppingCriteria = core.StoppingCriteria
	// Trace documents a cycle run (provenance, challenge C8).
	Trace = core.Trace
)

// BDC stages.
const (
	StageFormulateRequirements  = core.StageFormulateRequirements
	StageUnderstandAlternatives = core.StageUnderstandAlternatives
	StageBootstrapCreative      = core.StageBootstrapCreative
	StageDesign                 = core.StageDesign
	StageImplementation         = core.StageImplementation
	StageConceptualAnalysis     = core.StageConceptualAnalysis
	StageExperimentalAnalysis   = core.StageExperimentalAnalysis
	StageReporting              = core.StageReporting
)

// Design-space exploration (§3.3, Figures 6-7).
type (
	// Problem is a design problem with hidden satisficing regions.
	Problem = designspace.Problem
	// Design is a candidate design.
	Design = designspace.Design
	// Explorer is a Figure 6 exploration process.
	Explorer = designspace.Explorer
	// CoEvolving is the Figure 7 co-evolving problem-solution process.
	CoEvolving = designspace.CoEvolving
)

// RunFigure7 executes the four-process design-space exploration comparison.
func RunFigure7(dim, regions int, radius float64, budget int, seed int64) (*designspace.Figure7Result, error) {
	return designspace.RunFigure7(dim, regions, radius, budget, seed)
}

// Design assessment (Figure 4) and problem classification (§2.4).
type (
	// DesignReview is the Figure 4 critique as an executable rubric.
	DesignReview = core.DesignReview
	// Maturity classifies a reviewed design.
	Maturity = core.Maturity
	// ProblemTraits captures the Simon/wickedness characteristics.
	ProblemTraits = core.ProblemTraits
	// ProblemKind is well-structured / ill-structured / wicked.
	ProblemKind = core.ProblemKind
)

// Maturity levels and problem kinds.
const (
	MaturityStudentLike = core.MaturityStudentLike
	MaturityCompetent   = core.MaturityCompetent
	MaturityBelievable  = core.MaturityBelievable

	WellStructured = core.WellStructured
	IllStructured  = core.IllStructured
	Wicked         = core.Wicked
)

// Figure4StudentDesign returns the review of the paper's typical early
// student design.
func Figure4StudentDesign() DesignReview { return core.Figure4StudentDesign() }

// ClassifyProblem maps problem traits to its structural kind.
func ClassifyProblem(t ProblemTraits) ProblemKind { return core.ClassifyProblem(t) }
