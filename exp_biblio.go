package atlarge

import (
	"sort"

	"atlarge/internal/biblio"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "fig1",
		Title: "Figure 1: keyword presence in top systems venues (2013-2018)",
		Tags:  []string{"figure", "biblio", "fast"},
		Order: 10,
		Run:   runFig1,
	})
	defaultRegistry.MustRegister(Experiment{
		ID:    "fig2",
		Title: "Figure 2: design articles per venue per 5-year block since 1980",
		Tags:  []string{"figure", "biblio", "fast"},
		Order: 20,
		Run:   runFig2,
	})
	defaultRegistry.MustRegister(Experiment{
		ID:    "fig3",
		Title: "Figure 3: violin summaries of review scores (merit/quality/topic)",
		Tags:  []string{"figure", "biblio", "fast"},
		Order: 30,
		Run:   runFig3,
	})
}

func runFig1(seed int64) (*Report, error) {
	cfg := biblio.DefaultCorpusConfig()
	cfg.Seed = seed
	corpus, err := biblio.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rep := NewReport("fig1", "Figure 1: keyword presence in top systems venues (2013-2018)")
	t := rep.AddTable("keywords", "keyword", "articles")
	total := 0
	for _, kc := range biblio.Figure1(corpus) {
		t.AddRow(Label(kc.Keyword), Count(kc.Count))
		total += kc.Count
	}
	rep.AddMetric(Metric{Name: "keyword_articles_total", Value: float64(total), HigherBetter: true})
	return rep, nil
}

func runFig2(seed int64) (*Report, error) {
	cfg := biblio.DefaultCorpusConfig()
	cfg.Seed = seed
	corpus, err := biblio.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rep := NewReport("fig2", "Figure 2: design articles per venue per 5-year block since 1980")
	rows := biblio.Figure2(corpus)
	byVenue := map[string][]biblio.BlockCount{}
	var venues []string
	for _, r := range rows {
		if _, ok := byVenue[r.Venue]; !ok {
			venues = append(venues, r.Venue)
		}
		byVenue[r.Venue] = append(byVenue[r.Venue], r)
	}
	trend := biblio.Figure2Trend(rows)
	t := rep.AddTable("venues", "venue", "designs_total", "post_2000_increase")
	grandTotal, increasing := 0, 0
	for _, v := range venues {
		s := &Series{Name: v}
		total := 0
		for _, b := range byVenue[v] {
			s.X = append(s.X, float64(b.BlockStart))
			s.Y = append(s.Y, float64(b.Designs))
			total += b.Designs
		}
		rep.AddSeries(s)
		mark := "no"
		if trend[v] {
			mark = "yes"
			increasing++
		}
		t.AddRow(Label(v), Count(total), Label(mark))
		grandTotal += total
	}
	rep.AddMetric(Metric{Name: "design_articles_total", Value: float64(grandTotal), HigherBetter: true})
	rep.AddMetric(Metric{Name: "venues_with_post2000_increase", Value: float64(increasing), HigherBetter: true})
	return rep, nil
}

func runFig3(seed int64) (*Report, error) {
	cfg := biblio.DefaultReviewConfig()
	cfg.Seed = seed
	reviews, err := biblio.GenerateReviews(cfg)
	if err != nil {
		return nil, err
	}
	violins, err := biblio.Figure3(reviews)
	if err != nil {
		return nil, err
	}
	rep := NewReport("fig3", "Figure 3: violin summaries of review scores (merit/quality/topic)")
	var cats []string
	for c := range violins {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	t := rep.AddTable("violins",
		"category", "aspect", "n", "mean", "median", "q1", "q3", "whisker_lo", "whisker_hi")
	for _, c := range cats {
		for _, aspect := range []biblio.Aspect{biblio.AspectMerit, biblio.AspectQuality, biblio.AspectTopic} {
			v := violins[c][aspect]
			t.AddRow(Label(c), Label(string(aspect)), Count(v.N),
				Num(v.Mean, "%.2f"), Num(v.Median, "%.1f"),
				Num(v.Q1, "%.1f"), Num(v.Q3, "%.1f"),
				Num(v.WhiskerLo, "%.1f"), Num(v.WhiskerHi, "%.1f"))
		}
	}
	f := biblio.AnalyzeFigure3(reviews, violins)
	rep.AddMetric(Metric{Name: "design_merit_mean", Value: f.DesignMeritMean, HigherBetter: true})
	rep.AddMetric(Metric{Name: "non_design_merit_mean", Value: f.NonDesignMeritMean, HigherBetter: true})
	rep.AddMetric(Metric{Name: "design_below3_pct", Value: f.DesignBelow3Pct, Unit: "%"})
	rep.AddMetric(Metric{Name: "topic_median", Value: f.TopicMedian, HigherBetter: true})
	rep.AddNote("design submissions score lower on merit than non-design submissions despite on-topic ratings")
	return rep, nil
}
