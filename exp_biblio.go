package atlarge

import (
	"fmt"
	"sort"
	"strings"

	"atlarge/internal/biblio"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "fig1",
		Title: "Figure 1: keyword presence in top systems venues (2013-2018)",
		Tags:  []string{"figure", "biblio", "fast"},
		Order: 10,
		Run:   runFig1,
	})
	defaultRegistry.MustRegister(Experiment{
		ID:    "fig2",
		Title: "Figure 2: design articles per venue per 5-year block since 1980",
		Tags:  []string{"figure", "biblio", "fast"},
		Order: 20,
		Run:   runFig2,
	})
	defaultRegistry.MustRegister(Experiment{
		ID:    "fig3",
		Title: "Figure 3: violin summaries of review scores (merit/quality/topic)",
		Tags:  []string{"figure", "biblio", "fast"},
		Order: 30,
		Run:   runFig3,
	})
}

func runFig1(seed int64) (*Report, error) {
	cfg := biblio.DefaultCorpusConfig()
	cfg.Seed = seed
	corpus, err := biblio.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig1", Title: "Figure 1: keyword presence in top systems venues (2013-2018)"}
	for _, kc := range biblio.Figure1(corpus) {
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-18s %6d", kc.Keyword, kc.Count))
	}
	return rep, nil
}

func runFig2(seed int64) (*Report, error) {
	cfg := biblio.DefaultCorpusConfig()
	cfg.Seed = seed
	corpus, err := biblio.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig2", Title: "Figure 2: design articles per venue per 5-year block since 1980"}
	rows := biblio.Figure2(corpus)
	byVenue := map[string][]biblio.BlockCount{}
	var venues []string
	for _, r := range rows {
		if _, ok := byVenue[r.Venue]; !ok {
			venues = append(venues, r.Venue)
		}
		byVenue[r.Venue] = append(byVenue[r.Venue], r)
	}
	trend := biblio.Figure2Trend(rows)
	for _, v := range venues {
		var parts []string
		total := 0
		for _, b := range byVenue[v] {
			parts = append(parts, fmt.Sprintf("%d:%d", b.BlockStart, b.Designs))
			total += b.Designs
		}
		mark := ""
		if trend[v] {
			mark = "  [post-2000 increase]"
		}
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-8s total=%-5d %s%s", v, total, strings.Join(parts, " "), mark))
	}
	return rep, nil
}

func runFig3(seed int64) (*Report, error) {
	cfg := biblio.DefaultReviewConfig()
	cfg.Seed = seed
	reviews, err := biblio.GenerateReviews(cfg)
	if err != nil {
		return nil, err
	}
	violins, err := biblio.Figure3(reviews)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig3", Title: "Figure 3: violin summaries of review scores (merit/quality/topic)"}
	var cats []string
	for c := range violins {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		for _, aspect := range []biblio.Aspect{biblio.AspectMerit, biblio.AspectQuality, biblio.AspectTopic} {
			v := violins[c][aspect]
			rep.Rows = append(rep.Rows, fmt.Sprintf(
				"%-22s %-8s n=%-4d mean=%.2f median=%.1f IQR=[%.1f,%.1f] whiskers=[%.1f,%.1f]",
				c, aspect, v.N, v.Mean, v.Median, v.Q1, v.Q3, v.WhiskerLo, v.WhiskerHi))
		}
	}
	f := biblio.AnalyzeFigure3(reviews, violins)
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"findings: design merit mean %.2f vs non-design %.2f; %.0f%% of design subs score <3; topic median %.1f",
		f.DesignMeritMean, f.NonDesignMeritMean, f.DesignBelow3Pct, f.TopicMedian))
	return rep, nil
}
