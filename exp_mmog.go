package atlarge

import "atlarge/internal/mmog"

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "tab6",
		Title: "Table 6: co-evolving problem-solutions in MMOG",
		Tags:  []string{"table", "mmog", "fast"},
		Order: 70,
		Run:   runTab6,
	})
}

func runTab6(seed int64) (*Report, error) {
	rows := mmog.RunTable6(seed)
	rep := NewReport("tab6", "Table 6: co-evolving problem-solutions in MMOG")
	t := rep.AddTable("studies", "study", "feature", "finding")
	for _, r := range rows {
		t.AddRow(Label(r.Study), Label(r.Feature), Label(r.Finding))
	}
	rep.AddMetric(Metric{Name: "studies", Value: float64(len(rows)), HigherBetter: true})
	return rep, nil
}
