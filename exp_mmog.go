package atlarge

import (
	"fmt"

	"atlarge/internal/mmog"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "tab6",
		Title: "Table 6: co-evolving problem-solutions in MMOG",
		Tags:  []string{"table", "mmog", "fast"},
		Order: 70,
		Run:   runTab6,
	})
}

func runTab6(seed int64) (*Report, error) {
	rows := mmog.RunTable6(seed)
	rep := &Report{ID: "tab6", Title: "Table 6: co-evolving problem-solutions in MMOG"}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-12s %-28s %s", r.Study, r.Feature, r.Finding))
	}
	return rep, nil
}
