package atlarge

import (
	"encoding/json"
	"io"
)

// RunDocument is the machine-readable payload of one runner invocation: the
// body of `atlarge run --format json` and of the serve API's GET /v1/run.
// It carries no timing and marshals through slices only, so for a fixed
// (ids, seed, replicas) the bytes are identical at every parallelism level.
type RunDocument struct {
	Seed        int64              `json:"seed"`
	Experiments []ExperimentResult `json:"experiments"`
}

// ExperimentResult is one experiment's slice of a RunDocument.
type ExperimentResult struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Seed is the derived seed of replica 0.
	Seed     int64 `json:"seed"`
	Replicas int   `json:"replicas"`
	// Report is the replica-0 document.
	Report *Report `json:"report"`
	// Aggregate is the value-space replica aggregation; absent for a single
	// replica.
	Aggregate *Report `json:"aggregate,omitempty"`
}

// NewRunDocument folds runner results into the serialisable document.
// Failed experiments are skipped (the runner's joined error reports them).
func NewRunDocument(baseSeed int64, results []Result) *RunDocument {
	doc := &RunDocument{Seed: baseSeed}
	for _, res := range results {
		if res.Err != nil || res.Report == nil {
			continue
		}
		doc.Experiments = append(doc.Experiments, ExperimentResult{
			ID:        res.ID,
			Title:     res.Title,
			Seed:      res.Seed,
			Replicas:  len(res.Reports),
			Report:    res.Report,
			Aggregate: res.Aggregate,
		})
	}
	return doc
}

// WriteJSON emits the document as indented JSON.
func (d *RunDocument) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
