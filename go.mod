module atlarge

go 1.24
