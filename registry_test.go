package atlarge

import (
	"strings"
	"testing"
)

// canonicalIDs is the catalog order the registry must preserve.
var canonicalIDs = []string{
	"fig1", "fig2", "fig3", "fig7", "fig9",
	"tab5", "tab6", "tab7", "tab8", "tab9",
	"autoscale", "bdc",
}

func TestDefaultRegistryCatalog(t *testing.T) {
	ids := Experiments()
	if len(ids) != len(canonicalIDs) {
		t.Fatalf("catalog = %v, want %v", ids, canonicalIDs)
	}
	for i, id := range canonicalIDs {
		if ids[i] != id {
			t.Errorf("catalog[%d] = %s, want %s", i, ids[i], id)
		}
	}
	if got := DefaultRegistry().Len(); got != len(canonicalIDs) {
		t.Errorf("Len = %d, want %d", got, len(canonicalIDs))
	}
}

func TestRegistryGetKnown(t *testing.T) {
	for _, id := range canonicalIDs {
		e, err := DefaultRegistry().Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if e.ID != id || e.Title == "" || e.Run == nil || len(e.Tags) == 0 {
			t.Errorf("incomplete descriptor for %s: %+v", id, e)
		}
	}
}

func TestRegistryUnknownError(t *testing.T) {
	_, err := DefaultRegistry().Get("nope")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	want := "atlarge: unknown experiment \"nope\" (known: " + strings.Join(canonicalIDs, ", ") + ")"
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err, want)
	}
	// RunExperiment and the Runner must surface the identical error.
	if _, rerr := RunExperiment("nope", 1); rerr == nil || rerr.Error() != want {
		t.Errorf("RunExperiment error = %v, want %q", rerr, want)
	}
	if _, rerr := (&Runner{}).Run([]string{"nope"}, 1); rerr == nil || rerr.Error() != want {
		t.Errorf("Runner error = %v, want %q", rerr, want)
	}
}

func TestRegistryRegisterValidation(t *testing.T) {
	r := NewRegistry()
	run := func(seed int64) (*Report, error) { return &Report{ID: "x"}, nil }
	if err := r.Register(Experiment{Title: "no id", Run: run}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := r.Register(Experiment{ID: "x"}); err == nil {
		t.Error("nil run func accepted")
	}
	if err := r.Register(Experiment{ID: "x", Run: run}); err != nil {
		t.Fatalf("valid register: %v", err)
	}
	if err := r.Register(Experiment{ID: "x", Run: run}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestRegistryOrderAndTags(t *testing.T) {
	r := NewRegistry()
	run := func(seed int64) (*Report, error) { return &Report{}, nil }
	r.MustRegister(Experiment{ID: "b", Order: 2, Tags: []string{"even"}, Run: run})
	r.MustRegister(Experiment{ID: "c", Order: 1, Tags: []string{"odd"}, Run: run})
	r.MustRegister(Experiment{ID: "a", Order: 2, Tags: []string{"even"}, Run: run})
	if got := strings.Join(r.IDs(), ","); got != "c,a,b" {
		t.Errorf("IDs = %s, want c,a,b (order, then ID)", got)
	}
	even := r.WithTag("even")
	if len(even) != 2 || even[0].ID != "a" || even[1].ID != "b" {
		t.Errorf("WithTag(even) = %+v", even)
	}
	if got := r.WithTag("none"); got != nil {
		t.Errorf("WithTag(none) = %+v, want nil", got)
	}
}

func TestExperimentHasTag(t *testing.T) {
	e := Experiment{Tags: []string{"figure", "fast"}}
	if !e.HasTag("fast") || e.HasTag("slow") {
		t.Errorf("HasTag misbehaves: %+v", e.Tags)
	}
}
