package atlarge

import (
	"fmt"
	"strings"

	"atlarge/internal/refarch"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "fig9",
		Title: "Figure 9: datacenter reference architecture coverage",
		Tags:  []string{"figure", "refarch", "fast"},
		Order: 50,
		Run:   func(seed int64) (*Report, error) { return runFig9() },
	})
}

func runFig9() (*Report, error) {
	reg, err := refarch.StandardRegistry()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig9", Title: "Figure 9: datacenter reference architecture coverage"}
	cov := refarch.AnalyzeCoverage(reg)
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"components=%d old-architecture places %d, new architecture places %d",
		cov.Total, cov.OldPlaceable, cov.NewPlaceable))
	rep.Rows = append(rep.Rows, "unplaceable in old architecture: "+strings.Join(cov.Unplaceable, ", "))
	for _, l := range refarch.Layers() {
		var names []string
		for _, c := range reg.ByLayer(l) {
			names = append(names, c.Name)
		}
		rep.Rows = append(rep.Rows, fmt.Sprintf("layer %d %-18s %s", int(l), l.String()+":", strings.Join(names, ", ")))
	}
	for _, m := range refarch.IndustryMappings() {
		if err := refarch.ValidateMapping(reg, m); err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, fmt.Sprintf("mapping %-28s %d components OK", m.Ecosystem, len(m.Components)))
	}
	return rep, nil
}
