package atlarge

import (
	"strings"

	"atlarge/internal/refarch"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "fig9",
		Title: "Figure 9: datacenter reference architecture coverage",
		Tags:  []string{"figure", "refarch", "fast"},
		Order: 50,
		Run:   func(seed int64) (*Report, error) { return runFig9() },
	})
}

func runFig9() (*Report, error) {
	reg, err := refarch.StandardRegistry()
	if err != nil {
		return nil, err
	}
	rep := NewReport("fig9", "Figure 9: datacenter reference architecture coverage")
	cov := refarch.AnalyzeCoverage(reg)
	rep.AddMetric(Metric{Name: "components_total", Value: float64(cov.Total), HigherBetter: true})
	rep.AddMetric(Metric{Name: "old_arch_placeable", Value: float64(cov.OldPlaceable), HigherBetter: true})
	rep.AddMetric(Metric{Name: "new_arch_placeable", Value: float64(cov.NewPlaceable), HigherBetter: true})
	rep.AddMetric(Metric{Name: "old_arch_unplaceable", Value: float64(len(cov.Unplaceable))})
	rep.AddNote("unplaceable in old architecture: %s", strings.Join(cov.Unplaceable, ", "))
	lt := rep.AddTable("layers", "layer", "name", "components")
	for _, l := range refarch.Layers() {
		var names []string
		for _, c := range reg.ByLayer(l) {
			names = append(names, c.Name)
		}
		lt.AddRow(Count(int(l)), Label(l.String()), Label(strings.Join(names, ", ")))
	}
	mt := rep.AddTable("mappings", "ecosystem", "components")
	for _, m := range refarch.IndustryMappings() {
		if err := refarch.ValidateMapping(reg, m); err != nil {
			return nil, err
		}
		mt.AddRow(Label(m.Ecosystem), Count(len(m.Components)))
	}
	return rep, nil
}
