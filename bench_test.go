package atlarge

// The benchmark harness regenerates every table and figure of the paper's
// evaluation, one testing.B benchmark per artifact. Each benchmark prints
// (once) the same rows/series the paper reports, so
//
//	go test -bench=. -benchmem
//
// doubles as the full reproduction run. Absolute numbers come from our
// simulated substrates; the shapes (who wins, by what factor, where
// crossovers fall) are the reproduction target — see EXPERIMENTS.md.

import (
	"fmt"
	"sync"
	"testing"
)

var printOnce sync.Map

// report runs one experiment, printing its rows on the first iteration only.
func report(b *testing.B, id string) {
	b.Helper()
	rep, err := RunExperiment(id, 42)
	if err != nil {
		b.Fatal(err)
	}
	if _, loaded := printOnce.LoadOrStore(id, true); !loaded {
		b.Logf("== %s ==", rep.Title)
		for _, line := range rep.Lines() {
			b.Log(line)
		}
	}
	if len(rep.Metrics) == 0 {
		b.Fatal("report without metrics")
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		report(b, id)
	}
}

// BenchmarkFigure1Keywords regenerates Figure 1 (keyword presence in top
// systems venues).
func BenchmarkFigure1Keywords(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFigure2DesignArticles regenerates Figure 2 (design articles per
// venue per 5-year block since 1980).
func BenchmarkFigure2DesignArticles(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFigure3ReviewScores regenerates Figure 3 (violin summaries of
// review scores by article category).
func BenchmarkFigure3ReviewScores(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFigure7Exploration regenerates Figures 6-7 (design-space
// exploration processes, co-evolving problem-solution).
func BenchmarkFigure7Exploration(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFigure9RefArch regenerates Figure 9 (datacenter reference
// architecture coverage and ecosystem mappings).
func BenchmarkFigure9RefArch(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkTable5P2P regenerates Table 5 (P2P studies: aliased media,
// asymmetry, global ecosystem, bias, flashcrowds, vicissitude, 2fast).
func BenchmarkTable5P2P(b *testing.B) { benchExperiment(b, "tab5") }

// BenchmarkTable6MMOG regenerates Table 6 (MMOG studies: dynamics, social
// networks, toxicity, AoS scalability, provisioning).
func BenchmarkTable6MMOG(b *testing.B) { benchExperiment(b, "tab6") }

// BenchmarkTable7Serverless regenerates Table 7 (serverless studies:
// principles, performance, evolution, workflows, reference architecture).
func BenchmarkTable7Serverless(b *testing.B) { benchExperiment(b, "tab7") }

// BenchmarkTable8Graphalytics regenerates Table 8 (Graphalytics: the PAD and
// HPAD laws).
func BenchmarkTable8Graphalytics(b *testing.B) { benchExperiment(b, "tab8") }

// BenchmarkTable9Portfolio regenerates Table 9 (portfolio scheduling across
// workloads and environments).
func BenchmarkTable9Portfolio(b *testing.B) { benchExperiment(b, "tab9") }

// BenchmarkAutoscalingExperiments regenerates the §6.7 autoscaling study
// (elasticity metrics, rankings, grading, cost, corroboration).
func BenchmarkAutoscalingExperiments(b *testing.B) { benchExperiment(b, "autoscale") }

// BenchmarkBDCProcess exercises the framework mechanics (Tables 1-3,
// Figure 8): catalog validation plus a satisficing BDC run.
func BenchmarkBDCProcess(b *testing.B) { benchExperiment(b, "bdc") }

// BenchmarkAllExperiments runs the complete reproduction end to end, the
// one-line check that every artifact regenerates.
func BenchmarkAllExperiments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, id := range Experiments() {
			rep, err := RunExperiment(id, 42)
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Metrics) == 0 {
				b.Fatal(fmt.Sprintf("experiment %s produced no metrics", id))
			}
		}
	}
}
