// Command dcsim runs one datacenter scheduling simulation: a workload class
// on an environment under either a static policy or the portfolio scheduler,
// and prints job-level metrics.
//
// Usage:
//
//	dcsim -workload Sci -env CL -policy portfolio -jobs 200 -seed 1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"atlarge/internal/cluster"
	"atlarge/internal/portfolio"
	"atlarge/internal/sched"
	"atlarge/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workloadName = flag.String("workload", "Sci", "workload class: Syn Sci CE BC BD G Ind")
		envName      = flag.String("env", "CL", "environment: CL G CD MCD GDC")
		policyName   = flag.String("policy", "portfolio", "policy name or 'portfolio'")
		jobs         = flag.Int("jobs", 200, "number of jobs")
		seed         = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	class, err := parseClass(*workloadName)
	if err != nil {
		return err
	}
	kind, err := parseKind(*envName)
	if err != nil {
		return err
	}
	tr := workload.StandardGenerator(class).Generate(*jobs, rand.New(rand.NewSource(*seed)))
	envFactory := func() *cluster.Environment { return cluster.StandardEnvironment(kind) }

	if *policyName == "portfolio" {
		s := &portfolio.Scheduler{
			Policies:   sched.DefaultPortfolio(),
			Selector:   portfolio.Exhaustive{},
			WindowSize: 25,
			EnvFactory: envFactory,
			Seed:       *seed,
		}
		res, err := s.Run(tr)
		if err != nil {
			return err
		}
		fmt.Printf("portfolio scheduler on %s/%s: %d windows, mean slowdown %.2f, mean response %.0fs, %d selection sims\n",
			class, kind, len(res.Choices), res.MeanSlowdown, res.MeanResponse, res.TotalSimRuns)
		for _, c := range res.Choices {
			fmt.Printf("  window %2d -> %-10s realized slowdown %.2f\n", c.Window, c.Policy, c.Realized)
		}
		return nil
	}

	var policy sched.Policy
	for _, p := range sched.DefaultPortfolio() {
		if p.Name() == *policyName {
			policy = p
		}
	}
	if policy == nil {
		return fmt.Errorf("unknown policy %q", *policyName)
	}
	res, err := sched.NewSimulator(envFactory(), tr, policy, *seed).Run()
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s/%s: %d jobs, makespan %.0fs, mean slowdown %.2f, mean wait %.0fs, utilization %.2f\n",
		policy.Name(), class, kind, len(res.Jobs), float64(res.Makespan),
		res.MeanSlowdown, res.MeanWait, res.UtilizationMean)
	return nil
}

func parseClass(s string) (workload.Class, error) {
	for _, c := range []workload.Class{
		workload.ClassSynthetic, workload.ClassScientific, workload.ClassComputerEngineering,
		workload.ClassBusinessCritical, workload.ClassBigData, workload.ClassGaming,
		workload.ClassIndustrial,
	} {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown workload class %q", s)
}

func parseKind(s string) (cluster.Kind, error) {
	for _, k := range []cluster.Kind{
		cluster.KindCluster, cluster.KindGrid, cluster.KindCloud,
		cluster.KindMultiCluster, cluster.KindGeoDistributed,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown environment %q", s)
}
