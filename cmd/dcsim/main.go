// Command dcsim runs one datacenter scheduling simulation: a workload class
// on an environment under either a static policy or the portfolio scheduler,
// and prints job-level metrics.
//
// Usage:
//
//	dcsim -workload Sci -env CL -policy portfolio -jobs 200 -seed 1 [-replicas R] [-format text|json]
//
// With -replicas > 1 the simulation repeats under derived seeds and the
// metrics are reported as mean ± half-width of a 95% confidence interval.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"atlarge"
	"atlarge/internal/cluster"
	"atlarge/internal/portfolio"
	"atlarge/internal/sched"
	"atlarge/internal/stats"
	"atlarge/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}
}

// metrics is one replica's outcome, or (with CI set) the aggregate.
type metrics struct {
	Policy       string  `json:"policy"`
	Workload     string  `json:"workload"`
	Environment  string  `json:"environment"`
	Jobs         int     `json:"jobs"`
	Replicas     int     `json:"replicas"`
	MeanSlowdown float64 `json:"mean_slowdown"`
	MeanResponse float64 `json:"mean_response_s"`
	// CI half-widths (95%, normal approximation); zero for one replica.
	SlowdownCI float64 `json:"mean_slowdown_ci"`
	ResponseCI float64 `json:"mean_response_s_ci"`
}

func run() error {
	var (
		workloadName = flag.String("workload", "Sci", "workload class: Syn Sci CE BC BD G Ind")
		envName      = flag.String("env", "CL", "environment: CL G CD MCD GDC")
		policyName   = flag.String("policy", "portfolio", "policy name or 'portfolio'")
		jobs         = flag.Int("jobs", 200, "number of jobs")
		seed         = flag.Int64("seed", 1, "random seed")
		replicas     = flag.Int("replicas", 1, "replicas under derived seeds, aggregated as mean±95% CI")
		format       = flag.String("format", "text", "output format: text or json")
	)
	flag.Parse()
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	if *replicas < 1 {
		*replicas = 1
	}

	class, err := workload.ClassByName(*workloadName)
	if err != nil {
		return err
	}
	kind, err := cluster.KindByName(*envName)
	if err != nil {
		return err
	}
	if !strings.EqualFold(*policyName, "portfolio") {
		if _, err := sched.PolicyByName(*policyName); err != nil {
			return fmt.Errorf("%w (or %q)", err, "portfolio")
		}
	}

	var slowdowns, responses []float64
	for rep := 0; rep < *replicas; rep++ {
		// Replica 0 runs the base seed (so a single run reproduces the
		// classic -seed behavior); further replicas use the shared seed
		// derivation to decorrelate them across adjacent base seeds.
		repSeed := *seed
		if rep > 0 {
			repSeed = atlarge.DeriveSeed(*seed, "dcsim", rep)
		}
		sd, resp, err := runOnce(class, kind, *policyName, *jobs, repSeed, *format == "text" && *replicas == 1)
		if err != nil {
			return err
		}
		slowdowns = append(slowdowns, sd)
		responses = append(responses, resp)
	}

	m := metrics{
		Policy:       *policyName,
		Workload:     class.String(),
		Environment:  kind.String(),
		Jobs:         *jobs,
		Replicas:     *replicas,
		MeanSlowdown: stats.Mean(slowdowns),
		MeanResponse: stats.Mean(responses),
		SlowdownCI:   stats.HalfWidth95(slowdowns),
		ResponseCI:   stats.HalfWidth95(responses),
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	}
	if *replicas > 1 {
		fmt.Printf("%s on %s/%s over %d replicas: mean slowdown %.2f±%.2f, mean response %.0f±%.0fs\n",
			m.Policy, m.Workload, m.Environment, m.Replicas,
			m.MeanSlowdown, m.SlowdownCI, m.MeanResponse, m.ResponseCI)
	}
	return nil
}

// runOnce executes one simulation replica and returns (mean slowdown, mean
// response). With verbose set it prints the full per-window/per-job detail.
func runOnce(class workload.Class, kind cluster.Kind, policyName string, jobs int, seed int64, verbose bool) (float64, float64, error) {
	tr := workload.StandardGenerator(class).Generate(jobs, rand.New(rand.NewSource(seed)))
	envFactory := func() *cluster.Environment { return cluster.StandardEnvironment(kind) }

	if strings.EqualFold(policyName, "portfolio") {
		s := &portfolio.Scheduler{
			Policies:   sched.DefaultPortfolio(),
			Selector:   portfolio.Exhaustive{},
			WindowSize: 25,
			EnvFactory: envFactory,
			Seed:       seed,
		}
		res, err := s.Run(tr)
		if err != nil {
			return 0, 0, err
		}
		if verbose {
			fmt.Printf("portfolio scheduler on %s/%s: %d windows, mean slowdown %.2f, mean response %.0fs, %d selection sims\n",
				class, kind, len(res.Choices), res.MeanSlowdown, res.MeanResponse, res.TotalSimRuns)
			for _, c := range res.Choices {
				fmt.Printf("  window %2d -> %-10s realized slowdown %.2f\n", c.Window, c.Policy, c.Realized)
			}
		}
		return res.MeanSlowdown, res.MeanResponse, nil
	}

	policy, err := sched.PolicyByName(policyName)
	if err != nil {
		return 0, 0, err
	}
	res, err := sched.NewSimulator(envFactory(), tr, policy, seed).Run()
	if err != nil {
		return 0, 0, err
	}
	if verbose {
		fmt.Printf("%s on %s/%s: %d jobs, makespan %.0fs, mean slowdown %.2f, mean wait %.0fs, utilization %.2f\n",
			policy.Name(), class, kind, len(res.Jobs), float64(res.Makespan),
			res.MeanSlowdown, res.MeanWait, res.UtilizationMean)
	}
	return res.MeanSlowdown, float64(res.MeanResponse), nil
}
