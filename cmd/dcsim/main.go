// Command dcsim runs one datacenter scheduling simulation: a workload class
// on an environment under either a static policy or the portfolio scheduler,
// and prints job-level metrics.
//
// Usage:
//
//	dcsim -workload Sci -env CL -policy portfolio -jobs 200 -seed 1 [-replicas R] [-format text|json]
//
// With -replicas > 1 the simulation repeats under derived seeds and the
// metrics are reported as mean ± half-width of a 95% confidence interval.
// Each replica produces a typed atlarge.Report; replicas aggregate in value
// space through atlarge.AggregateReports (Results API v2), and the JSON
// output keeps its original flat schema.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"atlarge"
	"atlarge/internal/cluster"
	"atlarge/internal/portfolio"
	"atlarge/internal/sched"
	"atlarge/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}
}

// metrics is the flat JSON document: one replica's outcome, or (with CI
// set) the aggregate. The schema predates the typed Results API and is kept
// stable for downstream tooling.
type metrics struct {
	Policy       string  `json:"policy"`
	Workload     string  `json:"workload"`
	Environment  string  `json:"environment"`
	Jobs         int     `json:"jobs"`
	Replicas     int     `json:"replicas"`
	MeanSlowdown float64 `json:"mean_slowdown"`
	MeanResponse float64 `json:"mean_response_s"`
	// CI half-widths (95%, normal approximation); zero for one replica.
	SlowdownCI float64 `json:"mean_slowdown_ci"`
	ResponseCI float64 `json:"mean_response_s_ci"`
}

func run() error {
	var (
		workloadName = flag.String("workload", "Sci", "workload class: Syn Sci CE BC BD G Ind")
		envName      = flag.String("env", "CL", "environment: CL G CD MCD GDC")
		policyName   = flag.String("policy", "portfolio", "policy name or 'portfolio'")
		jobs         = flag.Int("jobs", 200, "number of jobs")
		seed         = flag.Int64("seed", 1, "random seed")
		replicas     = flag.Int("replicas", 1, "replicas under derived seeds, aggregated as mean±95% CI")
		format       = flag.String("format", "text", "output format: text or json")
	)
	flag.Parse()
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	if *replicas < 1 {
		*replicas = 1
	}

	class, err := workload.ClassByName(*workloadName)
	if err != nil {
		return err
	}
	kind, err := cluster.KindByName(*envName)
	if err != nil {
		return err
	}
	if !strings.EqualFold(*policyName, "portfolio") {
		if _, err := sched.PolicyByName(*policyName); err != nil {
			return fmt.Errorf("%w (or %q)", err, "portfolio")
		}
	}

	reports := make([]*atlarge.Report, 0, *replicas)
	for rep := 0; rep < *replicas; rep++ {
		// Replica 0 runs the base seed (so a single run reproduces the
		// classic -seed behavior); further replicas use the shared seed
		// derivation to decorrelate them across adjacent base seeds.
		repSeed := *seed
		if rep > 0 {
			repSeed = atlarge.DeriveSeed(*seed, "dcsim", rep)
		}
		r, err := runOnce(class, kind, *policyName, *jobs, repSeed)
		if err != nil {
			return err
		}
		reports = append(reports, r)
	}
	summary := reports[0]
	if agg := atlarge.AggregateReports(reports); agg != nil {
		summary = agg
	}
	slowdown, _ := summary.Metric("mean_slowdown")
	response, _ := summary.Metric("mean_response_s")

	m := metrics{
		Policy:       *policyName,
		Workload:     class.String(),
		Environment:  kind.String(),
		Jobs:         *jobs,
		Replicas:     *replicas,
		MeanSlowdown: slowdown.Value,
		MeanResponse: response.Value,
		SlowdownCI:   slowdown.CI95,
		ResponseCI:   response.CI95,
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	}
	if *replicas > 1 {
		fmt.Printf("%s on %s/%s over %d replicas: mean slowdown %.2f±%.2f, mean response %.0f±%.0fs\n",
			m.Policy, m.Workload, m.Environment, m.Replicas,
			m.MeanSlowdown, m.SlowdownCI, m.MeanResponse, m.ResponseCI)
		return nil
	}
	fmt.Printf("== %s: %s ==\n", summary.ID, summary.Title)
	return summary.WriteText(os.Stdout, "  ")
}

// runOnce executes one simulation replica and returns its typed report.
// Every variant emits mean_slowdown and mean_response_s first, so replica
// documents align for value-space aggregation.
func runOnce(class workload.Class, kind cluster.Kind, policyName string, jobs int, seed int64) (*atlarge.Report, error) {
	tr := workload.StandardGenerator(class).Generate(jobs, rand.New(rand.NewSource(seed)))
	envFactory := func() *cluster.Environment { return cluster.StandardEnvironment(kind) }

	if strings.EqualFold(policyName, "portfolio") {
		s := &portfolio.Scheduler{
			Policies:   sched.DefaultPortfolio(),
			Selector:   portfolio.Exhaustive{},
			WindowSize: 25,
			EnvFactory: envFactory,
			Seed:       seed,
		}
		res, err := s.Run(tr)
		if err != nil {
			return nil, err
		}
		rep := atlarge.NewReport("dcsim", fmt.Sprintf("portfolio scheduler on %s/%s", class, kind))
		rep.AddMetric(atlarge.Metric{Name: "mean_slowdown", Value: res.MeanSlowdown})
		rep.AddMetric(atlarge.Metric{Name: "mean_response_s", Value: res.MeanResponse, Unit: "s"})
		rep.AddMetric(atlarge.Metric{Name: "windows", Value: float64(len(res.Choices))})
		rep.AddMetric(atlarge.Metric{Name: "selection_sims", Value: float64(res.TotalSimRuns)})
		t := rep.AddTable("windows", "window", "policy", "realized_slowdown")
		for _, c := range res.Choices {
			t.AddRow(atlarge.Count(c.Window), atlarge.Label(c.Policy), atlarge.Num(c.Realized, "%.2f"))
		}
		return rep, nil
	}

	policy, err := sched.PolicyByName(policyName)
	if err != nil {
		return nil, err
	}
	res, err := sched.NewSimulator(envFactory(), tr, policy, seed).Run()
	if err != nil {
		return nil, err
	}
	rep := atlarge.NewReport("dcsim", fmt.Sprintf("%s on %s/%s", policy.Name(), class, kind))
	rep.AddMetric(atlarge.Metric{Name: "mean_slowdown", Value: res.MeanSlowdown})
	rep.AddMetric(atlarge.Metric{Name: "mean_response_s", Value: float64(res.MeanResponse), Unit: "s"})
	rep.AddMetric(atlarge.Metric{Name: "jobs", Value: float64(len(res.Jobs))})
	rep.AddMetric(atlarge.Metric{Name: "makespan_s", Value: float64(res.Makespan), Unit: "s"})
	rep.AddMetric(atlarge.Metric{Name: "mean_wait_s", Value: res.MeanWait, Unit: "s"})
	rep.AddMetric(atlarge.Metric{Name: "utilization", Value: res.UtilizationMean, HigherBetter: true})
	return rep, nil
}
