// Command btworld simulates a BTWorld-style measurement campaign over a
// synthetic global BitTorrent ecosystem and prints the monitor report,
// including sampling bias against the known ground truth.
//
// Usage:
//
//	btworld -trackers 200 -sample 0.25 -filter-spam -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"atlarge/internal/p2p"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "btworld:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		trackers   = flag.Int("trackers", 120, "trackers in the ecosystem")
		sample     = flag.Float64("sample", 0.5, "fraction of trackers scraped")
		filterSpam = flag.Bool("filter-spam", false, "apply spam-tracker filtering")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := p2p.DefaultEcosystemConfig()
	cfg.Trackers = *trackers
	cfg.Seed = *seed
	eco := p2p.GenerateEcosystem(cfg)
	rep, err := p2p.Monitor{SampleFraction: *sample, FilterSpam: *filterSpam, Seed: *seed}.Scrape(eco)
	if err != nil {
		return err
	}
	fmt.Printf("ground truth: %d trackers, %d real peers, %d contents\n",
		len(eco.Trackers), eco.TruePeers, eco.TrueContents)
	fmt.Printf("scraped %d trackers (%.0f%%), saw %d swarms, %d peers (%d from spam)\n",
		rep.TrackersScraped, 100**sample, rep.SwarmsSeen, rep.PeersObserved, rep.SpamPeers)
	fmt.Printf("estimate %d peers -> bias %+.1f%%\n", rep.PeersEstimate, 100*rep.Bias)
	fmt.Printf("giant swarms: %d; contents seen: %d, aliased: %d (mean %.1f swarms/content)\n",
		rep.GiantSwarms, rep.ContentsSeen, rep.AliasedContents, rep.MeanAliasFactor)
	return nil
}
