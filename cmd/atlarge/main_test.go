package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"run", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"run", "fig9", "--format", "yaml"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
	ids := strings.Fields(buf.String())
	if len(ids) != 12 || ids[0] != "fig1" || ids[len(ids)-1] != "bdc" {
		t.Errorf("list = %v", ids)
	}
	buf.Reset()
	if err := runTo(&buf, []string{"list", "-tag", "slow"}); err != nil {
		t.Fatalf("list -tag: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "tab9" {
		t.Errorf("list -tag slow = %q, want tab9", got)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"run", "fig9", "-seed", "7"}); err != nil {
		t.Fatalf("run fig9: %v", err)
	}
}

// TestRunInterleavedFlags pins that ids may appear between and after flags.
func TestRunInterleavedFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"run", "--seed", "7", "fig9", "--format", "json", "bdc"}); err != nil {
		t.Fatalf("interleaved: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"id": "fig9"`) || !strings.Contains(out, `"id": "bdc"`) {
		t.Errorf("interleaved ids not run:\n%s", out)
	}
	if !strings.Contains(out, `"seed": 7`) {
		t.Errorf("seed flag lost:\n%s", out)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	args := func(parallel string) []string {
		return []string{"run", "fig7", "fig9", "bdc", "--seed", "11", "--replicas", "2", "--parallel", parallel, "--format", "json"}
	}
	var seq, par bytes.Buffer
	if err := runTo(&seq, args("1")); err != nil {
		t.Fatal(err)
	}
	if err := runTo(&par, args("8")); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Error("parallel JSON differs from sequential")
	}
	var out struct {
		Seed        int64 `json:"seed"`
		Experiments []struct {
			ID        string   `json:"id"`
			Replicas  int      `json:"replicas"`
			Rows      []string `json:"rows"`
			Aggregate []string `json:"aggregate"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(seq.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.Seed != 11 || len(out.Experiments) != 3 {
		t.Fatalf("unexpected shape: %+v", out)
	}
	for _, e := range out.Experiments {
		if e.Replicas != 2 || len(e.Rows) == 0 || len(e.Aggregate) == 0 {
			t.Errorf("experiment %s incomplete: %+v", e.ID, e)
		}
	}
}

func TestRunTextFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"run", "fig9"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== fig9: Figure 9") {
		t.Errorf("text header missing:\n%s", buf.String())
	}
}
