package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atlarge"
)

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"run", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"run", "fig9", "--format", "yaml"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
	ids := strings.Fields(buf.String())
	if len(ids) != 12 || ids[0] != "fig1" || ids[len(ids)-1] != "bdc" {
		t.Errorf("list = %v", ids)
	}
	buf.Reset()
	if err := runTo(&buf, []string{"list", "-tag", "slow"}); err != nil {
		t.Fatalf("list -tag: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "tab9" {
		t.Errorf("list -tag slow = %q, want tab9", got)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"run", "fig9", "-seed", "7"}); err != nil {
		t.Fatalf("run fig9: %v", err)
	}
}

// TestRunInterleavedFlags pins that ids may appear between and after flags.
func TestRunInterleavedFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"run", "--seed", "7", "fig9", "--format", "json", "bdc"}); err != nil {
		t.Fatalf("interleaved: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"id": "fig9"`) || !strings.Contains(out, `"id": "bdc"`) {
		t.Errorf("interleaved ids not run:\n%s", out)
	}
	if !strings.Contains(out, `"seed": 7`) {
		t.Errorf("seed flag lost:\n%s", out)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	args := func(parallel string) []string {
		return []string{"run", "fig7", "fig9", "bdc", "--seed", "11", "--replicas", "2", "--parallel", parallel, "--format", "json"}
	}
	var seq, par bytes.Buffer
	if err := runTo(&seq, args("1")); err != nil {
		t.Fatal(err)
	}
	if err := runTo(&par, args("8")); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Error("parallel JSON differs from sequential")
	}
	var out atlarge.RunDocument
	if err := json.Unmarshal(seq.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.Seed != 11 || len(out.Experiments) != 3 {
		t.Fatalf("unexpected shape: %+v", out)
	}
	ciSeen := false // fig9 is seed-independent; fig7 and bdc vary
	for _, e := range out.Experiments {
		if e.Replicas != 2 || e.Report == nil || e.Aggregate == nil {
			t.Errorf("experiment %s incomplete: %+v", e.ID, e)
			continue
		}
		if len(e.Report.Metrics) == 0 {
			t.Errorf("experiment %s has no typed metrics", e.ID)
		}
		for _, m := range e.Aggregate.Metrics {
			if m.CI95 != 0 {
				ciSeen = true
			}
		}
	}
	if !ciSeen {
		t.Error("no aggregate metric carries a CI")
	}
}

func TestRunTextFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"run", "fig9"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== fig9: Figure 9") {
		t.Errorf("text header missing:\n%s", buf.String())
	}
}

func TestListJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"list", "--format", "json"}); err != nil {
		t.Fatal(err)
	}
	var entries []struct {
		ID    string   `json:"id"`
		Title string   `json:"title"`
		Tags  []string `json:"tags"`
		Order int      `json:"order"`
	}
	if err := json.Unmarshal(buf.Bytes(), &entries); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(entries) != 12 {
		t.Fatalf("got %d entries, want 12", len(entries))
	}
	if entries[0].ID != "fig1" || entries[0].Title == "" || len(entries[0].Tags) == 0 {
		t.Errorf("first entry incomplete: %+v", entries[0])
	}
	buf.Reset()
	if err := runTo(&buf, []string{"list", "-tag", "no-such-tag", "--format", "json"}); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty filter should emit [], got %q", got)
	}
	if err := runTo(&buf, []string{"list", "--format", "yaml"}); err == nil {
		t.Error("unknown list format accepted")
	}
}

const exampleSweepSpec = "../../examples/scenarios/policy-vs-load.json"

func TestScenarioValidate(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"scenario", "validate", exampleSweepSpec}); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !strings.Contains(buf.String(), "expands to 9 scenario(s)") {
		t.Errorf("validate output: %q", buf.String())
	}
}

func TestScenarioValidateRejectsMalformed(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	spec := `{"version": 1, "name": "x", "workload": {"class": "hpc"}, "policy": "heft"}`
	if err := os.WriteFile(bad, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runTo(&bytes.Buffer{}, []string{"scenario", "validate", bad})
	if err == nil {
		t.Fatal("malformed spec accepted")
	}
	for _, want := range []string{"workload.class", "policy", "known:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
}

func TestScenarioUsageErrors(t *testing.T) {
	if err := runTo(&bytes.Buffer{}, []string{"scenario"}); err == nil {
		t.Error("bare scenario accepted")
	}
	if err := runTo(&bytes.Buffer{}, []string{"scenario", "frobnicate", exampleSweepSpec}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := runTo(&bytes.Buffer{}, []string{"scenario", "validate"}); err == nil {
		t.Error("missing spec path accepted")
	}
	if err := runTo(&bytes.Buffer{}, []string{"scenario", "sweep", exampleSweepSpec, "--format", "xml"}); err == nil {
		t.Error("unknown format accepted")
	}
	// `run` on a sweep spec must point at `sweep`.
	err := runTo(&bytes.Buffer{}, []string{"scenario", "run", exampleSweepSpec})
	if err == nil || !strings.Contains(err.Error(), "scenario sweep") {
		t.Errorf("run on sweep spec: %v", err)
	}
}

// TestScenarioSweepParallelParity pins the acceptance criterion: the JSON
// report of the committed example sweep is byte-identical at --parallel 1
// and --parallel 8.
func TestScenarioSweepParallelParity(t *testing.T) {
	render := func(parallel string) string {
		var buf bytes.Buffer
		args := []string{"scenario", "sweep", exampleSweepSpec,
			"--replicas", "3", "--parallel", parallel, "--format", "json"}
		if err := runTo(&buf, args); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render("1") != render("8") {
		t.Error("sweep JSON differs between --parallel 1 and --parallel 8")
	}
}

func TestScenarioRunSingle(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "single.json")
	src := `{"version": 1, "name": "single", "policy": "sjf",
		"workload": {"class": "syn", "jobs": 10}, "cluster": {"machines": 4}}`
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"scenario", "run", spec, "--seed", "5", "--format", "csv"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "scenario,metric,mean,ci95\n") {
		t.Errorf("csv header: %q", out)
	}
	if !strings.Contains(out, "single,mean_response_s,") {
		t.Errorf("csv missing response metric:\n%s", out)
	}
}

// TestBareDashIsPositional pins that a bare "-" argument terminates (it used
// to spin forever: flag.Parse stops at "-" without consuming it).
func TestBareDashIsPositional(t *testing.T) {
	if err := runTo(&bytes.Buffer{}, []string{"run", "-"}); err == nil {
		t.Error(`bare "-" should be an unknown experiment`)
	}
	err := runTo(&bytes.Buffer{}, []string{"scenario", "validate", exampleSweepSpec, "-"})
	if err == nil || !strings.Contains(err.Error(), "exactly one spec file") {
		t.Errorf(`bare "-" should count as a second path: %v`, err)
	}
}

// TestDoubleDashTerminatesFlags pins the standard "--" escape: everything
// after it is positional, even when it starts with "-".
func TestDoubleDashTerminatesFlags(t *testing.T) {
	err := runTo(&bytes.Buffer{}, []string{"run", "--seed", "7", "--", "-weird-id"})
	if err == nil || !strings.Contains(err.Error(), `unknown experiment "-weird-id"`) {
		t.Errorf(`"--" did not make "-weird-id" positional: %v`, err)
	}
	err = runTo(&bytes.Buffer{}, []string{"scenario", "validate", "--", "-no-such-spec.json"})
	if err == nil || !strings.Contains(err.Error(), "-no-such-spec.json") {
		t.Errorf(`"--" did not make the spec path positional: %v`, err)
	}
}

// TestScenarioSubcommandCheckedFirst pins that a typoed subcommand is
// reported before any flag parsing or spec loading.
func TestScenarioSubcommandCheckedFirst(t *testing.T) {
	err := runTo(&bytes.Buffer{}, []string{"scenario", "sweeep", "/nonexistent.json"})
	if err == nil || !strings.Contains(err.Error(), `unknown scenario subcommand "sweeep"`) {
		t.Errorf("typoed subcommand not reported first: %v", err)
	}
}

// TestListDomains pins the domain catalog listing in both formats.
func TestListDomains(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"list", "--domains"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sched", "autoscale", "mmog", "axes:", "objective:"} {
		if !strings.Contains(out, want) {
			t.Errorf("list --domains missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := runTo(&buf, []string{"list", "--domains", "--format", "json"}); err != nil {
		t.Fatal(err)
	}
	var entries []struct {
		Name             string   `json:"name"`
		Axes             []string `json:"axes"`
		DefaultObjective string   `json:"default_objective"`
		Metrics          []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &entries); err != nil {
		t.Fatalf("list --domains --format json: %v\n%s", err, buf.String())
	}
	if len(entries) != 3 || entries[0].Name != "autoscale" {
		t.Fatalf("domain entries: %+v", entries)
	}
	if len(entries[0].Axes) == 0 || len(entries[0].Metrics) == 0 || entries[0].DefaultObjective == "" {
		t.Errorf("autoscale entry incomplete: %+v", entries[0])
	}
}

const (
	autoscaleSweepSpec = "../../examples/scenarios/autoscaler-vs-load.json"
	mmogSweepSpec      = "../../examples/scenarios/mmog-partitioners.json"
)

// TestScenarioDomainFlag pins the --domain semantics: it validates against
// the registry, fills a spec without a domain, passes when it matches the
// spec's declaration, and errors on a mismatch.
func TestScenarioDomainFlag(t *testing.T) {
	if err := runTo(&bytes.Buffer{}, []string{"scenario", "validate", autoscaleSweepSpec, "--domain", "autoscale"}); err != nil {
		t.Errorf("matching --domain rejected: %v", err)
	}
	err := runTo(&bytes.Buffer{}, []string{"scenario", "validate", autoscaleSweepSpec, "--domain", "mmog"})
	if err == nil || !strings.Contains(err.Error(), `declares domain "autoscale"`) {
		t.Errorf("mismatched --domain: %v", err)
	}
	err = runTo(&bytes.Buffer{}, []string{"scenario", "validate", autoscaleSweepSpec, "--domain", "serverless"})
	if err == nil || !strings.Contains(err.Error(), "unknown domain") {
		t.Errorf("unknown --domain: %v", err)
	}

	// A spec without a domain field (version 2) is completed by the flag.
	spec := filepath.Join(t.TempDir(), "nodomain.json")
	src := `{"version": 2, "name": "nd", "mmog": {"partitioner": "aos", "entities": 60, "ticks": 3}}`
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTo(&bytes.Buffer{}, []string{"scenario", "validate", spec}); err == nil {
		t.Error("domain-less v2 spec accepted without --domain")
	}
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"scenario", "validate", spec, "--domain", "mmog"}); err != nil {
		t.Errorf("--domain fill failed: %v", err)
	}
}

// TestScenarioDomainSweepsParallelParity pins the acceptance criterion for
// the new domains: byte-identical JSON sweeps at --parallel 1 and 8.
func TestScenarioDomainSweepsParallelParity(t *testing.T) {
	for _, tc := range []struct{ spec, domain string }{
		{autoscaleSweepSpec, "autoscale"},
		{mmogSweepSpec, "mmog"},
	} {
		render := func(parallel string) string {
			var buf bytes.Buffer
			args := []string{"scenario", "sweep", tc.spec, "--domain", tc.domain,
				"--replicas", "2", "--parallel", parallel, "--format", "json"}
			if err := runTo(&buf, args); err != nil {
				t.Fatal(err)
			}
			return buf.String()
		}
		if render("1") != render("8") {
			t.Errorf("%s sweep JSON differs between --parallel 1 and --parallel 8", tc.domain)
		}
	}
}

// TestRunAllJSONParallelParity pins the acceptance criterion of the typed
// Results API: `run --all --format json` is byte-identical at --parallel 1
// and --parallel 8. Skipped in -short (the catalog includes the slow tab9).
func TestRunAllJSONParallelParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog sweep is slow")
	}
	render := func(parallel string) string {
		var buf bytes.Buffer
		args := []string{"run", "--all", "--seed", "42", "--replicas", "2",
			"--parallel", parallel, "--format", "json"}
		if err := runTo(&buf, args); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render("1") != render("8") {
		t.Error("run --all JSON differs between --parallel 1 and --parallel 8")
	}
}

// TestCatalogGolden pins `list --format json` against the committed catalog
// golden (also enforced end-to-end by `make catalog-golden` in CI), so the
// machine-readable catalog cannot drift silently.
func TestCatalogGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"list", "--format", "json"}); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "catalog.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(golden) {
		t.Errorf("catalog JSON differs from testdata/catalog.golden.json; regenerate it if the change is intentional:\n%s", buf.String())
	}
}

// TestServeSubcommandFlagErrors keeps the serve flag set honest without
// binding a socket.
func TestServeSubcommandFlagErrors(t *testing.T) {
	if err := runTo(&bytes.Buffer{}, []string{"serve", "--bogus"}); err == nil {
		t.Error("unknown serve flag accepted")
	}
	if err := runTo(&bytes.Buffer{}, []string{"serve", "--addr", "256.0.0.1:bad"}); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// TestScenarioSweepCheckpointResume: a sweep with --checkpoint writes the
// run directory and a rerun over the warm directory yields byte-identical
// JSON to a cold run.
func TestScenarioSweepCheckpointResume(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "sweep.json")
	src := `{"version": 1, "name": "ckpt", "workload": {"class": "syn", "jobs": 8},
		"cluster": {"machines": 2}, "replicas": 2, "seed": 3,
		"sweep": {"policy": ["sjf", "fcfs"]}}`
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	render := func(extra ...string) string {
		var buf bytes.Buffer
		args := append([]string{"scenario", "sweep", spec, "--format", "json"}, extra...)
		if err := runTo(&buf, args); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cold := render()
	first := render("--checkpoint", dir)
	if first != cold {
		t.Error("checkpointed run differs from plain run")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*", "task-*.json"))
	if err != nil || len(files) != 4 {
		t.Fatalf("run directory holds %d task files (err %v), want 4", len(files), err)
	}
	if resumed := render("--checkpoint", dir, "--parallel", "1"); resumed != cold {
		t.Error("resumed run differs from cold run")
	}
}

// TestScenarioCheckpointRequiresSweep: --checkpoint outside sweep errors.
func TestScenarioCheckpointRequiresSweep(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "single.json")
	src := `{"version": 1, "name": "single", "policy": "sjf",
		"workload": {"class": "syn", "jobs": 4}}`
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"scenario", "run", spec, "--checkpoint", t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "--checkpoint") {
		t.Errorf("checkpoint on run accepted: %v", err)
	}
}

// TestRunTimeoutAborts: an already-expired --timeout aborts the run with a
// timeout error instead of running anything.
func TestRunTimeoutAborts(t *testing.T) {
	err := run([]string{"run", "fig9", "--timeout", "1ns"})
	if err == nil || !strings.Contains(err.Error(), "--timeout") {
		t.Errorf("timeout not surfaced: %v", err)
	}
}

// TestScenarioSweepTimeoutAborts: same for sweeps, which also name the
// checkpoint resume path when one is set.
func TestScenarioSweepTimeoutAborts(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"scenario", "sweep", exampleSweepSpec, "--timeout", "1ns", "--checkpoint", dir})
	if err == nil || !strings.Contains(err.Error(), "--timeout") {
		t.Errorf("timeout not surfaced: %v", err)
	}
}
