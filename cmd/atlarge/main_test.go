package main

import "testing"

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"run", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"run", "fig9", "-seed", "7"}); err != nil {
		t.Fatalf("run fig9: %v", err)
	}
}
