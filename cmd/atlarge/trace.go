package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"atlarge"
	"atlarge/internal/obs"
	"atlarge/internal/scenario"
)

// runTrace implements `atlarge trace`: run one experiment or one scenario
// cell sequentially with the kernel tracer and executor spans attached,
// write the capture as NDJSON and Chrome trace-event JSON, and print the
// per-event-name profile. `--validate FILE` instead checks an existing
// Chrome trace file and exits.
func runTrace(w io.Writer, args []string) error {
	usage := "usage: atlarge trace <experiment-id> [flags] | atlarge trace --spec FILE [--cell ID] [flags] | atlarge trace --validate FILE"
	fs := newFlagSet("trace")
	var (
		specPath = fs.String("spec", "", "scenario spec file: trace one cell of its sweep (see --cell)")
		cell     = fs.String("cell", "", "cell ID within --spec's sweep (defaults to the only cell; errors list the choices)")
		seed     = fs.Int64("seed", 42, "base seed (--spec default: the spec's seed)")
		dir      = fs.String("dir", "trace-out", "output directory for trace.ndjson and trace.json")
		wall     = fs.Bool("wall", false, "include wall-clock fields: handler ns, worker spans (nondeterministic across runs)")
		events   = fs.Int("events", 0, "per-kernel trace record cap (0 = 65536); later records are counted as dropped")
		validate = fs.String("validate", "", "validate FILE as Chrome trace-event JSON and exit")
		timeout  = fs.Duration("timeout", 0, "abort the traced run after this duration (0 = no limit)")
	)
	targets, err := parseInterleaved(fs, args)
	if err != nil {
		return err
	}
	if *validate != "" {
		if len(targets) > 0 || *specPath != "" {
			return fmt.Errorf("--validate takes no other target\n%s", usage)
		}
		if err := obs.ValidateChromeFile(*validate); err != nil {
			return err
		}
		fmt.Fprintf(w, "ok: %s is well-formed Chrome trace JSON (monotone per-track timestamps)\n", *validate)
		return nil
	}
	seedSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	ctx, cancel := withTimeout(*timeout)
	defer cancel()

	// Capture every kernel created during the run; attribution happens
	// afterwards via the derived per-task seeds.
	col := &obs.Collector{MaxEvents: *events}
	restore := col.Install()
	defer restore()
	spans := &obs.SpanLog{}

	var tr *obs.Trace
	switch {
	case *specPath != "":
		if len(targets) > 0 {
			return fmt.Errorf("--spec and a positional experiment are mutually exclusive\n%s", usage)
		}
		tr, err = traceCell(ctx, *specPath, *cell, seedSet, *seed, col, spans)
	case len(targets) == 1:
		if *cell != "" {
			return fmt.Errorf("--cell requires --spec\n%s", usage)
		}
		tr, err = traceExperiment(ctx, targets[0], *seed, col, spans)
	default:
		return fmt.Errorf("trace wants exactly one experiment ID or --spec FILE, got %d targets\n%s", len(targets), usage)
	}
	if err != nil {
		return err
	}
	tr.Wall = *wall

	if err := writeTraceFiles(w, tr, *dir); err != nil {
		return err
	}
	rep := atlarge.NewReport("trace", "trace profile: "+tr.Target)
	rep.Tables = append(rep.Tables, obs.ProfileTable(obs.MergeProfiles(tr.Sections), *wall))
	if streams := obs.MergeStreams(tr.Sections); len(streams) > 0 {
		rep.Tables = append(rep.Tables, obs.StreamTable(streams))
	}
	return rep.WriteText(w, "  ")
}

// traceCell runs one cell of a scenario spec (single replica, sequential)
// under the installed collector and returns the attributed trace.
func traceCell(ctx context.Context, path, cellID string, seedSet bool, seed int64, col *obs.Collector, spans *obs.SpanLog) (*obs.Trace, error) {
	spec, err := scenario.Load(path)
	if err != nil {
		return nil, err
	}
	cells, err := scenario.Expand(spec)
	if err != nil {
		return nil, err
	}
	var picked *scenario.Scenario
	switch {
	case cellID == "" && len(cells) == 1:
		picked = &cells[0]
	case cellID == "":
		ids := make([]string, len(cells))
		for i := range cells {
			ids[i] = cells[i].ID()
		}
		return nil, fmt.Errorf("spec %q expands to %d cells; pick one with --cell:\n  %s",
			spec.Name, len(cells), strings.Join(ids, "\n  "))
	default:
		for i := range cells {
			if cells[i].ID() == cellID {
				picked = &cells[i]
				break
			}
		}
		if picked == nil {
			ids := make([]string, len(cells))
			for i := range cells {
				ids[i] = cells[i].ID()
			}
			return nil, fmt.Errorf("no cell %q in spec %q; available:\n  %s",
				cellID, spec.Name, strings.Join(ids, "\n  "))
		}
	}

	opt := scenario.Options{Replicas: 1, Parallelism: 1, SpanObserver: spans.Observe}
	if seedSet {
		opt.Seed = &seed
	}
	effSeed := spec.Seed
	if seedSet {
		effSeed = seed
	}
	one := []scenario.Scenario{*picked}
	if _, err := scenario.Run(ctx, spec, one, opt); err != nil {
		return nil, err
	}
	id := picked.ID()
	tasks := map[int64]obs.TaskRef{
		atlarge.DeriveSeed(effSeed, id, 0): {Index: 0, ID: id + "#0"},
	}
	return &obs.Trace{Target: id, Seed: effSeed, Sections: col.Sections(tasks), Spans: spans.Sorted()}, nil
}

// traceExperiment runs one catalog experiment (single replica, sequential)
// under the installed collector and returns the attributed trace.
func traceExperiment(ctx context.Context, id string, seed int64, col *obs.Collector, spans *obs.SpanLog) (*obs.Trace, error) {
	runner := &atlarge.Runner{Parallelism: 1, Replicas: 1, SpanObserver: spans.Observe}
	if _, err := runner.RunContext(ctx, []string{id}, seed); err != nil {
		return nil, err
	}
	return &obs.Trace{
		Target:   id,
		Seed:     seed,
		Sections: col.Sections(taskSeedMap(seed, []string{id}, 1)),
		Spans:    spans.Sorted(),
	}, nil
}

// taskSeedMap computes the seed → task attribution for a plan of (id,
// replica) tasks in experiment-major order, mirroring the runner's layout.
func taskSeedMap(baseSeed int64, ids []string, replicas int) map[int64]obs.TaskRef {
	if replicas <= 0 {
		replicas = 1
	}
	tasks := make(map[int64]obs.TaskRef, len(ids)*replicas)
	for i, id := range ids {
		for k := 0; k < replicas; k++ {
			tasks[atlarge.DeriveSeed(baseSeed, id, k)] = obs.TaskRef{
				Index: i*replicas + k,
				ID:    id + "#" + strconv.Itoa(k),
			}
		}
	}
	return tasks
}

// writeTraceFiles writes trace.ndjson and trace.json (Chrome trace-event
// JSON) under dir, creating it as needed, and prints where they went.
func writeTraceFiles(w io.Writer, tr *obs.Trace, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ndPath := filepath.Join(dir, "trace.ndjson")
	chromePath := filepath.Join(dir, "trace.json")
	if err := writeTo(ndPath, tr.WriteNDJSON); err != nil {
		return err
	}
	if err := writeTo(chromePath, tr.WriteChrome); err != nil {
		return err
	}
	fmt.Fprintf(w, "trace %s: %d kernel(s), %d span(s), seed %d\n  %s\n  %s (load in ui.perfetto.dev)\n",
		tr.Target, len(tr.Sections), len(tr.Spans), tr.Seed, ndPath, chromePath)
	return nil
}

// writeTo streams write into path through a temp-free direct create (traces
// are derived artifacts; a partial file from a crash is simply regenerated).
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
