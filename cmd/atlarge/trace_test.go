package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atlarge/internal/obs"
)

// traceTo runs `atlarge trace` into dir and returns its stdout.
func traceTo(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := runTo(&buf, append([]string{"trace"}, args...)); err != nil {
		t.Fatalf("trace %v: %v", args, err)
	}
	return buf.String()
}

func TestTraceExperiment(t *testing.T) {
	dir := t.TempDir()
	out := traceTo(t, "tab7", "--seed", "7", "--dir", dir)

	nd, err := os.ReadFile(filepath.Join(dir, "trace.ndjson"))
	if err != nil {
		t.Fatalf("trace.ndjson: %v", err)
	}
	if !bytes.Contains(nd, []byte(`"type":"meta"`)) || !bytes.Contains(nd, []byte(`"type":"event"`)) {
		t.Errorf("NDJSON missing sections:\n%.300s", nd)
	}
	if err := obs.ValidateChromeFile(filepath.Join(dir, "trace.json")); err != nil {
		t.Errorf("trace.json invalid: %v", err)
	}
	for _, want := range []string{"trace tab7", "perfetto", "event"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

// TestTraceDeterministicReruns pins the smoke-test contract: tracing the
// same target twice yields byte-identical virtual-time artifacts.
func TestTraceDeterministicReruns(t *testing.T) {
	d1, d2 := t.TempDir(), t.TempDir()
	traceTo(t, "tab7", "--seed", "7", "--dir", d1)
	traceTo(t, "tab7", "--seed", "7", "--dir", d2)
	for _, name := range []string{"trace.ndjson", "trace.json"} {
		a, err := os.ReadFile(filepath.Join(d1, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(d2, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between identical traced runs", name)
		}
	}
}

func TestTraceScenarioCell(t *testing.T) {
	dir := t.TempDir()
	out := traceTo(t, "--spec", exampleSweepSpec,
		"--cell", "policy-vs-load/load=0.7,policy=sjf", "--dir", dir)
	if !strings.Contains(out, "policy-vs-load/load=0.7,policy=sjf") {
		t.Errorf("cell ID missing from output:\n%s", out)
	}
	if err := obs.ValidateChromeFile(filepath.Join(dir, "trace.json")); err != nil {
		t.Errorf("trace.json invalid: %v", err)
	}

	// Validate mode re-checks the artifact we just wrote.
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"trace", "--validate", filepath.Join(dir, "trace.json")}); err != nil {
		t.Fatalf("--validate: %v", err)
	}
	if !strings.Contains(buf.String(), "ok:") {
		t.Errorf("validate output: %q", buf.String())
	}
}

func TestTraceUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"trace"}); err == nil {
		t.Error("bare trace accepted")
	}
	if err := runTo(&buf, []string{"trace", "fig9", "bdc"}); err == nil {
		t.Error("two targets accepted")
	}
	if err := runTo(&buf, []string{"trace", "fig9", "--cell", "x"}); err == nil {
		t.Error("--cell without --spec accepted")
	}
	if err := runTo(&buf, []string{"trace", "--spec", exampleSweepSpec, "fig9"}); err == nil {
		t.Error("--spec plus positional accepted")
	}
	// A multi-cell spec without --cell lists the available IDs.
	err := runTo(&buf, []string{"trace", "--spec", exampleSweepSpec, "--dir", t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "policy-vs-load/load=0.5,policy=sjf") {
		t.Errorf("multi-cell error does not list cells: %v", err)
	}
}
