// Command atlarge reproduces the paper's tables and figures and runs
// declarative what-if scenarios.
//
// Usage:
//
//	atlarge list [-tag T] [--domains] [--format text|json]
//	atlarge run [experiment ...] [--all] [--seed N] [--parallel P] [--replicas R] [--format text|json] [--progress] [--timeout D] [--trace-dir DIR] [--trace-wall]
//	atlarge serve [--addr HOST:PORT] [--parallel P] [--cache N] [--rate R] [--burst B] [--queue-depth Q] [--max-jobs J] [--state-dir DIR] [--workers H1,H2] [--pprof] [--kernel-profile]
//	atlarge worker [--listen HOST:PORT] [--parallel P]
//	atlarge trace <experiment-id> [--seed N] [--dir DIR] [--wall] [--events N]
//	atlarge trace --spec <spec.json> [--cell ID] [--seed N] [--dir DIR] [--wall] [--events N]
//	atlarge trace --validate <trace.json>
//	atlarge scenario validate <spec.json> [--domain D]
//	atlarge scenario run <spec.json> [--domain D] [--seed N] [--parallel P] [--replicas R] [--format text|json|csv] [--progress] [--timeout D]
//	atlarge scenario sweep <spec.json> [--domain D] [--seed N] [--parallel P] [--replicas R] [--format text|json|csv] [--progress] [--timeout D] [--checkpoint DIR] [--workers H1,H2] [--trace-dir DIR] [--trace-wall]
//
// Experiments: fig1 fig2 fig3 fig7 fig9 tab5 tab6 tab7 tab8 tab9 autoscale bdc
//
// run executes the requested experiments (or the whole catalog with --all)
// on the streaming work-plan executor. Seeds are derived per experiment and
// replica, so reports are identical for every --parallel level; --format
// json emits the typed result documents (Results API v2: named metrics,
// structured tables, series — see the README's Results API section).
// --progress renders a live task-completion line on stderr as results
// stream in, and --timeout aborts the run (cooperatively cancelling the
// worker pool) after a duration.
//
// serve exposes the same results over HTTP: GET /v1/experiments (catalog),
// GET /v1/run?ids=&seed=&replicas= (typed results, LRU-cached per
// (experiment, seed, replicas) so repeated queries skip the simulation),
// GET /v1/run/stream (the same run as live NDJSON progress events),
// POST /v1/scenario/sweep (a scenario spec as the request body, run
// synchronously), and the async jobs resource: POST /v1/jobs submits
// {"kind": "sweep", "spec": {...}} and GET/DELETE /v1/jobs/{id} (plus
// /result) steer it. Job IDs are the content hash of (spec, seed,
// replicas), so identical submissions dedup onto one job. GET /metrics
// exports Prometheus text-format server metrics. With --state-dir, jobs are
// durable: an interrupted server re-lists finished jobs on restart and
// resumes interrupted ones byte-identically from their checkpointed tasks.
// --rate/--burst rate-limit work-submitting endpoints per client (keyed by
// the X-Atlarge-Client header or remote host), and --queue-depth refuses
// submissions with 429 + a computed Retry-After once the pending-task queue
// is that deep. /v1/scenario/jobs/* remains as a deprecated alias of
// /v1/jobs.
//
// trace runs one experiment or one scenario cell sequentially with the
// kernel tracer and executor task spans attached, writes the capture as
// NDJSON (trace.ndjson) and Chrome trace-event JSON (trace.json, loadable in
// ui.perfetto.dev), and prints the per-event-name profile. Virtual-time
// fields are deterministic — two traced runs of the same target and seed
// produce byte-identical files; --wall opts into the nondeterministic
// wall-clock fields (handler ns, worker spans). The same capture rides along
// full runs via --trace-dir on `run` and `scenario sweep`, where traces stay
// byte-identical at any --parallel. `trace --validate FILE` checks an
// existing Chrome trace file (well-formed, monotone per-track timestamps).
//
// scenario sweep --checkpoint DIR persists every completed (cell, replica)
// result under DIR as it finishes and resumes from there on a rerun: an
// interrupted sweep (Ctrl-C, --timeout, a crash) picks up where it stopped
// and produces a report byte-identical to an uninterrupted run. Runs are
// keyed by a content hash of the spec plus the effective seed and replica
// count, so editing any of them starts a fresh run directory.
//
// worker serves the distributed-execution protocol (internal/dist): a
// versioned handshake plus POST /v1/tasks:claim, which rebuilds a sweep plan
// from the claimed job, runs a task range on the local pool, and streams one
// NDJSON result line per task back with heartbeats in between. Point
// `scenario sweep --workers host1:port,host2:port` or `serve --workers ...`
// at a set of workers and the sweep fans out across them under lease-based
// claims: a worker that dies mid-range is detected (broken stream or missed
// heartbeats) and only its unfinished tasks are re-dispatched, never
// dropping or duplicating a (cell, replica) result. Reports are
// byte-identical to an in-process run at any worker count.
//
// scenario drives the declarative what-if engine (internal/scenario):
// validate checks a spec and reports every problem, run executes an unswept
// spec, and sweep expands the spec's axis lists into the cross-product of
// concrete scenarios and renders the comparative report. Specs name a
// simulation domain (sched, autoscale, mmog — see `atlarge list --domains`);
// --domain fills the domain of a spec that omits it, and otherwise must
// match the spec's declaration. See examples/scenarios/ for runnable specs.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"slices"
	"strings"
	"time"

	"atlarge"
	"atlarge/internal/api"
	"atlarge/internal/dist"
	"atlarge/internal/exec"
	"atlarge/internal/obs"
	"atlarge/internal/scenario"
)

func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ContinueOnError)
}

// parseInterleaved accepts positionals anywhere around the flags
// (`run fig9 -seed 7`, `run --seed 7 fig9 --format json`): it collects
// leading positionals, parses flags, and resumes on what Parse stopped at.
// A bare "-" counts as a positional: flag.Parse stops at it without
// consuming it, so treating it as a flag would loop forever.
func parseInterleaved(fs *flag.FlagSet, args []string) ([]string, error) {
	var positionals []string
	for len(args) > 0 {
		if args[0] == "-" || !strings.HasPrefix(args[0], "-") {
			positionals = append(positionals, args[0])
			args = args[1:]
			continue
		}
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		rem := fs.Args()
		// flag.Parse consumes a bare "--" terminator; everything after it
		// is positional even when it starts with "-".
		if cut := len(args) - len(rem); cut >= 1 && args[cut-1] == "--" {
			return append(positionals, rem...), nil
		}
		args = rem
	}
	return positionals, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "atlarge:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	return runTo(os.Stdout, args)
}

func runTo(w io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: atlarge <list|run|serve|worker|scenario> [args] (see 'go doc atlarge/cmd/atlarge')")
	}
	switch args[0] {
	case "list":
		fs := newFlagSet("list")
		tag := fs.String("tag", "", "only experiments carrying this tag")
		domains := fs.Bool("domains", false, "list scenario domains instead of experiments")
		format := fs.String("format", "text", "output format: text or json")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *format != "text" && *format != "json" {
			return fmt.Errorf("unknown format %q (want text or json)", *format)
		}
		if *domains {
			return listDomains(w, *format)
		}
		entries := []api.CatalogEntry{}
		for _, e := range api.Catalog(atlarge.DefaultRegistry()) {
			if *tag != "" && !slices.Contains(e.Tags, *tag) {
				continue
			}
			if *format == "text" {
				fmt.Fprintln(w, e.ID)
				continue
			}
			entries = append(entries, e)
		}
		if *format == "json" {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(entries)
		}
		return nil
	case "scenario":
		return runScenario(w, args[1:])
	case "trace":
		return runTrace(w, args[1:])
	case "run":
		fs := newFlagSet("run")
		var (
			all       = fs.Bool("all", false, "run the full experiment catalog")
			seed      = fs.Int64("seed", 42, "base seed for per-experiment seed derivation")
			parallel  = fs.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
			replicas  = fs.Int("replicas", 1, "replicas per experiment, aggregated as mean±95% CI")
			format    = fs.String("format", "text", "output format: text or json")
			progress  = fs.Bool("progress", false, "live task ticker on stderr: completions, tasks/sec, queue depth")
			timeout   = fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
			traceDir  = fs.String("trace-dir", "", "capture kernel traces and task spans, written as trace.ndjson + trace.json under DIR")
			traceWall = fs.Bool("trace-wall", false, "include nondeterministic wall-clock fields in the captured trace")
		)
		ids, err := parseInterleaved(fs, args[1:])
		if err != nil {
			return err
		}
		if *format != "text" && *format != "json" {
			return fmt.Errorf("unknown format %q (want text or json)", *format)
		}
		if len(ids) == 1 && ids[0] == "all" {
			ids = nil
			*all = true
		}
		if len(ids) == 0 {
			*all = true
		}
		if *all {
			ids = atlarge.Experiments()
		}

		ctx, cancel := withTimeout(*timeout)
		defer cancel()
		runner := &atlarge.Runner{Parallelism: *parallel, Replicas: *replicas}
		if *progress {
			stats := &exec.Stats{}
			runner.Stats = stats
			runner.Progress = progressLine(os.Stderr, "run", stats)
		}
		var col *obs.Collector
		var spans *obs.SpanLog
		if *traceDir != "" {
			col = &obs.Collector{}
			restore := col.Install()
			defer restore()
			spans = &obs.SpanLog{}
			runner.SpanObserver = spans.Observe
		}
		results, err := runner.RunContext(ctx, ids, *seed)
		if err != nil {
			// The joined error is preserved: it names any experiment that
			// genuinely failed before the deadline, not just the timeout.
			if ctx.Err() != nil {
				return fmt.Errorf("run aborted after --timeout %v: %w", *timeout, err)
			}
			return err
		}
		if col != nil {
			tr := &obs.Trace{
				Target:   "run",
				Seed:     *seed,
				Sections: col.Sections(taskSeedMap(*seed, ids, *replicas)),
				Spans:    spans.Sorted(),
				Wall:     *traceWall,
			}
			if err := writeTraceFiles(os.Stderr, tr, *traceDir); err != nil {
				return err
			}
		}
		if *format == "json" {
			return atlarge.NewRunDocument(*seed, results).WriteJSON(w)
		}
		for _, res := range results {
			fmt.Fprintf(w, "== %s: %s ==\n", res.ID, res.Title)
			if err := res.Report.WriteText(w, "  "); err != nil {
				return err
			}
			if res.Aggregate != nil {
				fmt.Fprintf(w, "  -- aggregate over %d replicas (mean±95%% CI) --\n", len(res.Reports))
				if err := res.Aggregate.WriteText(w, "  "); err != nil {
					return err
				}
			}
			fmt.Fprintln(w)
		}
		return nil
	case "serve":
		fs := newFlagSet("serve")
		var (
			addr       = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
			parallel   = fs.Int("parallel", 0, "worker pool size behind the API (0 = GOMAXPROCS)")
			cache      = fs.Int("cache", 256, "LRU result-cache capacity in (experiment, seed, replicas) entries")
			rate       = fs.Float64("rate", 0, "per-client admission rate for work-submitting endpoints (requests/second; 0 = unlimited)")
			burst      = fs.Int("burst", 0, "token-bucket burst per client (0 = max(1, ceil(rate)))")
			queueDepth = fs.Int("queue-depth", 0, "pending-task bound before submissions get 429 + Retry-After (0 = 4096)")
			maxJobs    = fs.Int("max-jobs", 0, "concurrently running async jobs (0 = 4)")
			stateDir   = fs.String("state-dir", "", "directory for durable job state; jobs survive restarts and resume from checkpoints")
			workers    = fs.String("workers", "", "comma-separated worker addresses (host:port); sweeps execute across them instead of the in-process pool")
			pprofOn    = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default; off the API mux and its metrics)")
			kprofile   = fs.Bool("kernel-profile", false, "aggregate per-event-name kernel profiles and export them on /metrics (adds per-event tracing cost)")
		)
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		srv := api.New(api.Config{
			Parallelism:   *parallel,
			CacheSize:     *cache,
			Rate:          *rate,
			Burst:         *burst,
			QueueDepth:    *queueDepth,
			MaxJobs:       *maxJobs,
			StateDir:      *stateDir,
			Workers:       splitAddrs(*workers),
			KernelProfile: *kprofile,
		})
		// Workers connect before job recovery, so resumed sweeps distribute
		// too; an unreachable worker fails the boot rather than a sweep.
		if err := srv.ConnectWorkers(context.Background()); err != nil {
			return err
		}
		if *stateDir != "" {
			resumed, restored, err := srv.RecoverJobs()
			if err != nil {
				fmt.Fprintf(os.Stderr, "atlarge serve: job recovery: %v\n", err)
			}
			if resumed+restored > 0 {
				fmt.Fprintf(w, "recovered %d job(s): %d resumed, %d restored\n", resumed+restored, resumed, restored)
			}
		}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		// pprof mounts on a wrapper mux, not the API server's own mux, so
		// profiling endpoints never join the public route-pattern metrics
		// table and stay impossible to reach unless --pprof was given.
		var handler http.Handler = srv
		if *pprofOn {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", netpprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
			mux.Handle("/", srv)
			handler = mux
		}
		// The listen line goes out before blocking so scripts (and `make
		// serve-smoke`) can scrape the bound port even with --addr :0.
		fmt.Fprintf(w, "serving Results API v2 on http://%s\n", ln.Addr())
		return http.Serve(ln, handler)
	case "worker":
		fs := newFlagSet("worker")
		var (
			listen   = fs.String("listen", "127.0.0.1:0", "listen address (host:port; port 0 picks a free port)")
			parallel = fs.Int("parallel", 0, "local worker pool size per claim (0 = the dispatcher's hint, else GOMAXPROCS)")
		)
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		wk := &dist.Worker{
			Build:       map[string]dist.Builder{scenario.DistJobKind: scenario.WorkerBuilder()},
			Parallelism: *parallel,
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		// The listen line goes out before blocking so scripts (and `make
		// dist-smoke`) can scrape the bound port even with --listen :0.
		fmt.Fprintf(w, "worker serving sweep tasks on http://%s\n", ln.Addr())
		return http.Serve(ln, wk.Handler())
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// splitAddrs parses a comma-separated address list, dropping empty entries.
func splitAddrs(raw string) []string {
	var out []string
	for _, a := range strings.Split(raw, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// listDomains renders the scenario-domain catalog: every registered
// simulator with its sweepable axes, metrics, and default objective.
func listDomains(w io.Writer, format string) error {
	type domainEntry struct {
		Name             string               `json:"name"`
		Axes             []string             `json:"axes"`
		Metrics          []scenario.MetricDef `json:"metrics"`
		DefaultObjective string               `json:"default_objective"`
	}
	var entries []domainEntry
	for _, name := range scenario.DomainNames() {
		d, err := scenario.DomainByName(name)
		if err != nil {
			return err
		}
		entries = append(entries, domainEntry{
			Name:             d.Name(),
			Axes:             scenario.AxisNames(d),
			Metrics:          d.Metrics(),
			DefaultObjective: d.DefaultObjective(),
		})
	}
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(entries)
	}
	for _, e := range entries {
		fmt.Fprintf(w, "%s\n  axes: %s\n  objective: %s (default)\n",
			e.Name, strings.Join(e.Axes, " "), e.DefaultObjective)
	}
	return nil
}

// withTimeout returns a background context bounded by d (unbounded when
// d == 0) and its cancel func.
func withTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(context.Background(), d)
	}
	return context.WithCancel(context.Background())
}

// progressLine renders a live single-line task ticker: carriage-return
// overdraw while tasks stream in, newline-terminated when the plan drains.
// With a non-nil stats it also reports the live completion rate and the
// executor's pending-task queue depth.
func progressLine(w io.Writer, label string, stats *exec.Stats) func(done, total int, id string) {
	start := time.Now()
	return func(done, total int, id string) {
		line := fmt.Sprintf("%s: %d/%d", label, done, total)
		if stats != nil {
			if el := time.Since(start).Seconds(); el > 0 {
				line += fmt.Sprintf(" %.1f/s", float64(stats.Completed())/el)
			}
			line += fmt.Sprintf(" queue %d", stats.Pending())
		}
		line += " " + id
		fmt.Fprintf(w, "\r%-79s", line)
		if done == total {
			fmt.Fprintln(w)
		}
	}
}

// runScenario dispatches the scenario subcommands: validate, run, sweep.
func runScenario(w io.Writer, args []string) error {
	usage := "usage: atlarge scenario <validate|run|sweep> <spec.json> [--domain D] [--seed N] [--parallel P] [--replicas R] [--format text|json|csv] [--progress] [--timeout D] [sweep: --checkpoint DIR --workers H1,H2 --trace-dir DIR --trace-wall]"
	if len(args) == 0 {
		return fmt.Errorf("%s", usage)
	}
	sub := args[0]
	if sub != "validate" && sub != "run" && sub != "sweep" {
		return fmt.Errorf("unknown scenario subcommand %q\n%s", sub, usage)
	}
	fs := newFlagSet("scenario " + sub)
	var (
		domain     = fs.String("domain", "", "simulation domain (fills a spec without one; must match a spec that declares one)")
		seed       = fs.Int64("seed", 0, "base seed override (default: the spec's seed)")
		parallel   = fs.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
		replicas   = fs.Int("replicas", 0, "replicas per scenario (default: the spec's replicas)")
		format     = fs.String("format", "text", "output format: text, json, or csv")
		progress   = fs.Bool("progress", false, "live task ticker on stderr: completions, tasks/sec, queue depth")
		timeout    = fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		checkpoint = fs.String("checkpoint", "", "sweep only: persist completed (cell, replica) results under this directory and resume from them")
		workers    = fs.String("workers", "", "sweep only: comma-separated worker addresses (host:port); the sweep executes across them, byte-identically")
		traceDir   = fs.String("trace-dir", "", "sweep only: capture kernel traces and task spans, written as trace.ndjson + trace.json under DIR")
		traceWall  = fs.Bool("trace-wall", false, "include nondeterministic wall-clock fields in the captured trace")
	)
	paths, err := parseInterleaved(fs, args[1:])
	if err != nil {
		return err
	}
	seedSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	if len(paths) != 1 {
		return fmt.Errorf("scenario %s wants exactly one spec file, got %d\n%s", sub, len(paths), usage)
	}
	if *format != "text" && *format != "json" && *format != "csv" {
		return fmt.Errorf("unknown format %q (want text, json, or csv)", *format)
	}
	if *checkpoint != "" && sub != "sweep" {
		return fmt.Errorf("--checkpoint applies to 'scenario sweep' only")
	}
	if *traceDir != "" && sub != "sweep" {
		return fmt.Errorf("--trace-dir applies to 'scenario sweep' only")
	}
	if *workers != "" && sub != "sweep" {
		return fmt.Errorf("--workers applies to 'scenario sweep' only")
	}
	if *workers != "" && *traceDir != "" {
		return fmt.Errorf("--workers and --trace-dir are mutually exclusive (kernel events fire inside the worker processes, out of this process's tracer's reach)")
	}

	spec, err := scenario.Load(paths[0])
	if err != nil {
		return err
	}
	if *domain != "" {
		if _, err := scenario.DomainByName(*domain); err != nil {
			return err
		}
		switch {
		case spec.Domain == "":
			spec.Domain = *domain
		case !strings.EqualFold(spec.Domain, *domain):
			return fmt.Errorf("scenario: spec %q declares domain %q but --domain %s was given",
				spec.Name, spec.Domain, *domain)
		}
	}

	switch sub {
	case "validate":
		cells, err := scenario.Expand(spec)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "ok: spec %q expands to %d scenario(s)\n", spec.Name, len(cells))
		return nil
	case "run", "sweep":
		var cells []scenario.Scenario
		if sub == "run" {
			single, err := scenario.Single(spec)
			if err != nil {
				return err
			}
			cells = []scenario.Scenario{*single}
		} else {
			if cells, err = scenario.Expand(spec); err != nil {
				return err
			}
		}
		opt := scenario.Options{Replicas: *replicas, Parallelism: *parallel, Checkpoint: *checkpoint}
		if seedSet {
			opt.Seed = seed
		}
		if *progress {
			stats := &exec.Stats{}
			opt.Stats = stats
			opt.Progress = progressLine(os.Stderr, "scenario "+sub, stats)
		}
		var col *obs.Collector
		var spans *obs.SpanLog
		if *traceDir != "" {
			col = &obs.Collector{}
			restore := col.Install()
			defer restore()
			spans = &obs.SpanLog{}
			opt.SpanObserver = spans.Observe
		}
		ctx, cancel := withTimeout(*timeout)
		defer cancel()
		var dstats *dist.Stats
		if *workers != "" {
			clients, err := dist.DialAll(ctx, splitAddrs(*workers))
			if err != nil {
				return err
			}
			dstats = &dist.Stats{}
			if err := scenario.Distribute(&opt, spec, clients, dstats); err != nil {
				return err
			}
		}
		rep, err := scenario.Run(ctx, spec, cells, opt)
		if dstats != nil {
			if n := dstats.Redispatched(); n > 0 {
				fmt.Fprintf(os.Stderr, "scenario %s: %d task(s) re-dispatched after lost worker claims\n", sub, n)
			}
		}
		if err != nil {
			if *timeout > 0 && errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("scenario %s aborted after --timeout %v: %w", sub, *timeout, err)
			}
			return err
		}
		if col != nil {
			effReplicas := *replicas
			if effReplicas <= 0 {
				effReplicas = spec.Replicas
			}
			if effReplicas <= 0 {
				effReplicas = 1
			}
			effSeed := spec.Seed
			if seedSet {
				effSeed = *seed
			}
			ids := make([]string, len(cells))
			for i := range cells {
				ids[i] = cells[i].ID()
			}
			tr := &obs.Trace{
				Target:   spec.Name,
				Seed:     effSeed,
				Sections: col.Sections(taskSeedMap(effSeed, ids, effReplicas)),
				Spans:    spans.Sorted(),
				Wall:     *traceWall,
			}
			if err := writeTraceFiles(os.Stderr, tr, *traceDir); err != nil {
				return err
			}
		}
		switch *format {
		case "json":
			return rep.WriteJSON(w)
		case "csv":
			return rep.WriteCSV(w)
		default:
			return rep.WriteText(w)
		}
	default:
		return fmt.Errorf("unknown scenario subcommand %q\n%s", sub, usage)
	}
}
