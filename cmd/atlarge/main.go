// Command atlarge reproduces the paper's tables and figures.
//
// Usage:
//
//	atlarge list [-tag T]
//	atlarge run [experiment ...] [--all] [--seed N] [--parallel P] [--replicas R] [--format text|json]
//
// Experiments: fig1 fig2 fig3 fig7 fig9 tab5 tab6 tab7 tab8 tab9 autoscale bdc
//
// run executes the requested experiments (or the whole catalog with --all)
// on a bounded worker pool. Seeds are derived per experiment and replica, so
// reports are identical for every --parallel level; --format json emits the
// machine-readable report set.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"atlarge"
)

func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ContinueOnError)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "atlarge:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	return runTo(os.Stdout, args)
}

// jsonReport is one experiment in the --format json output. It carries no
// timing, so output for a fixed seed is byte-identical across runs and
// parallelism levels.
type jsonReport struct {
	ID        string   `json:"id"`
	Title     string   `json:"title"`
	Seed      int64    `json:"seed"`
	Replicas  int      `json:"replicas"`
	Rows      []string `json:"rows"`
	Aggregate []string `json:"aggregate,omitempty"`
}

type jsonOutput struct {
	Seed        int64        `json:"seed"`
	Experiments []jsonReport `json:"experiments"`
}

func runTo(w io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: atlarge <list|run> [experiment ...] [--all] [--seed N] [--parallel P] [--replicas R] [--format text|json]")
	}
	switch args[0] {
	case "list":
		fs := newFlagSet("list")
		tag := fs.String("tag", "", "only experiments carrying this tag")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		for _, e := range atlarge.DefaultRegistry().Experiments() {
			if *tag != "" && !e.HasTag(*tag) {
				continue
			}
			fmt.Fprintln(w, e.ID)
		}
		return nil
	case "run":
		fs := newFlagSet("run")
		var (
			all      = fs.Bool("all", false, "run the full experiment catalog")
			seed     = fs.Int64("seed", 42, "base seed for per-experiment seed derivation")
			parallel = fs.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
			replicas = fs.Int("replicas", 1, "replicas per experiment, aggregated as mean±95% CI")
			format   = fs.String("format", "text", "output format: text or json")
		)
		// Accept ids anywhere around the flags (atlarge run fig9 -seed 7,
		// atlarge run --seed 7 fig9 --format json): collect leading
		// positionals, parse flags, and resume on what Parse stopped at.
		rest := args[1:]
		var ids []string
		for len(rest) > 0 {
			if !strings.HasPrefix(rest[0], "-") {
				ids = append(ids, rest[0])
				rest = rest[1:]
				continue
			}
			if err := fs.Parse(rest); err != nil {
				return err
			}
			rest = fs.Args()
		}
		if *format != "text" && *format != "json" {
			return fmt.Errorf("unknown format %q (want text or json)", *format)
		}
		if len(ids) == 1 && ids[0] == "all" {
			ids = nil
			*all = true
		}
		if len(ids) == 0 {
			*all = true
		}
		if *all {
			ids = atlarge.Experiments()
		}

		runner := &atlarge.Runner{Parallelism: *parallel, Replicas: *replicas}
		results, err := runner.Run(ids, *seed)
		if err != nil {
			return err
		}
		if *format == "json" {
			out := jsonOutput{Seed: *seed}
			for _, res := range results {
				out.Experiments = append(out.Experiments, jsonReport{
					ID:        res.ID,
					Title:     res.Title,
					Seed:      res.Seed,
					Replicas:  len(res.Reports),
					Rows:      res.Report.Rows,
					Aggregate: res.Aggregate,
				})
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(out)
		}
		for _, res := range results {
			fmt.Fprintf(w, "== %s: %s ==\n", res.ID, res.Title)
			for _, row := range res.Report.Rows {
				fmt.Fprintln(w, "  "+row)
			}
			if len(res.Aggregate) > 0 {
				fmt.Fprintf(w, "  -- aggregate over %d replicas (mean±95%% CI) --\n", len(res.Reports))
				for _, row := range res.Aggregate {
					fmt.Fprintln(w, "  "+row)
				}
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}
