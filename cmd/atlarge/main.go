// Command atlarge reproduces the paper's tables and figures.
//
// Usage:
//
//	atlarge list
//	atlarge run <experiment|all> [-seed N]
//
// Experiments: fig1 fig2 fig3 fig7 fig9 tab5 tab6 tab7 tab8 tab9 autoscale bdc
package main

import (
	"flag"
	"fmt"
	"os"

	"atlarge"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "atlarge:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: atlarge <list|run> [experiment|all] [-seed N]")
	}
	switch args[0] {
	case "list":
		for _, id := range atlarge.Experiments() {
			fmt.Println(id)
		}
		return nil
	case "run":
		fs := flag.NewFlagSet("run", flag.ContinueOnError)
		seed := fs.Int64("seed", 42, "experiment seed")
		rest := args[1:]
		target := "all"
		if len(rest) > 0 && rest[0][0] != '-' {
			target = rest[0]
			rest = rest[1:]
		}
		if err := fs.Parse(rest); err != nil {
			return err
		}
		ids := []string{target}
		if target == "all" {
			ids = atlarge.Experiments()
		}
		for _, id := range ids {
			rep, err := atlarge.RunExperiment(id, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("== %s: %s ==\n", rep.ID, rep.Title)
			for _, row := range rep.Rows {
				fmt.Println("  " + row)
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}
