// Command stream-smoke is the CI gate for the streaming workload engine's
// memory contract: it streams -jobs jobs from a -clients-client population
// and fails if peak heap exceeds -budget-mb, proving resident state is
// O(clients), not O(jobs). It also re-checks the stream invariants
// (non-decreasing submits, dense IDs) while it is at it.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

func main() {
	clients := flag.Int("clients", 1000000, "population size")
	jobs := flag.Int("jobs", 1000000, "jobs to stream")
	skew := flag.String("skew", "zipf", "per-client rate skew (none, zipf, lognormal)")
	shards := flag.Int("shards", 8, "generation goroutines")
	// A materialized million-job trace costs gigabytes; the streamed form
	// measures ~52 MiB (≈50 B/client). 128 MiB leaves headroom for GC timing
	// while still failing fast on any O(jobs) regression.
	budgetMB := flag.Uint64("budget-mb", 128, "peak heap budget in MiB")
	flag.Parse()

	sk, err := workload.ParseSkew(*skew)
	if err != nil {
		fatal(err)
	}
	pop := &workload.Population{
		Clients: *clients,
		Mix: []workload.ClassShare{
			{Class: workload.ClassSynthetic, Weight: 2},
			{Class: workload.ClassGaming, Weight: 1},
		},
		Skew:   sk,
		Seed:   42,
		Shards: *shards,
	}
	src, err := pop.Source()
	if err != nil {
		fatal(err)
	}
	defer src.Close()

	var ms runtime.MemStats
	var peak uint64
	sample := func() {
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	sample()
	after := peak // heap right after O(clients) setup

	var last sim.Time
	for i := 1; i <= *jobs; i++ {
		j := src.Next()
		if j == nil {
			fatal(fmt.Errorf("stream ran dry at job %d", i))
		}
		if j.ID != i {
			fatal(fmt.Errorf("job ID %d at position %d", j.ID, i))
		}
		if j.Submit < last {
			fatal(fmt.Errorf("job %d: submit %v < previous %v", i, j.Submit, last))
		}
		last = j.Submit
		if i%50000 == 0 {
			sample()
		}
	}
	sample()

	budget := *budgetMB << 20
	fmt.Printf("stream-smoke: %d jobs from %d clients (skew=%s, shards=%d): heap after setup %d MiB, peak %d MiB, budget %d MiB\n",
		*jobs, *clients, sk.Kind, *shards, after>>20, peak>>20, *budgetMB)
	if peak > budget {
		fatal(fmt.Errorf("peak heap %d MiB exceeds budget %d MiB: per-job state is leaking", peak>>20, *budgetMB))
	}
	fmt.Println("stream-smoke: OK (resident memory O(clients))")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stream-smoke:", err)
	os.Exit(1)
}
