package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	m, ok := parseBenchLine("BenchmarkTable9Row-8   \t     100\t  12345 ns/op\t  456 B/op\t       7 allocs/op")
	if !ok {
		t.Fatal("valid line rejected")
	}
	if m.Name != "BenchmarkTable9Row-8" || m.Iterations != 100 || m.NsPerOp != 12345 {
		t.Errorf("parsed %+v", m)
	}
	if m.Extra["B/op"] != 456 || m.Extra["allocs/op"] != 7 {
		t.Errorf("extra units: %+v", m.Extra)
	}

	if _, ok := parseBenchLine("BenchmarkBare-8"); ok {
		t.Error("line without measurements accepted")
	}
	if _, ok := parseBenchLine("BenchmarkNoNs-8 100 3 MB/s"); ok {
		t.Error("line without ns/op accepted")
	}
	if _, ok := parseBenchLine("PASS"); ok {
		t.Error("non-benchmark line accepted")
	}
}
