package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	m, ok := parseBenchLine("BenchmarkTable9Row-8   \t     100\t  12345 ns/op\t  456 B/op\t       7 allocs/op")
	if !ok {
		t.Fatal("valid line rejected")
	}
	if m.Name != "BenchmarkTable9Row-8" || m.Iterations != 100 || m.NsPerOp != 12345 {
		t.Errorf("parsed %+v", m)
	}
	if m.Extra["B/op"] != 456 || m.Extra["allocs/op"] != 7 {
		t.Errorf("extra units: %+v", m.Extra)
	}

	if _, ok := parseBenchLine("BenchmarkBare-8"); ok {
		t.Error("line without measurements accepted")
	}
	if _, ok := parseBenchLine("BenchmarkNoNs-8 100 3 MB/s"); ok {
		t.Error("line without ns/op accepted")
	}
	if _, ok := parseBenchLine("PASS"); ok {
		t.Error("non-benchmark line accepted")
	}
}

func writeBaseline(t *testing.T, out output) string {
	t.Helper()
	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_base.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBaseline(t *testing.T) {
	base := output{Suite: "base", Benchmarks: []measurement{
		{Package: "p", Name: "BenchmarkKernelSchedule-8", Iterations: 100, NsPerOp: 1000},
		{Package: "p", Name: "BenchmarkKernelChurn-8", Iterations: 100, NsPerOp: 500},
	}}
	path := writeBaseline(t, base)

	// Within tolerance (10% slower at 20% tolerance) passes.
	cur := output{Benchmarks: []measurement{
		{Package: "p", Name: "BenchmarkKernelSchedule-8", Iterations: 100, NsPerOp: 1100},
		{Package: "p", Name: "BenchmarkKernelChurn-8", Iterations: 100, NsPerOp: 400},
	}}
	if err := compareBaseline(cur, path, 0.20, 0.20); err != nil {
		t.Errorf("10%% drift failed the 20%% gate: %v", err)
	}

	// A >20% regression fails and names the offender.
	cur.Benchmarks[1].NsPerOp = 700
	err := compareBaseline(cur, path, 0.20, 0.20)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkKernelChurn-8") {
		t.Errorf("40%% regression passed the 20%% gate: %v", err)
	}

	// New benchmarks (absent from the baseline) do not fail the gate.
	cur.Benchmarks[1].NsPerOp = 500
	cur.Benchmarks = append(cur.Benchmarks, measurement{Package: "p", Name: "BenchmarkNew-8", NsPerOp: 9e9})
	if err := compareBaseline(cur, path, 0.20, 0.20); err != nil {
		t.Errorf("new benchmark failed the gate: %v", err)
	}

	// Nothing in common is an error (the gate would be vacuous).
	none := output{Benchmarks: []measurement{{Package: "q", Name: "BenchmarkOther-8", NsPerOp: 1}}}
	if err := compareBaseline(none, path, 0.20, 0.20); err == nil {
		t.Error("disjoint benchmark sets passed the gate")
	}
}

func TestCompareBaselineAllocsGate(t *testing.T) {
	allocs := func(n float64) map[string]float64 { return map[string]float64{"allocs/op": n} }
	base := output{Suite: "base", Benchmarks: []measurement{
		{Package: "p", Name: "BenchmarkZeroAlloc-8", Iterations: 100, NsPerOp: 1000, Extra: allocs(7)},
		{Package: "p", Name: "BenchmarkBusy-8", Iterations: 100, NsPerOp: 1000, Extra: allocs(4000)},
		{Package: "p", Name: "BenchmarkNoMem-8", Iterations: 100, NsPerOp: 1000},
	}}
	path := writeBaseline(t, base)

	// Within the absolute slack: 7 -> 9 allocs is > 20% but <= +2, passes.
	cur := output{Benchmarks: []measurement{
		{Package: "p", Name: "BenchmarkZeroAlloc-8", Iterations: 100, NsPerOp: 1000, Extra: allocs(9)},
	}}
	if err := compareBaseline(cur, path, 0.20, 0.20); err != nil {
		t.Errorf("+2 allocs on a near-zero baseline failed the gate: %v", err)
	}

	// Past both the fractional gate and the slack: 7 -> 10 fails.
	cur.Benchmarks[0].Extra = allocs(10)
	err := compareBaseline(cur, path, 0.20, 0.20)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("7 -> 10 allocs passed the 20%%+2 gate: %v", err)
	}

	// Large baseline: the fractional gate governs. 4000 -> 4100 passes,
	// 4000 -> 5000 fails.
	cur = output{Benchmarks: []measurement{
		{Package: "p", Name: "BenchmarkBusy-8", Iterations: 100, NsPerOp: 1000, Extra: allocs(4100)},
	}}
	if err := compareBaseline(cur, path, 0.20, 0.20); err != nil {
		t.Errorf("2.5%% allocs drift failed the 20%% gate: %v", err)
	}
	cur.Benchmarks[0].Extra = allocs(5000)
	if err := compareBaseline(cur, path, 0.20, 0.20); err == nil {
		t.Error("25% allocs regression passed the 20% gate")
	}

	// A benchmark without allocs/op on either side is ns/op-gated only.
	cur = output{Benchmarks: []measurement{
		{Package: "p", Name: "BenchmarkNoMem-8", Iterations: 100, NsPerOp: 1000, Extra: allocs(1e9)},
		{Package: "p", Name: "BenchmarkZeroAlloc-8", Iterations: 100, NsPerOp: 1000},
	}}
	if err := compareBaseline(cur, path, 0.20, 0.20); err != nil {
		t.Errorf("benchmarks missing allocs/op on one side were allocs-gated: %v", err)
	}
}
