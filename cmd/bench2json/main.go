// Command bench2json converts `go test -bench` output on stdin into a JSON
// benchmark record on stdout, so CI can archive benchmark smoke runs as
// BENCH_*.json artifacts and the performance trajectory can be tracked
// across commits.
//
// With -compare, it instead gates a run against a committed baseline record:
// every benchmark present in both is checked, and any whose ns/op regressed
// by more than -tolerance — or whose allocs/op regressed by more than
// -allocs-tolerance beyond a small absolute slack — fails the command. This
// is the `make bench-compare` guard that keeps kernel hot-path optimizations
// (and especially zero-alloc wins) from silently eroding.
//
// Usage:
//
//	go test -bench=. -benchtime=1x ./... | bench2json -suite smoke > BENCH_smoke.json
//	go test -bench=BenchmarkKernel -benchmem ./internal/sim | bench2json -compare BENCH_base.json -tolerance 0.20
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// measurement is one parsed benchmark line.
type measurement struct {
	// Package is the pkg: header in effect when the line appeared.
	Package string `json:"package,omitempty"`
	// Name is the benchmark name including the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op value.
	NsPerOp float64 `json:"ns_per_op"`
	// Extra holds any further unit pairs (B/op, allocs/op, MB/s, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// output is the archived record.
type output struct {
	Suite      string        `json:"suite"`
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []measurement `json:"benchmarks"`
}

func main() {
	suite := flag.String("suite", "bench", "suite label stored in the record")
	compare := flag.String("compare", "", "baseline BENCH_*.json to gate against instead of emitting a record")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression vs the baseline")
	allocsTol := flag.Float64("allocs-tolerance", 0.20, "allowed fractional allocs/op regression vs the baseline")
	flag.Parse()
	if err := run(*suite, *compare, *tolerance, *allocsTol); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

func run(suite, compare string, tolerance, allocsTol float64) error {
	out := output{Suite: suite, Benchmarks: []measurement{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if m, ok := parseBenchLine(line); ok {
				m.Package = pkg
				out.Benchmarks = append(out.Benchmarks, m)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if compare != "" {
		return compareBaseline(out, compare, tolerance, allocsTol)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// allocsSlack is the absolute allocs/op headroom on top of the fractional
// allocs gate: near-zero baselines (the whole point of the zero-alloc kernel)
// would otherwise fail on a single incidental allocation, so a regression
// must exceed both baseline × (1 + tolerance) and baseline + allocsSlack.
const allocsSlack = 2

// compareBaseline gates the parsed run against a committed baseline: any
// benchmark present in both whose ns/op exceeds baseline × (1 + tolerance),
// or whose allocs/op exceeds both baseline × (1 + allocsTol) and baseline +
// allocsSlack, is a regression and fails the call. The allocs gate only
// applies where both records carry allocs/op (runs made with -benchmem).
// Benchmarks only on one side are reported but do not fail, so adding or
// retiring a benchmark does not require touching the baseline in the same
// commit.
func compareBaseline(cur output, path string, tolerance, allocsTol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base output
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	key := func(m measurement) string { return m.Package + " " + m.Name }
	baseline := make(map[string]measurement, len(base.Benchmarks))
	for _, m := range base.Benchmarks {
		baseline[key(m)] = m
	}
	var regressions []string
	compared := 0
	for _, m := range cur.Benchmarks {
		b, ok := baseline[key(m)]
		if !ok {
			fmt.Printf("new       %-40s %12.0f ns/op (not in baseline)\n", m.Name, m.NsPerOp)
			continue
		}
		compared++
		delete(baseline, key(m))
		ratio := m.NsPerOp / b.NsPerOp
		verdict := "ok"
		if m.NsPerOp > b.NsPerOp*(1+tolerance) {
			verdict = "REGRESSED"
			regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%, tolerance %.0f%%)",
				m.Name, b.NsPerOp, m.NsPerOp, (ratio-1)*100, tolerance*100))
		}
		allocs := " "
		if curA, okC := m.Extra["allocs/op"]; okC {
			if baseA, okB := b.Extra["allocs/op"]; okB {
				allocs = fmt.Sprintf("%.0f vs %.0f allocs/op", curA, baseA)
				if curA > baseA*(1+allocsTol) && curA > baseA+allocsSlack {
					verdict = "REGRESSED"
					regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f allocs/op (tolerance %.0f%% + %d)",
						m.Name, baseA, curA, allocsTol*100, allocsSlack))
				}
			}
		}
		fmt.Printf("%-9s %-40s %12.0f ns/op vs baseline %12.0f (%+.1f%%)  %s\n",
			verdict, m.Name, m.NsPerOp, b.NsPerOp, (ratio-1)*100, allocs)
	}
	for k := range baseline {
		fmt.Printf("missing   %s (in baseline, not in this run)\n", k)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks in common with baseline %s", path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed >%.0f%% vs %s:\n  %s",
			len(regressions), tolerance*100, path, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("bench-compare: OK (%d benchmark(s) within %.0f%% of %s)\n", compared, tolerance*100, path)
	return nil
}

// parseBenchLine parses "BenchmarkName-8  100  12345 ns/op  456 B/op ...".
func parseBenchLine(line string) (measurement, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return measurement{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return measurement{}, false
	}
	m := measurement{Name: fields[0], Iterations: iters}
	// The remainder alternates value/unit pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return measurement{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			m.NsPerOp = v
			sawNs = true
			continue
		}
		if m.Extra == nil {
			m.Extra = map[string]float64{}
		}
		m.Extra[unit] = v
	}
	return m, sawNs
}
