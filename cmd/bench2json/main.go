// Command bench2json converts `go test -bench` output on stdin into a JSON
// benchmark record on stdout, so CI can archive benchmark smoke runs as
// BENCH_*.json artifacts and the performance trajectory can be tracked
// across commits.
//
// Usage:
//
//	go test -bench=. -benchtime=1x ./... | bench2json -suite smoke > BENCH_smoke.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// measurement is one parsed benchmark line.
type measurement struct {
	// Package is the pkg: header in effect when the line appeared.
	Package string `json:"package,omitempty"`
	// Name is the benchmark name including the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op value.
	NsPerOp float64 `json:"ns_per_op"`
	// Extra holds any further unit pairs (B/op, allocs/op, MB/s, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// output is the archived record.
type output struct {
	Suite      string        `json:"suite"`
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []measurement `json:"benchmarks"`
}

func main() {
	suite := flag.String("suite", "bench", "suite label stored in the record")
	flag.Parse()
	if err := run(*suite); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

func run(suite string) error {
	out := output{Suite: suite, Benchmarks: []measurement{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if m, ok := parseBenchLine(line); ok {
				m.Package = pkg
				out.Benchmarks = append(out.Benchmarks, m)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// parseBenchLine parses "BenchmarkName-8  100  12345 ns/op  456 B/op ...".
func parseBenchLine(line string) (measurement, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return measurement{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return measurement{}, false
	}
	m := measurement{Name: fields[0], Iterations: iters}
	// The remainder alternates value/unit pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return measurement{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			m.NsPerOp = v
			sawNs = true
			continue
		}
		if m.Extra == nil {
			m.Extra = map[string]float64{}
		}
		m.Extra[unit] = v
	}
	return m, sawNs
}
