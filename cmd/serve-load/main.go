// Command serve-load is the load-test harness behind `make serve-load`: it
// boots an in-process Results API server on an ephemeral port, drives it
// with N concurrent clients issuing a mix of /v1/run queries and async
// /v1/jobs sweeps, and then audits the run — zero dropped jobs (every
// accepted job reaches done and serves a result), a client-observed p99
// latency bound on /v1/run, and a /metrics scrape that reconciles with the
// client-side tally (per-endpoint request counts, histogram sample counts,
// job-state gauges, task totals, a drained queue).
//
// The catalog is synthetic — tiny experiments with real report plumbing —
// so the harness exercises the serving machinery (admission, coalescing,
// caching, the job table, metrics middleware) rather than simulation speed.
//
// With -workers N the harness additionally boots N in-process distributed
// workers and points the server at them, so every sweep job fans out over
// the worker protocol; the audits stay identical (zero dropped jobs, the
// same p99 bound) plus a distributed reconciliation — worker completions
// cover every job task, nothing left in flight, nothing re-dispatched.
//
// Exit status 0 means every audit passed.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"atlarge"
	"atlarge/internal/api"
	"atlarge/internal/dist"
	"atlarge/internal/scenario"
)

func main() {
	var (
		clients    = flag.Int("clients", 8, "concurrent clients")
		rounds     = flag.Int("rounds", 30, "/v1/run queries per client")
		jobsPer    = flag.Int("jobs", 2, "async sweep jobs per client")
		p99Bound   = flag.Duration("p99", 2*time.Second, "client-observed p99 bound on /v1/run")
		rate       = flag.Float64("rate", 0, "server per-client admission rate (0 = unlimited)")
		queueDepth = flag.Int("queue-depth", 0, "server pending-task bound (0 = default)")
		parallel   = flag.Int("parallel", 4, "server worker pool size")
		workers    = flag.Int("workers", 0, "distributed workers to boot in-process (0 = local execution)")
	)
	flag.Parse()
	if err := run(*clients, *rounds, *jobsPer, *p99Bound, *rate, *queueDepth, *parallel, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "serve-load: FAIL: %v\n", err)
		os.Exit(1)
	}
}

// syntheticRegistry builds a small, fast catalog with real report plumbing.
func syntheticRegistry() *atlarge.Registry {
	reg := atlarge.NewRegistry()
	for i, id := range []string{"synth-a", "synth-b", "synth-c"} {
		id := id
		reg.MustRegister(atlarge.Experiment{
			ID:    id,
			Title: "synthetic " + id,
			Order: (i + 1) * 10,
			Run: func(seed int64) (*atlarge.Report, error) {
				rep := atlarge.NewReport(id, "synthetic "+id)
				rep.AddMetric(atlarge.Metric{Name: "value", Value: float64(seed % 1000)})
				return rep, nil
			},
		})
	}
	return reg
}

// loadSpec is the sweep every job submits (with a per-job seed, so each
// submission is distinct work and dedup stays out of the job tally).
const loadSpec = `{"version": 2, "name": "serve-load", "domain": "sched",
	"policy": "sjf", "workload": {"class": "syn", "jobs": 8},
	"cluster": {"machines": 2},
	"sweep": {"policy": ["sjf", "fcfs"]}}`

// tasksPerJob = 2 sweep cells x 2 replicas.
const tasksPerJob = 4

// tally is the client-side ledger the final /metrics scrape must reconcile
// against.
type tally struct {
	mu           sync.Mutex
	runAttempts  int // every GET /v1/run issued, any status
	runOK        int // ... of which 200
	runRetries   int // ... of which 429
	jobPosts     int // every POST /v1/jobs issued, any status
	jobsAccepted int // ... of which 202 (created) or 200 (deduped)
	jobsDone     int // jobs that reached state done with a 200 result
	latencies    []time.Duration
}

// bootWorkers starts n distributed-protocol workers on ephemeral local
// ports and returns their addresses.
func bootWorkers(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		wk := &dist.Worker{
			Build:       map[string]dist.Builder{scenario.DistJobKind: scenario.WorkerBuilder()},
			Parallelism: 2,
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("worker %d: %w", i, err)
		}
		go func() { _ = http.Serve(ln, wk.Handler()) }()
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

func run(clients, rounds, jobsPer int, p99Bound time.Duration, rate float64, queueDepth, parallel, workers int) error {
	workerAddrs, err := bootWorkers(workers)
	if err != nil {
		return err
	}
	srv := api.New(api.Config{
		Registry:    syntheticRegistry(),
		Parallelism: parallel,
		Rate:        rate,
		QueueDepth:  queueDepth,
		MaxJobs:     clients,
		Workers:     workerAddrs,
		// Keep every job observable for the final reconciliation.
		KeepJobs: clients*jobsPer + 8,
	})
	if err := srv.ConnectWorkers(context.Background()); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() { _ = http.Serve(ln, srv) }()
	base := "http://" + ln.Addr().String()

	var (
		tal  tally
		wg   sync.WaitGroup
		errs = make(chan error, clients)
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if err := client(base, c, rounds, jobsPer, &tal); err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	// Audit 1: zero dropped jobs — every accepted job served a result.
	if tal.jobsDone != clients*jobsPer {
		return fmt.Errorf("dropped jobs: %d submitted, %d reached done with a result", clients*jobsPer, tal.jobsDone)
	}

	// Audit 2: client-observed p99 on /v1/run.
	sort.Slice(tal.latencies, func(i, j int) bool { return tal.latencies[i] < tal.latencies[j] })
	p99 := tal.latencies[len(tal.latencies)*99/100]
	if p99 > p99Bound {
		return fmt.Errorf("/v1/run p99 = %v, bound %v", p99, p99Bound)
	}

	// Audit 3: /metrics reconciles with the client-side tally. Scraping is
	// itself a request, so scrape once and audit that snapshot.
	samples, err := scrape(base + "/metrics")
	if err != nil {
		return err
	}
	sumOverCodes := func(endpoint string) float64 {
		total := 0.0
		for series, v := range samples {
			if strings.HasPrefix(series, `atlarge_http_requests_total{endpoint="`+endpoint+`"`) {
				total += v
			}
		}
		return total
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"requests_total GET /v1/run", sumOverCodes("GET /v1/run"), float64(tal.runAttempts)},
		{"requests_total POST /v1/jobs", sumOverCodes("POST /v1/jobs"), float64(tal.jobPosts)},
		{"latency histogram count GET /v1/run", samples[`atlarge_http_request_duration_seconds_count{endpoint="GET /v1/run"}`], float64(tal.runAttempts)},
		{"jobs done gauge", samples[`atlarge_jobs{state="done"}`], float64(tal.jobsDone)},
		{"jobs running gauge", samples[`atlarge_jobs{state="running"}`], 0},
		{"queue depth drained", samples["atlarge_queue_depth"], 0},
	}
	for _, c := range checks {
		if c.got != c.want {
			return fmt.Errorf("metrics reconciliation: %s = %v, client tally %v", c.name, c.got, c.want)
		}
	}
	if got, want := samples["atlarge_tasks_completed_total"], float64(tal.jobsDone*tasksPerJob); got < want {
		return fmt.Errorf("metrics reconciliation: tasks_completed_total = %v, want >= %v (job tasks alone)", got, want)
	}
	if ratio := samples["atlarge_cache_hit_ratio"]; ratio < 0 || ratio > 1 {
		return fmt.Errorf("cache_hit_ratio = %v out of [0, 1]", ratio)
	}

	// Audit 4 (with -workers): the distributed layer reconciles too — the
	// workers together completed every job task, the in-flight gauge drained,
	// and reliable local workers cost no re-dispatches.
	distNote := ""
	if workers > 0 {
		completions := 0.0
		for series, v := range samples {
			if strings.HasPrefix(series, `atlarge_dist_worker_completions_total{`) {
				completions += v
			}
		}
		if want := float64(tal.jobsDone * tasksPerJob); completions < want {
			return fmt.Errorf("dist reconciliation: worker completions = %v, want >= %v (every job task remote)", completions, want)
		}
		if v := samples["atlarge_dist_tasks_inflight"]; v != 0 {
			return fmt.Errorf("dist reconciliation: tasks_inflight = %v after drain", v)
		}
		if v := samples["atlarge_dist_redispatched_total"]; v != 0 {
			return fmt.Errorf("dist reconciliation: redispatched_total = %v with healthy workers", v)
		}
		distNote = fmt.Sprintf(", %d workers completed %.0f remote tasks", workers, completions)
	}

	fmt.Printf("serve-load: OK — %d clients, %d/%d run queries OK (%d rate-limited retries), %d jobs done, p99 %v (bound %v), cache hit ratio %.2f%s\n",
		clients, tal.runOK, tal.runAttempts, tal.runRetries, tal.jobsDone, p99.Round(time.Microsecond), p99Bound,
		samples["atlarge_cache_hit_ratio"], distNote)
	return nil
}

// client drives one worker's share of the mixed load.
func client(base string, id, rounds, jobsPer int, tal *tally) error {
	httpc := &http.Client{Timeout: 30 * time.Second}
	name := fmt.Sprintf("load-client-%d", id)
	do := func(method, url, body string) (*http.Response, error) {
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("X-Atlarge-Client", name)
		return httpc.Do(req)
	}

	// Phase 1: submit this client's jobs (unique seeds, so no dedup).
	jobIDs := make([]string, 0, jobsPer)
	for j := 0; j < jobsPer; j++ {
		seed := int64(id*1000 + j)
		body := fmt.Sprintf(`{"kind": "sweep", "spec": %s, "seed": %d, "replicas": 2}`, loadSpec, seed)
		for attempt := 0; ; attempt++ {
			resp, err := do("POST", base+"/v1/jobs", body)
			if err != nil {
				return err
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			tal.mu.Lock()
			tal.jobPosts++
			tal.mu.Unlock()
			if resp.StatusCode == http.StatusTooManyRequests {
				if attempt > 120 {
					return fmt.Errorf("job submit still refused after %d attempts", attempt)
				}
				sleepRetryAfter(resp)
				continue
			}
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				return fmt.Errorf("job submit: status %d, body %s", resp.StatusCode, raw)
			}
			jobID := extractJSONString(string(raw), "id")
			if jobID == "" {
				return fmt.Errorf("job submit: no id in %s", raw)
			}
			jobIDs = append(jobIDs, jobID)
			tal.mu.Lock()
			tal.jobsAccepted++
			tal.mu.Unlock()
			break
		}
	}

	// Phase 2: the /v1/run mix — a few shared seeds (cache hits across
	// clients) plus a per-client seed (guaranteed misses).
	for r := 0; r < rounds; r++ {
		seed := r % 4
		if r%5 == 4 {
			seed = 1000 + id*100 + r
		}
		url := fmt.Sprintf("%s/v1/run?ids=synth-a,synth-b&seed=%d", base, seed)
		for attempt := 0; ; attempt++ {
			start := time.Now()
			resp, err := do("GET", url, "")
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			tal.mu.Lock()
			tal.runAttempts++
			if resp.StatusCode == http.StatusOK {
				tal.runOK++
				tal.latencies = append(tal.latencies, elapsed)
			} else if resp.StatusCode == http.StatusTooManyRequests {
				tal.runRetries++
			}
			tal.mu.Unlock()
			if resp.StatusCode == http.StatusOK {
				break
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				if attempt > 120 {
					return fmt.Errorf("run query still refused after %d attempts", attempt)
				}
				sleepRetryAfter(resp)
				continue
			}
			return fmt.Errorf("run query: status %d", resp.StatusCode)
		}
	}

	// Phase 3: every job must land, and its result must serve.
	for _, jobID := range jobIDs {
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := do("GET", base+"/v1/jobs/"+jobID, "")
			if err != nil {
				return err
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			state := extractJSONString(string(raw), "state")
			if state == "done" {
				break
			}
			if state == "failed" || state == "cancelled" {
				return fmt.Errorf("job %s reached %s: %s", jobID, state, raw)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("job %s stuck: %s", jobID, raw)
			}
			time.Sleep(25 * time.Millisecond)
		}
		resp, err := do("GET", base+"/v1/jobs/"+jobID+"/result", "")
		if err != nil {
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(raw) == 0 {
			return fmt.Errorf("job %s result: status %d, %d bytes", jobID, resp.StatusCode, len(raw))
		}
		tal.mu.Lock()
		tal.jobsDone++
		tal.mu.Unlock()
	}
	return nil
}

// sleepRetryAfter honors a 429's Retry-After, capped so the harness stays
// fast even against a strict limiter.
func sleepRetryAfter(resp *http.Response) {
	wait := 100 * time.Millisecond
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
		wait = time.Duration(ra) * time.Second
	}
	if wait > 250*time.Millisecond {
		wait = 250 * time.Millisecond
	}
	time.Sleep(wait)
}

// extractJSONString pulls a top-level string field out of a small JSON
// document without committing the harness to the server's document types.
func extractJSONString(doc, field string) string {
	marker := `"` + field + `": "`
	i := strings.Index(doc, marker)
	if i < 0 {
		return ""
	}
	rest := doc[i+len(marker):]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j]
	}
	return ""
}

// scrape fetches and parses a Prometheus text exposition into a map from
// series (name plus label block, exactly as rendered) to value.
func scrape(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics scrape: status %d", resp.StatusCode)
	}
	samples := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("metrics scrape: unparseable line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics scrape: bad value in %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return samples, sc.Err()
}
