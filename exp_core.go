package atlarge

import (
	"fmt"
	"math/rand"
	"strings"

	"atlarge/internal/core"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "bdc",
		Title: "Tables 1-3 + Figure 8: framework catalog and BDC mechanics",
		Tags:  []string{"table", "framework", "core", "fast"},
		Order: 120,
		Run:   runBDC,
	})
}

func runBDC(seed int64) (*Report, error) {
	if err := core.ValidateCatalog(); err != nil {
		return nil, err
	}
	rep := &Report{ID: "bdc", Title: "Tables 1-3 + Figure 8: framework catalog and BDC mechanics"}
	for _, p := range core.Principles() {
		rep.Rows = append(rep.Rows, fmt.Sprintf("P%d (%s): %s", p.Index, p.Category, p.Text))
	}
	for _, c := range core.Challenges() {
		ps := make([]string, len(c.Principles))
		for i, pi := range c.Principles {
			ps[i] = fmt.Sprintf("P%d", pi)
		}
		rep.Rows = append(rep.Rows, fmt.Sprintf("C%d (%s): %s [%s]", c.Index, c.Category, c.Key, strings.Join(ps, ",")))
	}
	// Run a demonstration BDC: a noisy design search that satisfices.
	r := rand.New(rand.NewSource(seed))
	cy := &core.Cycle{
		Name: "demo",
		Stages: map[core.Stage]core.StageFunc{
			core.StageDesign: func(ctx *core.Context) error {
				score := r.Float64()
				ctx.AddSolution(core.Artifact{Name: "candidate", Score: score, Satisficing: score > 0.8})
				return nil
			},
		},
		Stop: core.StoppingCriteria{SatisficeAfter: 1, MaxIterations: 100},
	}
	tr, err := cy.Run(nil)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"demo BDC: stop=%s after %d iterations, %d solutions, %d failures",
		tr.Stop, len(tr.Iterations), len(tr.Solutions), tr.Failures))
	// Figure 4: the pre-training student design under the review rubric.
	student := core.Figure4StudentDesign()
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"Figure 4 student design: score %.2f -> %s; missing: %s",
		student.Score(), student.Assess(), strings.Join(student.Missing(0.5), ", ")))
	return rep, nil
}
