package atlarge

import (
	"fmt"
	"math/rand"
	"strings"

	"atlarge/internal/core"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "bdc",
		Title: "Tables 1-3 + Figure 8: framework catalog and BDC mechanics",
		Tags:  []string{"table", "framework", "core", "fast"},
		Order: 120,
		Run:   runBDC,
	})
}

func runBDC(seed int64) (*Report, error) {
	if err := core.ValidateCatalog(); err != nil {
		return nil, err
	}
	rep := NewReport("bdc", "Tables 1-3 + Figure 8: framework catalog and BDC mechanics")
	pt := rep.AddTable("principles", "principle", "category", "text")
	for _, p := range core.Principles() {
		pt.AddRow(Labelf("P%d", p.Index), Labelf("%s", p.Category), Label(p.Text))
	}
	ct := rep.AddTable("challenges", "challenge", "category", "key", "principles")
	for _, c := range core.Challenges() {
		ps := make([]string, len(c.Principles))
		for i, pi := range c.Principles {
			ps[i] = fmt.Sprintf("P%d", pi)
		}
		ct.AddRow(Labelf("C%d", c.Index), Labelf("%s", c.Category), Label(c.Key), Label(strings.Join(ps, ",")))
	}
	rep.AddMetric(Metric{Name: "principles", Value: float64(len(core.Principles()))})
	rep.AddMetric(Metric{Name: "challenges", Value: float64(len(core.Challenges()))})

	// Run a demonstration BDC: a noisy design search that satisfices.
	r := rand.New(rand.NewSource(seed))
	cy := &core.Cycle{
		Name: "demo",
		Stages: map[core.Stage]core.StageFunc{
			core.StageDesign: func(ctx *core.Context) error {
				score := r.Float64()
				ctx.AddSolution(core.Artifact{Name: "candidate", Score: score, Satisficing: score > 0.8})
				return nil
			},
		},
		Stop: core.StoppingCriteria{SatisficeAfter: 1, MaxIterations: 100},
	}
	tr, err := cy.Run(nil)
	if err != nil {
		return nil, err
	}
	rep.AddMetric(Metric{Name: "demo_bdc_iterations", Value: float64(len(tr.Iterations))})
	rep.AddMetric(Metric{Name: "demo_bdc_solutions", Value: float64(len(tr.Solutions)), HigherBetter: true})
	rep.AddMetric(Metric{Name: "demo_bdc_failures", Value: float64(tr.Failures)})
	rep.AddNote("demo BDC stop criterion: %s", tr.Stop)

	// Figure 4: the pre-training student design under the review rubric.
	student := core.Figure4StudentDesign()
	rep.AddMetric(Metric{Name: "fig4_student_score", Value: student.Score(), HigherBetter: true})
	rep.AddNote("Figure 4 student design assessed %s; missing: %s",
		student.Assess(), strings.Join(student.Missing(0.5), ", "))
	return rep, nil
}
