package atlarge

import "sort"

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "fig7",
		Title: "Figures 6-7: design-space exploration processes",
		Tags:  []string{"figure", "designspace", "fast"},
		Order: 40,
		Run:   runFig7,
	})
}

func runFig7(seed int64) (*Report, error) {
	res, err := RunFigure7(6, 2, 0.06, 600, seed)
	if err != nil {
		return nil, err
	}
	rep := NewReport("fig7", "Figures 6-7: design-space exploration processes")
	var names []string
	for n := range res.Outcomes {
		names = append(names, n)
	}
	sort.Strings(names)
	t := rep.AddTable("processes", "process", "attempts", "solutions", "failures", "hit_rate")
	for _, n := range names {
		o := res.Outcomes[n]
		t.AddRow(Label(n), Count(o.Attempts), Count(o.Solutions), Count(o.Failures),
			Num(o.HitRate, "%.3f"))
	}
	co := res.CoEvolving
	h1, h2 := 0.0, 0.0
	if co.Phase1.Attempts > 0 {
		h1 = float64(co.Phase1.Solutions) / float64(co.Phase1.Attempts)
	}
	if co.Phase2.Attempts > 0 {
		h2 = float64(co.Phase2.Solutions) / float64(co.Phase2.Attempts)
	}
	evolved := 0.0
	if co.Evolved {
		evolved = 1
	}
	rep.AddMetric(Metric{Name: "coevolve_phase1_hit_rate", Value: h1, HigherBetter: true})
	rep.AddMetric(Metric{Name: "coevolve_phase2_hit_rate", Value: h2, HigherBetter: true})
	rep.AddMetric(Metric{Name: "coevolve_evolved", Value: evolved, HigherBetter: true})
	return rep, nil
}
