package atlarge

import (
	"fmt"
	"sort"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "fig7",
		Title: "Figures 6-7: design-space exploration processes",
		Tags:  []string{"figure", "designspace", "fast"},
		Order: 40,
		Run:   runFig7,
	})
}

func runFig7(seed int64) (*Report, error) {
	res, err := RunFigure7(6, 2, 0.06, 600, seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig7", Title: "Figures 6-7: design-space exploration processes"}
	var names []string
	for n := range res.Outcomes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		o := res.Outcomes[n]
		rep.Rows = append(rep.Rows, fmt.Sprintf(
			"%-14s attempts=%-4d solutions=%-3d failures=%-4d hit-rate=%.3f",
			n, o.Attempts, o.Solutions, o.Failures, o.HitRate))
	}
	co := res.CoEvolving
	h1, h2 := 0.0, 0.0
	if co.Phase1.Attempts > 0 {
		h1 = float64(co.Phase1.Solutions) / float64(co.Phase1.Attempts)
	}
	if co.Phase2.Attempts > 0 {
		h2 = float64(co.Phase2.Solutions) / float64(co.Phase2.Attempts)
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"co-evolving phases: problem-1 hit-rate %.3f -> after evolution %.3f (evolved=%v)",
		h1, h2, co.Evolved))
	return rep, nil
}
