# Local development and CI invoke the same targets (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test test-short lint fmt vet bench bench-base bench-compare run-all scenario-golden catalog-golden serve-smoke sweep-resume-smoke clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

lint: fmt vet

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# One iteration per benchmark: a smoke pass that keeps bench_test.go and
# ablation_bench_test.go compiling and running without a full measurement.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# The gated hot-path benchmarks — the event kernel and the streaming
# work-plan executor every runner/sweep/API request rides on — measured long
# enough to gate on.
BENCH_KERNEL = $(GO) test -run '^$$' -bench 'BenchmarkKernel|BenchmarkExecStream' -benchtime 1s ./internal/sim ./internal/exec

# Regenerate the committed perf baseline (run on the reference machine after
# an intentional kernel change, and commit the result).
bench-base:
	$(BENCH_KERNEL) | $(GO) run ./cmd/bench2json -suite kernel-base > BENCH_base.json

# Fail on a >20% ns/op regression of any kernel benchmark vs the committed
# baseline. CI runs this on every push; baselines from different hardware
# shift both sides of later comparisons together once regenerated. (A temp
# file instead of a pipe so a failing benchmark run fails the target under
# POSIX sh.)
bench-compare:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(BENCH_KERNEL) > "$$tmp"; \
	$(GO) run ./cmd/bench2json -compare BENCH_base.json -tolerance 0.20 < "$$tmp"

run-all:
	$(GO) run ./cmd/atlarge run --all --parallel 4

# End-to-end determinism check of the scenario engine through the CLI: each
# committed golden sweep (one per pinned domain) must produce byte-identical
# JSON at --parallel 1 and --parallel 8, matching the committed golden file.
scenario-golden:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	for spec in policy-vs-load autoscaler-vs-load; do \
		$(GO) run ./cmd/atlarge scenario sweep examples/scenarios/$$spec.json --replicas 3 --parallel 1 --format json > "$$tmp/p1.json"; \
		$(GO) run ./cmd/atlarge scenario sweep examples/scenarios/$$spec.json --replicas 3 --parallel 8 --format json > "$$tmp/p8.json"; \
		cmp "$$tmp/p1.json" "$$tmp/p8.json"; \
		cmp "$$tmp/p1.json" internal/scenario/testdata/$$spec.golden.json; \
		echo "scenario-golden: $$spec OK"; \
	done

# Pin the machine-readable experiment catalog against its committed golden,
# so `atlarge list --format json` (and the serve API's /v1/experiments,
# which emits the same document) cannot drift silently. Regenerate with
#   go run ./cmd/atlarge list --format json > cmd/atlarge/testdata/catalog.golden.json
# after an intentional catalog change.
catalog-golden:
	@$(GO) run ./cmd/atlarge list --format json | cmp - cmd/atlarge/testdata/catalog.golden.json
	@echo "catalog-golden: OK"

# End-to-end smoke of `atlarge serve`: boot it on an ephemeral port, check
# /v1/experiments matches the committed catalog golden, and hit one /v1/run
# twice — the second (cached) response must be byte-identical to the first.
serve-smoke:
	@set -e; tmp=$$(mktemp -d); \
	trap 'kill "$$pid" 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/atlarge" ./cmd/atlarge; \
	"$$tmp/atlarge" serve --addr 127.0.0.1:0 > "$$tmp/serve.log" 2>&1 & pid=$$!; \
	for i in $$(seq 1 50); do \
		grep -q "serving" "$$tmp/serve.log" 2>/dev/null && break; sleep 0.2; \
	done; \
	url=$$(sed -n 's|.*\(http://[0-9.:]*\).*|\1|p' "$$tmp/serve.log"); \
	test -n "$$url" || { echo "serve-smoke: server never came up"; cat "$$tmp/serve.log"; exit 1; }; \
	curl -fsS "$$url/v1/experiments" > "$$tmp/catalog.json"; \
	cmp "$$tmp/catalog.json" cmd/atlarge/testdata/catalog.golden.json; \
	curl -fsS "$$url/v1/run?ids=fig9&seed=7" > "$$tmp/run1.json"; \
	curl -fsS "$$url/v1/run?ids=fig9&seed=7" > "$$tmp/run2.json"; \
	cmp "$$tmp/run1.json" "$$tmp/run2.json"; \
	echo "serve-smoke: OK"

# End-to-end check of checkpoint/resume through the CLI: run a sweep sized
# to take a few seconds, kill it at roughly 50% via --timeout, resume from
# the checkpoint directory, and byte-compare the final JSON against an
# uninterrupted --parallel 1 run. The timeout lands wherever it lands — the
# invariant under test is that resume is byte-identical from ANY prefix of
# completed work (including none or all of it), so the target is
# deterministic even though the kill point is not.
sweep-resume-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/atlarge" ./cmd/atlarge; \
	printf '%s\n' '{"version": 1, "name": "resume-smoke",' \
		'"workload": {"class": "scientific", "jobs": 700},' \
		'"cluster": {"kind": "CL", "machines": 16, "cores": 8},' \
		'"replicas": 2, "seed": 42,' \
		'"sweep": {"policy": ["sjf", "fcfs", "easy-bf", "random"], "load": [0.5, 0.7, 0.9, 1.1]}}' \
		> "$$tmp/spec.json"; \
	"$$tmp/atlarge" scenario sweep "$$tmp/spec.json" --parallel 1 --format json > "$$tmp/uninterrupted.json"; \
	"$$tmp/atlarge" scenario sweep "$$tmp/spec.json" --parallel 2 --format json \
		--checkpoint "$$tmp/ckpt" --timeout 1s > /dev/null 2>"$$tmp/interrupt.log" \
		&& { echo "sweep-resume-smoke: WARNING: sweep finished before the 1s kill; resume path still checked"; } \
		|| grep -q "run interrupted" "$$tmp/interrupt.log"; \
	echo "sweep-resume-smoke: interrupted with $$(ls "$$tmp"/ckpt/*/task-*.json 2>/dev/null | wc -l)/32 tasks checkpointed"; \
	"$$tmp/atlarge" scenario sweep "$$tmp/spec.json" --parallel 8 --format json --checkpoint "$$tmp/ckpt" > "$$tmp/resumed.json"; \
	cmp "$$tmp/resumed.json" "$$tmp/uninterrupted.json"; \
	echo "sweep-resume-smoke: OK (resumed report byte-identical to uninterrupted run)"

clean:
	$(GO) clean ./...
