# Local development and CI invoke the same targets (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test test-short lint fmt vet bench run-all clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

lint: fmt vet

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# One iteration per benchmark: a smoke pass that keeps bench_test.go and
# ablation_bench_test.go compiling and running without a full measurement.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

run-all:
	$(GO) run ./cmd/atlarge run --all --parallel 4

clean:
	$(GO) clean ./...
