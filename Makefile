# Local development and CI invoke the same targets (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test test-short lint fmt vet bench bench-base bench-compare run-all scenario-golden catalog-golden serve-smoke serve-load serve-restart-smoke sweep-resume-smoke trace-smoke dist-smoke stream-smoke clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

lint: fmt vet

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# One iteration per benchmark: a smoke pass that keeps bench_test.go and
# ablation_bench_test.go compiling and running without a full measurement.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# The gated hot-path benchmarks — the event kernel, the streaming work-plan
# executor every runner/sweep/API request rides on, and the population job
# stream (which must stay ~0 allocs/job at any client count) — measured long
# enough to gate on.
BENCH_KERNEL = $(GO) test -run '^$$' -bench 'BenchmarkKernel|BenchmarkExecStream|BenchmarkWorldTick|BenchmarkPopulationStream' -benchmem -benchtime 1s ./internal/sim ./internal/exec ./internal/mmog ./internal/workload

# Regenerate the committed perf baseline (run on the reference machine after
# an intentional kernel change, and commit the result).
bench-base:
	$(BENCH_KERNEL) | $(GO) run ./cmd/bench2json -suite kernel-base > BENCH_base.json

# Fail on a >20% ns/op or allocs/op regression of any kernel benchmark vs the
# committed baseline (the allocs gate has a +2 absolute slack so near-zero
# baselines tolerate an incidental allocation). CI runs this on every push;
# baselines from different hardware shift both sides of later comparisons
# together once regenerated. (A temp file instead of a pipe so a failing
# benchmark run fails the target under POSIX sh.)
bench-compare:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(BENCH_KERNEL) > "$$tmp"; \
	$(GO) run ./cmd/bench2json -compare BENCH_base.json -tolerance 0.20 -allocs-tolerance 0.20 < "$$tmp"

run-all:
	$(GO) run ./cmd/atlarge run --all --parallel 4

# End-to-end determinism check of the scenario engine through the CLI: each
# committed golden sweep (one per pinned domain) must produce byte-identical
# JSON at --parallel 1 and --parallel 8, matching the committed golden file.
scenario-golden:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	for spec in policy-vs-load autoscaler-vs-load; do \
		$(GO) run ./cmd/atlarge scenario sweep examples/scenarios/$$spec.json --replicas 3 --parallel 1 --format json > "$$tmp/p1.json"; \
		$(GO) run ./cmd/atlarge scenario sweep examples/scenarios/$$spec.json --replicas 3 --parallel 8 --format json > "$$tmp/p8.json"; \
		cmp "$$tmp/p1.json" "$$tmp/p8.json"; \
		cmp "$$tmp/p1.json" internal/scenario/testdata/$$spec.golden.json; \
		echo "scenario-golden: $$spec OK"; \
	done

# Pin the machine-readable experiment catalog against its committed golden,
# so `atlarge list --format json` (and the serve API's /v1/experiments,
# which emits the same document) cannot drift silently. Regenerate with
#   go run ./cmd/atlarge list --format json > cmd/atlarge/testdata/catalog.golden.json
# after an intentional catalog change.
catalog-golden:
	@$(GO) run ./cmd/atlarge list --format json | cmp - cmd/atlarge/testdata/catalog.golden.json
	@echo "catalog-golden: OK"

# End-to-end smoke of `atlarge serve`: boot it on an ephemeral port, check
# /v1/experiments matches the committed catalog golden, hit one /v1/run
# twice (the second, cached response must be byte-identical), drive a job
# through the redesigned /v1/jobs resource AND the deprecated
# /v1/scenario/jobs alias (both must serve the same result bytes, and an
# identical resubmission must dedup onto the same job), and scrape /metrics.
serve-smoke:
	@set -e; tmp=$$(mktemp -d); \
	trap 'kill "$$pid" 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/atlarge" ./cmd/atlarge; \
	"$$tmp/atlarge" serve --addr 127.0.0.1:0 > "$$tmp/serve.log" 2>&1 & pid=$$!; \
	for i in $$(seq 1 50); do \
		grep -q "serving" "$$tmp/serve.log" 2>/dev/null && break; sleep 0.2; \
	done; \
	url=$$(sed -n 's|.*\(http://[0-9.:]*\).*|\1|p' "$$tmp/serve.log"); \
	test -n "$$url" || { echo "serve-smoke: server never came up"; cat "$$tmp/serve.log"; exit 1; }; \
	curl -fsS "$$url/v1/experiments" > "$$tmp/catalog.json"; \
	cmp "$$tmp/catalog.json" cmd/atlarge/testdata/catalog.golden.json; \
	curl -fsS "$$url/v1/run?ids=fig9&seed=7" > "$$tmp/run1.json"; \
	curl -fsS "$$url/v1/run?ids=fig9&seed=7" > "$$tmp/run2.json"; \
	cmp "$$tmp/run1.json" "$$tmp/run2.json"; \
	printf '%s\n' '{"version": 2, "name": "smoke", "domain": "sched",' \
		'"policy": "sjf", "workload": {"class": "syn", "jobs": 8},' \
		'"cluster": {"machines": 2}, "seed": 7,' \
		'"sweep": {"policy": ["sjf", "fcfs"]}}' > "$$tmp/spec.json"; \
	printf '{"kind": "sweep", "spec": %s}' "$$(cat "$$tmp/spec.json")" > "$$tmp/job.json"; \
	curl -fsS -X POST --data-binary @"$$tmp/job.json" "$$url/v1/jobs" > "$$tmp/accept.json"; \
	id=$$(sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p' "$$tmp/accept.json" | head -1); \
	test -n "$$id" || { echo "serve-smoke: no job id"; cat "$$tmp/accept.json"; exit 1; }; \
	for i in $$(seq 1 100); do \
		curl -fsS "$$url/v1/jobs/$$id" > "$$tmp/doc.json"; \
		grep -q '"state": "done"' "$$tmp/doc.json" && break; sleep 0.1; \
	done; \
	grep -q '"state": "done"' "$$tmp/doc.json" || { echo "serve-smoke: job never finished"; cat "$$tmp/doc.json"; exit 1; }; \
	curl -fsS "$$url/v1/jobs/$$id/result" > "$$tmp/result.json"; \
	curl -fsS -X POST --data-binary @"$$tmp/spec.json" "$$url/v1/scenario/sweep" > "$$tmp/sync.json"; \
	cmp "$$tmp/result.json" "$$tmp/sync.json"; \
	curl -fsS -X POST --data-binary @"$$tmp/job.json" "$$url/v1/jobs" | grep -q "\"id\": \"$$id\"" \
		|| { echo "serve-smoke: identical resubmission did not dedup"; exit 1; }; \
	curl -fsS "$$url/v1/scenario/jobs/$$id/result" > "$$tmp/legacy-result.json"; \
	cmp "$$tmp/legacy-result.json" "$$tmp/result.json"; \
	curl -fsS "$$url/metrics" > "$$tmp/metrics.txt"; \
	for m in atlarge_queue_depth atlarge_cache_hit_ratio atlarge_http_requests_total atlarge_jobs; do \
		grep -q "$$m" "$$tmp/metrics.txt" || { echo "serve-smoke: /metrics missing $$m"; exit 1; }; \
	done; \
	echo "serve-smoke: OK (run cache, /v1/jobs, dedup, legacy alias, /metrics)"

# Load-test the serving layer in-process: N concurrent clients of mixed
# /v1/run and async /v1/jobs traffic; asserts zero dropped jobs, a
# client-observed p99 bound, and that /metrics reconciles with the clients'
# own tally. See cmd/serve-load.
serve-load:
	$(GO) run ./cmd/serve-load -clients 8 -rounds 30 -jobs 2 -p99 2s
	$(GO) run ./cmd/serve-load -clients 8 -rounds 30 -jobs 2 -p99 2s -workers 3

# End-to-end smoke of distributed sweep execution: boot 3 worker processes,
# run the 32-task sweep across them while SIGKILLing one worker mid-flight,
# and byte-compare the output against an in-process --parallel 8 run. Also
# pins the single-worker path (CSV this time, so both renderers are
# covered). The kill lands wherever it lands — the invariant is that the
# dispatcher re-runs exactly the lost tasks and the merged output is
# byte-identical regardless.
dist-smoke:
	@set -e; tmp=$$(mktemp -d); \
	trap 'kill "$$w1" "$$w2" "$$w3" 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/atlarge" ./cmd/atlarge; \
	printf '%s\n' '{"version": 1, "name": "dist-smoke",' \
		'"workload": {"class": "scientific", "jobs": 700},' \
		'"cluster": {"kind": "CL", "machines": 16, "cores": 8},' \
		'"replicas": 2, "seed": 42,' \
		'"sweep": {"policy": ["sjf", "fcfs", "easy-bf", "random"], "load": [0.5, 0.7, 0.9, 1.1]}}' \
		> "$$tmp/spec.json"; \
	"$$tmp/atlarge" scenario sweep "$$tmp/spec.json" --parallel 8 --format json > "$$tmp/inprocess.json"; \
	"$$tmp/atlarge" scenario sweep "$$tmp/spec.json" --parallel 8 --format csv > "$$tmp/inprocess.csv"; \
	"$$tmp/atlarge" worker --listen 127.0.0.1:0 --parallel 2 > "$$tmp/w1.log" 2>&1 & w1=$$!; \
	"$$tmp/atlarge" worker --listen 127.0.0.1:0 --parallel 2 > "$$tmp/w2.log" 2>&1 & w2=$$!; \
	"$$tmp/atlarge" worker --listen 127.0.0.1:0 --parallel 2 > "$$tmp/w3.log" 2>&1 & w3=$$!; \
	for log in w1 w2 w3; do \
		for i in $$(seq 1 50); do \
			grep -q "http://" "$$tmp/$$log.log" 2>/dev/null && break; sleep 0.1; \
		done; \
		grep -q "http://" "$$tmp/$$log.log" || { echo "dist-smoke: worker $$log never came up"; cat "$$tmp/$$log.log"; exit 1; }; \
	done; \
	a1=$$(sed -n 's|.*http://||p' "$$tmp/w1.log"); \
	a2=$$(sed -n 's|.*http://||p' "$$tmp/w2.log"); \
	a3=$$(sed -n 's|.*http://||p' "$$tmp/w3.log"); \
	( sleep 1.5; kill -9 "$$w3" 2>/dev/null ) & \
	"$$tmp/atlarge" scenario sweep "$$tmp/spec.json" --parallel 2 --format json \
		--workers "$$a1,$$a2,$$a3" > "$$tmp/dist3.json" 2>"$$tmp/dist3.log"; \
	cmp "$$tmp/dist3.json" "$$tmp/inprocess.json"; \
	if grep -q "re-dispatched" "$$tmp/dist3.log"; then \
		echo "dist-smoke: $$(cat "$$tmp/dist3.log")"; \
	else \
		echo "dist-smoke: WARNING: sweep finished before the kill cost any claims; byte-identity still checked"; \
	fi; \
	"$$tmp/atlarge" scenario sweep "$$tmp/spec.json" --parallel 2 --format csv \
		--workers "$$a1" > "$$tmp/dist1.csv"; \
	cmp "$$tmp/dist1.csv" "$$tmp/inprocess.csv"; \
	echo "dist-smoke: OK (3-worker run with a mid-flight SIGKILL and 1-worker run both byte-identical to in-process)"

# Restart-durability smoke of `atlarge serve --state-dir`: submit the same
# multi-second sweep sweep-resume-smoke uses as an async job, SIGKILL the
# server mid-flight, restart it on the same state dir, and byte-compare the
# recovered job's result against an uninterrupted CLI run. The kill lands
# wherever it lands — resume must be byte-identical from ANY prefix of
# completed work.
serve-restart-smoke:
	@set -e; tmp=$$(mktemp -d); \
	trap 'kill "$$pid" 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/atlarge" ./cmd/atlarge; \
	printf '%s\n' '{"version": 1, "name": "restart-smoke",' \
		'"workload": {"class": "scientific", "jobs": 700},' \
		'"cluster": {"kind": "CL", "machines": 16, "cores": 8},' \
		'"replicas": 2, "seed": 42,' \
		'"sweep": {"policy": ["sjf", "fcfs", "easy-bf", "random"], "load": [0.5, 0.7, 0.9, 1.1]}}' \
		> "$$tmp/spec.json"; \
	"$$tmp/atlarge" scenario sweep "$$tmp/spec.json" --parallel 1 --format json > "$$tmp/uninterrupted.json"; \
	"$$tmp/atlarge" serve --addr 127.0.0.1:0 --parallel 2 --state-dir "$$tmp/state" > "$$tmp/serve1.log" 2>&1 & pid=$$!; \
	for i in $$(seq 1 50); do \
		grep -q "serving" "$$tmp/serve1.log" 2>/dev/null && break; sleep 0.2; \
	done; \
	url=$$(sed -n 's|.*\(http://[0-9.:]*\).*|\1|p' "$$tmp/serve1.log"); \
	test -n "$$url" || { echo "serve-restart-smoke: server never came up"; cat "$$tmp/serve1.log"; exit 1; }; \
	printf '{"kind": "sweep", "spec": %s}' "$$(cat "$$tmp/spec.json")" > "$$tmp/job.json"; \
	curl -fsS -X POST --data-binary @"$$tmp/job.json" "$$url/v1/jobs" > "$$tmp/accept.json"; \
	id=$$(sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p' "$$tmp/accept.json" | head -1); \
	test -n "$$id" || { echo "serve-restart-smoke: no job id"; cat "$$tmp/accept.json"; exit 1; }; \
	sleep 1.5; \
	kill -9 "$$pid" 2>/dev/null; wait "$$pid" 2>/dev/null || true; \
	echo "serve-restart-smoke: killed server with $$(ls "$$tmp"/state/$$id/task-*.json 2>/dev/null | wc -l)/32 tasks checkpointed"; \
	"$$tmp/atlarge" serve --addr 127.0.0.1:0 --parallel 2 --state-dir "$$tmp/state" > "$$tmp/serve2.log" 2>&1 & pid=$$!; \
	for i in $$(seq 1 50); do \
		grep -q "serving" "$$tmp/serve2.log" 2>/dev/null && break; sleep 0.2; \
	done; \
	url=$$(sed -n 's|.*\(http://[0-9.:]*\).*|\1|p' "$$tmp/serve2.log"); \
	test -n "$$url" || { echo "serve-restart-smoke: restart never came up"; cat "$$tmp/serve2.log"; exit 1; }; \
	for i in $$(seq 1 300); do \
		curl -fsS "$$url/v1/jobs/$$id" > "$$tmp/doc.json" 2>/dev/null || true; \
		grep -q '"state": "done"' "$$tmp/doc.json" 2>/dev/null && break; sleep 0.2; \
	done; \
	grep -q '"state": "done"' "$$tmp/doc.json" || { echo "serve-restart-smoke: job never finished after restart"; cat "$$tmp/doc.json"; exit 1; }; \
	curl -fsS "$$url/v1/jobs/$$id/result" > "$$tmp/resumed.json"; \
	cmp "$$tmp/resumed.json" "$$tmp/uninterrupted.json"; \
	echo "serve-restart-smoke: OK (recovered job result byte-identical to uninterrupted run)"

# End-to-end check of checkpoint/resume through the CLI: run a sweep sized
# to take a few seconds, kill it at roughly 50% via --timeout, resume from
# the checkpoint directory, and byte-compare the final JSON against an
# uninterrupted --parallel 1 run. The timeout lands wherever it lands — the
# invariant under test is that resume is byte-identical from ANY prefix of
# completed work (including none or all of it), so the target is
# deterministic even though the kill point is not.
sweep-resume-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/atlarge" ./cmd/atlarge; \
	printf '%s\n' '{"version": 1, "name": "resume-smoke",' \
		'"workload": {"class": "scientific", "jobs": 700},' \
		'"cluster": {"kind": "CL", "machines": 16, "cores": 8},' \
		'"replicas": 2, "seed": 42,' \
		'"sweep": {"policy": ["sjf", "fcfs", "easy-bf", "random"], "load": [0.5, 0.7, 0.9, 1.1]}}' \
		> "$$tmp/spec.json"; \
	"$$tmp/atlarge" scenario sweep "$$tmp/spec.json" --parallel 1 --format json > "$$tmp/uninterrupted.json"; \
	"$$tmp/atlarge" scenario sweep "$$tmp/spec.json" --parallel 2 --format json \
		--checkpoint "$$tmp/ckpt" --timeout 1s > /dev/null 2>"$$tmp/interrupt.log" \
		&& { echo "sweep-resume-smoke: WARNING: sweep finished before the 1s kill; resume path still checked"; } \
		|| grep -q "run interrupted" "$$tmp/interrupt.log"; \
	echo "sweep-resume-smoke: interrupted with $$(ls "$$tmp"/ckpt/*/task-*.json 2>/dev/null | wc -l)/32 tasks checkpointed"; \
	"$$tmp/atlarge" scenario sweep "$$tmp/spec.json" --parallel 8 --format json --checkpoint "$$tmp/ckpt" > "$$tmp/resumed.json"; \
	cmp "$$tmp/resumed.json" "$$tmp/uninterrupted.json"; \
	echo "sweep-resume-smoke: OK (resumed report byte-identical to uninterrupted run)"

# End-to-end smoke of `atlarge trace`: trace one cell of the committed
# example sweep twice, check the Chrome trace-event artifact is well-formed
# (Perfetto-loadable, monotone per-track timestamps) via the built-in
# validator, and byte-compare both runs — traces must be deterministic in
# their virtual-time fields.
trace-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/atlarge" ./cmd/atlarge; \
	"$$tmp/atlarge" trace --spec examples/scenarios/policy-vs-load.json \
		--cell "policy-vs-load/load=0.7,policy=sjf" --dir "$$tmp/t1" > /dev/null; \
	"$$tmp/atlarge" trace --spec examples/scenarios/policy-vs-load.json \
		--cell "policy-vs-load/load=0.7,policy=sjf" --dir "$$tmp/t2" > /dev/null; \
	"$$tmp/atlarge" trace --validate "$$tmp/t1/trace.json" > /dev/null; \
	cmp "$$tmp/t1/trace.ndjson" "$$tmp/t2/trace.ndjson"; \
	cmp "$$tmp/t1/trace.json" "$$tmp/t2/trace.json"; \
	echo "trace-smoke: OK (Chrome trace valid, both runs byte-identical)"

# Memory gate for the streaming workload engine: stream a million jobs from a
# million-client population and fail if peak heap exceeds the budget, proving
# resident state is O(clients) rather than O(jobs). See cmd/stream-smoke.
stream-smoke:
	$(GO) run ./cmd/stream-smoke -clients 1000000 -jobs 1000000 -skew zipf -shards 8

clean:
	$(GO) clean ./...
