# Local development and CI invoke the same targets (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test test-short lint fmt vet bench run-all scenario-golden clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

lint: fmt vet

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# One iteration per benchmark: a smoke pass that keeps bench_test.go and
# ablation_bench_test.go compiling and running without a full measurement.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

run-all:
	$(GO) run ./cmd/atlarge run --all --parallel 4

# End-to-end determinism check of the scenario engine through the CLI: the
# committed example sweep must produce byte-identical JSON at --parallel 1
# and --parallel 8, matching the committed golden file.
scenario-golden:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/atlarge scenario sweep examples/scenarios/policy-vs-load.json --replicas 3 --parallel 1 --format json > "$$tmp/p1.json"; \
	$(GO) run ./cmd/atlarge scenario sweep examples/scenarios/policy-vs-load.json --replicas 3 --parallel 8 --format json > "$$tmp/p8.json"; \
	cmp "$$tmp/p1.json" "$$tmp/p8.json"; \
	cmp "$$tmp/p1.json" internal/scenario/testdata/policy-vs-load.golden.json; \
	echo "scenario-golden: OK"

clean:
	$(GO) clean ./...
