package atlarge

import (
	"reflect"
	"strings"
	"testing"
)

// TestAggregateLabelDigitsUntouched is the regression test for the latent
// bug of the retired regex-skeleton aggregation: digits embedded in labels
// ("P2 (Category)", "fig8") were indistinguishable from data, so a label
// digit adjacent to replica-varying fields could be averaged into nonsense.
// Typed aggregation matches labels exactly and only ever touches value
// cells, so label digits survive verbatim no matter how the values vary.
func TestAggregateLabelDigitsUntouched(t *testing.T) {
	mk := func(v float64) *Report {
		rep := NewReport("x", "x")
		tb := rep.AddTable("rows", "label", "value")
		tb.AddRow(Label("P2 (process)"), Num(v, "%.2f"))
		tb.AddRow(Label("fig8 baseline"), Num(v*2, "%.2f"))
		rep.AddMetric(Metric{Name: "score", Value: v})
		return rep
	}
	agg := AggregateReports([]*Report{mk(1), mk(2), mk(3)})
	if agg == nil {
		t.Fatal("no aggregate")
	}
	rows := agg.Tables[0].Rows
	if rows[0][0].Label != "P2 (process)" || rows[1][0].Label != "fig8 baseline" {
		t.Errorf("label digits rewritten: %q, %q", rows[0][0].Label, rows[1][0].Label)
	}
	if got := *rows[0][1].Value; got != 2 {
		t.Errorf("value mean = %v, want 2", got)
	}
	if rows[0][1].CI95 == nil || *rows[0][1].CI95 == 0 {
		t.Error("varying value cell lost its CI")
	}
	if agg.Metrics[0].Value != 2 || agg.Metrics[0].CI95 == 0 {
		t.Errorf("metric aggregate = %+v, want mean 2 with CI", agg.Metrics[0])
	}
	// The rendered text keeps the labels verbatim too.
	text := strings.Join(agg.Lines(), "\n")
	if !strings.Contains(text, "P2 (process)") || !strings.Contains(text, "fig8 baseline") {
		t.Errorf("rendered labels mangled:\n%s", text)
	}
}

// TestAggregateLabelMismatchKeepsReplicaZero pins exact label matching: a
// row whose label differs in any replica keeps its replica-0 cells, values
// included.
func TestAggregateLabelMismatchKeepsReplicaZero(t *testing.T) {
	mk := func(mode string, v float64) *Report {
		rep := NewReport("x", "x")
		tb := rep.AddTable("rows")
		tb.AddRow(Label(mode), Num(v, ""))
		tb.AddRow(Label("stable"), Num(v, ""))
		return rep
	}
	agg := AggregateReports([]*Report{mk("warm", 3), mk("cold", 5)})
	rows := agg.Tables[0].Rows
	if rows[0][0].Label != "warm" || *rows[0][1].Value != 3 || rows[0][1].CI95 != nil {
		t.Errorf("mismatched-label row aggregated: %+v", rows[0])
	}
	// The aligned row still aggregates.
	if *rows[1][1].Value != 4 || rows[1][1].CI95 == nil {
		t.Errorf("aligned row not aggregated: %+v", rows[1])
	}
}

func TestAggregateConstantStaysExact(t *testing.T) {
	mk := func() *Report {
		rep := NewReport("x", "x")
		rep.AddMetric(Metric{Name: "n", Value: 0.1})
		tb := rep.AddTable("t")
		tb.AddRow(Num(0.3, ""))
		return rep
	}
	agg := AggregateReports([]*Report{mk(), mk(), mk()})
	if agg.Metrics[0].Value != 0.1 || agg.Metrics[0].CI95 != 0 {
		t.Errorf("constant metric drifted: %+v", agg.Metrics[0])
	}
	if c := agg.Tables[0].Rows[0][0]; *c.Value != 0.3 || c.CI95 != nil {
		t.Errorf("constant cell drifted: %+v", c)
	}
}

func TestAggregateMetricNameMismatchKeepsReplicaZero(t *testing.T) {
	a := NewReport("x", "x")
	a.AddMetric(Metric{Name: "alpha", Value: 1})
	b := NewReport("x", "x")
	b.AddMetric(Metric{Name: "beta", Value: 9})
	agg := AggregateReports([]*Report{a, b})
	if agg.Metrics[0].Name != "alpha" || agg.Metrics[0].Value != 1 || agg.Metrics[0].CI95 != 0 {
		t.Errorf("mismatched metrics aggregated: %+v", agg.Metrics[0])
	}
}

func TestAggregateSeriesPointwise(t *testing.T) {
	mk := func(y0, y1 float64) *Report {
		rep := NewReport("x", "x")
		rep.AddSeries(&Series{Name: "s", X: []float64{10, 20}, Y: []float64{y0, y1}})
		return rep
	}
	agg := AggregateReports([]*Report{mk(1, 5), mk(3, 5)})
	s := agg.Series[0]
	if !reflect.DeepEqual(s.X, []float64{10, 20}) {
		t.Errorf("X changed: %v", s.X)
	}
	if !reflect.DeepEqual(s.Y, []float64{2, 5}) {
		t.Errorf("Y mean = %v, want [2 5]", s.Y)
	}
	if len(s.YCI95) != 2 || s.YCI95[0] == 0 || s.YCI95[1] != 0 {
		t.Errorf("YCI95 = %v, want [nonzero 0]", s.YCI95)
	}
}

func TestAggregateNotesKeepReplicaZero(t *testing.T) {
	a := NewReport("x", "x")
	a.AddNote("stopped after 3 iterations")
	b := NewReport("x", "x")
	b.AddNote("stopped after 7 iterations")
	agg := AggregateReports([]*Report{a, b})
	if len(agg.Notes) != 1 || agg.Notes[0] != "stopped after 3 iterations" {
		t.Errorf("notes aggregated: %v", agg.Notes)
	}
}

func TestAggregateFewerThanTwo(t *testing.T) {
	if AggregateReports(nil) != nil {
		t.Error("nil input aggregated")
	}
	if AggregateReports([]*Report{NewReport("x", "x")}) != nil {
		t.Error("single replica aggregated")
	}
	if AggregateReports([]*Report{NewReport("x", "x"), nil}) != nil {
		t.Error("nil replica aggregated")
	}
}
