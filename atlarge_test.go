package atlarge

import (
	"strings"
	"testing"
)

func TestPublicCatalogs(t *testing.T) {
	if len(Principles()) != 8 {
		t.Error("principles != 8")
	}
	if len(Challenges()) != 10 {
		t.Error("challenges != 10")
	}
	if len(ProblemArchetypes()) != 5 {
		t.Error("archetypes != 5")
	}
	if Overview().CentralPremise == "" {
		t.Error("empty central premise")
	}
}

func TestPublicClassify(t *testing.T) {
	if got := Classify(false, false, true); got != DesignAbduction {
		t.Errorf("Classify outcome-only = %v, want design abduction", got)
	}
}

func TestPublicAssessCreativity(t *testing.T) {
	lvl, err := AssessCreativity(0.2, 0.6, false)
	if err != nil {
		t.Fatal(err)
	}
	if lvl.String() == "" {
		t.Error("empty level string")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("nope", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunQuickExperiments(t *testing.T) {
	// The fast artifacts run in unit tests; the heavy sweeps run in the
	// benchmarks.
	for _, id := range []string{"fig7", "fig9", "bdc"} {
		t.Run(id, func(t *testing.T) {
			rep, err := RunExperiment(id, 1)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != id || rep.Title == "" || len(rep.Metrics) == 0 {
				t.Errorf("report = %+v", rep)
			}
		})
	}
}

func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is slow")
	}
	for _, id := range Experiments() {
		t.Run(id, func(t *testing.T) {
			t.Parallel() // experiments are independent; overlap the heavy ones
			rep, err := RunExperiment(id, 42)
			if err != nil {
				t.Fatal(err)
			}
			// Acceptance: every registered experiment emits typed metrics.
			if len(rep.Metrics) == 0 {
				t.Error("no typed metrics")
			}
			// The derived text rendering must carry content (blank lines are
			// legitimate section separators).
			if strings.TrimSpace(strings.Join(rep.Lines(), "\n")) == "" {
				t.Error("empty text rendering")
			}
		})
	}
}

func TestBDCCycleViaPublicAPI(t *testing.T) {
	n := 0
	cy := &Cycle{
		Name: "public",
		Stages: map[Stage]StageFunc{
			StageDesign: func(ctx *Context) error {
				n++
				ctx.AddSolution(Artifact{Name: "x", Satisficing: n >= 2})
				return nil
			},
		},
		Stop: StoppingCriteria{SatisficeAfter: 1, MaxIterations: 10},
	}
	tr, err := cy.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Solutions) != 1 {
		t.Errorf("solutions = %d", len(tr.Solutions))
	}
}
