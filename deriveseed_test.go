package atlarge

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"testing"
	"time"
)

// TestDeriveSeedNoCollisions sweeps the full registered-ID × 64-replica grid
// (the largest replica count the serve API accepts) across several base
// seeds: every (id, replica) pair must map to a distinct seed, because the
// whole determinism story — positional collection, common random numbers,
// checkpoint resume — rests on decorrelated per-task seeds.
func TestDeriveSeedNoCollisions(t *testing.T) {
	const replicas = 64
	ids := DefaultRegistry().IDs()
	if len(ids) == 0 {
		t.Fatal("empty registry")
	}
	for _, base := range []int64{0, 1, 42, -1, 1 << 62} {
		seen := make(map[int64]string, len(ids)*replicas)
		for _, id := range ids {
			for rep := 0; rep < replicas; rep++ {
				s := DeriveSeed(base, id, rep)
				key := fmt.Sprintf("%s/%d", id, rep)
				if prev, dup := seen[s]; dup {
					t.Fatalf("base %d: seed collision: %s and %s both -> %d", base, prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

// TestDeriveSeedReplicaAvalanche: incrementing the replica by one must flip
// close to half the output bits on average (the splitmix64 finalizer's
// avalanche property). A weak mixer here would correlate adjacent replicas
// and quietly narrow every confidence interval the aggregation reports.
func TestDeriveSeedReplicaAvalanche(t *testing.T) {
	ids := DefaultRegistry().IDs()
	totalBits, pairs := 0, 0
	minBits := 64
	for _, id := range ids {
		for rep := 0; rep < 64; rep++ {
			a := uint64(DeriveSeed(42, id, rep))
			b := uint64(DeriveSeed(42, id, rep+1))
			flipped := bits.OnesCount64(a ^ b)
			totalBits += flipped
			pairs++
			if flipped < minBits {
				minBits = flipped
			}
		}
	}
	mean := float64(totalBits) / float64(pairs)
	// A perfect mixer flips 32 bits on average with σ = 4; the grid mean
	// over ~800 pairs should sit well inside 32 ± 2, and no single pair
	// should land in the degenerate tails.
	if mean < 30 || mean > 34 {
		t.Errorf("replica-increment avalanche mean = %.2f flipped bits, want ~32", mean)
	}
	if minBits < 10 {
		t.Errorf("weakest replica pair flips only %d bits", minBits)
	}
}

// TestDeriveSeedBaseAvalanche: the base seed must avalanche too, so two
// sweeps under adjacent base seeds share nothing.
func TestDeriveSeedBaseAvalanche(t *testing.T) {
	totalBits, pairs := 0, 0
	for _, id := range DefaultRegistry().IDs() {
		for base := int64(0); base < 64; base++ {
			a := uint64(DeriveSeed(base, id, 0))
			b := uint64(DeriveSeed(base+1, id, 0))
			totalBits += bits.OnesCount64(a ^ b)
			pairs++
		}
	}
	if mean := float64(totalBits) / float64(pairs); mean < 30 || mean > 34 {
		t.Errorf("base-increment avalanche mean = %.2f flipped bits, want ~32", mean)
	}
}

// TestRunnerCancellation: a hanging experiment under a cancelled context
// must return promptly with the context error — and the worker pool must
// wind down without leaking goroutines.
func TestRunnerCancellation(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Experiment{ID: "quick", Order: 1, Run: func(seed int64) (*Report, error) {
		rep := NewReport("quick", "quick")
		rep.AddMetric(Metric{Name: "x", Value: 1})
		return rep, nil
	}})
	// A "hung" experiment: it never finishes on its own and only returns
	// when the runner's context fires.
	reg.MustRegister(Experiment{ID: "hang", Order: 2, RunContext: func(ctx context.Context, seed int64) (*Report, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}})

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	results, err := (&Runner{Registry: reg, Parallelism: 4}).RunContext(ctx, []string{"quick", "hang"}, 42)
	elapsed := time.Since(start)

	if elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v, want prompt return", elapsed)
	}
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("joined error = %v, want context.DeadlineExceeded", err)
	}
	if results[0].Err != nil || results[0].Report == nil {
		t.Errorf("finished experiment damaged by cancellation: %+v", results[0])
	}
	if !errors.Is(results[1].Err, context.DeadlineExceeded) {
		t.Errorf("hung experiment error = %v, want context.DeadlineExceeded", results[1].Err)
	}

	// No goroutine may outlive the run: poll because worker exit is
	// asynchronous with result delivery.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d before, %d after cancelled run", before, g)
	}
}

// TestRunnerCancellationSkipsUnstarted: with one worker and many tasks, a
// cancel mid-plan must mark every unstarted task with the context error
// without running it.
func TestRunnerCancellationSkipsUnstarted(t *testing.T) {
	reg := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	reg.MustRegister(Experiment{ID: "a", Order: 1, Run: func(seed int64) (*Report, error) {
		ran++
		cancel() // cancel while the first task is the only one started
		rep := NewReport("a", "a")
		rep.AddMetric(Metric{Name: "x", Value: 1})
		return rep, nil
	}})
	reg.MustRegister(Experiment{ID: "b", Order: 2, Run: func(seed int64) (*Report, error) {
		ran++
		return NewReport("b", "b"), nil
	}})

	results, err := (&Runner{Registry: reg, Parallelism: 1}).RunContext(ctx, []string{"a", "b"}, 42)
	if ran != 1 {
		t.Fatalf("ran %d experiments, want 1 (b must be skipped)", ran)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("joined error = %v, want context.Canceled", err)
	}
	// The task that completed before cancellation keeps its report.
	if results[0].Err != nil || results[0].Report == nil {
		t.Errorf("completed-before-cancel result damaged: %+v", results[0])
	}
	if !errors.Is(results[1].Err, context.Canceled) {
		t.Errorf("skipped experiment error = %v, want context.Canceled", results[1].Err)
	}
}
