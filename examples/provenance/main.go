// Provenance: run a Basic Design Cycle, archive its full provenance in the
// Distributed Systems Memex (challenges C6 and C8), and replay the lineage
// of the satisficing design.
package main

import (
	"fmt"
	"io"
	"math/rand"

	"atlarge/internal/core"
	"atlarge/internal/memex"
)

func main() {
	// A design process: iterate until a satisficing design appears.
	r := rand.New(rand.NewSource(3))
	cycle := &core.Cycle{
		Name: "portfolio-scheduler",
		Stages: map[core.Stage]core.StageFunc{
			core.StageDesign: func(ctx *core.Context) error {
				score := r.Float64()
				ctx.AddSolution(core.Artifact{
					Name:        fmt.Sprintf("ps-design-v%d", ctx.Iteration),
					Score:       score,
					Satisficing: score > 0.85,
				})
				return nil
			},
		},
		Stop: core.StoppingCriteria{SatisficeAfter: 1, MaxIterations: 50},
	}
	tr, err := cycle.Run(nil)
	if err != nil {
		panic(err)
	}

	// Archive the process in the Memex: the problem, every iteration's
	// decision, and the final design — plus a rejected alternative, the
	// intangible provenance the paper says is usually lost.
	m := memex.New()
	root, err := m.RecordBDC("portfolio-scheduler", tr)
	if err != nil {
		panic(err)
	}
	if err := m.Add(memex.Entry{
		ID:    "portfolio-scheduler/rejected-ml",
		Kind:  memex.KindDiscussion,
		Title: "alternatives considered before the portfolio approach",
		Rejected: []memex.RejectedAlternative{
			{Title: "single hand-tuned policy", Reason: "no policy wins across all workloads"},
			{Title: "offline-trained predictor", Reason: "workloads drift; model staleness"},
		},
		DerivedFrom: []string{root},
		Tags:        []string{"rationale"},
	}); err != nil {
		panic(err)
	}

	fmt.Printf("archived %d provenance entries (stop: %s, %d failures on the way)\n\n",
		m.Len(), tr.Stop, tr.Failures)

	// Replay the lineage of the satisficing design.
	designs := m.ByTag("satisficing")
	for _, d := range designs {
		fmt.Printf("design %q — lineage:\n", d.Title)
		lineage, err := m.Lineage(d.ID)
		if err != nil {
			panic(err)
		}
		for _, e := range lineage {
			fmt.Printf("  #%d [%s] %s\n", e.Sequence, e.Kind, e.Title)
		}
	}

	// Share the archive as FOAD (JSON lines; a real run would write a file).
	if err := m.Export(io.Discard); err == nil {
		fmt.Println("\narchive exported (FOAD, JSON lines)")
	}
}
