// Experiments: drive the experiment registry and the parallel runner — the
// programmatic equivalent of `atlarge run --all --parallel N --replicas R`.
//
// It walks the catalog with its tags, runs the fast artifacts across a
// worker pool with three replicas each, and prints the aggregated
// (mean±95% CI) rows.
package main

import (
	"fmt"

	"atlarge"
)

func main() {
	reg := atlarge.DefaultRegistry()
	fmt.Printf("catalog: %d experiments\n", reg.Len())
	for _, e := range reg.Experiments() {
		fmt.Printf("  %-10s %v  %s\n", e.ID, e.Tags, e.Title)
	}
	fmt.Println()

	// Run every fast experiment on the pool, three replicas each; derived
	// seeds make this reproducible at any parallelism level.
	var ids []string
	for _, e := range reg.WithTag("fast") {
		ids = append(ids, e.ID)
	}
	runner := &atlarge.Runner{Parallelism: 4, Replicas: 3}
	results, err := runner.Run(ids, 42)
	if err != nil {
		panic(err)
	}
	for _, res := range results {
		fmt.Printf("== %s (seed %d, %d replicas, %v) ==\n",
			res.ID, res.Seed, len(res.Reports), res.Elapsed.Round(1e6))
		rep := res.Aggregate
		if rep == nil {
			rep = res.Report
		}
		for _, line := range rep.Lines() {
			fmt.Println("  " + line)
		}
		fmt.Println()
	}
}
