// Flashcrowd: simulate a BitTorrent swarm hit by a flashcrowd, detect the
// crowd from the arrival trace, and quantify the performance degradation —
// the paper's Table 5 P2P phenomenon chain.
package main

import (
	"fmt"

	"atlarge/internal/p2p"
)

func main() {
	res, err := p2p.RunFlashcrowdStudy(250, 11)
	if err != nil {
		panic(err)
	}
	fmt.Printf("flashcrowds detected: %d\n", res.Detected)
	fmt.Printf("surge amplitude: %.0fx the base arrival rate\n", res.Amplitude)
	if res.HalfLifeS > 0 {
		fmt.Printf("fitted decay half-life: %.0fs\n", res.HalfLifeS)
	}
	fmt.Printf("mean download time before the crowd: %.0fs\n", res.MeanDurBefore)
	fmt.Printf("mean download time for the first crowd wave: %.0fs\n", res.MeanDurDuring)
	fmt.Printf("degradation: %.1fx slower during the flashcrowd\n", res.Degradation)

	// The 2fast remedy: collaborative downloads pool group upload capacity.
	tf, err := p2p.RunTwoFastStudy(30, 4, 11)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n2fast (groups of 4, ADSL peers): %.0fs vs plain BT %.0fs -> %.2fx speedup\n",
		tf.TwoFastMeanS, tf.PlainMeanS, tf.Speedup)
}
