// MMOG scaling: compare static zoning, the Area-of-Simulation technique, and
// Mirror-style offloading for an RTS-style virtual world with clustered
// points of interest (the paper's §6.2 scalability result).
package main

import (
	"fmt"

	"atlarge/internal/mmog"
)

func main() {
	fmt.Println("max supported players per technique (per-server load budget 3000):")
	rows := mmog.RunScalabilityStudy([]int{4, 8, 16, 32}, 3000, 1)
	for _, r := range rows {
		fmt.Println("  " + r.String())
	}

	// The population dynamics that drive provisioning.
	pm := mmog.DefaultPopulationModel()
	dyn := mmog.AnalyzeDynamics(pm.Series(28))
	fmt.Printf("\npopulation dynamics: mean %.0f players, daily peak/trough %.1fx, weekend uplift %.2fx\n",
		dyn.MeanPlayers, dyn.PeakToTrough, dyn.WeeklyVariation)

	hourly := pm.Series(14)
	static := mmog.EvaluateProvisioning(mmog.StaticPeak{}, hourly, 1000)
	pred := mmog.EvaluateProvisioning(mmog.Predictive{}, hourly, 1000)
	fmt.Printf("provisioning over 14 days: static-peak %d server-hours, predictive %d (%.0f%% saved, %.1f%% QoS violations)\n",
		static.ServerHours, pred.ServerHours,
		100*(1-float64(pred.ServerHours)/float64(static.ServerHours)), pred.ViolationPct)
}
