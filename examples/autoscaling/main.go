// Autoscaling: evaluate seven autoscalers on a workflow-heavy scientific
// workload with the ten §6.7 elasticity metrics, rank and grade them, and
// corroborate the fine-grained engine against the coarse one.
package main

import (
	"fmt"
	"sort"

	"atlarge/internal/autoscale"
)

func main() {
	res, err := autoscale.RunExperiment(autoscale.ExperimentConfig{Jobs: 25, Seed: 7})
	if err != nil {
		panic(err)
	}

	var names []string
	for n := range res.Vitro {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return res.AvgRankVitro[names[i]] < res.AvgRankVitro[names[j]]
	})

	fmt.Println("autoscaler ranking (in-vitro, lower average rank is better):")
	for _, n := range names {
		m := res.Vitro[n]
		fmt.Printf("  %-8s avg-rank=%.1f grade=%.2f under=%.3f over=%.3f response=%.0fs cost(per-hour)=$%.2f\n",
			n, res.AvgRankVitro[n], res.GradesVitro[n],
			m.AccuracyUnder, m.AccuracyOver, m.MeanResponse, res.CostByModel["per-hour"][n])
	}

	best := names[0]
	fmt.Printf("\nhead-to-head: %s beats each rival on this many of the 10 metrics:\n", best)
	for rival, wins := range res.HeadToHead[best] {
		fmt.Printf("  vs %-8s %d\n", rival, wins)
	}

	fmt.Printf("\nin-vitro vs in-silico rank correlation: %.2f (corroborating but not identical rankings)\n",
		res.RankCorrelation)
}
