// Quickstart: use the ATLARGE framework public API end to end.
//
// It (1) classifies a design situation with the Dorst reasoning model,
// (2) walks the framework catalogs, (3) runs a Basic Design Cycle on a toy
// design problem with satisficing, and (4) assesses the result's Altshuller
// creativity level.
package main

import (
	"fmt"
	"math/rand"

	"atlarge"
)

func main() {
	// 1. We know the outcome we want (a scalable ecosystem), not the
	// concepts or relationships that produce it: that is design abduction.
	mode := atlarge.Classify(false, false, true)
	fmt.Printf("reasoning mode: %s (design? %v)\n\n", mode, mode.IsDesign())

	// 2. The framework catalogs.
	fmt.Println("core principles of MCS design:")
	for _, p := range atlarge.Principles() {
		fmt.Printf("  P%d [%s] %s\n", p.Index, p.Category, p.Text)
	}
	fmt.Println()

	// 3. A Basic Design Cycle: iterate design + experimental analysis until
	// a satisficing design appears, skipping stages we do not need.
	r := rand.New(rand.NewSource(7))
	quality := 0.0
	cycle := &atlarge.Cycle{
		Name: "scalable-mmog-ecosystem",
		Stages: map[atlarge.Stage]atlarge.StageFunc{
			atlarge.StageFormulateRequirements: func(ctx *atlarge.Context) error {
				ctx.State["NFR"] = "low latency at 1M concurrent players"
				return nil
			},
			atlarge.StageDesign: func(ctx *atlarge.Context) error {
				quality = r.Float64() // each iteration proposes a design
				return nil
			},
			atlarge.StageExperimentalAnalysis: func(ctx *atlarge.Context) error {
				ctx.AddSolution(atlarge.Artifact{
					Name:        fmt.Sprintf("design-v%d", ctx.Iteration),
					Score:       quality,
					Satisficing: quality > 0.75,
				})
				return nil
			},
		},
		Stop: atlarge.StoppingCriteria{SatisficeAfter: 1, MaxIterations: 50},
	}
	tr, err := cycle.Run(nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("BDC %q: stop=%v, iterations=%d, failures=%d\n",
		tr.Name, tr.Stop, len(tr.Iterations), tr.Failures)
	for _, s := range tr.Solutions {
		fmt.Printf("  satisficing design: %s (score %.2f)\n", s.Name, s.Score)
	}

	// 4. How creative is the result?
	level, err := atlarge.AssessCreativity(0.4, 0.3, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("creativity level: %v\n", level)
}
