// Designspace: reproduce the Figure 7 narrative — a design team explores,
// fails, evolves the problem, and then finds many solutions relatively
// easily. Compares all four Figure 6 exploration processes.
package main

import (
	"fmt"
	"sort"

	"atlarge"
)

func main() {
	res, err := atlarge.RunFigure7(6, 2, 0.06, 600, 11)
	if err != nil {
		panic(err)
	}
	fmt.Printf("problem %q, budget %d design attempts\n\n", res.Problem, res.Budget)

	var names []string
	for n := range res.Outcomes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		o := res.Outcomes[n]
		fmt.Printf("%-14s solutions=%-3d failures=%-4d hit-rate=%.3f best-score=%.3f\n",
			n, o.Solutions, o.Failures, o.HitRate, o.BestScore)
	}

	co := res.CoEvolving
	h1 := float64(co.Phase1.Solutions) / float64(co.Phase1.Attempts)
	h2 := 0.0
	if co.Phase2.Attempts > 0 {
		h2 = float64(co.Phase2.Solutions) / float64(co.Phase2.Attempts)
	}
	fmt.Printf("\nco-evolving detail (Figure 7):\n")
	fmt.Printf("  phase 1 (problem 1):      %d attempts, %d solutions (hit rate %.3f)\n",
		co.Phase1.Attempts, co.Phase1.Solutions, h1)
	fmt.Printf("  -> the team evolves the problem (new ecosystem, reframed constraints)\n")
	fmt.Printf("  phase 2 (problem 2):      %d attempts, %d solutions (hit rate %.3f)\n",
		co.Phase2.Attempts, co.Phase2.Solutions, h2)
}
