package atlarge

// Replica aggregation in value space (Results API v2).
//
// AggregateReports folds the typed replica documents of one experiment into
// one aggregated document: every metric and every numeric table cell becomes
// the replica mean with a 95% CI half-width, matched positionally under
// exact label equality. Nothing is re-parsed from rendered text, so digits
// inside labels ("P2", "fig8") can never be mistaken for replica-varying
// data — the failure mode of the regex-skeleton aggregation this replaces.

import "atlarge/internal/stats"

// AggregateReports merges replica reports of one experiment into an
// aggregated document. Structure is matched positionally:
//
//   - a metric aggregates when every replica carries the same name at the
//     same index; otherwise the replica-0 metrics are kept as they are;
//   - a table row aggregates when every replica agrees on its shape and on
//     every label cell exactly; a row with any label mismatch keeps its
//     replica-0 cells untouched;
//   - a series aggregates pointwise when name, X, and length agree;
//   - notes are narrative and always keep the replica-0 text.
//
// Values identical across replicas stay exact with a zero CI. The result is
// independent of execution order, so aggregated output is byte-identical at
// any parallelism level. Fewer than two reports return nil.
func AggregateReports(reports []*Report) *Report {
	if len(reports) < 2 {
		return nil
	}
	for _, rep := range reports {
		if rep == nil {
			return nil
		}
	}
	base := reports[0]
	agg := &Report{
		ID:      base.ID,
		Title:   base.Title,
		Metrics: aggregateMetrics(reports),
		Notes:   append([]string(nil), base.Notes...),
	}
	for ti := range base.Tables {
		agg.Tables = append(agg.Tables, aggregateTable(reports, ti))
	}
	for si := range base.Series {
		agg.Series = append(agg.Series, aggregateSeries(reports, si))
	}
	return agg
}

// aggregateMetrics merges the metric blocks; any name/index mismatch keeps
// the replica-0 metrics verbatim.
func aggregateMetrics(reports []*Report) []Metric {
	base := reports[0]
	if len(base.Metrics) == 0 {
		return nil
	}
	out := append([]Metric(nil), base.Metrics...)
	for _, rep := range reports[1:] {
		if len(rep.Metrics) != len(base.Metrics) {
			return out
		}
		for i, m := range rep.Metrics {
			if m.Name != base.Metrics[i].Name {
				return out
			}
		}
	}
	values := make([]float64, len(reports))
	for i := range out {
		for ri, rep := range reports {
			values[ri] = rep.Metrics[i].Value
		}
		out[i].Value, out[i].CI95 = meanCI(values)
	}
	return out
}

// aggregateTable merges one table position across replicas.
func aggregateTable(reports []*Report, ti int) *Table {
	base := reports[0].Tables[ti]
	out := &Table{
		Name:    base.Name,
		Columns: append([]string(nil), base.Columns...),
		Rows:    make([][]Cell, len(base.Rows)),
	}
	aligned := true
	for _, rep := range reports[1:] {
		if ti >= len(rep.Tables) || len(rep.Tables[ti].Rows) != len(base.Rows) {
			aligned = false
			break
		}
	}
	for ri, row := range base.Rows {
		if aligned {
			out.Rows[ri] = aggregateRow(reports, ti, ri, row)
		} else {
			out.Rows[ri] = append([]Cell(nil), row...)
		}
	}
	return out
}

// aggregateRow merges one row: value cells become mean (+CI when varying);
// the whole row keeps its replica-0 cells on any shape, kind, or label
// mismatch — labels must match exactly, never approximately.
func aggregateRow(reports []*Report, ti, ri int, baseRow []Cell) []Cell {
	for _, rep := range reports[1:] {
		row := rep.Tables[ti].Rows[ri]
		if len(row) != len(baseRow) {
			return append([]Cell(nil), baseRow...)
		}
		for ci, c := range row {
			b := baseRow[ci]
			if c.IsValue() != b.IsValue() {
				return append([]Cell(nil), baseRow...)
			}
			if !b.IsValue() && c.Label != b.Label {
				return append([]Cell(nil), baseRow...)
			}
		}
	}
	out := make([]Cell, len(baseRow))
	values := make([]float64, len(reports))
	for ci, b := range baseRow {
		out[ci] = b
		if !b.IsValue() {
			continue
		}
		for ri2, rep := range reports {
			values[ri2] = *rep.Tables[ti].Rows[ri][ci].Value
		}
		mean, hw := meanCI(values)
		out[ci].Value = &mean
		if hw != 0 {
			out[ci].CI95 = &hw
		}
	}
	return out
}

// aggregateSeries merges one series position pointwise when every replica
// agrees on name, length, and X; otherwise the replica-0 series is kept.
func aggregateSeries(reports []*Report, si int) *Series {
	base := reports[0].Series[si]
	copySeries := func() *Series {
		return &Series{
			Name: base.Name,
			Unit: base.Unit,
			X:    append([]float64(nil), base.X...),
			Y:    append([]float64(nil), base.Y...),
		}
	}
	for _, rep := range reports[1:] {
		if si >= len(rep.Series) {
			return copySeries()
		}
		s := rep.Series[si]
		if s.Name != base.Name || len(s.Y) != len(base.Y) || len(s.X) != len(base.X) {
			return copySeries()
		}
		for i, x := range s.X {
			if x != base.X[i] {
				return copySeries()
			}
		}
	}
	out := copySeries()
	values := make([]float64, len(reports))
	var cis []float64
	varying := false
	for i := range base.Y {
		for ri, rep := range reports {
			values[ri] = rep.Series[si].Y[i]
		}
		var hw float64
		out.Y[i], hw = meanCI(values)
		cis = append(cis, hw)
		if hw != 0 {
			varying = true
		}
	}
	if varying {
		out.YCI95 = cis
	}
	return out
}

// meanCI aggregates replica values: constants stay exact with a zero CI (a
// float mean of identical values could drift by an ulp and would render a
// spurious ±); varying values become mean and 95% CI half-width.
func meanCI(values []float64) (float64, float64) {
	constant := true
	for _, v := range values[1:] {
		if v != values[0] {
			constant = false
			break
		}
	}
	if constant {
		return values[0], 0
	}
	return stats.Mean(values), stats.HalfWidth95(values)
}
