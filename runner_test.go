package atlarge

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// fastIDs is the cheap subset used where full sweeps would dominate test
// wall-clock; the full-catalog parity check lives in TestRunnerParityFull.
var fastIDs = []string{"fig1", "fig3", "fig7", "fig9", "tab5", "tab7", "bdc"}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(42, "fig1", 0) != DeriveSeed(42, "fig1", 0) {
		t.Error("DeriveSeed not deterministic")
	}
	seen := map[int64]string{}
	for _, id := range canonicalIDs {
		for rep := 0; rep < 3; rep++ {
			s := DeriveSeed(42, id, rep)
			key := fmt.Sprintf("%s/%d", id, rep)
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision: %s and %s both -> %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	if DeriveSeed(1, "fig1", 0) == DeriveSeed(2, "fig1", 0) {
		t.Error("base seed does not influence derived seed")
	}
}

// TestRunnerParityFast: parallel output must be byte-identical to sequential
// for a fixed seed.
func TestRunnerParityFast(t *testing.T) {
	seq, err := (&Runner{Parallelism: 1}).Run(fastIDs, 42)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Runner{Parallelism: 8}).Run(fastIDs, 42)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, seq, par)
}

// TestRunnerParityFull runs every experiment except the tagged-slow tab9
// sweep both ways (tab9's own worker-count determinism is covered in
// internal/portfolio); skipped in -short.
func TestRunnerParityFull(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog parity sweep is slow")
	}
	var ids []string
	for _, e := range DefaultRegistry().Experiments() {
		if !e.HasTag("slow") {
			ids = append(ids, e.ID)
		}
	}
	seq, err := (&Runner{Parallelism: 1, Replicas: 2}).Run(ids, 42)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Runner{Parallelism: 4, Replicas: 2}).Run(ids, 42)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, seq, par)
}

func assertSameResults(t *testing.T, seq, par []Result) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].ID != par[i].ID || seq[i].Seed != par[i].Seed {
			t.Errorf("result %d identity differs: %s/%d vs %s/%d",
				i, seq[i].ID, seq[i].Seed, par[i].ID, par[i].Seed)
		}
		if !reflect.DeepEqual(seq[i].Report, par[i].Report) {
			t.Errorf("%s: parallel report differs from sequential", seq[i].ID)
		}
		if !reflect.DeepEqual(seq[i].Aggregate, par[i].Aggregate) {
			t.Errorf("%s: parallel aggregate differs from sequential", seq[i].ID)
		}
	}
}

func TestRunnerReplicas(t *testing.T) {
	res, err := (&Runner{Parallelism: 4, Replicas: 4}).Run([]string{"fig7"}, 42)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if len(r.Reports) != 4 {
		t.Fatalf("replicas = %d, want 4", len(r.Reports))
	}
	if r.Report != r.Reports[0] {
		t.Error("Report must be replica 0")
	}
	// Each Result's Reports window is capacity-capped, so appending to one
	// can never overwrite a neighbouring experiment's replica slots.
	if cap(r.Reports) != len(r.Reports) {
		t.Errorf("Reports cap = %d, want %d (full slice expression)", cap(r.Reports), len(r.Reports))
	}
	if r.Aggregate == nil {
		t.Fatal("no aggregate document")
	}
	if len(r.Aggregate.Metrics) != len(r.Report.Metrics) {
		t.Fatalf("aggregate metrics = %d, want %d", len(r.Aggregate.Metrics), len(r.Report.Metrics))
	}
	// Replicas run distinct seeds, so at least one value varies and carries
	// a CI half-width; the text rendering shows it as mean±hw.
	varied := false
	for _, m := range r.Aggregate.Metrics {
		if m.CI95 != 0 {
			varied = true
		}
	}
	for _, tb := range r.Aggregate.Tables {
		for _, row := range tb.Rows {
			for _, c := range row {
				if c.CI95 != nil {
					varied = true
				}
			}
		}
	}
	if !varied {
		t.Error("aggregate shows no replica variation")
	}
	if joined := strings.Join(r.Aggregate.Lines(), "\n"); !strings.Contains(joined, "±") {
		t.Errorf("aggregate text shows no ±:\n%s", joined)
	}
}

func TestRunnerSingleReplicaNoAggregate(t *testing.T) {
	res, err := (&Runner{}).Run([]string{"fig9"}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Aggregate != nil {
		t.Error("single replica must not aggregate")
	}
	if len(res[0].Reports) != 1 || res[0].Report == nil {
		t.Errorf("unexpected result shape: %+v", res[0])
	}
}

func TestRunnerExperimentFailure(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Experiment{ID: "ok", Order: 1, Run: func(seed int64) (*Report, error) {
		rep := NewReport("ok", "ok")
		rep.AddMetric(Metric{Name: "x", Value: 1})
		return rep, nil
	}})
	reg.MustRegister(Experiment{ID: "boom", Order: 2, Run: func(seed int64) (*Report, error) {
		return nil, fmt.Errorf("kaput")
	}})
	res, err := (&Runner{Registry: reg}).RunAll(1)
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("joined error = %v, want to contain kaput", err)
	}
	if res[0].Err != nil || res[0].Report == nil {
		t.Errorf("healthy experiment damaged: %+v", res[0])
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "boom") {
		t.Errorf("failure not attributed: %+v", res[1])
	}
}

// TestPublicRunAllFastSubset covers the package-level RunAll wrapper through
// a fast registry; the full default catalog sweep already runs once in
// TestRunAllExperiments and again in the benchmark smoke.
func TestPublicRunAllFastSubset(t *testing.T) {
	results, err := (&Runner{}).Run(fastIDs, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(fastIDs) {
		t.Fatalf("results = %d, want %d", len(results), len(fastIDs))
	}
	for _, res := range results {
		if res.Err != nil || res.Report == nil || len(res.Report.Metrics) == 0 {
			t.Errorf("experiment %s unhealthy or metric-less: err=%v", res.ID, res.Err)
		}
	}
}

// BenchmarkRunAllParallel measures the full catalog through the pooled
// runner, the path CI's bench smoke exercises.
func BenchmarkRunAllParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunAll(42); err != nil {
			b.Fatal(err)
		}
	}
}
