package atlarge

import "atlarge/internal/portfolio"

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "tab9",
		Title: "Table 9: portfolio scheduling across workloads and environments",
		Tags:  []string{"table", "portfolio", "slow"},
		Order: 100,
		Run:   runTab9,
	})
}

func runTab9(seed int64) (*Report, error) {
	cfg := portfolio.DefaultTable9Config()
	cfg.Seed = seed
	rows, err := portfolio.RunTable9(cfg)
	if err != nil {
		return nil, err
	}
	rep := NewReport("tab9", "Table 9: portfolio scheduling across workloads and environments")
	t := rep.AddTable("portfolio",
		"study", "workload", "environment", "portfolio_slowdown",
		"best_static", "best_policy", "worst_static", "worst_policy",
		"selection_regret_pct", "finding", "next_question")
	var regretSum, psSum float64
	for _, r := range rows {
		t.AddRow(Label(r.Study), Label(r.Workload), Label(r.Environment),
			Num(r.Portfolio, "%.2f"),
			Num(r.BestStatic, "%.2f"), Label(r.BestPolicy),
			Num(r.WorstStatic, "%.2f"), Label(r.WorstPolicy),
			NumUnit(100*r.SelectionRegret, "%+.1f", "%"),
			Label(r.Finding), Label(r.NewQuestion))
		regretSum += 100 * r.SelectionRegret
		psSum += r.Portfolio
	}
	n := float64(len(rows))
	rep.AddMetric(Metric{Name: "mean_portfolio_slowdown", Value: psSum / n})
	rep.AddMetric(Metric{Name: "mean_selection_regret_pct", Value: regretSum / n, Unit: "%"})
	return rep, nil
}
