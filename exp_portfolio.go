package atlarge

import (
	"fmt"

	"atlarge/internal/portfolio"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "tab9",
		Title: "Table 9: portfolio scheduling across workloads and environments",
		Tags:  []string{"table", "portfolio", "slow"},
		Order: 100,
		Run:   runTab9,
	})
}

func runTab9(seed int64) (*Report, error) {
	cfg := portfolio.DefaultTable9Config()
	cfg.Seed = seed
	rows, err := portfolio.RunTable9(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "tab9", Title: "Table 9: portfolio scheduling across workloads and environments"}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, fmt.Sprintf(
			"%-22s W=%-8s Env=%-5s PS=%.2f best=%.2f(%s) worst=%.2f(%s) regret=%+.1f%% -> %s | next: %s",
			r.Study, r.Workload, r.Environment, r.Portfolio,
			r.BestStatic, r.BestPolicy, r.WorstStatic, r.WorstPolicy,
			100*r.SelectionRegret, r.Finding, r.NewQuestion))
	}
	return rep, nil
}
