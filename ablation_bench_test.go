package atlarge

// Ablation benchmarks probe the design choices behind the headline results:
// the runtime-estimate noise that drives Table 9's big-data regret, the
// active-set size that trades selection cost for quality, the 2fast group
// size, and the server count behind the Area-of-Simulation advantage.

import (
	"math/rand"
	"testing"

	"atlarge/internal/autoscale"
	"atlarge/internal/cluster"
	"atlarge/internal/graphproc"
	"atlarge/internal/mmog"
	"atlarge/internal/p2p"
	"atlarge/internal/portfolio"
	"atlarge/internal/sched"
	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// noisyTrace builds a big-data-shaped trace with a chosen estimate noise and
// compressed submissions for contention.
func noisyTrace(noise float64, jobs int, seed int64) *workload.Trace {
	g := workload.StandardGenerator(workload.ClassBigData)
	g.EstimateNoise = noise
	tr := g.Generate(jobs, rand.New(rand.NewSource(seed)))
	for _, j := range tr.Jobs {
		j.Submit /= 30
	}
	return tr
}

// BenchmarkAblationEstimateNoise measures how runtime-estimate noise
// corrupts portfolio selection — the mechanism behind the POSUM finding.
// Reported per noise level: realized regret vs the best static policy, and
// the fraction of windows where the estimate-driven choice disagrees with an
// oracle that simulates true runtimes.
func BenchmarkAblationEstimateNoise(b *testing.B) {
	envFactory := func() *cluster.Environment { return cluster.StandardEnvironment(cluster.KindCluster) }
	const windowSize = 20
	for i := 0; i < b.N; i++ {
		for _, noise := range []float64{0, 1.0, 2.5, 5.0} {
			tr := noisyTrace(noise, 80, 7)
			s := &portfolio.Scheduler{
				Policies:   sched.DefaultPortfolio(),
				Selector:   portfolio.Exhaustive{},
				WindowSize: windowSize,
				EnvFactory: envFactory,
				Seed:       7,
			}
			res, err := s.Run(tr)
			if err != nil {
				b.Fatal(err)
			}
			base, err := s.StaticBaselines(tr)
			if err != nil {
				b.Fatal(err)
			}
			best := 0.0
			first := true
			for _, v := range base {
				if first || v < best {
					best = v
					first = false
				}
			}
			regret := 0.0
			if best > 0 {
				regret = res.MeanSlowdown/best - 1
			}
			// Oracle disagreement: per window, which policy would win with
			// true runtimes?
			sorted := &workload.Trace{Jobs: append([]*workload.Job(nil), tr.Jobs...)}
			sorted.SortBySubmit()
			disagree := 0
			for w, choice := range res.Choices {
				lo, hi := w*windowSize, (w+1)*windowSize
				if hi > len(sorted.Jobs) {
					hi = len(sorted.Jobs)
				}
				window := &workload.Trace{Jobs: sorted.Jobs[lo:hi]}
				oracle, err := sched.RunAll(envFactory, window, sched.DefaultPortfolio(), 7+int64(w))
				if err != nil {
					b.Fatal(err)
				}
				bestName, bestVal := "", 0.0
				for name, r := range oracle {
					if bestName == "" || r.MeanSlowdown < bestVal {
						bestName, bestVal = name, r.MeanSlowdown
					}
				}
				if choice.Policy != bestName {
					disagree++
				}
			}
			if i == 0 {
				b.Logf("estimate-noise=%.1f portfolio=%.3f best-static=%.3f regret=%+.1f%% oracle-disagreement=%d/%d windows",
					noise, res.MeanSlowdown, best, 100*regret, disagree, len(res.Choices))
			}
		}
	}
}

// BenchmarkAblationActiveSet measures the selection-cost/quality trade-off
// of the active-set selector (the Deng'13 SC design decision).
func BenchmarkAblationActiveSet(b *testing.B) {
	tr := workload.StandardGenerator(workload.ClassScientific).Generate(80, rand.New(rand.NewSource(3)))
	for _, j := range tr.Jobs {
		j.Submit /= sim.Time(20)
	}
	for i := 0; i < b.N; i++ {
		selectors := []portfolio.Selector{
			portfolio.Exhaustive{},
			portfolio.NewActiveSet(4, 5),
			portfolio.NewActiveSet(2, 5),
			portfolio.NewQLearning(0.1, 0.5),
		}
		for _, sel := range selectors {
			s := &portfolio.Scheduler{
				Policies:   sched.DefaultPortfolio(),
				Selector:   sel,
				WindowSize: 20,
				EnvFactory: func() *cluster.Environment { return cluster.StandardEnvironment(cluster.KindCluster) },
				Seed:       3,
			}
			res, err := s.Run(tr)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("selector=%-16s sim-runs=%-3d slowdown=%.3f distinct-picked=%d",
					res.Selector, res.TotalSimRuns, res.MeanSlowdown, res.DistinctPicked)
			}
		}
	}
}

// BenchmarkAblationTwoFastGroupSize sweeps the 2fast group size: more
// helpers add dedicated upload, with diminishing returns once the
// collector's download link saturates.
func BenchmarkAblationTwoFastGroupSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, size := range []int{2, 4, 8} {
			res, err := p2p.RunTwoFastStudy(20, size, 5)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("group-size=%d plain=%.0fs 2fast=%.0fs speedup=%.2fx",
					size, res.PlainMeanS, res.TwoFastMeanS, res.Speedup)
			}
		}
	}
}

// BenchmarkAblationGraphScaling sweeps worker counts for the vertex-parallel
// graph engine: barrier-bound deep traversals (lattice BFS) saturate far
// earlier than full-sweep PageRank — the strong-scaling story behind the
// elastic-graph-processing research line.
func BenchmarkAblationGraphScaling(b *testing.B) {
	lattice, err := graphproc.Generate(graphproc.DatasetLattice, 2500, 1, false)
	if err != nil {
		b.Fatal(err)
	}
	rmat, err := graphproc.Generate(graphproc.DatasetRMAT, 2500, 1, false)
	if err != nil {
		b.Fatal(err)
	}
	_, latProf, err := graphproc.BFS(lattice, 0)
	if err != nil {
		b.Fatal(err)
	}
	_, prProf, err := graphproc.PageRank(rmat, 0.85, 20)
	if err != nil {
		b.Fatal(err)
	}
	base := graphproc.Engine{Name: "vertex-par", PerEdge: 1e-4, PerActive: 2e-4, PerStep: 0.8, PerCompute: 1e-4, Workers: 8}
	counts := []int{1, 2, 4, 8, 16, 32, 64}
	for i := 0; i < b.N; i++ {
		latCurve := graphproc.ScalingCurve(base, latProf, lattice.M(), counts)
		prCurve := graphproc.ScalingCurve(base, prProf, rmat.M(), counts)
		if i == 0 {
			for j, c := range counts {
				b.Logf("workers=%-3d lattice-BFS speedup=%.2f  rmat-PageRank speedup=%.2f",
					c, latCurve[j].Speedup, prCurve[j].Speedup)
			}
			b.Logf("saturation: lattice-BFS at %d workers, rmat-PageRank at %d workers",
				graphproc.SaturationWorkers(latCurve, 0.05), graphproc.SaturationWorkers(prCurve, 0.05))
		}
	}
}

// BenchmarkAblationBootFailures sweeps VM boot-failure rates in the
// autoscaling engine: reactive provisioning recovers, at growing response
// cost.
func BenchmarkAblationBootFailures(b *testing.B) {
	tr := workload.StandardGenerator(workload.ClassScientific).Generate(12, rand.New(rand.NewSource(4)))
	for i := 0; i < b.N; i++ {
		for _, rate := range []float64{0, 0.25, 0.5} {
			cfg := autoscale.DefaultVitroConfig()
			cfg.Seed = 4
			cfg.BootFailureRate = rate
			st, err := autoscale.Run(cfg, autoscale.React{}, tr)
			if err != nil {
				b.Fatal(err)
			}
			m := autoscale.ComputeMetrics(st)
			if i == 0 {
				b.Logf("boot-failure-rate=%.2f jobs=%d mean-response=%.0fs accuracy-under=%.4f",
					rate, st.JobsDone, m.MeanResponse, m.AccuracyUnder)
			}
		}
	}
}

// BenchmarkAblationAoSServers sweeps server counts for the AoS-vs-zones
// advantage: static zoning cannot use extra servers when load concentrates
// in one hot zone, AoS can.
func BenchmarkAblationAoSServers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, servers := range []int{4, 16, 64} {
			zones := mmog.MaxSupportedPlayers(mmog.ZonePartitioner{}, servers, 3000, 1)
			aos := mmog.MaxSupportedPlayers(mmog.AoSPartitioner{}, servers, 3000, 1)
			gain := 0.0
			if zones > 0 {
				gain = float64(aos) / float64(zones)
			}
			if i == 0 {
				b.Logf("servers=%-3d zones=%-6d aos=%-6d gain=%.1fx", servers, zones, aos, gain)
			}
		}
	}
}
