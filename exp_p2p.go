package atlarge

import (
	"fmt"

	"atlarge/internal/p2p"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "tab5",
		Title: "Table 5: co-evolving problem-solutions in P2P",
		Tags:  []string{"table", "p2p", "fast"},
		Order: 60,
		Run:   runTab5,
	})
}

func runTab5(seed int64) (*Report, error) {
	rows, err := p2p.RunTable5(seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "tab5", Title: "Table 5: co-evolving problem-solutions in P2P"}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-18s %-22s %s", r.Study, r.Feature, r.Finding))
	}
	return rep, nil
}
