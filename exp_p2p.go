package atlarge

import "atlarge/internal/p2p"

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "tab5",
		Title: "Table 5: co-evolving problem-solutions in P2P",
		Tags:  []string{"table", "p2p", "fast"},
		Order: 60,
		Run:   runTab5,
	})
}

func runTab5(seed int64) (*Report, error) {
	rows, err := p2p.RunTable5(seed)
	if err != nil {
		return nil, err
	}
	rep := NewReport("tab5", "Table 5: co-evolving problem-solutions in P2P")
	t := rep.AddTable("studies", "study", "feature", "finding")
	for _, r := range rows {
		t.AddRow(Label(r.Study), Label(r.Feature), Label(r.Finding))
	}
	rep.AddMetric(Metric{Name: "studies", Value: float64(len(rows)), HigherBetter: true})
	return rep, nil
}
