package atlarge

// Results API v2: the typed experiment result document.
//
// A Report is structured data — named Metric samples, Tables of label and
// value cells, optional Series — and every rendering (text, JSON, CSV) is
// derived from that structure. Replica aggregation (see aggregate.go)
// operates in value space on the same document, so labels are never
// re-parsed and digits embedded in labels ("P2", "fig8") are never mistaken
// for data.

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"

	"atlarge/internal/stats"
)

// Metric is one named scalar sample of a report.
type Metric struct {
	// Name is the stable metric key ("mean_slowdown", "distinct_winners").
	Name string `json:"name"`
	// Value is the sample. In an aggregated report it is the replica mean.
	Value float64 `json:"value"`
	// Unit is the value's unit ("s", "%", "$/h"); empty for counts/ratios.
	Unit string `json:"unit,omitempty"`
	// HigherBetter is the comparison direction: true when larger values win;
	// false (the default) means lower is better.
	HigherBetter bool `json:"higher_better,omitempty"`
	// CI95 is the half-width of the 95% confidence interval across replicas;
	// zero in a single-run report. Filled by AggregateReports.
	CI95 float64 `json:"ci95,omitempty"`
}

// Def returns the metric's catalog entry.
func (m Metric) Def() MetricDef {
	return MetricDef{Name: m.Name, HigherBetter: m.HigherBetter, Unit: m.Unit}
}

// MetricDef is one entry of a metric catalog: a name with its comparison
// direction. The scenario engine's domain catalogs use the same type, so
// experiment and scenario metrics share one vocabulary of directions.
type MetricDef struct {
	// Name is the metric key in reports.
	Name string `json:"name"`
	// HigherBetter is the comparison direction for highlighting; false
	// (the default) means lower is better.
	HigherBetter bool `json:"higher_better,omitempty"`
	// Unit is the value's unit, when the catalog declares one.
	Unit string `json:"unit,omitempty"`
}

// Sample is the value-space aggregate of one measurement across replicas:
// the per-replica values in replica order plus their mean and 95% CI
// half-width (normal approximation).
type Sample struct {
	Mean   float64   `json:"mean"`
	CI95   float64   `json:"ci95"`
	Values []float64 `json:"values"`
}

// NewSample aggregates per-replica values.
func NewSample(values []float64) Sample {
	return Sample{Mean: stats.Mean(values), CI95: stats.HalfWidth95(values), Values: values}
}

// Cell is one table cell: a label (Value nil) or a typed numeric value.
type Cell struct {
	// Label is the cell text for label cells; empty for value cells.
	Label string `json:"label,omitempty"`
	// Value is set for numeric cells (a pointer, so 0 survives omitempty and
	// label cells carry no value at all).
	Value *float64 `json:"value,omitempty"`
	// Format is the printf verb rendering Value in text output ("%.2f");
	// empty means the shortest exact form.
	Format string `json:"format,omitempty"`
	// Unit suffixes the rendered value ("s", "%").
	Unit string `json:"unit,omitempty"`
	// CI95 is the 95% CI half-width of Value across replicas; set only on
	// aggregated cells whose value varied.
	CI95 *float64 `json:"ci95,omitempty"`
}

// IsValue reports whether the cell carries a numeric value.
func (c Cell) IsValue() bool { return c.Value != nil }

// Label returns a label cell.
func Label(text string) Cell { return Cell{Label: text} }

// Labelf returns a label cell with printf formatting.
func Labelf(format string, args ...any) Cell {
	return Cell{Label: fmt.Sprintf(format, args...)}
}

// Num returns a value cell rendered with the printf verb format (empty means
// the shortest exact form).
func Num(v float64, format string) Cell { return Cell{Value: &v, Format: format} }

// NumUnit returns a value cell with a unit suffix.
func NumUnit(v float64, format, unit string) Cell {
	return Cell{Value: &v, Format: format, Unit: unit}
}

// Count returns a value cell holding an integer count.
func Count(n int) Cell { return Num(float64(n), "%.0f") }

// Table is one structured table of a report: optional column headers plus
// rows of cells.
type Table struct {
	// Name identifies the table within the report ("keywords", "policies").
	Name string `json:"name,omitempty"`
	// Columns are the header names, index-aligned with each row's cells.
	Columns []string `json:"columns,omitempty"`
	// Rows hold the cells, row-major.
	Rows [][]Cell `json:"rows"`
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...Cell) { t.Rows = append(t.Rows, cells) }

// Series is one ordered numeric series (a figure line).
type Series struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
	// X holds the sample positions; empty means indexed 0..len(Y)-1.
	X []float64 `json:"x,omitempty"`
	Y []float64 `json:"y"`
	// YCI95 holds per-point 95% CI half-widths; set only on aggregated
	// series whose points varied across replicas.
	YCI95 []float64 `json:"y_ci95,omitempty"`
}

// Report is the typed outcome of one reproduced paper artifact.
//
// Rows of free-form text are gone (Results API v2); experiments emit named
// metrics, structured tables, and series, and the text rendering in Lines is
// derived from them.
type Report struct {
	ID      string    `json:"id"`
	Title   string    `json:"title"`
	Metrics []Metric  `json:"metrics,omitempty"`
	Tables  []*Table  `json:"tables,omitempty"`
	Series  []*Series `json:"series,omitempty"`
	// Notes are free-form findings sentences. They are never aggregated:
	// replica-varying numbers belong in Metrics.
	Notes []string `json:"notes,omitempty"`
}

// NewReport returns an empty report document.
func NewReport(id, title string) *Report { return &Report{ID: id, Title: title} }

// AddMetric appends one metric sample.
func (r *Report) AddMetric(m Metric) { r.Metrics = append(r.Metrics, m) }

// Metric returns the first metric with the name.
func (r *Report) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// MetricDefs returns the catalog entries of the report's metrics, in
// emission order.
func (r *Report) MetricDefs() []MetricDef {
	out := make([]MetricDef, len(r.Metrics))
	for i, m := range r.Metrics {
		out[i] = m.Def()
	}
	return out
}

// AddTable appends an empty table and returns it for row building.
func (r *Report) AddTable(name string, columns ...string) *Table {
	t := &Table{Name: name, Columns: columns}
	r.Tables = append(r.Tables, t)
	return t
}

// AddSeries appends one series.
func (r *Report) AddSeries(s *Series) { r.Series = append(r.Series, s) }

// AddNote appends one findings sentence.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// formatFloat renders a value in its shortest exact form.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// renderValue renders a numeric value under a cell/metric format verb.
func renderValue(v float64, format string) string {
	if format == "" {
		return formatFloat(v)
	}
	return fmt.Sprintf(format, v)
}

// renderCell renders one cell for text output, including the ±CI suffix of
// aggregated cells.
func renderCell(c Cell) string {
	if !c.IsValue() {
		return c.Label
	}
	s := renderValue(*c.Value, c.Format)
	if c.CI95 != nil && *c.CI95 != 0 {
		s += fmt.Sprintf("±%.2g", *c.CI95)
	}
	return s + c.Unit
}

// renderMetricValue renders a metric's value with its CI and unit.
func renderMetricValue(m Metric) string {
	s := fmt.Sprintf("%.6g", m.Value)
	if m.CI95 != 0 {
		s += fmt.Sprintf("±%.2g", m.CI95)
	}
	if m.Unit != "" {
		s += " " + m.Unit
	}
	return s
}

// Lines renders the document as human-readable text rows: the metric block,
// each table (aligned, with headers), each series, then the notes. The text
// is derived from the typed structure, never the other way around.
func (r *Report) Lines() []string {
	var lines []string
	if len(r.Metrics) > 0 {
		table := make([][]string, 0, len(r.Metrics))
		for _, m := range r.Metrics {
			dir := ""
			if m.HigherBetter {
				dir = "(higher is better)"
			}
			table = append(table, []string{m.Name, "=", renderMetricValue(m), dir})
		}
		lines = append(lines, AlignRows(table)...)
	}
	for _, t := range r.Tables {
		if len(lines) > 0 {
			lines = append(lines, "")
		}
		if t.Name != "" {
			lines = append(lines, "["+t.Name+"]")
		}
		table := make([][]string, 0, len(t.Rows)+1)
		if len(t.Columns) > 0 {
			table = append(table, t.Columns)
		}
		for _, row := range t.Rows {
			cells := make([]string, len(row))
			for i, c := range row {
				cells[i] = renderCell(c)
			}
			table = append(table, cells)
		}
		lines = append(lines, AlignRows(table)...)
	}
	for _, s := range r.Series {
		var b strings.Builder
		b.WriteString(s.Name + ":")
		for i, y := range s.Y {
			x := float64(i)
			if i < len(s.X) {
				x = s.X[i]
			}
			b.WriteString(" " + formatFloat(x) + ":" + formatFloat(y))
			if i < len(s.YCI95) && s.YCI95[i] != 0 {
				b.WriteString(fmt.Sprintf("±%.2g", s.YCI95[i]))
			}
		}
		lines = append(lines, b.String())
	}
	lines = append(lines, r.Notes...)
	return lines
}

// AlignRows renders rows of columns with space-padded alignment; widths
// count runes so "±" does not skew the padding. Empty trailing columns
// disappear. The scenario report tables align through the same helper.
func AlignRows(table [][]string) []string {
	var widths []int
	for _, row := range table {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if n := utf8.RuneCountInString(cell); n > widths[i] {
				widths[i] = n
			}
		}
	}
	out := make([]string, 0, len(table))
	for _, row := range table {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(cell)))
			}
		}
		out = append(out, strings.TrimRight(b.String(), " "))
	}
	return out
}

// WriteText writes the rendered lines, one per row, with the given indent
// (separator lines stay truly empty).
func (r *Report) WriteText(w io.Writer, indent string) error {
	for _, line := range r.Lines() {
		if line != "" {
			line = indent + line
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the document as indented JSON. Marshalling uses only
// slices (no maps), so the bytes are deterministic for a given document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits the document in long form, one record per metric, table
// cell, series point, and note:
//
//	section,name,row,col,label,value,unit,ci95
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	write := func(record ...string) {
		// csv.Writer latches its first error; checked once at the end.
		_ = cw.Write(record)
	}
	write("section", "name", "row", "col", "label", "value", "unit", "ci95")
	for _, m := range r.Metrics {
		write("metric", m.Name, "", "", "", formatFloat(m.Value), m.Unit, csvCI(m.CI95))
	}
	for _, t := range r.Tables {
		for ri, row := range t.Rows {
			for ci, c := range row {
				col := strconv.Itoa(ci)
				if ci < len(t.Columns) {
					col = t.Columns[ci]
				}
				if c.IsValue() {
					ci95 := ""
					if c.CI95 != nil {
						ci95 = csvCI(*c.CI95)
					}
					write("table", t.Name, strconv.Itoa(ri), col, "", formatFloat(*c.Value), c.Unit, ci95)
				} else {
					write("table", t.Name, strconv.Itoa(ri), col, c.Label, "", "", "")
				}
			}
		}
	}
	for _, s := range r.Series {
		for i, y := range s.Y {
			x := float64(i)
			if i < len(s.X) {
				x = s.X[i]
			}
			ci95 := ""
			if i < len(s.YCI95) {
				ci95 = csvCI(s.YCI95[i])
			}
			write("series", s.Name, formatFloat(x), "", "", formatFloat(y), s.Unit, ci95)
		}
	}
	for i, note := range r.Notes {
		write("note", "", strconv.Itoa(i), "", note, "", "", "")
	}
	cw.Flush()
	return cw.Error()
}

// csvCI renders a CI half-width for CSV, empty when zero.
func csvCI(v float64) string {
	if v == 0 {
		return ""
	}
	return formatFloat(v)
}
