package atlarge

import (
	"sort"

	"atlarge/internal/autoscale"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "autoscale",
		Title: "§6.7: autoscaling experiments (in-vitro + in-silico)",
		Tags:  []string{"section", "autoscale", "fast"},
		Order: 110,
		Run:   runAutoscale,
	})
}

func runAutoscale(seed int64) (*Report, error) {
	cfg := autoscale.DefaultExperimentConfig()
	cfg.Seed = seed
	res, err := autoscale.RunExperiment(cfg)
	if err != nil {
		return nil, err
	}
	rep := NewReport("autoscale", "§6.7: autoscaling experiments (in-vitro + in-silico)")
	var names []string
	for n := range res.Vitro {
		names = append(names, n)
	}
	// Tie-break equal ranks by name: names starts in map order, so an
	// unstable sort on rank alone would order tied policies randomly.
	sort.Slice(names, func(i, j int) bool {
		ri, rj := res.AvgRankVitro[names[i]], res.AvgRankVitro[names[j]]
		if ri != rj {
			return ri < rj
		}
		return names[i] < names[j]
	})
	t := rep.AddTable("policies",
		"policy", "avg_rank", "grade", "acc_under", "acc_over",
		"tshare_under", "tshare_over", "response", "slowdown", "cost_per_h", "deadline_miss")
	for _, n := range names {
		m := res.Vitro[n]
		t.AddRow(Label(n),
			Num(res.AvgRankVitro[n], "%.1f"), Num(res.GradesVitro[n], "%.2f"),
			Num(m.AccuracyUnder, "%.3f"), Num(m.AccuracyOver, "%.3f"),
			Num(m.TimeshareUnder, "%.2f"), Num(m.TimeshareOver, "%.2f"),
			NumUnit(m.MeanResponse, "%.0f", "s"), Num(m.MeanSlowdown, "%.2f"),
			NumUnit(res.CostByModel["per-hour"][n], "%.2f", "$"),
			NumUnit(m.DeadlineMissPct, "%.0f", "%"))
	}
	rep.AddMetric(Metric{
		Name: "rank_correlation_spearman", Value: res.RankCorrelation, HigherBetter: true})
	rep.AddNote("in-vitro vs in-silico rankings corroborate but are not identical")
	return rep, nil
}
