package atlarge

import (
	"fmt"
	"sort"

	"atlarge/internal/autoscale"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "autoscale",
		Title: "§6.7: autoscaling experiments (in-vitro + in-silico)",
		Tags:  []string{"section", "autoscale", "fast"},
		Order: 110,
		Run:   runAutoscale,
	})
}

func runAutoscale(seed int64) (*Report, error) {
	cfg := autoscale.DefaultExperimentConfig()
	cfg.Seed = seed
	res, err := autoscale.RunExperiment(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "autoscale", Title: "§6.7: autoscaling experiments (in-vitro + in-silico)"}
	var names []string
	for n := range res.Vitro {
		names = append(names, n)
	}
	// Tie-break equal ranks by name: names starts in map order, so an
	// unstable sort on rank alone would order tied policies randomly.
	sort.Slice(names, func(i, j int) bool {
		ri, rj := res.AvgRankVitro[names[i]], res.AvgRankVitro[names[j]]
		if ri != rj {
			return ri < rj
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		m := res.Vitro[n]
		rep.Rows = append(rep.Rows, fmt.Sprintf(
			"%-8s rank=%.1f grade=%.2f accU=%.3f accO=%.3f tU=%.2f tO=%.2f resp=%.0fs slowdown=%.2f cost/h=$%.2f miss=%.0f%%",
			n, res.AvgRankVitro[n], res.GradesVitro[n],
			m.AccuracyUnder, m.AccuracyOver, m.TimeshareUnder, m.TimeshareOver,
			m.MeanResponse, m.MeanSlowdown, res.CostByModel["per-hour"][n], m.DeadlineMissPct))
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"in-vitro vs in-silico rank correlation (Spearman) = %.2f (corroborating but not identical)",
		res.RankCorrelation))
	return rep, nil
}
