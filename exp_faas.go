package atlarge

import "atlarge/internal/faas"

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "tab7",
		Title: "Table 7: co-evolving problem-solutions in serverless",
		Tags:  []string{"table", "faas", "fast"},
		Order: 80,
		Run:   runTab7,
	})
}

func runTab7(seed int64) (*Report, error) {
	rows, err := faas.RunTable7(seed)
	if err != nil {
		return nil, err
	}
	rep := NewReport("tab7", "Table 7: co-evolving problem-solutions in serverless")
	t := rep.AddTable("studies", "study", "feature", "finding")
	for _, r := range rows {
		t.AddRow(Label(r.Study), Label(r.Feature), Label(r.Finding))
	}
	rep.AddMetric(Metric{Name: "studies", Value: float64(len(rows)), HigherBetter: true})
	return rep, nil
}
