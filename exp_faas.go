package atlarge

import (
	"fmt"

	"atlarge/internal/faas"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "tab7",
		Title: "Table 7: co-evolving problem-solutions in serverless",
		Tags:  []string{"table", "faas", "fast"},
		Order: 80,
		Run:   runTab7,
	})
}

func runTab7(seed int64) (*Report, error) {
	rows, err := faas.RunTable7(seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "tab7", Title: "Table 7: co-evolving problem-solutions in serverless"}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-22s %-26s %s", r.Study, r.Feature, r.Finding))
	}
	return rep, nil
}
