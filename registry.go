package atlarge

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"
)

// RunFunc executes one experiment for a seed and returns its report.
type RunFunc func(seed int64) (*Report, error)

// Experiment is a first-class descriptor of one reproducible paper artifact.
// Artifacts register themselves (see the exp_*.go files) instead of being
// wired through a central switch, so new experiments plug in without touching
// the harness.
type Experiment struct {
	// ID is the stable handle used by the CLI and the API ("fig1", "tab9").
	ID string
	// Title is the human-readable artifact description.
	Title string
	// Tags classify the experiment ("figure", "table", "simulation", ...).
	Tags []string
	// Order positions the experiment in the canonical catalog listing;
	// ties resolve by ID.
	Order int
	// Run produces the report for one seed.
	Run RunFunc
	// RunContext, when non-nil, is used instead of Run and receives the
	// runner's context, so long-running experiments can honour cancellation
	// (Runner.RunContext) and deadlines mid-simulation. Experiments that
	// leave it nil run to completion once started; cancellation then only
	// skips tasks the pool has not yet claimed.
	RunContext func(ctx context.Context, seed int64) (*Report, error)
}

// run executes the experiment through its context-aware entry point when it
// has one, and through the plain RunFunc otherwise.
func (e Experiment) run(ctx context.Context, seed int64) (*Report, error) {
	if e.RunContext != nil {
		return e.RunContext(ctx, seed)
	}
	return e.Run(seed)
}

// HasTag reports whether the experiment carries the tag.
func (e Experiment) HasTag(tag string) bool {
	return slices.Contains(e.Tags, tag)
}

// Registry is a concurrency-safe catalog of experiments.
type Registry struct {
	mu   sync.RWMutex
	byID map[string]Experiment
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]Experiment)}
}

// Register adds an experiment; it rejects empty IDs, nil run functions, and
// duplicate IDs.
func (r *Registry) Register(e Experiment) error {
	if e.ID == "" {
		return fmt.Errorf("atlarge: register: empty experiment ID")
	}
	if e.Run == nil && e.RunContext == nil {
		return fmt.Errorf("atlarge: register %q: nil run function", e.ID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[e.ID]; dup {
		return fmt.Errorf("atlarge: register %q: duplicate experiment ID", e.ID)
	}
	r.byID[e.ID] = e
	return nil
}

// MustRegister is Register, panicking on error; for init-time registration.
func (r *Registry) MustRegister(e Experiment) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Get returns the experiment for id. The error for an unknown ID is the
// canonical one, listing the known catalog.
func (r *Registry) Get(id string) (Experiment, error) {
	r.mu.RLock()
	e, ok := r.byID[id]
	r.mu.RUnlock()
	if !ok {
		return Experiment{}, fmt.Errorf("atlarge: unknown experiment %q (known: %s)", id, strings.Join(r.IDs(), ", "))
	}
	return e, nil
}

// IDs returns every registered ID in canonical catalog order.
func (r *Registry) IDs() []string {
	exps := r.Experiments()
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.ID
	}
	return out
}

// Experiments returns every registered experiment in canonical catalog order.
func (r *Registry) Experiments() []Experiment {
	r.mu.RLock()
	out := make([]Experiment, 0, len(r.byID))
	for _, e := range r.byID {
		out = append(out, e)
	}
	r.mu.RUnlock()
	slices.SortFunc(out, func(a, b Experiment) int {
		if c := cmp.Compare(a.Order, b.Order); c != 0 {
			return c
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return out
}

// WithTag returns the experiments carrying the tag, in catalog order.
func (r *Registry) WithTag(tag string) []Experiment {
	var out []Experiment
	for _, e := range r.Experiments() {
		if e.HasTag(tag) {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of registered experiments.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// defaultRegistry holds the built-in artifact catalog; the exp_*.go files
// fill it from their init functions.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the registry holding every built-in paper artifact.
func DefaultRegistry() *Registry { return defaultRegistry }
