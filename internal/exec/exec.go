// Package exec is the unified streaming execution engine of the atlarge
// harness: a deterministic work-plan executor shared by the experiment
// runner, the scenario engine, and the serve API.
//
// A Plan is an ordered list of Tasks. Stream executes the plan on a bounded
// worker pool and emits one Event per task over a channel as tasks finish
// (completion order), so callers can render live progress, aggregate
// incrementally with memory bounded by what they retain — the executor holds
// no results — and cancel mid-plan through the context. Events carry the
// task's position in the plan, so positional collection reproduces the
// sequential result layout byte-identically at any parallelism level.
//
// A Cache plugs checkpoint/resume underneath any plan: completed task
// results are stored as they finish and served back (Event.Cached) on a
// rerun, without the task executing again.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one unit of work in a Plan: a stable identifier (also the
// checkpoint key) and the function that produces its result. Run receives
// the plan's context so cooperative tasks can honour cancellation.
type Task[R any] struct {
	ID  string
	Run func(ctx context.Context) (R, error)
}

// Plan is an ordered set of tasks; the order defines Event.Index and thereby
// the positional result layout consumers rebuild.
type Plan[R any] struct {
	Tasks []Task[R]
}

// Add appends one task to the plan.
func (p *Plan[R]) Add(id string, run func(ctx context.Context) (R, error)) {
	p.Tasks = append(p.Tasks, Task[R]{ID: id, Run: run})
}

// Len returns the number of tasks in the plan.
func (p *Plan[R]) Len() int { return len(p.Tasks) }

// Event is one task completion streamed out of the executor.
type Event[R any] struct {
	// Index is the task's position in the plan.
	Index int
	// ID is the task's stable identifier.
	ID string
	// Result is the task's output; the zero value when Err is set.
	Result R
	// Err is the task's failure, or the plan context's error for tasks
	// skipped after cancellation.
	Err error
	// Skipped marks a task that never ran because the context was done.
	Skipped bool
	// Cached marks a result served from the plan's Cache without running.
	Cached bool
	// Elapsed is the task's wall-clock run time; zero for skipped and
	// cached tasks.
	Elapsed time.Duration
	// Span is the task's execution timeline, recorded only when
	// Options.Spans is set; nil otherwise and for skipped tasks.
	Span *TaskSpan
}

// TaskSpan is the wall-clock timeline of one task relative to the plan's
// start (the moment Stream was called). Wait is the queue time before the
// task was picked up; Start..End brackets the cache lookup plus run. All
// offsets come from one monotonic epoch, so spans from different workers
// order consistently on a shared timeline.
type TaskSpan struct {
	// Worker is the index (0-based) of the pool worker that settled the task.
	Worker int
	// Cached marks a span that was served from the cache instead of running.
	Cached bool
	// Wait is the offset at which the worker claimed the task.
	Wait time.Duration
	// Start is the offset at which execution (or the cache hit) began.
	Start time.Duration
	// End is the offset at which the task settled.
	End time.Duration
}

// Cache persists completed task results across plan executions (see the
// scenario engine's checkpoint directories). Load returns a previously
// stored result for a task ID; Store records one. Implementations must be
// safe for concurrent use; Store failures are the implementation's to
// surface (the executor treats storage as best-effort durability).
type Cache[R any] interface {
	Load(id string) (R, bool)
	Store(id string, r R)
}

// Stats aggregates live queue-depth counters, optionally shared across many
// concurrent plan executions: the serve layer hands every plan the same
// Stats so admission control and /metrics observe the total pending-task
// backlog of the process, not one plan's. All methods are safe for
// concurrent use; the zero value is ready.
type Stats struct {
	pending   atomic.Int64
	running   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
}

// Pending is the number of accepted tasks not yet settled — queued or
// running. This is the backpressure signal: a pool that cannot drain keeps
// Pending high.
func (s *Stats) Pending() int64 { return s.pending.Load() }

// Running is the number of tasks currently executing (not queued, cached,
// or skipped).
func (s *Stats) Running() int64 { return s.running.Load() }

// Completed counts tasks that produced a result — live runs and cache hits —
// monotonically across all plans sharing the Stats.
func (s *Stats) Completed() int64 { return s.completed.Load() }

// Failed counts tasks that returned an error (skips under a cancelled
// context are neither completed nor failed).
func (s *Stats) Failed() int64 { return s.failed.Load() }

// Enqueue adds n tasks to the pending backlog. Stream calls it for the whole
// plan up front; alternative executors behind a StreamFunc must do the same
// so admission control sees their backlog too.
func (s *Stats) Enqueue(n int) { s.pending.Add(int64(n)) }

// Settle accounts one task leaving the backlog: a skip is neither completed
// nor failed, a failure increments Failed, everything else Completed.
func (s *Stats) Settle(skipped, failed bool) {
	s.pending.Add(-1)
	switch {
	case skipped:
	case failed:
		s.failed.Add(1)
	default:
		s.completed.Add(1)
	}
}

// Options tunes one plan execution.
type Options[R any] struct {
	// Workers bounds the pool; <= 0 means GOMAXPROCS (clamped to the plan
	// size).
	Workers int
	// Cache, when non-nil, is consulted before each task runs and updated
	// after each success.
	Cache Cache[R]
	// Stats, when non-nil, receives live queue counters: the whole plan is
	// added to Pending up front, and every event settles one task.
	Stats *Stats
	// Spans, when set, records a TaskSpan on every non-skipped event. Off by
	// default so the plain path makes no clock reads beyond Elapsed.
	Spans bool
}

// StreamFunc is the execution seam: anything with Stream's shape — exactly
// one Event per plan task, positionally indexed, channel closed when all are
// accounted for — can stand in for the in-process pool. The distributed
// dispatcher (internal/dist) implements this to fan a plan out across worker
// processes; because collection is positional, substituting the executor
// cannot change output bytes.
type StreamFunc[R any] func(ctx context.Context, p *Plan[R], opt Options[R]) <-chan Event[R]

// Stream executes the plan and returns the event channel. Exactly one Event
// is emitted per task — results, failures, cache hits, and (after
// cancellation) skips — and the channel closes once all tasks are accounted
// for. Tasks are claimed in plan order, so Workers == 1 executes the plan
// sequentially front to back.
//
// Cancellation is cooperative: when ctx is done, unclaimed tasks are skipped
// with ctx's error and in-flight tasks are expected to return (their Run
// receives ctx). The caller must drain the channel until it closes; after
// cancelling, draining is cheap because remaining tasks skip.
func Stream[R any](ctx context.Context, p *Plan[R], opt Options[R]) <-chan Event[R] {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.Tasks) {
		workers = len(p.Tasks)
	}
	out := make(chan Event[R])
	if len(p.Tasks) == 0 {
		close(out)
		return out
	}
	if opt.Stats != nil {
		opt.Stats.Enqueue(len(p.Tasks))
	}
	var epoch time.Time
	if opt.Spans {
		epoch = time.Now()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(p.Tasks) {
					return
				}
				ev := runTask(ctx, &p.Tasks[i], i, worker, epoch, opt.Cache, opt.Stats)
				if opt.Stats != nil {
					opt.Stats.Settle(ev.Skipped, ev.Err != nil && !ev.Skipped)
				}
				out <- ev
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// runTask produces the event for one task: a skip under a done context, a
// cache hit, or a live run (stored back into the cache on success). A zero
// epoch means span recording is off.
func runTask[R any](ctx context.Context, t *Task[R], index, worker int, epoch time.Time, cache Cache[R], stats *Stats) Event[R] {
	ev := Event[R]{Index: index, ID: t.ID}
	if err := ctx.Err(); err != nil {
		ev.Err = err
		ev.Skipped = true
		return ev
	}
	var sp *TaskSpan
	if !epoch.IsZero() {
		sp = &TaskSpan{Worker: worker, Wait: time.Since(epoch)}
		sp.Start = sp.Wait
		defer func() { sp.End = time.Since(epoch) }()
		ev.Span = sp
	}
	if cache != nil {
		if r, ok := cache.Load(t.ID); ok {
			ev.Result = r
			ev.Cached = true
			if sp != nil {
				sp.Cached = true
			}
			return ev
		}
	}
	if stats != nil {
		stats.running.Add(1)
		defer stats.running.Add(-1)
	}
	start := time.Now()
	if sp != nil {
		sp.Start = time.Since(epoch)
	}
	ev.Result, ev.Err = t.Run(ctx)
	ev.Elapsed = time.Since(start)
	if ev.Err == nil && cache != nil {
		cache.Store(t.ID, ev.Result)
	}
	return ev
}

// Collect drains a plan's event stream into positional result and error
// slices (index = plan order), the layout sequential execution would have
// produced. It returns once the stream closes; with a cancelled context the
// error slice carries the context error at every unfinished position. each
// is an optional per-event observer (progress lines), invoked from the
// draining goroutine in completion order.
func Collect[R any](events <-chan Event[R], n int, each func(Event[R])) ([]R, []error) {
	results := make([]R, n)
	errs := make([]error, n)
	for ev := range events {
		results[ev.Index] = ev.Result
		errs[ev.Index] = ev.Err
		if each != nil {
			each(ev)
		}
	}
	return results, errs
}

// Run is Stream + Collect: execute the plan, return positional results and
// per-task errors.
func Run[R any](ctx context.Context, p *Plan[R], opt Options[R]) ([]R, []error) {
	return Collect(Stream(ctx, p, opt), p.Len(), nil)
}
