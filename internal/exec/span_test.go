package exec

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSpansRecorded(t *testing.T) {
	cache := newMemCache[int]()
	cache.Store("t1", 41)
	var p Plan[int]
	p.Add("t0", func(context.Context) (int, error) {
		time.Sleep(time.Millisecond)
		return 40, nil
	})
	p.Add("t1", func(context.Context) (int, error) { return 0, errors.New("cache should have served this") })
	p.Add("t2", func(context.Context) (int, error) { return 0, errors.New("boom") })

	spans := make(map[string]*TaskSpan)
	for ev := range Stream(context.Background(), &p, Options[int]{Workers: 2, Cache: cache, Spans: true}) {
		if ev.Span == nil {
			t.Fatalf("task %s: no span recorded", ev.ID)
		}
		spans[ev.ID] = ev.Span
	}

	for id, sp := range spans {
		if sp.Wait < 0 || sp.Start < sp.Wait || sp.End < sp.Start {
			t.Errorf("task %s: span not ordered: %+v", id, sp)
		}
		if sp.Worker < 0 || sp.Worker >= 2 {
			t.Errorf("task %s: worker %d out of pool range", id, sp.Worker)
		}
	}
	if !spans["t1"].Cached {
		t.Error("cache hit not marked on span")
	}
	if spans["t0"].Cached || spans["t2"].Cached {
		t.Error("live runs marked cached")
	}
	if run := spans["t0"].End - spans["t0"].Start; run < time.Millisecond {
		t.Errorf("t0 span run duration %v shorter than the task's sleep", run)
	}
	// A failed task still gets a complete span.
	if spans["t2"].End == 0 {
		t.Error("failed task span missing End")
	}
}

func TestSpansOffByDefault(t *testing.T) {
	var p Plan[int]
	p.Add("t0", func(context.Context) (int, error) { return 1, nil })
	for ev := range Stream(context.Background(), &p, Options[int]{Workers: 1}) {
		if ev.Span != nil {
			t.Fatal("span recorded without Options.Spans")
		}
	}
}

func TestSpansSkippedTask(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var p Plan[int]
	p.Add("t0", func(context.Context) (int, error) { return 1, nil })
	for ev := range Stream(ctx, &p, Options[int]{Workers: 1, Spans: true}) {
		if !ev.Skipped {
			t.Fatal("task should have been skipped under a cancelled context")
		}
		if ev.Span != nil {
			t.Fatal("skipped task should carry no span")
		}
	}
}
