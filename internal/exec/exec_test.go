package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// memCache is a minimal in-memory Cache for tests.
type memCache[R any] struct {
	mu sync.Mutex
	m  map[string]R
}

func newMemCache[R any]() *memCache[R] { return &memCache[R]{m: map[string]R{}} }

func (c *memCache[R]) Load(id string) (R, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[id]
	return r, ok
}

func (c *memCache[R]) Store(id string, r R) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[id] = r
}

// squarePlan is n tasks computing i*i.
func squarePlan(n int) *Plan[int] {
	p := &Plan[int]{}
	for i := 0; i < n; i++ {
		i := i
		p.Add(fmt.Sprintf("task-%d", i), func(context.Context) (int, error) { return i * i, nil })
	}
	return p
}

// TestStreamPositionalParity: positional collection must be identical at any
// worker count, and every task must emit exactly one event.
func TestStreamPositionalParity(t *testing.T) {
	const n = 64
	want, wantErrs := Run(context.Background(), squarePlan(n), Options[int]{Workers: 1})
	for _, err := range wantErrs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{2, 7, 16, 128} {
		got, _ := Run(context.Background(), squarePlan(n), Options[int]{Workers: workers})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestStreamEmptyPlan(t *testing.T) {
	events := Stream(context.Background(), &Plan[int]{}, Options[int]{})
	if _, ok := <-events; ok {
		t.Fatal("empty plan emitted an event")
	}
}

// TestStreamEventPerTask: exactly one event per task, indices covering the
// plan once.
func TestStreamEventPerTask(t *testing.T) {
	const n = 33
	seen := make([]int, n)
	events := Stream(context.Background(), squarePlan(n), Options[int]{Workers: 5})
	count := 0
	for ev := range events {
		seen[ev.Index]++
		count++
	}
	if count != n {
		t.Fatalf("events = %d, want %d", count, n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("task %d emitted %d events, want 1", i, c)
		}
	}
}

// TestStreamTaskErrors: a failing task carries its error without disturbing
// the others.
func TestStreamTaskErrors(t *testing.T) {
	boom := errors.New("boom")
	p := &Plan[int]{}
	p.Add("ok", func(context.Context) (int, error) { return 1, nil })
	p.Add("bad", func(context.Context) (int, error) { return 0, boom })
	p.Add("ok2", func(context.Context) (int, error) { return 3, nil })
	results, errs := Run(context.Background(), p, Options[int]{Workers: 2})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy tasks errored: %v %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], boom) {
		t.Fatalf("errs[1] = %v, want boom", errs[1])
	}
	if results[0] != 1 || results[2] != 3 {
		t.Fatalf("results damaged: %v", results)
	}
}

// TestStreamCancellation: cancelling mid-plan must skip the unclaimed tail
// with the context error, return promptly, and leak no goroutines.
func TestStreamCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 50
	var started atomic.Int64
	p := &Plan[int]{}
	for i := 0; i < n; i++ {
		i := i
		p.Add(fmt.Sprintf("t%d", i), func(ctx context.Context) (int, error) {
			if started.Add(1) == 3 {
				cancel() // cancel once a few tasks are in flight
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(5 * time.Millisecond):
				return i, nil
			}
		})
	}

	done := make(chan struct{})
	var skipped, errored int
	go func() {
		defer close(done)
		for ev := range Stream(ctx, p, Options[int]{Workers: 4}) {
			if ev.Skipped {
				skipped++
			}
			if errors.Is(ev.Err, context.Canceled) {
				errored++
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled stream did not drain promptly")
	}
	if skipped == 0 {
		t.Error("no tasks were skipped after cancellation")
	}
	if errored == 0 {
		t.Error("no events carried the context error")
	}

	// The pool must wind down completely: poll because worker exit is
	// asynchronous with channel close.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestStreamCache: a second execution over a warm cache must serve every
// task from it, running nothing.
func TestStreamCache(t *testing.T) {
	cache := newMemCache[int]()
	var runs atomic.Int64
	plan := func() *Plan[int] {
		p := &Plan[int]{}
		for i := 0; i < 10; i++ {
			i := i
			p.Add(fmt.Sprintf("t%d", i), func(context.Context) (int, error) {
				runs.Add(1)
				return i * 10, nil
			})
		}
		return p
	}

	first, _ := Run(context.Background(), plan(), Options[int]{Workers: 3, Cache: cache})
	if got := runs.Load(); got != 10 {
		t.Fatalf("cold run executed %d tasks, want 10", got)
	}

	var cached int
	second, _ := Collect(Stream(context.Background(), plan(), Options[int]{Workers: 3, Cache: cache}), 10, func(ev Event[int]) {
		if ev.Cached {
			cached++
		}
	})
	if got := runs.Load(); got != 10 {
		t.Fatalf("warm run re-executed tasks: %d total runs, want 10", got)
	}
	if cached != 10 {
		t.Fatalf("cached events = %d, want 10", cached)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cached result[%d] = %d, want %d", i, second[i], first[i])
		}
	}
}

// TestStreamPartialCache: with half the cache warm, only the cold half runs
// and the positional layout is unchanged.
func TestStreamPartialCache(t *testing.T) {
	cache := newMemCache[int]()
	for i := 0; i < 10; i += 2 {
		cache.Store(fmt.Sprintf("t%d", i), i*10)
	}
	var runs atomic.Int64
	p := &Plan[int]{}
	for i := 0; i < 10; i++ {
		i := i
		p.Add(fmt.Sprintf("t%d", i), func(context.Context) (int, error) {
			runs.Add(1)
			return i * 10, nil
		})
	}
	results, errs := Run(context.Background(), p, Options[int]{Workers: 4, Cache: cache})
	if got := runs.Load(); got != 5 {
		t.Fatalf("ran %d tasks, want 5 (odd half)", got)
	}
	for i := range results {
		if errs[i] != nil || results[i] != i*10 {
			t.Fatalf("result[%d] = %d (err %v), want %d", i, results[i], errs[i], i*10)
		}
	}
}

// TestStreamFailedTaskNotCached: failures must not poison the cache.
func TestStreamFailedTaskNotCached(t *testing.T) {
	cache := newMemCache[int]()
	attempt := 0
	p := &Plan[int]{}
	p.Add("flaky", func(context.Context) (int, error) {
		attempt++
		if attempt == 1 {
			return 0, errors.New("transient")
		}
		return 7, nil
	})
	if _, errs := Run(context.Background(), p, Options[int]{Workers: 1, Cache: cache}); errs[0] == nil {
		t.Fatal("first attempt should fail")
	}
	results, errs := Run(context.Background(), p, Options[int]{Workers: 1, Cache: cache})
	if errs[0] != nil || results[0] != 7 {
		t.Fatalf("retry got (%d, %v), want (7, nil)", results[0], errs[0])
	}
}

// TestStats: the shared Stats counters track a plan through its lifecycle —
// pending drains to zero, completions and failures split correctly, and a
// second plan accumulates onto the same counters.
func TestStats(t *testing.T) {
	stats := &Stats{}
	p := squarePlan(6)
	p.Add("boom", func(context.Context) (int, error) { return 0, errors.New("boom") })
	_, errs := Run(context.Background(), p, Options[int]{Workers: 3, Stats: stats})
	failures := 0
	for _, err := range errs {
		if err != nil {
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("errs = %v, want exactly the failing task's error", errs)
	}
	if got := stats.Pending(); got != 0 {
		t.Errorf("pending = %d, want 0 after drain", got)
	}
	if got := stats.Running(); got != 0 {
		t.Errorf("running = %d, want 0 after drain", got)
	}
	if got := stats.Completed(); got != 6 {
		t.Errorf("completed = %d, want 6", got)
	}
	if got := stats.Failed(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}

	_, errs = Run(context.Background(), squarePlan(2), Options[int]{Workers: 1, Stats: stats})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := stats.Completed(); got != 8 {
		t.Errorf("completed after second plan = %d, want 8", got)
	}
}

// TestStatsRunningDuringExecution: the running gauge is live while tasks
// hold the pool.
func TestStatsRunningDuringExecution(t *testing.T) {
	stats := &Stats{}
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	p := &Plan[int]{}
	for i := 0; i < 2; i++ {
		p.Add(fmt.Sprintf("hold-%d", i), func(context.Context) (int, error) {
			started <- struct{}{}
			<-release
			return 0, nil
		})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = Run(context.Background(), p, Options[int]{Workers: 2, Stats: stats})
	}()
	<-started
	<-started
	if got := stats.Running(); got != 2 {
		t.Errorf("running = %d, want 2 while tasks are parked", got)
	}
	if got := stats.Pending(); got != 2 {
		t.Errorf("pending = %d, want 2 while tasks are parked", got)
	}
	close(release)
	<-done
	if stats.Running() != 0 || stats.Pending() != 0 {
		t.Errorf("counters did not drain: running %d pending %d", stats.Running(), stats.Pending())
	}
}
