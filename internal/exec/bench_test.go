package exec

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkExecStream measures the executor's per-task overhead: a plan of
// 4096 trivial tasks streamed through a 8-worker pool and collected
// positionally. This is the dispatch+event hot path every runner invocation,
// scenario sweep, and API request rides on; it is gated by `make
// bench-compare` against BENCH_base.json.
func BenchmarkExecStream(b *testing.B) {
	const tasks = 4096
	p := &Plan[int]{}
	for i := 0; i < tasks; i++ {
		i := i
		p.Add(fmt.Sprintf("task-%d", i), func(context.Context) (int, error) { return i, nil })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		results, _ := Run(context.Background(), p, Options[int]{Workers: 8})
		if len(results) != tasks {
			b.Fatalf("results = %d, want %d", len(results), tasks)
		}
	}
}
