package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"atlarge/internal/sim"
)

// ClassShare weights one workload class in a Population's client mix.
type ClassShare struct {
	Class  Class
	Weight float64
}

// Skew describes how per-client rate multipliers are drawn across a
// Population, producing the heavy-tailed per-client activity observed in
// production serving traces.
type Skew struct {
	// Kind is "none" (or empty), "zipf", or "lognormal".
	Kind string
	// S is the Zipf exponent (default 1.1): client c's rate weight is
	// proportional to (c+1)^-S, normalized to unit mean over the population.
	S float64
	// Sigma is the lognormal σ (default 1): multipliers are exp(σZ − σ²/2),
	// unit mean.
	Sigma float64
}

// ParseSkew resolves a skew by name, case-insensitively, with default
// parameters.
func ParseSkew(name string) (Skew, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return Skew{Kind: "none"}, nil
	case "zipf":
		return Skew{Kind: "zipf"}, nil
	case "lognormal":
		return Skew{Kind: "lognormal"}, nil
	}
	return Skew{}, fmt.Errorf("workload: unknown skew %q (known: %s)", name, strings.Join(SkewNames(), ", "))
}

// SkewNames returns the accepted skew names in sorted order.
func SkewNames() []string {
	out := []string{"lognormal", "none", "zipf"}
	sort.Strings(out)
	return out
}

// normalizeSkew lower-cases the kind and fills parameter defaults.
func normalizeSkew(s Skew) Skew {
	s.Kind = strings.ToLower(s.Kind)
	if s.Kind == "" {
		s.Kind = "none"
	}
	if s.S == 0 {
		s.S = 1.1
	}
	if s.Sigma == 0 {
		s.Sigma = 1
	}
	return s
}

// Population declares N heterogeneous clients whose merged submissions form
// one workload: each client draws a class from Mix, a rate multiplier from
// Skew, and then submits jobs forever through its class's arrival process.
// Source streams the merged, globally time-ordered result with O(Clients)
// resident state — about 48 bytes per client — so a spec can declare 10^6
// clients without materializing anything per job.
//
// Determinism: client c's RNG stream depends only on (Seed, c), and merge
// ties are broken by client ID, so the emitted stream is byte-identical at
// any Shards setting.
type Population struct {
	// Clients is the number of independent clients (≥ 1).
	Clients int
	// Mix weights the workload classes that clients are assigned to; one
	// class draw per client. It must be non-empty — use SingleClass for the
	// common homogeneous case.
	Mix []ClassShare
	// Arrival, when non-nil, overrides the arrival process of every class
	// generator in the mix.
	Arrival ArrivalProcess
	// Skew draws the per-client rate multipliers.
	Skew Skew
	// RateScale scales every client's arrival rate. 0 defaults to
	// 1/Clients, so the population's aggregate rate matches the class
	// generator's calibrated rate regardless of the client count.
	RateScale float64
	// Seed is the base seed; client c streams from DeriveSeed(Seed, c).
	Seed int64
	// Shards > 1 generates the stream on that many goroutines (clients
	// partitioned contiguously), merged back deterministically.
	Shards int
}

// SingleClass is the homogeneous mix: every client runs class c.
func SingleClass(c Class) []ClassShare { return []ClassShare{{Class: c, Weight: 1}} }

// DeriveSeed derives a per-client RNG seed from the population base seed by
// avalanching the (base, client) pair through the splitmix64 finalizer —
// the same discipline the runner uses for experiment seeds. Client streams
// depend only on their global ID, which is what makes sharded generation
// order-independent.
func DeriveSeed(base int64, client int) int64 {
	h := uint64(base) + (uint64(client)+1)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h)
}

func validClass(c Class) bool { return c >= ClassSynthetic && c <= ClassIndustrial }

// Validate checks the population spec without building it.
func (p *Population) Validate() error {
	if p.Clients < 1 {
		return fmt.Errorf("workload: population needs clients >= 1, got %d", p.Clients)
	}
	if len(p.Mix) == 0 {
		return fmt.Errorf("workload: population needs a non-empty class mix")
	}
	for _, m := range p.Mix {
		if !validClass(m.Class) {
			return fmt.Errorf("workload: population mix has unknown class %v", m.Class)
		}
		if !positive(m.Weight) {
			return fmt.Errorf("workload: population mix weight for %s must be > 0, got %v", m.Class, m.Weight)
		}
	}
	if p.Arrival != nil {
		if err := p.Arrival.Validate(); err != nil {
			return err
		}
	}
	sk := normalizeSkew(p.Skew)
	if _, err := ParseSkew(sk.Kind); err != nil {
		return err
	}
	if !positive(sk.S) || !positive(sk.Sigma) {
		return fmt.Errorf("workload: population skew parameters must be > 0, got s=%v sigma=%v", sk.S, sk.Sigma)
	}
	if p.RateScale < 0 || math.IsNaN(p.RateScale) {
		return fmt.Errorf("workload: population rate scale must be >= 0, got %v", p.RateScale)
	}
	if p.Shards < 0 {
		return fmt.Errorf("workload: population shards must be >= 0, got %d", p.Shards)
	}
	return nil
}

// Source builds the population's job stream. The stream is unbounded;
// consumers take what they need (Collect with a max, or a streaming
// simulator) and must Close it when done.
func (p *Population) Source() (JobSource, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	gens := make([]Generator, len(p.Mix))
	cum := make([]float64, len(p.Mix))
	total := 0.0
	for i, m := range p.Mix {
		gens[i] = StandardGenerator(m.Class)
		if p.Arrival != nil {
			gens[i].Arrivals = p.Arrival
		}
		if err := gens[i].Arrivals.Validate(); err != nil {
			return nil, err
		}
		total += m.Weight
		cum[i] = total
	}
	rateScale := p.RateScale
	if rateScale == 0 {
		rateScale = 1 / float64(p.Clients)
	}
	sk := normalizeSkew(p.Skew)
	var zipfNorm float64
	if sk.Kind == "zipf" {
		// Unit-mean normalizer for the deterministic Zipf weights; O(N) once.
		sum := 0.0
		for i := 0; i < p.Clients; i++ {
			sum += math.Pow(float64(i+1), -sk.S)
		}
		zipfNorm = sum / float64(p.Clients)
	}
	cfg := popConfig{gens: gens, cum: cum, skew: sk, zipfNorm: zipfNorm, rateScale: rateScale, seed: p.Seed}
	name := p.name()
	if p.Shards <= 1 {
		return &populationSource{core: newMergeCore(cfg, 0, p.Clients), name: name}, nil
	}
	return newShardedSource(cfg, p.Clients, p.Shards, name), nil
}

func (p *Population) name() string {
	classes := make([]string, len(p.Mix))
	for i, m := range p.Mix {
		classes[i] = m.Class.String()
	}
	return fmt.Sprintf("population(%d×%s, skew=%s)", p.Clients, strings.Join(classes, "+"), normalizeSkew(p.Skew).Kind)
}

// popConfig is the resolved, shard-independent population configuration.
type popConfig struct {
	gens      []Generator
	cum       []float64 // cumulative mix weights
	skew      Skew
	zipfNorm  float64
	rateScale float64
	seed      int64
}

// client is one population member's entire resident state: an 8-byte
// splitmix64 RNG, the next (already drawn) submit time, the rate multiplier,
// and the class index.
type client struct {
	rng   uint64
	next  sim.Time
	mult  float64
	class uint16
}

// clientSource is a splitmix64 rand.Source64 whose state word lives in the
// client table. One shared *rand.Rand per merge core is redirected from
// client to client, so a million clients cost 8 MB of RNG state rather than
// a million rand.Rand instances.
type clientSource struct{ state *uint64 }

func (s *clientSource) Uint64() uint64 {
	*s.state += 0x9e3779b97f4a7c15
	z := *s.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *clientSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *clientSource) Seed(int64) {}

// mergeNode is the 16-byte value node of the k-way merge heaps, mirroring
// the sim kernel's heap discipline: compare by packed time bits, break ties
// by client ID so the merge order is independent of heap insertion history
// (and hence of shard count). shard is carried only by the top-level
// cross-shard merge.
type mergeNode struct {
	at     uint64
	client uint32
	shard  uint32
}

// packTime maps a non-negative time to a uint64 whose natural order matches
// numeric order (IEEE-754 bit patterns are monotone for non-negative
// floats).
func packTime(t sim.Time) uint64 { return math.Float64bits(float64(t)) }

func nodeLess(a, b mergeNode) bool {
	return a.at < b.at || (a.at == b.at && a.client < b.client)
}

const mergeArity = 4

func siftUp(h []mergeNode, i int) {
	n := h[i]
	for i > 0 {
		p := (i - 1) / mergeArity
		if !nodeLess(n, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = n
}

func siftDown(h []mergeNode, i int) {
	n := h[i]
	for {
		first := i*mergeArity + 1
		if first >= len(h) {
			break
		}
		last := first + mergeArity
		if last > len(h) {
			last = len(h)
		}
		best := first
		for c := first + 1; c < last; c++ {
			if nodeLess(h[c], h[best]) {
				best = c
			}
		}
		if !nodeLess(h[best], n) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = n
}

// heapify establishes the heap property bottom-up (Floyd), O(n).
func heapify(h []mergeNode) {
	for i := (len(h) - 2) / mergeArity; i >= 0; i-- {
		siftDown(h, i)
	}
}

// mergeCore merges one contiguous client range [base, base+len(clients))
// into a (submit, client)-ordered job stream: a heap of one cursor per
// client, job bodies drawn at pop time into a reused scratch job.
type mergeCore struct {
	cfg     popConfig
	clients []client
	base    uint32
	heap    []mergeNode
	src     clientSource
	r       *rand.Rand
	sc      genScratch
	job     Job
}

func newMergeCore(cfg popConfig, lo, hi int) *mergeCore {
	mc := &mergeCore{
		cfg:     cfg,
		clients: make([]client, hi-lo),
		base:    uint32(lo),
		heap:    make([]mergeNode, hi-lo),
	}
	mc.r = rand.New(&mc.src)
	for i := range mc.clients {
		id := lo + i
		c := &mc.clients[i]
		c.rng = uint64(DeriveSeed(cfg.seed, id))
		mc.src.state = &c.rng
		// Per-client draw order is a fixed contract: class pick (only for
		// mixed populations), skew draw (only lognormal), first arrival gap.
		ci := 0
		if len(cfg.gens) > 1 {
			u := mc.r.Float64() * cfg.cum[len(cfg.cum)-1]
			for ci < len(cfg.cum)-1 && u > cfg.cum[ci] {
				ci++
			}
		}
		c.class = uint16(ci)
		mult := cfg.rateScale
		switch cfg.skew.Kind {
		case "zipf":
			mult *= math.Pow(float64(id+1), -cfg.skew.S) / cfg.zipfNorm
		case "lognormal":
			z := mc.r.NormFloat64()
			mult *= math.Exp(cfg.skew.Sigma*z - cfg.skew.Sigma*cfg.skew.Sigma/2)
		}
		c.mult = mult
		c.next = cfg.gens[ci].Arrivals.NextAfter(0, mult, mc.r)
		mc.heap[i] = mergeNode{at: packTime(c.next), client: uint32(id)}
	}
	heapify(mc.heap)
	return mc
}

// next pops the earliest client cursor, fills that client's next job into
// the core scratch (local task IDs; global identity is assigned by the
// caller via emitAs), advances the cursor, and restores the heap. The
// stream is unbounded, so next always succeeds.
func (mc *mergeCore) next() (*Job, uint32) {
	node := mc.heap[0]
	c := &mc.clients[node.client-mc.base]
	mc.src.state = &c.rng
	g := &mc.cfg.gens[c.class]
	mc.job.ID = 0
	mc.job.Submit = c.next
	mc.job.Class = g.Class
	g.fillJob(&mc.job, mc.r, &mc.sc)
	c.next = g.Arrivals.NextAfter(c.next, c.mult, mc.r)
	mc.heap[0] = mergeNode{at: packTime(c.next), client: node.client}
	siftDown(mc.heap, 0)
	return &mc.job, node.client
}

// populationSource is the inline (unsharded) population stream.
type populationSource struct {
	core   *mergeCore
	name   string
	seq    int
	taskID int
}

func (s *populationSource) Next() *Job {
	j, _ := s.core.next()
	s.seq++
	emitAs(j, s.seq, s.taskID)
	s.taskID += len(j.Tasks)
	return j
}

func (s *populationSource) Name() string { return s.name }

func (s *populationSource) Close() {}

// batchJobs is the per-shard handover granularity: large enough to amortize
// channel operations, small enough to keep resident batch memory trivial.
const batchJobs = 512

// shardBatch carries a run of generated jobs from a shard goroutine to the
// merging consumer in three flat arenas; batches are recycled through the
// shard's free list, so steady-state generation allocates nothing.
type shardBatch struct {
	jobs  []batchJob
	tasks []Task
	deps  []int
}

type batchJob struct {
	submit   sim.Time
	client   uint32
	class    Class
	deadline sim.Duration
	lo, hi   int32 // task range in the batch task arena
}

func (b *shardBatch) reset() {
	b.jobs = b.jobs[:0]
	b.tasks = b.tasks[:0]
	b.deps = b.deps[:0]
}

// add copies a scratch job into the batch arenas, rebinding dep slices into
// the batch dep arena.
func (b *shardBatch) add(j *Job, clientID uint32) {
	lo := len(b.tasks)
	b.tasks = append(b.tasks, j.Tasks...)
	for i := lo; i < len(b.tasks); i++ {
		t := &b.tasks[i]
		if len(t.Deps) > 0 {
			dlo := len(b.deps)
			b.deps = append(b.deps, t.Deps...)
			t.Deps = b.deps[dlo:len(b.deps):len(b.deps)]
		}
	}
	b.jobs = append(b.jobs, batchJob{
		submit:   j.Submit,
		client:   clientID,
		class:    j.Class,
		deadline: j.Deadline,
		lo:       int32(lo),
		hi:       int32(len(b.tasks)),
	})
}

type shard struct {
	core *mergeCore
	out  chan *shardBatch
	free chan *shardBatch
	cur  *shardBatch
	pos  int
}

// shardedSource partitions the clients across G goroutines, each running
// its own mergeCore, and k-way merges the G sorted sub-streams. Because
// every per-client draw sequence depends only on (seed, clientID) and merge
// order is keyed (submit, clientID), the output is byte-identical to the
// inline source.
type shardedSource struct {
	shards []*shard
	heap   []mergeNode
	name   string
	job    Job
	seq    int
	taskID int
	retire int // shard whose exhausted batch must be swapped on the next Next
	done   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

func newShardedSource(cfg popConfig, clients, shards int, name string) *shardedSource {
	if shards > clients {
		shards = clients
	}
	s := &shardedSource{name: name, retire: -1, done: make(chan struct{})}
	per := (clients + shards - 1) / shards
	// Cores are independent; build them in parallel (client init is the
	// O(clients) part of startup).
	var ranges [][2]int
	for lo := 0; lo < clients; lo += per {
		hi := lo + per
		if hi > clients {
			hi = clients
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
	cores := make([]*mergeCore, len(ranges))
	var cwg sync.WaitGroup
	cwg.Add(len(ranges))
	for i, rg := range ranges {
		go func(i, lo, hi int) {
			defer cwg.Done()
			cores[i] = newMergeCore(cfg, lo, hi)
		}(i, rg[0], rg[1])
	}
	cwg.Wait()
	for _, core := range cores {
		sh := &shard{
			core: core,
			out:  make(chan *shardBatch, 1),
			free: make(chan *shardBatch, 2),
		}
		sh.free <- &shardBatch{}
		sh.free <- &shardBatch{}
		s.shards = append(s.shards, sh)
	}
	s.wg.Add(len(s.shards))
	for _, sh := range s.shards {
		go s.fill(sh)
	}
	for i, sh := range s.shards {
		sh.cur = <-sh.out
		bj := &sh.cur.jobs[0]
		s.heap = append(s.heap, mergeNode{at: packTime(bj.submit), client: bj.client, shard: uint32(i)})
	}
	heapify(s.heap)
	return s
}

func (s *shardedSource) fill(sh *shard) {
	defer s.wg.Done()
	for {
		var b *shardBatch
		select {
		case b = <-sh.free:
		case <-s.done:
			return
		}
		b.reset()
		for len(b.jobs) < batchJobs {
			j, clientID := sh.core.next()
			b.add(j, clientID)
		}
		select {
		case sh.out <- b:
		case <-s.done:
			return
		}
	}
}

func (s *shardedSource) Next() *Job {
	if s.retire >= 0 {
		// The previous Next emitted the last job of this shard's batch; the
		// emitted job aliased its arenas, so the swap was deferred to now.
		sh := s.shards[s.retire]
		old := sh.cur
		sh.cur = <-sh.out
		sh.free <- old
		sh.pos = 0
		bj := &sh.cur.jobs[0]
		s.heap = append(s.heap, mergeNode{at: packTime(bj.submit), client: bj.client, shard: uint32(s.retire)})
		siftUp(s.heap, len(s.heap)-1)
		s.retire = -1
	}
	node := s.heap[0]
	sh := s.shards[node.shard]
	bj := &sh.cur.jobs[sh.pos]
	s.job.Submit = bj.submit
	s.job.Class = bj.class
	s.job.Deadline = bj.deadline
	s.job.Tasks = sh.cur.tasks[bj.lo:bj.hi]
	s.seq++
	emitAs(&s.job, s.seq, s.taskID)
	s.taskID += len(s.job.Tasks)
	sh.pos++
	if sh.pos < len(sh.cur.jobs) {
		nb := &sh.cur.jobs[sh.pos]
		s.heap[0] = mergeNode{at: packTime(nb.submit), client: nb.client, shard: node.shard}
		siftDown(s.heap, 0)
	} else {
		last := len(s.heap) - 1
		s.heap[0] = s.heap[last]
		s.heap = s.heap[:last]
		if last > 0 {
			siftDown(s.heap, 0)
		}
		s.retire = int(node.shard)
	}
	return &s.job
}

func (s *shardedSource) Name() string { return s.name }

func (s *shardedSource) Close() {
	if s.closed {
		return
	}
	s.closed = true
	close(s.done)
	// Unblock any producer parked on a full out channel, then wait for all
	// shard goroutines to observe done.
	for _, sh := range s.shards {
		select {
		case <-sh.out:
		default:
		}
	}
	s.wg.Wait()
}
