package workload

import (
	"fmt"
	"math/rand"

	"atlarge/internal/sim"
)

// JobSource is a pull-based stream of jobs in non-decreasing Submit order.
// It is the O(1)-per-job interface between workload generation and its
// consumers: a million-job workload never has to exist in memory at once.
type JobSource interface {
	// Next returns the next job, or nil when the stream is exhausted. The
	// returned Job — including its Tasks and their Deps — is owned by the
	// source and is invalidated by the following Next or Close call; retain
	// it with Job.Clone.
	Next() *Job
	// Name describes the stream; Collect uses it as the Trace name.
	Name() string
	// Close releases the source's resources (shard goroutines, buffers). It
	// is idempotent; Next must not be called after Close.
	Close()
}

// Collect materializes up to max jobs from src into a Trace, cloning each
// streamed job; max <= 0 drains the source. Collect(g.Source(n, r), n)
// reproduces g.Generate(n, r) exactly; over a Population source it takes a
// bounded prefix of an unbounded stream.
func Collect(src JobSource, max int) *Trace {
	tr := &Trace{Name: src.Name()}
	for max <= 0 || len(tr.Jobs) < max {
		j := src.Next()
		if j == nil {
			break
		}
		if tr.Jobs == nil {
			hint := max
			if hint <= 0 || hint > 1<<16 {
				hint = 1 << 16
			}
			tr.Jobs = make([]*Job, 0, hint)
		}
		tr.Jobs = append(tr.Jobs, j.Clone())
	}
	return tr
}

// Source returns a finite JobSource that emits exactly the jobs Generate
// produces with the same RNG: arrival times are drawn eagerly up front (the
// historical draw order), job bodies lazily on each Next against a reused
// scratch job.
func (g Generator) Source(n int, r *rand.Rand) JobSource {
	return &generatorSource{gen: g, times: g.Arrivals.Times(n, r), r: r}
}

type generatorSource struct {
	gen    Generator
	times  []sim.Time
	r      *rand.Rand
	i      int
	taskID int
	job    Job
	sc     genScratch
}

func (s *generatorSource) Next() *Job {
	if s.i >= len(s.times) {
		return nil
	}
	s.job.Submit = s.times[s.i]
	s.job.Class = s.gen.Class
	s.gen.fillJob(&s.job, s.r, &s.sc)
	s.i++
	emitAs(&s.job, s.i, s.taskID)
	s.taskID += len(s.job.Tasks)
	return &s.job
}

// emitAs assigns a filled job its global identity in the stream: job ID,
// task IDs starting after base, and dep references rebased likewise.
func emitAs(job *Job, id, base int) {
	job.ID = id
	for i := range job.Tasks {
		t := &job.Tasks[i]
		t.JobID = id
		t.ID += base
		for d := range t.Deps {
			t.Deps[d] += base
		}
	}
}

func (s *generatorSource) Name() string {
	return fmt.Sprintf("%s-%s", s.gen.Class, s.gen.Arrivals)
}

func (s *generatorSource) Close() {}

// Take caps src at n jobs — the bounding combinator for unbounded streams
// (a Population never runs dry on its own). Close closes the underlying
// source.
func Take(src JobSource, n int) JobSource {
	return &takeSource{src: src, left: n}
}

type takeSource struct {
	src  JobSource
	left int
}

func (s *takeSource) Next() *Job {
	if s.left <= 0 {
		return nil
	}
	s.left--
	return s.src.Next()
}

func (s *takeSource) Name() string { return s.src.Name() }

func (s *takeSource) Close() { s.src.Close() }

// Source adapts a materialized trace to the JobSource interface. Jobs are
// emitted by reference in slice order (callers wanting submit order should
// SortBySubmit first); unlike generated sources the jobs survive Next, but
// consumers should not rely on that.
func (tr *Trace) Source() JobSource {
	return &traceSource{tr: tr}
}

type traceSource struct {
	tr *Trace
	i  int
}

func (s *traceSource) Next() *Job {
	if s.i >= len(s.tr.Jobs) {
		return nil
	}
	j := s.tr.Jobs[s.i]
	s.i++
	return j
}

func (s *traceSource) Name() string { return s.tr.Name }

func (s *traceSource) Close() {}
