package workload

import (
	"fmt"
	"math/rand"

	"atlarge/internal/sim"
)

// Generator builds a trace of n jobs for one workload class.
type Generator struct {
	Class    Class
	Arrivals ArrivalProcess
	// Runtime is the per-task runtime distribution (seconds).
	Runtime sim.Dist
	// TaskCPUs is the per-task CPU-count distribution (rounded, min 1).
	TaskCPUs sim.Dist
	// TasksPerJob is the bag width distribution (rounded, min 1).
	TasksPerJob sim.Dist
	// WorkflowFraction of jobs are converted into DAGs with level structure.
	WorkflowFraction float64
	// EstimateNoise is the relative multiplicative noise applied to runtime
	// estimates; 0 means perfect estimates. Big-data workloads use large
	// noise to reproduce the POSUM sub-optimality finding (Table 9).
	EstimateNoise float64
	// DeadlineFactor, when positive, sets each job's deadline to
	// DeadlineFactor × critical path (or runtime for bags).
	DeadlineFactor float64
}

// Generate produces n jobs using RNG r. It is a thin materialization of the
// streaming form: Collect(g.Source(n, r), n), draw-for-draw identical to the
// historical eager implementation.
func (g Generator) Generate(n int, r *rand.Rand) *Trace {
	return Collect(g.Source(n, r), n)
}

// genScratch holds the reusable buffers behind streaming job-body
// generation: a dep arena (two slots per task, the generator's maximum) and
// a critical-path memo. One scratch serves one stream; jobs emitted from it
// are valid until the next fill.
type genScratch struct {
	deps   []int
	finish []sim.Duration
}

// fillJob draws one job body — tasks, optional DAG structure, deadline —
// into job, which must already carry ID, Submit, and Class. Tasks get
// job-local IDs 1..width and Deps refer to those; callers make them globally
// unique with emitAs. Storage comes from job.Tasks' spare capacity and
// sc, so a reused job allocates nothing once the buffers are warm.
func (g Generator) fillJob(job *Job, r *rand.Rand, sc *genScratch) {
	width := int(g.TasksPerJob.Sample(r))
	if width < 1 {
		width = 1
	}
	if cap(job.Tasks) < width {
		job.Tasks = make([]Task, 0, width)
	}
	job.Tasks = job.Tasks[:0]
	if cap(sc.deps) < 2*width {
		sc.deps = make([]int, 2*width)
	}
	job.Deadline = 0
	for w := 0; w < width; w++ {
		rt := sim.Duration(g.Runtime.Sample(r))
		if rt <= 0 {
			rt = 0.001
		}
		cpus := int(g.TaskCPUs.Sample(r))
		if cpus < 1 {
			cpus = 1
		}
		est := rt
		if g.EstimateNoise > 0 {
			est = rt * sim.Duration(1+g.EstimateNoise*(2*r.Float64()-1))
			if est <= 0 {
				est = 0.001
			}
		}
		job.Tasks = append(job.Tasks, Task{
			ID:              w + 1,
			JobID:           job.ID,
			CPUs:            cpus,
			Runtime:         rt,
			RuntimeEstimate: est,
			Deps:            sc.deps[2*w : 2*w : 2*w+2],
		})
	}
	if g.WorkflowFraction > 0 && r.Float64() < g.WorkflowFraction && width > 2 {
		chainIntoLevels(job, r)
	}
	if g.DeadlineFactor > 0 {
		job.Deadline = sim.Duration(g.DeadlineFactor) * sc.criticalPath(job)
	}
}

// criticalPath computes Job.CriticalPath without allocating, relying on the
// generator invariant that dependencies point only at lower task indexes
// (task ID = index+1 before rebasing).
func (sc *genScratch) criticalPath(job *Job) sim.Duration {
	if cap(sc.finish) < len(job.Tasks) {
		sc.finish = make([]sim.Duration, len(job.Tasks))
	}
	finish := sc.finish[:len(job.Tasks)]
	var cp sim.Duration
	for i := range job.Tasks {
		t := &job.Tasks[i]
		var start sim.Duration
		for _, d := range t.Deps {
			if f := finish[d-1]; f > start {
				start = f
			}
		}
		finish[i] = start + t.Runtime
		if finish[i] > cp {
			cp = finish[i]
		}
	}
	return cp
}

// chainIntoLevels turns a bag into a layered DAG: tasks are split into 2-4
// levels; each task depends on one or two tasks of the previous level. This
// mirrors the fork-join shapes of scientific workflows (Montage, LIGO).
func chainIntoLevels(job *Job, r *rand.Rand) {
	levels := 2 + r.Intn(3)
	if levels > len(job.Tasks) {
		levels = len(job.Tasks)
	}
	perLevel := len(job.Tasks) / levels
	if perLevel == 0 {
		perLevel = 1
	}
	// Level assignment is monotone in the task index (level = index/perLevel,
	// clamped to the last level), so each level occupies a contiguous index
	// range and no per-level index slices are needed.
	for i := range job.Tasks {
		l := i / perLevel
		if l >= levels {
			l = levels - 1
		}
		if l == 0 {
			continue
		}
		// The previous level is never the clamped tail level, so it holds
		// exactly perLevel tasks starting at (l-1)·perLevel.
		lo := (l - 1) * perLevel
		nDeps := 1
		if perLevel > 1 && r.Float64() < 0.5 {
			nDeps = 2
		}
		first := -1
		for d := 0; d < nDeps; d++ {
			p := lo + r.Intn(perLevel)
			if p == first {
				continue
			}
			first = p
			job.Tasks[i].Deps = append(job.Tasks[i].Deps, job.Tasks[p].ID)
		}
	}
}

// StandardGenerator returns the calibrated generator for a workload class.
// The parameterizations are stylized versions of the cited trace studies:
// scientific workloads are workflow-heavy with bursty (Weibull k<1) arrivals,
// business-critical workloads are long-running with diurnal arrivals,
// big-data workloads have heavy-tailed runtimes and poor estimates, gaming
// workloads are short-task and latency-bound, and industrial IoT workloads
// are narrow periodic analytics.
func StandardGenerator(c Class) Generator {
	switch c {
	case ClassSynthetic:
		return Generator{
			Class:       c,
			Arrivals:    PoissonArrivals{Rate: 0.05},
			Runtime:     sim.Exponential{Lambda: 1.0 / 120},
			TaskCPUs:    sim.Constant{Value: 1},
			TasksPerJob: sim.Uniform{Low: 1, High: 10},
		}
	case ClassScientific:
		return Generator{
			Class:            c,
			Arrivals:         WeibullArrivals{Scale: 25, K: 0.7},
			Runtime:          sim.LogNormal{Mu: 4.5, Sigma: 1.1},
			TaskCPUs:         sim.Uniform{Low: 1, High: 4},
			TasksPerJob:      sim.Uniform{Low: 5, High: 40},
			WorkflowFraction: 0.7,
			EstimateNoise:    0.3,
			DeadlineFactor:   4,
		}
	case ClassComputerEngineering:
		return Generator{
			Class:       c,
			Arrivals:    PoissonArrivals{Rate: 0.08},
			Runtime:     sim.LogNormal{Mu: 5.5, Sigma: 0.8},
			TaskCPUs:    sim.Uniform{Low: 1, High: 8},
			TasksPerJob: sim.Uniform{Low: 1, High: 100},
		}
	case ClassBusinessCritical:
		return Generator{
			Class:       c,
			Arrivals:    DiurnalArrivals{BaseRate: 0.02, Period: 86400, Amplitude: 0.8},
			Runtime:     sim.LogNormal{Mu: 7.5, Sigma: 0.6},
			TaskCPUs:    sim.Uniform{Low: 1, High: 16},
			TasksPerJob: sim.Constant{Value: 1},
		}
	case ClassBigData:
		return Generator{
			Class:            c,
			Arrivals:         WeibullArrivals{Scale: 15, K: 0.6},
			Runtime:          sim.Pareto{Xm: 30, Alpha: 1.5},
			TaskCPUs:         sim.Uniform{Low: 1, High: 4},
			TasksPerJob:      sim.Uniform{Low: 10, High: 200},
			WorkflowFraction: 0.4,
			EstimateNoise:    2.5, // runtimes are hard to predict (POSUM finding)
		}
	case ClassGaming:
		return Generator{
			Class:          c,
			Arrivals:       DiurnalArrivals{BaseRate: 0.2, Period: 86400, Amplitude: 0.9},
			Runtime:        sim.Exponential{Lambda: 1.0 / 20},
			TaskCPUs:       sim.Constant{Value: 1},
			TasksPerJob:    sim.Uniform{Low: 1, High: 4},
			DeadlineFactor: 2,
		}
	case ClassIndustrial:
		return Generator{
			Class:            c,
			Arrivals:         PoissonArrivals{Rate: 0.03},
			Runtime:          sim.LogNormal{Mu: 5.0, Sigma: 0.5},
			TaskCPUs:         sim.Uniform{Low: 1, High: 2},
			TasksPerJob:      sim.Uniform{Low: 4, High: 20},
			WorkflowFraction: 0.9,
			EstimateNoise:    0.2,
			DeadlineFactor:   3,
		}
	default:
		panic(fmt.Sprintf("workload: unknown class %v", c))
	}
}
