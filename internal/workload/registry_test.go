package workload

import (
	"math/rand"
	"strings"
	"testing"
)

func TestArrivalsByNameDefaults(t *testing.T) {
	for _, name := range ArrivalNames() {
		ap, err := ArrivalsByName(name, nil)
		if err != nil {
			t.Fatalf("ArrivalsByName(%q): %v", name, err)
		}
		if ap.String() != name {
			t.Errorf("ArrivalsByName(%q).String() = %q", name, ap.String())
		}
		// The built process must actually produce a valid arrival sequence.
		times := ap.Times(20, rand.New(rand.NewSource(1)))
		if len(times) != 20 {
			t.Fatalf("%s: got %d times, want 20", name, len(times))
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				t.Fatalf("%s: arrival times decrease at %d", name, i)
			}
		}
	}
}

func TestArrivalsByNameParams(t *testing.T) {
	ap, err := ArrivalsByName("poisson", map[string]float64{"rate": 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := ap.(PoissonArrivals); !ok || p.Rate != 2.5 {
		t.Errorf("rate override not applied: %#v", ap)
	}
	ap, err = ArrivalsByName("flashcrowd", map[string]float64{"spike": 80})
	if err != nil {
		t.Fatal(err)
	}
	f, ok := ap.(FlashcrowdArrivals)
	if !ok || f.Spike != 80 {
		t.Errorf("spike override not applied: %#v", ap)
	}
	if f.BaseRate != 0.02 {
		t.Errorf("unset params should keep defaults, got rate %v", f.BaseRate)
	}
}

func TestArrivalsByNameErrors(t *testing.T) {
	if _, err := ArrivalsByName("pareto", nil); err == nil {
		t.Error("unknown process accepted")
	} else if !strings.Contains(err.Error(), "known:") {
		t.Errorf("error does not list catalog: %v", err)
	}
	if _, err := ArrivalsByName("poisson", map[string]float64{"spike": 3}); err == nil {
		t.Error("unknown parameter accepted")
	} else if !strings.Contains(err.Error(), "accepted: rate") {
		t.Errorf("error does not list accepted params: %v", err)
	}
}

func TestClassByName(t *testing.T) {
	cases := []struct {
		in   string
		want Class
	}{
		{"Sci", ClassScientific},
		{"scientific", ClassScientific},
		{"SYN", ClassSynthetic},
		{"big-data", ClassBigData},
		{"bd", ClassBigData},
		{"gaming", ClassGaming},
		{"Ind", ClassIndustrial},
	}
	for _, c := range cases {
		got, err := ClassByName(c.in)
		if err != nil {
			t.Errorf("ClassByName(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ClassByName(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ClassByName("hpc"); err == nil {
		t.Error("unknown class accepted")
	}
}

// TestClassByNameRoundTrip pins that every class String() resolves back to
// itself, so reports and specs can use the same spelling.
func TestClassByNameRoundTrip(t *testing.T) {
	for _, c := range []Class{
		ClassSynthetic, ClassScientific, ClassComputerEngineering,
		ClassBusinessCritical, ClassBigData, ClassGaming, ClassIndustrial,
	} {
		got, err := ClassByName(c.String())
		if err != nil || got != c {
			t.Errorf("ClassByName(%q) = %v, %v; want %v", c.String(), got, err, c)
		}
	}
}

// TestTraceCloneIsolatesDeps pins that Clone deep-copies task dependency
// lists, so dep remapping on a clone cannot corrupt the original.
func TestTraceCloneIsolatesDeps(t *testing.T) {
	orig := &Trace{Jobs: []*Job{{
		ID: 1,
		Tasks: []Task{
			{ID: 1, JobID: 1, CPUs: 1, Runtime: 1},
			{ID: 2, JobID: 1, CPUs: 1, Runtime: 1, Deps: []int{1}},
		},
	}}}
	cp := orig.Clone()
	cp.Jobs[0].Tasks[1].Deps[0] = 99
	cp.Jobs[0].Submit = 123
	if orig.Jobs[0].Tasks[1].Deps[0] != 1 {
		t.Error("Clone shares Deps backing arrays with the original")
	}
	if orig.Jobs[0].Submit != 0 {
		t.Error("Clone shares Job structs with the original")
	}
}
