package workload

import (
	"fmt"
	"testing"
)

// BenchmarkPopulationStream measures steady-state job emission from a
// population source: the per-job cost must stay O(log clients) time and ~0
// allocs regardless of population size. Source construction (the O(clients)
// part) happens outside the timer.
func BenchmarkPopulationStream(b *testing.B) {
	for _, clients := range []int{10000, 100000, 1000000} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			pop := &Population{
				Clients: clients,
				Mix:     SingleClass(ClassSynthetic),
				Skew:    Skew{Kind: "zipf"},
				Seed:    1,
			}
			src, err := pop.Source()
			if err != nil {
				b.Fatal(err)
			}
			defer src.Close()
			// Warm the scratch buffers so the measured loop is steady state.
			for i := 0; i < 100; i++ {
				src.Next()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if src.Next() == nil {
					b.Fatal("stream ran dry")
				}
			}
		})
	}
}

// BenchmarkPopulationStreamSharded measures the sharded pipeline at a million
// clients, where generation parallelism matters.
func BenchmarkPopulationStreamSharded(b *testing.B) {
	pop := &Population{
		Clients: 1000000,
		Mix:     SingleClass(ClassSynthetic),
		Skew:    Skew{Kind: "zipf"},
		Seed:    1,
		Shards:  8,
	}
	src, err := pop.Source()
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < 2000; i++ {
		src.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if src.Next() == nil {
			b.Fatal("stream ran dry")
		}
	}
}
