package workload

import (
	"fmt"
	"sort"
	"strings"

	"atlarge/internal/sim"
)

// arrivalBuilder constructs one arrival-process family from named parameters.
type arrivalBuilder struct {
	// params maps accepted parameter names to their defaults.
	params map[string]float64
	build  func(p map[string]float64) ArrivalProcess
}

// arrivalBuilders is the string-keyed catalog of arrival processes. Every
// parameter is optional; defaults follow the calibrated generators above.
var arrivalBuilders = map[string]arrivalBuilder{
	"poisson": {
		params: map[string]float64{"rate": 0.05},
		build: func(p map[string]float64) ArrivalProcess {
			return PoissonArrivals{Rate: p["rate"]}
		},
	},
	"weibull": {
		params: map[string]float64{"scale": 25, "k": 0.7},
		build: func(p map[string]float64) ArrivalProcess {
			return WeibullArrivals{Scale: p["scale"], K: p["k"]}
		},
	},
	"diurnal": {
		params: map[string]float64{"rate": 0.05, "period": 86400, "amplitude": 0.8},
		build: func(p map[string]float64) ArrivalProcess {
			return DiurnalArrivals{BaseRate: p["rate"], Period: sim.Duration(p["period"]), Amplitude: p["amplitude"]}
		},
	},
	"flashcrowd": {
		params: map[string]float64{"rate": 0.02, "start": 2000, "spike": 30, "halflife": 500},
		build: func(p map[string]float64) ArrivalProcess {
			return FlashcrowdArrivals{BaseRate: p["rate"], StartAt: sim.Time(p["start"]), Spike: p["spike"], HalfLife: sim.Duration(p["halflife"])}
		},
	},
	"gamma": {
		params: map[string]float64{"rate": 0.05, "shape": 0.5},
		build: func(p map[string]float64) ArrivalProcess {
			return GammaArrivals{Rate: p["rate"], Shape: p["shape"]}
		},
	},
}

// ArrivalsByName builds the named arrival process. params overrides the
// family defaults; nil keeps every default. Unknown names and unknown
// parameter keys are errors that list the accepted values.
func ArrivalsByName(name string, params map[string]float64) (ArrivalProcess, error) {
	b, ok := arrivalBuilders[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("workload: unknown arrival process %q (known: %s)", name, strings.Join(ArrivalNames(), ", "))
	}
	resolved := make(map[string]float64, len(b.params))
	for k, v := range b.params {
		resolved[k] = v
	}
	for k, v := range params {
		if _, ok := b.params[strings.ToLower(k)]; !ok {
			return nil, fmt.Errorf("workload: arrival process %q has no parameter %q (accepted: %s)",
				name, k, strings.Join(arrivalParamNames(b), ", "))
		}
		resolved[strings.ToLower(k)] = v
	}
	proc := b.build(resolved)
	// Reject degenerate parameterizations here, at registry time, rather
	// than hanging the thinning loops (or emitting +Inf times) mid-run.
	if err := proc.Validate(); err != nil {
		return nil, err
	}
	return proc, nil
}

// ArrivalNames returns the arrival-process names in sorted order.
func ArrivalNames() []string {
	out := make([]string, 0, len(arrivalBuilders))
	for name := range arrivalBuilders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func arrivalParamNames(b arrivalBuilder) []string {
	out := make([]string, 0, len(b.params))
	for k := range b.params {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// classNames maps accepted spellings (lower-cased) to workload classes: the
// Table 9 acronyms plus the long names.
var classNames = map[string]Class{
	"syn":                  ClassSynthetic,
	"synthetic":            ClassSynthetic,
	"sci":                  ClassScientific,
	"scientific":           ClassScientific,
	"ce":                   ClassComputerEngineering,
	"computer-engineering": ClassComputerEngineering,
	"bc":                   ClassBusinessCritical,
	"business-critical":    ClassBusinessCritical,
	"bd":                   ClassBigData,
	"big-data":             ClassBigData,
	"g":                    ClassGaming,
	"gaming":               ClassGaming,
	"ind":                  ClassIndustrial,
	"industrial":           ClassIndustrial,
}

// ClassByName resolves a workload class from its Table 9 acronym or long
// name, case-insensitively.
func ClassByName(name string) (Class, error) {
	if c, ok := classNames[strings.ToLower(name)]; ok {
		return c, nil
	}
	return 0, fmt.Errorf("workload: unknown class %q (known: %s)", name, strings.Join(ClassNames(), ", "))
}

// ClassNames returns the accepted class spellings in sorted order.
func ClassNames() []string {
	out := make([]string, 0, len(classNames))
	for name := range classNames {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
