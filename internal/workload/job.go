// Package workload models the workloads that drive the datacenter, P2P,
// MMOG, and FaaS simulators: jobs, bags-of-tasks, workflows (DAGs), and the
// arrival processes that submit them.
//
// The generators cover the workload classes of the paper's Table 9
// (synthetic, scientific, computer-engineering, business-critical, big-data,
// gaming, industrial IoT) so that the portfolio-scheduling experiment can
// sweep the same workload × environment grid.
package workload

import (
	"fmt"
	"sort"

	"atlarge/internal/sim"
)

// Class identifies a workload family from Table 9 of the paper.
type Class int

// Workload classes. Values match the Table 9 acronyms.
const (
	ClassSynthetic           Class = iota + 1 // Syn
	ClassScientific                           // Sci
	ClassComputerEngineering                  // CE
	ClassBusinessCritical                     // BC
	ClassBigData                              // BD
	ClassGaming                               // G
	ClassIndustrial                           // Ind
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassSynthetic:
		return "Syn"
	case ClassScientific:
		return "Sci"
	case ClassComputerEngineering:
		return "CE"
	case ClassBusinessCritical:
		return "BC"
	case ClassBigData:
		return "BD"
	case ClassGaming:
		return "G"
	case ClassIndustrial:
		return "Ind"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Task is the unit of execution. A Task needs CPUs machine slots for
// Runtime virtual seconds.
type Task struct {
	ID      int
	JobID   int
	CPUs    int
	Runtime sim.Duration
	// RuntimeEstimate is the user- or predictor-provided runtime, used by
	// backfilling schedulers; it may be wrong (and for the big-data class it
	// deliberately is, to reproduce the Table 9 POSUM finding).
	RuntimeEstimate sim.Duration
	// Deps lists task IDs within the same job that must finish first.
	Deps []int
}

// Job is a set of tasks submitted together: a single task, a bag-of-tasks,
// or a workflow when dependencies are present.
type Job struct {
	ID       int
	Submit   sim.Time
	Tasks    []Task
	Class    Class
	Deadline sim.Duration // 0 means no deadline SLA; relative to Submit
}

// TotalWork returns the sum of CPU-seconds over all tasks.
func (j *Job) TotalWork() float64 {
	w := 0.0
	for _, t := range j.Tasks {
		w += float64(t.CPUs) * float64(t.Runtime)
	}
	return w
}

// MaxCPUs returns the largest per-task CPU requirement.
func (j *Job) MaxCPUs() int {
	m := 0
	for _, t := range j.Tasks {
		if t.CPUs > m {
			m = t.CPUs
		}
	}
	return m
}

// IsWorkflow reports whether any task has dependencies.
func (j *Job) IsWorkflow() bool {
	for _, t := range j.Tasks {
		if len(t.Deps) > 0 {
			return true
		}
	}
	return false
}

// CriticalPath returns the length, in virtual seconds, of the longest
// dependency chain (the lower bound on job makespan with infinite resources).
func (j *Job) CriticalPath() sim.Duration {
	memo := make(map[int]sim.Duration, len(j.Tasks))
	byID := make(map[int]*Task, len(j.Tasks))
	for i := range j.Tasks {
		byID[j.Tasks[i].ID] = &j.Tasks[i]
	}
	var finish func(id int) sim.Duration
	finish = func(id int) sim.Duration {
		if v, ok := memo[id]; ok {
			return v
		}
		t := byID[id]
		if t == nil {
			return 0
		}
		var start sim.Duration
		for _, d := range t.Deps {
			if f := finish(d); f > start {
				start = f
			}
		}
		v := start + t.Runtime
		memo[id] = v
		return v
	}
	var cp sim.Duration
	for _, t := range j.Tasks {
		if f := finish(t.ID); f > cp {
			cp = f
		}
	}
	return cp
}

// ValidateDAG checks that dependencies reference existing tasks and contain
// no cycles.
func (j *Job) ValidateDAG() error {
	byID := make(map[int]*Task, len(j.Tasks))
	for i := range j.Tasks {
		if _, dup := byID[j.Tasks[i].ID]; dup {
			return fmt.Errorf("workload: job %d: duplicate task id %d", j.ID, j.Tasks[i].ID)
		}
		byID[j.Tasks[i].ID] = &j.Tasks[i]
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int, len(j.Tasks))
	var visit func(id int) error
	visit = func(id int) error {
		switch color[id] {
		case gray:
			return fmt.Errorf("workload: job %d: dependency cycle through task %d", j.ID, id)
		case black:
			return nil
		}
		color[id] = gray
		t := byID[id]
		for _, d := range t.Deps {
			if _, ok := byID[d]; !ok {
				return fmt.Errorf("workload: job %d: task %d depends on missing task %d", j.ID, id, d)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		color[id] = black
		return nil
	}
	for _, t := range j.Tasks {
		if err := visit(t.ID); err != nil {
			return err
		}
	}
	return nil
}

// Clone deep-copies the job, its tasks, and their dependency lists. It is
// how a JobSource consumer retains a job past the next Next call.
func (j *Job) Clone() *Job {
	nj := *j
	nj.Tasks = make([]Task, len(j.Tasks))
	copy(nj.Tasks, j.Tasks)
	for ti := range nj.Tasks {
		if deps := nj.Tasks[ti].Deps; len(deps) > 0 {
			nj.Tasks[ti].Deps = append([]int(nil), deps...)
		} else {
			// Drop empty headers too: they may alias a source's dep arena.
			nj.Tasks[ti].Deps = nil
		}
	}
	return &nj
}

// Trace is an ordered collection of jobs, the interchange format between
// generators, schedulers, and trace I/O.
type Trace struct {
	Name string
	Jobs []*Job
}

// Clone deep-copies the trace (jobs, tasks, and task dependency lists), so
// runs that mutate job state — submission rescaling, dependency remapping,
// repeated simulations — cannot interfere.
func (tr *Trace) Clone() *Trace {
	cp := &Trace{Name: tr.Name, Jobs: make([]*Job, len(tr.Jobs))}
	for i, j := range tr.Jobs {
		cp.Jobs[i] = j.Clone()
	}
	return cp
}

// SortBySubmit orders jobs by submission time (stable).
func (tr *Trace) SortBySubmit() {
	sort.SliceStable(tr.Jobs, func(i, j int) bool { return tr.Jobs[i].Submit < tr.Jobs[j].Submit })
}

// TotalTasks returns the number of tasks over all jobs.
func (tr *Trace) TotalTasks() int {
	n := 0
	for _, j := range tr.Jobs {
		n += len(j.Tasks)
	}
	return n
}

// Span returns the submission span (last submit − first submit).
func (tr *Trace) Span() sim.Duration {
	if len(tr.Jobs) == 0 {
		return 0
	}
	first, last := tr.Jobs[0].Submit, tr.Jobs[0].Submit
	for _, j := range tr.Jobs {
		if j.Submit < first {
			first = j.Submit
		}
		if j.Submit > last {
			last = j.Submit
		}
	}
	return last - first
}

// Validate runs ValidateDAG over all jobs.
func (tr *Trace) Validate() error {
	for _, j := range tr.Jobs {
		if err := j.ValidateDAG(); err != nil {
			return err
		}
	}
	return nil
}
