package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"atlarge/internal/sim"
)

func TestJobTotalWorkAndMaxCPUs(t *testing.T) {
	j := &Job{Tasks: []Task{
		{ID: 1, CPUs: 2, Runtime: 10},
		{ID: 2, CPUs: 4, Runtime: 5},
	}}
	if got := j.TotalWork(); got != 40 {
		t.Errorf("TotalWork = %v, want 40", got)
	}
	if got := j.MaxCPUs(); got != 4 {
		t.Errorf("MaxCPUs = %v, want 4", got)
	}
}

func TestCriticalPath(t *testing.T) {
	// Diamond: 1 -> {2,3} -> 4 with runtimes 10, 20, 5, 1.
	j := &Job{Tasks: []Task{
		{ID: 1, Runtime: 10},
		{ID: 2, Runtime: 20, Deps: []int{1}},
		{ID: 3, Runtime: 5, Deps: []int{1}},
		{ID: 4, Runtime: 1, Deps: []int{2, 3}},
	}}
	if got := j.CriticalPath(); got != 31 {
		t.Errorf("CriticalPath = %v, want 31", got)
	}
	bag := &Job{Tasks: []Task{{ID: 1, Runtime: 7}, {ID: 2, Runtime: 3}}}
	if got := bag.CriticalPath(); got != 7 {
		t.Errorf("bag CriticalPath = %v, want 7 (longest task)", got)
	}
}

func TestIsWorkflow(t *testing.T) {
	bag := &Job{Tasks: []Task{{ID: 1}, {ID: 2}}}
	if bag.IsWorkflow() {
		t.Error("bag reported as workflow")
	}
	wf := &Job{Tasks: []Task{{ID: 1}, {ID: 2, Deps: []int{1}}}}
	if !wf.IsWorkflow() {
		t.Error("workflow not detected")
	}
}

func TestValidateDAG(t *testing.T) {
	tests := []struct {
		name    string
		tasks   []Task
		wantErr bool
	}{
		{"valid chain", []Task{{ID: 1}, {ID: 2, Deps: []int{1}}}, false},
		{"cycle", []Task{{ID: 1, Deps: []int{2}}, {ID: 2, Deps: []int{1}}}, true},
		{"self-cycle", []Task{{ID: 1, Deps: []int{1}}}, true},
		{"missing dep", []Task{{ID: 1, Deps: []int{99}}}, true},
		{"duplicate id", []Task{{ID: 1}, {ID: 1}}, true},
		{"empty", nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			j := &Job{ID: 1, Tasks: tt.tasks}
			err := j.ValidateDAG()
			if (err != nil) != tt.wantErr {
				t.Errorf("ValidateDAG = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTraceSortAndSpan(t *testing.T) {
	tr := &Trace{Jobs: []*Job{
		{ID: 1, Submit: 30},
		{ID: 2, Submit: 10},
		{ID: 3, Submit: 20},
	}}
	tr.SortBySubmit()
	if tr.Jobs[0].ID != 2 || tr.Jobs[2].ID != 1 {
		t.Errorf("sort order = %v,%v,%v", tr.Jobs[0].ID, tr.Jobs[1].ID, tr.Jobs[2].ID)
	}
	if got := tr.Span(); got != 20 {
		t.Errorf("Span = %v, want 20", got)
	}
	empty := &Trace{}
	if got := empty.Span(); got != 0 {
		t.Errorf("empty Span = %v, want 0", got)
	}
}

func TestPoissonArrivalsRate(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := PoissonArrivals{Rate: 0.5}
	times := p.Times(20000, r)
	if len(times) != 20000 {
		t.Fatalf("len = %d", len(times))
	}
	// Mean gap should be ~2s.
	gap := float64(times[len(times)-1]) / float64(len(times))
	if math.Abs(gap-2) > 0.1 {
		t.Errorf("mean gap = %v, want ~2", gap)
	}
}

func TestArrivalsNonDecreasingProperty(t *testing.T) {
	procs := []ArrivalProcess{
		PoissonArrivals{Rate: 1},
		WeibullArrivals{Scale: 1, K: 0.7},
		DiurnalArrivals{BaseRate: 1, Period: 100, Amplitude: 0.5},
		FlashcrowdArrivals{BaseRate: 1, StartAt: 10, Spike: 20, HalfLife: 5},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, p := range procs {
			times := p.Times(200, r)
			for i := 1; i < len(times); i++ {
				if times[i] < times[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFlashcrowdRateShape(t *testing.T) {
	f := FlashcrowdArrivals{BaseRate: 1, StartAt: 100, Spike: 50, HalfLife: 60}
	if got := f.RateAt(50); got != 1 {
		t.Errorf("pre-crowd rate = %v, want 1", got)
	}
	if got := f.RateAt(100); got != 50 {
		t.Errorf("peak rate = %v, want 50", got)
	}
	// One half-life later the surge is halved: 1 + 49/2 = 25.5.
	if got := f.RateAt(160); math.Abs(got-25.5) > 1e-9 {
		t.Errorf("rate after one half-life = %v, want 25.5", got)
	}
	// Eventually back near base.
	if got := f.RateAt(100000); got > 1.001 {
		t.Errorf("rate long after = %v, want ~1", got)
	}
}

func TestFlashcrowdArrivalsConcentration(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	f := FlashcrowdArrivals{BaseRate: 0.01, StartAt: 1000, Spike: 100, HalfLife: 100}
	times := f.Times(500, r)
	before, inBurst := 0, 0
	for _, tm := range times {
		switch {
		case tm < 1000:
			before++
		case tm <= 1500:
			inBurst++
		}
	}
	// Arrival rate inside the burst window should dwarf the pre-burst rate.
	rateBefore := float64(before) / 1000
	rateBurst := float64(inBurst) / 500
	if rateBurst < 5*rateBefore || inBurst == 0 {
		t.Errorf("burst rate %v not >> base rate %v (%d vs %d arrivals)", rateBurst, rateBefore, inBurst, before)
	}
}

func TestDiurnalArrivalsModulation(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	d := DiurnalArrivals{BaseRate: 1, Period: 1000, Amplitude: 0.9}
	times := d.Times(20000, r)
	// Count arrivals in the peak half-period vs trough half-period of each cycle.
	peak, trough := 0, 0
	for _, tm := range times {
		phase := math.Mod(float64(tm), 1000) / 1000
		if phase < 0.5 {
			peak++ // sin positive half
		} else {
			trough++
		}
	}
	if peak <= trough {
		t.Errorf("peak %d <= trough %d; diurnal modulation missing", peak, trough)
	}
}

func TestGeneratorProducesValidTraces(t *testing.T) {
	classes := []Class{
		ClassSynthetic, ClassScientific, ClassComputerEngineering,
		ClassBusinessCritical, ClassBigData, ClassGaming, ClassIndustrial,
	}
	for _, c := range classes {
		t.Run(c.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(1))
			tr := StandardGenerator(c).Generate(100, r)
			if len(tr.Jobs) != 100 {
				t.Fatalf("jobs = %d", len(tr.Jobs))
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			for _, j := range tr.Jobs {
				if j.Class != c {
					t.Fatalf("job class = %v, want %v", j.Class, c)
				}
				for _, task := range j.Tasks {
					if task.Runtime <= 0 || task.CPUs < 1 || task.RuntimeEstimate <= 0 {
						t.Fatalf("invalid task %+v", task)
					}
				}
			}
		})
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g := StandardGenerator(ClassScientific)
	a := g.Generate(50, rand.New(rand.NewSource(7)))
	b := g.Generate(50, rand.New(rand.NewSource(7)))
	for i := range a.Jobs {
		if a.Jobs[i].Submit != b.Jobs[i].Submit || len(a.Jobs[i].Tasks) != len(b.Jobs[i].Tasks) {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
}

func TestScientificWorkloadIsWorkflowHeavy(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr := StandardGenerator(ClassScientific).Generate(200, r)
	wf := 0
	for _, j := range tr.Jobs {
		if j.IsWorkflow() {
			wf++
		}
	}
	if float64(wf)/200 < 0.4 {
		t.Errorf("workflow fraction = %v, want >= 0.4", float64(wf)/200)
	}
}

func TestBigDataEstimatesAreNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr := StandardGenerator(ClassBigData).Generate(50, r)
	var relErr []float64
	for _, j := range tr.Jobs {
		for _, task := range j.Tasks {
			relErr = append(relErr, math.Abs(float64(task.RuntimeEstimate-task.Runtime))/float64(task.Runtime))
		}
	}
	mean := 0.0
	for _, e := range relErr {
		mean += e
	}
	mean /= float64(len(relErr))
	if mean < 0.5 {
		t.Errorf("big-data mean relative estimate error = %v, want >= 0.5", mean)
	}
}

func TestClassString(t *testing.T) {
	if ClassBigData.String() != "BD" || ClassGaming.String() != "G" {
		t.Error("class String() mismatch")
	}
	if Class(99).String() != "Class(99)" {
		t.Errorf("unknown class = %q", Class(99).String())
	}
}

func TestDeadlinesAssigned(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	tr := StandardGenerator(ClassIndustrial).Generate(30, r)
	for _, j := range tr.Jobs {
		if j.Deadline <= 0 {
			t.Fatalf("job %d missing deadline", j.ID)
		}
		if j.Deadline < j.CriticalPath() {
			t.Fatalf("job %d deadline %v below critical path %v", j.ID, j.Deadline, j.CriticalPath())
		}
	}
}

func TestChainIntoLevelsKeepsAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		job := &Job{ID: 1}
		n := 5 + r.Intn(30)
		for i := 1; i <= n; i++ {
			job.Tasks = append(job.Tasks, Task{ID: i, Runtime: sim.Duration(1 + r.Float64())})
		}
		chainIntoLevels(job, r)
		return job.ValidateDAG() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
