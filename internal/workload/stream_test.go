package workload

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"atlarge/internal/sim"
)

// legacyGenerate is a frozen copy of the eager pre-streaming
// Generator.Generate. The streaming rewrite (Source + fillJob + scratch
// buffers) must stay draw-for-draw and byte-for-byte identical to it; this
// reference pins that, so the repo's goldens cannot drift silently.
func legacyGenerate(g Generator, n int, r *rand.Rand) *Trace {
	times := g.Arrivals.Times(n, r)
	tr := &Trace{Name: fmt.Sprintf("%s-%s", g.Class, g.Arrivals)}
	taskID := 0
	for i := 0; i < n; i++ {
		job := &Job{ID: i + 1, Submit: times[i], Class: g.Class}
		width := int(g.TasksPerJob.Sample(r))
		if width < 1 {
			width = 1
		}
		for w := 0; w < width; w++ {
			taskID++
			rt := sim.Duration(g.Runtime.Sample(r))
			if rt <= 0 {
				rt = 0.001
			}
			cpus := int(g.TaskCPUs.Sample(r))
			if cpus < 1 {
				cpus = 1
			}
			est := rt
			if g.EstimateNoise > 0 {
				est = rt * sim.Duration(1+g.EstimateNoise*(2*r.Float64()-1))
				if est <= 0 {
					est = 0.001
				}
			}
			job.Tasks = append(job.Tasks, Task{
				ID:              taskID,
				JobID:           job.ID,
				CPUs:            cpus,
				Runtime:         rt,
				RuntimeEstimate: est,
			})
		}
		if g.WorkflowFraction > 0 && r.Float64() < g.WorkflowFraction && width > 2 {
			legacyChainIntoLevels(job, r)
		}
		if g.DeadlineFactor > 0 {
			job.Deadline = sim.Duration(g.DeadlineFactor) * job.CriticalPath()
		}
		tr.Jobs = append(tr.Jobs, job)
	}
	return tr
}

// legacyChainIntoLevels is the frozen map-and-slices form of
// chainIntoLevels; the allocation-free rewrite must consume the RNG
// identically and emit identical deps.
func legacyChainIntoLevels(job *Job, r *rand.Rand) {
	levels := 2 + r.Intn(3)
	if levels > len(job.Tasks) {
		levels = len(job.Tasks)
	}
	perLevel := len(job.Tasks) / levels
	if perLevel == 0 {
		perLevel = 1
	}
	levelOf := make([]int, len(job.Tasks))
	for i := range job.Tasks {
		l := i / perLevel
		if l >= levels {
			l = levels - 1
		}
		levelOf[i] = l
	}
	byLevel := make([][]int, levels)
	for i, l := range levelOf {
		byLevel[l] = append(byLevel[l], i)
	}
	for i := range job.Tasks {
		l := levelOf[i]
		if l == 0 {
			continue
		}
		prev := byLevel[l-1]
		nDeps := 1
		if len(prev) > 1 && r.Float64() < 0.5 {
			nDeps = 2
		}
		seen := map[int]bool{}
		for d := 0; d < nDeps; d++ {
			p := prev[r.Intn(len(prev))]
			if seen[p] {
				continue
			}
			seen[p] = true
			job.Tasks[i].Deps = append(job.Tasks[i].Deps, job.Tasks[p].ID)
		}
	}
}

func diffTraces(t *testing.T, want, got *Trace) {
	t.Helper()
	if want.Name != got.Name {
		t.Errorf("Name = %q, want %q", got.Name, want.Name)
	}
	if len(want.Jobs) != len(got.Jobs) {
		t.Fatalf("len(Jobs) = %d, want %d", len(got.Jobs), len(want.Jobs))
	}
	for i := range want.Jobs {
		if !reflect.DeepEqual(want.Jobs[i], got.Jobs[i]) {
			t.Fatalf("job %d differs:\n got %+v\nwant %+v", i, got.Jobs[i], want.Jobs[i])
		}
	}
}

// TestGenerateMatchesLegacy pins the streaming refactor byte-for-byte against
// the frozen eager implementation, for every workload class and several seeds.
func TestGenerateMatchesLegacy(t *testing.T) {
	classes := []Class{
		ClassSynthetic, ClassScientific, ClassComputerEngineering,
		ClassBusinessCritical, ClassBigData, ClassGaming, ClassIndustrial,
	}
	for _, c := range classes {
		for seed := int64(1); seed <= 3; seed++ {
			g := StandardGenerator(c)
			want := legacyGenerate(g, 120, rand.New(rand.NewSource(seed)))
			got := g.Generate(120, rand.New(rand.NewSource(seed)))
			t.Run(fmt.Sprintf("%s/seed=%d", c, seed), func(t *testing.T) {
				diffTraces(t, want, got)
			})
		}
	}
}

// TestSourceScratchReuse pins the ownership contract: the job returned by a
// generator source is invalidated by the following Next, and Clone detaches
// it.
func TestSourceScratchReuse(t *testing.T) {
	g := StandardGenerator(ClassScientific)
	src := g.Source(10, rand.New(rand.NewSource(1)))
	defer src.Close()
	first := src.Next()
	if first == nil {
		t.Fatal("empty source")
	}
	kept := first.Clone()
	second := src.Next()
	if second != first {
		t.Fatalf("generator source should reuse its scratch job across Next calls")
	}
	if kept.ID == second.ID {
		t.Fatalf("clone aliases scratch: ID %d overwritten", kept.ID)
	}
	for _, task := range kept.Tasks {
		if task.JobID != kept.ID {
			t.Fatalf("cloned task JobID %d, want %d", task.JobID, kept.ID)
		}
	}
}

func TestTakeCapsStream(t *testing.T) {
	pop := &Population{Clients: 4, Mix: SingleClass(ClassSynthetic), Seed: 1}
	src, err := pop.Source()
	if err != nil {
		t.Fatal(err)
	}
	tr := Collect(Take(src, 7), 0)
	src.Close()
	if len(tr.Jobs) != 7 {
		t.Fatalf("Take(7) yielded %d jobs", len(tr.Jobs))
	}
}

func TestTraceSourceRoundTrip(t *testing.T) {
	g := StandardGenerator(ClassSynthetic)
	tr := g.Generate(25, rand.New(rand.NewSource(9)))
	got := Collect(tr.Source(), 0)
	got.Name = tr.Name // trace name survives; jobs must match exactly
	diffTraces(t, tr, got)
}

// TestPopulationSingleClientMatchesCursor checks the merge machinery is a
// no-op for one client: the stream must equal a hand-rolled cursor over that
// client's RNG (DeriveSeed(seed, 0), class fixed, no skew draw).
func TestPopulationSingleClientMatchesCursor(t *testing.T) {
	const n, seed = 200, int64(42)
	g := StandardGenerator(ClassScientific)
	state := uint64(DeriveSeed(seed, 0))
	r := rand.New(&clientSource{state: &state})
	var (
		sc     genScratch
		job    Job
		want   []*Job
		taskID int
	)
	next := g.Arrivals.NextAfter(0, 1, r)
	for i := 0; i < n; i++ {
		job.Submit = next
		job.Class = g.Class
		g.fillJob(&job, r, &sc)
		next = g.Arrivals.NextAfter(next, 1, r)
		emitAs(&job, i+1, taskID)
		taskID += len(job.Tasks)
		want = append(want, job.Clone())
	}

	pop := &Population{Clients: 1, Mix: SingleClass(ClassScientific), RateScale: 1, Seed: seed}
	src, err := pop.Source()
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(src, n)
	src.Close()
	diffTraces(t, &Trace{Name: got.Name, Jobs: want}, got)
}

func testPopulation(skew string) *Population {
	return &Population{
		Clients: 240,
		Mix: []ClassShare{
			{Class: ClassSynthetic, Weight: 3},
			{Class: ClassScientific, Weight: 1},
			{Class: ClassGaming, Weight: 2},
		},
		Skew: Skew{Kind: skew},
		Seed: 7,
	}
}

// TestPopulationShardIndependence is the determinism contract: the merged
// stream must be byte-identical whether generated inline or on any number of
// shard goroutines.
func TestPopulationShardIndependence(t *testing.T) {
	for _, skew := range []string{"none", "zipf", "lognormal"} {
		t.Run(skew, func(t *testing.T) {
			collect := func(shards int) *Trace {
				pop := testPopulation(skew)
				pop.Shards = shards
				src, err := pop.Source()
				if err != nil {
					t.Fatal(err)
				}
				defer src.Close()
				return Collect(src, 2000)
			}
			want := collect(0)
			for _, shards := range []int{1, 2, 5, 8} {
				got := collect(shards)
				if len(got.Jobs) != len(want.Jobs) {
					t.Fatalf("shards=%d: %d jobs, want %d", shards, len(got.Jobs), len(want.Jobs))
				}
				for i := range want.Jobs {
					if !reflect.DeepEqual(want.Jobs[i], got.Jobs[i]) {
						t.Fatalf("shards=%d: job %d differs:\n got %+v\nwant %+v",
							shards, i, got.Jobs[i], want.Jobs[i])
					}
				}
			}
		})
	}
}

// TestPopulationStreamWellFormed checks stream invariants across skews and an
// arrival override: non-decreasing submits, dense job IDs, globally unique
// contiguous task IDs, valid DAGs, classes drawn from the mix.
func TestPopulationStreamWellFormed(t *testing.T) {
	cases := []struct {
		name string
		pop  *Population
	}{
		{"zipf", testPopulation("zipf")},
		{"lognormal", testPopulation("lognormal")},
		{"gamma-arrivals", &Population{
			Clients: 50,
			Mix:     SingleClass(ClassSynthetic),
			Arrival: GammaArrivals{Rate: 0.05, Shape: 0.5},
			Seed:    3,
			Shards:  4,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, err := tc.pop.Source()
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			inMix := map[Class]bool{}
			for _, m := range tc.pop.Mix {
				inMix[m.Class] = true
			}
			var last sim.Time
			nextTaskID := 1
			for i := 1; i <= 1500; i++ {
				j := src.Next()
				if j == nil {
					t.Fatal("population stream ran dry")
				}
				if j.ID != i {
					t.Fatalf("job ID %d, want %d", j.ID, i)
				}
				if j.Submit < last {
					t.Fatalf("job %d: submit %v < previous %v", i, j.Submit, last)
				}
				last = j.Submit
				if !inMix[j.Class] {
					t.Fatalf("job %d: class %v not in mix", i, j.Class)
				}
				if err := j.ValidateDAG(); err != nil {
					t.Fatalf("job %d: %v", i, err)
				}
				for _, task := range j.Tasks {
					if task.ID != nextTaskID {
						t.Fatalf("job %d: task ID %d, want %d", i, task.ID, nextTaskID)
					}
					if task.JobID != j.ID {
						t.Fatalf("job %d: task JobID %d", i, task.JobID)
					}
					nextTaskID++
				}
			}
		})
	}
}

// TestPopulationSkewSpreadsRates checks Zipf skew actually concentrates load:
// with S > 1, client 0 must submit far more jobs than the median client.
func TestPopulationSkewSpreadsRates(t *testing.T) {
	pop := &Population{
		Clients: 100,
		Mix:     SingleClass(ClassSynthetic),
		Skew:    Skew{Kind: "zipf", S: 1.2},
		Seed:    11,
	}
	src, err := pop.Source()
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// Count per-client emissions via the merge core directly.
	ps := src.(*populationSource)
	counts := make([]int, pop.Clients)
	for i := 0; i < 20000; i++ {
		_, client := ps.core.next()
		counts[client]++
	}
	if counts[0] < 5*counts[50] {
		t.Errorf("zipf skew too flat: client0=%d client50=%d", counts[0], counts[50])
	}
}

// TestShardedSourceCloseReleasesGoroutines is the leak check for abandoned
// sharded sources: Close must terminate all shard goroutines even while they
// are blocked producing.
func TestShardedSourceCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for iter := 0; iter < 3; iter++ {
		pop := testPopulation("zipf")
		pop.Shards = 6
		src, err := pop.Source()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			src.Next()
		}
		src.Close()
		src.Close() // idempotent
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after Close", before, runtime.NumGoroutine())
}

func TestPopulationValidate(t *testing.T) {
	base := func() *Population {
		return &Population{Clients: 10, Mix: SingleClass(ClassSynthetic), Seed: 1}
	}
	cases := []struct {
		name   string
		mutate func(*Population)
	}{
		{"zero clients", func(p *Population) { p.Clients = 0 }},
		{"empty mix", func(p *Population) { p.Mix = nil }},
		{"unknown class", func(p *Population) { p.Mix = []ClassShare{{Class: Class(99), Weight: 1}} }},
		{"zero weight", func(p *Population) { p.Mix[0].Weight = 0 }},
		{"negative rate scale", func(p *Population) { p.RateScale = -1 }},
		{"negative shards", func(p *Population) { p.Shards = -1 }},
		{"unknown skew", func(p *Population) { p.Skew.Kind = "pareto" }},
		{"negative zipf s", func(p *Population) { p.Skew = Skew{Kind: "zipf", S: -2} }},
		{"bad arrival", func(p *Population) { p.Arrival = PoissonArrivals{Rate: 0} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			tc.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted an invalid population")
			}
			if _, err := p.Source(); err == nil {
				t.Error("Source accepted an invalid population")
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Errorf("valid population rejected: %v", err)
	}
}

func TestParseSkew(t *testing.T) {
	for _, name := range []string{"", "none", "zipf", "Lognormal", "ZIPF"} {
		if _, err := ParseSkew(name); err != nil {
			t.Errorf("ParseSkew(%q): %v", name, err)
		}
	}
	if _, err := ParseSkew("pareto"); err == nil {
		t.Error("unknown skew accepted")
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for base := int64(0); base < 4; base++ {
		for c := 0; c < 1000; c++ {
			s := DeriveSeed(base, c)
			if seen[s] {
				t.Fatalf("DeriveSeed collision at base=%d client=%d", base, c)
			}
			seen[s] = true
		}
	}
}
