package workload

import (
	"math"
	"math/rand"

	"atlarge/internal/sim"
)

// ArrivalProcess produces a sequence of submission times.
type ArrivalProcess interface {
	// Times returns n arrival times starting at 0, non-decreasing.
	Times(n int, r *rand.Rand) []sim.Time
	// String describes the process for reports.
	String() string
}

// PoissonArrivals is the classical memoryless arrival process with the given
// rate (events per virtual second). The paper notes that the seminal
// Pouwelse et al. BitTorrent study debunked Poisson arrivals for P2P; we keep
// it as the baseline to contrast with bursty processes.
type PoissonArrivals struct{ Rate float64 }

// Times implements ArrivalProcess.
func (p PoissonArrivals) Times(n int, r *rand.Rand) []sim.Time {
	out := make([]sim.Time, n)
	t := sim.Time(0)
	for i := 0; i < n; i++ {
		t += sim.Duration(r.ExpFloat64() / p.Rate)
		out[i] = t
	}
	return out
}

func (p PoissonArrivals) String() string { return "poisson" }

// WeibullArrivals draws inter-arrival gaps from a Weibull distribution;
// shape K < 1 yields the bursty arrivals observed in grid and P2P traces.
type WeibullArrivals struct {
	Scale float64
	K     float64
}

// Times implements ArrivalProcess.
func (w WeibullArrivals) Times(n int, r *rand.Rand) []sim.Time {
	d := sim.Weibull{Lambda: w.Scale, K: w.K}
	out := make([]sim.Time, n)
	t := sim.Time(0)
	for i := 0; i < n; i++ {
		t += sim.Duration(d.Sample(r))
		out[i] = t
	}
	return out
}

func (w WeibullArrivals) String() string { return "weibull" }

// DiurnalArrivals modulates a base Poisson rate with a day/night sinusoid of
// the given period and relative amplitude in [0,1). It reproduces the
// short-term dynamics of MMOG and business-critical workloads.
type DiurnalArrivals struct {
	BaseRate  float64
	Period    sim.Duration
	Amplitude float64
}

// Times implements ArrivalProcess via thinning of a dominating Poisson
// process.
func (d DiurnalArrivals) Times(n int, r *rand.Rand) []sim.Time {
	maxRate := d.BaseRate * (1 + d.Amplitude)
	out := make([]sim.Time, 0, n)
	t := sim.Time(0)
	for len(out) < n {
		t += sim.Duration(r.ExpFloat64() / maxRate)
		phase := 2 * math.Pi * float64(t) / float64(d.Period)
		rate := d.BaseRate * (1 + d.Amplitude*math.Sin(phase))
		if r.Float64() < rate/maxRate {
			out = append(out, t)
		}
	}
	return out
}

func (d DiurnalArrivals) String() string { return "diurnal" }

// FlashcrowdArrivals superimposes a sudden burst on a base Poisson process:
// at StartAt, the rate multiplies by Spike and then decays exponentially with
// the given half-life. This is the arrival model behind the paper's
// P2P flashcrowd studies (Zhang et al. 2011).
type FlashcrowdArrivals struct {
	BaseRate float64
	StartAt  sim.Time
	Spike    float64 // multiplicative surge, e.g. 50
	HalfLife sim.Duration
}

// Times implements ArrivalProcess via thinning.
func (f FlashcrowdArrivals) Times(n int, r *rand.Rand) []sim.Time {
	maxRate := f.BaseRate * f.Spike
	out := make([]sim.Time, 0, n)
	t := sim.Time(0)
	for len(out) < n {
		t += sim.Duration(r.ExpFloat64() / maxRate)
		rate := f.RateAt(t)
		if r.Float64() < rate/maxRate {
			out = append(out, t)
		}
	}
	return out
}

// RateAt returns the instantaneous arrival rate at time t.
func (f FlashcrowdArrivals) RateAt(t sim.Time) float64 {
	if t < f.StartAt {
		return f.BaseRate
	}
	elapsed := float64(t - f.StartAt)
	decay := math.Exp2(-elapsed / float64(f.HalfLife))
	return f.BaseRate * (1 + (f.Spike-1)*decay)
}

func (f FlashcrowdArrivals) String() string { return "flashcrowd" }
