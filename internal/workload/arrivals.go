package workload

import (
	"fmt"
	"math"
	"math/rand"

	"atlarge/internal/sim"
)

// ArrivalProcess produces a sequence of submission times.
//
// Every process is defined incrementally: NextAfter draws the next arrival
// strictly after a given time using O(1) state, which is what lets a
// Population hold one cursor per client instead of a materialized slice per
// client. Times is the eager form and is defined as n repeated NextAfter
// calls, so the two are draw-for-draw identical on the same RNG.
type ArrivalProcess interface {
	// Times returns n arrival times starting at 0, non-decreasing.
	Times(n int, r *rand.Rand) []sim.Time
	// NextAfter returns the next arrival after time t for this process with
	// its rate scaled by mult (> 0). mult scales the whole intensity
	// function, so thinning acceptance ratios are unchanged and mult = 1
	// reproduces Times draw-for-draw.
	NextAfter(t sim.Time, mult float64, r *rand.Rand) sim.Time
	// Validate rejects parameterizations that would stall or hang
	// generation (non-positive rates, scales, periods, ...).
	Validate() error
	// String describes the process for reports.
	String() string
}

// times implements Times for any process in terms of NextAfter.
func times(p ArrivalProcess, n int, r *rand.Rand) []sim.Time {
	out := make([]sim.Time, n)
	t := sim.Time(0)
	for i := range out {
		t = p.NextAfter(t, 1, r)
		out[i] = t
	}
	return out
}

// positive reports whether v is a positive finite number; the !(v > 0) form
// also catches NaN.
func positive(v float64) bool { return v > 0 && !math.IsInf(v, 1) }

// PoissonArrivals is the classical memoryless arrival process with the given
// rate (events per virtual second). The paper notes that the seminal
// Pouwelse et al. BitTorrent study debunked Poisson arrivals for P2P; we keep
// it as the baseline to contrast with bursty processes.
type PoissonArrivals struct{ Rate float64 }

// Times implements ArrivalProcess.
func (p PoissonArrivals) Times(n int, r *rand.Rand) []sim.Time { return times(p, n, r) }

// NextAfter implements ArrivalProcess.
func (p PoissonArrivals) NextAfter(t sim.Time, mult float64, r *rand.Rand) sim.Time {
	return t + sim.Duration(r.ExpFloat64()/(p.Rate*mult))
}

// Validate implements ArrivalProcess.
func (p PoissonArrivals) Validate() error {
	if !positive(p.Rate) {
		return fmt.Errorf("workload: poisson arrivals need rate > 0, got %v", p.Rate)
	}
	return nil
}

func (p PoissonArrivals) String() string { return "poisson" }

// WeibullArrivals draws inter-arrival gaps from a Weibull distribution;
// shape K < 1 yields the bursty arrivals observed in grid and P2P traces.
type WeibullArrivals struct {
	Scale float64
	K     float64
}

// Times implements ArrivalProcess.
func (w WeibullArrivals) Times(n int, r *rand.Rand) []sim.Time { return times(w, n, r) }

// NextAfter implements ArrivalProcess. Scaling the rate by mult divides the
// Weibull scale parameter, leaving the shape (burstiness) untouched.
func (w WeibullArrivals) NextAfter(t sim.Time, mult float64, r *rand.Rand) sim.Time {
	d := sim.Weibull{Lambda: w.Scale / mult, K: w.K}
	return t + sim.Duration(d.Sample(r))
}

// Validate implements ArrivalProcess.
func (w WeibullArrivals) Validate() error {
	if !positive(w.Scale) {
		return fmt.Errorf("workload: weibull arrivals need scale > 0, got %v", w.Scale)
	}
	if !positive(w.K) {
		return fmt.Errorf("workload: weibull arrivals need k > 0, got %v", w.K)
	}
	return nil
}

func (w WeibullArrivals) String() string { return "weibull" }

// GammaArrivals draws inter-arrival gaps from a Gamma distribution with unit
// mean 1/Rate: Shape < 1 gives over-dispersed, bursty arrivals (CV > 1),
// Shape = 1 degenerates to Poisson, Shape > 1 is smoother than Poisson. This
// is the bursty renewal process used by ServeGen-style client models.
type GammaArrivals struct {
	Rate  float64 // mean arrival rate (events per virtual second)
	Shape float64 // Gamma shape; < 1 bursty, 1 Poisson, > 1 regular
}

// Times implements ArrivalProcess.
func (g GammaArrivals) Times(n int, r *rand.Rand) []sim.Time { return times(g, n, r) }

// NextAfter implements ArrivalProcess. The scale is Shape/(Rate·mult) so the
// mean gap is 1/(Rate·mult) for any shape.
func (g GammaArrivals) NextAfter(t sim.Time, mult float64, r *rand.Rand) sim.Time {
	d := sim.Gamma{Shape: g.Shape, Scale: 1 / (g.Shape * g.Rate * mult)}
	return t + sim.Duration(d.Sample(r))
}

// Validate implements ArrivalProcess.
func (g GammaArrivals) Validate() error {
	if !positive(g.Rate) {
		return fmt.Errorf("workload: gamma arrivals need rate > 0, got %v", g.Rate)
	}
	if !positive(g.Shape) {
		return fmt.Errorf("workload: gamma arrivals need shape > 0, got %v", g.Shape)
	}
	return nil
}

func (g GammaArrivals) String() string { return "gamma" }

// DiurnalArrivals modulates a base Poisson rate with a day/night sinusoid of
// the given period and relative amplitude in [0,1). It reproduces the
// short-term dynamics of MMOG and business-critical workloads.
type DiurnalArrivals struct {
	BaseRate  float64
	Period    sim.Duration
	Amplitude float64
}

// Times implements ArrivalProcess via thinning of a dominating Poisson
// process.
func (d DiurnalArrivals) Times(n int, r *rand.Rand) []sim.Time { return times(d, n, r) }

// NextAfter implements ArrivalProcess. mult scales both the instantaneous
// and the dominating rate, so the acceptance ratio — and hence the expected
// number of thinning iterations — is independent of mult.
func (d DiurnalArrivals) NextAfter(t sim.Time, mult float64, r *rand.Rand) sim.Time {
	maxRate := d.BaseRate * mult * (1 + d.Amplitude)
	for {
		t += sim.Duration(r.ExpFloat64() / maxRate)
		phase := 2 * math.Pi * float64(t) / float64(d.Period)
		rate := d.BaseRate * mult * (1 + d.Amplitude*math.Sin(phase))
		if r.Float64() < rate/maxRate {
			return t
		}
	}
}

// Validate implements ArrivalProcess.
func (d DiurnalArrivals) Validate() error {
	if !positive(d.BaseRate) {
		return fmt.Errorf("workload: diurnal arrivals need rate > 0, got %v", d.BaseRate)
	}
	if !positive(float64(d.Period)) {
		return fmt.Errorf("workload: diurnal arrivals need period > 0, got %v", d.Period)
	}
	if d.Amplitude < 0 || d.Amplitude >= 1 || math.IsNaN(d.Amplitude) {
		return fmt.Errorf("workload: diurnal arrivals need amplitude in [0,1), got %v", d.Amplitude)
	}
	return nil
}

func (d DiurnalArrivals) String() string { return "diurnal" }

// FlashcrowdArrivals superimposes a sudden burst on a base Poisson process:
// at StartAt, the rate multiplies by Spike and then decays exponentially with
// the given half-life. This is the arrival model behind the paper's
// P2P flashcrowd studies (Zhang et al. 2011).
type FlashcrowdArrivals struct {
	BaseRate float64
	StartAt  sim.Time
	Spike    float64 // multiplicative surge, e.g. 50
	HalfLife sim.Duration
}

// Times implements ArrivalProcess via thinning.
func (f FlashcrowdArrivals) Times(n int, r *rand.Rand) []sim.Time { return times(f, n, r) }

// NextAfter implements ArrivalProcess.
func (f FlashcrowdArrivals) NextAfter(t sim.Time, mult float64, r *rand.Rand) sim.Time {
	maxRate := f.BaseRate * mult * f.Spike
	for {
		t += sim.Duration(r.ExpFloat64() / maxRate)
		rate := mult * f.RateAt(t)
		if r.Float64() < rate/maxRate {
			return t
		}
	}
}

// RateAt returns the instantaneous arrival rate at time t.
func (f FlashcrowdArrivals) RateAt(t sim.Time) float64 {
	if t < f.StartAt {
		return f.BaseRate
	}
	elapsed := float64(t - f.StartAt)
	decay := math.Exp2(-elapsed / float64(f.HalfLife))
	return f.BaseRate * (1 + (f.Spike-1)*decay)
}

// Validate implements ArrivalProcess.
func (f FlashcrowdArrivals) Validate() error {
	if !positive(f.BaseRate) {
		return fmt.Errorf("workload: flashcrowd arrivals need rate > 0, got %v", f.BaseRate)
	}
	if f.Spike < 1 || math.IsInf(f.Spike, 1) || math.IsNaN(f.Spike) {
		return fmt.Errorf("workload: flashcrowd arrivals need spike >= 1, got %v", f.Spike)
	}
	if !positive(float64(f.HalfLife)) {
		return fmt.Errorf("workload: flashcrowd arrivals need halflife > 0, got %v", f.HalfLife)
	}
	if f.StartAt < 0 || math.IsNaN(float64(f.StartAt)) {
		return fmt.Errorf("workload: flashcrowd arrivals need start >= 0, got %v", f.StartAt)
	}
	return nil
}

func (f FlashcrowdArrivals) String() string { return "flashcrowd" }
