package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"atlarge/internal/exec"
)

// Dispatch timing defaults.
const (
	// DefaultLease bounds the silence a dispatcher tolerates on a claim
	// stream before abandoning it and re-dispatching the unsettled tasks.
	DefaultLease = 15 * time.Second
	// defaultWorkerFailures is how many consecutive claim failures retire a
	// worker from the dispatch.
	defaultWorkerFailures = 3
	// claimsPerWorker sets the default claim granularity: enough claims per
	// worker that losing one re-runs a fraction of the sweep, few enough
	// that per-claim overhead (plan rebuild, HTTP round-trip) stays noise.
	claimsPerWorker = 4
)

// DispatchOptions tunes one dispatcher.
type DispatchOptions struct {
	// Job is the re-creatable work description sent with every claim.
	Job Job
	// Lease bounds per-line silence on claim streams; 0 means DefaultLease.
	Lease time.Duration
	// Chunk is the task-range size per claim; 0 picks
	// ceil(tasks / (workers × claimsPerWorker)).
	Chunk int
	// Parallel hints each worker's local pool size; 0 defers to the worker.
	Parallel int
	// Stats, when non-nil, receives the distributed-layer counters (remote
	// tasks in flight, re-dispatches, per-worker completions).
	Stats *Stats
	// MaxWorkerFailures retires a worker after that many consecutive failed
	// claims; 0 means defaultWorkerFailures.
	MaxWorkerFailures int
}

// Dispatcher executes plans across remote workers. Its Stream method has the
// executor seam's shape (exec.StreamFunc), so it substitutes for exec.Stream
// under any positional collector: one event per task, indexed by plan
// position, in completion order.
//
// Execution: tasks not served by the plan's Cache are chunked into
// contiguous ranges and queued; each live worker loops claiming ranges and
// streaming results back. A failed claim (broken stream, lease expiry,
// protocol violation) re-queues exactly the tasks the dispatcher has not
// seen — completed work never re-runs, because re-claims carry the settled
// indices in their skip set — and a worker that fails repeatedly is retired.
// If every worker is retired with tasks outstanding, those tasks settle with
// an error event each; a cancelled context settles them as skips, matching
// exec.Stream's contract.
type Dispatcher[R any] struct {
	clients []*Client
	opt     DispatchOptions
}

// NewDispatcher wires a dispatcher over already-dialed workers.
func NewDispatcher[R any](clients []*Client, opt DispatchOptions) (*Dispatcher[R], error) {
	if len(clients) == 0 {
		return nil, errors.New("dist: dispatcher needs at least one worker")
	}
	if opt.Lease <= 0 {
		opt.Lease = DefaultLease
	}
	if opt.MaxWorkerFailures <= 0 {
		opt.MaxWorkerFailures = defaultWorkerFailures
	}
	return &Dispatcher[R]{clients: clients, opt: opt}, nil
}

// claimRange is one queued unit of dispatch: the plan tasks [start, end),
// minus whatever is already settled at claim time.
type claimRange struct {
	start, end int
}

// coord is the shared dispatch state: the settled set, the claim queue, and
// the completion signal. The queue is a channel with capacity for every
// initial claim; a range is re-queued at most once per pop (with its settled
// tasks excluded), so occupancy never exceeds the initial claim count.
type coord struct {
	mu        sync.Mutex
	settled   []bool
	remaining int

	queue chan claimRange
	done  chan struct{} // closed when remaining hits 0
}

// trySettle marks task i settled; false if it already was. Closing done on
// the last task releases workers blocked on an empty queue.
func (c *coord) trySettle(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.settled[i] {
		return false
	}
	c.settled[i] = true
	c.remaining--
	if c.remaining == 0 {
		close(c.done)
	}
	return true
}

// pendingIn snapshots the unsettled tasks of [start, end): the indices to
// run and the settled ones as the claim's skip set.
func (c *coord) pendingIn(start, end int) (toRun, skip []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := start; i < end; i++ {
		if c.settled[i] {
			skip = append(skip, i)
		} else {
			toRun = append(toRun, i)
		}
	}
	return toRun, skip
}

// Stream executes the plan across the dispatcher's workers and returns the
// event channel; see Dispatcher for the execution model. The channel closes
// after exactly len(p.Tasks) events, like exec.Stream's.
func (d *Dispatcher[R]) Stream(ctx context.Context, p *exec.Plan[R], eopt exec.Options[R]) <-chan exec.Event[R] {
	out := make(chan exec.Event[R])
	if p.Len() == 0 {
		close(out)
		return out
	}
	if eopt.Stats != nil {
		eopt.Stats.Enqueue(p.Len())
	}
	go d.run(ctx, p, eopt, out)
	return out
}

// settleEvent applies the shared accounting of one settled task and emits
// its event.
func settleEvent[R any](eopt exec.Options[R], out chan<- exec.Event[R], ev exec.Event[R]) {
	if eopt.Stats != nil {
		eopt.Stats.Settle(ev.Skipped, ev.Err != nil && !ev.Skipped)
	}
	out <- ev
}

func (d *Dispatcher[R]) run(ctx context.Context, p *exec.Plan[R], eopt exec.Options[R], out chan<- exec.Event[R]) {
	defer close(out)
	n := p.Len()
	c := &coord{settled: make([]bool, n), remaining: n, done: make(chan struct{})}

	// The shared content-addressed cache (the sweep checkpoint store) is
	// consulted up front: overlapping sweeps from concurrent clients dedup
	// here, and a resumed sweep only dispatches its missing tail.
	var pending []int
	for i := 0; i < n; i++ {
		if eopt.Cache != nil {
			if r, ok := eopt.Cache.Load(p.Tasks[i].ID); ok {
				c.trySettle(i)
				settleEvent(eopt, out, exec.Event[R]{Index: i, ID: p.Tasks[i].ID, Result: r, Cached: true})
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return
	}

	// Chunk the pending tasks into contiguous claims. Cached holes inside a
	// range land in the claim's skip set when it is sent.
	chunk := d.opt.Chunk
	if chunk <= 0 {
		chunk = (len(pending) + len(d.clients)*claimsPerWorker - 1) / (len(d.clients) * claimsPerWorker)
	}
	if chunk < 1 {
		chunk = 1
	}
	var claims []claimRange
	for at := 0; at < len(pending); at += chunk {
		hi := min(at+chunk, len(pending))
		claims = append(claims, claimRange{start: pending[at], end: pending[hi-1] + 1})
	}
	c.queue = make(chan claimRange, len(claims))
	for _, cr := range claims {
		c.queue <- cr
	}

	var wg sync.WaitGroup
	for _, client := range d.clients {
		wg.Add(1)
		go func(client *Client) {
			defer wg.Done()
			d.workerLoop(ctx, c, client, p, eopt, out)
		}(client)
	}
	wg.Wait()

	// Whatever is still unsettled has no one left to run it: every worker
	// retired (error events) or the context fired (skips, exec semantics).
	c.mu.Lock()
	unsettled := make([]int, 0, c.remaining)
	for i := 0; i < n; i++ {
		if !c.settled[i] {
			unsettled = append(unsettled, i)
		}
	}
	c.mu.Unlock()
	for _, i := range unsettled {
		ev := exec.Event[R]{Index: i, ID: p.Tasks[i].ID}
		if err := ctx.Err(); err != nil {
			ev.Err = err
			ev.Skipped = true
		} else {
			ev.Err = fmt.Errorf("dist: task %s lost: all %d workers retired", p.Tasks[i].ID, len(d.clients))
		}
		settleEvent(eopt, out, ev)
	}
}

// workerLoop drives one worker: claim, stream, and on failure re-queue the
// lost tasks and back off; retire after MaxWorkerFailures consecutive
// failures.
func (d *Dispatcher[R]) workerLoop(ctx context.Context, c *coord, client *Client, p *exec.Plan[R], eopt exec.Options[R], out chan<- exec.Event[R]) {
	failures := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.done:
			return
		case cr := <-c.queue:
			missing, err := d.runClaim(ctx, c, client, cr, p, eopt, out)
			if ctx.Err() != nil {
				return
			}
			if err == nil && len(missing) == 0 {
				failures = 0
				continue
			}
			// The claim is lost (wholly or partially): queue exactly the
			// unobserved tasks again. Capacity is guaranteed — re-queues are
			// one-for-one with pops.
			if len(missing) > 0 {
				if d.opt.Stats != nil {
					d.opt.Stats.redispatched.Add(int64(len(missing)))
				}
				c.queue <- claimRange{start: missing[0], end: missing[len(missing)-1] + 1}
			}
			failures++
			if failures >= d.opt.MaxWorkerFailures {
				return
			}
			// Brief backoff so a dead worker's loop does not spin through
			// its failure budget before the process is even noticed gone.
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Duration(failures) * 100 * time.Millisecond):
			}
		}
	}
}

// runClaim executes one claim against one worker and returns the tasks it
// was responsible for that remain unsettled, plus the stream error if the
// claim did not terminate healthily.
func (d *Dispatcher[R]) runClaim(ctx context.Context, c *coord, client *Client, cr claimRange, p *exec.Plan[R], eopt exec.Options[R], out chan<- exec.Event[R]) ([]int, error) {
	toRun, skip := c.pendingIn(cr.start, cr.end)
	if len(toRun) == 0 {
		return nil, nil
	}
	if d.opt.Stats != nil {
		d.opt.Stats.inflight.Add(int64(len(toRun)))
	}
	// Each settled task decrements the gauge as it lands; the deferred
	// correction removes whatever the claim lost (tasks that will re-queue).
	settledHere := 0
	defer func() {
		if d.opt.Stats != nil {
			d.opt.Stats.inflight.Add(int64(settledHere) - int64(len(toRun)))
		}
	}()

	creq := &ClaimRequest{
		Protocol:        ProtocolVersion,
		Job:             d.opt.Job,
		Start:           cr.start,
		End:             cr.end,
		Skip:            skip,
		Parallel:        d.opt.Parallel,
		HeartbeatMillis: int(d.opt.Lease.Milliseconds() / 5),
	}
	err := client.Claim(ctx, creq, d.opt.Lease, func(m *Message) error {
		if m.Index < cr.start || m.Index >= cr.end {
			return fmt.Errorf("dist: worker %s: task index %d outside claim [%d, %d)",
				client.Name, m.Index, cr.start, cr.end)
		}
		if m.ID != p.Tasks[m.Index].ID {
			return fmt.Errorf("dist: worker %s: task %d identity mismatch: worker ran %q, plan holds %q (version skew?)",
				client.Name, m.Index, m.ID, p.Tasks[m.Index].ID)
		}
		ev := exec.Event[R]{Index: m.Index, ID: m.ID}
		if m.Type == MsgError {
			ev.Err = errors.New(m.Error)
		} else if err := json.Unmarshal(m.Result, &ev.Result); err != nil {
			return fmt.Errorf("dist: worker %s: task %s result: %w", client.Name, m.ID, err)
		}
		if !c.trySettle(m.Index) {
			return nil // settled by an earlier partial claim of this range
		}
		settledHere++
		if ev.Err == nil && eopt.Cache != nil {
			eopt.Cache.Store(ev.ID, ev.Result)
		}
		if d.opt.Stats != nil {
			d.opt.Stats.inflight.Add(-1)
			d.opt.Stats.completed(client.Name)
		}
		settleEvent(eopt, out, ev)
		return nil
	})

	var missing []int
	c.mu.Lock()
	for _, i := range toRun {
		if !c.settled[i] {
			missing = append(missing, i)
		}
	}
	c.mu.Unlock()
	if err == nil && len(missing) > 0 {
		err = fmt.Errorf("dist: worker %s: claim finished but left %d of %d tasks unsettled",
			client.Name, len(missing), len(toRun))
	}
	return missing, err
}
