// Package dist executes an exec.Plan across worker processes while
// preserving the repo's byte-identical guarantee.
//
// The shape is a dispatcher/worker pair speaking NDJSON over HTTP: a worker
// (`atlarge worker --listen`) exposes a versioned handshake and a claim
// endpoint (POST /v1/tasks:claim) that accepts a task range of a job,
// executes it on the worker's local pool, and streams one result or error
// line per task back over the open response, interleaved with heartbeat
// lines while tasks run. The dispatcher implements the executor's Stream
// seam (exec.StreamFunc): it fans contiguous task ranges out to its workers
// under lease-based claims, detects worker death (broken stream or a lease's
// worth of silence), re-dispatches only the lost tasks, and emits ordinary
// exec.Events — positionally indexed, so callers that collect positionally
// produce output bytes identical to an in-process run at any worker count.
//
// The payloads on the wire are opaque JSON: the dispatcher is generic over
// the result type and the worker rebuilds the executable plan from the job
// document through a caller-supplied Build func, so the protocol layer knows
// nothing about scenarios. Task identity is carried redundantly — every
// result line names both the plan index and the task ID — and the dispatcher
// verifies the ID against its own plan, so a version-skewed worker that
// expands a different plan is detected instead of corrupting results.
package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ProtocolVersion is the wire protocol generation. The handshake and every
// claim carry it; a worker refuses mismatched claims so a mixed-version
// deployment fails loudly at dispatch time instead of corrupting a sweep.
const ProtocolVersion = 1

// Job describes re-creatable work: an opaque spec document plus the
// effective seed and replica count. A worker's Build func turns it into the
// same deterministic plan the dispatcher holds, so task indices mean the
// same (cell, replica) on both sides.
type Job struct {
	// Kind names the plan builder ("sweep"); workers refuse kinds they do
	// not know.
	Kind string `json:"kind"`
	// Spec is the opaque job document (for sweeps: the scenario spec JSON).
	Spec json.RawMessage `json:"spec"`
	// Seed is the effective base seed of the run.
	Seed int64 `json:"seed"`
	// Replicas is the effective replica count of the run.
	Replicas int `json:"replicas"`
}

// Handshake is the body of GET /v1/handshake: the worker introduces itself
// and its protocol generation before any work is dispatched.
type Handshake struct {
	Service  string `json:"service"`
	Protocol int    `json:"protocol"`
}

// HandshakeService is the service name a worker announces.
const HandshakeService = "atlarge-worker"

// ClaimRequest is the body of POST /v1/tasks:claim: one lease over the
// job's tasks [Start, End), minus the Skip set — re-dispatch after a partial
// failure claims only the lost tasks, so completed work never re-runs.
type ClaimRequest struct {
	Protocol int   `json:"protocol"`
	Job      Job   `json:"job"`
	Start    int   `json:"start"`
	End      int   `json:"end"`
	Skip     []int `json:"skip,omitempty"`
	// Parallel hints the worker's local pool size; the worker's own
	// configuration wins when set. 0 leaves the choice to the worker.
	Parallel int `json:"parallel,omitempty"`
	// HeartbeatMillis asks for a heartbeat line at least this often while
	// the stream is otherwise quiet; 0 means the worker's default.
	HeartbeatMillis int `json:"heartbeat_ms,omitempty"`
}

// Message line types streamed back from a claim.
const (
	// MsgClaim acknowledges the claim: the first line of every stream,
	// carrying the number of tasks the worker accepted.
	MsgClaim = "claim"
	// MsgResult settles one task with its result payload.
	MsgResult = "result"
	// MsgError settles one task with its error envelope.
	MsgError = "error"
	// MsgHeartbeat keeps the stream known-alive while tasks run.
	MsgHeartbeat = "heartbeat"
	// MsgDone terminates a healthy stream; its Completed count must equal
	// the settled task lines, so a truncated stream is distinguishable from
	// a finished one.
	MsgDone = "done"
)

// Message is one NDJSON line of a claim stream.
type Message struct {
	Type string `json:"type"`
	// Index and ID identify the settled task (result and error lines). The
	// ID is verified against the dispatcher's own plan, so a worker that
	// built a different plan is caught per task.
	Index int    `json:"index,omitempty"`
	ID    string `json:"id,omitempty"`
	// Result is the task's payload (result lines).
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the task's failure (error lines), or a stream-level refusal
	// explanation on a claim line with Tasks < 0.
	Error string `json:"error,omitempty"`
	// Tasks is the accepted task count (claim lines).
	Tasks int `json:"tasks,omitempty"`
	// Completed is the settled task count (done lines).
	Completed int `json:"completed,omitempty"`
}

// maxLineBytes bounds one NDJSON line; result payloads are full report
// fragments, so the cap is generous while keeping a corrupt stream from
// ballooning memory.
const maxLineBytes = 64 << 20

// msgWriter frames messages as NDJSON lines and flushes each one, so the
// peer observes lines as they happen, not when a buffer fills.
type msgWriter struct {
	w     io.Writer
	flush func()
}

// newMsgWriter wraps w; flush may be nil.
func newMsgWriter(w io.Writer, flush func()) *msgWriter {
	return &msgWriter{w: w, flush: flush}
}

// Write frames one message.
func (mw *msgWriter) Write(m *Message) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: marshal %s line: %w", m.Type, err)
	}
	if _, err := mw.w.Write(append(raw, '\n')); err != nil {
		return err
	}
	if mw.flush != nil {
		mw.flush()
	}
	return nil
}

// msgReader decodes NDJSON lines into messages.
type msgReader struct {
	br *bufio.Reader
}

// newMsgReader wraps r.
func newMsgReader(r io.Reader) *msgReader {
	return &msgReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Read returns the next message; io.EOF on a clean end of stream. A line
// over maxLineBytes or a trailing fragment without its newline is an error,
// never a silently truncated message.
func (mr *msgReader) Read() (*Message, error) {
	var line []byte
	for {
		chunk, err := mr.br.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > maxLineBytes {
			return nil, fmt.Errorf("dist: protocol line exceeds %d bytes", maxLineBytes)
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			if err == io.EOF && len(line) > 0 {
				return nil, fmt.Errorf("dist: stream truncated mid-line (%d bytes without newline)", len(line))
			}
			return nil, err
		}
		break
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, fmt.Errorf("dist: bad protocol line: %w", err)
	}
	return &m, nil
}
