package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomMessage draws one protocol line: mostly results with payloads from
// tiny fragments up to multi-hundred-KiB reports (far past the reader's
// buffer size, so the long-line path is exercised), plus error envelopes with
// hostile strings, heartbeats, claims, and dones.
func randomMessage(rng *rand.Rand) *Message {
	switch rng.Intn(10) {
	case 0:
		return &Message{Type: MsgClaim, Tasks: rng.Intn(1 << 20)}
	case 1:
		return &Message{Type: MsgHeartbeat}
	case 2:
		return &Message{Type: MsgDone, Completed: rng.Intn(1 << 20)}
	case 3:
		// Error envelopes carry arbitrary text: newlines in the original
		// error must survive framing (JSON escapes them), as must quotes,
		// control bytes, and non-ASCII.
		hostile := []string{"plain failure", "line\nbreak", `quo"tes`, "nul\x00byte", "日本語 🚀", strings.Repeat("e", 9000)}
		return &Message{
			Type:  MsgError,
			Index: rng.Intn(1 << 20),
			ID:    fmt.Sprintf("cell/policy=sjf#%d", rng.Intn(64)),
			Error: hostile[rng.Intn(len(hostile))],
		}
	default:
		return &Message{
			Type:   MsgResult,
			Index:  rng.Intn(1 << 20),
			ID:     fmt.Sprintf("cell/load=0.7#%d", rng.Intn(64)),
			Result: randomPayload(rng),
		}
	}
}

// randomPayload builds a compact JSON fragment shaped like real task output
// (metric arrays), occasionally large enough to span many reader buffers.
func randomPayload(rng *rand.Rand) json.RawMessage {
	n := rng.Intn(8) + 1
	if rng.Intn(8) == 0 {
		n = 4096 + rng.Intn(4096) // a few hundred KiB encoded
	}
	type metric struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
		Unit  string  `json:"unit,omitempty"`
	}
	ms := make([]metric, n)
	for i := range ms {
		ms[i] = metric{
			Name:  fmt.Sprintf("metric_%d", i),
			Value: rng.NormFloat64() * 1e6,
			Unit:  []string{"s", "jobs/s", "", "%"}[rng.Intn(4)],
		}
	}
	raw, err := json.Marshal(ms)
	if err != nil {
		panic(err)
	}
	return raw
}

// TestProtocolRoundTripProperty frames randomized message sequences through
// the writer and reads them back: every sequence must round-trip with no
// loss, no reordering, and byte-exact payloads.
func TestProtocolRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		msgs := make([]*Message, n)
		var buf bytes.Buffer
		flushes := 0
		mw := newMsgWriter(&buf, func() { flushes++ })
		for i := range msgs {
			msgs[i] = randomMessage(rng)
			if err := mw.Write(msgs[i]); err != nil {
				t.Fatalf("seed %d: write %d: %v", seed, i, err)
			}
		}
		if flushes != n {
			t.Fatalf("seed %d: %d writes flushed %d times", seed, n, flushes)
		}

		mr := newMsgReader(&buf)
		for i, want := range msgs {
			got, err := mr.Read()
			if err != nil {
				t.Fatalf("seed %d: read %d: %v", seed, i, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: message %d round-tripped wrong:\n got %+v\nwant %+v", seed, i, got, want)
			}
		}
		if _, err := mr.Read(); err != io.EOF {
			t.Fatalf("seed %d: trailing read error = %v, want io.EOF", seed, err)
		}
	}
}

// TestProtocolTruncationDetected: a stream cut mid-line must surface as an
// error, never as a silently dropped or half-parsed message.
func TestProtocolTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	mw := newMsgWriter(&buf, nil)
	for i := 0; i < 3; i++ {
		if err := mw.Write(&Message{Type: MsgResult, Index: i, ID: "t", Result: json.RawMessage(`[1,2,3]`)}); err != nil {
			t.Fatal(err)
		}
	}
	whole := buf.Bytes()
	// Cut inside the final line (between its start and its newline).
	cut := bytes.LastIndexByte(whole[:len(whole)-1], '\n') + 3
	mr := newMsgReader(bytes.NewReader(whole[:cut]))
	for i := 0; i < 2; i++ {
		if _, err := mr.Read(); err != nil {
			t.Fatalf("intact line %d: %v", i, err)
		}
	}
	_, err := mr.Read()
	if err == nil || err == io.EOF {
		t.Fatalf("truncated line error = %v, want a truncation error", err)
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncation error does not say so: %v", err)
	}
}

// TestProtocolRejectsGarbageLine: a non-JSON line is a protocol error.
func TestProtocolRejectsGarbageLine(t *testing.T) {
	mr := newMsgReader(strings.NewReader("this is not json\n"))
	if _, err := mr.Read(); err == nil {
		t.Fatal("garbage line accepted")
	}
}
