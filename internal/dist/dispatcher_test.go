package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"atlarge/internal/exec"
)

// testJob describes the synthetic plan both sides of these tests build: n
// tasks named "task-<i>", each returning {"i": i}, with the listed indices
// failing instead.
type testJob struct {
	N    int   `json:"n"`
	Fail []int `json:"fail,omitempty"`
}

type testResult struct {
	I int `json:"i"`
}

// testBuilder is the worker-side plan builder for testJob documents.
func testBuilder(j Job) (*exec.Plan[json.RawMessage], error) {
	var tj testJob
	if err := json.Unmarshal(j.Spec, &tj); err != nil {
		return nil, err
	}
	failing := make(map[int]bool)
	for _, i := range tj.Fail {
		failing[i] = true
	}
	plan := &exec.Plan[json.RawMessage]{}
	for i := 0; i < tj.N; i++ {
		plan.Add(fmt.Sprintf("task-%d", i), func(context.Context) (json.RawMessage, error) {
			if failing[i] {
				return nil, fmt.Errorf("boom-%d", i)
			}
			return json.Marshal(testResult{I: i})
		})
	}
	return plan, nil
}

// dispatchPlan is the dispatcher-side view of the same job: matching IDs,
// Run funcs never invoked (the work happens on the workers).
func dispatchPlan(n int) *exec.Plan[testResult] {
	plan := &exec.Plan[testResult]{}
	for i := 0; i < n; i++ {
		plan.Add(fmt.Sprintf("task-%d", i), nil)
	}
	return plan
}

// startWorkers boots k in-process protocol workers and dials them.
func startWorkers(t *testing.T, k int) []*Client {
	t.Helper()
	clients := make([]*Client, k)
	for i := range clients {
		w := &Worker{Build: map[string]Builder{"test": testBuilder}, Parallelism: 2}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		c, err := Dial(context.Background(), srv.URL)
		if err != nil {
			t.Fatalf("dial worker %d: %v", i, err)
		}
		clients[i] = c
	}
	return clients
}

func mustJob(t *testing.T, tj testJob) Job {
	t.Helper()
	raw, err := json.Marshal(tj)
	if err != nil {
		t.Fatal(err)
	}
	return Job{Kind: "test", Spec: raw, Seed: 1, Replicas: 1}
}

// checkResults asserts positional results: every index present exactly once
// with the right payload (the events channel closing after n events is the
// exactly-once half; the payload check is the no-mixup half).
func checkResults(t *testing.T, results []testResult, errs []error) {
	t.Helper()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("task %d: unexpected error %v", i, errs[i])
		}
		if results[i].I != i {
			t.Fatalf("task %d carries payload %d", i, results[i].I)
		}
	}
}

// TestDispatcherParity: dispatching over 1 and 3 workers yields the same
// positional results as running in process, with the exec and dist stats
// threaded correctly.
func TestDispatcherParity(t *testing.T) {
	const n = 23
	for _, workers := range []int{1, 3} {
		clients := startWorkers(t, workers)
		dstats := &Stats{}
		d, err := NewDispatcher[testResult](clients, DispatchOptions{
			Job:   mustJob(t, testJob{N: n}),
			Stats: dstats,
		})
		if err != nil {
			t.Fatal(err)
		}
		estats := &exec.Stats{}
		plan := dispatchPlan(n)
		results, errs := exec.Collect(d.Stream(context.Background(), plan, exec.Options[testResult]{Stats: estats}), n, nil)
		checkResults(t, results, errs)
		if got := estats.Completed(); got != n {
			t.Errorf("%d workers: exec stats completed = %d, want %d", workers, got, n)
		}
		if got := estats.Pending(); got != 0 {
			t.Errorf("%d workers: exec stats pending = %d after drain", workers, got)
		}
		if got := dstats.InFlight(); got != 0 {
			t.Errorf("%d workers: dist in-flight = %d after drain", workers, got)
		}
		if got := dstats.Redispatched(); got != 0 {
			t.Errorf("%d workers: redispatched = %d on a healthy run", workers, got)
		}
		var sum int64
		for _, wc := range dstats.WorkerCompletions() {
			sum += wc.Tasks
		}
		if sum != n {
			t.Errorf("%d workers: per-worker completions sum to %d, want %d", workers, sum, n)
		}
	}
}

// TestDispatcherTaskErrors: a task failure on the worker travels back as that
// task's error, verbatim, without disturbing its neighbors.
func TestDispatcherTaskErrors(t *testing.T) {
	const n = 8
	clients := startWorkers(t, 2)
	estats := &exec.Stats{}
	d, err := NewDispatcher[testResult](clients, DispatchOptions{
		Job: mustJob(t, testJob{N: n, Fail: []int{2, 5}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	results, errs := exec.Collect(d.Stream(context.Background(), dispatchPlan(n), exec.Options[testResult]{Stats: estats}), n, nil)
	for i := 0; i < n; i++ {
		if i == 2 || i == 5 {
			if errs[i] == nil || errs[i].Error() != fmt.Sprintf("boom-%d", i) {
				t.Errorf("task %d error = %v, want boom-%d", i, errs[i], i)
			}
			continue
		}
		if errs[i] != nil {
			t.Errorf("task %d: unexpected error %v", i, errs[i])
		}
		if results[i].I != i {
			t.Errorf("task %d carries payload %d", i, results[i].I)
		}
	}
	if got := estats.Failed(); got != 2 {
		t.Errorf("exec stats failed = %d, want 2", got)
	}
	if got := estats.Completed(); got != n-2 {
		t.Errorf("exec stats completed = %d, want %d", got, n-2)
	}
}

// flakyWorker speaks the protocol but dies mid-claim: it streams `limit`
// genuine results, then aborts the connection — the shape of a worker
// process killed mid-range.
func flakyWorker(t *testing.T, limit int) *Client {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/handshake", func(rw http.ResponseWriter, r *http.Request) {
		raw, _ := json.Marshal(Handshake{Service: HandshakeService, Protocol: ProtocolVersion})
		rw.Write(append(raw, '\n'))
	})
	mux.HandleFunc("POST /v1/tasks:claim", func(rw http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			panic(http.ErrAbortHandler)
		}
		plan, err := testBuilder(req.Job)
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		skip := make(map[int]bool)
		for _, i := range req.Skip {
			skip[i] = true
		}
		flusher, _ := rw.(http.Flusher)
		mw := newMsgWriter(rw, func() { flusher.Flush() })
		mw.Write(&Message{Type: MsgClaim})
		sent := 0
		for i := req.Start; i < req.End; i++ {
			if skip[i] {
				continue
			}
			if sent == limit {
				break
			}
			res, rerr := plan.Tasks[i].Run(r.Context())
			m := &Message{Index: i, ID: plan.Tasks[i].ID}
			if rerr != nil {
				m.Type = MsgError
				m.Error = rerr.Error()
			} else {
				m.Type = MsgResult
				m.Result = res
			}
			mw.Write(m)
			sent++
		}
		panic(http.ErrAbortHandler) // die without the done line
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	c, err := Dial(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDispatcherRedispatchOnWorkerDeath: a worker that keeps dying mid-range
// costs only re-dispatches — the results it did deliver are kept, the rest
// re-run elsewhere, and nothing is dropped or duplicated.
func TestDispatcherRedispatchOnWorkerDeath(t *testing.T) {
	const n = 30
	clients := append(startWorkers(t, 1), flakyWorker(t, 2))
	dstats := &Stats{}
	d, err := NewDispatcher[testResult](clients, DispatchOptions{
		Job:   mustJob(t, testJob{N: n}),
		Stats: dstats,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, errs := exec.Collect(d.Stream(context.Background(), dispatchPlan(n), exec.Options[testResult]{}), n, nil)
	checkResults(t, results, errs)
	if dstats.Redispatched() == 0 {
		t.Error("flaky worker died mid-claim but nothing was re-dispatched")
	}
	if dstats.InFlight() != 0 {
		t.Errorf("dist in-flight = %d after drain", dstats.InFlight())
	}
}

// hungWorker accepts a claim and then goes silent — no results, no
// heartbeats — until the peer hangs up. Only the lease can unmask it.
func hungWorker(t *testing.T) *Client {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/handshake", func(rw http.ResponseWriter, r *http.Request) {
		raw, _ := json.Marshal(Handshake{Service: HandshakeService, Protocol: ProtocolVersion})
		rw.Write(append(raw, '\n'))
	})
	mux.HandleFunc("POST /v1/tasks:claim", func(rw http.ResponseWriter, r *http.Request) {
		flusher, _ := rw.(http.Flusher)
		mw := newMsgWriter(rw, func() { flusher.Flush() })
		mw.Write(&Message{Type: MsgClaim})
		<-r.Context().Done()
		panic(http.ErrAbortHandler)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	c, err := Dial(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDispatcherLeaseExpiry: a hung worker (silent stream, no heartbeats) is
// abandoned after one lease of silence and its range re-dispatched; the sweep
// still completes with every result exactly once.
func TestDispatcherLeaseExpiry(t *testing.T) {
	const n = 12
	clients := append(startWorkers(t, 1), hungWorker(t))
	dstats := &Stats{}
	d, err := NewDispatcher[testResult](clients, DispatchOptions{
		Job:   mustJob(t, testJob{N: n}),
		Lease: 150 * time.Millisecond,
		Stats: dstats,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	results, errs := exec.Collect(d.Stream(context.Background(), dispatchPlan(n), exec.Options[testResult]{}), n, nil)
	checkResults(t, results, errs)
	if dstats.Redispatched() == 0 {
		t.Error("hung worker held a claim but nothing was re-dispatched")
	}
	// Three failure cycles at a 150ms lease plus backoff is ~1s; a run
	// anywhere near DefaultLease means the configured lease was ignored.
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("lease-expiry run took %v", el)
	}
}

// TestDispatcherIdentityMismatch: a worker whose plan disagrees with the
// dispatcher's (version skew) is rejected per line, and with no healthy
// worker left the tasks settle with errors instead of wrong results.
func TestDispatcherIdentityMismatch(t *testing.T) {
	const n = 4
	// The worker builds a plan of different task IDs for the same kind.
	w := &Worker{Build: map[string]Builder{"test": func(j Job) (*exec.Plan[json.RawMessage], error) {
		plan := &exec.Plan[json.RawMessage]{}
		for i := 0; i < n; i++ {
			plan.Add(fmt.Sprintf("other-%d", i), func(context.Context) (json.RawMessage, error) {
				return json.RawMessage(`{"i":0}`), nil
			})
		}
		return plan, nil
	}}}
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	c, err := Dial(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	dstats := &Stats{}
	d, err := NewDispatcher[testResult](([]*Client{c}), DispatchOptions{
		Job:   mustJob(t, testJob{N: n}),
		Stats: dstats,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, errs := exec.Collect(d.Stream(context.Background(), dispatchPlan(n), exec.Options[testResult]{}), n, nil)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("task %d settled without error despite identity mismatch", i)
		}
	}
}

// TestDispatcherCache: cached tasks are served without touching any worker,
// and fresh results are stored back — the shared content-addressed result
// cache across processes.
func TestDispatcherCache(t *testing.T) {
	const n = 10
	cache := &mapCache{m: make(map[string]testResult)}
	for i := 0; i < n; i += 2 {
		cache.m[fmt.Sprintf("task-%d", i)] = testResult{I: i}
	}
	clients := startWorkers(t, 1)
	d, err := NewDispatcher[testResult](clients, DispatchOptions{Job: mustJob(t, testJob{N: n})})
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	results, errs := exec.Collect(
		d.Stream(context.Background(), dispatchPlan(n), exec.Options[testResult]{Cache: cache}),
		n, func(ev exec.Event[testResult]) {
			if ev.Cached {
				cached++
			}
		})
	checkResults(t, results, errs)
	if cached != n/2 {
		t.Errorf("cached events = %d, want %d", cached, n/2)
	}
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if len(cache.m) != n {
		t.Errorf("cache holds %d entries after the run, want %d (fresh results stored back)", len(cache.m), n)
	}
}

// TestDispatcherCancellation: cancelling the context settles the remaining
// tasks as skips carrying the context error, matching exec.Stream semantics.
func TestDispatcherCancellation(t *testing.T) {
	const n = 6
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	clients := startWorkers(t, 1)
	d, err := NewDispatcher[testResult](clients, DispatchOptions{Job: mustJob(t, testJob{N: n})})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	skipped := 0
	for ev := range d.Stream(ctx, dispatchPlan(n), exec.Options[testResult]{}) {
		seen++
		if ev.Skipped {
			skipped++
			if !errors.Is(ev.Err, context.Canceled) {
				t.Errorf("skipped task %s carries %v, want context.Canceled", ev.ID, ev.Err)
			}
		}
	}
	if seen != n {
		t.Fatalf("cancelled stream emitted %d events, want %d", seen, n)
	}
	if skipped == 0 {
		t.Error("pre-cancelled context skipped nothing")
	}
}

// TestClaimRefusedIsError: a worker that refuses a claim (unknown kind)
// produces a claim error naming the refusal, not a hang or a bogus result.
func TestClaimRefusedIsError(t *testing.T) {
	clients := startWorkers(t, 1)
	creq := &ClaimRequest{Protocol: ProtocolVersion, Job: Job{Kind: "nope"}, Start: 0, End: 1}
	err := clients[0].Claim(context.Background(), creq, time.Second, func(*Message) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("unknown-kind claim error = %v, want a refusal", err)
	}
}

// mapCache is an exec.Cache over a mutex-guarded map.
type mapCache struct {
	mu sync.Mutex
	m  map[string]testResult
}

func (c *mapCache) Load(id string) (testResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[id]
	return r, ok
}

func (c *mapCache) Store(id string, r testResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[id] = r
}
