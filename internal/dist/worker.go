package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"atlarge/internal/exec"
)

// defaultHeartbeat is the worker's heartbeat cadence when the claim does not
// ask for one.
const defaultHeartbeat = time.Second

// Builder resolves a job document into the executable plan of raw-JSON
// tasks. It must be deterministic: the same job yields the same task IDs in
// the same order on every worker and on the dispatcher, or result indices
// would disagree across processes.
type Builder func(job Job) (*exec.Plan[json.RawMessage], error)

// Worker serves the dist protocol: a versioned handshake plus the claim
// endpoint that executes task ranges and streams results back as NDJSON.
// One Worker handles any number of concurrent claims; each claim runs on its
// own bounded local pool.
type Worker struct {
	// Build maps job kinds to plan builders (see Builder). Claims for an
	// unregistered kind are refused.
	Build map[string]Builder
	// Parallelism bounds each claim's local pool; <= 0 accepts the claim's
	// hint, falling back to GOMAXPROCS.
	Parallelism int
}

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/handshake", w.handleHandshake)
	mux.HandleFunc("POST /v1/tasks:claim", w.handleClaim)
	return mux
}

func (w *Worker) handleHandshake(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	raw, _ := json.Marshal(Handshake{Service: HandshakeService, Protocol: ProtocolVersion})
	rw.Write(append(raw, '\n'))
}

// claimError refuses a claim before any task runs: a JSON error body with a
// non-200 status, so dispatch-time mistakes (bad range, unknown kind,
// protocol skew) are not conflated with mid-stream worker death.
func claimError(rw http.ResponseWriter, status int, format string, args ...any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	raw, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	rw.Write(append(raw, '\n'))
}

func (w *Worker) handleClaim(rw http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxLineBytes))
	if err := dec.Decode(&req); err != nil {
		claimError(rw, http.StatusBadRequest, "bad claim body: %v", err)
		return
	}
	if req.Protocol != ProtocolVersion {
		claimError(rw, http.StatusBadRequest,
			"protocol mismatch: claim speaks %d, this worker speaks %d", req.Protocol, ProtocolVersion)
		return
	}
	build, ok := w.Build[req.Job.Kind]
	if !ok {
		claimError(rw, http.StatusBadRequest, "unknown job kind %q", req.Job.Kind)
		return
	}
	plan, err := build(req.Job)
	if err != nil {
		claimError(rw, http.StatusBadRequest, "build plan: %v", err)
		return
	}
	if req.Start < 0 || req.End > plan.Len() || req.Start >= req.End {
		claimError(rw, http.StatusBadRequest,
			"bad range [%d, %d) over a %d-task plan", req.Start, req.End, plan.Len())
		return
	}

	// The claimed sub-plan: [Start, End) minus the skip set, each sub-task
	// remembering its index in the job's full plan.
	skip := make(map[int]bool, len(req.Skip))
	for _, i := range req.Skip {
		skip[i] = true
	}
	var indices []int
	for i := req.Start; i < req.End; i++ {
		if !skip[i] {
			indices = append(indices, i)
		}
	}
	sort.Ints(indices)
	sub := &exec.Plan[json.RawMessage]{}
	for _, i := range indices {
		sub.Tasks = append(sub.Tasks, plan.Tasks[i])
	}

	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	flusher, _ := rw.(http.Flusher)
	var mu sync.Mutex // one writer at a time: results vs heartbeats
	mw := newMsgWriter(rw, func() {
		if flusher != nil {
			flusher.Flush()
		}
	})
	write := func(m *Message) error {
		mu.Lock()
		defer mu.Unlock()
		return mw.Write(m)
	}
	if err := write(&Message{Type: MsgClaim, Tasks: sub.Len()}); err != nil {
		return
	}

	// Heartbeats ride the same stream while tasks run, so a dispatcher
	// waiting on a slow task can tell "still working" from "worker died".
	heartbeat := defaultHeartbeat
	if req.HeartbeatMillis > 0 {
		heartbeat = time.Duration(req.HeartbeatMillis) * time.Millisecond
	}
	hbCtx, stopHB := context.WithCancel(r.Context())
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if write(&Message{Type: MsgHeartbeat}) != nil {
					return
				}
			}
		}
	}()

	workers := w.Parallelism
	if workers <= 0 {
		workers = req.Parallel
	}
	completed := 0
	for ev := range exec.Stream(r.Context(), sub, exec.Options[json.RawMessage]{Workers: workers}) {
		index := indices[ev.Index]
		m := &Message{Index: index, ID: ev.ID}
		switch {
		case ev.Skipped:
			// The client hung up (request context cancelled): the stream is
			// dead anyway, so there is nothing useful to write.
			continue
		case ev.Err != nil:
			m.Type = MsgError
			m.Error = ev.Err.Error()
		default:
			m.Type = MsgResult
			m.Result = ev.Result
		}
		if write(m) != nil {
			// Broken pipe: drain the pool via the request context (the
			// server cancels it when the connection drops) and give up.
			continue
		}
		completed++
	}
	stopHB()
	hbDone.Wait()
	write(&Message{Type: MsgDone, Completed: completed})
}
