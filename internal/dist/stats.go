package dist

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Stats aggregates live counters of the distributed layer, shareable across
// every dispatch the process runs (the serve layer hands all its dispatchers
// one Stats so /metrics sees process totals). All methods are safe for
// concurrent use; the zero value is ready.
type Stats struct {
	inflight     atomic.Int64
	redispatched atomic.Int64

	mu        sync.Mutex
	perWorker map[string]int64
}

// InFlight is the number of tasks currently claimed by remote workers and
// not yet settled.
func (s *Stats) InFlight() int64 { return s.inflight.Load() }

// Redispatched counts tasks whose claim was lost (worker death, lease
// expiry, protocol failure) and that were queued again, monotonically.
func (s *Stats) Redispatched() int64 { return s.redispatched.Load() }

// completed records one settled task for a worker.
func (s *Stats) completed(worker string) {
	s.mu.Lock()
	if s.perWorker == nil {
		s.perWorker = make(map[string]int64)
	}
	s.perWorker[worker]++
	s.mu.Unlock()
}

// WorkerCompletion is one worker's completion count.
type WorkerCompletion struct {
	Worker string
	Tasks  int64
}

// WorkerCompletions snapshots per-worker settled-task totals, sorted by
// worker name so exposition order is stable.
func (s *Stats) WorkerCompletions() []WorkerCompletion {
	s.mu.Lock()
	out := make([]WorkerCompletion, 0, len(s.perWorker))
	for w, n := range s.perWorker {
		out = append(out, WorkerCompletion{Worker: w, Tasks: n})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}
