package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client speaks the dist protocol to one worker process.
type Client struct {
	// Name labels the worker in metrics and errors (its host:port).
	Name string

	base string
	http *http.Client
}

// normalizeAddr accepts "host:port" or a full http URL.
func normalizeAddr(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

// NewClient wraps a worker address without contacting it; Dial adds the
// handshake.
func NewClient(addr string) *Client {
	base := normalizeAddr(addr)
	return &Client{
		Name: strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://"),
		base: base,
		// No overall timeout: claim streams live as long as the tasks run.
		// Liveness is the dispatcher's per-line lease, not a request bound.
		http: &http.Client{},
	}
}

// Dial connects to a worker and verifies the handshake: the service must
// identify itself and speak this build's protocol generation, so a sweep
// never starts against a mismatched or unrelated HTTP server.
func Dial(ctx context.Context, addr string) (*Client, error) {
	c := NewClient(addr)
	hctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodGet, c.base+"/v1/handshake", nil)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: %w", c.Name, err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: handshake: %w", c.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: worker %s: handshake: status %d", c.Name, resp.StatusCode)
	}
	var h Handshake
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		return nil, fmt.Errorf("dist: worker %s: handshake: %w", c.Name, err)
	}
	if h.Service != HandshakeService {
		return nil, fmt.Errorf("dist: worker %s: not an atlarge worker (service %q)", c.Name, h.Service)
	}
	if h.Protocol != ProtocolVersion {
		return nil, fmt.Errorf("dist: worker %s: protocol mismatch: worker speaks %d, this build speaks %d",
			c.Name, h.Protocol, ProtocolVersion)
	}
	return c, nil
}

// DialAll dials every address, failing on the first unreachable or
// mismatched worker.
func DialAll(ctx context.Context, addrs []string) ([]*Client, error) {
	clients := make([]*Client, 0, len(addrs))
	for _, addr := range addrs {
		c, err := Dial(ctx, addr)
		if err != nil {
			return nil, err
		}
		clients = append(clients, c)
	}
	return clients, nil
}

// Claim executes one claim against the worker, invoking onMsg for every
// result and error line as it arrives (claim, heartbeat, and done lines are
// consumed internally). lease bounds the silence between lines: a stream
// that produces nothing — not even a heartbeat — for a full lease is
// abandoned, which is how a hung worker is distinguished from a slow one.
//
// A nil return means the stream terminated healthily with its done line and
// a consistent settled count; every other outcome (broken connection, lease
// expiry, truncation, a done line that disagrees with the lines seen) is an
// error, and the caller re-dispatches whatever tasks it has not observed.
func (c *Client) Claim(ctx context.Context, creq *ClaimRequest, lease time.Duration, onMsg func(*Message) error) error {
	body, err := json.Marshal(creq)
	if err != nil {
		return fmt.Errorf("dist: worker %s: marshal claim: %w", c.Name, err)
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, c.base+"/v1/tasks:claim", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: worker %s: %w", c.Name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("dist: worker %s: claim: %w", c.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return fmt.Errorf("dist: worker %s: claim refused: status %d: %s",
			c.Name, resp.StatusCode, strings.TrimSpace(string(raw)))
	}

	// The lease timer cancels the request context when a full lease passes
	// without a line; every line (heartbeats included) re-arms it.
	if lease <= 0 {
		lease = DefaultLease
	}
	timer := time.AfterFunc(lease, cancel)
	defer timer.Stop()

	mr := newMsgReader(resp.Body)
	settled := 0
	sawClaim := false
	for {
		m, err := mr.Read()
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("dist: worker %s: stream ended without done line (%d tasks settled)", c.Name, settled)
			}
			if rctx.Err() != nil && ctx.Err() == nil {
				return fmt.Errorf("dist: worker %s: lease expired after %v of silence (%d tasks settled)", c.Name, lease, settled)
			}
			return fmt.Errorf("dist: worker %s: stream: %w", c.Name, err)
		}
		timer.Reset(lease)
		switch m.Type {
		case MsgClaim:
			sawClaim = true
		case MsgHeartbeat:
			// liveness only
		case MsgResult, MsgError:
			if !sawClaim {
				return fmt.Errorf("dist: worker %s: %s line before claim ack", c.Name, m.Type)
			}
			settled++
			if err := onMsg(m); err != nil {
				return err
			}
		case MsgDone:
			if m.Completed != settled {
				return fmt.Errorf("dist: worker %s: done line claims %d tasks, stream carried %d",
					c.Name, m.Completed, settled)
			}
			return nil
		default:
			return fmt.Errorf("dist: worker %s: unknown line type %q", c.Name, m.Type)
		}
	}
}
