package cluster

import (
	"fmt"

	"atlarge/internal/sim"
)

// Pricing describes the cost model of a public cloud, used by the autoscaling
// cost analyses (§6.7) and the on-demand/reserved scheduling study
// (Table 9, Shen et al. '13).
type Pricing struct {
	// OnDemandPerCoreHour is the hourly price of an on-demand core.
	OnDemandPerCoreHour float64
	// ReservedPerCoreHour is the effective hourly price of a reserved core
	// (paid whether used or not).
	ReservedPerCoreHour float64
	// BillingGranularity rounds up usage to this many virtual seconds
	// (3600 reproduces classic per-hour billing; 1 reproduces per-second).
	BillingGranularity sim.Duration
	// StartupDelay is the VM provisioning latency.
	StartupDelay sim.Duration
}

// DefaultPricing mirrors classic EC2-style pricing: on-demand twice the
// effective reserved rate, hourly billing, ~100s VM startup.
func DefaultPricing() Pricing {
	return Pricing{
		OnDemandPerCoreHour: 0.10,
		ReservedPerCoreHour: 0.05,
		BillingGranularity:  3600,
		StartupDelay:        100,
	}
}

// VM is a provisioned cloud instance.
type VM struct {
	ID        int
	Cores     int
	Reserved  bool
	BootedAt  sim.Time // when it became usable
	ReleaseAt sim.Time // set on release; zero while running
	used      int
}

// Free returns unclaimed cores on the VM.
func (v *VM) Free() int { return v.Cores - v.used }

// Claim reserves n cores.
func (v *VM) Claim(n int) error {
	if v.Free() < n || n < 0 {
		return fmt.Errorf("cluster: vm %d has %d free cores, need %d", v.ID, v.Free(), n)
	}
	v.used += n
	return nil
}

// Release frees n cores.
func (v *VM) Release(n int) error {
	if n < 0 || n > v.used {
		return fmt.Errorf("cluster: vm %d release %d with %d used", v.ID, n, v.used)
	}
	v.used -= n
	return nil
}

// CloudProvider provisions and bills VMs.
type CloudProvider struct {
	pricing Pricing
	nextID  int
	running map[int]*VM
	cost    float64
}

// NewCloudProvider returns a provider with the given pricing.
func NewCloudProvider(p Pricing) *CloudProvider {
	return &CloudProvider{pricing: p, running: make(map[int]*VM)}
}

// Pricing returns the provider's cost model.
func (cp *CloudProvider) Pricing() Pricing { return cp.pricing }

// Provision starts a VM with cores cores at time now. The VM becomes usable
// at now + StartupDelay; the caller is responsible for honoring BootedAt.
func (cp *CloudProvider) Provision(now sim.Time, cores int, reserved bool) *VM {
	cp.nextID++
	vm := &VM{
		ID:       cp.nextID,
		Cores:    cores,
		Reserved: reserved,
		BootedAt: now + cp.pricing.StartupDelay,
	}
	cp.running[vm.ID] = vm
	return vm
}

// Terminate stops the VM at time now and accrues its cost. Terminating an
// unknown VM is an error.
func (cp *CloudProvider) Terminate(now sim.Time, vm *VM) error {
	if _, ok := cp.running[vm.ID]; !ok {
		return fmt.Errorf("cluster: terminate unknown vm %d", vm.ID)
	}
	delete(cp.running, vm.ID)
	vm.ReleaseAt = now
	cp.cost += cp.billFor(vm, now)
	return nil
}

// billFor computes the cost of a VM from provisioning start (BootedAt -
// StartupDelay) until end, rounded up to the billing granularity.
func (cp *CloudProvider) billFor(vm *VM, end sim.Time) float64 {
	start := vm.BootedAt - cp.pricing.StartupDelay
	dur := float64(end - start)
	if dur < 0 {
		dur = 0
	}
	g := float64(cp.pricing.BillingGranularity)
	if g > 0 {
		units := dur / g
		whole := float64(int64(units))
		if units > whole {
			whole++
		}
		dur = whole * g
	}
	rate := cp.pricing.OnDemandPerCoreHour
	if vm.Reserved {
		rate = cp.pricing.ReservedPerCoreHour
	}
	return dur / 3600 * rate * float64(vm.Cores)
}

// AccruedCost returns cost of terminated VMs plus the running VMs billed up
// to now.
func (cp *CloudProvider) AccruedCost(now sim.Time) float64 {
	total := cp.cost
	for _, vm := range cp.running {
		total += cp.billFor(vm, now)
	}
	return total
}

// RunningVMs returns the number of currently provisioned VMs.
func (cp *CloudProvider) RunningVMs() int { return len(cp.running) }

// RunningCores returns the total cores of provisioned VMs.
func (cp *CloudProvider) RunningCores() int {
	n := 0
	for _, vm := range cp.running {
		n += vm.Cores
	}
	return n
}
