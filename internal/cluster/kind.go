package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// kindNames maps accepted spellings (lower-cased) to environment kinds: the
// Table 9 acronyms plus descriptive long names.
var kindNames = map[string]Kind{
	"cl":              KindCluster,
	"cluster":         KindCluster,
	"g":               KindGrid,
	"grid":            KindGrid,
	"cd":              KindCloud,
	"cloud":           KindCloud,
	"mcd":             KindMultiCluster,
	"multi-cluster":   KindMultiCluster,
	"gdc":             KindGeoDistributed,
	"geo-distributed": KindGeoDistributed,
}

// KindByName resolves an environment kind from its Table 9 acronym or long
// name, case-insensitively.
func KindByName(name string) (Kind, error) {
	if k, ok := kindNames[strings.ToLower(name)]; ok {
		return k, nil
	}
	return 0, fmt.Errorf("cluster: unknown environment kind %q (known: %s)", name, strings.Join(KindNames(), ", "))
}

// KindNames returns the accepted kind spellings in sorted order.
func KindNames() []string {
	out := make([]string, 0, len(kindNames))
	for name := range kindNames {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
