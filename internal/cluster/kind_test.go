package cluster

import (
	"strings"
	"testing"
)

func TestKindByName(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
	}{
		{"CL", KindCluster},
		{"cluster", KindCluster},
		{"g", KindGrid},
		{"Grid", KindGrid},
		{"CD", KindCloud},
		{"mcd", KindMultiCluster},
		{"geo-distributed", KindGeoDistributed},
		{"GDC", KindGeoDistributed},
	}
	for _, c := range cases {
		got, err := KindByName(c.in)
		if err != nil {
			t.Errorf("KindByName(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("KindByName(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := KindByName("edge"); err == nil {
		t.Error("unknown kind accepted")
	} else if !strings.Contains(err.Error(), "known:") {
		t.Errorf("error does not list catalog: %v", err)
	}
}

// TestKindByNameRoundTrip pins that every Kind String() resolves back to
// itself.
func TestKindByNameRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindCluster, KindGrid, KindCloud, KindMultiCluster, KindGeoDistributed} {
		got, err := KindByName(k.String())
		if err != nil || got != k {
			t.Errorf("KindByName(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
}
