// Package cluster models the compute environments of the paper's Table 9:
// own clusters (CL), grids (G), public clouds (CD), multi-cluster
// datacenters (MCD), and geo-distributed datacenters (GDC).
//
// The model is slot-based: a Machine exposes a number of CPU slots;
// allocations claim slots for a duration. The package also models cloud
// pricing (on-demand and reserved instances) for the cost analyses of the
// autoscaling experiments (§6.7).
package cluster

import (
	"errors"
	"fmt"

	"atlarge/internal/sim"
)

// Kind identifies a Table 9 environment.
type Kind int

// Environment kinds; acronyms follow Table 9.
const (
	KindCluster        Kind = iota + 1 // CL: own cluster
	KindGrid                           // G: grid of clusters with slower interconnect
	KindCloud                          // CD: public cloud, elastic capacity
	KindMultiCluster                   // MCD: multi-cluster datacenter
	KindGeoDistributed                 // GDC: geo-distributed datacenters
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCluster:
		return "CL"
	case KindGrid:
		return "G"
	case KindCloud:
		return "CD"
	case KindMultiCluster:
		return "MCD"
	case KindGeoDistributed:
		return "GDC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Machine is a single host with a fixed number of CPU slots. Speed scales
// task runtimes (runtime/Speed); heterogeneous environments mix speeds.
type Machine struct {
	ID    int
	Cores int
	Speed float64 // relative; 1.0 is the reference machine
	used  int
}

// Free returns the number of unclaimed slots.
func (m *Machine) Free() int { return m.Cores - m.used }

// Used returns the number of claimed slots.
func (m *Machine) Used() int { return m.used }

// Claim reserves n slots. It returns an error when insufficient slots are
// free.
func (m *Machine) Claim(n int) error {
	if n < 0 {
		return fmt.Errorf("cluster: claim of %d slots on machine %d", n, m.ID)
	}
	if m.Free() < n {
		return fmt.Errorf("cluster: machine %d has %d free slots, need %d", m.ID, m.Free(), n)
	}
	m.used += n
	return nil
}

// Release frees n slots. Releasing more than claimed is an error.
func (m *Machine) Release(n int) error {
	if n < 0 || n > m.used {
		return fmt.Errorf("cluster: release of %d slots on machine %d with %d used", n, m.ID, m.used)
	}
	m.used -= n
	return nil
}

// Cluster is a named group of machines behind one network.
type Cluster struct {
	Name     string
	Machines []*Machine
	// Latency is the intra-cluster communication latency (virtual seconds);
	// grids and geo-distributed environments have higher inter-site latency.
	Latency sim.Duration
}

// TotalCores sums the slots of all machines.
func (c *Cluster) TotalCores() int {
	n := 0
	for _, m := range c.Machines {
		n += m.Cores
	}
	return n
}

// FreeCores sums the free slots of all machines.
func (c *Cluster) FreeCores() int {
	n := 0
	for _, m := range c.Machines {
		n += m.Free()
	}
	return n
}

// Utilization returns used/total slots, or 0 for an empty cluster.
func (c *Cluster) Utilization() float64 {
	total := c.TotalCores()
	if total == 0 {
		return 0
	}
	return float64(total-c.FreeCores()) / float64(total)
}

// ErrNoCapacity is returned when a placement cannot be satisfied.
var ErrNoCapacity = errors.New("cluster: no capacity")

// FirstFit claims n slots on the first machine with room and returns that
// machine.
func (c *Cluster) FirstFit(n int) (*Machine, error) {
	for _, m := range c.Machines {
		if m.Free() >= n {
			if err := m.Claim(n); err != nil {
				return nil, err
			}
			return m, nil
		}
	}
	return nil, ErrNoCapacity
}

// Environment is a complete Table 9 execution environment: one or more
// clusters plus, for cloud kinds, an elastic provider.
type Environment struct {
	Kind     Kind
	Clusters []*Cluster
	Provider *CloudProvider // nil for non-elastic environments
	// InterLatency is the cross-cluster latency; relevant for G, MCD, GDC.
	InterLatency sim.Duration
}

// TotalCores sums over clusters (excluding unprovisioned cloud capacity).
func (e *Environment) TotalCores() int {
	n := 0
	for _, c := range e.Clusters {
		n += c.TotalCores()
	}
	return n
}

// FreeCores sums free slots over clusters.
func (e *Environment) FreeCores() int {
	n := 0
	for _, c := range e.Clusters {
		n += c.FreeCores()
	}
	return n
}

// Utilization is the slot utilization over all clusters.
func (e *Environment) Utilization() float64 {
	total := e.TotalCores()
	if total == 0 {
		return 0
	}
	return float64(total-e.FreeCores()) / float64(total)
}

// NewHomogeneous builds an environment of the given kind with siteCount
// clusters of machineCount machines of coreCount cores each.
func NewHomogeneous(kind Kind, siteCount, machineCount, coreCount int) *Environment {
	env := &Environment{Kind: kind}
	id := 0
	for s := 0; s < siteCount; s++ {
		cl := &Cluster{Name: fmt.Sprintf("site-%d", s), Latency: 0.0005}
		for m := 0; m < machineCount; m++ {
			id++
			cl.Machines = append(cl.Machines, &Machine{ID: id, Cores: coreCount, Speed: 1})
		}
		env.Clusters = append(env.Clusters, cl)
	}
	switch kind {
	case KindGrid:
		env.InterLatency = 0.05
	case KindMultiCluster:
		env.InterLatency = 0.002
	case KindGeoDistributed:
		env.InterLatency = 0.1
	case KindCloud:
		env.Provider = NewCloudProvider(DefaultPricing())
	case KindCluster:
		// single site, no special latency
	}
	return env
}

// StandardEnvironment returns the calibrated environment for a Table 9 kind:
// CL is one 32-node cluster, G is 4 sites of 16 nodes, CD is a small base
// pool plus elastic provider, MCD is 3 co-located clusters, GDC is 5 distant
// sites.
func StandardEnvironment(kind Kind) *Environment {
	switch kind {
	case KindCluster:
		return NewHomogeneous(kind, 1, 32, 8)
	case KindGrid:
		return NewHomogeneous(kind, 4, 16, 8)
	case KindCloud:
		return NewHomogeneous(kind, 1, 8, 8)
	case KindMultiCluster:
		return NewHomogeneous(kind, 3, 16, 8)
	case KindGeoDistributed:
		return NewHomogeneous(kind, 5, 8, 8)
	default:
		panic(fmt.Sprintf("cluster: unknown kind %v", kind))
	}
}
