package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMachineClaimRelease(t *testing.T) {
	m := &Machine{ID: 1, Cores: 8, Speed: 1}
	if err := m.Claim(5); err != nil {
		t.Fatalf("Claim(5): %v", err)
	}
	if m.Free() != 3 || m.Used() != 5 {
		t.Errorf("Free/Used = %d/%d", m.Free(), m.Used())
	}
	if err := m.Claim(4); err == nil {
		t.Error("over-claim succeeded")
	}
	if err := m.Release(5); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := m.Release(1); err == nil {
		t.Error("over-release succeeded")
	}
	if err := m.Claim(-1); err == nil {
		t.Error("negative claim succeeded")
	}
}

func TestMachineInvariantProperty(t *testing.T) {
	// Property: any sequence of claims/releases keeps 0 <= used <= cores.
	f := func(ops []int8) bool {
		m := &Machine{ID: 1, Cores: 16, Speed: 1}
		for _, op := range ops {
			n := int(op)
			if n >= 0 {
				_ = m.Claim(n % 17)
			} else {
				_ = m.Release((-n) % 17)
			}
			if m.Used() < 0 || m.Used() > m.Cores {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClusterAggregates(t *testing.T) {
	c := &Cluster{Name: "c0", Machines: []*Machine{
		{ID: 1, Cores: 4, Speed: 1},
		{ID: 2, Cores: 4, Speed: 1},
	}}
	if c.TotalCores() != 8 || c.FreeCores() != 8 {
		t.Errorf("Total/Free = %d/%d", c.TotalCores(), c.FreeCores())
	}
	if _, err := c.FirstFit(3); err != nil {
		t.Fatalf("FirstFit: %v", err)
	}
	if got := c.Utilization(); math.Abs(got-3.0/8) > 1e-12 {
		t.Errorf("Utilization = %v, want 0.375", got)
	}
	// 3 used on m1 (1 free), m2 has 4 free: a 4-core request must go to m2.
	m, err := c.FirstFit(4)
	if err != nil || m.ID != 2 {
		t.Errorf("FirstFit(4) = %v,%v, want machine 2", m, err)
	}
	if _, err := c.FirstFit(2); err != ErrNoCapacity {
		t.Errorf("FirstFit over capacity err = %v, want ErrNoCapacity", err)
	}
	empty := &Cluster{}
	if empty.Utilization() != 0 {
		t.Error("empty cluster utilization != 0")
	}
}

func TestStandardEnvironments(t *testing.T) {
	tests := []struct {
		kind      Kind
		sites     int
		wantCores int
		elastic   bool
	}{
		{KindCluster, 1, 32 * 8, false},
		{KindGrid, 4, 4 * 16 * 8, false},
		{KindCloud, 1, 8 * 8, true},
		{KindMultiCluster, 3, 3 * 16 * 8, false},
		{KindGeoDistributed, 5, 5 * 8 * 8, false},
	}
	for _, tt := range tests {
		t.Run(tt.kind.String(), func(t *testing.T) {
			env := StandardEnvironment(tt.kind)
			if len(env.Clusters) != tt.sites {
				t.Errorf("sites = %d, want %d", len(env.Clusters), tt.sites)
			}
			if env.TotalCores() != tt.wantCores {
				t.Errorf("cores = %d, want %d", env.TotalCores(), tt.wantCores)
			}
			if (env.Provider != nil) != tt.elastic {
				t.Errorf("elastic = %v, want %v", env.Provider != nil, tt.elastic)
			}
			if env.Utilization() != 0 {
				t.Errorf("fresh utilization = %v", env.Utilization())
			}
		})
	}
}

func TestKindString(t *testing.T) {
	if KindGrid.String() != "G" || KindGeoDistributed.String() != "GDC" {
		t.Error("Kind String mismatch")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown Kind String mismatch")
	}
}

func TestCloudProviderBilling(t *testing.T) {
	cp := NewCloudProvider(Pricing{
		OnDemandPerCoreHour: 0.10,
		ReservedPerCoreHour: 0.05,
		BillingGranularity:  3600,
		StartupDelay:        100,
	})
	vm := cp.Provision(0, 4, false)
	if vm.BootedAt != 100 {
		t.Errorf("BootedAt = %v, want 100", vm.BootedAt)
	}
	if cp.RunningVMs() != 1 || cp.RunningCores() != 4 {
		t.Errorf("running = %d VMs / %d cores", cp.RunningVMs(), cp.RunningCores())
	}
	// Terminate after 90 minutes: billed 2 hours at $0.10 x 4 cores = $0.80.
	if err := cp.Terminate(5400, vm); err != nil {
		t.Fatalf("Terminate: %v", err)
	}
	if got := cp.AccruedCost(5400); math.Abs(got-0.80) > 1e-9 {
		t.Errorf("cost = %v, want 0.80", got)
	}
	if err := cp.Terminate(5400, vm); err == nil {
		t.Error("double terminate succeeded")
	}
}

func TestCloudReservedCheaper(t *testing.T) {
	cp := NewCloudProvider(DefaultPricing())
	od := cp.Provision(0, 2, false)
	rs := cp.Provision(0, 2, true)
	if err := cp.Terminate(7200, od); err != nil {
		t.Fatal(err)
	}
	costOD := cp.AccruedCost(7200)
	if err := cp.Terminate(7200, rs); err != nil {
		t.Fatal(err)
	}
	costRS := cp.AccruedCost(7200) - costOD
	if costRS >= costOD {
		t.Errorf("reserved %v not cheaper than on-demand %v", costRS, costOD)
	}
}

func TestCloudRunningCostAccrues(t *testing.T) {
	cp := NewCloudProvider(Pricing{OnDemandPerCoreHour: 1, BillingGranularity: 1, StartupDelay: 0})
	_ = cp.Provision(0, 1, false)
	early := cp.AccruedCost(1800)
	late := cp.AccruedCost(7200)
	if !(late > early && early > 0) {
		t.Errorf("running cost should accrue: early=%v late=%v", early, late)
	}
}

func TestVMClaimRelease(t *testing.T) {
	vm := &VM{ID: 1, Cores: 4}
	if err := vm.Claim(4); err != nil {
		t.Fatal(err)
	}
	if err := vm.Claim(1); err == nil {
		t.Error("over-claim on VM succeeded")
	}
	if err := vm.Release(2); err != nil {
		t.Fatal(err)
	}
	if vm.Free() != 2 {
		t.Errorf("Free = %d, want 2", vm.Free())
	}
	if err := vm.Release(3); err == nil {
		t.Error("over-release on VM succeeded")
	}
}

func TestBillingGranularityRounding(t *testing.T) {
	cp := NewCloudProvider(Pricing{OnDemandPerCoreHour: 1, BillingGranularity: 3600, StartupDelay: 0})
	vm := cp.Provision(0, 1, false)
	if err := cp.Terminate(1, vm); err != nil { // 1 second -> billed 1 hour
		t.Fatal(err)
	}
	if got := cp.AccruedCost(1); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("1s usage billed %v, want 1.0 (hourly rounding)", got)
	}
}
