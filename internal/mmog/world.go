// Package mmog simulates Massive Multiplayer Online Game ecosystems and the
// studies of the paper's Table 6: virtual-world scalability (static zoning
// versus the Area-of-Simulation technique, and Mirror-style computation
// offloading), player-population dynamics (MMORPG diurnal cycles, MOBA
// match-based play), implicit social networks mined from co-play, toxicity
// detection, and dynamic resource provisioning for game servers.
package mmog

import (
	"fmt"
	"math"
	"math/rand"
)

// Entity is a player avatar or game unit at a 2D position.
type Entity struct {
	ID int
	X  float64
	Y  float64
	// Actionable entities (units in combat) generate interaction load.
	Actionable bool
}

// World is a square virtual world of side Size with entities clustered
// around points of interest — the workload shape the RTSenv study found:
// multiple points of interest, tens of entities under careful management in
// some, hundreds under casual management in others.
type World struct {
	Size     float64
	Entities []Entity
	POIs     [][2]float64
}

// WorldConfig parameterizes world generation.
type WorldConfig struct {
	Size float64
	// POIs is the number of points of interest (RTS battles, towns).
	POIs int
	// Entities is the total entity count.
	Entities int
	// Spread is the Gaussian scatter of entities around their POI.
	Spread float64
	// HotFraction is the fraction of entities concentrated in the single
	// hottest POI (battle clustering).
	HotFraction float64
	Seed        int64
}

// DefaultWorldConfig is a 1000x1000 world with 5 POIs.
func DefaultWorldConfig(entities int) WorldConfig {
	return WorldConfig{Size: 1000, POIs: 5, Entities: entities, Spread: 30, HotFraction: 0.4, Seed: 1}
}

// GenerateWorld builds a world with clustered entities.
func GenerateWorld(cfg WorldConfig) *World {
	r := rand.New(rand.NewSource(cfg.Seed))
	w := &World{Size: cfg.Size}
	for p := 0; p < cfg.POIs; p++ {
		w.POIs = append(w.POIs, [2]float64{r.Float64() * cfg.Size, r.Float64() * cfg.Size})
	}
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v >= cfg.Size {
			return cfg.Size - 1e-9
		}
		return v
	}
	for i := 0; i < cfg.Entities; i++ {
		var poi [2]float64
		if r.Float64() < cfg.HotFraction {
			poi = w.POIs[0]
		} else {
			poi = w.POIs[r.Intn(len(w.POIs))]
		}
		w.Entities = append(w.Entities, Entity{
			ID:         i + 1,
			X:          clamp(poi[0] + r.NormFloat64()*cfg.Spread),
			Y:          clamp(poi[1] + r.NormFloat64()*cfg.Spread),
			Actionable: r.Float64() < 0.6,
		})
	}
	return w
}

// InteractionRadius is the distance within which two actionable entities
// interact (and thus cost simulation work).
const InteractionRadius = 50.0

// pairLoad computes the interaction load of a set of entities: the number of
// actionable pairs within the interaction radius. This is the quadratic term
// that limits MMOG scalability.
func pairLoad(entities []Entity) float64 {
	load := 0.0
	for i := 0; i < len(entities); i++ {
		if !entities[i].Actionable {
			continue
		}
		for j := i + 1; j < len(entities); j++ {
			if !entities[j].Actionable {
				continue
			}
			dx := entities[i].X - entities[j].X
			dy := entities[i].Y - entities[j].Y
			if dx*dx+dy*dy <= InteractionRadius*InteractionRadius {
				load++
			}
		}
	}
	// Linear baseline cost per entity (movement, state updates).
	return load + float64(len(entities))*0.1
}

// Partitioner splits a world across servers and reports per-server load.
type Partitioner interface {
	// Name identifies the technique.
	Name() string
	// Loads returns the per-server interaction load for the world when split
	// over servers servers.
	Loads(w *World, servers int) []float64
}

// ZonePartitioner is classic static spatial zoning: the world is cut into a
// grid of equal zones, each zone pinned to a server (round-robin when zones
// exceed servers).
type ZonePartitioner struct{}

// Name implements Partitioner.
func (ZonePartitioner) Name() string { return "zones" }

// Loads implements Partitioner.
func (ZonePartitioner) Loads(w *World, servers int) []float64 {
	if servers < 1 {
		servers = 1
	}
	// Grid side: ceil(sqrt(servers)) zones per axis.
	side := int(math.Ceil(math.Sqrt(float64(servers))))
	cell := w.Size / float64(side)
	zones := make([][]Entity, side*side)
	for _, e := range w.Entities {
		zx := int(e.X / cell)
		zy := int(e.Y / cell)
		if zx >= side {
			zx = side - 1
		}
		if zy >= side {
			zy = side - 1
		}
		idx := zy*side + zx
		zones[idx] = append(zones[idx], e)
	}
	loads := make([]float64, servers)
	for i, z := range zones {
		loads[i%servers] += pairLoad(z)
	}
	return loads
}

// AoSPartitioner is the Area-of-Simulation technique: simulation areas form
// around points of interest and are assigned to servers by load (longest
// processing time first), decoupling load placement from static geography.
type AoSPartitioner struct{}

// Name implements Partitioner.
func (AoSPartitioner) Name() string { return "area-of-simulation" }

// Loads implements Partitioner.
func (AoSPartitioner) Loads(w *World, servers int) []float64 {
	if servers < 1 {
		servers = 1
	}
	// Assign each entity to its nearest POI; each POI area may further be
	// split into sub-areas when overloaded (the AoS mechanism caps area
	// population by interest, not geography).
	areas := make([][]Entity, len(w.POIs))
	for _, e := range w.Entities {
		best, bestD := 0, math.Inf(1)
		for p, poi := range w.POIs {
			dx, dy := e.X-poi[0], e.Y-poi[1]
			if d := dx*dx + dy*dy; d < bestD {
				bestD = d
				best = p
			}
		}
		areas[best] = append(areas[best], e)
	}
	// Split any area larger than cap into chunks: inside one area entities
	// are interchangeable (same interest), so AoS can shard them and only
	// pay a small cross-shard synchronization overhead.
	const cap = 80
	var shards [][]Entity
	for _, a := range areas {
		for len(a) > cap {
			shards = append(shards, a[:cap])
			a = a[cap:]
		}
		if len(a) > 0 {
			shards = append(shards, a)
		}
	}
	// LPT assignment of shard loads to servers.
	loads := make([]float64, servers)
	shardLoads := make([]float64, len(shards))
	for i, sh := range shards {
		// Cross-shard sync overhead: 5% per shard beyond the first of an area.
		shardLoads[i] = pairLoad(sh) * 1.05
	}
	// Sort descending by load (simple selection for small n).
	order := make([]int, len(shards))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		maxJ := i
		for j := i + 1; j < len(order); j++ {
			if shardLoads[order[j]] > shardLoads[order[maxJ]] {
				maxJ = j
			}
		}
		order[i], order[maxJ] = order[maxJ], order[i]
	}
	for _, idx := range order {
		minS := 0
		for s := 1; s < servers; s++ {
			if loads[s] < loads[minS] {
				minS = s
			}
		}
		loads[minS] += shardLoads[idx]
	}
	return loads
}

// MirrorPartitioner is AoS plus Mirror-style computation offloading: a cloud
// mirror absorbs OffloadFraction of each server's interaction load at the
// price of added latency (modeled outside the load metric).
type MirrorPartitioner struct {
	OffloadFraction float64
}

// Name implements Partitioner.
func (m MirrorPartitioner) Name() string { return "mirror" }

// Loads implements Partitioner.
func (m MirrorPartitioner) Loads(w *World, servers int) []float64 {
	frac := m.OffloadFraction
	if frac < 0 {
		frac = 0
	}
	if frac > 0.9 {
		frac = 0.9
	}
	loads := AoSPartitioner{}.Loads(w, servers)
	for i := range loads {
		loads[i] *= 1 - frac
	}
	return loads
}

// MaxSupportedPlayers finds the largest entity count (by doubling then
// bisecting) for which the maximum per-server load stays within budget.
func MaxSupportedPlayers(p Partitioner, servers int, budget float64, seed int64) int {
	ok := func(n int) bool {
		cfg := DefaultWorldConfig(n)
		cfg.Seed = seed
		w := GenerateWorld(cfg)
		loads := p.Loads(w, servers)
		maxL := 0.0
		for _, l := range loads {
			if l > maxL {
				maxL = l
			}
		}
		return maxL <= budget
	}
	lo, hi := 0, 64
	for ok(hi) && hi < 1<<20 {
		lo = hi
		hi *= 2
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// ScalabilityRow is one line of the AoS scalability experiment.
type ScalabilityRow struct {
	Technique  string
	Servers    int
	MaxPlayers int
}

// RunScalabilityStudy compares zoning, AoS, and Mirror at several server
// counts under a fixed per-server load budget.
func RunScalabilityStudy(serverCounts []int, budget float64, seed int64) []ScalabilityRow {
	var rows []ScalabilityRow
	parts := []Partitioner{ZonePartitioner{}, AoSPartitioner{}, MirrorPartitioner{OffloadFraction: 0.5}}
	for _, servers := range serverCounts {
		for _, p := range parts {
			rows = append(rows, ScalabilityRow{
				Technique:  p.Name(),
				Servers:    servers,
				MaxPlayers: MaxSupportedPlayers(p, servers, budget, seed),
			})
		}
	}
	return rows
}

// String renders a row.
func (r ScalabilityRow) String() string {
	return fmt.Sprintf("%-20s servers=%-3d max players=%d", r.Technique, r.Servers, r.MaxPlayers)
}
