package mmog

import "testing"

func TestWorldSimBasics(t *testing.T) {
	cfg := DefaultWorldSimConfig(300, 8)
	cfg.Ticks = 20
	res, err := RunWorldSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != 20 {
		t.Errorf("Ticks = %d, want 20", res.Ticks)
	}
	if res.Entities != 300 || res.Servers != 8 {
		t.Errorf("shape = %d entities / %d servers", res.Entities, res.Servers)
	}
	if res.PeakLoad < res.MeanMaxLoad || res.MeanMaxLoad < res.MeanLoad {
		t.Errorf("load ordering violated: peak %v, mean-max %v, mean %v",
			res.PeakLoad, res.MeanMaxLoad, res.MeanLoad)
	}
	if res.Imbalance < 1 {
		t.Errorf("Imbalance = %v, want >= 1", res.Imbalance)
	}
}

func TestWorldSimDeterministicPerSeed(t *testing.T) {
	cfg := DefaultWorldSimConfig(200, 4)
	cfg.Ticks = 10
	cfg.Seed = 42
	a, err := RunWorldSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorldSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("same seed differs: %+v vs %+v", a, b)
	}
	cfg.Seed = 43
	c, err := RunWorldSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a == *c {
		t.Error("different seeds produced identical results")
	}
}

func TestWorldSimAoSBalancesBetterThanZones(t *testing.T) {
	run := func(p Partitioner) *WorldSimResult {
		cfg := DefaultWorldSimConfig(500, 16)
		cfg.Ticks = 15
		cfg.Partitioner = p
		cfg.Seed = 7
		res, err := RunWorldSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	zones := run(ZonePartitioner{})
	aos := run(AoSPartitioner{})
	// The battle cluster pins static zones to one hot server; AoS shards it.
	if aos.MeanMaxLoad >= zones.MeanMaxLoad {
		t.Errorf("AoS hottest server %v not below zones %v", aos.MeanMaxLoad, zones.MeanMaxLoad)
	}
}

func TestWorldSimRejectsBadConfig(t *testing.T) {
	cfg := DefaultWorldSimConfig(10, 0)
	if _, err := RunWorldSim(cfg); err == nil {
		t.Error("zero servers accepted")
	}
	cfg = DefaultWorldSimConfig(10, 2)
	cfg.Ticks = 0
	if _, err := RunWorldSim(cfg); err == nil {
		t.Error("zero ticks accepted")
	}
}

func TestPartitionerRegistry(t *testing.T) {
	for name, want := range map[string]string{
		"zones":              "zones",
		"ZONE":               "zones",
		"aos":                "area-of-simulation",
		"Area-Of-Simulation": "area-of-simulation",
		"mirror":             "mirror",
	} {
		p, err := PartitionerByName(name, 0)
		if err != nil {
			t.Errorf("%q: %v", name, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("%q resolved to %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := PartitionerByName("voronoi", 0); err == nil {
		t.Error("unknown partitioner accepted")
	}
	names := PartitionerNames()
	if len(names) != 3 || names[0] != "area-of-simulation" {
		t.Errorf("PartitionerNames = %v", names)
	}
	m, _ := PartitionerByName("mirror", 0.8)
	if mp, ok := m.(MirrorPartitioner); !ok || mp.OffloadFraction != 0.8 {
		t.Errorf("mirror offload not applied: %#v", m)
	}
}
