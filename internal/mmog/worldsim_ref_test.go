package mmog

import (
	"testing"

	"atlarge/internal/sim"
)

// runWorldSimRef is the pre-SoA RunWorldSim, kept verbatim as the parity
// reference: array-of-structs world, per-tick allocating Loads, chained
// self-rescheduling tick events. The SoA rewrite must reproduce its results
// bit-for-bit.
func runWorldSimRef(cfg WorldSimConfig) (*WorldSimResult, error) {
	if cfg.Partitioner == nil {
		cfg.Partitioner = AoSPartitioner{}
	}
	tickSec := cfg.TickSeconds
	if tickSec <= 0 {
		tickSec = 1
	}
	wander := cfg.Wander
	if wander <= 0 {
		wander = 2
	}
	cfg.World.Seed = cfg.Seed
	w := GenerateWorld(cfg.World)
	res := &WorldSimResult{Entities: len(w.Entities), Servers: cfg.Servers}

	k := sim.NewKernel(cfg.Seed)
	var rec sim.Recorder
	move := k.Rand("mmog/move")
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v >= w.Size {
			return w.Size - 1e-9
		}
		return v
	}
	var tick sim.Handler
	ticked := 0
	tick = func(k *sim.Kernel) {
		for i := range w.Entities {
			e := &w.Entities[i]
			px, py := nearestPOI(w, e.X, e.Y)
			e.X = clamp(e.X + move.NormFloat64()*wander + 0.02*(px-e.X))
			e.Y = clamp(e.Y + move.NormFloat64()*wander + 0.02*(py-e.Y))
		}
		loads := cfg.Partitioner.Loads(w, cfg.Servers)
		maxL, sum := 0.0, 0.0
		for _, l := range loads {
			sum += l
			if l > maxL {
				maxL = l
			}
		}
		mean := sum / float64(len(loads))
		now := k.Now()
		rec.Record("max_load", now, maxL)
		rec.Record("mean_load", now, mean)
		if mean > 0 {
			rec.Record("imbalance", now, maxL/mean)
		} else {
			rec.Record("imbalance", now, 1)
		}
		ticked++
		if ticked < cfg.Ticks {
			k.After(sim.Duration(tickSec), "world-tick", tick)
		}
	}
	k.At(0, "world-tick", tick)
	if err := k.Run(); err != nil {
		return nil, err
	}
	res.Ticks = ticked
	res.PeakLoad = maxOf(rec.Values("max_load"))
	res.MeanMaxLoad = meanOf(rec.Values("max_load"))
	res.MeanLoad = meanOf(rec.Values("mean_load"))
	res.Imbalance = meanOf(rec.Values("imbalance"))
	return res, nil
}

// TestGenerateWorldSoAMatchesGenerateWorld pins the SoA generator to the AoS
// one: identical RNG draw order means entity i is bit-identical.
func TestGenerateWorldSoAMatchesGenerateWorld(t *testing.T) {
	for _, seed := range []int64{1, 7, 12345} {
		cfg := DefaultWorldConfig(700)
		cfg.Seed = seed
		aos := GenerateWorld(cfg)
		soa := GenerateWorldSoA(cfg)
		if soa.Len() != len(aos.Entities) {
			t.Fatalf("seed %d: entity count %d != %d", seed, soa.Len(), len(aos.Entities))
		}
		if len(soa.POIs) != len(aos.POIs) {
			t.Fatalf("seed %d: POI count mismatch", seed)
		}
		for p := range soa.POIs {
			if soa.POIs[p] != aos.POIs[p] {
				t.Fatalf("seed %d: POI %d: %v != %v", seed, p, soa.POIs[p], aos.POIs[p])
			}
		}
		for i, e := range aos.Entities {
			if soa.X[i] != e.X || soa.Y[i] != e.Y || soa.Actionable[i] != e.Actionable {
				t.Fatalf("seed %d: entity %d: (%v,%v,%v) != (%v,%v,%v)",
					seed, i, soa.X[i], soa.Y[i], soa.Actionable[i], e.X, e.Y, e.Actionable)
			}
		}
	}
}

// TestLoadsSoAMatchesLoads pins every built-in partitioner's SoA path to its
// allocating Loads, bit for bit, including scratch reuse across calls.
func TestLoadsSoAMatchesLoads(t *testing.T) {
	parts := []SoAPartitioner{
		ZonePartitioner{},
		AoSPartitioner{},
		MirrorPartitioner{OffloadFraction: 0.5},
		MirrorPartitioner{OffloadFraction: -1}, // clamps to 0
		MirrorPartitioner{OffloadFraction: 2},  // clamps to 0.9
	}
	var scratch PartitionScratch // shared across all cases: reuse must not leak state
	for _, seed := range []int64{1, 9, 424242} {
		for _, entities := range []int{0, 1, 50, 900} {
			cfg := DefaultWorldConfig(entities)
			cfg.Seed = seed
			aos := GenerateWorld(cfg)
			soa := GenerateWorldSoA(cfg)
			for _, p := range parts {
				for _, servers := range []int{1, 3, 8, 16} {
					want := p.Loads(aos, servers)
					got := p.LoadsSoA(soa, servers, &scratch)
					if len(got) != len(want) {
						t.Fatalf("%s servers=%d: len %d != %d", p.Name(), servers, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s seed=%d n=%d servers=%d: load[%d] %v != %v",
								p.Name(), seed, entities, servers, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestWorldSimMatchesReference pins the SoA WorldSim to the pre-rewrite
// implementation: exact result equality across partitioners, seeds, and a
// fractional tick spacing.
func TestWorldSimMatchesReference(t *testing.T) {
	cases := []WorldSimConfig{
		DefaultWorldSimConfig(300, 8),
		DefaultWorldSimConfig(200, 4),
		{
			World:       DefaultWorldConfig(250),
			Partitioner: ZonePartitioner{},
			Servers:     9,
			Ticks:       25,
			TickSeconds: 0.25,
			Wander:      3,
			Seed:        77,
		},
		{
			World:       DefaultWorldConfig(150),
			Partitioner: MirrorPartitioner{OffloadFraction: 0.4},
			Servers:     5,
			Ticks:       40,
			TickSeconds: 1.5,
			Seed:        1234,
		},
	}
	cases[1].Seed = 99
	for i, cfg := range cases {
		want, err := runWorldSimRef(cfg)
		if err != nil {
			t.Fatalf("case %d: reference: %v", i, err)
		}
		got, err := RunWorldSim(cfg)
		if err != nil {
			t.Fatalf("case %d: soa: %v", i, err)
		}
		if *got != *want {
			t.Fatalf("case %d: result diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// customTestPartitioner lacks a SoA path, forcing WorldSim's synchronized
// AoS-view fallback.
type customTestPartitioner struct{}

func (customTestPartitioner) Name() string { return "custom-test" }

func (customTestPartitioner) Loads(w *World, servers int) []float64 {
	return AoSPartitioner{}.Loads(w, servers)
}

// TestWorldSimFallbackView pins the non-SoA partitioner fallback: a custom
// partitioner sees a fully synchronized AoS view each tick.
func TestWorldSimFallbackView(t *testing.T) {
	cfg := DefaultWorldSimConfig(200, 6)
	cfg.Ticks = 10
	want, err := runWorldSimRef(cfg) // AoS partitioner, reference loop
	if err != nil {
		t.Fatal(err)
	}
	cfg.Partitioner = customTestPartitioner{}
	got, err := RunWorldSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("fallback diverged:\n got %+v\nwant %+v", got, want)
	}
}
