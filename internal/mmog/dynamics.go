package mmog

import (
	"math"
	"math/rand"

	"atlarge/internal/sim"
	"atlarge/internal/stats"
)

// PopulationModel generates the player-population time series of an MMOG,
// reproducing the short- and long-term dynamics uncovered by the Runescape
// longitudinal study: strong diurnal cycles, a weekly rhythm, long-term
// growth or decay, and noise.
type PopulationModel struct {
	// Base is the mean concurrent player count.
	Base float64
	// DailyAmp and WeeklyAmp are relative amplitudes in [0,1).
	DailyAmp  float64
	WeeklyAmp float64
	// GrowthPerDay is the relative long-term trend per day (may be negative).
	GrowthPerDay float64
	// NoiseCV is the multiplicative noise coefficient of variation.
	NoiseCV float64
	Seed    int64
}

// DefaultPopulationModel resembles a mid-size MMORPG.
func DefaultPopulationModel() PopulationModel {
	return PopulationModel{
		Base:         50000,
		DailyAmp:     0.45,
		WeeklyAmp:    0.15,
		GrowthPerDay: 0.001,
		NoiseCV:      0.03,
		Seed:         1,
	}
}

// Series returns per-hour concurrent player counts for the given number of
// days. The series is produced by an hourly tick event on the shared
// simulation kernel (one virtual second per hour), so population dynamics
// compose with other kernel-driven models; the RNG is seeded from the model
// alone, keeping the series bit-identical to the historical loop.
func (m PopulationModel) Series(days int) []float64 {
	r := rand.New(rand.NewSource(m.Seed))
	out := make([]float64, 0, days*24)
	k := sim.NewKernel(m.Seed)
	tick := func(k *sim.Kernel) {
		h := len(out)
		day := float64(h) / 24
		daily := 1 + m.DailyAmp*math.Sin(2*math.Pi*(float64(h%24)-14)/24) // peak ~20:00
		weekly := 1 + m.WeeklyAmp*math.Sin(2*math.Pi*(day-5)/7)           // weekend peak
		trend := math.Pow(1+m.GrowthPerDay, day)
		noise := 1 + m.NoiseCV*r.NormFloat64()
		v := m.Base * daily * weekly * trend * noise
		if v < 0 {
			v = 0
		}
		out = append(out, v)
	}
	if days*24 > 0 {
		// The hourly ticks are batch-scheduled up front (integer times, so
		// bit-identical to the historical self-rescheduling chain) and the
		// queue is pre-sized to its exact lifetime size.
		k.Reserve(days * 24)
		k.At(0, "hour", tick)
		k.AfterEach(1, days*24-1, "hour", tick)
	}
	if err := k.Run(); err != nil {
		panic(err) // unreachable: the tick chain neither stops nor errors
	}
	return out
}

// DynamicsReport summarizes a population series the way the longitudinal
// studies reported it.
type DynamicsReport struct {
	MeanPlayers     float64
	PeakToTrough    float64 // daily peak/trough ratio
	WeeklyVariation float64 // weekend/weekday mean ratio
	TrendPerDay     float64 // fitted relative growth per day
}

// AnalyzeDynamics extracts the headline dynamics from an hourly series.
func AnalyzeDynamics(hourly []float64) DynamicsReport {
	rep := DynamicsReport{MeanPlayers: stats.Mean(hourly)}
	days := len(hourly) / 24
	if days == 0 {
		return rep
	}
	// Daily peak/trough averaged over days.
	var ratios []float64
	for d := 0; d < days; d++ {
		day := hourly[d*24 : (d+1)*24]
		lo := stats.Min(day)
		if lo > 0 {
			ratios = append(ratios, stats.Max(day)/lo)
		}
	}
	rep.PeakToTrough = stats.Mean(ratios)
	// Weekend vs weekday.
	var we, wd []float64
	for d := 0; d < days; d++ {
		mean := stats.Mean(hourly[d*24 : (d+1)*24])
		if d%7 == 5 || d%7 == 6 {
			we = append(we, mean)
		} else {
			wd = append(wd, mean)
		}
	}
	if len(we) > 0 && len(wd) > 0 && stats.Mean(wd) > 0 {
		rep.WeeklyVariation = stats.Mean(we) / stats.Mean(wd)
	}
	// Trend: regression of log daily mean on day index.
	var xs, ys []float64
	for d := 0; d < days; d++ {
		mean := stats.Mean(hourly[d*24 : (d+1)*24])
		if mean > 0 {
			xs = append(xs, float64(d))
			ys = append(ys, math.Log(mean))
		}
	}
	if fit, err := stats.LinearRegression(xs, ys); err == nil {
		rep.TrendPerDay = math.Exp(fit.Slope) - 1
	}
	return rep
}

// Match is one MOBA match: a short session with a fixed team size.
type Match struct {
	ID      int
	StartH  float64
	Players []int
	Winner  int // 0 or 1: which half of Players won
	// DurationMin is the match length in minutes.
	DurationMin float64
}

// MatchModel generates MOBA matches, reproducing the '12 match-based-game
// analysis: short sessions, fixed team sizes, skill-driven matchmaking
// pools, and duration concentrated around a mode.
type MatchModel struct {
	Players  int // population of distinct players
	TeamSize int
	Seed     int64
}

// Generate produces n matches. Player pairs that co-occur often come from
// adjacent skill buckets, which is what makes the implicit social network
// clustered.
func (m MatchModel) Generate(n int) []Match {
	r := rand.New(rand.NewSource(m.Seed))
	if m.TeamSize <= 0 {
		m.TeamSize = 5
	}
	if m.Players < m.TeamSize*2 {
		m.Players = m.TeamSize * 2
	}
	// Skill buckets: players are grouped; matches draw from one bucket.
	buckets := m.Players / (m.TeamSize * 4)
	if buckets < 1 {
		buckets = 1
	}
	matches := make([]Match, 0, n)
	for i := 0; i < n; i++ {
		b := r.Intn(buckets)
		lo := b * m.Players / buckets
		hi := (b + 1) * m.Players / buckets
		pool := hi - lo
		if pool < m.TeamSize*2 {
			lo = 0
			pool = m.Players
		}
		seen := map[int]bool{}
		players := make([]int, 0, m.TeamSize*2)
		for len(players) < m.TeamSize*2 {
			p := lo + r.Intn(pool)
			if !seen[p] {
				seen[p] = true
				players = append(players, p)
			}
		}
		matches = append(matches, Match{
			ID:          i + 1,
			StartH:      float64(i) * 0.2,
			Players:     players,
			Winner:      r.Intn(2),
			DurationMin: 25 + r.NormFloat64()*8,
		})
	}
	return matches
}
