package mmog

import (
	"fmt"
	"testing"
)

// BenchmarkWorldTick measures one steady-state world tick — wander, AoS
// binning, pair interaction, LPT assignment — at increasing entity counts.
// The sim is built once per size; B/op reports the per-tick allocation, which
// the SoA layout and partition scratch keep at zero, so the 10^6-entity world
// runs in bounded memory.
func BenchmarkWorldTick(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("entities=%d", n), func(b *testing.B) {
			s, err := NewWorldSim(DefaultWorldSimConfig(n, 8))
			if err != nil {
				b.Fatal(err)
			}
			s.Tick() // warm the scratch buffers to their high-water mark
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Tick()
			}
		})
	}
}
