package mmog

import (
	"math"
	"math/rand"
)

// WorldSoA is the struct-of-arrays representation of a World: entity fields
// live in parallel slices instead of a []Entity, so the per-tick hot loops
// (wander, binning, pair interaction) stream through dense float64 arrays.
// Entity i's implicit ID is i+1, matching GenerateWorld.
type WorldSoA struct {
	Size       float64
	X, Y       []float64
	Actionable []bool
	POIs       [][2]float64
}

// Len returns the entity count.
func (w *WorldSoA) Len() int { return len(w.X) }

// GenerateWorldSoA builds the same world GenerateWorld builds — identical RNG
// draw order, so entity i has bit-identical position and actionability — in
// struct-of-arrays form.
func GenerateWorldSoA(cfg WorldConfig) *WorldSoA {
	r := rand.New(rand.NewSource(cfg.Seed))
	w := &WorldSoA{
		Size:       cfg.Size,
		X:          make([]float64, 0, cfg.Entities),
		Y:          make([]float64, 0, cfg.Entities),
		Actionable: make([]bool, 0, cfg.Entities),
	}
	for p := 0; p < cfg.POIs; p++ {
		w.POIs = append(w.POIs, [2]float64{r.Float64() * cfg.Size, r.Float64() * cfg.Size})
	}
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v >= cfg.Size {
			return cfg.Size - 1e-9
		}
		return v
	}
	for i := 0; i < cfg.Entities; i++ {
		var poi [2]float64
		if r.Float64() < cfg.HotFraction {
			poi = w.POIs[0]
		} else {
			poi = w.POIs[r.Intn(len(w.POIs))]
		}
		w.X = append(w.X, clamp(poi[0]+r.NormFloat64()*cfg.Spread))
		w.Y = append(w.Y, clamp(poi[1]+r.NormFloat64()*cfg.Spread))
		w.Actionable = append(w.Actionable, r.Float64() < 0.6)
	}
	return w
}

// nearestPOI returns the closest point of interest to (x, y), with the same
// strict-less scan as the AoS form.
func (w *WorldSoA) nearestPOI(x, y float64) (float64, float64) {
	bx, by, bestD := 0.0, 0.0, math.Inf(1)
	for _, poi := range w.POIs {
		dx, dy := x-poi[0], y-poi[1]
		if d := dx*dx + dy*dy; d < bestD {
			bestD = d
			bx, by = poi[0], poi[1]
		}
	}
	return bx, by
}

// pairLoadIdx is pairLoad over a group of entity indices into a WorldSoA:
// actionable pairs within the interaction radius plus the linear per-entity
// baseline. The pair count is order-insensitive and every subtraction matches
// pairLoad's, so a group holding the same entities produces the identical
// float64.
func pairLoadIdx(w *WorldSoA, idxs []int32) float64 {
	load := 0.0
	for a := 0; a < len(idxs); a++ {
		i := idxs[a]
		if !w.Actionable[i] {
			continue
		}
		xi, yi := w.X[i], w.Y[i]
		for b := a + 1; b < len(idxs); b++ {
			j := idxs[b]
			if !w.Actionable[j] {
				continue
			}
			dx := xi - w.X[j]
			dy := yi - w.Y[j]
			if dx*dx+dy*dy <= InteractionRadius*InteractionRadius {
				load++
			}
		}
	}
	return load + float64(len(idxs))*0.1
}

// PartitionScratch holds the reusable buffers of the SoA partitioning paths.
// A zero PartitionScratch is ready to use; buffers grow to the high-water
// mark of entities/bins/shards and are then reused, so a steady-state tick
// allocates nothing. The slice LoadsSoA returns is owned by the scratch and
// valid until the next LoadsSoA call with the same scratch.
type PartitionScratch struct {
	bin        []int32 // per-entity bin id
	counts     []int32 // per-bin entity count
	cursor     []int32 // per-bin write cursor (ends after the scatter)
	order      []int32 // entity indices grouped by bin, stable within a bin
	shardStart []int32 // per-shard [start, end) ranges into order
	shardEnd   []int32
	shardLoads []float64
	shardOrder []int
	loads      []float64
}

func growInt32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

func growF64(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

func growInts(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

// groupByBin counting-sorts entity indices by s.bin into s.order: bins are
// contiguous and entities keep ascending index order within a bin — the same
// order appending to [][]Entity produces. nb is the bin count; s.bin and
// s.counts must already be filled.
func (s *PartitionScratch) groupByBin(n, nb int) {
	s.cursor = growInt32(s.cursor, nb)
	start := int32(0)
	for b := 0; b < nb; b++ {
		s.cursor[b] = start
		start += s.counts[b]
	}
	s.order = growInt32(s.order, n)
	for i := 0; i < n; i++ {
		b := s.bin[i]
		s.order[s.cursor[b]] = int32(i)
		s.cursor[b]++
	}
	// s.cursor[b] is now the end offset of bin b; its start is end-counts[b].
}

// SoAPartitioner is a Partitioner with an allocation-free struct-of-arrays
// path. The built-in techniques implement it; WorldSim uses LoadsSoA when
// available and falls back to Loads on a synchronized AoS view otherwise.
type SoAPartitioner interface {
	Partitioner
	// LoadsSoA is Loads over a WorldSoA, reusing scratch buffers. For the
	// same world contents it returns bit-identical per-server loads.
	LoadsSoA(w *WorldSoA, servers int, s *PartitionScratch) []float64
}

// LoadsSoA implements SoAPartitioner: static zoning without the per-call
// [][]Entity allocation.
func (ZonePartitioner) LoadsSoA(w *WorldSoA, servers int, s *PartitionScratch) []float64 {
	if servers < 1 {
		servers = 1
	}
	side := int(math.Ceil(math.Sqrt(float64(servers))))
	cell := w.Size / float64(side)
	nb := side * side
	n := w.Len()
	s.bin = growInt32(s.bin, n)
	s.counts = growInt32(s.counts, nb)
	for b := range s.counts {
		s.counts[b] = 0
	}
	for i := 0; i < n; i++ {
		zx := int(w.X[i] / cell)
		zy := int(w.Y[i] / cell)
		if zx >= side {
			zx = side - 1
		}
		if zy >= side {
			zy = side - 1
		}
		b := int32(zy*side + zx)
		s.bin[i] = b
		s.counts[b]++
	}
	s.groupByBin(n, nb)
	s.loads = growF64(s.loads, servers)
	for i := range s.loads {
		s.loads[i] = 0
	}
	for b := 0; b < nb; b++ {
		end := s.cursor[b]
		s.loads[b%servers] += pairLoadIdx(w, s.order[end-s.counts[b]:end])
	}
	return s.loads
}

// aosShardCap is the AoS area population cap: larger areas shard into chunks
// of this size (world.go's Loads uses the same constant inline).
const aosShardCap = 80

// LoadsSoA implements SoAPartitioner: Area-of-Simulation without per-call
// area/shard slice allocation. Shard composition, the 5% cross-shard
// overhead, the descending selection sort, and the LPT min-scan replicate
// Loads exactly, so the per-server loads are bit-identical.
func (AoSPartitioner) LoadsSoA(w *WorldSoA, servers int, s *PartitionScratch) []float64 {
	if servers < 1 {
		servers = 1
	}
	n := w.Len()
	nb := len(w.POIs)
	s.bin = growInt32(s.bin, n)
	s.counts = growInt32(s.counts, nb)
	for b := range s.counts {
		s.counts[b] = 0
	}
	for i := 0; i < n; i++ {
		x, y := w.X[i], w.Y[i]
		best, bestD := 0, math.Inf(1)
		for p, poi := range w.POIs {
			dx, dy := x-poi[0], y-poi[1]
			if d := dx*dx + dy*dy; d < bestD {
				bestD = d
				best = p
			}
		}
		s.bin[i] = int32(best)
		s.counts[best]++
	}
	s.groupByBin(n, nb)
	// Chunk each area into shards of at most aosShardCap entities, in area
	// order — the same shard list Loads builds by slicing areas.
	s.shardStart = s.shardStart[:0]
	s.shardEnd = s.shardEnd[:0]
	for b := 0; b < nb; b++ {
		end := s.cursor[b]
		a := end - s.counts[b]
		for end-a > aosShardCap {
			s.shardStart = append(s.shardStart, a)
			s.shardEnd = append(s.shardEnd, a+aosShardCap)
			a += aosShardCap
		}
		if end-a > 0 {
			s.shardStart = append(s.shardStart, a)
			s.shardEnd = append(s.shardEnd, end)
		}
	}
	ns := len(s.shardStart)
	s.shardLoads = growF64(s.shardLoads, ns)
	for i := 0; i < ns; i++ {
		s.shardLoads[i] = pairLoadIdx(w, s.order[s.shardStart[i]:s.shardEnd[i]]) * 1.05
	}
	// Descending selection sort of shard indices — kept verbatim from Loads
	// (including its unstable swaps) so equal-load shards keep the same order.
	s.shardOrder = growInts(s.shardOrder, ns)
	for i := range s.shardOrder {
		s.shardOrder[i] = i
	}
	for i := 0; i < ns; i++ {
		maxJ := i
		for j := i + 1; j < ns; j++ {
			if s.shardLoads[s.shardOrder[j]] > s.shardLoads[s.shardOrder[maxJ]] {
				maxJ = j
			}
		}
		s.shardOrder[i], s.shardOrder[maxJ] = s.shardOrder[maxJ], s.shardOrder[i]
	}
	s.loads = growF64(s.loads, servers)
	for i := range s.loads {
		s.loads[i] = 0
	}
	for _, idx := range s.shardOrder {
		minS := 0
		for srv := 1; srv < servers; srv++ {
			if s.loads[srv] < s.loads[minS] {
				minS = srv
			}
		}
		s.loads[minS] += s.shardLoads[idx]
	}
	return s.loads
}

// LoadsSoA implements SoAPartitioner: the AoS loads scaled by the retained
// fraction, as in Loads.
func (m MirrorPartitioner) LoadsSoA(w *WorldSoA, servers int, s *PartitionScratch) []float64 {
	frac := m.OffloadFraction
	if frac < 0 {
		frac = 0
	}
	if frac > 0.9 {
		frac = 0.9
	}
	loads := AoSPartitioner{}.LoadsSoA(w, servers, s)
	for i := range loads {
		loads[i] *= 1 - frac
	}
	return loads
}
