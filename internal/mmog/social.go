package mmog

import (
	"math/rand"
	"sort"

	"atlarge/internal/stats"
)

// SocialNetwork is the implicit player graph mined from co-play: an edge
// connects two players who appeared in the same match, weighted by
// co-occurrence count (Iosup et al., IEEE IC'14).
type SocialNetwork struct {
	// Adj maps player -> co-player -> co-occurrence count.
	Adj map[int]map[int]int
}

// BuildSocialNetwork mines the implicit network from matches.
func BuildSocialNetwork(matches []Match) *SocialNetwork {
	sn := &SocialNetwork{Adj: make(map[int]map[int]int)}
	for _, m := range matches {
		for i := 0; i < len(m.Players); i++ {
			for j := i + 1; j < len(m.Players); j++ {
				sn.addEdge(m.Players[i], m.Players[j])
				sn.addEdge(m.Players[j], m.Players[i])
			}
		}
	}
	return sn
}

func (sn *SocialNetwork) addEdge(a, b int) {
	if sn.Adj[a] == nil {
		sn.Adj[a] = make(map[int]int)
	}
	sn.Adj[a][b]++
}

// Nodes returns the number of players in the network.
func (sn *SocialNetwork) Nodes() int { return len(sn.Adj) }

// Edges returns the number of undirected edges.
func (sn *SocialNetwork) Edges() int {
	n := 0
	for _, nb := range sn.Adj {
		n += len(nb)
	}
	return n / 2
}

// DegreeDistribution returns the sorted degrees of all nodes.
func (sn *SocialNetwork) DegreeDistribution() []float64 {
	out := make([]float64, 0, len(sn.Adj))
	for _, nb := range sn.Adj {
		out = append(out, float64(len(nb)))
	}
	sort.Float64s(out)
	return out
}

// ClusteringCoefficient returns the mean local clustering coefficient, the
// signature of community structure in co-play graphs.
func (sn *SocialNetwork) ClusteringCoefficient() float64 {
	var coeffs []float64
	for v, nb := range sn.Adj {
		neigh := make([]int, 0, len(nb))
		for u := range nb {
			neigh = append(neigh, u)
		}
		if len(neigh) < 2 {
			continue
		}
		links := 0
		for i := 0; i < len(neigh); i++ {
			for j := i + 1; j < len(neigh); j++ {
				if _, ok := sn.Adj[neigh[i]][neigh[j]]; ok {
					links++
				}
			}
		}
		possible := len(neigh) * (len(neigh) - 1) / 2
		coeffs = append(coeffs, float64(links)/float64(possible))
		_ = v
	}
	return stats.Mean(coeffs)
}

// RandomBaselineClustering estimates the clustering coefficient of an
// Erdős–Rényi graph with the same node and edge counts: p = 2E / (N(N-1)).
func (sn *SocialNetwork) RandomBaselineClustering() float64 {
	n := float64(sn.Nodes())
	if n < 2 {
		return 0
	}
	return 2 * float64(sn.Edges()) / (n * (n - 1))
}

// ChatEvent is one chat line with ground-truth and detector outcomes, for
// the toxicity-detection study (Märtens et al., NETGAMES'15).
type ChatEvent struct {
	Match   int
	Player  int
	Toxic   bool // ground truth
	Flagged bool // detector output
}

// ToxicityModel generates chat with ground-truth toxicity: losing players
// are substantially more likely to produce toxic messages, which the study
// exploited for detection.
type ToxicityModel struct {
	// BaseRate is the toxic probability for winners.
	BaseRate float64
	// LosingMultiplier scales the toxic probability for the losing team.
	LosingMultiplier float64
	// LinesPerPlayer is the mean chat lines each player emits per match.
	LinesPerPlayer float64
	Seed           int64
}

// DefaultToxicityModel matches the study's qualitative finding.
func DefaultToxicityModel() ToxicityModel {
	return ToxicityModel{BaseRate: 0.02, LosingMultiplier: 4, LinesPerPlayer: 3, Seed: 1}
}

// Generate produces chat events for the matches.
func (tm ToxicityModel) Generate(matches []Match) []ChatEvent {
	r := rand.New(rand.NewSource(tm.Seed))
	var events []ChatEvent
	for _, m := range matches {
		half := len(m.Players) / 2
		for idx, p := range m.Players {
			losing := (idx < half) == (m.Winner == 1)
			rate := tm.BaseRate
			if losing {
				rate *= tm.LosingMultiplier
			}
			lines := int(tm.LinesPerPlayer * (0.5 + r.Float64()))
			for l := 0; l < lines; l++ {
				events = append(events, ChatEvent{
					Match:  m.ID,
					Player: p,
					Toxic:  r.Float64() < rate,
				})
			}
		}
	}
	return events
}

// ToxicityDetector flags toxic chat using a noisy classifier with the given
// true-positive and false-positive rates, mirroring the reported detector
// quality regime.
type ToxicityDetector struct {
	TruePositiveRate  float64
	FalsePositiveRate float64
	Seed              int64
}

// DetectionReport scores a detector run.
type DetectionReport struct {
	Precision float64
	Recall    float64
	Flagged   int
	Toxic     int
	Total     int
}

// Apply runs the detector over events (mutating Flagged) and scores it.
func (d ToxicityDetector) Apply(events []ChatEvent) DetectionReport {
	r := rand.New(rand.NewSource(d.Seed))
	var tp, fp, fn int
	for i := range events {
		if events[i].Toxic {
			events[i].Flagged = r.Float64() < d.TruePositiveRate
			if events[i].Flagged {
				tp++
			} else {
				fn++
			}
		} else {
			events[i].Flagged = r.Float64() < d.FalsePositiveRate
			if events[i].Flagged {
				fp++
			}
		}
	}
	rep := DetectionReport{Flagged: tp + fp, Toxic: tp + fn, Total: len(events)}
	if tp+fp > 0 {
		rep.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		rep.Recall = float64(tp) / float64(tp+fn)
	}
	return rep
}
