package mmog

import "fmt"

// Table6Row is one reproduced row of Table 6 (the MMOG studies).
type Table6Row struct {
	Study   string
	Feature string
	Finding string
	Value   float64
}

// RunTable6 executes the MMOG studies and renders row summaries.
func RunTable6(seed int64) []Table6Row {
	var rows []Table6Row

	// Nae'07/'08: MMORPG dynamics.
	pm := DefaultPopulationModel()
	pm.Seed = seed
	dyn := AnalyzeDynamics(pm.Series(28))
	rows = append(rows, Table6Row{
		Study: "Nae'07", Feature: "Dynamics (MMORPG)",
		Finding: fmt.Sprintf("daily peak/trough %.1fx, weekend uplift %.2fx, trend %+.2f%%/day",
			dyn.PeakToTrough, dyn.WeeklyVariation, 100*dyn.TrendPerDay),
		Value: dyn.PeakToTrough,
	})

	// Guo'12: MOBA dynamics.
	matches := MatchModel{Players: 2000, TeamSize: 5, Seed: seed}.Generate(3000)
	rows = append(rows, Table6Row{
		Study: "Guo'12", Feature: "Dynamics (MOBA)",
		Finding: fmt.Sprintf("%d matches of %d players, match-based play", len(matches), 10),
		Value:   float64(len(matches)),
	})

	// Iosup'14: implicit social networks.
	sn := BuildSocialNetwork(matches)
	cc := sn.ClusteringCoefficient()
	base := sn.RandomBaselineClustering()
	ratio := 0.0
	if base > 0 {
		ratio = cc / base
	}
	rows = append(rows, Table6Row{
		Study: "Iosup'14", Feature: "Social networks",
		Finding: fmt.Sprintf("clustering %.3f = %.1fx the random baseline (%d nodes, %d edges)",
			cc, ratio, sn.Nodes(), sn.Edges()),
		Value: ratio,
	})

	// Märtens'15: toxicity.
	events := DefaultToxicityModel().Generate(matches[:500])
	det := ToxicityDetector{TruePositiveRate: 0.8, FalsePositiveRate: 0.02, Seed: seed}
	rep := det.Apply(events)
	rows = append(rows, Table6Row{
		Study: "Märtens'15", Feature: "Toxicity",
		Finding: fmt.Sprintf("detector precision %.2f recall %.2f over %d chat lines",
			rep.Precision, rep.Recall, rep.Total),
		Value: rep.Precision,
	})

	// Shen'11/'15: RTSenv + Area of Simulation scalability.
	sc := RunScalabilityStudy([]int{4, 16}, 3000, seed)
	var zone16, aos16, mirror16 int
	for _, r := range sc {
		if r.Servers == 16 {
			switch r.Technique {
			case "zones":
				zone16 = r.MaxPlayers
			case "area-of-simulation":
				aos16 = r.MaxPlayers
			case "mirror":
				mirror16 = r.MaxPlayers
			}
		}
	}
	gain := 0.0
	if zone16 > 0 {
		gain = float64(aos16) / float64(zone16)
	}
	rows = append(rows, Table6Row{
		Study: "Shen'15", Feature: "V-World scalability (AoS)",
		Finding: fmt.Sprintf("16 servers: zones %d, AoS %d (%.1fx), mirror %d players",
			zone16, aos16, gain, mirror16),
		Value: gain,
	})

	// Nae'08-11: dynamic provisioning.
	hourly := pm.Series(14)
	static := EvaluateProvisioning(StaticPeak{}, hourly, 1000)
	pred := EvaluateProvisioning(Predictive{}, hourly, 1000)
	saving := 0.0
	if static.ServerHours > 0 {
		saving = 100 * (1 - float64(pred.ServerHours)/float64(static.ServerHours))
	}
	rows = append(rows, Table6Row{
		Study: "Nae'08", Feature: "RM&S provisioning",
		Finding: fmt.Sprintf("predictive saves %.0f%% server-hours vs static peak at %.1f%% QoS violations",
			saving, pred.ViolationPct),
		Value: saving,
	})

	return rows
}
