package mmog

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateWorld(t *testing.T) {
	cfg := DefaultWorldConfig(500)
	w := GenerateWorld(cfg)
	if len(w.Entities) != 500 {
		t.Fatalf("entities = %d", len(w.Entities))
	}
	if len(w.POIs) != cfg.POIs {
		t.Fatalf("POIs = %d", len(w.POIs))
	}
	for _, e := range w.Entities {
		if e.X < 0 || e.X >= cfg.Size || e.Y < 0 || e.Y >= cfg.Size {
			t.Fatalf("entity %d out of bounds: (%v,%v)", e.ID, e.X, e.Y)
		}
	}
}

func TestPairLoadQuadraticInCluster(t *testing.T) {
	// All entities co-located: load ~ n(n-1)/2.
	mk := func(n int) []Entity {
		es := make([]Entity, n)
		for i := range es {
			es[i] = Entity{ID: i, X: 10, Y: 10, Actionable: true}
		}
		return es
	}
	l10 := pairLoad(mk(10))
	l20 := pairLoad(mk(20))
	if l20 < 3.5*l10 {
		t.Errorf("load not superlinear: l10=%v l20=%v", l10, l20)
	}
}

func TestPairLoadIgnoresDistantPairs(t *testing.T) {
	es := []Entity{
		{ID: 1, X: 0, Y: 0, Actionable: true},
		{ID: 2, X: 500, Y: 500, Actionable: true},
	}
	got := pairLoad(es)
	want := 0 + 2*0.1 // no interacting pairs, only the linear term
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("pairLoad = %v, want %v", got, want)
	}
}

func TestZonePartitionerConservesEntities(t *testing.T) {
	w := GenerateWorld(DefaultWorldConfig(300))
	loads := ZonePartitioner{}.Loads(w, 9)
	if len(loads) != 9 {
		t.Fatalf("loads = %d servers", len(loads))
	}
	total := 0.0
	for _, l := range loads {
		total += l
	}
	if total <= 0 {
		t.Error("zero total load")
	}
}

func TestAoSBalancesBetterThanZones(t *testing.T) {
	// Hot POI clustering: zones put the battle in one cell; AoS shards it.
	cfg := DefaultWorldConfig(600)
	cfg.HotFraction = 0.6
	w := GenerateWorld(cfg)
	servers := 16
	zl := ZonePartitioner{}.Loads(w, servers)
	al := AoSPartitioner{}.Loads(w, servers)
	maxOf := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	if maxOf(al) >= maxOf(zl) {
		t.Errorf("AoS max load %v not below zones max load %v", maxOf(al), maxOf(zl))
	}
}

func TestMirrorReducesLoad(t *testing.T) {
	w := GenerateWorld(DefaultWorldConfig(400))
	a := AoSPartitioner{}.Loads(w, 8)
	m := MirrorPartitioner{OffloadFraction: 0.5}.Loads(w, 8)
	for i := range a {
		if m[i] > a[i] {
			t.Fatalf("mirror load %v above AoS load %v", m[i], a[i])
		}
	}
}

func TestMaxSupportedPlayersOrdering(t *testing.T) {
	zones := MaxSupportedPlayers(ZonePartitioner{}, 16, 3000, 1)
	aos := MaxSupportedPlayers(AoSPartitioner{}, 16, 3000, 1)
	mirror := MaxSupportedPlayers(MirrorPartitioner{OffloadFraction: 0.5}, 16, 3000, 1)
	if !(zones < aos && aos < mirror) {
		t.Errorf("scalability ordering violated: zones=%d aos=%d mirror=%d", zones, aos, mirror)
	}
	if zones == 0 {
		t.Error("zones supports no players at all")
	}
}

func TestRunScalabilityStudyRows(t *testing.T) {
	rows := RunScalabilityStudy([]int{4}, 2000, 1)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 techniques", len(rows))
	}
	for _, r := range rows {
		if r.MaxPlayers <= 0 {
			t.Errorf("row %s has zero players", r.Technique)
		}
		if r.String() == "" {
			t.Error("empty row string")
		}
	}
}

func TestPopulationSeriesShape(t *testing.T) {
	pm := DefaultPopulationModel()
	hourly := pm.Series(28)
	if len(hourly) != 28*24 {
		t.Fatalf("series length = %d", len(hourly))
	}
	for _, v := range hourly {
		if v < 0 {
			t.Fatal("negative population")
		}
	}
	rep := AnalyzeDynamics(hourly)
	if rep.PeakToTrough < 1.5 {
		t.Errorf("peak/trough = %v, want >= 1.5 (diurnal cycle)", rep.PeakToTrough)
	}
	if rep.WeeklyVariation <= 1 {
		t.Errorf("weekend uplift = %v, want > 1", rep.WeeklyVariation)
	}
	if math.Abs(rep.TrendPerDay-pm.GrowthPerDay) > 0.005 {
		t.Errorf("trend = %v, want ~%v", rep.TrendPerDay, pm.GrowthPerDay)
	}
}

func TestAnalyzeDynamicsEmpty(t *testing.T) {
	rep := AnalyzeDynamics(nil)
	if rep.MeanPlayers != 0 {
		t.Errorf("empty dynamics = %+v", rep)
	}
}

func TestMatchModelProperties(t *testing.T) {
	matches := MatchModel{Players: 500, TeamSize: 5, Seed: 2}.Generate(200)
	if len(matches) != 200 {
		t.Fatalf("matches = %d", len(matches))
	}
	for _, m := range matches {
		if len(m.Players) != 10 {
			t.Fatalf("match %d has %d players", m.ID, len(m.Players))
		}
		seen := map[int]bool{}
		for _, p := range m.Players {
			if seen[p] {
				t.Fatalf("match %d has duplicate player %d", m.ID, p)
			}
			seen[p] = true
		}
		if m.Winner != 0 && m.Winner != 1 {
			t.Fatalf("match %d winner = %d", m.ID, m.Winner)
		}
	}
}

func TestMatchModelDefaultsProperty(t *testing.T) {
	f := func(seed int64, teamRaw uint8) bool {
		team := int(teamRaw%8) + 1
		mm := MatchModel{Players: 100, TeamSize: team, Seed: seed}
		for _, m := range mm.Generate(20) {
			if len(m.Players) != team*2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSocialNetworkClustering(t *testing.T) {
	matches := MatchModel{Players: 400, TeamSize: 5, Seed: 3}.Generate(800)
	sn := BuildSocialNetwork(matches)
	if sn.Nodes() == 0 || sn.Edges() == 0 {
		t.Fatal("empty network")
	}
	cc := sn.ClusteringCoefficient()
	base := sn.RandomBaselineClustering()
	if cc <= base {
		t.Errorf("clustering %v not above random baseline %v (no community structure)", cc, base)
	}
	deg := sn.DegreeDistribution()
	if len(deg) != sn.Nodes() {
		t.Errorf("degree distribution size %d != nodes %d", len(deg), sn.Nodes())
	}
}

func TestToxicityGroundTruthSkew(t *testing.T) {
	matches := MatchModel{Players: 200, TeamSize: 5, Seed: 1}.Generate(500)
	tm := DefaultToxicityModel()
	events := tm.Generate(matches)
	if len(events) == 0 {
		t.Fatal("no chat generated")
	}
	toxic := 0
	for _, e := range events {
		if e.Toxic {
			toxic++
		}
	}
	rate := float64(toxic) / float64(len(events))
	// Between the winner base rate and the loser rate.
	if rate <= tm.BaseRate || rate >= tm.BaseRate*tm.LosingMultiplier {
		t.Errorf("overall toxic rate = %v, want in (%v,%v)", rate, tm.BaseRate, tm.BaseRate*tm.LosingMultiplier)
	}
}

func TestToxicityDetectorScores(t *testing.T) {
	matches := MatchModel{Players: 200, TeamSize: 5, Seed: 1}.Generate(500)
	events := DefaultToxicityModel().Generate(matches)
	rep := ToxicityDetector{TruePositiveRate: 0.8, FalsePositiveRate: 0.02, Seed: 4}.Apply(events)
	if rep.Recall < 0.6 || rep.Recall > 0.95 {
		t.Errorf("recall = %v, want ~0.8", rep.Recall)
	}
	if rep.Precision <= 0.3 {
		t.Errorf("precision = %v, too low", rep.Precision)
	}
	if rep.Flagged == 0 || rep.Toxic == 0 {
		t.Errorf("degenerate report %+v", rep)
	}
}

func TestProvisioningPolicies(t *testing.T) {
	pm := DefaultPopulationModel()
	hourly := pm.Series(14)
	static := EvaluateProvisioning(StaticPeak{}, hourly, 1000)
	reactive := EvaluateProvisioning(Reactive{}, hourly, 1000)
	pred := EvaluateProvisioning(Predictive{}, hourly, 1000)

	if static.QoSViolations > len(hourly)/10 {
		t.Errorf("static peak violates QoS %d times", static.QoSViolations)
	}
	if reactive.ServerHours >= static.ServerHours {
		t.Errorf("reactive cost %d not below static %d", reactive.ServerHours, static.ServerHours)
	}
	if pred.ServerHours >= static.ServerHours {
		t.Errorf("predictive cost %d not below static %d", pred.ServerHours, static.ServerHours)
	}
	// Predictive should have (weakly) fewer violations than reactive on a
	// diurnal workload: it anticipates the evening ramp.
	if pred.QoSViolations > reactive.QoSViolations {
		t.Errorf("predictive violations %d above reactive %d", pred.QoSViolations, reactive.QoSViolations)
	}
}

func TestRunTable6AllRows(t *testing.T) {
	rows := RunTable6(1)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	features := map[string]bool{}
	for _, r := range rows {
		if r.Finding == "" {
			t.Errorf("row %s empty finding", r.Study)
		}
		features[r.Feature] = true
	}
	for _, f := range []string{"Dynamics (MMORPG)", "Social networks", "Toxicity", "V-World scalability (AoS)", "RM&S provisioning"} {
		if !features[f] {
			t.Errorf("missing feature %q", f)
		}
	}
	// Headline shapes: AoS gain > 1, provisioning saving > 0.
	for _, r := range rows {
		switch r.Feature {
		case "V-World scalability (AoS)":
			if r.Value <= 1 {
				t.Errorf("AoS gain = %v, want > 1", r.Value)
			}
		case "RM&S provisioning":
			if r.Value <= 0 {
				t.Errorf("provisioning saving = %v%%, want > 0", r.Value)
			}
		}
	}
}
