package mmog

import (
	"math"

	"atlarge/internal/stats"
)

// ProvisioningPolicy decides game-server counts from the population series
// (Nae et al. SC'08/TPDS'11: dynamic resource provisioning for MMOGs).
type ProvisioningPolicy interface {
	// Name identifies the policy.
	Name() string
	// Plan returns the provisioned server count for each hour, given the
	// hourly population series (decisions at hour h may use only hours <
	// h, plus the model's own prediction).
	Plan(hourly []float64, playersPerServer float64) []int
}

// StaticPeak provisions for the historical peak at all times — the classic
// over-provisioned operator baseline.
type StaticPeak struct{}

// Name implements ProvisioningPolicy.
func (StaticPeak) Name() string { return "static-peak" }

// Plan implements ProvisioningPolicy.
func (StaticPeak) Plan(hourly []float64, playersPerServer float64) []int {
	out := make([]int, len(hourly))
	peak := 0.0
	for i, v := range hourly {
		if v > peak {
			peak = v
		}
		out[i] = int(math.Ceil(peak / playersPerServer))
		if i > 0 && out[i] < out[i-1] {
			out[i] = out[i-1] // static: never shrinks
		}
	}
	return out
}

// Reactive provisions for the previous hour's population plus headroom.
type Reactive struct{ Headroom float64 }

// Name implements ProvisioningPolicy.
func (Reactive) Name() string { return "reactive" }

// Plan implements ProvisioningPolicy.
func (p Reactive) Plan(hourly []float64, playersPerServer float64) []int {
	head := p.Headroom
	if head <= 0 {
		head = 0.1
	}
	out := make([]int, len(hourly))
	for i := range hourly {
		prev := hourly[0]
		if i > 0 {
			prev = hourly[i-1]
		}
		out[i] = int(math.Ceil(prev * (1 + head) / playersPerServer))
	}
	return out
}

// Predictive uses the same-hour-yesterday value scaled by the recent daily
// trend — the neural/exponential predictors of the MMOG provisioning work
// reduce to this shape for diurnal workloads.
type Predictive struct{ Headroom float64 }

// Name implements ProvisioningPolicy.
func (Predictive) Name() string { return "predictive" }

// Plan implements ProvisioningPolicy.
func (p Predictive) Plan(hourly []float64, playersPerServer float64) []int {
	head := p.Headroom
	if head <= 0 {
		head = 0.1
	}
	out := make([]int, len(hourly))
	for i := range hourly {
		var pred float64
		switch {
		case i >= 48:
			yesterday := hourly[i-24]
			trend := (stats.Mean(hourly[i-24:i]) + 1) / (stats.Mean(hourly[i-48:i-24]) + 1)
			pred = yesterday * trend
		case i >= 24:
			pred = hourly[i-24]
		}
		// Take the max of the diurnal prediction and the last observation:
		// the predictor anticipates ramps, the last observation guards
		// against prediction undershoot.
		if i > 0 && hourly[i-1] > pred {
			pred = hourly[i-1]
		}
		if i == 0 {
			pred = hourly[0]
		}
		out[i] = int(math.Ceil(pred * (1 + head) / playersPerServer))
	}
	return out
}

// ProvisioningReport scores one policy run.
type ProvisioningReport struct {
	Policy string
	// ServerHours is the total provisioned capacity (the cost proxy).
	ServerHours int
	// OverProvisionPct is the mean percentage of idle capacity.
	OverProvisionPct float64
	// QoSViolations is the number of hours with insufficient capacity.
	QoSViolations int
	// ViolationPct is QoSViolations as a share of hours.
	ViolationPct float64
}

// EvaluateProvisioning runs a policy against the series and scores it.
func EvaluateProvisioning(p ProvisioningPolicy, hourly []float64, playersPerServer float64) ProvisioningReport {
	plan := p.Plan(hourly, playersPerServer)
	rep := ProvisioningReport{Policy: p.Name()}
	var overSum float64
	for i, servers := range plan {
		rep.ServerHours += servers
		need := hourly[i] / playersPerServer
		if float64(servers) < need {
			rep.QoSViolations++
		} else if need > 0 {
			overSum += (float64(servers) - need) / math.Max(need, 1)
		}
	}
	if len(plan) > 0 {
		rep.OverProvisionPct = 100 * overSum / float64(len(plan))
		rep.ViolationPct = 100 * float64(rep.QoSViolations) / float64(len(plan))
	}
	return rep
}
