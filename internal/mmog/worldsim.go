package mmog

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"atlarge/internal/sim"
)

// WorldSimConfig parameterizes one event-driven virtual-world run: a
// generated world whose entities drift around their points of interest while
// a partitioner splits the load across game servers.
type WorldSimConfig struct {
	World WorldConfig
	// Partitioner splits the world across servers each tick.
	Partitioner Partitioner
	// Servers is the game-server count.
	Servers int
	// Ticks is the number of world ticks simulated.
	Ticks int
	// TickSeconds is the virtual-time spacing of ticks; 0 means 1s.
	TickSeconds float64
	// Wander is the per-tick Gaussian movement scale; 0 means 2.0.
	Wander float64
	Seed   int64
}

// DefaultWorldSimConfig simulates a mid-size battle-clustered world.
func DefaultWorldSimConfig(entities, servers int) WorldSimConfig {
	return WorldSimConfig{
		World:       DefaultWorldConfig(entities),
		Partitioner: AoSPartitioner{},
		Servers:     servers,
		Ticks:       60,
		TickSeconds: 1,
		Wander:      2,
		Seed:        1,
	}
}

// WorldSimResult aggregates the per-tick per-server load series.
type WorldSimResult struct {
	Entities int
	Servers  int
	Ticks    int
	// PeakLoad is the maximum per-server load observed at any tick — the
	// provisioning-relevant hot-server number.
	PeakLoad float64
	// MeanMaxLoad is the hottest-server load averaged over ticks.
	MeanMaxLoad float64
	// MeanLoad is the per-server load averaged over servers and ticks.
	MeanLoad float64
	// Imbalance is the mean over ticks of (max load / mean load); 1.0 is a
	// perfectly balanced partitioning.
	Imbalance float64
}

// RunWorldSim executes the world on the shared simulation kernel: world
// generation happens at setup, then every tick is a scheduled event in which
// entities take a Gaussian step pulled back toward their nearest point of
// interest and the partitioner's per-server loads are recorded. Movement
// draws come from the kernel's named RNG streams, so runs are deterministic
// per seed and independent of any other model sharing the kernel seed.
func RunWorldSim(cfg WorldSimConfig) (*WorldSimResult, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("mmog: world sim needs >= 1 server, got %d", cfg.Servers)
	}
	if cfg.Ticks < 1 {
		return nil, fmt.Errorf("mmog: world sim needs >= 1 tick, got %d", cfg.Ticks)
	}
	if cfg.Partitioner == nil {
		cfg.Partitioner = AoSPartitioner{}
	}
	tickSec := cfg.TickSeconds
	if tickSec <= 0 {
		tickSec = 1
	}
	wander := cfg.Wander
	if wander <= 0 {
		wander = 2
	}

	cfg.World.Seed = cfg.Seed
	w := GenerateWorld(cfg.World)
	res := &WorldSimResult{Entities: len(w.Entities), Servers: cfg.Servers}

	k := sim.NewKernel(cfg.Seed)
	var rec sim.Recorder
	move := k.Rand("mmog/move")
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v >= w.Size {
			return w.Size - 1e-9
		}
		return v
	}

	var tick sim.Handler
	ticked := 0
	tick = func(k *sim.Kernel) {
		// Entities wander, gently pulled toward their nearest POI so battle
		// clusters persist instead of diffusing into uniform noise.
		for i := range w.Entities {
			e := &w.Entities[i]
			px, py := nearestPOI(w, e.X, e.Y)
			e.X = clamp(e.X + move.NormFloat64()*wander + 0.02*(px-e.X))
			e.Y = clamp(e.Y + move.NormFloat64()*wander + 0.02*(py-e.Y))
		}
		loads := cfg.Partitioner.Loads(w, cfg.Servers)
		maxL, sum := 0.0, 0.0
		for _, l := range loads {
			sum += l
			if l > maxL {
				maxL = l
			}
		}
		mean := sum / float64(len(loads))
		now := k.Now()
		rec.Record("max_load", now, maxL)
		rec.Record("mean_load", now, mean)
		if mean > 0 {
			rec.Record("imbalance", now, maxL/mean)
		} else {
			rec.Record("imbalance", now, 1)
		}
		ticked++
		if ticked < cfg.Ticks {
			k.After(sim.Duration(tickSec), "world-tick", tick)
		}
	}
	k.At(0, "world-tick", tick)
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("mmog: world sim: %w", err)
	}

	res.Ticks = ticked
	res.PeakLoad = maxOf(rec.Values("max_load"))
	res.MeanMaxLoad = meanOf(rec.Values("max_load"))
	res.MeanLoad = meanOf(rec.Values("mean_load"))
	res.Imbalance = meanOf(rec.Values("imbalance"))
	return res, nil
}

// nearestPOI returns the closest point of interest to (x, y).
func nearestPOI(w *World, x, y float64) (float64, float64) {
	bx, by, bestD := 0.0, 0.0, math.Inf(1)
	for _, poi := range w.POIs {
		dx, dy := x-poi[0], y-poi[1]
		if d := dx*dx + dy*dy; d < bestD {
			bestD = d
			bx, by = poi[0], poi[1]
		}
	}
	return bx, by
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// partitionerFactories maps canonical partitioner names to constructors; the
// offload fraction only matters for the mirror technique.
var partitionerFactories = map[string]func(offload float64) Partitioner{
	"zones":              func(float64) Partitioner { return ZonePartitioner{} },
	"area-of-simulation": func(float64) Partitioner { return AoSPartitioner{} },
	"mirror": func(offload float64) Partitioner {
		if offload <= 0 {
			offload = 0.5
		}
		return MirrorPartitioner{OffloadFraction: offload}
	},
}

// partitionerAliases folds convenient spellings onto canonical names.
var partitionerAliases = map[string]string{
	"zone":   "zones",
	"aos":    "area-of-simulation",
	"mirror": "mirror",
}

// PartitionerByName resolves a partitioning technique case-insensitively,
// accepting the canonical names and common aliases ("aos", "zone"). The
// offload fraction configures the mirror technique and is ignored otherwise.
func PartitionerByName(name string, offload float64) (Partitioner, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := partitionerAliases[key]; ok {
		key = canon
	}
	if f, ok := partitionerFactories[key]; ok {
		return f(offload), nil
	}
	return nil, fmt.Errorf("mmog: unknown partitioner %q (known: %s)",
		name, strings.Join(PartitionerNames(), ", "))
}

// PartitionerNames returns the canonical partitioner names, sorted.
func PartitionerNames() []string {
	out := make([]string, 0, len(partitionerFactories))
	for name := range partitionerFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
