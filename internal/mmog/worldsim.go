package mmog

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"atlarge/internal/sim"
)

// WorldSimConfig parameterizes one event-driven virtual-world run: a
// generated world whose entities drift around their points of interest while
// a partitioner splits the load across game servers.
type WorldSimConfig struct {
	World WorldConfig
	// Partitioner splits the world across servers each tick.
	Partitioner Partitioner
	// Servers is the game-server count.
	Servers int
	// Ticks is the number of world ticks simulated.
	Ticks int
	// TickSeconds is the virtual-time spacing of ticks; 0 means 1s.
	TickSeconds float64
	// Wander is the per-tick Gaussian movement scale; 0 means 2.0.
	Wander float64
	Seed   int64
}

// DefaultWorldSimConfig simulates a mid-size battle-clustered world.
func DefaultWorldSimConfig(entities, servers int) WorldSimConfig {
	return WorldSimConfig{
		World:       DefaultWorldConfig(entities),
		Partitioner: AoSPartitioner{},
		Servers:     servers,
		Ticks:       60,
		TickSeconds: 1,
		Wander:      2,
		Seed:        1,
	}
}

// WorldSimResult aggregates the per-tick per-server load series.
type WorldSimResult struct {
	Entities int
	Servers  int
	Ticks    int
	// PeakLoad is the maximum per-server load observed at any tick — the
	// provisioning-relevant hot-server number.
	PeakLoad float64
	// MeanMaxLoad is the hottest-server load averaged over ticks.
	MeanMaxLoad float64
	// MeanLoad is the per-server load averaged over servers and ticks.
	MeanLoad float64
	// Imbalance is the mean over ticks of (max load / mean load); 1.0 is a
	// perfectly balanced partitioning.
	Imbalance float64
}

// WorldSim is a prepared virtual-world simulation: a struct-of-arrays world,
// a kernel, and the reusable partition scratch. Constructing once and calling
// Tick repeatedly runs the per-tick hot path — wander, binning, pair
// interaction — without allocating, which is what lets one kernel tick 10^6
// entities in bounded memory.
type WorldSim struct {
	cfg     WorldSimConfig
	tickSec float64
	wander  float64
	w       *WorldSoA
	soa     SoAPartitioner
	aosView *World // synchronized view for partitioners without a SoA path
	scratch PartitionScratch
	k       *sim.Kernel
	move    *rand.Rand
	ticked  int
}

// NewWorldSim validates cfg, generates the world, and prepares the kernel.
// The world and scratch buffers are allocated here; Run and Tick reuse them.
func NewWorldSim(cfg WorldSimConfig) (*WorldSim, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("mmog: world sim needs >= 1 server, got %d", cfg.Servers)
	}
	if cfg.Ticks < 1 {
		return nil, fmt.Errorf("mmog: world sim needs >= 1 tick, got %d", cfg.Ticks)
	}
	if cfg.Partitioner == nil {
		cfg.Partitioner = AoSPartitioner{}
	}
	s := &WorldSim{cfg: cfg, tickSec: cfg.TickSeconds, wander: cfg.Wander}
	if s.tickSec <= 0 {
		s.tickSec = 1
	}
	if s.wander <= 0 {
		s.wander = 2
	}
	cfg.World.Seed = cfg.Seed
	s.w = GenerateWorldSoA(cfg.World)
	if sp, ok := cfg.Partitioner.(SoAPartitioner); ok {
		s.soa = sp
	} else {
		s.aosView = &World{
			Size:     s.w.Size,
			Entities: make([]Entity, s.w.Len()),
			POIs:     s.w.POIs,
		}
	}
	s.k = sim.NewKernel(cfg.Seed)
	s.move = s.k.Rand("mmog/move")
	return s, nil
}

// Kernel returns the simulation kernel, so callers can attach tracers or a
// horizon before Run.
func (s *WorldSim) Kernel() *sim.Kernel { return s.k }

// World returns the struct-of-arrays world state.
func (s *WorldSim) World() *WorldSoA { return s.w }

// Tick advances the world one tick: every entity takes a Gaussian step
// gently pulled back toward its nearest POI so battle clusters persist
// instead of diffusing into uniform noise, then the partitioner splits the
// load. It returns the hottest-server and mean per-server load. Steady-state
// Tick is allocation-free for the built-in partitioners.
func (s *WorldSim) Tick() (maxLoad, meanLoad float64) {
	w := s.w
	size := w.Size
	for i := range w.X {
		px, py := w.nearestPOI(w.X[i], w.Y[i])
		x := w.X[i] + s.move.NormFloat64()*s.wander + 0.02*(px-w.X[i])
		y := w.Y[i] + s.move.NormFloat64()*s.wander + 0.02*(py-w.Y[i])
		if x < 0 {
			x = 0
		} else if x >= size {
			x = size - 1e-9
		}
		if y < 0 {
			y = 0
		} else if y >= size {
			y = size - 1e-9
		}
		w.X[i] = x
		w.Y[i] = y
	}
	var loads []float64
	if s.soa != nil {
		loads = s.soa.LoadsSoA(w, s.cfg.Servers, &s.scratch)
	} else {
		for i := range s.aosView.Entities {
			s.aosView.Entities[i] = Entity{ID: i + 1, X: w.X[i], Y: w.Y[i], Actionable: w.Actionable[i]}
		}
		loads = s.cfg.Partitioner.Loads(s.aosView, s.cfg.Servers)
	}
	maxL, sum := 0.0, 0.0
	for _, l := range loads {
		sum += l
		if l > maxL {
			maxL = l
		}
	}
	return maxL, sum / float64(len(loads))
}

// Run executes the configured number of ticks on the kernel and aggregates
// the per-tick load series. Ticks are batch-scheduled up front (Reserve +
// At + AfterEach), so the queue never grows during the run.
func (s *WorldSim) Run() (*WorldSimResult, error) {
	var rec sim.Recorder
	tick := func(k *sim.Kernel) {
		maxL, mean := s.Tick()
		now := k.Now()
		rec.Record("max_load", now, maxL)
		rec.Record("mean_load", now, mean)
		if mean > 0 {
			rec.Record("imbalance", now, maxL/mean)
		} else {
			rec.Record("imbalance", now, 1)
		}
		s.ticked++
	}
	s.k.Reserve(s.cfg.Ticks)
	s.k.At(0, "world-tick", tick)
	s.k.AfterEach(sim.Duration(s.tickSec), s.cfg.Ticks-1, "world-tick", tick)
	if err := s.k.Run(); err != nil {
		return nil, fmt.Errorf("mmog: world sim: %w", err)
	}
	res := &WorldSimResult{Entities: s.w.Len(), Servers: s.cfg.Servers}
	res.Ticks = s.ticked
	res.PeakLoad = maxOf(rec.Values("max_load"))
	res.MeanMaxLoad = meanOf(rec.Values("max_load"))
	res.MeanLoad = meanOf(rec.Values("mean_load"))
	res.Imbalance = meanOf(rec.Values("imbalance"))
	return res, nil
}

// RunWorldSim executes the world on the shared simulation kernel: world
// generation happens at setup, then every tick is a scheduled event in which
// entities take a Gaussian step pulled back toward their nearest point of
// interest and the partitioner's per-server loads are recorded. Movement
// draws come from the kernel's named RNG streams, so runs are deterministic
// per seed and independent of any other model sharing the kernel seed.
func RunWorldSim(cfg WorldSimConfig) (*WorldSimResult, error) {
	s, err := NewWorldSim(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// nearestPOI returns the closest point of interest to (x, y).
func nearestPOI(w *World, x, y float64) (float64, float64) {
	bx, by, bestD := 0.0, 0.0, math.Inf(1)
	for _, poi := range w.POIs {
		dx, dy := x-poi[0], y-poi[1]
		if d := dx*dx + dy*dy; d < bestD {
			bestD = d
			bx, by = poi[0], poi[1]
		}
	}
	return bx, by
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// partitionerFactories maps canonical partitioner names to constructors; the
// offload fraction only matters for the mirror technique.
var partitionerFactories = map[string]func(offload float64) Partitioner{
	"zones":              func(float64) Partitioner { return ZonePartitioner{} },
	"area-of-simulation": func(float64) Partitioner { return AoSPartitioner{} },
	"mirror": func(offload float64) Partitioner {
		if offload <= 0 {
			offload = 0.5
		}
		return MirrorPartitioner{OffloadFraction: offload}
	},
}

// partitionerAliases folds convenient spellings onto canonical names.
var partitionerAliases = map[string]string{
	"zone":   "zones",
	"aos":    "area-of-simulation",
	"mirror": "mirror",
}

// PartitionerByName resolves a partitioning technique case-insensitively,
// accepting the canonical names and common aliases ("aos", "zone"). The
// offload fraction configures the mirror technique and is ignored otherwise.
func PartitionerByName(name string, offload float64) (Partitioner, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := partitionerAliases[key]; ok {
		key = canon
	}
	if f, ok := partitionerFactories[key]; ok {
		return f(offload), nil
	}
	return nil, fmt.Errorf("mmog: unknown partitioner %q (known: %s)",
		name, strings.Join(PartitionerNames(), ", "))
}

// PartitionerNames returns the canonical partitioner names, sorted.
func PartitionerNames() []string {
	out := make([]string, 0, len(partitionerFactories))
	for name := range partitionerFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
