package sim

import (
	"reflect"
	"testing"
	"time"
)

// stripWall zeroes the nondeterministic wall field so records can be
// compared across runs.
func stripWall(recs []TraceRecord) []TraceRecord {
	out := make([]TraceRecord, len(recs))
	for i, r := range recs {
		r.WallNs = 0
		out[i] = r
	}
	return out
}

// runTracedModel runs a small model exercising every hook: schedules,
// fires, a cancellation discarded mid-run, and RNG draws on two streams.
func runTracedModel(t *testing.T, tr Tracer) *Kernel {
	t.Helper()
	k := NewKernel(7)
	k.SetTracer(tr)
	k.At(1, "a", func(k *Kernel) {
		k.Rand("svc").Float64()
		k.After(2, "b", func(k *Kernel) { k.Rand("svc").Float64() })
		ref := k.After(5, "doomed", func(*Kernel) { t.Fatal("cancelled event fired") })
		ref.Cancel()
	})
	k.At(2, "c", func(k *Kernel) { k.Rand("arrival").Float64() })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return k
}

func TestProfileCounts(t *testing.T) {
	p := NewProfile()
	runTracedModel(t, p)
	rows := p.Rows()
	want := map[string]EventStats{
		"a":      {Scheduled: 1, Fired: 1},
		"b":      {Scheduled: 1, Fired: 1},
		"c":      {Scheduled: 1, Fired: 1},
		"doomed": {Scheduled: 1, Cancelled: 1},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(rows), len(want), rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Name >= rows[i].Name {
			t.Fatalf("rows not sorted: %q before %q", rows[i-1].Name, rows[i].Name)
		}
	}
	for _, r := range rows {
		w, ok := want[r.Name]
		if !ok {
			t.Fatalf("unexpected row %q", r.Name)
		}
		if r.Scheduled != w.Scheduled || r.Fired != w.Fired || r.Cancelled != w.Cancelled {
			t.Errorf("%s: got sched=%d fired=%d cancelled=%d, want %+v", r.Name, r.Scheduled, r.Fired, r.Cancelled, w)
		}
		if r.Fired > 0 && r.WallNs < 0 {
			t.Errorf("%s: negative wall %d", r.Name, r.WallNs)
		}
		if r.WallMaxNs > r.WallNs {
			t.Errorf("%s: max wall %d exceeds total %d", r.Name, r.WallMaxNs, r.WallNs)
		}
	}
	streams := p.Streams()
	wantStreams := []StreamRow{{Stream: "arrival", Accesses: 1}, {Stream: "svc", Accesses: 2}}
	if !reflect.DeepEqual(streams, wantStreams) {
		t.Fatalf("streams: got %+v, want %+v", streams, wantStreams)
	}
}

func TestTraceLogDeterministicAcrossRuns(t *testing.T) {
	var logs [2]*TraceLog
	for i := range logs {
		logs[i] = &TraceLog{}
		runTracedModel(t, logs[i])
	}
	if len(logs[0].Records) == 0 {
		t.Fatal("no records captured")
	}
	if !reflect.DeepEqual(stripWall(logs[0].Records), stripWall(logs[1].Records)) {
		t.Fatalf("virtual-time records differ between identical runs:\n%+v\n%+v", logs[0].Records, logs[1].Records)
	}
	// The cancelled event must be visible as a cancel record, not a fire.
	var sawCancel bool
	for _, r := range logs[0].Records {
		if r.Name == "doomed" && r.Kind == TraceFire {
			t.Fatal("cancelled event recorded as fired")
		}
		if r.Name == "doomed" && r.Kind == TraceCancel {
			sawCancel = true
		}
	}
	if !sawCancel {
		t.Fatal("no cancel record for doomed event")
	}
}

func TestTraceLogCap(t *testing.T) {
	l := &TraceLog{Max: 3}
	k := NewKernel(1)
	k.SetTracer(l)
	for i := 0; i < 5; i++ {
		k.At(Time(i), "e", func(*Kernel) {})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(l.Records) != 3 {
		t.Fatalf("got %d records, want cap 3", len(l.Records))
	}
	// 5 schedules + 5 fires = 10 observations, 3 kept.
	if l.Dropped != 7 {
		t.Fatalf("got %d dropped, want 7", l.Dropped)
	}
}

func TestTeeAndNilTracers(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("Tee of no live tracers should be nil")
	}
	p := NewProfile()
	if Tee(nil, p) != Tracer(p) {
		t.Fatal("Tee of one live tracer should return it directly")
	}
	l := &TraceLog{}
	runTracedModel(t, Tee(p, l))
	if len(l.Records) == 0 || len(p.Rows()) == 0 {
		t.Fatal("tee did not fan out to both tracers")
	}
}

func TestUntracedRunMatchesTracedVirtualTime(t *testing.T) {
	traced := runTracedModel(t, NewProfile())
	bare := runTracedModel(t, nil)
	if traced.Now() != bare.Now() || traced.EventsFired() != bare.EventsFired() {
		t.Fatalf("tracer perturbed the simulation: traced (now=%v fired=%d) vs bare (now=%v fired=%d)",
			traced.Now(), traced.EventsFired(), bare.Now(), bare.EventsFired())
	}
}

func TestKernelObserverAndGlobalCounter(t *testing.T) {
	var captured []*Kernel
	SetKernelObserver(func(k *Kernel) { captured = append(captured, k) })
	defer SetKernelObserver(nil)

	before := GlobalEventsFired()
	k := NewKernel(99)
	if len(captured) != 1 || captured[0] != k {
		t.Fatalf("observer saw %d kernels, want the one just created", len(captured))
	}
	if k.Seed() != 99 {
		t.Fatalf("Seed() = %d, want 99", k.Seed())
	}
	for i := 0; i < 4; i++ {
		k.At(Time(i), "e", func(*Kernel) {})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := GlobalEventsFired() - before; got != 4 {
		t.Fatalf("global counter advanced by %d, want 4", got)
	}
	// A second Run over new events must not double-flush the old ones.
	k.At(k.Now()+1, "late", func(*Kernel) {})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := GlobalEventsFired() - before; got != 5 {
		t.Fatalf("global counter advanced by %d after second run, want 5", got)
	}

	SetKernelObserver(nil)
	NewKernel(1)
	if len(captured) != 1 {
		t.Fatal("observer still firing after removal")
	}
}

func TestEventFiredWallTimeMeasured(t *testing.T) {
	p := NewProfile()
	k := NewKernel(3)
	k.SetTracer(p)
	k.At(0, "sleepy", func(*Kernel) { time.Sleep(2 * time.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rows := p.Rows()
	if len(rows) != 1 || rows[0].WallNs < int64(time.Millisecond) {
		t.Fatalf("handler wall time not measured: %+v", rows)
	}
}
