package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a sampleable distribution of non-negative durations or sizes.
// Implementations must be deterministic given the supplied RNG.
type Dist interface {
	// Sample draws one value using r.
	Sample(r *rand.Rand) float64
	// Mean returns the distribution mean (may be +Inf for heavy tails).
	Mean() float64
	// String describes the distribution for reports.
	String() string
}

// Constant is a degenerate distribution that always returns Value.
type Constant struct{ Value float64 }

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) float64 { return c.Value }

// Mean implements Dist.
func (c Constant) Mean() float64 { return c.Value }

func (c Constant) String() string { return fmt.Sprintf("const(%g)", c.Value) }

// Uniform is the continuous uniform distribution on [Low, High).
type Uniform struct{ Low, High float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Low + r.Float64()*(u.High-u.Low) }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Low + u.High) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%g,%g)", u.Low, u.High) }

// Exponential has rate Lambda (mean 1/Lambda). It models memoryless
// inter-arrival times (Poisson processes).
type Exponential struct{ Lambda float64 }

// Sample implements Dist.
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() / e.Lambda }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

func (e Exponential) String() string { return fmt.Sprintf("exp(λ=%g)", e.Lambda) }

// LogNormal has parameters Mu and Sigma of the underlying normal. Job runtimes
// in production traces are commonly close to log-normal.
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l LogNormal) String() string { return fmt.Sprintf("lognormal(μ=%g,σ=%g)", l.Mu, l.Sigma) }

// Pareto is the Pareto (power-law) distribution with scale Xm and shape Alpha.
// It models heavy-tailed file sizes and swarm popularity.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Dist.
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean implements Dist.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) String() string { return fmt.Sprintf("pareto(xm=%g,α=%g)", p.Xm, p.Alpha) }

// Weibull has scale Lambda and shape K. K<1 gives bursty inter-arrivals, as
// observed in grid workloads (contra the Poisson assumption the paper notes
// was debunked by the Pouwelse et al. BitTorrent study).
type Weibull struct {
	Lambda float64
	K      float64
}

// Sample implements Dist.
func (w Weibull) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return w.Lambda * math.Pow(-math.Log(u), 1/w.K)
}

// Mean implements Dist.
func (w Weibull) Mean() float64 { return w.Lambda * gamma(1+1/w.K) }

func (w Weibull) String() string { return fmt.Sprintf("weibull(λ=%g,k=%g)", w.Lambda, w.K) }

// gamma computes the Gamma function via the Lanczos approximation, enough for
// Weibull means.
func gamma(x float64) float64 {
	// Use math.Gamma from stdlib.
	return math.Gamma(x)
}

// Gamma has shape Shape and scale Scale (mean Shape·Scale). Shape < 1 gives
// over-dispersed, bursty values (CV > 1); Shape = 1 is Exponential. It is the
// renewal process behind bursty per-client arrival models.
type Gamma struct {
	Shape float64
	Scale float64
}

// Sample implements Dist via the Marsaglia–Tsang squeeze method, with the
// standard U^(1/shape) boost for Shape < 1.
func (g Gamma) Sample(r *rand.Rand) float64 {
	shape := g.Shape
	boost := 1.0
	if shape < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		boost = math.Pow(u, 1/shape)
		shape++
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return g.Scale * boost * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return g.Scale * boost * d * v
		}
	}
}

// Mean implements Dist.
func (g Gamma) Mean() float64 { return g.Shape * g.Scale }

func (g Gamma) String() string { return fmt.Sprintf("gamma(k=%g,θ=%g)", g.Shape, g.Scale) }

// Normal is the normal distribution truncated at zero (negative samples are
// clamped to 0), used for noisy service times.
type Normal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (n Normal) Sample(r *rand.Rand) float64 {
	v := n.Mu + n.Sigma*r.NormFloat64()
	if v < 0 {
		return 0
	}
	return v
}

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

func (n Normal) String() string { return fmt.Sprintf("normal(μ=%g,σ=%g)", n.Mu, n.Sigma) }

// Zipf generates integer ranks 1..N with exponent S; rank popularity follows
// a power law. It models content popularity in P2P and MMOG analytics.
type Zipf struct {
	N int
	S float64
}

// Sample implements Dist; the value is the sampled rank as a float64 in
// [1, N].
func (z Zipf) Sample(r *rand.Rand) float64 {
	// Inverse-CDF sampling over the finite harmonic mass.
	total := 0.0
	for i := 1; i <= z.N; i++ {
		total += 1 / math.Pow(float64(i), z.S)
	}
	u := r.Float64() * total
	acc := 0.0
	for i := 1; i <= z.N; i++ {
		acc += 1 / math.Pow(float64(i), z.S)
		if u <= acc {
			return float64(i)
		}
	}
	return float64(z.N)
}

// Mean implements Dist.
func (z Zipf) Mean() float64 {
	num, den := 0.0, 0.0
	for i := 1; i <= z.N; i++ {
		p := 1 / math.Pow(float64(i), z.S)
		num += float64(i) * p
		den += p
	}
	return num / den
}

func (z Zipf) String() string { return fmt.Sprintf("zipf(n=%d,s=%g)", z.N, z.S) }
