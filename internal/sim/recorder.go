package sim

import "sort"

// Sample is one time-stamped observation of a named series.
type Sample struct {
	At    Time
	Value float64
}

// Recorder accumulates time-stamped observations grouped into named series.
// It is the standard way simulators expose measurements to experiment
// harnesses: simulators record, harnesses query.
//
// The zero value is ready to use.
type Recorder struct {
	series map[string][]Sample
}

// Record appends an observation to the named series.
func (r *Recorder) Record(series string, at Time, value float64) {
	if r.series == nil {
		r.series = make(map[string][]Sample)
	}
	r.series[series] = append(r.series[series], Sample{At: at, Value: value})
}

// Series returns the observations of the named series in recording order.
// The returned slice is owned by the recorder; callers must not mutate it.
func (r *Recorder) Series(name string) []Sample {
	return r.series[name]
}

// Values returns just the values of the named series.
func (r *Recorder) Values(name string) []float64 {
	s := r.series[name]
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = v.Value
	}
	return out
}

// Names returns the sorted list of series names.
func (r *Recorder) Names() []string {
	names := make([]string, 0, len(r.series))
	for n := range r.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of observations in the named series.
func (r *Recorder) Len(name string) int { return len(r.series[name]) }

// TimeWeightedMean integrates a piecewise-constant signal represented by the
// named series (each sample holds the new value starting at its timestamp)
// from the first sample until end, and returns the time-weighted average.
// It returns 0 when the series is empty or the interval is degenerate.
func (r *Recorder) TimeWeightedMean(name string, end Time) float64 {
	s := r.series[name]
	if len(s) == 0 || end <= s[0].At {
		return 0
	}
	var area float64
	for i := 0; i < len(s); i++ {
		t0 := s[i].At
		t1 := end
		if i+1 < len(s) {
			t1 = s[i+1].At
		}
		if t1 > end {
			t1 = end
		}
		if t1 > t0 {
			area += s[i].Value * float64(t1-t0)
		}
	}
	return area / float64(end-s[0].At)
}

// Counter is a monotonically increasing named tally.
type Counter struct {
	counts map[string]int64
}

// Add increments the named counter by delta.
func (c *Counter) Add(name string, delta int64) {
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[name] += delta
}

// Get returns the named count (0 if never incremented).
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names returns the sorted counter names.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
