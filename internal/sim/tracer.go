package sim

import (
	"sort"
	"sync/atomic"
	"time"
)

// Tracer observes the kernel's event lifecycle. A kernel with a nil tracer
// (the default) pays nothing beyond one predictable branch per hook site —
// no allocation, no time.Now call — which is what keeps the bench-compare
// gate honest with tracing merely compiled in.
//
// Hook semantics:
//
//   - EventScheduled fires on every At/After call, after the event is queued.
//   - EventFired fires after the handler returns, with the wall-clock time
//     the handler took. Virtual time (at) is the handler's own Now.
//   - EventCancelled fires when a cancelled event is discarded at the head
//     of the queue — cancellation itself (EventRef.Cancel) is a flag flip
//     with no kernel access, so events cancelled but never reached by the
//     run (queue abandoned, horizon) are not reported.
//   - RandAccess fires on every Kernel.Rand call. It is the kernel-visible
//     proxy for RNG draws: model code conventionally fetches the stream at
//     the draw site, so access counts track draw pressure per stream.
//
// Implementations are called from the kernel's own goroutine only; they need
// no locking unless shared across kernels.
type Tracer interface {
	EventScheduled(name string, at, now Time)
	EventFired(name string, at Time, wall time.Duration)
	EventCancelled(name string, at, now Time)
	RandAccess(stream string, now Time)
}

// TraceKind classifies one TraceRecord.
type TraceKind uint8

// Trace record kinds, in the order the kernel can emit them.
const (
	TraceSchedule TraceKind = iota
	TraceFire
	TraceCancel
	TraceRand
)

// String returns the NDJSON spelling of the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceSchedule:
		return "schedule"
	case TraceFire:
		return "fire"
	case TraceCancel:
		return "cancel"
	case TraceRand:
		return "rand"
	}
	return "unknown"
}

// TraceRecord is one kernel event observation. At is the event's virtual
// time (the target time for schedules and cancels, the firing time for
// fires, the access time for rand records); Now is the virtual time the
// observation was made. WallNs is the handler's wall-clock nanoseconds and
// is set only on fire records — it is the single nondeterministic field, so
// exporters keep it out of byte-compared sections.
type TraceRecord struct {
	Kind   TraceKind
	Name   string
	At     Time
	Now    Time
	WallNs int64
}

// DefaultTraceCap bounds a TraceLog when Max is left zero: enough for every
// event of a typical scenario cell, small enough that a traced sweep of many
// tasks stays in memory.
const DefaultTraceCap = 1 << 16

// TraceLog is a Tracer that records every observation in order, up to Max
// records (0 means DefaultTraceCap); later observations only count Dropped.
// The virtual-time fields of a log are deterministic: two kernels running
// the same seeded model produce identical records except WallNs.
type TraceLog struct {
	// Max bounds len(Records); set it before tracing starts.
	Max     int
	Records []TraceRecord
	Dropped uint64
}

func (l *TraceLog) cap() int {
	if l.Max > 0 {
		return l.Max
	}
	return DefaultTraceCap
}

func (l *TraceLog) record(r TraceRecord) {
	if len(l.Records) >= l.cap() {
		l.Dropped++
		return
	}
	l.Records = append(l.Records, r)
}

// EventScheduled implements Tracer.
func (l *TraceLog) EventScheduled(name string, at, now Time) {
	l.record(TraceRecord{Kind: TraceSchedule, Name: name, At: at, Now: now})
}

// EventFired implements Tracer.
func (l *TraceLog) EventFired(name string, at Time, wall time.Duration) {
	l.record(TraceRecord{Kind: TraceFire, Name: name, At: at, Now: at, WallNs: int64(wall)})
}

// EventCancelled implements Tracer.
func (l *TraceLog) EventCancelled(name string, at, now Time) {
	l.record(TraceRecord{Kind: TraceCancel, Name: name, At: at, Now: now})
}

// RandAccess implements Tracer.
func (l *TraceLog) RandAccess(stream string, now Time) {
	l.record(TraceRecord{Kind: TraceRand, Name: stream, At: now, Now: now})
}

// EventStats aggregates one event name's lifecycle counts and handler wall
// time.
type EventStats struct {
	Scheduled uint64
	Fired     uint64
	Cancelled uint64
	// WallNs is the total wall-clock nanoseconds spent in this event's
	// handlers; WallMaxNs the slowest single handler invocation.
	WallNs    int64
	WallMaxNs int64
}

// Profile is a Tracer that aggregates per-event-name counts, cancellation
// tallies, and handler wall time, plus per-stream RNG access counts. It is
// the built-in collector behind `atlarge trace` profile tables and the serve
// layer's kernel metrics. Like any Tracer it is single-goroutine; wrap it
// (see obs.SharedProfile) to share one aggregate across kernels.
type Profile struct {
	events  map[string]*EventStats
	streams map[string]uint64
}

// NewProfile returns an empty profile collector.
func NewProfile() *Profile {
	return &Profile{events: make(map[string]*EventStats), streams: make(map[string]uint64)}
}

func (p *Profile) stats(name string) *EventStats {
	s, ok := p.events[name]
	if !ok {
		s = &EventStats{}
		p.events[name] = s
	}
	return s
}

// EventScheduled implements Tracer.
func (p *Profile) EventScheduled(name string, _, _ Time) { p.stats(name).Scheduled++ }

// EventFired implements Tracer.
func (p *Profile) EventFired(name string, _ Time, wall time.Duration) {
	s := p.stats(name)
	s.Fired++
	s.WallNs += int64(wall)
	if int64(wall) > s.WallMaxNs {
		s.WallMaxNs = int64(wall)
	}
}

// EventCancelled implements Tracer.
func (p *Profile) EventCancelled(name string, _, _ Time) { p.stats(name).Cancelled++ }

// RandAccess implements Tracer.
func (p *Profile) RandAccess(stream string, _ Time) { p.streams[stream]++ }

// ProfileRow is one event name's aggregate, for sorted reporting.
type ProfileRow struct {
	Name string
	EventStats
}

// Rows returns the per-event aggregates sorted by name.
func (p *Profile) Rows() []ProfileRow {
	rows := make([]ProfileRow, 0, len(p.events))
	for name, s := range p.events {
		rows = append(rows, ProfileRow{Name: name, EventStats: *s})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// StreamRow is one RNG stream's access count.
type StreamRow struct {
	Stream   string
	Accesses uint64
}

// Streams returns the per-stream RNG access counts sorted by stream name.
func (p *Profile) Streams() []StreamRow {
	rows := make([]StreamRow, 0, len(p.streams))
	for name, n := range p.streams {
		rows = append(rows, StreamRow{Stream: name, Accesses: n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Stream < rows[j].Stream })
	return rows
}

// multiTracer fans one kernel's observations out to several tracers.
type multiTracer []Tracer

func (m multiTracer) EventScheduled(name string, at, now Time) {
	for _, t := range m {
		t.EventScheduled(name, at, now)
	}
}

func (m multiTracer) EventFired(name string, at Time, wall time.Duration) {
	for _, t := range m {
		t.EventFired(name, at, wall)
	}
}

func (m multiTracer) EventCancelled(name string, at, now Time) {
	for _, t := range m {
		t.EventCancelled(name, at, now)
	}
}

func (m multiTracer) RandAccess(stream string, now Time) {
	for _, t := range m {
		t.RandAccess(stream, now)
	}
}

// Tee combines tracers: every observation goes to each in order. Nil
// arguments are dropped; Tee of zero or one live tracer returns it directly.
func Tee(tracers ...Tracer) Tracer {
	live := make(multiTracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// kernelObserver, when set, is called once for every kernel NewKernel
// returns. It is the process-level capture point tracing tools use to attach
// tracers to kernels constructed deep inside simulators, without every
// simulator having to thread a Tracer through its configuration. The
// observer must be safe for concurrent calls — parallel sweep tasks
// construct kernels concurrently.
var kernelObserver atomic.Pointer[func(*Kernel)]

// SetKernelObserver installs (or, with nil, removes) the process-wide
// kernel-creation observer. Install before launching the run to trace and
// remove it afterwards; installing while unrelated simulations are running
// traces their kernels too.
func SetKernelObserver(f func(*Kernel)) {
	if f == nil {
		kernelObserver.Store(nil)
		return
	}
	kernelObserver.Store(&f)
}

// globalFired counts events fired by every kernel in the process. Kernels
// flush their local counter into it when Run returns, so the cost is one
// atomic add per Run, not per event.
var globalFired atomic.Uint64

// GlobalEventsFired reports the total events fired by all kernels of the
// process since start (flushed at each Run/Step return). The serve layer
// exports it as atlarge_kernel_events_total.
func GlobalEventsFired() uint64 { return globalFired.Load() }
