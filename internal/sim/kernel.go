// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate shared by every simulator in this repository:
// the datacenter/cluster simulator, the BitTorrent ecosystem simulator, the
// MMOG world simulator, the FaaS platform simulator, and the autoscaling
// engines. It offers a virtual clock, a 4-ary-heap event queue with stable
// FIFO ordering for simultaneous events, named deterministic RNG streams,
// and run-termination conditions.
//
// A Kernel is single-goroutine by design: handlers run sequentially in
// virtual-time order, so simulation state needs no locking. Determinism is a
// first-class requirement — two runs with the same seed produce identical
// event orders and identical results.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured in seconds since the start of the
// simulation. Virtual time is a float64 so that rate-based models (bandwidth,
// Poisson arrivals) compose without rounding artifacts.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Seconds converts a standard library duration to virtual seconds.
func Seconds(d time.Duration) Duration { return Duration(d.Seconds()) }

// Handler is a callback invoked when an event fires. The kernel passes itself
// so handlers can schedule follow-up events.
type Handler func(k *Kernel)

// event is a scheduled callback. Fired and discarded events return to the
// kernel's free list and are reused by later At/After calls; gen distinguishes
// the incarnations so a stale EventRef cannot cancel a recycled event.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	fn   Handler
	name string
	dead bool   // cancelled
	gen  uint32 // incremented every time the struct is recycled
}

// EventRef identifies a scheduled event so it can be cancelled.
type EventRef struct {
	ev  *event
	gen uint32
}

// Cancel marks the referenced event as dead; the kernel discards it when it
// reaches the head of the queue. Cancelling an already-fired or already-
// cancelled event is a no-op.
func (r EventRef) Cancel() {
	if r.ev != nil && r.ev.gen == r.gen {
		r.ev.dead = true
	}
}

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop rather than by queue exhaustion or horizon.
var ErrStopped = errors.New("sim: stopped")

// Kernel is a discrete-event simulation engine.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now     Time
	queue   []*event // 4-ary min-heap ordered by (at, seq)
	free    []*event // recycled event structs
	seq     uint64
	seed    int64
	streams map[string]*rand.Rand
	stopped bool
	horizon Time // 0 means no horizon
	fired   uint64
	flushed uint64 // portion of fired already added to globalFired
	tracer  Tracer
}

// NewKernel returns a kernel whose RNG streams derive deterministically from
// seed.
func NewKernel(seed int64) *Kernel {
	k := &Kernel{
		seed:    seed,
		streams: make(map[string]*rand.Rand),
	}
	if obs := kernelObserver.Load(); obs != nil {
		(*obs)(k)
	}
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the seed the kernel was constructed with. Seeds derived via
// DeriveSeed are unique per task, so tracing tools use the seed to attribute
// a kernel back to the experiment or scenario cell that created it.
func (k *Kernel) Seed() int64 { return k.seed }

// SetTracer attaches t to the kernel (nil detaches). Only events scheduled,
// fired, or discarded after the call are observed.
func (k *Kernel) SetTracer(t Tracer) { k.tracer = t }

// EventsFired reports how many events have been executed so far.
func (k *Kernel) EventsFired() uint64 { return k.fired }

// flushFired folds events fired since the last flush into the process-wide
// counter; called once per Run/Step return so the per-event path stays free
// of atomics.
func (k *Kernel) flushFired() {
	if d := k.fired - k.flushed; d > 0 {
		globalFired.Add(d)
		k.flushed = k.fired
	}
}

// Pending reports how many events are scheduled (including cancelled events
// not yet discarded).
func (k *Kernel) Pending() int { return len(k.queue) }

// Rand returns the named deterministic RNG stream, creating it on first use.
// Distinct stream names decouple the random sequences of independent model
// components, so adding draws to one component does not perturb another.
func (k *Kernel) Rand(stream string) *rand.Rand {
	if k.tracer != nil {
		k.tracer.RandAccess(stream, k.now)
	}
	if r, ok := k.streams[stream]; ok {
		return r
	}
	// Derive a sub-seed from the kernel seed and the stream name using FNV-1a.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= 1099511628211
	}
	r := rand.New(rand.NewSource(k.seed ^ int64(h)))
	k.streams[stream] = r
	return r
}

// less orders events by (at, seq): virtual time first, FIFO among ties.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The event queue is a 4-ary implicit heap: children of i live at 4i+1..4i+4.
// Compared to the binary heap it halves the tree depth, so sift-up (the hot
// path when events are mostly scheduled in time order) does half the
// comparisons and the node's four children share cache lines on sift-down.

// push appends e and restores the heap property bottom-up.
func (k *Kernel) push(e *event) {
	q := k.queue
	i := len(q)
	q = append(q, e)
	for i > 0 {
		p := (i - 1) / 4
		if !less(e, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
	k.queue = q
}

// pop removes and returns the earliest event.
func (k *Kernel) pop() *event {
	q := k.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	q = q[:n]
	if n > 0 {
		// Sift the former tail down from the root.
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if less(q[j], q[m]) {
					m = j
				}
			}
			if !less(q[m], last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	k.queue = q
	return top
}

// alloc takes an event struct from the free list (or the allocator) and
// stamps it with the next sequence number.
func (k *Kernel) alloc(at Time, name string, fn Handler) *event {
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		e = &event{}
	}
	k.seq++
	e.at = at
	e.seq = k.seq
	e.fn = fn
	e.name = name
	e.dead = false
	return e
}

// recycle returns a popped event to the free list. Bumping gen invalidates
// every outstanding EventRef to this incarnation.
func (k *Kernel) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.name = ""
	e.dead = false
	k.free = append(k.free, e)
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (before Now) panics: it would corrupt causality.
func (k *Kernel) At(at Time, name string, fn Handler) EventRef {
	if at < k.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, at, k.now))
	}
	e := k.alloc(at, name, fn)
	k.push(e)
	if k.tracer != nil {
		k.tracer.EventScheduled(name, at, k.now)
	}
	return EventRef{ev: e, gen: e.gen}
}

// After schedules fn to run delay seconds from now. Negative delays panic.
func (k *Kernel) After(delay Duration, name string, fn Handler) EventRef {
	return k.At(k.now+delay, name, fn)
}

// Stop terminates the run after the current handler returns.
func (k *Kernel) Stop() { k.stopped = true }

// SetHorizon makes Run return once virtual time would exceed t. Events
// scheduled after the horizon are not executed.
func (k *Kernel) SetHorizon(t Time) { k.horizon = t }

// Run executes events in virtual-time order until the queue is empty, the
// horizon is reached, or Stop is called. It returns ErrStopped only for an
// explicit Stop; horizon exhaustion and queue exhaustion are normal
// termination and return nil.
func (k *Kernel) Run() error {
	defer k.flushFired()
	for len(k.queue) > 0 {
		if k.stopped {
			return ErrStopped
		}
		e := k.pop()
		if e.dead {
			if k.tracer != nil {
				k.tracer.EventCancelled(e.name, e.at, k.now)
			}
			k.recycle(e)
			continue
		}
		if k.horizon > 0 && e.at > k.horizon {
			k.now = k.horizon
			k.recycle(e)
			return nil
		}
		if e.at < k.now {
			return fmt.Errorf("sim: causality violation: event %q at %v < now %v", e.name, e.at, k.now)
		}
		k.now = e.at
		k.fired++
		fn := e.fn
		if k.tracer == nil {
			k.recycle(e)
			fn(k)
			continue
		}
		// Traced path: the name must outlive recycle, and only this branch
		// pays for the clock reads.
		name, at := e.name, e.at
		k.recycle(e)
		start := time.Now()
		fn(k)
		k.tracer.EventFired(name, at, time.Since(start))
	}
	if k.stopped {
		return ErrStopped
	}
	return nil
}

// Step executes exactly one pending live event and reports whether one was
// executed. It is intended for tests and debuggers.
func (k *Kernel) Step() (bool, error) {
	defer k.flushFired()
	for len(k.queue) > 0 {
		e := k.pop()
		if e.dead {
			if k.tracer != nil {
				k.tracer.EventCancelled(e.name, e.at, k.now)
			}
			k.recycle(e)
			continue
		}
		if e.at < k.now {
			return false, fmt.Errorf("sim: causality violation: event %q at %v < now %v", e.name, e.at, k.now)
		}
		k.now = e.at
		k.fired++
		fn := e.fn
		if k.tracer == nil {
			k.recycle(e)
			fn(k)
			return true, nil
		}
		name, at := e.name, e.at
		k.recycle(e)
		start := time.Now()
		fn(k)
		k.tracer.EventFired(name, at, time.Since(start))
		return true, nil
	}
	return false, nil
}
