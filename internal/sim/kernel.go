// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate shared by every simulator in this repository:
// the datacenter/cluster simulator, the BitTorrent ecosystem simulator, the
// MMOG world simulator, and the FaaS platform simulator. It offers a virtual
// clock, a binary-heap event queue with stable FIFO ordering for simultaneous
// events, named deterministic RNG streams, and run-termination conditions.
//
// A Kernel is single-goroutine by design: handlers run sequentially in
// virtual-time order, so simulation state needs no locking. Determinism is a
// first-class requirement — two runs with the same seed produce identical
// event orders and identical results.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured in seconds since the start of the
// simulation. Virtual time is a float64 so that rate-based models (bandwidth,
// Poisson arrivals) compose without rounding artifacts.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Seconds converts a standard library duration to virtual seconds.
func Seconds(d time.Duration) Duration { return Duration(d.Seconds()) }

// Handler is a callback invoked when an event fires. The kernel passes itself
// so handlers can schedule follow-up events.
type Handler func(k *Kernel)

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	fn   Handler
	name string
	dead bool // cancelled
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// EventRef identifies a scheduled event so it can be cancelled.
type EventRef struct{ ev *event }

// Cancel marks the referenced event as dead; the kernel discards it when it
// reaches the head of the queue. Cancelling an already-fired or already-
// cancelled event is a no-op.
func (r EventRef) Cancel() {
	if r.ev != nil {
		r.ev.dead = true
	}
}

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop rather than by queue exhaustion or horizon.
var ErrStopped = errors.New("sim: stopped")

// Kernel is a discrete-event simulation engine.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now     Time
	queue   eventQueue
	seq     uint64
	seed    int64
	streams map[string]*rand.Rand
	stopped bool
	horizon Time // 0 means no horizon
	fired   uint64
}

// NewKernel returns a kernel whose RNG streams derive deterministically from
// seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		seed:    seed,
		streams: make(map[string]*rand.Rand),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// EventsFired reports how many events have been executed so far.
func (k *Kernel) EventsFired() uint64 { return k.fired }

// Pending reports how many events are scheduled (including cancelled events
// not yet discarded).
func (k *Kernel) Pending() int { return len(k.queue) }

// Rand returns the named deterministic RNG stream, creating it on first use.
// Distinct stream names decouple the random sequences of independent model
// components, so adding draws to one component does not perturb another.
func (k *Kernel) Rand(stream string) *rand.Rand {
	if r, ok := k.streams[stream]; ok {
		return r
	}
	// Derive a sub-seed from the kernel seed and the stream name using FNV-1a.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= 1099511628211
	}
	r := rand.New(rand.NewSource(k.seed ^ int64(h)))
	k.streams[stream] = r
	return r
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (before Now) panics: it would corrupt causality.
func (k *Kernel) At(at Time, name string, fn Handler) EventRef {
	if at < k.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, at, k.now))
	}
	k.seq++
	e := &event{at: at, seq: k.seq, fn: fn, name: name}
	heap.Push(&k.queue, e)
	return EventRef{ev: e}
}

// After schedules fn to run delay seconds from now. Negative delays panic.
func (k *Kernel) After(delay Duration, name string, fn Handler) EventRef {
	return k.At(k.now+delay, name, fn)
}

// Stop terminates the run after the current handler returns.
func (k *Kernel) Stop() { k.stopped = true }

// SetHorizon makes Run return once virtual time would exceed t. Events
// scheduled after the horizon are not executed.
func (k *Kernel) SetHorizon(t Time) { k.horizon = t }

// Run executes events in virtual-time order until the queue is empty, the
// horizon is reached, or Stop is called. It returns ErrStopped only for an
// explicit Stop; horizon exhaustion and queue exhaustion are normal
// termination and return nil.
func (k *Kernel) Run() error {
	for len(k.queue) > 0 {
		if k.stopped {
			return ErrStopped
		}
		e := heap.Pop(&k.queue).(*event)
		if e.dead {
			continue
		}
		if k.horizon > 0 && e.at > k.horizon {
			k.now = k.horizon
			return nil
		}
		if e.at < k.now {
			return fmt.Errorf("sim: causality violation: event %q at %v < now %v", e.name, e.at, k.now)
		}
		k.now = e.at
		k.fired++
		e.fn(k)
	}
	if k.stopped {
		return ErrStopped
	}
	return nil
}

// Step executes exactly one pending live event and reports whether one was
// executed. It is intended for tests and debuggers.
func (k *Kernel) Step() (bool, error) {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*event)
		if e.dead {
			continue
		}
		if e.at < k.now {
			return false, fmt.Errorf("sim: causality violation: event %q at %v < now %v", e.name, e.at, k.now)
		}
		k.now = e.at
		k.fired++
		e.fn(k)
		return true, nil
	}
	return false, nil
}
