// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate shared by every simulator in this repository:
// the datacenter/cluster simulator, the BitTorrent ecosystem simulator, the
// MMOG world simulator, the FaaS platform simulator, and the autoscaling
// engines. It offers a virtual clock, a 4-ary-heap event queue with stable
// FIFO ordering for simultaneous events, named deterministic RNG streams,
// and run-termination conditions.
//
// A Kernel is single-goroutine by design: handlers run sequentially in
// virtual-time order, so simulation state needs no locking. Determinism is a
// first-class requirement — two runs with the same seed produce identical
// event orders and identical results.
//
// # Event storage
//
// Events live in a single growable slab indexed by uint32, never as
// individually heap-allocated structs: scheduling draws a slot from an
// intrusive free stack threaded through the slab, and the priority queue is
// a 4-ary min-heap of value nodes carrying the ordering keys (at, seq)
// alongside the slot index, so sift-up/down compare adjacent cache lines
// without chasing pointers. Steady-state Schedule/Fire therefore allocates
// nothing; cold start amortizes to O(log n) slab doublings.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured in seconds since the start of the
// simulation. Virtual time is a float64 so that rate-based models (bandwidth,
// Poisson arrivals) compose without rounding artifacts.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Seconds converts a standard library duration to virtual seconds.
func Seconds(d time.Duration) Duration { return Duration(d.Seconds()) }

// Handler is a callback invoked when an event fires. The kernel passes itself
// so handlers can schedule follow-up events.
type Handler func(k *Kernel)

// event is one slab slot: the callback and liveness state of a scheduled
// event. The ordering keys (at, seq) live in the heap node instead, so the
// slot is only touched at schedule, fire, and cancel-discard time. Fired and
// discarded slots return to the free stack and are reused by later At/After
// calls; gen distinguishes the incarnations so a stale EventRef cannot
// cancel a recycled slot.
type event struct {
	fn   Handler
	name string
	gen  uint32 // incremented every time the slot is recycled
	next uint32 // next slot in the free stack (meaningful only while free)
	dead bool   // cancelled
}

// heapNode is one entry of the 4-ary min-heap: the event's virtual time
// packed with a (seq, idx) key, so the hot sift loops never dereference the
// slab. The 16-byte node puts a parent's four children on exactly one cache
// line. The time is stored as its IEEE-754 bit pattern — virtual time is
// never negative, so unsigned bit order equals numeric order — which lets
// nodeLess compare (atBits, key) as one 128-bit integer with no branches.
// The key's high 40 bits are the schedule sequence number (the FIFO
// tie-breaker among simultaneous events) and the low 24 bits the slab index,
// so comparing keys compares sequence numbers — seq is unique per event, so
// the idx bits never decide an order.
type heapNode struct {
	atBits uint64 // packTime(at)
	key    uint64 // seq<<idxBits | idx
}

// packTime converts a non-negative virtual time to order-preserving bits.
// Negative zero normalizes to positive zero so it cannot sort as a huge
// unsigned value.
func packTime(at Time) uint64 {
	if at == 0 {
		return 0
	}
	return math.Float64bits(float64(at))
}

// unpackTime is the inverse of packTime.
func unpackTime(b uint64) Time { return Time(math.Float64frombits(b)) }

const (
	idxBits = 24
	idxMask = 1<<idxBits - 1
	// maxSeq bounds the 40-bit sequence space: ~1.1e12 scheduled events per
	// kernel. maxIdx bounds concurrently scheduled events at ~16.7M.
	maxSeq = 1<<(64-idxBits) - 1
	maxIdx = idxMask
)

// index extracts the slab index from the node key.
func (n heapNode) index() uint32 { return uint32(n.key & idxMask) }

// noEvent is the free-stack terminator.
const noEvent = ^uint32(0)

// nextCap is the slab/heap growth ladder: small kernels stay small (a churn
// sim with 8 live timers allocates 128 slots once), cold bulk schedules grow
// aggressively so a 4096-event load is reached in two growths, and very
// large queues fall back to doubling so overshoot stays bounded.
func nextCap(c int) int {
	switch {
	case c == 0:
		return 128
	case c < 1024:
		return c * 8
	case c < 65536:
		return c * 4
	}
	return c * 2
}

// EventRef identifies a scheduled event so it can be cancelled. The zero
// EventRef is valid and cancels nothing.
type EventRef struct {
	k   *Kernel
	idx uint32
	gen uint32
}

// Cancel marks the referenced event as dead; the kernel discards it when it
// reaches the head of the queue. Cancelling an already-fired or already-
// cancelled event is a no-op: the slot's generation counter advances when
// the slot is recycled, so a stale reference can never kill the slot's next
// occupant.
func (r EventRef) Cancel() {
	if r.k == nil {
		return
	}
	if e := &r.k.events[r.idx]; e.gen == r.gen {
		e.dead = true
	}
}

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop rather than by queue exhaustion or horizon.
var ErrStopped = errors.New("sim: stopped")

// Kernel is a discrete-event simulation engine.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now      Time
	heap     []heapNode // 4-ary min-heap ordered by (at, seq)
	events   []event    // slab of event slots addressed by heap node indices
	freeHead uint32     // top of the intrusive free stack, noEvent when empty
	seq      uint64
	seed     int64
	streams  map[string]*rand.Rand
	stopped  bool
	horizon  Time // 0 means no horizon
	fired    uint64
	flushed  uint64 // portion of fired already added to globalFired
	tracer   Tracer
}

// NewKernel returns a kernel whose RNG streams derive deterministically from
// seed.
func NewKernel(seed int64) *Kernel {
	k := &Kernel{
		seed:     seed,
		freeHead: noEvent,
	}
	if obs := kernelObserver.Load(); obs != nil {
		(*obs)(k)
	}
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the seed the kernel was constructed with. Seeds derived via
// DeriveSeed are unique per task, so tracing tools use the seed to attribute
// a kernel back to the experiment or scenario cell that created it.
func (k *Kernel) Seed() int64 { return k.seed }

// SetTracer attaches t to the kernel (nil detaches). Only events scheduled,
// fired, or discarded after the call are observed.
func (k *Kernel) SetTracer(t Tracer) { k.tracer = t }

// EventsFired reports how many events have been executed so far.
func (k *Kernel) EventsFired() uint64 { return k.fired }

// flushFired folds events fired since the last flush into the process-wide
// counter; called once per Run/Step return so the per-event path stays free
// of atomics.
func (k *Kernel) flushFired() {
	if d := k.fired - k.flushed; d > 0 {
		globalFired.Add(d)
		k.flushed = k.fired
	}
}

// Pending reports how many events are scheduled (including cancelled events
// not yet discarded).
func (k *Kernel) Pending() int { return len(k.heap) }

// Rand returns the named deterministic RNG stream, creating it on first use.
// Distinct stream names decouple the random sequences of independent model
// components, so adding draws to one component does not perturb another.
func (k *Kernel) Rand(stream string) *rand.Rand {
	if k.tracer != nil {
		k.tracer.RandAccess(stream, k.now)
	}
	if r, ok := k.streams[stream]; ok {
		return r
	}
	// Derive a sub-seed from the kernel seed and the stream name using FNV-1a.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= 1099511628211
	}
	r := rand.New(rand.NewSource(k.seed ^ int64(h)))
	if k.streams == nil {
		k.streams = make(map[string]*rand.Rand)
	}
	k.streams[stream] = r
	return r
}

// nodeLess orders heap nodes by (at, seq): virtual time first, FIFO among
// ties. seq is unique per scheduled event, so the order is total and the
// fire sequence is independent of the heap's internal arrangement. The
// comparison is a branch-free 128-bit unsigned compare (a borrow out of the
// double-word subtraction means a < b), which the sift loops depend on:
// simultaneous events make a time-then-seq branch pair unpredictable.
func nodeLess(a, b heapNode) bool {
	_, borrow := bits.Sub64(a.key, b.key, 0)
	_, borrow = bits.Sub64(a.atBits, b.atBits, borrow)
	return borrow != 0
}

// The event queue is a 4-ary implicit heap: children of i live at 4i+1..4i+4.
// Compared to the binary heap it halves the tree depth, so sift-up (the hot
// path when events are mostly scheduled in time order) does half the
// comparisons and the node's four children share cache lines on sift-down.

// Reserve pre-sizes the event slab and heap for at least n concurrently
// scheduled events, so a run whose live-event bound is known up front never
// grows either during the simulation. Reserving less than the current
// capacity is a no-op.
func (k *Kernel) Reserve(n int) {
	if n > cap(k.events) {
		ne := make([]event, len(k.events), n)
		copy(ne, k.events)
		k.events = ne
	}
	if n > cap(k.heap) {
		nh := make([]heapNode, len(k.heap), n)
		copy(nh, k.heap)
		k.heap = nh
	}
}

// growSlab grows the slab along the nextCap ladder. Growing by hand rather
// than through append keeps cold-start growth at O(log n) allocations;
// append's large-slice growth factor is smaller.
func (k *Kernel) growSlab() {
	ne := make([]event, len(k.events), nextCap(cap(k.events)))
	copy(ne, k.events)
	k.events = ne
}

// growHeap grows the heap along the nextCap ladder.
func (k *Kernel) growHeap() {
	nh := make([]heapNode, len(k.heap), nextCap(cap(k.heap)))
	copy(nh, k.heap)
	k.heap = nh
}

// push inserts n and restores the heap property bottom-up.
func (k *Kernel) push(n heapNode) {
	if len(k.heap) == cap(k.heap) {
		k.growHeap()
	}
	h := k.heap[:len(k.heap)+1]
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !nodeLess(n, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = n
	k.heap = h
}

// appendNode appends n without restoring heap order; callers must heapify
// before the next pop. Used by the batch scheduling path.
func (k *Kernel) appendNode(n heapNode) {
	if len(k.heap) == cap(k.heap) {
		k.growHeap()
	}
	k.heap = append(k.heap, n)
}

// siftDown restores the heap property below i, assuming both subtrees of i
// are heaps.
func siftDown(h []heapNode, i int) {
	n := len(h)
	node := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if nodeLess(h[j], h[m]) {
				m = j
			}
		}
		if !nodeLess(h[m], node) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = node
}

// heapify rebuilds the whole heap bottom-up (Floyd), O(n) instead of the
// O(n log n) of pushing every node. The fire order is unaffected by the
// internal arrangement because (at, seq) is a total order.
func (k *Kernel) heapify() {
	h := k.heap
	for i := (len(h) - 2) / 4; i >= 0; i-- {
		siftDown(h, i)
	}
}

// pop removes and returns the earliest node. It uses the bottom-up variant
// of sift-down: the root hole walks to a leaf along min-children (three
// comparisons per level, no early-exit test), then the former tail is sifted
// up from that leaf — the tail came from the bottom of the tree, so the up
// phase almost always terminates within a level. For a full drain this does
// ~25% fewer comparisons than the classic sift-down and keeps the per-level
// loop free of unpredictable exits.
func (k *Kernel) pop() heapNode {
	h := k.heap
	top := h[0]
	n := len(h) - 1
	tail := h[n]
	k.heap = h[:n]
	if n == 0 {
		return top
	}
	h = k.heap
	i := 0
	for {
		c := 4*i + 1
		if c+4 <= n {
			// Full fan-out: unrolled min-of-four.
			m := c
			if nodeLess(h[c+1], h[m]) {
				m = c + 1
			}
			if nodeLess(h[c+2], h[m]) {
				m = c + 2
			}
			if nodeLess(h[c+3], h[m]) {
				m = c + 3
			}
			h[i] = h[m]
			i = m
			continue
		}
		if c >= n {
			break
		}
		m := c
		for j := c + 1; j < n; j++ {
			if nodeLess(h[j], h[m]) {
				m = j
			}
		}
		h[i] = h[m]
		i = m
	}
	for i > 0 {
		p := (i - 1) / 4
		if !nodeLess(tail, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = tail
	return top
}

// alloc takes a slot from the free stack (or the slab tail) and initializes
// it for one scheduled event.
func (k *Kernel) alloc(name string, fn Handler) uint32 {
	idx := k.freeHead
	if idx != noEvent {
		k.freeHead = k.events[idx].next
	} else {
		if len(k.events) == cap(k.events) {
			k.growSlab()
		}
		k.events = k.events[:len(k.events)+1]
		idx = uint32(len(k.events) - 1)
		if idx > maxIdx {
			panic("sim: too many concurrently scheduled events (2^24)")
		}
	}
	e := &k.events[idx]
	e.fn = fn
	e.name = name
	e.dead = false
	return idx
}

// nextKey stamps the next sequence number onto slab index idx.
func (k *Kernel) nextKey(idx uint32) uint64 {
	k.seq++
	if k.seq > maxSeq {
		panic("sim: kernel sequence space exhausted (2^40 events scheduled)")
	}
	return k.seq<<idxBits | uint64(idx)
}

// recycle returns a popped slot to the free stack. Bumping gen invalidates
// every outstanding EventRef to this incarnation.
func (k *Kernel) recycle(idx uint32) {
	e := &k.events[idx]
	e.gen++
	e.fn = nil
	e.name = ""
	e.dead = false
	e.next = k.freeHead
	k.freeHead = idx
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (before Now) panics: it would corrupt causality.
func (k *Kernel) At(at Time, name string, fn Handler) EventRef {
	if at < k.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, at, k.now))
	}
	idx := k.alloc(name, fn)
	k.push(heapNode{atBits: packTime(at), key: k.nextKey(idx)})
	if k.tracer != nil {
		k.tracer.EventScheduled(name, at, k.now)
	}
	return EventRef{k: k, idx: idx, gen: k.events[idx].gen}
}

// After schedules fn to run delay seconds from now. Negative delays panic.
func (k *Kernel) After(delay Duration, name string, fn Handler) EventRef {
	return k.At(k.now+delay, name, fn)
}

// BatchEvent is one entry of an AtBatch call.
type BatchEvent struct {
	At   Time
	Name string
	Fn   Handler
}

// batchUsesHeapify decides how a batch of n events enters a queue currently
// holding pending nodes: past roughly a quarter of the resulting queue, one
// O(queue) bottom-up heapify beats n O(log queue) sift-ups.
func batchUsesHeapify(n, pending int) bool {
	return n > (pending+n)/4
}

// AtBatch schedules every event of batch, equivalent to calling At for each
// in order (same sequence numbers, so the same FIFO tie-breaking) but with
// one heap rebuild when the batch is large relative to the queue: generators
// that schedule all arrivals up front pay O(n) instead of O(n log n) sifts.
// Batch events cannot be cancelled individually; use At when a ref is
// needed. Scheduling in the past panics, as with At.
func (k *Kernel) AtBatch(batch []BatchEvent) {
	if len(batch) == 0 {
		return
	}
	for i := range batch {
		if batch[i].At < k.now {
			panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", batch[i].Name, batch[i].At, k.now))
		}
	}
	bulk := batchUsesHeapify(len(batch), len(k.heap))
	for i := range batch {
		b := &batch[i]
		idx := k.alloc(b.Name, b.Fn)
		n := heapNode{atBits: packTime(b.At), key: k.nextKey(idx)}
		if bulk {
			k.appendNode(n)
		} else {
			k.push(n)
		}
		if k.tracer != nil {
			k.tracer.EventScheduled(b.Name, b.At, k.now)
		}
	}
	if bulk {
		k.heapify()
	}
}

// AfterEach schedules n occurrences of fn, the first period seconds from now
// and each subsequent one period after the previous — the batch equivalent
// of a self-rescheduling tick chain, without per-tick push costs or the n
// closures of AtBatch. Event times accumulate by repeated addition, so they
// are bit-identical to the times an equivalent chain of After calls would
// produce. Negative periods panic.
func (k *Kernel) AfterEach(period Duration, n int, name string, fn Handler) {
	if n <= 0 {
		return
	}
	if period < 0 {
		panic(fmt.Sprintf("sim: event %q scheduled %v before now", name, period))
	}
	bulk := batchUsesHeapify(n, len(k.heap))
	at := k.now
	for i := 0; i < n; i++ {
		at += period
		idx := k.alloc(name, fn)
		node := heapNode{atBits: packTime(at), key: k.nextKey(idx)}
		if bulk {
			k.appendNode(node)
		} else {
			k.push(node)
		}
		if k.tracer != nil {
			k.tracer.EventScheduled(name, at, k.now)
		}
	}
	if bulk {
		k.heapify()
	}
}

// Stop terminates the run after the current handler returns.
func (k *Kernel) Stop() { k.stopped = true }

// SetHorizon makes Run and Step return once virtual time would exceed t.
// Events scheduled after the horizon are not executed.
func (k *Kernel) SetHorizon(t Time) { k.horizon = t }

// Run executes events in virtual-time order until the queue is empty, the
// horizon is reached, or Stop is called. It returns ErrStopped only for an
// explicit Stop; horizon exhaustion and queue exhaustion are normal
// termination and return nil.
func (k *Kernel) Run() error {
	defer k.flushFired()
	for len(k.heap) > 0 {
		if k.stopped {
			return ErrStopped
		}
		n := k.pop()
		idx := n.index()
		at := unpackTime(n.atBits)
		e := &k.events[idx]
		if e.dead {
			if k.tracer != nil {
				k.tracer.EventCancelled(e.name, at, k.now)
			}
			k.recycle(idx)
			continue
		}
		if k.horizon > 0 && at > k.horizon {
			k.now = k.horizon
			k.recycle(idx)
			return nil
		}
		if at < k.now {
			return fmt.Errorf("sim: causality violation: event %q at %v < now %v", e.name, at, k.now)
		}
		k.now = at
		k.fired++
		fn := e.fn
		if k.tracer == nil {
			k.recycle(idx)
			fn(k)
			continue
		}
		// Traced path: the name must outlive recycle, and only this branch
		// pays for the clock reads.
		name := e.name
		k.recycle(idx)
		start := time.Now()
		fn(k)
		k.tracer.EventFired(name, at, time.Since(start))
	}
	if k.stopped {
		return ErrStopped
	}
	return nil
}

// Step executes exactly one pending live event and reports whether one was
// executed. It is intended for tests and debuggers. Step honors the horizon
// the same way Run does: a first-pending event past the horizon advances the
// clock to the horizon, discards that event, and reports false.
func (k *Kernel) Step() (bool, error) {
	defer k.flushFired()
	for len(k.heap) > 0 {
		n := k.pop()
		idx := n.index()
		at := unpackTime(n.atBits)
		e := &k.events[idx]
		if e.dead {
			if k.tracer != nil {
				k.tracer.EventCancelled(e.name, at, k.now)
			}
			k.recycle(idx)
			continue
		}
		if k.horizon > 0 && at > k.horizon {
			k.now = k.horizon
			k.recycle(idx)
			return false, nil
		}
		if at < k.now {
			return false, fmt.Errorf("sim: causality violation: event %q at %v < now %v", e.name, at, k.now)
		}
		k.now = at
		k.fired++
		fn := e.fn
		if k.tracer == nil {
			k.recycle(idx)
			fn(k)
			return true, nil
		}
		name := e.name
		k.recycle(idx)
		start := time.Now()
		fn(k)
		k.tracer.EventFired(name, at, time.Since(start))
		return true, nil
	}
	return false, nil
}
