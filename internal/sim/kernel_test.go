package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		k.At(at, "e", func(k *Kernel) { got = append(got, k.Now()) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKernelSimultaneousEventsAreFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(7, "tie", func(*Kernel) { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of order: %v", order)
		}
	}
}

func TestKernelAfterSchedulesRelative(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.At(10, "outer", func(k *Kernel) {
		k.After(5, "inner", func(k *Kernel) { at = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 15 {
		t.Errorf("inner event fired at %v, want 15", at)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(10, "outer", func(k *Kernel) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, "past", func(*Kernel) {})
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	ref := k.At(1, "doomed", func(*Kernel) { fired = true })
	ref.Cancel()
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if k.EventsFired() != 0 {
		t.Errorf("EventsFired = %d, want 0", k.EventsFired())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := 1; i <= 5; i++ {
		k.At(Time(i), "e", func(k *Kernel) {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	if err := k.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Errorf("fired %d events before stop, want 3", count)
	}
}

func TestKernelHorizon(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for i := 1; i <= 10; i++ {
		at := Time(i)
		k.At(at, "e", func(k *Kernel) { fired = append(fired, k.Now()) })
	}
	k.SetHorizon(4)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %d events, want 4 (horizon)", len(fired))
	}
	if k.Now() != 4 {
		t.Errorf("Now = %v, want horizon 4", k.Now())
	}
}

func TestKernelStep(t *testing.T) {
	k := NewKernel(1)
	k.At(1, "a", func(*Kernel) {})
	k.At(2, "b", func(*Kernel) {})
	ok, err := k.Step()
	if err != nil || !ok {
		t.Fatalf("Step = (%v,%v), want (true,nil)", ok, err)
	}
	if k.Now() != 1 {
		t.Errorf("Now = %v after one step, want 1", k.Now())
	}
	if _, err := k.Step(); err != nil {
		t.Fatalf("second Step: %v", err)
	}
	ok, err = k.Step()
	if err != nil || ok {
		t.Fatalf("exhausted Step = (%v,%v), want (false,nil)", ok, err)
	}
}

func TestKernelDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []float64 {
		k := NewKernel(seed)
		var draws []float64
		var tick func(k *Kernel)
		n := 0
		tick = func(k *Kernel) {
			draws = append(draws, k.Rand("svc").Float64())
			n++
			if n < 50 {
				k.After(Duration(k.Rand("arr").ExpFloat64()), "tick", tick)
			}
		}
		k.After(0, "tick", tick)
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return draws
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs produced different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same && len(a) == len(c) {
		t.Error("different seeds produced identical draws")
	}
}

func TestRandStreamsAreIndependent(t *testing.T) {
	k := NewKernel(7)
	a1 := k.Rand("a").Float64()
	k2 := NewKernel(7)
	_ = k2.Rand("b").Float64() // interleave a draw from another stream
	a2 := k2.Rand("a").Float64()
	if a1 != a2 {
		t.Errorf("stream a perturbed by stream b: %v vs %v", a1, a2)
	}
}

func TestKernelEventOrderProperty(t *testing.T) {
	// Property: for any set of event times, execution order is the sorted
	// order of times.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		k := NewKernel(1)
		var fired []Time
		for _, v := range raw {
			at := Time(v)
			k.At(at, "p", func(k *Kernel) { fired = append(fired, k.Now()) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		want := make([]Time, len(raw))
		for i, v := range raw {
			want[i] = Time(v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDistMeans(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const n = 200000
	tests := []struct {
		d   Dist
		tol float64
	}{
		{Constant{Value: 3}, 0.0001},
		{Uniform{Low: 2, High: 6}, 0.05},
		{Exponential{Lambda: 0.5}, 0.05},
		{LogNormal{Mu: 1, Sigma: 0.5}, 0.05},
		{Pareto{Xm: 1, Alpha: 3}, 0.05},
		{Weibull{Lambda: 2, K: 1.5}, 0.05},
		{Normal{Mu: 10, Sigma: 1}, 0.05},
		{Zipf{N: 10, S: 1.2}, 0.1},
	}
	for _, tt := range tests {
		t.Run(tt.d.String(), func(t *testing.T) {
			sum := 0.0
			for i := 0; i < n; i++ {
				v := tt.d.Sample(r)
				if v < 0 {
					t.Fatalf("negative sample %v", v)
				}
				sum += v
			}
			got := sum / n
			want := tt.d.Mean()
			if math.Abs(got-want)/want > tt.tol {
				t.Errorf("empirical mean %v, want %v (±%v rel)", got, want, tt.tol)
			}
		})
	}
}

func TestDistSamplesNonNegativeProperty(t *testing.T) {
	dists := []Dist{
		Exponential{Lambda: 2},
		LogNormal{Mu: 0, Sigma: 1},
		Pareto{Xm: 0.5, Alpha: 1.1},
		Weibull{Lambda: 1, K: 0.7},
		Normal{Mu: 0.1, Sigma: 5},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, d := range dists {
			for i := 0; i < 100; i++ {
				if v := d.Sample(r); v < 0 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestZipfRanksInRange(t *testing.T) {
	z := Zipf{N: 5, S: 1.0}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		v := z.Sample(r)
		if v < 1 || v > 5 || v != math.Trunc(v) {
			t.Fatalf("zipf sample %v out of range or non-integer", v)
		}
	}
}

func TestRecorder(t *testing.T) {
	var rec Recorder
	rec.Record("util", 0, 0.5)
	rec.Record("util", 10, 1.0)
	rec.Record("util", 20, 0.0)
	rec.Record("other", 1, 2)

	if got := rec.Len("util"); got != 3 {
		t.Errorf("Len(util) = %d, want 3", got)
	}
	if got := rec.Values("util"); len(got) != 3 || got[1] != 1.0 {
		t.Errorf("Values(util) = %v", got)
	}
	names := rec.Names()
	if len(names) != 2 || names[0] != "other" || names[1] != "util" {
		t.Errorf("Names = %v", names)
	}
	// Piecewise-constant integral: 0.5 for 10s, 1.0 for 10s, 0.0 for 10s over 30s.
	got := rec.TimeWeightedMean("util", 30)
	want := (0.5*10 + 1.0*10 + 0*10) / 30
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("TimeWeightedMean = %v, want %v", got, want)
	}
}

func TestRecorderTimeWeightedMeanEdge(t *testing.T) {
	var rec Recorder
	if got := rec.TimeWeightedMean("missing", 10); got != 0 {
		t.Errorf("empty series mean = %v, want 0", got)
	}
	rec.Record("s", 5, 3)
	if got := rec.TimeWeightedMean("s", 5); got != 0 {
		t.Errorf("degenerate interval mean = %v, want 0", got)
	}
	if got := rec.TimeWeightedMean("s", 15); got != 3 {
		t.Errorf("single-sample mean = %v, want 3", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add("jobs", 2)
	c.Add("jobs", 3)
	c.Add("fails", 1)
	if got := c.Get("jobs"); got != 5 {
		t.Errorf("Get(jobs) = %d, want 5", got)
	}
	if got := c.Get("absent"); got != 0 {
		t.Errorf("Get(absent) = %d, want 0", got)
	}
	if names := c.Names(); len(names) != 2 || names[0] != "fails" {
		t.Errorf("Names = %v", names)
	}
}
