package sim

import (
	"math/rand"
	"testing"
)

// TestKernelStepHonorsHorizon is the regression test for Step firing events
// past the horizon that Run would have cut off: the first pending event past
// the horizon must advance the clock to the horizon, be discarded, and report
// false — exactly like Run's termination.
func TestKernelStepHonorsHorizon(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.At(1, "in", func(*Kernel) { fired++ })
	k.At(5, "out", func(*Kernel) { fired++ })
	k.SetHorizon(3)
	if ok, err := k.Step(); err != nil || !ok {
		t.Fatalf("first Step = (%v,%v), want (true,nil)", ok, err)
	}
	if ok, err := k.Step(); err != nil || ok {
		t.Fatalf("post-horizon Step = (%v,%v), want (false,nil)", ok, err)
	}
	if k.Now() != 3 {
		t.Errorf("Now = %v after horizon cut-off, want 3", k.Now())
	}
	if fired != 1 {
		t.Errorf("fired %d events, want 1 (event past horizon must not fire)", fired)
	}
	if ok, err := k.Step(); err != nil || ok {
		t.Fatalf("exhausted Step = (%v,%v), want (false,nil)", ok, err)
	}
}

// TestEventRefStaleAfterRecycle pins the generation check of the index-based
// refs: a ref to a fired event whose slab slot has been reused by a new event
// must not cancel the new occupant.
func TestEventRefStaleAfterRecycle(t *testing.T) {
	k := NewKernel(1)
	stale := k.At(1, "first", func(*Kernel) {})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	fired := false
	fresh := k.At(2, "second", func(*Kernel) { fired = true })
	if fresh.idx != stale.idx {
		t.Fatalf("free stack did not reuse slot %d (got %d); staleness not exercised", stale.idx, fresh.idx)
	}
	if fresh.gen == stale.gen {
		t.Fatalf("recycled slot kept generation %d", stale.gen)
	}
	stale.Cancel() // must be a no-op on the reused slot
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("stale Cancel killed the slot's new occupant")
	}
}

// TestKernelAfterEachMatchesChainedAfter pins AfterEach's bit-exact
// equivalence to a chain of After calls: same times (accumulated by repeated
// addition), same count, even for a fractional period.
func TestKernelAfterEachMatchesChainedAfter(t *testing.T) {
	const n = 40
	const period = Duration(0.3)
	chained := func() []Time {
		k := NewKernel(1)
		var times []Time
		left := n
		var tick Handler
		tick = func(k *Kernel) {
			times = append(times, k.Now())
			left--
			if left > 0 {
				k.After(period, "tick", tick)
			}
		}
		k.After(period, "tick", tick)
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return times
	}()
	batched := func() []Time {
		k := NewKernel(1)
		var times []Time
		k.AfterEach(period, n, "tick", func(k *Kernel) { times = append(times, k.Now()) })
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return times
	}()
	if len(chained) != len(batched) {
		t.Fatalf("tick counts differ: %d vs %d", len(chained), len(batched))
	}
	for i := range chained {
		if chained[i] != batched[i] {
			t.Fatalf("tick %d: AfterEach time %v != chained After time %v", i, batched[i], chained[i])
		}
	}
}

// TestKernelMatchesReferenceScheduler drives the kernel and a naive
// sorted-scan reference scheduler through the same randomized interleavings
// of At, AtBatch, Cancel, and Step, and requires the identical fire order.
// Cancels deliberately hit refs whose events may already have fired and whose
// slots may have been recycled and reused, so the generation check is under
// test on every interleaving.
func TestKernelMatchesReferenceScheduler(t *testing.T) {
	type modelEvent struct {
		at    Time
		id    int
		dead  bool
		fired bool
	}
	type trackedRef struct {
		ref EventRef
		m   int // index into model
	}
	for seed := int64(1); seed <= 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		k := NewKernel(seed)
		var got []int
		var model []modelEvent // index order == seq order (FIFO tie-break)
		var want []int
		var refs []trackedRef
		nextID := 0
		handler := func(id int) Handler {
			return func(*Kernel) { got = append(got, id) }
		}
		// modelStep fires the earliest live model event (lowest at, then
		// lowest insertion index — the kernel's FIFO contract).
		modelStep := func() bool {
			best := -1
			for i := range model {
				if model[i].fired || model[i].dead {
					continue
				}
				if best == -1 || model[i].at < model[best].at {
					best = i
				}
			}
			if best == -1 {
				return false
			}
			model[best].fired = true
			want = append(want, model[best].id)
			return true
		}
		step := func() {
			ok, err := k.Step()
			if err != nil {
				t.Fatalf("seed %d: Step: %v", seed, err)
			}
			if wantOK := modelStep(); ok != wantOK {
				t.Fatalf("seed %d: Step fired=%v, reference fired=%v", seed, ok, wantOK)
			}
		}
		for op := 0; op < 400; op++ {
			switch c := r.Intn(10); {
			case c < 4: // schedule one, keep the ref
				at := k.Now() + Time(r.Intn(40))
				id := nextID
				nextID++
				ref := k.At(at, "p", handler(id))
				model = append(model, modelEvent{at: at, id: id})
				refs = append(refs, trackedRef{ref: ref, m: len(model) - 1})
			case c < 6: // schedule a batch (no refs, as per the API)
				n := 1 + r.Intn(10)
				batch := make([]BatchEvent, n)
				for i := range batch {
					at := k.Now() + Time(r.Intn(40))
					id := nextID
					nextID++
					batch[i] = BatchEvent{At: at, Name: "b", Fn: handler(id)}
					model = append(model, modelEvent{at: at, id: id})
				}
				k.AtBatch(batch)
			case c < 8: // cancel a random ref, fired or not
				if len(refs) > 0 {
					tr := refs[r.Intn(len(refs))]
					tr.ref.Cancel()
					if m := &model[tr.m]; !m.fired {
						m.dead = true
					}
				}
			default:
				step()
			}
		}
		for pending := true; pending; {
			before := len(want)
			step()
			pending = len(want) > before
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: fire %d: kernel ran id %d, reference id %d", seed, i, got[i], want[i])
			}
		}
	}
}
