package sim

import (
	"testing"
)

// BenchmarkKernelSchedule measures bulk scheduling plus draining: N events
// are pushed at pseudo-random times, then executed in order. This is the
// heap-dominated pattern of trace-driven simulators (all arrivals known up
// front).
func BenchmarkKernelSchedule(b *testing.B) {
	const n = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		at := uint64(0)
		for j := 0; j < n; j++ {
			// xorshift keeps the times pseudo-random without math/rand cost.
			at ^= at << 13
			at ^= at >> 7
			at ^= at << 17
			at += uint64(j) + 1
			k.At(Time(at%100000), "e", nop)
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(0)
	b.ReportMetric(float64(n), "events/op")
}

// BenchmarkKernelChurn measures the self-rescheduling tick pattern of
// event-driven simulators (timers, eval intervals, world ticks): a small set
// of live timers, each firing and rescheduling itself, so the queue stays
// shallow while push/pop churn is constant. This is where event-struct reuse
// matters most.
func BenchmarkKernelChurn(b *testing.B) {
	const ticks = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		for w := 0; w < 8; w++ {
			fired := 0
			var tick Handler
			period := Duration(1 + float64(w)*0.37)
			tick = func(k *Kernel) {
				fired++
				if fired < ticks/8 {
					k.After(period, "tick", tick)
				}
			}
			k.After(period, "tick", tick)
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ticks), "events/op")
}

// BenchmarkKernelCancel measures the cancel-heavy pattern of simulators with
// speculative timers (reservation timeouts, backfill guards): every second
// event is cancelled before it can fire.
func BenchmarkKernelCancel(b *testing.B) {
	const n = 4096
	b.ReportAllocs()
	refs := make([]EventRef, 0, n/2)
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		refs = refs[:0]
		for j := 0; j < n; j++ {
			ref := k.At(Time(j%977), "e", nop)
			if j%2 == 1 {
				refs = append(refs, ref)
			}
		}
		for _, r := range refs {
			r.Cancel()
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "events/op")
}

// BenchmarkKernelScheduleBatch is BenchmarkKernelSchedule through the AtBatch
// path: the same N pseudo-random events enter via one bottom-up heapify
// instead of N sift-ups.
func BenchmarkKernelScheduleBatch(b *testing.B) {
	const n = 4096
	batch := make([]BatchEvent, n)
	at := uint64(0)
	for j := 0; j < n; j++ {
		at ^= at << 13
		at ^= at >> 7
		at ^= at << 17
		at += uint64(j) + 1
		batch[j] = BatchEvent{At: Time(at % 100000), Name: "e", Fn: nop}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		k.AtBatch(batch)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "events/op")
}

// BenchmarkKernelColdStart measures a fresh kernel with no warmup executing a
// small event set — the cost profile of sweep tasks that construct thousands
// of short-lived kernels, where slab growth is part of the bill.
func BenchmarkKernelColdStart(b *testing.B) {
	const n = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		for j := 0; j < n; j++ {
			k.At(Time(j%17), "e", nop)
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "events/op")
}

// nop is the empty handler used by the benchmarks so they measure kernel
// overhead, not handler work.
func nop(*Kernel) {}
