package sched

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"atlarge/internal/cluster"
	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// JobStats records the lifecycle of one completed job.
type JobStats struct {
	JobID       int
	Submit      sim.Time
	Start       sim.Time // first task start
	Finish      sim.Time // last task finish
	Wait        sim.Duration
	Response    sim.Duration
	Slowdown    float64 // bounded slowdown, tau = 10s
	DeadlineMet bool    // true when no deadline or finished in time
}

// Result aggregates one simulation run.
type Result struct {
	Policy string
	// Jobs holds per-job stats for materialized runs; streaming runs
	// (RunSource) aggregate incrementally and leave it nil.
	Jobs            []JobStats
	Completed       int // number of jobs that finished (== len(Jobs) when kept)
	Makespan        sim.Duration
	MeanSlowdown    float64
	MeanResponse    float64
	MeanWait        float64
	UtilizationMean float64
	DeadlineMisses  int
	Horizon         sim.Time
}

// boundedSlowdownTau is the runtime floor for bounded slowdown.
const boundedSlowdownTau = 10

// Simulator executes a trace on an environment under one policy.
type Simulator struct {
	env    *cluster.Environment
	trace  *workload.Trace
	policy Policy
	seed   int64

	k       *sim.Kernel
	queue   []*TaskState
	running map[*TaskState]*cluster.Machine
	ctx     *Context

	pendingDeps map[int]int                    // task ID -> unfinished dep count
	dependents  map[int][]*TaskState           // task ID -> states waiting on it
	jobLeft     map[int]int                    // job ID -> unfinished task count
	jobStart    map[int]sim.Time               // job ID -> first task start
	jobStarted  map[int]bool                   //
	stats       []JobStats                     //
	rec         sim.Recorder                   //
	estFinish   map[*cluster.Machine][]estSlot // for EASY reservations

	// stream is non-nil for RunSource runs: jobs are fed incrementally and
	// per-job state is reclaimed on finish, so memory tracks in-flight jobs
	// rather than stream length.
	stream *streamState

	// Flattened machine list (with the owning cluster per slot), built once
	// per run so placement does not walk the cluster nesting every probe.
	machines     []*cluster.Machine
	machClusters []*cluster.Cluster
	scratch      []*TaskState // reused queue buffer for dispatch

	// queueDirty is set when tasks are appended to the queue; a clean queue
	// under a StaticOrder policy is already sorted (placement removals keep
	// relative order), so the per-cycle sort can be skipped.
	queueDirty bool
	// minWidth is the narrowest CPU request in the queue (a lower bound is
	// enough): when even that cannot be placed the whole cycle is a no-op.
	minWidth int

	dispatchPending bool
}

type estSlot struct {
	at   sim.Time
	cpus int
}

// NewSimulator prepares a run. The trace is not mutated.
func NewSimulator(env *cluster.Environment, tr *workload.Trace, p Policy, seed int64) *Simulator {
	return &Simulator{env: env, trace: tr, policy: p, seed: seed}
}

// initRun prepares the kernel and per-run state shared by Run and RunSource.
func (s *Simulator) initRun() {
	s.k = sim.NewKernel(s.seed)
	s.running = make(map[*TaskState]*cluster.Machine)
	s.pendingDeps = make(map[int]int)
	s.dependents = make(map[int][]*TaskState)
	s.jobLeft = make(map[int]int)
	s.jobStart = make(map[int]sim.Time)
	s.jobStarted = make(map[int]bool)
	s.estFinish = make(map[*cluster.Machine][]estSlot)
	s.ctx = &Context{ServedWork: make(map[int]float64), Rand: s.k.Rand("policy")}
	s.minWidth = math.MaxInt
	s.machines = s.machines[:0]
	s.machClusters = s.machClusters[:0]
	for _, cl := range s.env.Clusters {
		for _, m := range cl.Machines {
			s.machines = append(s.machines, m)
			s.machClusters = append(s.machClusters, cl)
		}
	}
}

// Run executes the simulation to completion and returns the aggregate result.
func (s *Simulator) Run() (*Result, error) {
	s.initRun()

	arrivals := make([]sim.BatchEvent, 0, len(s.trace.Jobs))
	for _, job := range s.trace.Jobs {
		if err := job.ValidateDAG(); err != nil {
			return nil, fmt.Errorf("sched: %w", err)
		}
		job := job
		s.jobLeft[job.ID] = len(job.Tasks)
		arrivals = append(arrivals, sim.BatchEvent{
			At: job.Submit, Name: "job-arrive",
			Fn: func(k *sim.Kernel) { s.onJobArrive(job) },
		})
	}
	s.k.Reserve(len(arrivals))
	s.k.AtBatch(arrivals)
	if err := s.k.Run(); err != nil {
		return nil, fmt.Errorf("sched: run: %w", err)
	}
	return s.buildResult(), nil
}

func (s *Simulator) onJobArrive(job *workload.Job) {
	for i := range job.Tasks {
		t := &job.Tasks[i]
		st := &TaskState{Job: job, Task: t, Ready: s.k.Now()}
		if len(t.Deps) == 0 {
			s.enqueue(st)
		} else {
			s.pendingDeps[t.ID] = len(t.Deps)
			for _, d := range t.Deps {
				s.dependents[d] = append(s.dependents[d], st)
			}
		}
	}
	s.scheduleDispatch()
}

// enqueue appends a ready task and maintains the queue bookkeeping.
func (s *Simulator) enqueue(st *TaskState) {
	s.queue = append(s.queue, st)
	s.queueDirty = true
	if st.Task.CPUs < s.minWidth {
		s.minWidth = st.Task.CPUs
	}
}

// scheduleDispatch coalesces dispatch into a single zero-delay event, so all
// arrivals and completions at the same virtual instant are visible to the
// policy together (a scheduling cycle), and simultaneous submissions can be
// ordered by the policy.
func (s *Simulator) scheduleDispatch() {
	if s.dispatchPending {
		return
	}
	s.dispatchPending = true
	s.k.After(0, "dispatch", func(k *sim.Kernel) {
		s.dispatchPending = false
		s.dispatch()
	})
}

// dispatch orders the queue by policy and greedily places tasks.
func (s *Simulator) dispatch() {
	if len(s.queue) == 0 {
		return
	}
	s.ctx.Now = s.k.Now()
	if s.policy.PureOrder() {
		// Saturation shortcut: when even the narrowest queued request
		// cannot fit anywhere, the cycle places nothing, and a pure
		// ordering can be deferred to the next cycle that matters.
		maxFree := 0
		for _, m := range s.machines {
			if f := m.Free(); f > maxFree {
				maxFree = f
			}
		}
		if maxFree < s.minWidth {
			s.recordUtilization()
			return
		}
	}
	if s.queueDirty || !s.policy.StaticOrder() {
		s.policy.Order(s.ctx, s.queue)
		s.queueDirty = false
	}

	var headReservation sim.Time
	headSeen := false
	remaining := s.scratch[:0]
	blocked := false
	// Within one dispatch cycle free capacity never grows (placements claim
	// cores; the EASY revert below returns exactly what it just claimed), so
	// once a placement for some width fails, every later task at least as
	// wide must fail too. Tracking the narrowest failed width makes probes
	// for a saturated environment O(1) instead of a full machine scan.
	minFailed := math.MaxInt
	for qi, st := range s.queue {
		if blocked {
			remaining = append(remaining, s.queue[qi:]...)
			break
		}
		var m *cluster.Machine
		var cl *cluster.Cluster
		if st.Task.CPUs < minFailed {
			m, cl = s.place(st.Task.CPUs)
		}
		if m == nil {
			if st.Task.CPUs < minFailed {
				minFailed = st.Task.CPUs
			}
			remaining = append(remaining, st)
			if !s.policy.AllowSkip() {
				blocked = true
			}
			if s.policy.EasyReservation() && !headSeen {
				headSeen = true
				headReservation = s.reservationTime(st.Task.CPUs)
			}
			continue
		}
		if s.policy.EasyReservation() && headSeen {
			estFin := s.k.Now() + st.Task.RuntimeEstimate/sim.Duration(m.Speed)
			if estFin > headReservation {
				// Would delay the head's reservation: put it back.
				if err := m.Release(st.Task.CPUs); err != nil {
					panic(err)
				}
				remaining = append(remaining, st)
				continue
			}
		}
		s.start(st, m, cl)
	}
	s.minWidth = math.MaxInt
	for _, st := range remaining {
		if st.Task.CPUs < s.minWidth {
			s.minWidth = st.Task.CPUs
		}
	}
	s.scratch = s.queue // recycle the old backing array next cycle
	s.queue = remaining
	s.recordUtilization()
}

// place finds a machine with cpus free slots, preferring earlier clusters.
func (s *Simulator) place(cpus int) (*cluster.Machine, *cluster.Cluster) {
	for i, m := range s.machines {
		if m.Free() >= cpus {
			if err := m.Claim(cpus); err != nil {
				panic(err)
			}
			return m, s.machClusters[i]
		}
	}
	return nil, nil
}

// reservationTime estimates the earliest time cpus slots free up on any
// machine, from the estimated finishes of running tasks.
func (s *Simulator) reservationTime(cpus int) sim.Time {
	best := sim.Time(math.Inf(1))
	for _, cl := range s.env.Clusters {
		for _, m := range cl.Machines {
			if m.Cores < cpus {
				continue
			}
			slots := s.estFinish[m]
			slices.SortStableFunc(slots, func(a, b estSlot) int { return cmp.Compare(a.at, b.at) })
			free := m.Free()
			if free >= cpus {
				return s.k.Now()
			}
			for _, sl := range slots {
				free += sl.cpus
				if free >= cpus {
					if sl.at < best {
						best = sl.at
					}
					break
				}
			}
		}
	}
	return best
}

func (s *Simulator) start(st *TaskState, m *cluster.Machine, cl *cluster.Cluster) {
	now := s.k.Now()
	st.Started = true
	st.StartAt = now
	runtime := st.Task.Runtime / sim.Duration(m.Speed)
	// Cross-site placement pays the environment's inter-cluster latency once,
	// modeling data movement between sites (grids and geo-distributed
	// datacenters pay more).
	if len(s.env.Clusters) > 1 && cl != s.env.Clusters[0] {
		runtime += s.env.InterLatency
	}
	st.FinishAt = now + runtime
	s.running[st] = m
	est := now + st.Task.RuntimeEstimate/sim.Duration(m.Speed)
	s.estFinish[m] = append(s.estFinish[m], estSlot{at: est, cpus: st.Task.CPUs})
	if !s.jobStarted[st.Job.ID] {
		s.jobStarted[st.Job.ID] = true
		s.jobStart[st.Job.ID] = now
	}
	s.k.At(st.FinishAt, "task-finish", func(k *sim.Kernel) { s.onTaskFinish(st, m) })
}

func (s *Simulator) onTaskFinish(st *TaskState, m *cluster.Machine) {
	if err := m.Release(st.Task.CPUs); err != nil {
		panic(err)
	}
	delete(s.running, st)
	// Drop the estimate slot (first matching).
	slots := s.estFinish[m]
	for i := range slots {
		if slots[i].cpus == st.Task.CPUs {
			s.estFinish[m] = append(slots[:i], slots[i+1:]...)
			break
		}
	}
	s.ctx.ServedWork[st.Job.ID] += float64(st.Task.CPUs) * float64(st.Task.Runtime)

	for _, dep := range s.dependents[st.Task.ID] {
		s.pendingDeps[dep.Task.ID]--
		if s.pendingDeps[dep.Task.ID] == 0 {
			delete(s.pendingDeps, dep.Task.ID)
			dep.Ready = s.k.Now()
			s.enqueue(dep)
		}
	}
	delete(s.dependents, st.Task.ID)

	s.jobLeft[st.Job.ID]--
	if s.jobLeft[st.Job.ID] == 0 {
		s.finishJob(st.Job)
	}
	s.scheduleDispatch()
}

func (s *Simulator) finishJob(job *workload.Job) {
	now := s.k.Now()
	start := s.jobStart[job.ID]
	wait := start - job.Submit
	resp := now - job.Submit
	js := JobStats{
		JobID:       job.ID,
		Submit:      job.Submit,
		Start:       start,
		Finish:      now,
		Wait:        wait,
		Response:    resp,
		DeadlineMet: job.Deadline == 0 || resp <= job.Deadline,
	}
	// Bounded slowdown against the job's ideal time: the critical path is
	// the response time under infinite resources, so any queueing — before
	// the first task or between tasks — counts as slowdown.
	den := float64(job.CriticalPath())
	if den < boundedSlowdownTau {
		den = boundedSlowdownTau
	}
	js.Slowdown = float64(resp) / den
	if js.Slowdown < 1 {
		js.Slowdown = 1
	}
	if st := s.stream; st != nil {
		// Streaming mode: fold the stats into running aggregates and drop
		// every per-job map entry, so finished jobs cost nothing.
		st.accumulate(js)
		delete(s.jobStart, job.ID)
		delete(s.jobStarted, job.ID)
		delete(s.jobLeft, job.ID)
		delete(s.ctx.ServedWork, job.ID)
		return
	}
	s.stats = append(s.stats, js)
}

func (s *Simulator) recordUtilization() {
	if st := s.stream; st != nil {
		st.recordUtil(s.k.Now(), s.env.Utilization())
		return
	}
	s.rec.Record("util", s.k.Now(), s.env.Utilization())
}

func (s *Simulator) buildResult() *Result {
	if st := s.stream; st != nil {
		return st.buildResult(s.policy.Name(), s.k.Now())
	}
	res := &Result{Policy: s.policy.Name(), Jobs: s.stats, Completed: len(s.stats), Horizon: s.k.Now()}
	if len(s.stats) == 0 {
		return res
	}
	var firstSubmit, lastFinish sim.Time
	firstSubmit = s.stats[0].Submit
	var sumSd, sumResp, sumWait float64
	for _, js := range s.stats {
		if js.Submit < firstSubmit {
			firstSubmit = js.Submit
		}
		if js.Finish > lastFinish {
			lastFinish = js.Finish
		}
		sumSd += js.Slowdown
		sumResp += float64(js.Response)
		sumWait += float64(js.Wait)
		if !js.DeadlineMet {
			res.DeadlineMisses++
		}
	}
	n := float64(len(s.stats))
	res.Makespan = lastFinish - firstSubmit
	res.MeanSlowdown = sumSd / n
	res.MeanResponse = sumResp / n
	res.MeanWait = sumWait / n
	res.UtilizationMean = s.rec.TimeWeightedMean("util", s.k.Now())
	return res
}

// RunAll runs the trace under every policy on fresh copies of the
// environment and returns results keyed by policy name. The environment is
// rebuilt per policy via envFactory so runs do not share machine state.
func RunAll(envFactory func() *cluster.Environment, tr *workload.Trace, policies []Policy, seed int64) (map[string]*Result, error) {
	out := make(map[string]*Result, len(policies))
	for _, p := range policies {
		res, err := NewSimulator(envFactory(), cloneTrace(tr), p, seed).Run()
		if err != nil {
			return nil, fmt.Errorf("sched: policy %s: %w", p.Name(), err)
		}
		out[p.Name()] = res
	}
	return out, nil
}

// cloneTrace deep-copies a trace so concurrent or repeated runs cannot share
// task state.
func cloneTrace(tr *workload.Trace) *workload.Trace { return tr.Clone() }
