// Package sched simulates task scheduling on cluster environments. It
// provides the scheduling policies that form the portfolio of the paper's
// portfolio-scheduling experiments (Table 9) and the job-level metrics
// (wait, response, bounded slowdown, makespan, utilization) used throughout
// the evaluation.
package sched

import (
	"math/rand"
	"sort"

	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// TaskState is a task waiting in or dispatched from the scheduler queue.
type TaskState struct {
	Job   *workload.Job
	Task  *workload.Task
	Ready sim.Time // when the task became eligible (deps satisfied)

	// Set when dispatched.
	Started  bool
	StartAt  sim.Time
	FinishAt sim.Time
}

// Context carries the scheduler state that ordering policies may consult.
type Context struct {
	Now sim.Time
	// ServedWork maps job ID to CPU-seconds already completed, for
	// fair-share ordering.
	ServedWork map[int]float64
	// Rand is a deterministic stream for randomized policies.
	Rand *rand.Rand
}

// Policy orders the eligible-task queue and declares its backfill semantics.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Order sorts q in dispatch order (in place).
	Order(ctx *Context, q []*TaskState)
	// AllowSkip reports whether tasks behind a non-fitting task may be
	// dispatched (backfilling). Strict FCFS returns false.
	AllowSkip() bool
	// EasyReservation reports whether skipping is additionally constrained
	// by EASY semantics: a backfilled task must not delay the estimated
	// start of the queue head.
	EasyReservation() bool
}

// basePolicy provides the common AllowSkip/EasyReservation plumbing.
type basePolicy struct {
	name  string
	skip  bool
	easy  bool
	order func(ctx *Context, q []*TaskState)
}

func (p basePolicy) Name() string                       { return p.name }
func (p basePolicy) AllowSkip() bool                    { return p.skip }
func (p basePolicy) EasyReservation() bool              { return p.easy }
func (p basePolicy) Order(ctx *Context, q []*TaskState) { p.order(ctx, q) }

// byReady orders by eligibility time then job then task ID, the FCFS order.
func byReady(_ *Context, q []*TaskState) {
	sort.SliceStable(q, func(i, j int) bool {
		if q[i].Ready != q[j].Ready {
			return q[i].Ready < q[j].Ready
		}
		if q[i].Job.ID != q[j].Job.ID {
			return q[i].Job.ID < q[j].Job.ID
		}
		return q[i].Task.ID < q[j].Task.ID
	})
}

// FCFS is strict first-come-first-served: the queue head blocks everything
// behind it.
func FCFS() Policy { return basePolicy{name: "FCFS", order: byReady} }

// GreedyBackfill is FCFS order with unrestricted skipping: any task that fits
// runs, which maximizes utilization but can starve wide tasks.
func GreedyBackfill() Policy {
	return basePolicy{name: "GreedyBF", skip: true, order: byReady}
}

// EASYBackfill is FCFS with conservative (EASY) backfilling: tasks may jump
// the queue only when their estimated finish does not delay the reservation
// of the queue head.
func EASYBackfill() Policy {
	return basePolicy{name: "EASY-BF", skip: true, easy: true, order: byReady}
}

// SJF dispatches the task with the shortest estimated runtime first
// (shortest-job-first), with skipping.
func SJF() Policy {
	return basePolicy{name: "SJF", skip: true, order: func(_ *Context, q []*TaskState) {
		sort.SliceStable(q, func(i, j int) bool {
			return q[i].Task.RuntimeEstimate < q[j].Task.RuntimeEstimate
		})
	}}
}

// LJF dispatches the task with the longest estimated runtime first, with
// skipping. It approximates reservation-style policies that favor large work.
func LJF() Policy {
	return basePolicy{name: "LJF", skip: true, order: func(_ *Context, q []*TaskState) {
		sort.SliceStable(q, func(i, j int) bool {
			return q[i].Task.RuntimeEstimate > q[j].Task.RuntimeEstimate
		})
	}}
}

// WFP orders by the widest task first (most CPUs), breaking ties by age; it
// approximates the WFP3 class of slowdown-aware policies.
func WFP() Policy {
	return basePolicy{name: "WFP", skip: true, order: func(_ *Context, q []*TaskState) {
		sort.SliceStable(q, func(i, j int) bool {
			if q[i].Task.CPUs != q[j].Task.CPUs {
				return q[i].Task.CPUs > q[j].Task.CPUs
			}
			return q[i].Ready < q[j].Ready
		})
	}}
}

// FairShare favors the job that has consumed the least CPU-seconds so far,
// equalizing service across jobs.
func FairShare() Policy {
	return basePolicy{name: "FairShare", skip: true, order: func(ctx *Context, q []*TaskState) {
		sort.SliceStable(q, func(i, j int) bool {
			wi := ctx.ServedWork[q[i].Job.ID]
			wj := ctx.ServedWork[q[j].Job.ID]
			if wi != wj {
				return wi < wj
			}
			return q[i].Ready < q[j].Ready
		})
	}}
}

// RandomOrder shuffles the queue; the baseline "no intelligence" policy.
func RandomOrder() Policy {
	return basePolicy{name: "Random", skip: true, order: func(ctx *Context, q []*TaskState) {
		ctx.Rand.Shuffle(len(q), func(i, j int) { q[i], q[j] = q[j], q[i] })
	}}
}

// DefaultPortfolio returns the standard policy set used by the portfolio
// scheduler.
func DefaultPortfolio() []Policy {
	return []Policy{FCFS(), GreedyBackfill(), EASYBackfill(), SJF(), LJF(), WFP(), FairShare()}
}
