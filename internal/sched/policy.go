// Package sched simulates task scheduling on cluster environments. It
// provides the scheduling policies that form the portfolio of the paper's
// portfolio-scheduling experiments (Table 9) and the job-level metrics
// (wait, response, bounded slowdown, makespan, utilization) used throughout
// the evaluation.
package sched

import (
	"cmp"
	"math/rand"
	"slices"

	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// TaskState is a task waiting in or dispatched from the scheduler queue.
type TaskState struct {
	Job   *workload.Job
	Task  *workload.Task
	Ready sim.Time // when the task became eligible (deps satisfied)

	// Set when dispatched.
	Started  bool
	StartAt  sim.Time
	FinishAt sim.Time

	// fairKey caches the job's served work for the duration of one
	// FairShare sort, so the comparator does not hit the map O(n log n)
	// times.
	fairKey float64
}

// Context carries the scheduler state that ordering policies may consult.
type Context struct {
	Now sim.Time
	// ServedWork maps job ID to CPU-seconds already completed, for
	// fair-share ordering.
	ServedWork map[int]float64
	// Rand is a deterministic stream for randomized policies.
	Rand *rand.Rand
}

// Policy orders the eligible-task queue and declares its backfill semantics.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Order sorts q in dispatch order (in place).
	Order(ctx *Context, q []*TaskState)
	// AllowSkip reports whether tasks behind a non-fitting task may be
	// dispatched (backfilling). Strict FCFS returns false.
	AllowSkip() bool
	// EasyReservation reports whether skipping is additionally constrained
	// by EASY semantics: a backfilled task must not delay the estimated
	// start of the queue head.
	EasyReservation() bool
	// StaticOrder reports whether Order is a pure sort on per-task keys
	// fixed at enqueue time. The simulator then knows an already-ordered
	// queue stays ordered until new tasks arrive and may skip redundant
	// sorts. Policies whose keys drift over time (fair share) or whose
	// ordering has side effects (random shuffle) must return false.
	StaticOrder() bool
	// PureOrder reports whether Order leaves every externally visible
	// state (RNG streams, context) untouched, so a scheduling cycle that
	// provably places nothing may skip ordering altogether. Only
	// randomized policies, which consume the deterministic policy RNG
	// when they shuffle, must return false.
	PureOrder() bool
}

// basePolicy provides the common AllowSkip/EasyReservation plumbing.
type basePolicy struct {
	name   string
	skip   bool
	easy   bool
	static bool
	random bool // consumes the policy RNG when ordering
	order  func(ctx *Context, q []*TaskState)
}

func (p basePolicy) Name() string                       { return p.name }
func (p basePolicy) AllowSkip() bool                    { return p.skip }
func (p basePolicy) EasyReservation() bool              { return p.easy }
func (p basePolicy) StaticOrder() bool                  { return p.static }
func (p basePolicy) PureOrder() bool                    { return !p.random }
func (p basePolicy) Order(ctx *Context, q []*TaskState) { p.order(ctx, q) }

// byReady orders by eligibility time then job then task ID, the FCFS order.
func byReady(_ *Context, q []*TaskState) {
	slices.SortStableFunc(q, func(a, b *TaskState) int {
		if c := cmp.Compare(a.Ready, b.Ready); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Job.ID, b.Job.ID); c != 0 {
			return c
		}
		return cmp.Compare(a.Task.ID, b.Task.ID)
	})
}

// FCFS is strict first-come-first-served: the queue head blocks everything
// behind it.
func FCFS() Policy { return basePolicy{name: "FCFS", static: true, order: byReady} }

// GreedyBackfill is FCFS order with unrestricted skipping: any task that fits
// runs, which maximizes utilization but can starve wide tasks.
func GreedyBackfill() Policy {
	return basePolicy{name: "GreedyBF", skip: true, static: true, order: byReady}
}

// EASYBackfill is FCFS with conservative (EASY) backfilling: tasks may jump
// the queue only when their estimated finish does not delay the reservation
// of the queue head.
func EASYBackfill() Policy {
	return basePolicy{name: "EASY-BF", skip: true, easy: true, static: true, order: byReady}
}

// SJF dispatches the task with the shortest estimated runtime first
// (shortest-job-first), with skipping.
func SJF() Policy {
	return basePolicy{name: "SJF", skip: true, static: true, order: func(_ *Context, q []*TaskState) {
		slices.SortStableFunc(q, func(a, b *TaskState) int {
			return cmp.Compare(a.Task.RuntimeEstimate, b.Task.RuntimeEstimate)
		})
	}}
}

// LJF dispatches the task with the longest estimated runtime first, with
// skipping. It approximates reservation-style policies that favor large work.
func LJF() Policy {
	return basePolicy{name: "LJF", skip: true, static: true, order: func(_ *Context, q []*TaskState) {
		slices.SortStableFunc(q, func(a, b *TaskState) int {
			return cmp.Compare(b.Task.RuntimeEstimate, a.Task.RuntimeEstimate)
		})
	}}
}

// WFP orders by the widest task first (most CPUs), breaking ties by age; it
// approximates the WFP3 class of slowdown-aware policies.
func WFP() Policy {
	return basePolicy{name: "WFP", skip: true, static: true, order: func(_ *Context, q []*TaskState) {
		slices.SortStableFunc(q, func(a, b *TaskState) int {
			if c := cmp.Compare(b.Task.CPUs, a.Task.CPUs); c != 0 {
				return c
			}
			return cmp.Compare(a.Ready, b.Ready)
		})
	}}
}

// FairShare favors the job that has consumed the least CPU-seconds so far,
// equalizing service across jobs.
func FairShare() Policy {
	return basePolicy{name: "FairShare", skip: true, order: func(ctx *Context, q []*TaskState) {
		for _, st := range q {
			st.fairKey = ctx.ServedWork[st.Job.ID]
		}
		slices.SortStableFunc(q, func(a, b *TaskState) int {
			if c := cmp.Compare(a.fairKey, b.fairKey); c != 0 {
				return c
			}
			return cmp.Compare(a.Ready, b.Ready)
		})
	}}
}

// RandomOrder shuffles the queue; the baseline "no intelligence" policy.
func RandomOrder() Policy {
	return basePolicy{name: "Random", skip: true, random: true, order: func(ctx *Context, q []*TaskState) {
		ctx.Rand.Shuffle(len(q), func(i, j int) { q[i], q[j] = q[j], q[i] })
	}}
}

// DefaultPortfolio returns the standard policy set used by the portfolio
// scheduler.
func DefaultPortfolio() []Policy {
	return []Policy{FCFS(), GreedyBackfill(), EASYBackfill(), SJF(), LJF(), WFP(), FairShare()}
}
