package sched

import (
	"math/rand"
	"testing"

	"atlarge/internal/cluster"
	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// tinyEnv returns a single cluster of one 4-core machine.
func tinyEnv() *cluster.Environment {
	return cluster.NewHomogeneous(cluster.KindCluster, 1, 1, 4)
}

// mkJob builds a single-task job.
func mkJob(id int, submit sim.Time, cpus int, runtime sim.Duration) *workload.Job {
	return &workload.Job{
		ID:     id,
		Submit: submit,
		Tasks: []workload.Task{{
			ID: id*100 + 1, JobID: id, CPUs: cpus,
			Runtime: runtime, RuntimeEstimate: runtime,
		}},
	}
}

func TestFCFSSingleJob(t *testing.T) {
	tr := &workload.Trace{Jobs: []*workload.Job{mkJob(1, 0, 2, 100)}}
	res, err := NewSimulator(tinyEnv(), tr, FCFS(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 {
		t.Fatalf("completed %d jobs, want 1", len(res.Jobs))
	}
	js := res.Jobs[0]
	if js.Wait != 0 || js.Response != 100 || js.Finish != 100 {
		t.Errorf("job stats = %+v", js)
	}
	if res.Makespan != 100 {
		t.Errorf("Makespan = %v, want 100", res.Makespan)
	}
}

func TestFCFSQueuesWhenFull(t *testing.T) {
	// Two 4-core jobs on a 4-core machine: second waits for first.
	tr := &workload.Trace{Jobs: []*workload.Job{
		mkJob(1, 0, 4, 50),
		mkJob(2, 0, 4, 50),
	}}
	res, err := NewSimulator(tinyEnv(), tr, FCFS(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 100 {
		t.Errorf("Makespan = %v, want 100 (serialized)", res.Makespan)
	}
	var second JobStats
	for _, js := range res.Jobs {
		if js.JobID == 2 {
			second = js
		}
	}
	if second.Wait != 50 {
		t.Errorf("second job wait = %v, want 50", second.Wait)
	}
}

func TestStrictFCFSBlocksBackfill(t *testing.T) {
	// Job1 occupies 3 cores for 100s. Job2 needs 4 cores (blocked).
	// Job3 needs 1 core and could run, but strict FCFS must not let it pass
	// job2.
	tr := &workload.Trace{Jobs: []*workload.Job{
		mkJob(1, 0, 3, 100),
		mkJob(2, 1, 4, 10),
		mkJob(3, 2, 1, 10),
	}}
	res, err := NewSimulator(tinyEnv(), tr, FCFS(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]JobStats{}
	for _, js := range res.Jobs {
		byID[js.JobID] = js
	}
	if byID[3].Start < byID[2].Start {
		t.Errorf("strict FCFS let job3 (start %v) pass job2 (start %v)",
			byID[3].Start, byID[2].Start)
	}
}

func TestGreedyBackfillSkipsBlockedHead(t *testing.T) {
	tr := &workload.Trace{Jobs: []*workload.Job{
		mkJob(1, 0, 3, 100),
		mkJob(2, 1, 4, 10),
		mkJob(3, 2, 1, 10),
	}}
	res, err := NewSimulator(tinyEnv(), tr, GreedyBackfill(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]JobStats{}
	for _, js := range res.Jobs {
		byID[js.JobID] = js
	}
	if byID[3].Start >= byID[2].Start {
		t.Errorf("greedy backfill did not let job3 (start %v) pass job2 (start %v)",
			byID[3].Start, byID[2].Start)
	}
	if byID[3].Start != 2 {
		t.Errorf("job3 start = %v, want 2 (immediate backfill)", byID[3].Start)
	}
}

func TestEASYBackfillRespectsReservation(t *testing.T) {
	// Machine: 4 cores. Job1: 3 cores until t=100. Job2 (head): 4 cores.
	// Head reservation is t=100. Job3: 1 core, 200s -> would finish at 202,
	// delaying the head; EASY must hold it. Job4: 1 core, 50s -> fits before
	// the reservation; EASY backfills it.
	tr := &workload.Trace{Jobs: []*workload.Job{
		mkJob(1, 0, 3, 100),
		mkJob(2, 1, 4, 10),
		mkJob(3, 2, 1, 200),
		mkJob(4, 3, 1, 50),
	}}
	res, err := NewSimulator(tinyEnv(), tr, EASYBackfill(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]JobStats{}
	for _, js := range res.Jobs {
		byID[js.JobID] = js
	}
	if byID[4].Start != 3 {
		t.Errorf("job4 start = %v, want 3 (EASY backfill)", byID[4].Start)
	}
	if byID[3].Start < byID[2].Start {
		t.Errorf("job3 (start %v) delayed head job2 (start %v)", byID[3].Start, byID[2].Start)
	}
}

func TestSJFOrdersShortFirst(t *testing.T) {
	// Both submitted together; machine fits one at a time.
	tr := &workload.Trace{Jobs: []*workload.Job{
		mkJob(1, 0, 4, 100),
		mkJob(2, 0, 4, 10),
	}}
	res, err := NewSimulator(tinyEnv(), tr, SJF(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]JobStats{}
	for _, js := range res.Jobs {
		byID[js.JobID] = js
	}
	if byID[2].Start != 0 || byID[1].Start != 10 {
		t.Errorf("SJF starts: job2=%v job1=%v, want 0 and 10", byID[2].Start, byID[1].Start)
	}
}

func TestLJFOrdersLongFirst(t *testing.T) {
	tr := &workload.Trace{Jobs: []*workload.Job{
		mkJob(1, 0, 4, 10),
		mkJob(2, 0, 4, 100),
	}}
	res, err := NewSimulator(tinyEnv(), tr, LJF(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]JobStats{}
	for _, js := range res.Jobs {
		byID[js.JobID] = js
	}
	if byID[2].Start != 0 {
		t.Errorf("LJF did not start long job first: %v", byID[2].Start)
	}
}

func TestWorkflowDependenciesRespected(t *testing.T) {
	job := &workload.Job{
		ID:     1,
		Submit: 0,
		Tasks: []workload.Task{
			{ID: 1, JobID: 1, CPUs: 1, Runtime: 10, RuntimeEstimate: 10},
			{ID: 2, JobID: 1, CPUs: 1, Runtime: 20, RuntimeEstimate: 20, Deps: []int{1}},
			{ID: 3, JobID: 1, CPUs: 1, Runtime: 5, RuntimeEstimate: 5, Deps: []int{1}},
			{ID: 4, JobID: 1, CPUs: 1, Runtime: 1, RuntimeEstimate: 1, Deps: []int{2, 3}},
		},
	}
	tr := &workload.Trace{Jobs: []*workload.Job{job}}
	res, err := NewSimulator(tinyEnv(), tr, FCFS(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Critical path: 10 + 20 + 1 = 31; plenty of cores so response = 31.
	if res.Jobs[0].Response != 31 {
		t.Errorf("workflow response = %v, want 31 (critical path)", res.Jobs[0].Response)
	}
}

func TestDeadlineAccounting(t *testing.T) {
	j1 := mkJob(1, 0, 4, 100)
	j1.Deadline = 150
	j2 := mkJob(2, 0, 4, 100) // must wait 100 -> response 200
	j2.Deadline = 150
	tr := &workload.Trace{Jobs: []*workload.Job{j1, j2}}
	res, err := NewSimulator(tinyEnv(), tr, FCFS(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 1 {
		t.Errorf("DeadlineMisses = %d, want 1", res.DeadlineMisses)
	}
}

func TestUtilizationBounds(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr := workload.StandardGenerator(workload.ClassSynthetic).Generate(50, r)
	env := cluster.NewHomogeneous(cluster.KindCluster, 1, 4, 8)
	res, err := NewSimulator(env, tr, GreedyBackfill(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.UtilizationMean < 0 || res.UtilizationMean > 1 {
		t.Errorf("UtilizationMean = %v out of [0,1]", res.UtilizationMean)
	}
	if len(res.Jobs) != 50 {
		t.Errorf("completed %d jobs, want 50", len(res.Jobs))
	}
}

func TestAllPoliciesCompleteAllJobs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr := workload.StandardGenerator(workload.ClassScientific).Generate(40, r)
	factory := func() *cluster.Environment {
		return cluster.NewHomogeneous(cluster.KindCluster, 1, 8, 8)
	}
	results, err := RunAll(factory, tr, DefaultPortfolio(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("got %d results", len(results))
	}
	for name, res := range results {
		if len(res.Jobs) != 40 {
			t.Errorf("policy %s completed %d/40 jobs", name, len(res.Jobs))
		}
		if res.MeanSlowdown < 1 {
			t.Errorf("policy %s mean slowdown %v < 1", name, res.MeanSlowdown)
		}
	}
}

func TestRunAllDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr := workload.StandardGenerator(workload.ClassSynthetic).Generate(30, r)
	factory := func() *cluster.Environment {
		return cluster.NewHomogeneous(cluster.KindCluster, 1, 2, 8)
	}
	a, err := RunAll(factory, tr, []Policy{RandomOrder()}, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAll(factory, tr, []Policy{RandomOrder()}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a["Random"].MeanResponse != b["Random"].MeanResponse {
		t.Error("Random policy not deterministic for fixed seed")
	}
}

func TestCloneTraceIsolation(t *testing.T) {
	tr := &workload.Trace{Jobs: []*workload.Job{mkJob(1, 0, 1, 10)}}
	cp := cloneTrace(tr)
	cp.Jobs[0].Tasks[0].Runtime = 99
	if tr.Jobs[0].Tasks[0].Runtime != 10 {
		t.Error("cloneTrace shares task storage")
	}
}

func TestInvalidDAGRejected(t *testing.T) {
	job := &workload.Job{ID: 1, Tasks: []workload.Task{{ID: 1, Deps: []int{1}, CPUs: 1, Runtime: 1}}}
	tr := &workload.Trace{Jobs: []*workload.Job{job}}
	if _, err := NewSimulator(tinyEnv(), tr, FCFS(), 1).Run(); err == nil {
		t.Error("cyclic job accepted")
	}
}

func TestFairShareBalancesJobs(t *testing.T) {
	// Job 1: 8 tasks of 10s. Job 2: 8 tasks of 10s, submitted together on a
	// 1x4 machine. FairShare should interleave; both jobs should finish at
	// similar times, unlike FCFS where job 2 finishes strictly last.
	var tasks1, tasks2 []workload.Task
	for i := 0; i < 8; i++ {
		tasks1 = append(tasks1, workload.Task{ID: 100 + i, JobID: 1, CPUs: 1, Runtime: 10, RuntimeEstimate: 10})
		tasks2 = append(tasks2, workload.Task{ID: 200 + i, JobID: 2, CPUs: 1, Runtime: 10, RuntimeEstimate: 10})
	}
	tr := &workload.Trace{Jobs: []*workload.Job{
		{ID: 1, Submit: 0, Tasks: tasks1},
		{ID: 2, Submit: 0, Tasks: tasks2},
	}}
	res, err := NewSimulator(tinyEnv(), tr, FairShare(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]JobStats{}
	for _, js := range res.Jobs {
		byID[js.JobID] = js
	}
	gap := byID[2].Finish - byID[1].Finish
	if gap < 0 {
		gap = -gap
	}
	if gap > 10 {
		t.Errorf("fair-share finish gap = %v, want <= 10 (interleaving)", gap)
	}
}
