package sched

import (
	"fmt"
	"sort"
	"strings"
)

// policyBuilders is the string-keyed catalog of scheduling policies. Keys are
// canonical names; lookup is case-insensitive and ignores dashes, so
// "easy-bf", "EASY-BF", and "easybf" all resolve to the same policy.
var policyBuilders = map[string]func() Policy{
	"fcfs":      FCFS,
	"greedy-bf": GreedyBackfill,
	"easy-bf":   EASYBackfill,
	"sjf":       SJF,
	"ljf":       LJF,
	"wfp":       WFP,
	"fairshare": FairShare,
	"random":    RandomOrder,
}

// normalizePolicyName maps the accepted spellings of a policy name to its
// lookup key: lower-cased with dashes removed.
func normalizePolicyName(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), "-", "")
}

// policyByKey indexes the builders by normalized canonical name and by the
// normalized Policy.Name() each one reports, so both the registry spelling
// ("greedy-bf") and the report spelling ("GreedyBF") resolve.
var policyByKey = func() map[string]func() Policy {
	m := make(map[string]func() Policy, 2*len(policyBuilders))
	for name, build := range policyBuilders {
		m[normalizePolicyName(name)] = build
		m[normalizePolicyName(build().Name())] = build
	}
	return m
}()

// PolicyByName returns a fresh instance of the named scheduling policy. The
// error for an unknown name lists the known catalog.
func PolicyByName(name string) (Policy, error) {
	if build, ok := policyByKey[normalizePolicyName(name)]; ok {
		return build(), nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (known: %s)", name, strings.Join(PolicyNames(), ", "))
}

// PolicyNames returns the canonical policy names in sorted order.
func PolicyNames() []string {
	out := make([]string, 0, len(policyBuilders))
	for name := range policyBuilders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PortfolioByNames builds a policy set from canonical names; it is the
// name-driven counterpart of DefaultPortfolio.
func PortfolioByNames(names []string) ([]Policy, error) {
	out := make([]Policy, len(names))
	for i, name := range names {
		p, err := PolicyByName(name)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}
