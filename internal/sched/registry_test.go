package sched

import (
	"strings"
	"testing"
)

func TestPolicyByNameCanonical(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p == nil {
			t.Fatalf("PolicyByName(%q) = nil policy", name)
		}
	}
}

func TestPolicyByNameSpellings(t *testing.T) {
	cases := []struct {
		in   string
		want string // Policy.Name()
	}{
		{"fcfs", "FCFS"},
		{"FCFS", "FCFS"},
		{"sjf", "SJF"},
		{"easy-bf", "EASY-BF"},
		{"EASYBF", "EASY-BF"},
		{"greedy-bf", "GreedyBF"},
		{"GreedyBF", "GreedyBF"},
		{"FairShare", "FairShare"},
		{"random", "Random"},
	}
	for _, c := range cases {
		p, err := PolicyByName(c.in)
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", c.in, err)
			continue
		}
		if p.Name() != c.want {
			t.Errorf("PolicyByName(%q).Name() = %q, want %q", c.in, p.Name(), c.want)
		}
	}
}

func TestPolicyByNameUnknown(t *testing.T) {
	_, err := PolicyByName("heft")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if !strings.Contains(err.Error(), "known:") || !strings.Contains(err.Error(), "sjf") {
		t.Errorf("error does not list the catalog: %v", err)
	}
}

// TestPolicyByNameFreshInstances pins that repeated lookups return
// independent policies (required for concurrent simulations).
func TestPolicyByNameFreshInstances(t *testing.T) {
	a, _ := PolicyByName("fcfs")
	b, _ := PolicyByName("fcfs")
	if &a == &b {
		t.Fatal("PolicyByName returned the same instance twice")
	}
}

// TestPolicyNamesCoverPortfolio pins that every DefaultPortfolio member is
// reachable by name, so name-driven specs can reference the full set.
func TestPolicyNamesCoverPortfolio(t *testing.T) {
	for _, p := range DefaultPortfolio() {
		got, err := PolicyByName(p.Name())
		if err != nil {
			t.Errorf("portfolio policy %q not resolvable by name: %v", p.Name(), err)
			continue
		}
		if got.Name() != p.Name() {
			t.Errorf("lookup of %q returned %q", p.Name(), got.Name())
		}
	}
}

func TestPortfolioByNames(t *testing.T) {
	ps, err := PortfolioByNames([]string{"sjf", "fcfs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name() != "SJF" || ps[1].Name() != "FCFS" {
		t.Errorf("PortfolioByNames = %v", ps)
	}
	if _, err := PortfolioByNames([]string{"sjf", "nope"}); err == nil {
		t.Error("unknown portfolio member accepted")
	}
}
