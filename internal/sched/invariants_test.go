package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atlarge/internal/cluster"
	"atlarge/internal/workload"
)

// TestSimulatorInvariantsProperty checks, over random workloads and
// policies, the conservation and causality invariants of the scheduling
// simulator:
//
//  1. every job completes exactly once;
//  2. response time >= the job's critical path (no time travel);
//  3. wait >= 0 and start >= submit;
//  4. all machines are fully released at the end.
func TestSimulatorInvariantsProperty(t *testing.T) {
	policies := DefaultPortfolio()
	classes := []workload.Class{
		workload.ClassSynthetic, workload.ClassScientific, workload.ClassBigData,
	}
	f := func(seed int64, policyIdx, classIdx uint8) bool {
		policy := policies[int(policyIdx)%len(policies)]
		class := classes[int(classIdx)%len(classes)]
		r := rand.New(rand.NewSource(seed))
		tr := workload.StandardGenerator(class).Generate(15, r)
		env := cluster.NewHomogeneous(cluster.KindCluster, 1, 4, 8)
		res, err := NewSimulator(env, tr, policy, seed).Run()
		if err != nil {
			return false
		}
		if len(res.Jobs) != len(tr.Jobs) {
			return false
		}
		seen := map[int]bool{}
		byID := map[int]*workload.Job{}
		for _, j := range tr.Jobs {
			byID[j.ID] = j
		}
		for _, js := range res.Jobs {
			if seen[js.JobID] {
				return false // double completion
			}
			seen[js.JobID] = true
			if js.Wait < 0 || js.Start < js.Submit || js.Finish < js.Start {
				return false
			}
			cp := byID[js.JobID].CriticalPath()
			if float64(js.Response) < float64(cp)-1e-9 {
				return false // finished faster than physically possible
			}
		}
		return env.FreeCores() == env.TotalCores()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSlowdownAtLeastOneProperty checks the bounded-slowdown floor.
func TestSlowdownAtLeastOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := workload.StandardGenerator(workload.ClassGaming).Generate(10, r)
		env := cluster.NewHomogeneous(cluster.KindCluster, 1, 2, 4)
		res, err := NewSimulator(env, tr, GreedyBackfill(), seed).Run()
		if err != nil {
			return false
		}
		for _, js := range res.Jobs {
			if js.Slowdown < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMoreCoresNeverHurtMakespan is a sanity monotonicity check: doubling
// the machine count must not increase makespan under greedy backfill (a
// work-conserving policy on independent tasks).
func TestMoreCoresNeverHurtMakespan(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := workload.StandardGenerator(workload.ClassSynthetic)
	tr := g.Generate(40, r)
	small := cluster.NewHomogeneous(cluster.KindCluster, 1, 2, 8)
	big := cluster.NewHomogeneous(cluster.KindCluster, 1, 4, 8)
	resSmall, err := NewSimulator(small, tr, GreedyBackfill(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	resBig, err := NewSimulator(big, tr, GreedyBackfill(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if resBig.Makespan > resSmall.Makespan+1e-9 {
		t.Errorf("doubling cores increased makespan: %v -> %v", resSmall.Makespan, resBig.Makespan)
	}
}
