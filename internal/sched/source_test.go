package sched

import (
	"math/rand"
	"testing"

	"atlarge/internal/cluster"
	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// TestRunSourceMatchesRun pins that streaming execution is event-for-event
// the run Run performs on the materialized trace: every aggregate metric must
// be bit-identical, for several policies and workload classes.
func TestRunSourceMatchesRun(t *testing.T) {
	cases := []struct {
		class  workload.Class
		policy func() Policy
	}{
		{workload.ClassSynthetic, FCFS},
		{workload.ClassScientific, GreedyBackfill},
		{workload.ClassGaming, SJF},
		{workload.ClassIndustrial, EASYBackfill},
	}
	for _, tc := range cases {
		t.Run(tc.class.String()+"/"+tc.policy().Name(), func(t *testing.T) {
			tr := workload.StandardGenerator(tc.class).Generate(300, rand.New(rand.NewSource(5)))
			env1 := cluster.NewHomogeneous(cluster.KindCluster, 1, 4, 8)
			want, err := NewSimulator(env1, tr.Clone(), tc.policy(), 1).Run()
			if err != nil {
				t.Fatal(err)
			}
			env2 := cluster.NewHomogeneous(cluster.KindCluster, 1, 4, 8)
			src := tr.Clone().Source()
			got, err := NewSimulator(env2, nil, tc.policy(), 1).RunSource(src)
			if err != nil {
				t.Fatal(err)
			}
			if got.Jobs != nil {
				t.Error("streaming result should not materialize per-job stats")
			}
			if got.Completed != want.Completed || got.Completed != 300 {
				t.Errorf("Completed = %d, want %d", got.Completed, want.Completed)
			}
			if got.Makespan != want.Makespan {
				t.Errorf("Makespan = %v, want %v", got.Makespan, want.Makespan)
			}
			if got.MeanSlowdown != want.MeanSlowdown {
				t.Errorf("MeanSlowdown = %v, want %v", got.MeanSlowdown, want.MeanSlowdown)
			}
			if got.MeanResponse != want.MeanResponse {
				t.Errorf("MeanResponse = %v, want %v", got.MeanResponse, want.MeanResponse)
			}
			if got.MeanWait != want.MeanWait {
				t.Errorf("MeanWait = %v, want %v", got.MeanWait, want.MeanWait)
			}
			if got.UtilizationMean != want.UtilizationMean {
				t.Errorf("UtilizationMean = %v, want %v", got.UtilizationMean, want.UtilizationMean)
			}
			if got.DeadlineMisses != want.DeadlineMisses {
				t.Errorf("DeadlineMisses = %d, want %d", got.DeadlineMisses, want.DeadlineMisses)
			}
			if got.Horizon != want.Horizon {
				t.Errorf("Horizon = %v, want %v", got.Horizon, want.Horizon)
			}
		})
	}
}

// TestRunSourceBoundedMemory streams 10^5 jobs from a million-scale style
// population through the simulator and checks that per-job state is fully
// reclaimed: after the run, every job-keyed map must be empty — memory was
// proportional to in-flight jobs, not stream length.
func TestRunSourceBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("streams 1e5 jobs")
	}
	const jobs = 100000
	pop := &workload.Population{
		Clients: 10000,
		Mix:     workload.SingleClass(workload.ClassGaming),
		Skew:    workload.Skew{Kind: "zipf"},
		// Aggregate ~20 jobs/s keeps the simulated span short while leaving
		// queueing dynamics intact.
		RateScale: 100.0 / 10000,
		Seed:      17,
		Shards:    4,
	}
	src, err := pop.Source()
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	env := cluster.NewHomogeneous(cluster.KindCluster, 2, 32, 16)
	s := NewSimulator(env, nil, GreedyBackfill(), 1)
	res, err := s.RunSource(workload.Take(src, jobs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != jobs {
		t.Fatalf("Completed = %d, want %d", res.Completed, jobs)
	}
	if res.Jobs != nil {
		t.Error("streaming run materialized per-job stats")
	}
	for name, n := range map[string]int{
		"jobLeft":     len(s.jobLeft),
		"jobStart":    len(s.jobStart),
		"jobStarted":  len(s.jobStarted),
		"pendingDeps": len(s.pendingDeps),
		"dependents":  len(s.dependents),
		"ServedWork":  len(s.ctx.ServedWork),
		"running":     len(s.running),
	} {
		if n != 0 {
			t.Errorf("%s retains %d entries after streaming run", name, n)
		}
	}
	if res.UtilizationMean <= 0 || res.UtilizationMean > 1 {
		t.Errorf("UtilizationMean = %v out of (0,1]", res.UtilizationMean)
	}
}

// errSource emits a fixed list of jobs, for protocol-violation tests.
type listSource struct {
	jobs []*workload.Job
	i    int
}

func (s *listSource) Next() *workload.Job {
	if s.i >= len(s.jobs) {
		return nil
	}
	j := s.jobs[s.i]
	s.i++
	return j
}

func (s *listSource) Name() string { return "list" }
func (s *listSource) Close()       {}

func TestRunSourceRejectsOutOfOrder(t *testing.T) {
	src := &listSource{jobs: []*workload.Job{
		mkJob(1, 100, 1, 10),
		mkJob(2, 50, 1, 10),
	}}
	env := cluster.NewHomogeneous(cluster.KindCluster, 1, 1, 4)
	_, err := NewSimulator(env, nil, FCFS(), 1).RunSource(src)
	if err == nil {
		t.Fatal("out-of-order stream accepted")
	}
}

func TestRunSourceRejectsInvalidDAG(t *testing.T) {
	bad := mkJob(1, 0, 1, 10)
	bad.Tasks[0].Deps = []int{999}
	env := cluster.NewHomogeneous(cluster.KindCluster, 1, 1, 4)
	_, err := NewSimulator(env, nil, FCFS(), 1).RunSource(&listSource{jobs: []*workload.Job{bad}})
	if err == nil {
		t.Fatal("invalid DAG accepted")
	}
}

// TestRunSourceEmpty checks the zero-job stream produces a sane empty result.
func TestRunSourceEmpty(t *testing.T) {
	env := cluster.NewHomogeneous(cluster.KindCluster, 1, 1, 4)
	res, err := NewSimulator(env, nil, FCFS(), 1).RunSource(&listSource{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 || res.Makespan != 0 {
		t.Errorf("empty stream: %+v", res)
	}
}

// TestRunSourceChunking forces multiple feed chunks (> feedBatch jobs with
// same-instant bursts straddling the boundary) and checks completion.
func TestRunSourceChunking(t *testing.T) {
	var jobs []*workload.Job
	id := 0
	// 600 jobs in bursts of 5 sharing each submit instant.
	for burst := 0; burst < 120; burst++ {
		for k := 0; k < 5; k++ {
			id++
			jobs = append(jobs, mkJob(id, sim.Time(burst), 1, 2))
		}
	}
	env := cluster.NewHomogeneous(cluster.KindCluster, 1, 4, 8)
	res, err := NewSimulator(env, nil, FCFS(), 1).RunSource(&listSource{jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(jobs) {
		t.Errorf("Completed = %d, want %d", res.Completed, len(jobs))
	}
}
