package sched

import (
	"fmt"

	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// feedBatch is how many jobs each feed event schedules ahead of the
// simulation clock. Chunks always end on a submit-instant boundary so a
// dispatch cycle never sees a partial view of simultaneous arrivals.
const feedBatch = 256

// streamState carries everything a streaming run keeps instead of O(jobs)
// slices and maps: the source cursor, the reusable feed buffer, and scalar
// aggregates equivalent to what buildResult derives from []JobStats.
type streamState struct {
	src   workload.JobSource
	carry *workload.Job // first job of the next chunk (already cloned)
	batch []sim.BatchEvent
	last  sim.Time // newest submit fed so far (monotonicity guard)
	err   error

	count       int
	sumSd       float64
	sumResp     float64
	sumWait     float64
	misses      int
	firstSet    bool
	firstSubmit sim.Time
	lastFinish  sim.Time

	// Incremental form of Recorder.TimeWeightedMean over the util series:
	// samples are piecewise-constant from utilAt, integrated since utilT0.
	utilInit bool
	utilT0   sim.Time
	utilAt   sim.Time
	utilV    float64
	utilArea float64
}

func (st *streamState) accumulate(js JobStats) {
	st.count++
	st.sumSd += js.Slowdown
	st.sumResp += float64(js.Response)
	st.sumWait += float64(js.Wait)
	if !js.DeadlineMet {
		st.misses++
	}
	if !st.firstSet || js.Submit < st.firstSubmit {
		st.firstSet = true
		st.firstSubmit = js.Submit
	}
	if js.Finish > st.lastFinish {
		st.lastFinish = js.Finish
	}
}

func (st *streamState) recordUtil(now sim.Time, v float64) {
	if !st.utilInit {
		st.utilInit = true
		st.utilT0, st.utilAt, st.utilV = now, now, v
		return
	}
	st.utilArea += st.utilV * float64(now-st.utilAt)
	st.utilAt, st.utilV = now, v
}

func (st *streamState) buildResult(policy string, horizon sim.Time) *Result {
	res := &Result{Policy: policy, Completed: st.count, Horizon: horizon}
	if st.count == 0 {
		return res
	}
	n := float64(st.count)
	res.Makespan = st.lastFinish - st.firstSubmit
	res.MeanSlowdown = st.sumSd / n
	res.MeanResponse = st.sumResp / n
	res.MeanWait = st.sumWait / n
	res.DeadlineMisses = st.misses
	if st.utilInit && horizon > st.utilT0 {
		res.UtilizationMean = (st.utilArea + st.utilV*float64(horizon-st.utilAt)) / float64(horizon-st.utilT0)
	}
	return res
}

// RunSource executes the simulation against a pull-based job stream instead
// of a materialized trace: arrivals are fed in feedBatch chunks, per-job
// state is reclaimed as jobs finish, and stats are aggregated incrementally,
// so resident memory is proportional to in-flight jobs — independent of how
// many jobs the source emits. The source must emit jobs in non-decreasing
// Submit order (the JobSource contract); RunSource does not Close it.
//
// For a valid submit-ordered stream the simulation is event-for-event the
// run Run would execute on the materialized equivalent.
func (s *Simulator) RunSource(src workload.JobSource) (*Result, error) {
	s.stream = &streamState{src: src}
	s.initRun()
	s.feed()
	if s.stream.err != nil {
		return nil, s.stream.err
	}
	if err := s.k.Run(); err != nil {
		return nil, fmt.Errorf("sched: run: %w", err)
	}
	if s.stream.err != nil {
		return nil, s.stream.err
	}
	return s.buildResult(), nil
}

// feed pulls the next chunk of jobs, schedules their arrivals, and — if the
// stream continues — schedules itself at the chunk's final submit instant.
// A chunk only ends once the next job's submit time strictly advances, so
// all arrivals sharing an instant land in one batch; the feed event then
// fires after those arrivals but before their dispatch cycle (its sequence
// number predates the dispatch event's), keeping the event order identical
// to a fully materialized run.
func (s *Simulator) feed() {
	st := s.stream
	buf := st.batch[:0]
	j := st.carry
	st.carry = nil
	if j == nil {
		j = s.pullClone()
	}
	for j != nil {
		if j.Submit < st.last {
			st.err = fmt.Errorf("sched: job source emitted submit %v after %v (must be non-decreasing)", j.Submit, st.last)
			s.k.Stop()
			return
		}
		if err := j.ValidateDAG(); err != nil {
			st.err = fmt.Errorf("sched: %w", err)
			s.k.Stop()
			return
		}
		if len(buf) >= feedBatch && j.Submit > st.last {
			st.carry = j
			break
		}
		st.last = j.Submit
		job := j
		s.jobLeft[job.ID] = len(job.Tasks)
		buf = append(buf, sim.BatchEvent{
			At: job.Submit, Name: "job-arrive",
			Fn: func(k *sim.Kernel) { s.onJobArrive(job) },
		})
		j = s.pullClone()
	}
	st.batch = buf // keep the backing array for the next chunk
	if len(buf) == 0 {
		return
	}
	s.k.AtBatch(buf)
	if st.carry != nil {
		s.k.At(st.last, "feed", func(k *sim.Kernel) { s.feed() })
	}
}

// pullClone takes the next job from the source and clones it out of the
// source's scratch storage, since the simulator holds jobs until they
// finish.
func (s *Simulator) pullClone() *workload.Job {
	j := s.stream.src.Next()
	if j == nil {
		return nil
	}
	return j.Clone()
}
