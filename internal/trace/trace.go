// Package trace implements the archive formats the paper's dissemination
// principle calls for (§3.6, FAIR/FOAD): a GWA-style job-trace codec for
// datacenter workloads, the Peer-to-Peer Trace Archive format for download
// records, and the Game Trace Archive format for match records. All formats
// are line-oriented CSV with a header, plus JSON codecs for tool interchange.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// jobHeader is the GWA-like column set.
var jobHeader = []string{
	"job_id", "submit_s", "task_id", "cpus", "runtime_s", "estimate_s", "deps", "class", "deadline_s",
}

// WriteJobs encodes a workload trace as GWA-style CSV, one row per task.
func WriteJobs(w io.Writer, tr *workload.Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(jobHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, j := range tr.Jobs {
		for _, t := range j.Tasks {
			deps := make([]string, len(t.Deps))
			for i, d := range t.Deps {
				deps[i] = strconv.Itoa(d)
			}
			row := []string{
				strconv.Itoa(j.ID),
				formatF(float64(j.Submit)),
				strconv.Itoa(t.ID),
				strconv.Itoa(t.CPUs),
				formatF(float64(t.Runtime)),
				formatF(float64(t.RuntimeEstimate)),
				strings.Join(deps, ";"),
				strconv.Itoa(int(j.Class)),
				formatF(float64(j.Deadline)),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJobs decodes a GWA-style CSV back into a workload trace.
func ReadJobs(r io.Reader) (*workload.Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty input")
	}
	if got := strings.Join(rows[0], ","); got != strings.Join(jobHeader, ",") {
		return nil, fmt.Errorf("trace: unexpected header %q", got)
	}
	jobs := map[int]*workload.Job{}
	var order []int
	for ln, row := range rows[1:] {
		if len(row) != len(jobHeader) {
			return nil, fmt.Errorf("trace: line %d has %d fields, want %d", ln+2, len(row), len(jobHeader))
		}
		jobID, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d job_id: %w", ln+2, err)
		}
		submit, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d submit: %w", ln+2, err)
		}
		taskID, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d task_id: %w", ln+2, err)
		}
		cpus, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d cpus: %w", ln+2, err)
		}
		runtime, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d runtime: %w", ln+2, err)
		}
		estimate, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d estimate: %w", ln+2, err)
		}
		var deps []int
		if row[6] != "" {
			for _, d := range strings.Split(row[6], ";") {
				dv, err := strconv.Atoi(d)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d deps: %w", ln+2, err)
				}
				deps = append(deps, dv)
			}
		}
		class, err := strconv.Atoi(row[7])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d class: %w", ln+2, err)
		}
		deadline, err := strconv.ParseFloat(row[8], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d deadline: %w", ln+2, err)
		}
		job, ok := jobs[jobID]
		if !ok {
			job = &workload.Job{
				ID:       jobID,
				Submit:   sim.Time(submit),
				Class:    workload.Class(class),
				Deadline: sim.Duration(deadline),
			}
			jobs[jobID] = job
			order = append(order, jobID)
		}
		job.Tasks = append(job.Tasks, workload.Task{
			ID:              taskID,
			JobID:           jobID,
			CPUs:            cpus,
			Runtime:         sim.Duration(runtime),
			RuntimeEstimate: sim.Duration(estimate),
			Deps:            deps,
		})
	}
	tr := &workload.Trace{Name: "decoded"}
	for _, id := range order {
		tr.Jobs = append(tr.Jobs, jobs[id])
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return tr, nil
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// P2PRecord is one row of the Peer-to-Peer Trace Archive.
type P2PRecord struct {
	PeerID   int     `json:"peer_id"`
	Class    string  `json:"class"`
	JoinS    float64 `json:"join_s"`
	DoneS    float64 `json:"done_s"`
	Duration float64 `json:"duration_s"`
	Group    int     `json:"group,omitempty"`
}

// WriteP2P encodes records as JSON lines.
func WriteP2P(w io.Writer, recs []P2PRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("trace: p2p encode: %w", err)
		}
	}
	return nil
}

// ReadP2P decodes JSON-lines records.
func ReadP2P(r io.Reader) ([]P2PRecord, error) {
	dec := json.NewDecoder(r)
	var out []P2PRecord
	for {
		var rec P2PRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: p2p decode: %w", err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// GameRecord is one row of the Game Trace Archive (one match).
type GameRecord struct {
	MatchID     int     `json:"match_id"`
	StartH      float64 `json:"start_h"`
	Players     []int   `json:"players"`
	Winner      int     `json:"winner"`
	DurationMin float64 `json:"duration_min"`
}

// WriteGames encodes match records as JSON lines.
func WriteGames(w io.Writer, recs []GameRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("trace: game encode: %w", err)
		}
	}
	return nil
}

// ReadGames decodes JSON-lines match records.
func ReadGames(r io.Reader) ([]GameRecord, error) {
	dec := json.NewDecoder(r)
	var out []GameRecord
	for {
		var rec GameRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: game decode: %w", err)
		}
		out = append(out, rec)
	}
	return out, nil
}
