package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"atlarge/internal/workload"
)

func TestJobRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	orig := workload.StandardGenerator(workload.ClassScientific).Generate(20, r)
	var buf bytes.Buffer
	if err := WriteJobs(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(orig.Jobs) {
		t.Fatalf("jobs = %d, want %d", len(got.Jobs), len(orig.Jobs))
	}
	for i, j := range orig.Jobs {
		g := got.Jobs[i]
		if g.ID != j.ID || g.Submit != j.Submit || g.Class != j.Class || g.Deadline != j.Deadline {
			t.Fatalf("job %d header mismatch: %+v vs %+v", i, g, j)
		}
		if len(g.Tasks) != len(j.Tasks) {
			t.Fatalf("job %d tasks = %d, want %d", i, len(g.Tasks), len(j.Tasks))
		}
		for k, task := range j.Tasks {
			gt := g.Tasks[k]
			if gt.ID != task.ID || gt.CPUs != task.CPUs || gt.Runtime != task.Runtime ||
				gt.RuntimeEstimate != task.RuntimeEstimate || len(gt.Deps) != len(task.Deps) {
				t.Fatalf("job %d task %d mismatch: %+v vs %+v", i, k, gt, task)
			}
		}
	}
}

func TestReadJobsErrors(t *testing.T) {
	if _, err := ReadJobs(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadJobs(strings.NewReader("bogus,header\n")); err == nil {
		t.Error("bad header accepted")
	}
	bad := "job_id,submit_s,task_id,cpus,runtime_s,estimate_s,deps,class,deadline_s\nx,0,1,1,1,1,,1,0\n"
	if _, err := ReadJobs(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric job id accepted")
	}
	cyclic := "job_id,submit_s,task_id,cpus,runtime_s,estimate_s,deps,class,deadline_s\n1,0,1,1,1,1,1,1,0\n"
	if _, err := ReadJobs(strings.NewReader(cyclic)); err == nil {
		t.Error("self-dependent task accepted")
	}
}

func TestP2PRoundTrip(t *testing.T) {
	recs := []P2PRecord{
		{PeerID: 1, Class: "adsl", JoinS: 0, DoneS: 100, Duration: 100},
		{PeerID: 2, Class: "cable", JoinS: 5, DoneS: 80, Duration: 75, Group: 3},
	}
	var buf bytes.Buffer
	if err := WriteP2P(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadP2P(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Group != 3 || got[0].Class != "adsl" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := ReadP2P(strings.NewReader("{broken")); err == nil {
		t.Error("broken json accepted")
	}
}

func TestGameRoundTrip(t *testing.T) {
	recs := []GameRecord{
		{MatchID: 1, StartH: 0.5, Players: []int{1, 2, 3, 4}, Winner: 1, DurationMin: 30},
	}
	var buf bytes.Buffer
	if err := WriteGames(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGames(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Players) != 4 || got[0].Winner != 1 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := ReadGames(strings.NewReader("not json")); err == nil {
		t.Error("broken json accepted")
	}
}
