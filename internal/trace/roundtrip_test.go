package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// randomTrace builds a random but valid workload trace: random job widths,
// classes, deadlines, fractional times, and backward-only dependencies (so
// the DAG check always passes). Jobs always have at least one task, since a
// task-less job has no rows in the GWA format and cannot round-trip.
func randomTrace(r *rand.Rand) *workload.Trace {
	classes := []workload.Class{
		workload.ClassSynthetic, workload.ClassScientific, workload.ClassComputerEngineering,
		workload.ClassBusinessCritical, workload.ClassBigData, workload.ClassGaming,
		workload.ClassIndustrial,
	}
	tr := &workload.Trace{Name: "random"}
	taskID := 0
	submit := sim.Time(0)
	for j := 0; j < 1+r.Intn(20); j++ {
		submit += sim.Duration(r.Float64() * 500)
		job := &workload.Job{
			ID:     j + 1,
			Submit: submit,
			Class:  classes[r.Intn(len(classes))],
		}
		if r.Float64() < 0.5 {
			job.Deadline = sim.Duration(r.Float64() * 10000)
		}
		width := 1 + r.Intn(8)
		first := taskID + 1
		for w := 0; w < width; w++ {
			taskID++
			task := workload.Task{
				ID:              taskID,
				JobID:           job.ID,
				CPUs:            1 + r.Intn(16),
				Runtime:         sim.Duration(r.Float64() * 3600),
				RuntimeEstimate: sim.Duration(r.Float64() * 7200),
			}
			// Depend only on earlier tasks of the same job: valid and acyclic.
			for d := first; d < taskID; d++ {
				if r.Float64() < 0.3 {
					task.Deps = append(task.Deps, d)
				}
			}
			job.Tasks = append(job.Tasks, task)
		}
		tr.Jobs = append(tr.Jobs, job)
	}
	return tr
}

// TestJobsRoundTripProperty is a property test: WriteJobs → ReadJobs preserves every
// job and task field for arbitrary valid traces.
func TestJobsRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			orig := randomTrace(rand.New(rand.NewSource(seed)))
			var buf bytes.Buffer
			if err := WriteJobs(&buf, orig); err != nil {
				t.Fatalf("write: %v", err)
			}
			got, err := ReadJobs(&buf)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if len(got.Jobs) != len(orig.Jobs) {
				t.Fatalf("got %d jobs, want %d", len(got.Jobs), len(orig.Jobs))
			}
			// Trace.Name is not part of the GWA format; compare the jobs.
			if !reflect.DeepEqual(got.Jobs, orig.Jobs) {
				for i := range orig.Jobs {
					if !reflect.DeepEqual(got.Jobs[i], orig.Jobs[i]) {
						t.Fatalf("job %d differs:\n got %+v\nwant %+v", i, got.Jobs[i], orig.Jobs[i])
					}
				}
				t.Fatal("traces differ")
			}
		})
	}
}

// TestP2PRoundTripProperty: WriteP2P → ReadP2P preserves every record field.
func TestP2PRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		var recs []P2PRecord
		for i := 0; i < r.Intn(40); i++ {
			rec := P2PRecord{
				PeerID:   i + 1,
				Class:    []string{"seeder", "leecher", "freerider"}[r.Intn(3)],
				JoinS:    r.Float64() * 1e5,
				DoneS:    r.Float64() * 1e5,
				Duration: r.Float64() * 1e4,
			}
			if r.Float64() < 0.5 {
				rec.Group = 1 + r.Intn(5)
			}
			recs = append(recs, rec)
		}
		var buf bytes.Buffer
		if err := WriteP2P(&buf, recs); err != nil {
			t.Fatalf("seed %d write: %v", seed, err)
		}
		got, err := ReadP2P(&buf)
		if err != nil {
			t.Fatalf("seed %d read: %v", seed, err)
		}
		if len(recs) == 0 {
			if len(got) != 0 {
				t.Fatalf("seed %d: empty input decoded to %d records", seed, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("seed %d: records differ:\n got %+v\nwant %+v", seed, got, recs)
		}
	}
}

// TestGamesRoundTripProperty: WriteGames → ReadGames preserves every record field.
func TestGamesRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		var recs []GameRecord
		for i := 0; i < 1+r.Intn(30); i++ {
			players := make([]int, 1+r.Intn(10))
			for p := range players {
				players[p] = 100 + r.Intn(900)
			}
			recs = append(recs, GameRecord{
				MatchID:     i + 1,
				StartH:      r.Float64() * 24,
				Players:     players,
				Winner:      players[r.Intn(len(players))],
				DurationMin: r.Float64() * 120,
			})
		}
		var buf bytes.Buffer
		if err := WriteGames(&buf, recs); err != nil {
			t.Fatalf("seed %d write: %v", seed, err)
		}
		got, err := ReadGames(&buf)
		if err != nil {
			t.Fatalf("seed %d read: %v", seed, err)
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("seed %d: records differ:\n got %+v\nwant %+v", seed, got, recs)
		}
	}
}
