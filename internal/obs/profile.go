// Profile reporting: merge per-kernel aggregates across a run and render
// them as typed report tables.
package obs

import (
	"sort"

	"atlarge"
	"atlarge/internal/sim"
)

// MergeProfiles folds the per-kernel profiles of the sections into one set
// of per-event-name rows, sorted by name.
func MergeProfiles(secs []KernelSection) []sim.ProfileRow {
	agg := map[string]*sim.EventStats{}
	for _, sec := range secs {
		for _, r := range sec.Profile.Rows() {
			s, ok := agg[r.Name]
			if !ok {
				s = &sim.EventStats{}
				agg[r.Name] = s
			}
			s.Scheduled += r.Scheduled
			s.Fired += r.Fired
			s.Cancelled += r.Cancelled
			s.WallNs += r.WallNs
			if r.WallMaxNs > s.WallMaxNs {
				s.WallMaxNs = r.WallMaxNs
			}
		}
	}
	rows := make([]sim.ProfileRow, 0, len(agg))
	for name, s := range agg {
		rows = append(rows, sim.ProfileRow{Name: name, EventStats: *s})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// MergeStreams folds the per-kernel RNG stream access counts, sorted by
// stream name.
func MergeStreams(secs []KernelSection) []sim.StreamRow {
	agg := map[string]uint64{}
	for _, sec := range secs {
		for _, r := range sec.Profile.Streams() {
			agg[r.Stream] += r.Accesses
		}
	}
	rows := make([]sim.StreamRow, 0, len(agg))
	for name, n := range agg {
		rows = append(rows, sim.StreamRow{Stream: name, Accesses: n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Stream < rows[j].Stream })
	return rows
}

// ProfileTable renders per-event-name aggregates as a typed table. With wall
// set it appends the (nondeterministic) handler wall-time columns.
func ProfileTable(rows []sim.ProfileRow, wall bool) *atlarge.Table {
	cols := []string{"event", "scheduled", "fired", "cancelled", "cancel_pct"}
	if wall {
		cols = append(cols, "wall_ms", "mean_us", "max_us")
	}
	t := &atlarge.Table{Name: "kernel events", Columns: cols}
	for _, r := range rows {
		cancelPct := 0.0
		if r.Scheduled > 0 {
			cancelPct = 100 * float64(r.Cancelled) / float64(r.Scheduled)
		}
		cells := []atlarge.Cell{
			atlarge.Label(r.Name),
			atlarge.Count(int(r.Scheduled)),
			atlarge.Count(int(r.Fired)),
			atlarge.Count(int(r.Cancelled)),
			atlarge.Num(cancelPct, "%.1f"),
		}
		if wall {
			mean := 0.0
			if r.Fired > 0 {
				mean = float64(r.WallNs) / float64(r.Fired) / 1e3
			}
			cells = append(cells,
				atlarge.Num(float64(r.WallNs)/1e6, "%.3f"),
				atlarge.Num(mean, "%.2f"),
				atlarge.Num(float64(r.WallMaxNs)/1e3, "%.2f"),
			)
		}
		t.AddRow(cells...)
	}
	return t
}

// StreamTable renders RNG stream access counts as a typed table.
func StreamTable(rows []sim.StreamRow) *atlarge.Table {
	t := &atlarge.Table{Name: "rng streams", Columns: []string{"stream", "accesses"}}
	for _, r := range rows {
		t.AddRow(atlarge.Label(r.Stream), atlarge.Count(int(r.Accesses)))
	}
	return t
}
