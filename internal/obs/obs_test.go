package obs_test

import (
	"bytes"
	"context"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"atlarge"
	"atlarge/internal/exec"
	"atlarge/internal/obs"
	"atlarge/internal/scenario"
	"atlarge/internal/sim"
)

const specJSON = `{
	"version": 1,
	"name": "trace-test",
	"workload": {"class": "scientific", "jobs": 12},
	"cluster": {"kind": "CL", "machines": 4, "cores": 4},
	"replicas": 2,
	"seed": 42,
	"sweep": {"policy": ["sjf", "fcfs"]}
}`

// runTracedSweep runs the test sweep at the given parallelism with a fresh
// collector and span log, returning the assembled trace.
func runTracedSweep(t *testing.T, parallel int, wall bool) *obs.Trace {
	t.Helper()
	spec, err := scenario.Parse(strings.NewReader(specJSON))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cells, err := scenario.Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}

	col := &obs.Collector{}
	restore := col.Install()
	defer restore()
	spans := &obs.SpanLog{}

	_, err = scenario.Run(context.Background(), spec, cells, scenario.Options{
		Parallelism:  parallel,
		SpanObserver: spans.Observe,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	tasks := map[int64]obs.TaskRef{}
	idx := 0
	for i := range cells {
		for rep := 0; rep < spec.Replicas; rep++ {
			id := cells[i].ID() + "#" + strconv.Itoa(rep)
			tasks[atlarge.DeriveSeed(spec.Seed, cells[i].ID(), rep)] = obs.TaskRef{Index: idx, ID: id}
			idx++
		}
	}
	return &obs.Trace{
		Target:   spec.Name,
		Seed:     spec.Seed,
		Sections: col.Sections(tasks),
		Spans:    spans.Sorted(),
		Wall:     wall,
	}
}

func TestTraceDeterministicAcrossParallelism(t *testing.T) {
	t1 := runTracedSweep(t, 1, false)
	t8 := runTracedSweep(t, 8, false)

	if len(t1.Sections) == 0 {
		t.Fatal("no kernels captured")
	}
	if len(t1.Spans) != 4 { // 2 cells × 2 replicas
		t.Fatalf("got %d spans, want 4", len(t1.Spans))
	}

	var nd1, nd8 bytes.Buffer
	if err := t1.WriteNDJSON(&nd1); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	if err := t8.WriteNDJSON(&nd8); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	if !bytes.Equal(nd1.Bytes(), nd8.Bytes()) {
		t.Error("NDJSON differs between --parallel 1 and 8")
	}

	var ch1, ch8 bytes.Buffer
	if err := t1.WriteChrome(&ch1); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := t8.WriteChrome(&ch8); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !bytes.Equal(ch1.Bytes(), ch8.Bytes()) {
		t.Error("Chrome trace differs between --parallel 1 and 8")
	}
	if err := obs.ValidateChrome(bytes.NewReader(ch1.Bytes())); err != nil {
		t.Errorf("generated Chrome trace fails validation: %v", err)
	}
	// Every section must be attributed — the sched domain runs exactly one
	// kernel per (cell, replica) task under the derived sim seed.
	for _, sec := range t1.Sections {
		if sec.Index < 0 {
			t.Errorf("unattributed kernel seed=%d", sec.Seed)
		}
	}
}

func TestWallFieldsOptIn(t *testing.T) {
	tr := runTracedSweep(t, 2, false)
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	if bytes.Contains(buf.Bytes(), []byte("wall_ns")) || bytes.Contains(buf.Bytes(), []byte("worker")) {
		t.Error("wall fields leaked into a virtual-time-only trace")
	}

	trw := runTracedSweep(t, 2, true)
	buf.Reset()
	if err := trw.WriteNDJSON(&buf); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("end_ns")) {
		t.Error("wall trace missing span timing fields")
	}
	var chrome bytes.Buffer
	if err := trw.WriteChrome(&chrome); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := obs.ValidateChrome(bytes.NewReader(chrome.Bytes())); err != nil {
		t.Errorf("wall Chrome trace fails validation: %v", err)
	}
	if !bytes.Contains(chrome.Bytes(), []byte("worker ")) {
		t.Error("wall Chrome trace has no worker tracks")
	}
}

func TestValidateChromeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"traceEvents": [}`,
		"empty":           `{"traceEvents": []}`,
		"no events field": `{"other": 1}`,
		"missing name":    `{"traceEvents": [{"ph": "X", "ts": 1, "pid": 1, "tid": 1}]}`,
		"missing ph":      `{"traceEvents": [{"name": "e", "ts": 1, "pid": 1, "tid": 1}]}`,
		"missing ts":      `{"traceEvents": [{"name": "e", "ph": "X", "pid": 1, "tid": 1}]}`,
		"non-monotone ts": `{"traceEvents": [{"name": "a", "ph": "X", "ts": 5, "pid": 1, "tid": 1}, {"name": "b", "ph": "X", "ts": 3, "pid": 1, "tid": 1}]}`,
		"only metadata":   `{"traceEvents": [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0}]}`,
	}
	for name, doc := range cases {
		if err := obs.ValidateChrome(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
	// Distinct tracks may interleave timestamps freely.
	ok := `{"traceEvents": [
		{"name": "a", "ph": "X", "ts": 5, "pid": 1, "tid": 1},
		{"name": "b", "ph": "X", "ts": 3, "pid": 1, "tid": 2}]}`
	if err := obs.ValidateChrome(strings.NewReader(ok)); err != nil {
		t.Errorf("cross-track interleaving rejected: %v", err)
	}
}

func TestProfileTables(t *testing.T) {
	tr := runTracedSweep(t, 2, false)
	rows := obs.MergeProfiles(tr.Sections)
	if len(rows) == 0 {
		t.Fatal("no profile rows from a traced sweep")
	}
	var fired uint64
	for _, r := range rows {
		fired += r.Fired
	}
	if fired == 0 {
		t.Fatal("merged profile shows no fired events")
	}
	table := obs.ProfileTable(rows, true)
	if len(table.Rows) != len(rows) || len(table.Columns) != 8 {
		t.Fatalf("profile table shape: %d rows × %d cols", len(table.Rows), len(table.Columns))
	}
	streams := obs.MergeStreams(tr.Sections)
	if len(streams) == 0 {
		t.Fatal("no RNG stream rows — sched simulators draw from named streams")
	}
	st := obs.StreamTable(streams)
	if len(st.Rows) != len(streams) {
		t.Fatalf("stream table shape: %d rows, want %d", len(st.Rows), len(streams))
	}
}

func TestSectionsUnattributedKernels(t *testing.T) {
	col := &obs.Collector{}
	restore := col.Install()
	defer restore()

	for _, seed := range []int64{7, 7, 3} {
		k := sim.NewKernel(seed)
		k.At(0, "e", func(*sim.Kernel) {})
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	secs := col.Sections(map[int64]obs.TaskRef{3: {Index: 0, ID: "known#0"}})
	if len(secs) != 3 {
		t.Fatalf("got %d sections, want 3", len(secs))
	}
	if secs[0].Task != "known#0" || secs[0].Index != 0 {
		t.Fatalf("attributed section not first: %+v", secs[0])
	}
	if secs[1].Task != "kernel-7" || secs[1].Seq != 0 || secs[2].Seq != 1 {
		t.Fatalf("unattributed sections not in (seed, seq) order: %+v, %+v", secs[1], secs[2])
	}
}

func TestNoGoroutineLeakOnCancelledTracedRun(t *testing.T) {
	before := runtime.NumGoroutine()

	col := &obs.Collector{}
	restore := col.Install()
	spans := &obs.SpanLog{}

	ctx, cancel := context.WithCancel(context.Background())
	var p exec.Plan[int]
	for i := 0; i < 32; i++ {
		i := i
		p.Add("t"+strconv.Itoa(i), func(ctx context.Context) (int, error) {
			k := sim.NewKernel(int64(i))
			k.At(0, "tick", func(k *sim.Kernel) { k.After(0.1, "tick", func(*sim.Kernel) {}) })
			_ = k.Run()
			if i == 0 {
				cancel() // cancel mid-plan while tasks are in flight
			}
			select {
			case <-ctx.Done():
			case <-time.After(10 * time.Millisecond):
			}
			return i, nil
		})
	}
	for ev := range exec.Stream(ctx, &p, exec.Options[int]{Workers: 4, Spans: true}) {
		if ev.Span != nil {
			spans.Observe(ev.Index, ev.ID, *ev.Span, ev.Err)
		}
	}
	cancel()
	restore()

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak after cancelled traced run: %d before, %d after", before, after)
	}
	if col.Kernels() == 0 {
		t.Fatal("collector captured no kernels before cancellation")
	}
}
