// Package obs is the observability export layer: it captures kernel event
// traces (via sim.Tracer) and executor task spans (exec.TaskSpan), attributes
// them to the experiment or scenario-cell task that produced them, and
// serializes the result as NDJSON and as Chrome trace-event JSON loadable in
// Perfetto.
//
// Determinism contract: every virtual-time field of an exported trace is
// byte-identical across runs and across --parallel levels. Kernels are
// attributed by their seed — seeds derive from (base seed, task ID, replica)
// via atlarge.DeriveSeed, so they are stable no matter which worker or in
// what order the kernels were created. Wall-clock fields (handler ns, task
// spans, worker IDs) are inherently nondeterministic and are only emitted
// when explicitly requested (Trace.Wall).
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"atlarge/internal/exec"
	"atlarge/internal/sim"
)

// KernelCapture holds everything recorded from one kernel: the aggregate
// profile and the bounded event log. Seq distinguishes kernels constructed
// with the same seed inside one task (e.g. a portfolio policy probing
// sub-simulations), in creation order within that seed.
type KernelCapture struct {
	Seed    int64
	Seq     int
	Profile *sim.Profile
	Log     *sim.TraceLog
}

// Collector captures traces from every kernel created while installed. It is
// safe for concurrent use: parallel sweep workers create kernels
// concurrently, and each capture's tracer is then driven only by its
// kernel's own goroutine.
type Collector struct {
	// MaxEvents bounds each kernel's TraceLog (0 means sim.DefaultTraceCap).
	MaxEvents int

	mu       sync.Mutex
	captures []*KernelCapture
	perSeed  map[int64]int
}

// Install registers the collector as the process-wide kernel observer and
// returns the function that removes it. Typical use:
//
//	restore := c.Install()
//	defer restore()
//
// Only one observer exists per process; installing replaces any previous one.
func (c *Collector) Install() (restore func()) {
	sim.SetKernelObserver(func(k *sim.Kernel) {
		kc := &KernelCapture{
			Seed:    k.Seed(),
			Profile: sim.NewProfile(),
			Log:     &sim.TraceLog{Max: c.MaxEvents},
		}
		c.mu.Lock()
		if c.perSeed == nil {
			c.perSeed = make(map[int64]int)
		}
		kc.Seq = c.perSeed[kc.Seed]
		c.perSeed[kc.Seed]++
		c.captures = append(c.captures, kc)
		c.mu.Unlock()
		k.SetTracer(sim.Tee(kc.Profile, kc.Log))
	})
	return func() { sim.SetKernelObserver(nil) }
}

// Kernels returns the number of kernels captured so far.
func (c *Collector) Kernels() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.captures)
}

// TaskRef names one plan task for trace attribution: its position in the
// plan and its stable ID (experiment or cell, "#replica"-suffixed).
type TaskRef struct {
	Index int
	ID    string
}

// KernelSection is one kernel's capture labelled with the owning task. Trace
// exporters emit one section per kernel.
type KernelSection struct {
	// Task is the owning task's ID, or "kernel-<seed>" when the seed matches
	// no known task (a simulator that derived further sub-seeds).
	Task string
	// Index is the owning task's plan position; -1 for unattributed kernels.
	Index int
	Seed  int64
	Seq   int
	*KernelCapture
}

// Sections attributes the captures to tasks by seed and returns them in the
// canonical deterministic order: attributed sections by (task index, seq),
// then unattributed ones by (seed, seq). tasks maps each task's kernel seed
// (its DeriveSeed result) to the task; callers compute it from the same
// inputs the runner used, so attribution needs no cooperation from the
// simulators.
func (c *Collector) Sections(tasks map[int64]TaskRef) []KernelSection {
	c.mu.Lock()
	caps := make([]*KernelCapture, len(c.captures))
	copy(caps, c.captures)
	c.mu.Unlock()

	secs := make([]KernelSection, 0, len(caps))
	for _, kc := range caps {
		s := KernelSection{Seed: kc.Seed, Seq: kc.Seq, Index: -1, KernelCapture: kc}
		if ref, ok := tasks[kc.Seed]; ok {
			s.Task = ref.ID
			s.Index = ref.Index
		} else {
			s.Task = fmt.Sprintf("kernel-%d", kc.Seed)
		}
		secs = append(secs, s)
	}
	sort.Slice(secs, func(i, j int) bool {
		a, b := secs[i], secs[j]
		if (a.Index >= 0) != (b.Index >= 0) {
			return a.Index >= 0 // attributed sections first
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Seq < b.Seq
	})
	return secs
}

// SpanEntry is one task's executor span, labelled for export.
type SpanEntry struct {
	Index  int
	ID     string
	Failed bool
	Span   exec.TaskSpan
}

// SpanLog accumulates executor task spans from a SpanObserver callback. Safe
// for concurrent use (observers run on the collection goroutine, but serve
// jobs may share one log across plans).
type SpanLog struct {
	mu      sync.Mutex
	entries []SpanEntry
}

// Observe records one task span; it has the SpanObserver signature the
// runner and scenario engine expect.
func (l *SpanLog) Observe(index int, id string, span exec.TaskSpan, err error) {
	l.mu.Lock()
	l.entries = append(l.entries, SpanEntry{Index: index, ID: id, Failed: err != nil, Span: span})
	l.mu.Unlock()
}

// Sorted returns the spans in plan order.
func (l *SpanLog) Sorted() []SpanEntry {
	l.mu.Lock()
	out := make([]SpanEntry, len(l.entries))
	copy(out, l.entries)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// SharedProfile is a sim.Tracer safe for concurrent use by many kernels at
// once, funnelling every observation into one aggregate sim.Profile. The
// serve layer attaches one to all kernels (--kernel-profile) and exports its
// rows as per-event-name metrics. The mutex cost is paid only by traced
// kernels; it is the price of a process-wide aggregate.
type SharedProfile struct {
	mu sync.Mutex
	p  *sim.Profile
}

// NewSharedProfile returns an empty concurrent profile aggregate.
func NewSharedProfile() *SharedProfile {
	return &SharedProfile{p: sim.NewProfile()}
}

// EventScheduled implements sim.Tracer.
func (s *SharedProfile) EventScheduled(name string, at, now sim.Time) {
	s.mu.Lock()
	s.p.EventScheduled(name, at, now)
	s.mu.Unlock()
}

// EventFired implements sim.Tracer.
func (s *SharedProfile) EventFired(name string, at sim.Time, wall time.Duration) {
	s.mu.Lock()
	s.p.EventFired(name, at, wall)
	s.mu.Unlock()
}

// EventCancelled implements sim.Tracer.
func (s *SharedProfile) EventCancelled(name string, at, now sim.Time) {
	s.mu.Lock()
	s.p.EventCancelled(name, at, now)
	s.mu.Unlock()
}

// RandAccess implements sim.Tracer.
func (s *SharedProfile) RandAccess(stream string, now sim.Time) {
	s.mu.Lock()
	s.p.RandAccess(stream, now)
	s.mu.Unlock()
}

// Rows returns a snapshot of the per-event aggregates, sorted by name.
func (s *SharedProfile) Rows() []sim.ProfileRow {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Rows()
}
