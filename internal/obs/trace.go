// NDJSON trace export: one JSON object per line, sectioned — a meta line,
// then per kernel a kernel line followed by its event lines, then span lines.
// Without Wall the output contains virtual-time fields only and is
// byte-identical across runs and parallelism levels.
package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// Trace is a fully attributed capture of one run, ready for export.
type Trace struct {
	// Target names what was traced: an experiment ID, a scenario cell ID,
	// or a sweep name.
	Target string
	// Seed is the base seed of the run.
	Seed int64
	// Sections are the per-kernel captures in canonical order
	// (Collector.Sections).
	Sections []KernelSection
	// Spans are the executor task spans in plan order (SpanLog.Sorted).
	Spans []SpanEntry
	// Wall includes the nondeterministic wall-clock fields: handler ns on
	// fire events, and span timing/worker fields. Off by default so traces
	// byte-compare across runs.
	Wall bool
}

// NDJSON line shapes. Field order is fixed by the struct declarations, so
// the encoding is deterministic.

type metaLine struct {
	Type    string `json:"type"` // "meta"
	Target  string `json:"target"`
	Seed    int64  `json:"seed"`
	Kernels int    `json:"kernels"`
	Spans   int    `json:"spans"`
	Wall    bool   `json:"wall"`
}

type kernelLine struct {
	Type    string `json:"type"` // "kernel"
	Task    string `json:"task"`
	Seed    int64  `json:"seed"`
	Seq     int    `json:"seq,omitempty"`
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped,omitempty"`
}

type eventLine struct {
	Type   string  `json:"type"` // "event"
	Kind   string  `json:"kind"` // schedule | fire | cancel | rand
	Name   string  `json:"name"`
	At     float64 `json:"at"`
	Now    float64 `json:"now"`
	WallNs int64   `json:"wall_ns,omitempty"`
}

type spanLine struct {
	Type   string `json:"type"` // "span"
	Index  int    `json:"index"`
	Task   string `json:"task"`
	Cached bool   `json:"cached,omitempty"`
	Failed bool   `json:"failed,omitempty"`
	// Wall-clock fields, present only with Trace.Wall.
	Worker  *int  `json:"worker,omitempty"`
	WaitNs  int64 `json:"wait_ns,omitempty"`
	StartNs int64 `json:"start_ns,omitempty"`
	EndNs   int64 `json:"end_ns,omitempty"`
}

// WriteNDJSON serializes the trace as newline-delimited JSON.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	if err := enc.Encode(metaLine{
		Type: "meta", Target: t.Target, Seed: t.Seed,
		Kernels: len(t.Sections), Spans: len(t.Spans), Wall: t.Wall,
	}); err != nil {
		return err
	}
	for _, sec := range t.Sections {
		if err := enc.Encode(kernelLine{
			Type: "kernel", Task: sec.Task, Seed: sec.Seed, Seq: sec.Seq,
			Events: len(sec.Log.Records), Dropped: sec.Log.Dropped,
		}); err != nil {
			return err
		}
		for _, r := range sec.Log.Records {
			line := eventLine{
				Type: "event", Kind: r.Kind.String(), Name: r.Name,
				At: float64(r.At), Now: float64(r.Now),
			}
			if t.Wall {
				line.WallNs = r.WallNs
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	for _, se := range t.Spans {
		line := spanLine{
			Type: "span", Index: se.Index, Task: se.ID,
			Cached: se.Span.Cached, Failed: se.Failed,
		}
		if t.Wall {
			worker := se.Span.Worker
			line.Worker = &worker
			line.WaitNs = int64(se.Span.Wait)
			line.StartNs = int64(se.Span.Start)
			line.EndNs = int64(se.Span.End)
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
