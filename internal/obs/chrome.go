// Chrome trace-event export. The output is the JSON Object Format of the
// trace-event spec ({"traceEvents": [...]}), which Perfetto's legacy
// importer loads directly: open ui.perfetto.dev and drop the file in.
//
// Track layout:
//
//   - pid 1 "virtual time": one thread per traced kernel (named after the
//     owning task), with a zero-duration complete event per kernel event
//     fired, at ts = virtual seconds × 1e6 (so trace µs read as virtual s).
//   - pid 2 "wall time": only with Trace.Wall — one thread per executor
//     worker, with a complete event per task span.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"atlarge/internal/sim"
)

type chromeArgs struct {
	Name   string `json:"name,omitempty"`
	Index  int    `json:"index,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Failed bool   `json:"failed,omitempty"`
}

// chromeEvent is one trace-event line. Metadata events (ph "M") carry Args
// and no timestamp; complete events (ph "X") carry Ts/Dur.
type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  float64     `json:"dur"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

const (
	pidVirtual = 1
	pidWall    = 2
)

// WriteChrome serializes the trace in Chrome trace-event JSON.
func (t *Trace) WriteChrome(w io.Writer) error {
	var evs []chromeEvent
	meta := func(pid, tid int, kind, name string) {
		evs = append(evs, chromeEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid, Args: &chromeArgs{Name: name}})
	}

	meta(pidVirtual, 0, "process_name", "virtual time — "+t.Target)
	for i, sec := range t.Sections {
		tid := i + 1
		label := sec.Task
		if sec.Seq > 0 {
			label = fmt.Sprintf("%s (kernel %d)", sec.Task, sec.Seq+1)
		}
		meta(pidVirtual, tid, "thread_name", label)
		for _, r := range sec.Log.Records {
			if r.Kind != sim.TraceFire {
				continue
			}
			evs = append(evs, chromeEvent{
				Name: r.Name, Ph: "X",
				Ts:  float64(r.At) * 1e6, // virtual seconds shown as trace µs→s
				Pid: pidVirtual, Tid: tid,
			})
		}
	}

	if t.Wall && len(t.Spans) > 0 {
		meta(pidWall, 0, "process_name", "wall time — workers")
		var wall []chromeEvent
		workers := map[int]bool{}
		for _, se := range t.Spans {
			workers[se.Span.Worker] = true
			wall = append(wall, chromeEvent{
				Name: se.ID, Ph: "X",
				Ts:   float64(se.Span.Start) / 1e3, // ns → µs
				Dur:  float64(se.Span.End-se.Span.Start) / 1e3,
				Pid:  pidWall,
				Tid:  se.Span.Worker + 1,
				Args: &chromeArgs{Index: se.Index, Cached: se.Span.Cached, Failed: se.Failed},
			})
		}
		// Workers settle tasks sequentially, so sorting by (tid, ts) keeps
		// each wall track monotone.
		sort.SliceStable(wall, func(i, j int) bool {
			if wall[i].Tid != wall[j].Tid {
				return wall[i].Tid < wall[j].Tid
			}
			return wall[i].Ts < wall[j].Ts
		})
		wids := make([]int, 0, len(workers))
		for id := range workers {
			wids = append(wids, id)
		}
		sort.Ints(wids)
		for _, id := range wids {
			meta(pidWall, id+1, "thread_name", fmt.Sprintf("worker %d", id))
		}
		evs = append(evs, wall...)
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(chromeFile{DisplayTimeUnit: "ms", TraceEvents: evs}); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateChrome checks that r holds well-formed Chrome trace-event JSON
// suitable for Perfetto: a traceEvents array (or a bare event array), every
// event carrying a name and phase, and per-(pid, tid) track timestamps
// non-decreasing.
func ValidateChrome(r io.Reader) error {
	var raw struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return fmt.Errorf("trace is not valid JSON: %w", err)
	}
	if len(raw.TraceEvents) == 0 {
		return fmt.Errorf("trace has no traceEvents array (or it is empty)")
	}
	type track struct{ pid, tid int }
	last := map[track]float64{}
	events := 0
	for i, msg := range raw.TraceEvents {
		var ev struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Pid  int      `json:"pid"`
			Tid  int      `json:"tid"`
		}
		if err := json.Unmarshal(msg, &ev); err != nil {
			return fmt.Errorf("traceEvents[%d]: %w", i, err)
		}
		if ev.Name == "" {
			return fmt.Errorf("traceEvents[%d]: missing name", i)
		}
		if ev.Ph == "" {
			return fmt.Errorf("traceEvents[%d]: missing ph (phase)", i)
		}
		if ev.Ph == "M" {
			continue // metadata carries no timestamp
		}
		if ev.Ts == nil {
			return fmt.Errorf("traceEvents[%d] (%s): missing ts", i, ev.Name)
		}
		tr := track{ev.Pid, ev.Tid}
		if prev, ok := last[tr]; ok && *ev.Ts < prev {
			return fmt.Errorf("traceEvents[%d] (%s): ts %.3f before %.3f on track pid=%d tid=%d",
				i, ev.Name, *ev.Ts, prev, ev.Pid, ev.Tid)
		}
		last[tr] = *ev.Ts
		events++
	}
	if events == 0 {
		return fmt.Errorf("trace contains only metadata, no events")
	}
	return nil
}

// ValidateChromeFile is ValidateChrome over a file path.
func ValidateChromeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ValidateChrome(f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
