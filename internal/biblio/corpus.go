// Package biblio reproduces the paper's bibliometric evidence (Figures 1–3)
// on a synthetic publication corpus. The real corpora — publisher databases
// for keyword and design-article counts, and confidential conference review
// data — are proprietary, so the generator is calibrated to the shapes the
// paper reports, and the analysis pipeline is exactly what would run on the
// real data.
package biblio

import (
	"fmt"
	"math"
	"math/rand"
)

// Publication is one article in the corpus.
type Publication struct {
	Venue    string
	Year     int
	Keywords []string
	IsDesign bool
	Accepted bool
	// Merit, Quality, Topic are review scores in 1..4 (0 when unreviewed).
	Merit   int
	Quality int
	Topic   int
}

// Figure1Venues are the venues of the Figure 1 keyword analysis.
func Figure1Venues() []string {
	return []string{
		"CCPE", "FGCS", "ToIT", "TPDS", "IEEE IC", "TWeb", "ATC", "CCGRID",
		"Euro-Par", "Eurosys", "FAST", "HPDC", "ICDCS", "IPDPS", "ISC",
		"LISA", "Middleware", "NSDI", "OSDI", "P2P", "PODC", "SoCC", "SC", "SOSP",
	}
}

// Figure2Venues are the venues of the Figure 2 design-article count.
func Figure2Venues() []string {
	return []string{
		"CLUSTER", "OSDI", "ATC", "NSDI", "CLOUD", "HPDC",
		"ICDCS", "SC", "CCGrid", "FGCS", "JPDC", "TPDS",
	}
}

// KeywordWeights orders the Figure 1 keywords by their reported prevalence
// (performance most frequent, edge least).
func KeywordWeights() []struct {
	Keyword string
	Weight  float64
} {
	return []struct {
		Keyword string
		Weight  float64
	}{
		{"performance", 1.00},
		{"design", 0.80},
		{"efficiency", 0.55},
		{"big data", 0.45},
		{"scalability", 0.40},
		{"high performance", 0.33},
		{"scheduling", 0.28},
		{"benchmarking", 0.24},
		{"reliability", 0.20},
		{"grid", 0.17},
		{"cluster", 0.15},
		{"cloud", 0.13},
		{"security", 0.10},
		{"availability", 0.08},
		{"edge", 0.03},
	}
}

// CorpusConfig parameterizes corpus generation.
type CorpusConfig struct {
	// StartYear..EndYear inclusive.
	StartYear int
	EndYear   int
	// ArticlesPerVenueYear is the mean volume.
	ArticlesPerVenueYear int
	Seed                 int64
}

// DefaultCorpusConfig spans 1980-2017 at modest volume.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{StartYear: 1980, EndYear: 2017, ArticlesPerVenueYear: 60, Seed: 1}
}

// designShare models the Figure 2 finding: design articles accumulate slowly
// before 2000 and markedly faster after.
func designShare(year int) float64 {
	// Logistic ramp centered at 2003.
	return 0.05 + 0.30/(1+math.Exp(-float64(year-2003)/4))
}

// venueStart returns the first year a venue publishes (some venues started
// later, giving the censored data the paper mentions).
func venueStart(venue string) int {
	switch venue {
	case "NSDI", "CLOUD", "SoCC":
		return 2004
	case "HPDC", "ATC":
		return 1992
	case "CLUSTER", "CCGrid", "CCGRID":
		return 1999
	case "OSDI":
		return 1994
	default:
		return 1980
	}
}

// Generate builds the synthetic corpus over the union of the Figure 1 and
// Figure 2 venues.
func Generate(cfg CorpusConfig) ([]Publication, error) {
	if cfg.StartYear > cfg.EndYear {
		return nil, fmt.Errorf("biblio: year range %d..%d", cfg.StartYear, cfg.EndYear)
	}
	if cfg.ArticlesPerVenueYear < 1 {
		return nil, fmt.Errorf("biblio: volume %d", cfg.ArticlesPerVenueYear)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	venues := map[string]bool{}
	var venueList []string
	for _, v := range append(Figure1Venues(), Figure2Venues()...) {
		if !venues[v] {
			venues[v] = true
			venueList = append(venueList, v)
		}
	}
	kw := KeywordWeights()
	var corpus []Publication
	for _, venue := range venueList {
		start := venueStart(venue)
		for year := cfg.StartYear; year <= cfg.EndYear; year++ {
			if year < start {
				continue
			}
			// Volume grows mildly over time (the field expanded).
			vol := float64(cfg.ArticlesPerVenueYear) * (0.5 + float64(year-1980)*0.02)
			n := int(vol * (0.8 + 0.4*r.Float64()))
			for a := 0; a < n; a++ {
				pub := Publication{
					Venue:    venue,
					Year:     year,
					IsDesign: r.Float64() < designShare(year),
					Accepted: true,
				}
				for _, k := range kw {
					// Keyword presence probability scales with the reported
					// prevalence; "design" presence correlates with design
					// articles (0.95 for design articles, 0.14 otherwise —
					// calibrated so the aggregate matches the Figure 1 rank
					// of "design" just below "performance").
					p := k.Weight * 0.5
					if k.Keyword == "design" {
						if pub.IsDesign {
							p = 0.95
						} else {
							p = 0.14
						}
					}
					if r.Float64() < p {
						pub.Keywords = append(pub.Keywords, k.Keyword)
					}
				}
				corpus = append(corpus, pub)
			}
		}
	}
	return corpus, nil
}

// ReviewConfig parameterizes the Figure 3 review-score model.
type ReviewConfig struct {
	Submissions int
	// DesignShare is the fraction of design submissions.
	DesignShare float64
	// AcceptRate is the overall acceptance rate.
	AcceptRate float64
	Seed       int64
}

// DefaultReviewConfig mirrors a selective systems conference.
func DefaultReviewConfig() ReviewConfig {
	return ReviewConfig{Submissions: 600, DesignShare: 0.45, AcceptRate: 0.22, Seed: 1}
}

// GenerateReviews builds the review corpus for Figure 3. Calibration to the
// paper's findings: (1) design articles have a slightly better merit
// distribution (higher median/mean); (2) a significant share of design
// submissions still scores below 3 — professionals struggle to self-assess;
// (3) topic scores cluster high for everyone (the CfP steering effect).
func GenerateReviews(cfg ReviewConfig) ([]Publication, error) {
	if cfg.Submissions < 1 {
		return nil, fmt.Errorf("biblio: submissions %d", cfg.Submissions)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	score := func(mean, sd float64) int {
		v := int(math.Round(mean + sd*r.NormFloat64()))
		if v < 1 {
			v = 1
		}
		if v > 4 {
			v = 4
		}
		return v
	}
	var pubs []Publication
	for i := 0; i < cfg.Submissions; i++ {
		design := r.Float64() < cfg.DesignShare
		// Latent quality drives both scores and acceptance.
		latent := 2.1 + 0.6*r.NormFloat64()
		if design {
			latent += 0.2 // finding (1): slight distributional advantage
		}
		accepted := latent+0.3*r.NormFloat64() > 2.9 // ~= top quantile
		p := Publication{
			Venue:    "anonymized-conf",
			Year:     2016,
			IsDesign: design,
			Accepted: accepted,
			Merit:    score(latent, 0.5),
			Quality:  score(latent-0.1, 0.5),
			Topic:    score(3.3, 0.5), // finding (3): topics cluster high
		}
		pubs = append(pubs, p)
	}
	// Force the realized accept rate toward cfg.AcceptRate by flipping the
	// weakest accepts if needed (the PC has a quota).
	accepts := 0
	for _, p := range pubs {
		if p.Accepted {
			accepts++
		}
	}
	want := int(float64(cfg.Submissions) * cfg.AcceptRate)
	for i := range pubs {
		if accepts <= want {
			break
		}
		if pubs[i].Accepted && pubs[i].Merit <= 2 {
			pubs[i].Accepted = false
			accepts--
		}
	}
	return pubs, nil
}
