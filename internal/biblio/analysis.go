package biblio

import (
	"fmt"
	"sort"

	"atlarge/internal/stats"
)

// KeywordCount is one Figure 1 bar.
type KeywordCount struct {
	Keyword string
	Count   int
}

// Figure1 counts keyword presence in the Figure 1 venues over 2013–2017
// (the paper's "start of 2013 to start of 2018" window).
func Figure1(corpus []Publication) []KeywordCount {
	venueSet := map[string]bool{}
	for _, v := range Figure1Venues() {
		venueSet[v] = true
	}
	counts := map[string]int{}
	for _, p := range corpus {
		if !venueSet[p.Venue] || p.Year < 2013 || p.Year > 2017 {
			continue
		}
		for _, k := range p.Keywords {
			counts[k]++
		}
	}
	out := make([]KeywordCount, 0, len(counts))
	for k, c := range counts {
		out = append(out, KeywordCount{Keyword: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Keyword < out[j].Keyword
	})
	return out
}

// BlockCount is one (venue, 5-year block) cell of Figure 2.
type BlockCount struct {
	Venue      string
	BlockStart int
	Designs    int
}

// Figure2 counts design articles per venue per 5-year block since 1980.
func Figure2(corpus []Publication) []BlockCount {
	venueSet := map[string]bool{}
	for _, v := range Figure2Venues() {
		venueSet[v] = true
	}
	cell := map[string]map[int]int{}
	for _, p := range corpus {
		if !venueSet[p.Venue] || !p.IsDesign || p.Year < 1980 {
			continue
		}
		block := 1980 + (p.Year-1980)/5*5
		if cell[p.Venue] == nil {
			cell[p.Venue] = map[int]int{}
		}
		cell[p.Venue][block]++
	}
	var out []BlockCount
	for _, v := range Figure2Venues() {
		blocks := cell[v]
		var starts []int
		for b := range blocks {
			starts = append(starts, b)
		}
		sort.Ints(starts)
		for _, b := range starts {
			out = append(out, BlockCount{Venue: v, BlockStart: b, Designs: blocks[b]})
		}
	}
	return out
}

// Figure2Trend reports, per venue, whether design-article counts in the
// post-2000 blocks exceed the pre-2000 blocks (the paper's "marked increase
// since 2000").
func Figure2Trend(rows []BlockCount) map[string]bool {
	pre := map[string]int{}
	post := map[string]int{}
	blocksPre := map[string]int{}
	blocksPost := map[string]int{}
	for _, r := range rows {
		if r.BlockStart < 2000 {
			pre[r.Venue] += r.Designs
			blocksPre[r.Venue]++
		} else {
			post[r.Venue] += r.Designs
			blocksPost[r.Venue]++
		}
	}
	out := map[string]bool{}
	for v := range post {
		preAvg := 0.0
		if blocksPre[v] > 0 {
			preAvg = float64(pre[v]) / float64(blocksPre[v])
		}
		postAvg := 0.0
		if blocksPost[v] > 0 {
			postAvg = float64(post[v]) / float64(blocksPost[v])
		}
		out[v] = postAvg > preAvg
	}
	return out
}

// Figure3Category labels one violin of Figure 3.
type Figure3Category struct {
	Name   string
	Filter func(Publication) bool
}

// Figure3Categories returns the seven article groups of Figure 3.
func Figure3Categories() []Figure3Category {
	return []Figure3Category{
		{"All", func(Publication) bool { return true }},
		{"Design", func(p Publication) bool { return p.IsDesign }},
		{"Design accepted", func(p Publication) bool { return p.IsDesign && p.Accepted }},
		{"Design rejected", func(p Publication) bool { return p.IsDesign && !p.Accepted }},
		{"Non-design", func(p Publication) bool { return !p.IsDesign }},
		{"Non-design accepted", func(p Publication) bool { return !p.IsDesign && p.Accepted }},
		{"Non-design rejected", func(p Publication) bool { return !p.IsDesign && !p.Accepted }},
	}
}

// Aspect selects a review score.
type Aspect string

// The three scored aspects.
const (
	AspectMerit   Aspect = "merit"
	AspectQuality Aspect = "quality"
	AspectTopic   Aspect = "topic"
)

// scoreOf extracts the aspect score.
func scoreOf(p Publication, a Aspect) float64 {
	switch a {
	case AspectMerit:
		return float64(p.Merit)
	case AspectQuality:
		return float64(p.Quality)
	case AspectTopic:
		return float64(p.Topic)
	default:
		return 0
	}
}

// Figure3 computes the violin summary for every (category, aspect) pair.
func Figure3(reviews []Publication) (map[string]map[Aspect]stats.Violin, error) {
	out := make(map[string]map[Aspect]stats.Violin)
	for _, cat := range Figure3Categories() {
		out[cat.Name] = make(map[Aspect]stats.Violin)
		for _, aspect := range []Aspect{AspectMerit, AspectQuality, AspectTopic} {
			var xs []float64
			for _, p := range reviews {
				if cat.Filter(p) {
					xs = append(xs, scoreOf(p, aspect))
				}
			}
			if len(xs) == 0 {
				return nil, fmt.Errorf("biblio: category %q/%s empty", cat.Name, aspect)
			}
			v, err := stats.NewViolin(cat.Name, xs, 40)
			if err != nil {
				return nil, fmt.Errorf("biblio: %q/%s: %w", cat.Name, aspect, err)
			}
			out[cat.Name][aspect] = v
		}
	}
	return out, nil
}

// Figure3Findings verifies the paper's two findings over computed violins:
// (1) design merit beats non-design merit on median and mean; (2) a
// significant share of design submissions score below 3 on merit.
type Figure3Findings struct {
	DesignMeritMedian    float64
	NonDesignMeritMedian float64
	DesignMeritMean      float64
	NonDesignMeritMean   float64
	DesignBelow3Pct      float64
	TopicMedian          float64
}

// AnalyzeFigure3 extracts the findings.
func AnalyzeFigure3(reviews []Publication, violins map[string]map[Aspect]stats.Violin) Figure3Findings {
	f := Figure3Findings{
		DesignMeritMedian:    violins["Design"][AspectMerit].Median,
		NonDesignMeritMedian: violins["Non-design"][AspectMerit].Median,
		DesignMeritMean:      violins["Design"][AspectMerit].Mean,
		NonDesignMeritMean:   violins["Non-design"][AspectMerit].Mean,
		TopicMedian:          violins["All"][AspectTopic].Median,
	}
	design, below := 0, 0
	for _, p := range reviews {
		if p.IsDesign {
			design++
			if p.Merit < 3 {
				below++
			}
		}
	}
	if design > 0 {
		f.DesignBelow3Pct = 100 * float64(below) / float64(design)
	}
	return f
}
