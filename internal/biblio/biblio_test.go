package biblio

import (
	"testing"
)

func genCorpus(t *testing.T) []Publication {
	t.Helper()
	cfg := DefaultCorpusConfig()
	cfg.ArticlesPerVenueYear = 20 // keep tests fast
	corpus, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(CorpusConfig{StartYear: 2000, EndYear: 1990, ArticlesPerVenueYear: 10}); err == nil {
		t.Error("inverted year range accepted")
	}
	if _, err := Generate(CorpusConfig{StartYear: 2000, EndYear: 2001}); err == nil {
		t.Error("zero volume accepted")
	}
}

func TestCorpusRespectsVenueStarts(t *testing.T) {
	corpus := genCorpus(t)
	for _, p := range corpus {
		if start := venueStart(p.Venue); p.Year < start {
			t.Fatalf("%s published in %d before its start %d", p.Venue, p.Year, start)
		}
	}
}

func TestFigure1OrderMatchesPaper(t *testing.T) {
	corpus := genCorpus(t)
	counts := Figure1(corpus)
	if len(counts) != len(KeywordWeights()) {
		t.Fatalf("keywords counted = %d, want %d", len(counts), len(KeywordWeights()))
	}
	pos := map[string]int{}
	for i, kc := range counts {
		pos[kc.Keyword] = i
		if kc.Count <= 0 {
			t.Errorf("keyword %q count %d", kc.Keyword, kc.Count)
		}
	}
	// The paper's headline ordering: performance first, design second, edge
	// last.
	if pos["performance"] != 0 {
		t.Errorf("performance rank = %d, want 0", pos["performance"])
	}
	if pos["design"] != 1 {
		t.Errorf("design rank = %d, want 1", pos["design"])
	}
	if pos["edge"] != len(counts)-1 {
		t.Errorf("edge rank = %d, want last", pos["edge"])
	}
}

func TestFigure2MarkedIncreaseSince2000(t *testing.T) {
	corpus := genCorpus(t)
	rows := Figure2(corpus)
	if len(rows) == 0 {
		t.Fatal("no Figure 2 rows")
	}
	trend := Figure2Trend(rows)
	increasing := 0
	for _, up := range trend {
		if up {
			increasing++
		}
	}
	if increasing < len(trend)*3/4 {
		t.Errorf("only %d/%d venues show post-2000 increase", increasing, len(trend))
	}
	// Censored venues must not have pre-start blocks.
	for _, r := range rows {
		if r.BlockStart < venueStart(r.Venue)-4 {
			t.Errorf("venue %s has block %d before start", r.Venue, r.BlockStart)
		}
	}
}

func TestGenerateReviewsValidation(t *testing.T) {
	if _, err := GenerateReviews(ReviewConfig{}); err == nil {
		t.Error("zero submissions accepted")
	}
}

func TestReviewScoresInRange(t *testing.T) {
	reviews, err := GenerateReviews(DefaultReviewConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range reviews {
		for _, s := range []int{p.Merit, p.Quality, p.Topic} {
			if s < 1 || s > 4 {
				t.Fatalf("score %d out of 1..4", s)
			}
		}
	}
}

func TestFigure3FindingsHold(t *testing.T) {
	reviews, err := GenerateReviews(DefaultReviewConfig())
	if err != nil {
		t.Fatal(err)
	}
	violins, err := Figure3(reviews)
	if err != nil {
		t.Fatal(err)
	}
	if len(violins) != 7 {
		t.Fatalf("categories = %d, want 7", len(violins))
	}
	f := AnalyzeFigure3(reviews, violins)
	// Finding (1): design articles have a slightly better merit shape.
	if f.DesignMeritMean <= f.NonDesignMeritMean {
		t.Errorf("design merit mean %v not above non-design %v",
			f.DesignMeritMean, f.NonDesignMeritMean)
	}
	if f.DesignMeritMedian < f.NonDesignMeritMedian {
		t.Errorf("design merit median %v below non-design %v",
			f.DesignMeritMedian, f.NonDesignMeritMedian)
	}
	// Finding (2): a significant share of design submissions score below 3.
	if f.DesignBelow3Pct < 20 {
		t.Errorf("design below-3 share = %v%%, want >= 20%% (self-assessment problem)", f.DesignBelow3Pct)
	}
	// Finding (3): topic scores cluster high (CfP steering).
	if f.TopicMedian < 3 {
		t.Errorf("topic median = %v, want >= 3", f.TopicMedian)
	}
}

func TestFigure3AcceptedBeatRejected(t *testing.T) {
	reviews, err := GenerateReviews(DefaultReviewConfig())
	if err != nil {
		t.Fatal(err)
	}
	violins, err := Figure3(reviews)
	if err != nil {
		t.Fatal(err)
	}
	acc := violins["Design accepted"][AspectMerit]
	rej := violins["Design rejected"][AspectMerit]
	if acc.Mean <= rej.Mean {
		t.Errorf("accepted mean %v not above rejected %v", acc.Mean, rej.Mean)
	}
}

func TestAcceptRateNearTarget(t *testing.T) {
	cfg := DefaultReviewConfig()
	reviews, err := GenerateReviews(cfg)
	if err != nil {
		t.Fatal(err)
	}
	accepts := 0
	for _, p := range reviews {
		if p.Accepted {
			accepts++
		}
	}
	rate := float64(accepts) / float64(len(reviews))
	if rate < 0.1 || rate > 0.4 {
		t.Errorf("accept rate = %v, want near %v", rate, cfg.AcceptRate)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.ArticlesPerVenueYear = 5
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Venue != b[i].Venue || a[i].IsDesign != b[i].IsDesign {
			t.Fatal("corpus not deterministic")
		}
	}
}
