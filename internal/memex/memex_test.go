package memex

import (
	"bytes"
	"strings"
	"testing"

	"atlarge/internal/core"
)

func TestAddValidation(t *testing.T) {
	m := New()
	if err := m.Add(Entry{Kind: KindDesign, Title: "x"}); err == nil {
		t.Error("entry without id accepted")
	}
	if err := m.Add(Entry{ID: "a", Kind: Kind("bogus")}); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := m.Add(Entry{ID: "a", Kind: KindDesign, DerivedFrom: []string{"ghost"}}); err == nil {
		t.Error("dangling provenance link accepted")
	}
	if err := m.Add(Entry{ID: "a", Kind: KindDesign}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(Entry{ID: "a", Kind: KindTrace}); err == nil {
		t.Error("duplicate id accepted")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestGetAndQueries(t *testing.T) {
	m := New()
	must := func(e Entry) {
		t.Helper()
		if err := m.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	must(Entry{ID: "t1", Kind: KindTrace, Title: "grid trace", Tags: []string{"grid"}})
	must(Entry{ID: "d1", Kind: KindDesign, Title: "scheduler v1", Tags: []string{"sched"}, DerivedFrom: []string{"t1"}})
	must(Entry{ID: "d2", Kind: KindDesign, Title: "scheduler v2", Tags: []string{"sched", "grid"}, DerivedFrom: []string{"d1"}})

	if e, ok := m.Get("d1"); !ok || e.Title != "scheduler v1" {
		t.Errorf("Get(d1) = %+v, %v", e, ok)
	}
	if _, ok := m.Get("nope"); ok {
		t.Error("phantom entry found")
	}
	if got := m.ByKind(KindDesign); len(got) != 2 || got[0].ID != "d1" {
		t.Errorf("ByKind = %+v", got)
	}
	if got := m.ByTag("grid"); len(got) != 2 {
		t.Errorf("ByTag(grid) = %d entries", len(got))
	}
}

func TestLineageAndDescendants(t *testing.T) {
	m := New()
	for _, e := range []Entry{
		{ID: "root", Kind: KindDiscussion},
		{ID: "mid", Kind: KindDecision, DerivedFrom: []string{"root"}},
		{ID: "leafA", Kind: KindDesign, DerivedFrom: []string{"mid"}},
		{ID: "leafB", Kind: KindDesign, DerivedFrom: []string{"mid", "root"}},
		{ID: "other", Kind: KindTrace},
	} {
		if err := m.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	lin, err := m.Lineage("leafA")
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) != 2 || lin[0].ID != "root" || lin[1].ID != "mid" {
		t.Errorf("Lineage(leafA) = %+v", lin)
	}
	lin, err = m.Lineage("leafB")
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) != 2 {
		t.Errorf("Lineage(leafB) dedup failed: %+v", lin)
	}
	desc, err := m.Descendants("root")
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 3 {
		t.Errorf("Descendants(root) = %d, want 3", len(desc))
	}
	if _, err := m.Lineage("ghost"); err == nil {
		t.Error("lineage of unknown entry accepted")
	}
	if _, err := m.Descendants("ghost"); err == nil {
		t.Error("descendants of unknown entry accepted")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	m := New()
	for _, e := range []Entry{
		{ID: "a", Kind: KindTrace, Title: "t", Tags: []string{"x"}},
		{ID: "b", Kind: KindDesign, Title: "d", DerivedFrom: []string{"a"},
			Rejected: []RejectedAlternative{{Title: "alt", Reason: "too slow"}}},
	} {
		if err := m.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.Export(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 2 {
		t.Fatalf("imported %d entries", m2.Len())
	}
	b, ok := m2.Get("b")
	if !ok || len(b.Rejected) != 1 || b.Rejected[0].Reason != "too slow" {
		t.Errorf("entry b = %+v", b)
	}
	if _, err := Import(strings.NewReader("{broken")); err == nil {
		t.Error("broken archive accepted")
	}
	// An archive whose links point forward must be rejected.
	bad := `{"id":"x","kind":"design","derived_from":["y"]}` + "\n" + `{"id":"y","kind":"trace"}` + "\n"
	if _, err := Import(strings.NewReader(bad)); err == nil {
		t.Error("forward-linked archive accepted")
	}
}

func TestRecordBDC(t *testing.T) {
	n := 0
	cy := &core.Cycle{
		Name: "demo",
		Stages: map[core.Stage]core.StageFunc{
			core.StageDesign: func(ctx *core.Context) error {
				n++
				ctx.AddSolution(core.Artifact{Name: "v", Score: float64(n), Satisficing: n >= 3})
				return nil
			},
		},
		Stop: core.StoppingCriteria{SatisficeAfter: 1, MaxIterations: 10},
	}
	tr, err := cy.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	m := New()
	root, err := m.RecordBDC("demo", tr)
	if err != nil {
		t.Fatal(err)
	}
	// 1 root + 3 iterations + 1 solution.
	if m.Len() != 5 {
		t.Fatalf("entries = %d, want 5", m.Len())
	}
	desc, err := m.Descendants(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 4 {
		t.Errorf("descendants = %d, want 4", len(desc))
	}
	sols := m.ByTag("satisficing")
	if len(sols) != 1 {
		t.Fatalf("satisficing designs = %d", len(sols))
	}
	lin, err := m.Lineage(sols[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	// The solution's lineage replays root + every iteration.
	if len(lin) != 4 || lin[0].ID != root {
		t.Errorf("solution lineage = %+v", lin)
	}
	// Recording the same name twice collides on IDs.
	if _, err := m.RecordBDC("demo", tr); err == nil {
		t.Error("duplicate BDC recording accepted")
	}
}
