// Package memex implements two of the paper's proposed future-work systems:
// the Distributed Systems Memex (challenge C6) — an archive of operational
// traces and design artifacts of distributed systems — and a formalism for
// documenting design provenance (challenge C8): what decisions were taken,
// by whom, derived from what, and with which alternatives rejected.
//
// The paper argues the community is "losing valuable heritage by not
// preserving the artifacts of design, the decisions that lead to them, and
// the thoughts and discussions that led to these designs." A Memex stores
// those artifacts as linked entries; derivation links form a DAG whose
// lineage can be replayed.
package memex

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"atlarge/internal/core"
)

// Kind classifies a Memex entry.
type Kind string

// Entry kinds: the artifact classes the paper's C6/C8 discussion names.
const (
	KindDesign     Kind = "design"     // a design artifact (architecture, spec)
	KindDecision   Kind = "decision"   // a design decision with rationale
	KindTrace      Kind = "trace"      // an operational/workload trace reference
	KindDiscussion Kind = "discussion" // the thoughts and debates behind a design
	KindExperiment Kind = "experiment" // an analysis or measurement campaign
)

// validKinds is the closed set of kinds.
var validKinds = map[Kind]bool{
	KindDesign: true, KindDecision: true, KindTrace: true,
	KindDiscussion: true, KindExperiment: true,
}

// Entry is one archived artifact.
type Entry struct {
	ID    string   `json:"id"`
	Kind  Kind     `json:"kind"`
	Title string   `json:"title"`
	Body  string   `json:"body,omitempty"`
	Tags  []string `json:"tags,omitempty"`
	// DerivedFrom lists the IDs this entry builds on (provenance edges;
	// must form a DAG).
	DerivedFrom []string `json:"derived_from,omitempty"`
	// Rejected lists alternatives considered and rejected, with reasons —
	// the intangibles C8 says are never revealed.
	Rejected []RejectedAlternative `json:"rejected,omitempty"`
	// Sequence is the insertion index (a logical clock).
	Sequence int `json:"sequence"`
}

// RejectedAlternative documents a road not taken.
type RejectedAlternative struct {
	Title  string `json:"title"`
	Reason string `json:"reason"`
}

// Memex is the archive. The zero value is not usable; construct with New.
type Memex struct {
	entries map[string]*Entry
	order   []string
	seq     int
}

// New returns an empty Memex.
func New() *Memex {
	return &Memex{entries: make(map[string]*Entry)}
}

// Add archives an entry. The ID must be unique, the kind known, and every
// DerivedFrom link must resolve to an existing entry (provenance is
// append-only, so links can only point backward — which also guarantees the
// derivation graph is a DAG).
func (m *Memex) Add(e Entry) error {
	if e.ID == "" {
		return fmt.Errorf("memex: entry without id")
	}
	if !validKinds[e.Kind] {
		return fmt.Errorf("memex: entry %q has unknown kind %q", e.ID, e.Kind)
	}
	if _, dup := m.entries[e.ID]; dup {
		return fmt.Errorf("memex: duplicate entry %q", e.ID)
	}
	for _, dep := range e.DerivedFrom {
		if _, ok := m.entries[dep]; !ok {
			return fmt.Errorf("memex: entry %q derived from missing %q", e.ID, dep)
		}
	}
	m.seq++
	e.Sequence = m.seq
	cp := e
	m.entries[e.ID] = &cp
	m.order = append(m.order, e.ID)
	return nil
}

// Get retrieves an entry.
func (m *Memex) Get(id string) (Entry, bool) {
	e, ok := m.entries[id]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Len returns the number of entries.
func (m *Memex) Len() int { return len(m.entries) }

// ByKind returns entries of one kind in insertion order.
func (m *Memex) ByKind(k Kind) []Entry {
	var out []Entry
	for _, id := range m.order {
		if e := m.entries[id]; e.Kind == k {
			out = append(out, *e)
		}
	}
	return out
}

// ByTag returns entries carrying the tag, in insertion order.
func (m *Memex) ByTag(tag string) []Entry {
	var out []Entry
	for _, id := range m.order {
		e := m.entries[id]
		for _, t := range e.Tags {
			if t == tag {
				out = append(out, *e)
				break
			}
		}
	}
	return out
}

// Lineage returns the full provenance ancestry of an entry (transitive
// DerivedFrom closure), ordered oldest first. Unknown IDs are an error.
func (m *Memex) Lineage(id string) ([]Entry, error) {
	if _, ok := m.entries[id]; !ok {
		return nil, fmt.Errorf("memex: unknown entry %q", id)
	}
	seen := map[string]bool{}
	var visit func(id string)
	var ids []string
	visit = func(cur string) {
		for _, dep := range m.entries[cur].DerivedFrom {
			if !seen[dep] {
				seen[dep] = true
				visit(dep)
				ids = append(ids, dep)
			}
		}
	}
	visit(id)
	out := make([]Entry, 0, len(ids))
	for _, i := range ids {
		out = append(out, *m.entries[i])
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Sequence < out[b].Sequence })
	return out, nil
}

// Descendants returns all entries that (transitively) derive from id,
// in insertion order.
func (m *Memex) Descendants(id string) ([]Entry, error) {
	if _, ok := m.entries[id]; !ok {
		return nil, fmt.Errorf("memex: unknown entry %q", id)
	}
	derives := map[string]bool{id: true}
	var out []Entry
	for _, cur := range m.order {
		e := m.entries[cur]
		for _, dep := range e.DerivedFrom {
			if derives[dep] {
				derives[e.ID] = true
				out = append(out, *e)
				break
			}
		}
	}
	return out, nil
}

// Export writes the archive as JSON lines in insertion order (the FOAD
// sharing format of §3.6).
func (m *Memex) Export(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, id := range m.order {
		if err := enc.Encode(m.entries[id]); err != nil {
			return fmt.Errorf("memex: export: %w", err)
		}
	}
	return nil
}

// Import reads a JSON-lines archive into a fresh Memex, re-validating every
// entry (provenance links must still resolve in order).
func Import(r io.Reader) (*Memex, error) {
	dec := json.NewDecoder(r)
	m := New()
	for {
		var e Entry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("memex: import: %w", err)
		}
		if err := m.Add(e); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// RecordBDC archives a Basic Design Cycle trace as provenance: one decision
// entry per iteration (deriving from the previous iteration) and one design
// entry per satisficing solution, all derived from a root design-problem
// entry. It returns the root entry ID.
func (m *Memex) RecordBDC(name string, tr *core.Trace) (string, error) {
	root := fmt.Sprintf("%s/problem", name)
	if err := m.Add(Entry{
		ID:    root,
		Kind:  KindDiscussion,
		Title: fmt.Sprintf("design problem %q", name),
		Tags:  []string{"bdc", name},
	}); err != nil {
		return "", err
	}
	prev := root
	for _, it := range tr.Iterations {
		id := fmt.Sprintf("%s/iter-%d", name, it.Iteration)
		executed := make([]string, len(it.Executed))
		for i, s := range it.Executed {
			executed[i] = s.String()
		}
		if err := m.Add(Entry{
			ID:          id,
			Kind:        KindDecision,
			Title:       fmt.Sprintf("iteration %d: %d stages, %d new solutions, %d failures", it.Iteration, len(it.Executed), it.NewSolutions, it.NewFailures),
			Body:        fmt.Sprintf("stages executed: %v", executed),
			Tags:        []string{"bdc", name},
			DerivedFrom: []string{prev},
		}); err != nil {
			return "", err
		}
		prev = id
	}
	for i, sol := range tr.Solutions {
		id := fmt.Sprintf("%s/solution-%d", name, i+1)
		if err := m.Add(Entry{
			ID:          id,
			Kind:        KindDesign,
			Title:       sol.Name,
			Body:        fmt.Sprintf("score %.3f, stop reason: %s", sol.Score, tr.Stop),
			Tags:        []string{"bdc", name, "satisficing"},
			DerivedFrom: []string{prev},
		}); err != nil {
			return "", err
		}
	}
	return root, nil
}
