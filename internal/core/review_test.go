package core

import (
	"testing"
	"testing/quick"
)

func TestDesignReviewValidate(t *testing.T) {
	good := DesignReview{BelievableDescription: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid review rejected: %v", err)
	}
	bad := DesignReview{Layering: 1.5}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range criterion accepted")
	}
	neg := DesignReview{VisualClarity: -0.1}
	if err := neg.Validate(); err == nil {
		t.Error("negative criterion accepted")
	}
}

func TestFigure4StudentDesignClassification(t *testing.T) {
	r := Figure4StudentDesign()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := r.Assess(); got != MaturityStudentLike {
		t.Errorf("Figure 4 design assessed as %v, want student-like", got)
	}
	missing := r.Missing(0.5)
	if len(missing) != 6 {
		t.Errorf("missing criteria = %v, want all 6 (the paper's critique)", missing)
	}
	// The paper names interconnections and layering explicitly.
	found := map[string]bool{}
	for _, mName := range missing {
		found[mName] = true
	}
	if !found["interconnections"] || !found["layering"] {
		t.Errorf("critique must include interconnections and layering: %v", missing)
	}
}

func TestMaturityBands(t *testing.T) {
	believable := DesignReview{
		BelievableDescription: 0.9, Interconnections: 0.9, Layering: 0.9,
		Packaging: 0.8, ComponentDescriptions: 0.9, VisualClarity: 0.8,
	}
	if got := believable.Assess(); got != MaturityBelievable {
		t.Errorf("strong design = %v", got)
	}
	competent := DesignReview{
		BelievableDescription: 0.7, Interconnections: 0.6, Layering: 0.6,
		Packaging: 0.6, ComponentDescriptions: 0.6, VisualClarity: 0.6,
	}
	if got := competent.Assess(); got != MaturityCompetent {
		t.Errorf("mid design = %v", got)
	}
	if MaturityStudentLike.String() == "" || Maturity(42).String() == "" {
		t.Error("maturity strings")
	}
}

func TestScoreIsMeanProperty(t *testing.T) {
	f := func(a, b, c, d, e, g uint8) bool {
		r := DesignReview{
			BelievableDescription: float64(a) / 255,
			Interconnections:      float64(b) / 255,
			Layering:              float64(c) / 255,
			Packaging:             float64(d) / 255,
			ComponentDescriptions: float64(e) / 255,
			VisualClarity:         float64(g) / 255,
		}
		s := r.Score()
		return s >= 0 && s <= 1 && r.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
