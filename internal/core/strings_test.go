package core

import (
	"strings"
	"testing"
)

// TestStringers sweeps every enum's String method, including the unknown
// default branches, so reports never print empty labels.
func TestStringers(t *testing.T) {
	for _, e := range []Element{ElementWhat, ElementHow, ElementOutcome, Element(99)} {
		if e.String() == "" {
			t.Errorf("Element(%d) empty string", e)
		}
	}
	for _, m := range []ReasoningMode{Deduction, Induction, NormalAbduction, DesignAbduction, Unreasoning, ReasoningMode(99)} {
		if m.String() == "" {
			t.Errorf("ReasoningMode(%d) empty string", m)
		}
	}
	for _, c := range []Category{CategoryHighest, CategorySystems, CategoryPeopleware, CategoryMethodology, Category(99)} {
		if c.String() == "" {
			t.Errorf("Category(%d) empty string", c)
		}
	}
	for _, k := range []ProblemKind{WellStructured, IllStructured, Wicked, ProblemKind(99)} {
		if k.String() == "" {
			t.Errorf("ProblemKind(%d) empty string", k)
		}
	}
	for _, l := range []CreativityLevel{TrivialDesign, NormalDesign, NovelDesign, FundamentalDesign, OutstandingDesign, CreativityLevel(99)} {
		if l.String() == "" {
			t.Errorf("CreativityLevel(%d) empty string", l)
		}
	}
	for _, k := range []DisseminationKind{DisseminateArticle, DisseminateSoftware, DisseminateData, DisseminationKind(99)} {
		if k.String() == "" {
			t.Errorf("DisseminationKind(%d) empty string", k)
		}
	}
	if !strings.Contains(Stage(99).String(), "99") {
		t.Error("unknown stage string")
	}
	if !strings.Contains(StopReason(99).String(), "99") {
		t.Error("unknown stop reason string")
	}
	if got := Unreasoning.Knowns(); got != nil {
		t.Errorf("Unreasoning knowns = %v", got)
	}
	if got := ReasoningMode(99).Knowns(); got != nil {
		t.Errorf("unknown mode knowns = %v", got)
	}
}

func TestContextSatisficingAccessor(t *testing.T) {
	ctx := &Context{}
	ctx.AddSolution(Artifact{Name: "good", Satisficing: true})
	ctx.AddSolution(Artifact{Name: "bad"})
	if got := ctx.Satisficing(); len(got) != 1 || got[0].Name != "good" {
		t.Errorf("Satisficing = %v", got)
	}
}
