package core

import "fmt"

// DesignReview is the Figure 4 critique turned into an executable rubric.
// The paper examines a typical early student design and finds it lacking: no
// believable description of how the problem is solved, missing
// interconnections (in the geo-distributed datacenter and between
// stakeholders), no layering, no system packaging, no component
// descriptions, and a poor visual depiction. Each criterion scores 0..1.
type DesignReview struct {
	// BelievableDescription: does the design credibly solve (part of) the
	// problem?
	BelievableDescription float64
	// Interconnections: are the links between systems and stakeholders
	// specified?
	Interconnections float64
	// Layering: is the design organized into layers?
	Layering float64
	// Packaging: are subsystems packaged into deployable units?
	Packaging float64
	// ComponentDescriptions: are the (sub)components described?
	ComponentDescriptions float64
	// VisualClarity: is the depiction readable?
	VisualClarity float64
}

// reviewCriteria enumerates the rubric fields with names, for reports.
func (r DesignReview) criteria() []struct {
	Name  string
	Value float64
} {
	return []struct {
		Name  string
		Value float64
	}{
		{"believable description", r.BelievableDescription},
		{"interconnections", r.Interconnections},
		{"layering", r.Layering},
		{"packaging", r.Packaging},
		{"component descriptions", r.ComponentDescriptions},
		{"visual clarity", r.VisualClarity},
	}
}

// Validate checks all criteria are in [0,1].
func (r DesignReview) Validate() error {
	for _, c := range r.criteria() {
		if c.Value < 0 || c.Value > 1 {
			return fmt.Errorf("core: review criterion %q = %v outside [0,1]", c.Name, c.Value)
		}
	}
	return nil
}

// Score returns the mean criterion score in [0,1].
func (r DesignReview) Score() float64 {
	sum := 0.0
	cs := r.criteria()
	for _, c := range cs {
		sum += c.Value
	}
	return sum / float64(len(cs))
}

// Missing lists criteria scored below the threshold (the reviewer's
// "raises many questions" list for Figure 4).
func (r DesignReview) Missing(threshold float64) []string {
	var out []string
	for _, c := range r.criteria() {
		if c.Value < threshold {
			out = append(out, c.Name)
		}
	}
	return out
}

// Maturity classifies the design per the paper's narrative arc: designs
// below 0.5 resemble the pre-training student attempt of Figure 4; designs
// at 0.5-0.8 are competent; above 0.8, believable.
type Maturity int

// Maturity levels.
const (
	MaturityStudentLike Maturity = iota + 1
	MaturityCompetent
	MaturityBelievable
)

// String implements fmt.Stringer.
func (m Maturity) String() string {
	switch m {
	case MaturityStudentLike:
		return "student-like (pre-training)"
	case MaturityCompetent:
		return "competent"
	case MaturityBelievable:
		return "believable"
	default:
		return fmt.Sprintf("Maturity(%d)", int(m))
	}
}

// Assess classifies the review.
func (r DesignReview) Assess() Maturity {
	switch s := r.Score(); {
	case s < 0.5:
		return MaturityStudentLike
	case s < 0.8:
		return MaturityCompetent
	default:
		return MaturityBelievable
	}
}

// Figure4StudentDesign is the review the paper implies for the typical early
// student submission: a simplified high-level sketch with missing
// interconnections, no layering or packaging, undescribed components, and
// text "difficult to read, as designed by the student."
func Figure4StudentDesign() DesignReview {
	return DesignReview{
		BelievableDescription: 0.3,
		Interconnections:      0.1,
		Layering:              0.0,
		Packaging:             0.0,
		ComponentDescriptions: 0.2,
		VisualClarity:         0.1,
	}
}
