package core

import "fmt"

// Category groups principles and challenges (Tables 2 and 3).
type Category int

// The four categories of the framework.
const (
	CategoryHighest Category = iota + 1
	CategorySystems
	CategoryPeopleware
	CategoryMethodology
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CategoryHighest:
		return "highest principle"
	case CategorySystems:
		return "systems"
	case CategoryPeopleware:
		return "peopleware"
	case CategoryMethodology:
		return "methodology"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Principle is one of the eight core principles of MCS design (Table 2).
type Principle struct {
	Index    int // P1..P8
	Category Category
	Key      string
	Text     string
}

// Principles returns the Table 2 catalog.
func Principles() []Principle {
	return []Principle{
		{1, CategoryHighest, "design of design", "Design needs design."},
		{2, CategorySystems, "age of distributed ecosystems", "This is the Age of Distributed Ecosystems."},
		{3, CategorySystems, "NFRs, phenomena", "Dynamic non-functional properties and phenomena are first-class concerns."},
		{4, CategorySystems, "RM&S, self-awareness", "Resource Management and Scheduling, and its interplay with various sources of information to achieve local and global Self-Awareness, are key concerns."},
		{5, CategoryPeopleware, "education in design", "Education practices for MCS must ensure the competence and integrity needed for experimenting, creating, and operating ecosystems."},
		{6, CategoryPeopleware, "pragmatic, innovative, ethical", "Design communities can foster and curate pragmatic, innovative, and ethical design practices."},
		{7, CategoryMethodology, "design science, practice, culture", "We understand and create together a science, practice, and culture of MCS design."},
		{8, CategoryMethodology, "evolution and emergence", "We are aware of the history and evolution of MCS designs, key debates, and evolving patterns."},
	}
}

// Challenge is one of the ten challenges of MCS design (Table 3).
type Challenge struct {
	Index      int // C1..C10
	Category   Category
	Key        string
	Principles []int // supporting principles (Table 3 "Pr." column)
}

// Challenges returns the Table 3 catalog.
func Challenges() []Challenge {
	return []Challenge{
		{1, CategoryHighest, "Design of design", []int{1}},
		{2, CategoryHighest, "What is good design?", []int{1}},
		{3, CategoryHighest, "Design space exploration", []int{1}},
		{4, CategorySystems, "Design for ecosystems", []int{2}},
		{5, CategorySystems, "Catalog for MCS design", []int{3, 4}},
		{6, CategoryPeopleware, "Education, curriculum", []int{5}},
		{7, CategoryPeopleware, "Community engagement", []int{6}},
		{8, CategoryMethodology, "Documenting designs", []int{5, 6, 7}},
		{9, CategoryMethodology, "Design in practice", []int{7}},
		{10, CategoryMethodology, "Organizational similarity", []int{7}},
	}
}

// ValidateCatalog cross-checks that every challenge references existing
// principles and that categories partition the catalogs as in the paper.
func ValidateCatalog() error {
	byIndex := map[int]Principle{}
	for _, p := range Principles() {
		if _, dup := byIndex[p.Index]; dup {
			return fmt.Errorf("core: duplicate principle P%d", p.Index)
		}
		byIndex[p.Index] = p
	}
	if len(byIndex) != 8 {
		return fmt.Errorf("core: %d principles, want 8", len(byIndex))
	}
	seen := map[int]bool{}
	for _, c := range Challenges() {
		if seen[c.Index] {
			return fmt.Errorf("core: duplicate challenge C%d", c.Index)
		}
		seen[c.Index] = true
		if len(c.Principles) == 0 {
			return fmt.Errorf("core: challenge C%d cites no principle", c.Index)
		}
		for _, pi := range c.Principles {
			if _, ok := byIndex[pi]; !ok {
				return fmt.Errorf("core: challenge C%d cites missing principle P%d", c.Index, pi)
			}
		}
	}
	if len(seen) != 10 {
		return fmt.Errorf("core: %d challenges, want 10", len(seen))
	}
	return nil
}

// ProblemArchetype is one of the five problem kinds of §3.4.
type ProblemArchetype struct {
	Index int // P1..P5 (problem numbering, distinct from principles)
	Key   string
	Text  string
}

// ProblemArchetypes returns the §3.4 problem catalog.
func ProblemArchetypes() []ProblemArchetype {
	return []ProblemArchetype{
		{1, "ecosystem life-cycle", "problems in ecosystem life-cycle, for new and emerging processes, services, and ecosystems"},
		{2, "needs and phenomena", "problems of new and emerging needs of ecosystem-clients and -operators, and of newly discovered, emerging, and recurring phenomena"},
		{3, "legacy", "problems of leveraging and maintaining legacy components"},
		{4, "morphology", "problems of understanding how technology actually works in practice and in ecosystems (science as finder of phenomena)"},
		{5, "unexplored space", "problems of previously unexplored parts of the design space (abstraction for its own sake)"},
	}
}

// ProblemSource is one of the three §3.4 sources for finding problems.
type ProblemSource struct {
	Index int // S1..S3
	Text  string
}

// ProblemSources returns the §3.4 source catalog.
func ProblemSources() []ProblemSource {
	return []ProblemSource{
		{1, "peer-reviewed qualitative and quantitative studies of ecosystems and their systems"},
		{2, "discussion with experts and analysis of best practices (reports, blogs, books)"},
		{3, "own thought and lab experiments on technology trends and limitations"},
	}
}

// ProblemKind classifies a design problem's structure (§2.4).
type ProblemKind int

// Problem kinds: well-structured, ill-structured, wicked.
const (
	WellStructured ProblemKind = iota + 1
	IllStructured
	Wicked
)

// String implements fmt.Stringer.
func (k ProblemKind) String() string {
	switch k {
	case WellStructured:
		return "well-structured"
	case IllStructured:
		return "ill-structured"
	case Wicked:
		return "wicked"
	default:
		return fmt.Sprintf("ProblemKind(%d)", int(k))
	}
}

// ProblemTraits are the five Simon characteristics of well-structured
// problems (§2.4) plus the wickedness markers.
type ProblemTraits struct {
	AutomaticEvaluation  bool // a criterion to evaluate the result
	UnambiguousStates    bool // representation of goal/start/transitions
	CompleteKnowledge    bool // all domain knowledge representable
	AccurateNatureModel  bool // system-nature interaction capturable
	Tractable            bool
	CompetingStakeholder bool // wickedness: stakeholders with competing views
	NoFinalFormulation   bool // wickedness: no clear and final formulation
}

// ClassifyProblem maps traits to a problem kind: any wickedness marker makes
// the problem wicked; missing any Simon characteristic makes it
// ill-structured; otherwise it is well-structured.
func ClassifyProblem(t ProblemTraits) ProblemKind {
	if t.CompetingStakeholder || t.NoFinalFormulation {
		return Wicked
	}
	if !t.AutomaticEvaluation || !t.UnambiguousStates || !t.CompleteKnowledge ||
		!t.AccurateNatureModel || !t.Tractable {
		return IllStructured
	}
	return WellStructured
}

// CreativityLevel is an Altshuller level of design (§5.1, C2).
type CreativityLevel int

// The five Altshuller levels.
const (
	TrivialDesign CreativityLevel = iota + 1
	NormalDesign
	NovelDesign
	FundamentalDesign
	OutstandingDesign
)

// String implements fmt.Stringer.
func (l CreativityLevel) String() string {
	switch l {
	case TrivialDesign:
		return "trivial (minimal local adaptation)"
	case NormalDesign:
		return "normal (selection + reasoned adaptation)"
	case NovelDesign:
		return "novel (significant adaptation)"
	case FundamentalDesign:
		return "fundamental (new design or complete adaptation)"
	case OutstandingDesign:
		return "outstanding (new ecosystem, major advance)"
	default:
		return fmt.Sprintf("CreativityLevel(%d)", int(l))
	}
}

// AssessCreativity maps the observable properties of a design to an
// Altshuller level: how much of the design is newly created versus adapted,
// and whether it opened a new ecosystem.
func AssessCreativity(adaptedShare, newShare float64, opensEcosystem bool) (CreativityLevel, error) {
	if adaptedShare < 0 || newShare < 0 || adaptedShare+newShare > 1.000001 {
		return 0, fmt.Errorf("core: invalid shares adapted=%v new=%v", adaptedShare, newShare)
	}
	switch {
	case opensEcosystem:
		return OutstandingDesign, nil
	case newShare >= 0.5:
		return FundamentalDesign, nil
	case adaptedShare+newShare >= 0.5:
		return NovelDesign, nil
	case adaptedShare+newShare >= 0.1:
		return NormalDesign, nil
	default:
		return TrivialDesign, nil
	}
}

// FrameworkOverview is the Table 1 summary of the framework.
type FrameworkOverview struct {
	Stakeholders   []string
	CentralPremise string
	Focus          []string
	Concerns       []string
	Thinking       []string
	Processes      []string
}

// Overview returns the Table 1 content.
func Overview() FrameworkOverview {
	return FrameworkOverview{
		Stakeholders:   []string{"designers", "scientists", "engineers", "students", "society"},
		CentralPremise: "design is an intellectual activity different from science and engineering",
		Focus:          []string{"ecosystems", "systems within ecosystems", "structure, organization, dynamics"},
		Concerns:       []string{"functional properties", "non-functional properties", "phenomena", "evolution"},
		Thinking:       []string{"abductive thinking", "processes", "co-evolving problem-solution"},
		Processes:      []string{"design-space exploration", "problem-finding", "problem-solving", "reporting"},
	}
}
