// Package core formalizes the ATLARGE design framework — the paper's primary
// contribution: the Dorst reasoning model extended with unreasoning
// (Figure 5), the framework overview (Table 1), the eight core principles of
// MCS design (Table 2), the ten challenges (Table 3), the problem-finding
// catalog (§3.4), the Basic Design Cycle and hierarchical Overall Process
// with skippable stages and five stopping criteria (§3.5, Figure 8), the
// dissemination processes (§3.6), and the Altshuller creativity levels used
// to assess designs (§5.1).
package core

import "fmt"

// Element is one of the three slots of the Dorst reasoning equation:
// What (concepts, objects, people) + How (relationships, laws, patterns)
// leads to Outcome (observed phenomenon).
type Element int

// The three reasoning elements.
const (
	ElementWhat Element = iota + 1
	ElementHow
	ElementOutcome
)

// String implements fmt.Stringer.
func (e Element) String() string {
	switch e {
	case ElementWhat:
		return "What"
	case ElementHow:
		return "How"
	case ElementOutcome:
		return "Outcome"
	default:
		return fmt.Sprintf("Element(%d)", int(e))
	}
}

// ReasoningMode is a row of the Figure 5 model.
type ReasoningMode int

// The five reasoning modes; DesignAbduction is design, Unreasoning is the
// paper's extension ("facts don't matter").
const (
	Deduction ReasoningMode = iota + 1
	Induction
	NormalAbduction
	DesignAbduction
	Unreasoning
)

// String implements fmt.Stringer.
func (m ReasoningMode) String() string {
	switch m {
	case Deduction:
		return "deduction"
	case Induction:
		return "induction"
	case NormalAbduction:
		return "abduction (problem solving)"
	case DesignAbduction:
		return "abduction (design)"
	case Unreasoning:
		return "unreasoning"
	default:
		return fmt.Sprintf("ReasoningMode(%d)", int(m))
	}
}

// Knowns returns the elements given (known) in the mode's equation.
func (m ReasoningMode) Knowns() []Element {
	switch m {
	case Deduction:
		return []Element{ElementWhat, ElementHow}
	case Induction:
		return []Element{ElementWhat, ElementOutcome}
	case NormalAbduction:
		return []Element{ElementHow, ElementOutcome}
	case DesignAbduction:
		return []Element{ElementOutcome}
	case Unreasoning:
		return nil
	default:
		return nil
	}
}

// Unknowns returns the elements the mode must produce.
func (m ReasoningMode) Unknowns() []Element {
	known := map[Element]bool{}
	for _, e := range m.Knowns() {
		known[e] = true
	}
	var out []Element
	for _, e := range []Element{ElementWhat, ElementHow, ElementOutcome} {
		if !known[e] {
			out = append(out, e)
		}
	}
	return out
}

// Classify returns the reasoning mode that matches the given knowledge
// state. Design abduction is the mode of knowing only the desired outcome.
func Classify(knowWhat, knowHow, knowOutcome bool) ReasoningMode {
	switch {
	case knowWhat && knowHow && !knowOutcome:
		return Deduction
	case knowWhat && !knowHow && knowOutcome:
		return Induction
	case !knowWhat && knowHow && knowOutcome:
		return NormalAbduction
	case !knowWhat && !knowHow && knowOutcome:
		return DesignAbduction
	default:
		// Everything known (nothing to reason about) or nothing known.
		return Unreasoning
	}
}

// IsDesign reports whether the mode is the designerly one.
func (m ReasoningMode) IsDesign() bool { return m == DesignAbduction }
