package core

import "fmt"

// Stage is one of the eight elements of the Basic Design Cycle (Figure 8).
type Stage int

// The BDC stages, in traversal order.
const (
	StageFormulateRequirements Stage = iota + 1
	StageUnderstandAlternatives
	StageBootstrapCreative
	StageDesign // high-level and low-level design
	StageImplementation
	StageConceptualAnalysis
	StageExperimentalAnalysis
	StageReporting
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageFormulateRequirements:
		return "formulate requirements"
	case StageUnderstandAlternatives:
		return "understand the alternatives"
	case StageBootstrapCreative:
		return "bootstrap the creative process"
	case StageDesign:
		return "high-level and low-level design"
	case StageImplementation:
		return "implementation to analyze the design"
	case StageConceptualAnalysis:
		return "conceptual analysis"
	case StageExperimentalAnalysis:
		return "experimental analysis"
	case StageReporting:
		return "reporting, engineering, public dissemination"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Stages returns all stages in traversal order.
func Stages() []Stage {
	return []Stage{
		StageFormulateRequirements, StageUnderstandAlternatives,
		StageBootstrapCreative, StageDesign, StageImplementation,
		StageConceptualAnalysis, StageExperimentalAnalysis, StageReporting,
	}
}

// Artifact is a produced design (or analysis result) with its evaluation.
type Artifact struct {
	Name string
	// Score is the design's quality under the problem's criteria
	// (higher is better).
	Score float64
	// Satisficing marks a "good enough" design (Simon's satisficing).
	Satisficing bool
}

// Context is the shared state of one design process run.
type Context struct {
	Iteration int
	Solutions []Artifact
	Failures  int
	// State is scratch space for stage functions.
	State map[string]any
}

// AddSolution records a produced design; non-satisficing artifacts count as
// failures (the X boxes of Figure 7).
func (c *Context) AddSolution(a Artifact) {
	if a.Satisficing {
		c.Solutions = append(c.Solutions, a)
	} else {
		c.Failures++
	}
}

// Satisficing returns the satisficing solutions found so far.
func (c *Context) Satisficing() []Artifact { return c.Solutions }

// StageFunc executes one BDC stage.
type StageFunc func(ctx *Context) error

// StopReason explains why a cycle ended (§3.5 stopping criteria 1–5).
type StopReason int

// The five stopping criteria.
const (
	StopSatisficed StopReason = iota + 1 // one good-enough answer
	StopPortfolio                        // a few answers for a human reviewer
	StopSystematic                       // many answers for an expert/system
	StopExhausted                        // the whole design space covered
	StopBudget                           // out of time or other resources
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case StopSatisficed:
		return "satisficed (single answer)"
	case StopPortfolio:
		return "portfolio (a few answers)"
	case StopSystematic:
		return "systematic (many answers)"
	case StopExhausted:
		return "design space exhausted"
	case StopBudget:
		return "budget exhausted"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// StoppingCriteria configures when a cycle stops. The first satisfied
// criterion (in the paper's order) wins. MaxIterations is mandatory — the
// BDC does not guarantee success and must bound its budget.
type StoppingCriteria struct {
	// SatisficeAfter stops once at least this many satisficing solutions
	// exist (criterion 1 when 1, disabled when 0).
	SatisficeAfter int
	// PortfolioSize stops once a portfolio of this many solutions exists
	// (criterion 2, disabled when 0).
	PortfolioSize int
	// SystematicSize stops at a systematic set (criterion 3, disabled 0).
	SystematicSize int
	// SpaceExhausted reports design-space exhaustion (criterion 4).
	SpaceExhausted func(ctx *Context) bool
	// MaxIterations is the budget (criterion 5); must be positive.
	MaxIterations int
}

// evaluate returns the stop reason, or 0 to continue.
func (sc StoppingCriteria) evaluate(ctx *Context) StopReason {
	n := len(ctx.Solutions)
	switch {
	case sc.SatisficeAfter > 0 && n >= sc.SatisficeAfter && sc.PortfolioSize == 0 && sc.SystematicSize == 0:
		return StopSatisficed
	case sc.PortfolioSize > 0 && n >= sc.PortfolioSize:
		return StopPortfolio
	case sc.SystematicSize > 0 && n >= sc.SystematicSize:
		return StopSystematic
	case sc.SpaceExhausted != nil && sc.SpaceExhausted(ctx):
		return StopExhausted
	case ctx.Iteration >= sc.MaxIterations:
		return StopBudget
	default:
		return 0
	}
}

// IterationRecord traces one iteration of the cycle.
type IterationRecord struct {
	Iteration int
	Executed  []Stage
	Skipped   []Stage
	// NewSolutions and NewFailures produced this iteration.
	NewSolutions int
	NewFailures  int
}

// Trace is the full record of a cycle run — the provenance the paper's
// challenge C8 (documenting designs) asks for.
type Trace struct {
	Name       string
	Iterations []IterationRecord
	Stop       StopReason
	Solutions  []Artifact
	Failures   int
}

// Cycle is an executable Basic Design Cycle. Stages without a StageFunc are
// skipped — the Overall Process explicitly allows skipping any stage in any
// iteration (§3.5); SkipPolicy can additionally skip per iteration.
type Cycle struct {
	Name   string
	Stages map[Stage]StageFunc
	// Sub expands a stage into a nested BDC (the hierarchical OP): the
	// sub-cycle runs each time the stage executes, sharing the Context.
	Sub map[Stage]*Cycle
	// SkipPolicy, when set, skips stage s at iteration i when returning
	// true.
	SkipPolicy func(iteration int, s Stage) bool
	Stop       StoppingCriteria
}

// Run executes the cycle to a stopping criterion.
func (cy *Cycle) Run(ctx *Context) (*Trace, error) {
	if cy.Stop.MaxIterations <= 0 {
		return nil, fmt.Errorf("core: cycle %q needs MaxIterations (criterion 5)", cy.Name)
	}
	if ctx == nil {
		ctx = &Context{State: make(map[string]any)}
	}
	if ctx.State == nil {
		ctx.State = make(map[string]any)
	}
	tr := &Trace{Name: cy.Name}
	for {
		ctx.Iteration++
		rec := IterationRecord{Iteration: ctx.Iteration}
		preSolutions, preFailures := len(ctx.Solutions), ctx.Failures
		for _, s := range Stages() {
			fn := cy.Stages[s]
			skip := fn == nil || (cy.SkipPolicy != nil && cy.SkipPolicy(ctx.Iteration, s))
			if skip {
				rec.Skipped = append(rec.Skipped, s)
				continue
			}
			if err := fn(ctx); err != nil {
				return nil, fmt.Errorf("core: cycle %q stage %q: %w", cy.Name, s, err)
			}
			if sub := cy.Sub[s]; sub != nil {
				subTrace, err := sub.Run(&Context{State: ctx.State, Iteration: 0})
				if err != nil {
					return nil, fmt.Errorf("core: cycle %q sub-cycle at %q: %w", cy.Name, s, err)
				}
				for _, a := range subTrace.Solutions {
					ctx.AddSolution(a)
				}
				ctx.Failures += subTrace.Failures
			}
			rec.Executed = append(rec.Executed, s)
		}
		rec.NewSolutions = len(ctx.Solutions) - preSolutions
		rec.NewFailures = ctx.Failures - preFailures
		tr.Iterations = append(tr.Iterations, rec)
		if reason := cy.Stop.evaluate(ctx); reason != 0 {
			tr.Stop = reason
			break
		}
	}
	tr.Solutions = append([]Artifact(nil), ctx.Solutions...)
	tr.Failures = ctx.Failures
	return tr, nil
}

// DisseminationKind is a §3.6 output channel.
type DisseminationKind int

// The three dissemination channels.
const (
	DisseminateArticle  DisseminationKind = iota + 1
	DisseminateSoftware                   // FOSS
	DisseminateData                       // FAIR / FOAD
)

// String implements fmt.Stringer.
func (k DisseminationKind) String() string {
	switch k {
	case DisseminateArticle:
		return "peer-reviewed article"
	case DisseminateSoftware:
		return "free open-access software"
	case DisseminateData:
		return "FAIR/free open-access data"
	default:
		return fmt.Sprintf("DisseminationKind(%d)", int(k))
	}
}

// FAIRChecklist is the Wilkinson et al. FAIR criteria for data artifacts.
type FAIRChecklist struct {
	Findable      bool
	Accessible    bool
	Interoperable bool
	Reusable      bool
}

// Complete reports whether all four criteria hold.
func (c FAIRChecklist) Complete() bool {
	return c.Findable && c.Accessible && c.Interoperable && c.Reusable
}

// Missing lists unmet criteria.
func (c FAIRChecklist) Missing() []string {
	var out []string
	if !c.Findable {
		out = append(out, "findable")
	}
	if !c.Accessible {
		out = append(out, "accessible")
	}
	if !c.Interoperable {
		out = append(out, "interoperable")
	}
	if !c.Reusable {
		out = append(out, "reusable")
	}
	return out
}

// NewDisseminationCycle builds the mini-BDC of §3.6 for one channel: smaller
// versions of the framework itself, with the design and analysis stages
// wired to the produce/review functions.
func NewDisseminationCycle(kind DisseminationKind, produce, review StageFunc, budget int) *Cycle {
	return &Cycle{
		Name: kind.String(),
		Stages: map[Stage]StageFunc{
			StageFormulateRequirements: func(*Context) error { return nil },
			StageDesign:                produce,
			StageExperimentalAnalysis:  review,
		},
		Stop: StoppingCriteria{SatisficeAfter: 1, MaxIterations: budget},
	}
}
