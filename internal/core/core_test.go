package core

import (
	"errors"
	"testing"
)

func TestReasoningModeKnownsUnknowns(t *testing.T) {
	tests := []struct {
		mode         ReasoningMode
		knowns       int
		unknownFirst Element
	}{
		{Deduction, 2, ElementOutcome},
		{Induction, 2, ElementHow},
		{NormalAbduction, 2, ElementWhat},
		{DesignAbduction, 1, ElementWhat},
		{Unreasoning, 0, ElementWhat},
	}
	for _, tt := range tests {
		t.Run(tt.mode.String(), func(t *testing.T) {
			if got := len(tt.mode.Knowns()); got != tt.knowns {
				t.Errorf("knowns = %d, want %d", got, tt.knowns)
			}
			unknowns := tt.mode.Unknowns()
			if len(unknowns)+len(tt.mode.Knowns()) != 3 {
				t.Errorf("knowns+unknowns != 3")
			}
			if len(unknowns) > 0 && unknowns[0] != tt.unknownFirst {
				t.Errorf("first unknown = %v, want %v", unknowns[0], tt.unknownFirst)
			}
		})
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		what, how, outcome bool
		want               ReasoningMode
	}{
		{true, true, false, Deduction},
		{true, false, true, Induction},
		{false, true, true, NormalAbduction},
		{false, false, true, DesignAbduction},
		{false, false, false, Unreasoning},
		{true, true, true, Unreasoning},
	}
	for _, tt := range tests {
		if got := Classify(tt.what, tt.how, tt.outcome); got != tt.want {
			t.Errorf("Classify(%v,%v,%v) = %v, want %v", tt.what, tt.how, tt.outcome, got, tt.want)
		}
	}
	if !DesignAbduction.IsDesign() || Deduction.IsDesign() {
		t.Error("IsDesign wrong")
	}
}

func TestCatalogsMatchPaper(t *testing.T) {
	if err := ValidateCatalog(); err != nil {
		t.Fatal(err)
	}
	ps := Principles()
	if len(ps) != 8 {
		t.Fatalf("principles = %d", len(ps))
	}
	// Category partition per Table 2: P1 highest, P2-4 systems, P5-6
	// peopleware, P7-8 methodology.
	wantCat := map[int]Category{
		1: CategoryHighest, 2: CategorySystems, 3: CategorySystems,
		4: CategorySystems, 5: CategoryPeopleware, 6: CategoryPeopleware,
		7: CategoryMethodology, 8: CategoryMethodology,
	}
	for _, p := range ps {
		if p.Category != wantCat[p.Index] {
			t.Errorf("P%d category = %v, want %v", p.Index, p.Category, wantCat[p.Index])
		}
		if p.Text == "" || p.Key == "" {
			t.Errorf("P%d incomplete", p.Index)
		}
	}
	cs := Challenges()
	if len(cs) != 10 {
		t.Fatalf("challenges = %d", len(cs))
	}
	// C5 cites P3-4, C8 cites P5-7 (Table 3).
	for _, c := range cs {
		if c.Index == 5 && len(c.Principles) != 2 {
			t.Errorf("C5 cites %v", c.Principles)
		}
		if c.Index == 8 && len(c.Principles) != 3 {
			t.Errorf("C8 cites %v", c.Principles)
		}
	}
}

func TestProblemCatalogs(t *testing.T) {
	if got := len(ProblemArchetypes()); got != 5 {
		t.Errorf("archetypes = %d, want 5", got)
	}
	if got := len(ProblemSources()); got != 3 {
		t.Errorf("sources = %d, want 3", got)
	}
}

func TestClassifyProblem(t *testing.T) {
	well := ProblemTraits{
		AutomaticEvaluation: true, UnambiguousStates: true,
		CompleteKnowledge: true, AccurateNatureModel: true, Tractable: true,
	}
	if got := ClassifyProblem(well); got != WellStructured {
		t.Errorf("well-structured = %v", got)
	}
	ill := well
	ill.CompleteKnowledge = false
	if got := ClassifyProblem(ill); got != IllStructured {
		t.Errorf("ill-structured = %v", got)
	}
	wicked := well
	wicked.CompetingStakeholder = true
	if got := ClassifyProblem(wicked); got != Wicked {
		t.Errorf("wicked = %v", got)
	}
	// Wickedness dominates missing traits.
	both := ill
	both.NoFinalFormulation = true
	if got := ClassifyProblem(both); got != Wicked {
		t.Errorf("wicked+ill = %v", got)
	}
}

func TestAssessCreativity(t *testing.T) {
	tests := []struct {
		adapted, new float64
		ecosystem    bool
		want         CreativityLevel
	}{
		{0.02, 0, false, TrivialDesign},
		{0.3, 0, false, NormalDesign},
		{0.5, 0.1, false, NovelDesign},
		{0.2, 0.6, false, FundamentalDesign},
		{0, 0, true, OutstandingDesign},
	}
	for _, tt := range tests {
		got, err := AssessCreativity(tt.adapted, tt.new, tt.ecosystem)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("AssessCreativity(%v,%v,%v) = %v, want %v",
				tt.adapted, tt.new, tt.ecosystem, got, tt.want)
		}
	}
	if _, err := AssessCreativity(0.8, 0.5, false); err == nil {
		t.Error("over-1 shares accepted")
	}
	if _, err := AssessCreativity(-0.1, 0, false); err == nil {
		t.Error("negative share accepted")
	}
}

func TestOverviewComplete(t *testing.T) {
	ov := Overview()
	if len(ov.Stakeholders) != 5 {
		t.Errorf("stakeholders = %d, want 5 (Table 1)", len(ov.Stakeholders))
	}
	if ov.CentralPremise == "" || len(ov.Processes) != 4 {
		t.Errorf("overview incomplete: %+v", ov)
	}
}

func TestCycleRequiresBudget(t *testing.T) {
	cy := &Cycle{Name: "x"}
	if _, err := cy.Run(nil); err == nil {
		t.Error("cycle without MaxIterations accepted")
	}
}

func TestCycleStopsOnSatisfice(t *testing.T) {
	attempts := 0
	cy := &Cycle{
		Name: "satisfice",
		Stages: map[Stage]StageFunc{
			StageDesign: func(ctx *Context) error {
				attempts++
				ctx.AddSolution(Artifact{Name: "d", Score: 1, Satisficing: attempts >= 3})
				return nil
			},
		},
		Stop: StoppingCriteria{SatisficeAfter: 1, MaxIterations: 100},
	}
	tr, err := cy.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stop != StopSatisficed {
		t.Errorf("stop = %v, want satisficed", tr.Stop)
	}
	if len(tr.Iterations) != 3 {
		t.Errorf("iterations = %d, want 3", len(tr.Iterations))
	}
	if tr.Failures != 2 {
		t.Errorf("failures = %d, want 2", tr.Failures)
	}
}

func TestCycleStopsOnBudget(t *testing.T) {
	cy := &Cycle{
		Name: "hopeless",
		Stages: map[Stage]StageFunc{
			StageDesign: func(ctx *Context) error {
				ctx.AddSolution(Artifact{Name: "bad"})
				return nil
			},
		},
		Stop: StoppingCriteria{SatisficeAfter: 1, MaxIterations: 5},
	}
	tr, err := cy.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stop != StopBudget {
		t.Errorf("stop = %v, want budget (BDC does not guarantee success)", tr.Stop)
	}
	if len(tr.Iterations) != 5 {
		t.Errorf("iterations = %d", len(tr.Iterations))
	}
}

func TestCyclePortfolioAndSystematic(t *testing.T) {
	mk := func(stop StoppingCriteria) *Trace {
		cy := &Cycle{
			Name: "many",
			Stages: map[Stage]StageFunc{
				StageDesign: func(ctx *Context) error {
					ctx.AddSolution(Artifact{Name: "ok", Satisficing: true})
					return nil
				},
			},
			Stop: stop,
		}
		tr, err := cy.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tr := mk(StoppingCriteria{PortfolioSize: 3, MaxIterations: 100})
	if tr.Stop != StopPortfolio || len(tr.Solutions) != 3 {
		t.Errorf("portfolio stop = %v with %d solutions", tr.Stop, len(tr.Solutions))
	}
	tr = mk(StoppingCriteria{SystematicSize: 7, MaxIterations: 100})
	if tr.Stop != StopSystematic || len(tr.Solutions) != 7 {
		t.Errorf("systematic stop = %v with %d solutions", tr.Stop, len(tr.Solutions))
	}
}

func TestCycleSpaceExhaustion(t *testing.T) {
	cy := &Cycle{
		Name:   "exhaust",
		Stages: map[Stage]StageFunc{StageDesign: func(*Context) error { return nil }},
		Stop: StoppingCriteria{
			SpaceExhausted: func(ctx *Context) bool { return ctx.Iteration >= 4 },
			MaxIterations:  100,
		},
	}
	tr, err := cy.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stop != StopExhausted {
		t.Errorf("stop = %v, want exhausted", tr.Stop)
	}
}

func TestCycleSkipsMissingStagesAndPolicy(t *testing.T) {
	var executed []Stage
	cy := &Cycle{
		Name: "skippy",
		Stages: map[Stage]StageFunc{
			StageFormulateRequirements: func(*Context) error { executed = append(executed, StageFormulateRequirements); return nil },
			StageDesign:                func(*Context) error { executed = append(executed, StageDesign); return nil },
			StageReporting:             func(*Context) error { executed = append(executed, StageReporting); return nil },
		},
		SkipPolicy: func(iter int, s Stage) bool {
			// Skip requirements after the first iteration (the OP tailors
			// iterations to the remaining problem).
			return iter > 1 && s == StageFormulateRequirements
		},
		Stop: StoppingCriteria{MaxIterations: 2},
	}
	tr, err := cy.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Iterations) != 2 {
		t.Fatalf("iterations = %d", len(tr.Iterations))
	}
	it1, it2 := tr.Iterations[0], tr.Iterations[1]
	if len(it1.Executed) != 3 || len(it2.Executed) != 2 {
		t.Errorf("executed %d then %d stages, want 3 then 2", len(it1.Executed), len(it2.Executed))
	}
	if len(it1.Skipped) != 5 || len(it2.Skipped) != 6 {
		t.Errorf("skipped %d then %d stages, want 5 then 6", len(it1.Skipped), len(it2.Skipped))
	}
}

func TestCycleStageErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	cy := &Cycle{
		Name:   "err",
		Stages: map[Stage]StageFunc{StageDesign: func(*Context) error { return boom }},
		Stop:   StoppingCriteria{MaxIterations: 1},
	}
	if _, err := cy.Run(nil); !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestHierarchicalSubCycle(t *testing.T) {
	sub := &Cycle{
		Name: "prototype",
		Stages: map[Stage]StageFunc{
			StageImplementation: func(ctx *Context) error {
				ctx.AddSolution(Artifact{Name: "proto", Satisficing: true})
				return nil
			},
		},
		Stop: StoppingCriteria{SatisficeAfter: 1, MaxIterations: 3},
	}
	outer := &Cycle{
		Name: "overall",
		Stages: map[Stage]StageFunc{
			StageImplementation: func(*Context) error { return nil },
		},
		Sub:  map[Stage]*Cycle{StageImplementation: sub},
		Stop: StoppingCriteria{SatisficeAfter: 1, MaxIterations: 2},
	}
	tr, err := outer.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Solutions) == 0 {
		t.Error("sub-cycle solutions not propagated")
	}
	if tr.Stop != StopSatisficed {
		t.Errorf("stop = %v", tr.Stop)
	}
}

func TestDisseminationCycle(t *testing.T) {
	drafts := 0
	cy := NewDisseminationCycle(DisseminateArticle,
		func(ctx *Context) error {
			drafts++
			ctx.AddSolution(Artifact{Name: "draft", Satisficing: drafts >= 2})
			return nil
		},
		func(*Context) error { return nil },
		10,
	)
	tr, err := cy.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stop != StopSatisficed || drafts != 2 {
		t.Errorf("dissemination stop = %v after %d drafts", tr.Stop, drafts)
	}
	if DisseminateData.String() == "" || DisseminateSoftware.String() == "" {
		t.Error("kind strings empty")
	}
}

func TestFAIRChecklist(t *testing.T) {
	full := FAIRChecklist{Findable: true, Accessible: true, Interoperable: true, Reusable: true}
	if !full.Complete() || len(full.Missing()) != 0 {
		t.Error("complete checklist misreported")
	}
	partial := FAIRChecklist{Findable: true}
	if partial.Complete() {
		t.Error("partial checklist complete")
	}
	if got := partial.Missing(); len(got) != 3 {
		t.Errorf("missing = %v", got)
	}
}

func TestStageAndStopStrings(t *testing.T) {
	if len(Stages()) != 8 {
		t.Fatal("stages != 8")
	}
	for _, s := range Stages() {
		if s.String() == "" {
			t.Errorf("stage %d has empty name", s)
		}
	}
	for _, r := range []StopReason{StopSatisficed, StopPortfolio, StopSystematic, StopExhausted, StopBudget} {
		if r.String() == "" {
			t.Errorf("reason %d empty", r)
		}
	}
}
