package p2p

import (
	"math/rand"
	"testing"

	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

func TestNewSwarmValidation(t *testing.T) {
	if _, err := NewSwarm(SwarmConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := DefaultSwarmConfig()
	cfg.Classes = nil
	if _, err := NewSwarm(cfg); err == nil {
		t.Error("no classes accepted")
	}
}

func TestSwarmCompletesDownloads(t *testing.T) {
	cfg := DefaultSwarmConfig()
	cfg.FileSize = 10e6
	cfg.Seed = 1
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arr := workload.PoissonArrivals{Rate: 0.05}
	sw.ScheduleArrivals(arr.Times(30, rand.New(rand.NewSource(1))))
	if err := sw.Run(100000, 10); err != nil {
		t.Fatal(err)
	}
	recs := sw.Records()
	if len(recs) < 25 {
		t.Fatalf("only %d/30 downloads completed", len(recs))
	}
	for _, r := range recs {
		if r.Duration <= 0 {
			t.Errorf("peer %d duration %v", r.PeerID, r.Duration)
		}
		if r.DoneAt <= r.JoinAt {
			t.Errorf("peer %d done %v before join %v", r.PeerID, r.DoneAt, r.JoinAt)
		}
	}
}

func TestSwarmDownloadBoundedByCapacity(t *testing.T) {
	// A single peer served by one seed: duration >= size / min(down, seedUp).
	cfg := DefaultSwarmConfig()
	cfg.FileSize = 50e6
	cfg.Seed = 2
	cfg.Classes = []PeerClass{{Name: "only", Down: 1000e3, Up: 100e3, LingerS: 10, Fraction: 1}}
	cfg.SeedUp = 500e3
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw.ScheduleArrivals([]sim.Time{0})
	if err := sw.Run(500000, 10); err != nil {
		t.Fatal(err)
	}
	recs := sw.Records()
	if len(recs) != 1 {
		t.Fatalf("completed %d downloads, want 1", len(recs))
	}
	minDur := 50e6 / 500e3 // bounded by the seed's upload
	if recs[0].Duration < minDur*0.99 {
		t.Errorf("duration %v faster than capacity bound %v", recs[0].Duration, minDur)
	}
}

func TestSwarmDeterminism(t *testing.T) {
	run := func() int {
		cfg := DefaultSwarmConfig()
		cfg.FileSize = 20e6
		cfg.Seed = 7
		sw, err := NewSwarm(cfg)
		if err != nil {
			t.Fatal(err)
		}
		arr := workload.PoissonArrivals{Rate: 0.02}
		sw.ScheduleArrivals(arr.Times(20, rand.New(rand.NewSource(7))))
		if err := sw.Run(200000, 10); err != nil {
			t.Fatal(err)
		}
		return len(sw.Records())
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %d vs %d records", a, b)
	}
}

func TestTwoFastHelpersDoNotDownload(t *testing.T) {
	cfg := DefaultSwarmConfig()
	cfg.FileSize = 10e6
	cfg.Seed = 3
	cfg.TwoFastGroupSize = 3
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw.ScheduleArrivals([]sim.Time{0, 100})
	if err := sw.Run(100000, 10); err != nil {
		t.Fatal(err)
	}
	// Two groups of 3 -> exactly 2 collector downloads.
	if got := len(sw.Records()); got != 2 {
		t.Errorf("records = %d, want 2 (collectors only)", got)
	}
	for _, r := range sw.Records() {
		if r.Group == 0 {
			t.Error("record missing group id")
		}
	}
}

func TestTwoFastSpeedsUpADSL(t *testing.T) {
	res, err := RunTwoFastStudy(12, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1.2 {
		t.Errorf("2fast speedup = %.2fx, want > 1.2x for ADSL peers", res.Speedup)
	}
}

func TestEcosystemGeneration(t *testing.T) {
	eco := GenerateEcosystem(DefaultEcosystemConfig())
	if len(eco.Trackers) != 120 {
		t.Fatalf("trackers = %d", len(eco.Trackers))
	}
	spam := 0
	swarms := 0
	for _, tr := range eco.Trackers {
		if tr.Spam {
			spam++
		}
		swarms += len(tr.Swarms)
	}
	if spam == 0 || spam > 30 {
		t.Errorf("spam trackers = %d, want a small positive count", spam)
	}
	if swarms < 1000 {
		t.Errorf("swarms = %d, want >= 1000", swarms)
	}
	if eco.TruePeers <= 0 {
		t.Error("TruePeers not accounted")
	}
}

func TestMonitorScrapeValidation(t *testing.T) {
	eco := GenerateEcosystem(DefaultEcosystemConfig())
	if _, err := (Monitor{SampleFraction: 0}).Scrape(eco); err == nil {
		t.Error("zero sample fraction accepted")
	}
	if _, err := (Monitor{SampleFraction: 1.5}).Scrape(eco); err == nil {
		t.Error("over-1 sample fraction accepted")
	}
}

func TestMonitorSpamInflatesEstimate(t *testing.T) {
	eco := GenerateEcosystem(DefaultEcosystemConfig())
	raw, err := Monitor{SampleFraction: 0.5, Seed: 2}.Scrape(eco)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := Monitor{SampleFraction: 0.5, FilterSpam: true, Seed: 2}.Scrape(eco)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Bias <= filtered.Bias {
		t.Errorf("raw bias %v not above filtered bias %v", raw.Bias, filtered.Bias)
	}
	if raw.SpamPeers == 0 {
		t.Error("no spam peers observed at 50% sampling")
	}
	// Filtering should bring the estimate much closer to truth.
	if abs(filtered.Bias) > 0.6 {
		t.Errorf("filtered bias %v still large", filtered.Bias)
	}
}

func TestMonitorFindsAliasedMedia(t *testing.T) {
	eco := GenerateEcosystem(DefaultEcosystemConfig())
	rep, err := Monitor{SampleFraction: 1, FilterSpam: true, Seed: 1}.Scrape(eco)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AliasedContents == 0 {
		t.Error("no aliased contents found")
	}
	if rep.MeanAliasFactor <= 1 {
		t.Errorf("mean alias factor = %v, want > 1", rep.MeanAliasFactor)
	}
}

func TestFlashcrowdDetector(t *testing.T) {
	// Synthetic joins: 1 per 100s baseline for 5000s, then 200 joins in 500s.
	var joins []sim.Time
	for ts := 0.0; ts < 5000; ts += 100 {
		joins = append(joins, sim.Time(ts))
	}
	for i := 0; i < 200; i++ {
		joins = append(joins, sim.Time(5000+float64(i)*2.5))
	}
	events := DefaultDetector().Detect(joins)
	if len(events) != 1 {
		t.Fatalf("detected %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Start < 4500 || ev.Start > 5500 {
		t.Errorf("event start = %v, want ~5000", ev.Start)
	}
	if ev.Amplitude < 5 {
		t.Errorf("amplitude = %v, want >= threshold 5", ev.Amplitude)
	}
}

func TestFlashcrowdDetectorQuietTrace(t *testing.T) {
	var joins []sim.Time
	for ts := 0.0; ts < 10000; ts += 100 {
		joins = append(joins, sim.Time(ts))
	}
	if events := DefaultDetector().Detect(joins); len(events) != 0 {
		t.Errorf("false positives on steady arrivals: %d", len(events))
	}
	if events := DefaultDetector().Detect(nil); events != nil {
		t.Error("empty input should yield nil")
	}
}

func TestFlashcrowdStudyDegradesPerformance(t *testing.T) {
	res, err := RunFlashcrowdStudy(200, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected < 1 {
		t.Fatal("flashcrowd not detected")
	}
	if res.Degradation <= 1 {
		t.Errorf("degradation = %v, want > 1 (crowd slows downloads)", res.Degradation)
	}
}

func TestVicissitudeBottleneckShifts(t *testing.T) {
	res := RunVicissitudeStudy(20, 4)
	if len(res.Windows) != 20 {
		t.Fatalf("windows = %d", len(res.Windows))
	}
	if res.DistinctBottlenecks < 2 {
		t.Errorf("distinct bottlenecks = %d, want >= 2 (vicissitude)", res.DistinctBottlenecks)
	}
	if res.Switches < 1 {
		t.Errorf("switches = %d, want >= 1", res.Switches)
	}
	for _, w := range res.Windows {
		if len(w.StageTimes) != len(pipelineStages) {
			t.Fatalf("window %d has %d stages", w.Window, len(w.StageTimes))
		}
	}
}

func TestRunTable5AllRows(t *testing.T) {
	if testing.Short() {
		t.Skip("full table 5 is slow")
	}
	rows, err := RunTable5(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	features := map[string]bool{}
	for _, row := range rows {
		if row.Finding == "" {
			t.Errorf("row %s has empty finding", row.Study)
		}
		features[row.Feature] = true
	}
	for _, f := range []string{"Aliased media", "Flashcrowds", "2fast collaborative", "Vicissitude", "Bias"} {
		if !features[f] {
			t.Errorf("missing feature row %q", f)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
