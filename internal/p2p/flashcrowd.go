package p2p

import (
	"math"

	"atlarge/internal/sim"
	"atlarge/internal/stats"
)

// FlashcrowdEvent is one detected flashcrowd.
type FlashcrowdEvent struct {
	Start sim.Time
	End   sim.Time
	// PeakRate is the maximum windowed arrival rate during the event.
	PeakRate float64
	// BaseRate is the pre-event median windowed rate.
	BaseRate float64
	// Amplitude is PeakRate / BaseRate.
	Amplitude float64
}

// FlashcrowdDetector implements the identification method of the
// BT-flashcrowd study (Zhang et al. P2P'11): windowed arrival rates are
// compared against the running median; a flashcrowd starts when the rate
// exceeds Threshold × median and ends when it falls back below.
type FlashcrowdDetector struct {
	// Window is the rate-estimation window in seconds.
	Window float64
	// Threshold is the surge multiplier that triggers detection.
	Threshold float64
}

// DefaultDetector uses a 5-minute window and a 5x threshold.
func DefaultDetector() FlashcrowdDetector {
	return FlashcrowdDetector{Window: 300, Threshold: 5}
}

// Detect scans join timestamps (sorted ascending) and returns the detected
// flashcrowd events.
func (d FlashcrowdDetector) Detect(joins []sim.Time) []FlashcrowdEvent {
	if len(joins) == 0 || d.Window <= 0 || d.Threshold <= 1 {
		return nil
	}
	end := float64(joins[len(joins)-1])
	bins := int(math.Ceil(end/d.Window)) + 1
	rate := make([]float64, bins)
	for _, t := range joins {
		b := int(float64(t) / d.Window)
		rate[b] += 1 / d.Window
	}

	var events []FlashcrowdEvent
	var active *FlashcrowdEvent
	var seen []float64
	for b := 0; b < bins; b++ {
		base := stats.Median(seen)
		if base == 0 {
			base = 1 / d.Window / 10 // floor: a tenth of one join per window
		}
		r := rate[b]
		t := sim.Time(float64(b) * d.Window)
		if active == nil && len(seen) >= 3 && r > d.Threshold*base {
			active = &FlashcrowdEvent{Start: t, PeakRate: r, BaseRate: base}
		} else if active != nil {
			if r > active.PeakRate {
				active.PeakRate = r
			}
			if r <= d.Threshold*active.BaseRate {
				active.End = t
				active.Amplitude = active.PeakRate / active.BaseRate
				events = append(events, *active)
				active = nil
			}
		}
		if active == nil {
			seen = append(seen, r)
		}
	}
	if active != nil {
		active.End = sim.Time(end)
		active.Amplitude = active.PeakRate / active.BaseRate
		events = append(events, *active)
	}
	return events
}

// FitDecay estimates the exponential half-life of a flashcrowd's arrival
// decay from the joins after the peak: it fits log(rate) over time and
// converts the slope to a half-life. It returns 0 when the fit fails.
func FitDecay(joins []sim.Time, peak sim.Time, window float64) float64 {
	var xs, ys []float64
	end := float64(joins[len(joins)-1])
	for b := 0; ; b++ {
		lo := float64(peak) + float64(b)*window
		hi := lo + window
		if lo > end {
			break
		}
		count := 0
		for _, t := range joins {
			if float64(t) >= lo && float64(t) < hi {
				count++
			}
		}
		if count == 0 {
			continue
		}
		xs = append(xs, lo-float64(peak))
		ys = append(ys, math.Log(float64(count)))
	}
	fit, err := stats.LinearRegression(xs, ys)
	if err != nil || fit.Slope >= 0 {
		return 0
	}
	return math.Ln2 / -fit.Slope
}
