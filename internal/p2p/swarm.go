// Package p2p simulates BitTorrent-style file-sharing ecosystems and the
// measurement studies of the paper's Table 5: swarm dynamics under
// flashcrowds, upload/download bandwidth asymmetry (ADSL), tit-for-tat
// reciprocity, the 2fast collaborative-download protocol, BTWorld-style
// tracker monitoring with sampling bias, spam trackers, and aliased media.
//
// The swarm model is a fluid-flow model in the Qiu–Srikant tradition: peer
// download rates are recomputed on every membership change from the swarm's
// aggregate upload capacity and each leecher's reciprocity, and completion
// events are scheduled from the current rates. This reproduces the
// macroscopic phenomena the paper's studies measured without packet-level
// detail.
package p2p

import (
	"fmt"
	"math"

	"atlarge/internal/sim"
)

// PeerClass describes a peer's access link.
type PeerClass struct {
	Name     string
	Down     float64 // download capacity, bytes/s
	Up       float64 // upload capacity, bytes/s
	LingerS  float64 // mean seeding time after completion
	Fraction float64 // share of the population
}

// StandardPeerClasses models the mid-2000s access mix the paper's studies
// found: ADSL dominates, with strongly asymmetric bandwidth.
func StandardPeerClasses() []PeerClass {
	return []PeerClass{
		{Name: "adsl", Down: 1000e3, Up: 128e3, LingerS: 600, Fraction: 0.7},
		{Name: "cable", Down: 2000e3, Up: 400e3, LingerS: 600, Fraction: 0.2},
		{Name: "university", Down: 10000e3, Up: 10000e3, LingerS: 1200, Fraction: 0.1},
	}
}

// peerState tracks one peer inside a swarm simulation.
type peerState struct {
	id        int
	class     PeerClass
	joined    sim.Time
	remaining float64 // bytes left to download
	rate      float64 // current download rate
	seeding   bool
	helper    bool // 2fast helper donating upload to a collector
	group     int  // 2fast group id (0 = none)

	completionEv sim.EventRef
	completed    bool
	doneAt       sim.Time
}

// DownloadRecord is the outcome of one completed download.
type DownloadRecord struct {
	PeerID   int
	Class    string
	JoinAt   sim.Time
	DoneAt   sim.Time
	Duration float64
	Group    int
}

// SwarmConfig parameterizes one swarm simulation.
type SwarmConfig struct {
	FileSize float64 // bytes
	Seed     int64
	// InitialSeeds is the number of always-on origin seeds.
	InitialSeeds int
	// SeedUp is the upload capacity of each origin seed.
	SeedUp float64
	// Classes is the peer population mix; fractions must sum to ~1.
	Classes []PeerClass
	// Reciprocity is the tit-for-tat coupling in [0,1]: the share of a
	// leecher's download rate that is limited by its own upload. 0 means
	// pure capacity sharing; 0.8 reproduces BitTorrent's choking behaviour.
	Reciprocity float64
	// Efficiency is the fraction of leecher upload capacity usable by the
	// swarm (piece availability losses).
	Efficiency float64
	// TwoFastGroupSize enables the 2fast protocol when > 1: peers arrive in
	// groups of this size, one collector and size-1 helpers; helpers donate
	// their upload to the collector. Helpers do not download the file.
	TwoFastGroupSize int
	// ChurnRate is the per-peer abort rate (1/s): each leecher carries an
	// exponential failure clock and may leave before completing (failure
	// injection; real swarms exhibit heavy churn). 0 disables churn.
	ChurnRate float64
}

// DefaultSwarmConfig is a 700 MB file with one origin seed, standard classes.
func DefaultSwarmConfig() SwarmConfig {
	return SwarmConfig{
		FileSize:     700e6,
		InitialSeeds: 1,
		SeedUp:       1000e3,
		Classes:      StandardPeerClasses(),
		Reciprocity:  0.8,
		Efficiency:   0.9,
	}
}

// Swarm simulates one torrent swarm.
type Swarm struct {
	cfg     SwarmConfig
	k       *sim.Kernel
	peers   map[int]*peerState
	nextID  int
	records []DownloadRecord
	rec     sim.Recorder
	groups  map[int][]*peerState
	aborts  int
}

// NewSwarm builds a swarm simulation on a fresh kernel.
func NewSwarm(cfg SwarmConfig) (*Swarm, error) {
	if cfg.FileSize <= 0 {
		return nil, fmt.Errorf("p2p: file size %v", cfg.FileSize)
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("p2p: no peer classes")
	}
	return &Swarm{
		cfg:    cfg,
		k:      sim.NewKernel(cfg.Seed),
		peers:  make(map[int]*peerState),
		groups: make(map[int][]*peerState),
	}, nil
}

// Kernel exposes the simulation kernel for scheduling arrivals.
func (s *Swarm) Kernel() *sim.Kernel { return s.k }

// Records returns completed downloads.
func (s *Swarm) Records() []DownloadRecord { return s.records }

// Aborts returns the number of peers that churned out before completing.
func (s *Swarm) Aborts() int { return s.aborts }

// Recorder exposes the time series (seeds, leechers, rates).
func (s *Swarm) Recorder() *sim.Recorder { return &s.rec }

// sampleClass draws a peer class by its population fraction.
func (s *Swarm) sampleClass() PeerClass {
	u := s.k.Rand("class").Float64()
	acc := 0.0
	for _, c := range s.cfg.Classes {
		acc += c.Fraction
		if u <= acc {
			return c
		}
	}
	return s.cfg.Classes[len(s.cfg.Classes)-1]
}

// ScheduleArrivals registers peer join events at the given times. The joins
// share one closure and enter the queue as one batch, so a large swarm's
// arrival schedule costs one heap rebuild instead of per-peer sift-ups.
func (s *Swarm) ScheduleArrivals(times []sim.Time) {
	join := func(k *sim.Kernel) { s.join() }
	batch := make([]sim.BatchEvent, len(times))
	for i, at := range times {
		batch[i] = sim.BatchEvent{At: at, Name: "peer-join", Fn: join}
	}
	s.k.Reserve(len(batch))
	s.k.AtBatch(batch)
}

// join admits one peer (or one 2fast group).
func (s *Swarm) join() {
	if s.cfg.TwoFastGroupSize > 1 {
		gid := s.nextID + 1
		for i := 0; i < s.cfg.TwoFastGroupSize; i++ {
			p := s.newPeer()
			p.group = gid
			p.helper = i > 0
			if p.helper {
				p.remaining = 0 // helpers do not need the file
			}
			s.groups[gid] = append(s.groups[gid], p)
		}
	} else {
		s.newPeer()
	}
	s.recompute()
}

func (s *Swarm) newPeer() *peerState {
	s.nextID++
	p := &peerState{
		id:        s.nextID,
		class:     s.sampleClass(),
		joined:    s.k.Now(),
		remaining: s.cfg.FileSize,
	}
	s.peers[p.id] = p
	if s.cfg.ChurnRate > 0 {
		ttl := sim.Duration(s.k.Rand("churn").ExpFloat64() / s.cfg.ChurnRate)
		pp := p
		s.k.After(ttl, "peer-abort", func(k *sim.Kernel) { s.abort(pp) })
	}
	return p
}

// abort removes a peer that leaves before completing (churn). Completed or
// already-departed peers are unaffected; the aborted download is counted.
func (s *Swarm) abort(p *peerState) {
	if p.completed {
		return
	}
	if _, present := s.peers[p.id]; !present {
		return
	}
	p.completionEv.Cancel()
	s.aborts++
	s.depart(p)
}

// counts returns (leechers, seeds) excluding origin seeds.
func (s *Swarm) counts() (leechers, seeds int) {
	for _, p := range s.peers {
		if p.helper {
			continue
		}
		if p.seeding {
			seeds++
		} else {
			leechers++
		}
	}
	return leechers, seeds
}

// recompute reassigns download rates and reschedules completion events.
// Fluid model: the swarm's aggregate upload capacity is split evenly among
// leechers; tit-for-tat couples a leecher's achievable rate to its own upload
// capacity by the Reciprocity factor. 2fast collectors additionally receive
// their group helpers' upload capacity as dedicated bandwidth.
func (s *Swarm) recompute() {
	now := s.k.Now()
	leechers, seeds := s.counts()
	s.rec.Record("leechers", now, float64(leechers))
	s.rec.Record("seeds", now, float64(seeds))
	if leechers == 0 {
		return
	}

	totalUp := float64(s.cfg.InitialSeeds) * s.cfg.SeedUp
	for _, p := range s.peers {
		if p.helper {
			continue // helper upload is dedicated, not shared
		}
		if p.seeding {
			totalUp += p.class.Up
		} else {
			// Piece scarcity: a leecher can only upload pieces it already
			// has, so its usable upload scales with download progress. This
			// is what makes flashcrowds degrade performance — a wave of
			// newcomers demands capacity while contributing almost none.
			progress := 1 - p.remaining/s.cfg.FileSize
			if progress < 0 {
				progress = 0
			}
			totalUp += p.class.Up * s.cfg.Efficiency * progress
		}
	}
	share := totalUp / float64(leechers)

	for _, p := range s.peers {
		if p.seeding || p.helper || p.completed {
			continue
		}
		// Tit-for-tat: a fraction r of the fair share must be reciprocated
		// by own upload; the rest is altruistic/optimistic-unchoke capacity.
		r := s.cfg.Reciprocity
		reciprocated := math.Min(share*r, p.class.Up)
		rate := reciprocated + share*(1-r)
		// 2fast: helpers donate dedicated upload to their collector.
		if p.group != 0 {
			for _, h := range s.groups[p.group] {
				if h.helper {
					rate += h.class.Up
				}
			}
		}
		rate = math.Min(rate, p.class.Down)
		if rate <= 0 {
			rate = 1 // avoid stalling forever
		}
		p.rate = rate
		p.completionEv.Cancel()
		eta := sim.Duration(p.remaining / rate)
		pp := p
		p.completionEv = s.k.After(eta, "peer-complete", func(k *sim.Kernel) {
			s.complete(pp)
		})
	}
}

func (s *Swarm) complete(p *peerState) {
	if p.completed {
		return
	}
	p.completed = true
	p.seeding = true
	p.remaining = 0
	p.doneAt = s.k.Now()
	s.records = append(s.records, DownloadRecord{
		PeerID:   p.id,
		Class:    p.class.Name,
		JoinAt:   p.joined,
		DoneAt:   p.doneAt,
		Duration: float64(p.doneAt - p.joined),
		Group:    p.group,
	})
	// Schedule departure after lingering as a seed.
	linger := sim.Duration(p.class.LingerS * (0.5 + s.k.Rand("linger").Float64()))
	s.k.After(linger, "seed-depart", func(k *sim.Kernel) { s.depart(p) })
	s.recompute()
}

func (s *Swarm) depart(p *peerState) {
	delete(s.peers, p.id)
	if p.group != 0 {
		// Helpers of a departed collector leave too.
		for _, h := range s.groups[p.group] {
			if h.helper {
				delete(s.peers, h.id)
			}
		}
		delete(s.groups, p.group)
	}
	s.recompute()
}

// Run executes the swarm simulation with periodic progress updates every
// tick seconds and returns when the event queue empties or horizon passes.
func (s *Swarm) Run(horizon sim.Time, tick sim.Duration) error {
	if tick <= 0 {
		tick = 10
	}
	var doTick func(k *sim.Kernel)
	doTick = func(k *sim.Kernel) {
		s.applyProgress(tick)
		if k.Now() < horizon {
			k.After(tick, "progress", doTick)
		}
	}
	s.k.After(tick, "progress", doTick)
	s.k.SetHorizon(horizon)
	if err := s.k.Run(); err != nil {
		return fmt.Errorf("p2p: %w", err)
	}
	return nil
}

// applyProgress decrements remaining bytes for the elapsed tick and refreshes
// rates (arrivals during the tick changed shares).
func (s *Swarm) applyProgress(dt sim.Duration) {
	for _, p := range s.peers {
		if p.seeding || p.helper || p.completed {
			continue
		}
		p.remaining -= p.rate * float64(dt)
		if p.remaining < 0 {
			p.remaining = 0
		}
	}
	s.recompute()
}
