package p2p

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atlarge/internal/workload"
)

// runChurnSwarm executes a swarm with the given churn rate and returns
// (completions, aborts).
func runChurnSwarm(t testing.TB, churn float64, peers int, seed int64) (int, int) {
	t.Helper()
	cfg := DefaultSwarmConfig()
	cfg.Seed = seed
	cfg.FileSize = 50e6
	cfg.ChurnRate = churn
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arr := workload.PoissonArrivals{Rate: 0.05}
	sw.ScheduleArrivals(arr.Times(peers, rand.New(rand.NewSource(seed))))
	if err := sw.Run(300000, 10); err != nil {
		t.Fatal(err)
	}
	return len(sw.Records()), sw.Aborts()
}

func TestChurnCausesAborts(t *testing.T) {
	// Typical ADSL download of 50MB takes ~400-1500s; a 1/600s abort clock
	// should remove a sizeable share of peers.
	done, aborts := runChurnSwarm(t, 1.0/600, 60, 3)
	if aborts == 0 {
		t.Fatal("no aborts under churn")
	}
	if done == 0 {
		t.Fatal("churn killed every download")
	}
	noChurnDone, noChurnAborts := runChurnSwarm(t, 0, 60, 3)
	if noChurnAborts != 0 {
		t.Errorf("aborts without churn: %d", noChurnAborts)
	}
	if done >= noChurnDone {
		t.Errorf("churn did not reduce completions: %d vs %d", done, noChurnDone)
	}
}

func TestChurnConservationProperty(t *testing.T) {
	// Property: completions + aborts never exceed scheduled peers, and the
	// swarm still terminates cleanly.
	f := func(seed int64, churnRaw uint8) bool {
		churn := float64(churnRaw%10) / 3000 // 0 .. ~3.3e-3 /s
		cfg := DefaultSwarmConfig()
		cfg.Seed = seed
		cfg.FileSize = 20e6
		cfg.ChurnRate = churn
		sw, err := NewSwarm(cfg)
		if err != nil {
			return false
		}
		peers := 20
		arr := workload.PoissonArrivals{Rate: 0.05}
		sw.ScheduleArrivals(arr.Times(peers, rand.New(rand.NewSource(seed))))
		if err := sw.Run(200000, 10); err != nil {
			return false
		}
		return len(sw.Records())+sw.Aborts() <= peers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestChurnSurvivorshipBias(t *testing.T) {
	// A measurement lesson in the spirit of the paper's bias meta-study:
	// under churn, slow downloads abort before completing, so the mean
	// duration *of survivors* is biased low compared to a churn-free swarm —
	// a naive "downloads got faster" reading would be wrong.
	mean := func(churn float64) float64 {
		cfg := DefaultSwarmConfig()
		cfg.Seed = 9
		cfg.FileSize = 50e6
		cfg.ChurnRate = churn
		sw, err := NewSwarm(cfg)
		if err != nil {
			t.Fatal(err)
		}
		arr := workload.PoissonArrivals{Rate: 0.05}
		sw.ScheduleArrivals(arr.Times(60, rand.New(rand.NewSource(9))))
		if err := sw.Run(300000, 10); err != nil {
			t.Fatal(err)
		}
		recs := sw.Records()
		if len(recs) == 0 {
			t.Fatal("no completions")
		}
		sum := 0.0
		for _, r := range recs {
			sum += r.Duration
		}
		return sum / float64(len(recs))
	}
	quiet := mean(0)
	churned := mean(1.0 / 400)
	if churned >= quiet {
		t.Errorf("survivorship bias absent: churned survivor mean %v not below churn-free %v", churned, quiet)
	}
}
