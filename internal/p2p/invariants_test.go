package p2p

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atlarge/internal/workload"
)

// TestSwarmInvariantsProperty checks, over random swarm configurations:
//
//  1. completed downloads never exceed scheduled arrivals;
//  2. every download respects the peer's capacity bound
//     (duration >= filesize / downCap);
//  3. completion times are causally ordered after joins.
func TestSwarmInvariantsProperty(t *testing.T) {
	f := func(seed int64, peersRaw uint8) bool {
		peers := int(peersRaw%20) + 3
		cfg := DefaultSwarmConfig()
		cfg.Seed = seed
		cfg.FileSize = 20e6
		sw, err := NewSwarm(cfg)
		if err != nil {
			return false
		}
		arr := workload.PoissonArrivals{Rate: 0.05}
		sw.ScheduleArrivals(arr.Times(peers, rand.New(rand.NewSource(seed))))
		if err := sw.Run(200000, 10); err != nil {
			return false
		}
		recs := sw.Records()
		if len(recs) > peers {
			return false
		}
		capByClass := map[string]float64{}
		for _, c := range cfg.Classes {
			capByClass[c.Name] = c.Down
		}
		for _, r := range recs {
			if r.DoneAt <= r.JoinAt {
				return false
			}
			// Allow one progress-tick (10s) of slack from the fluid model.
			minDur := cfg.FileSize/capByClass[r.Class] - 10
			if r.Duration < minDur {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestMonitorEstimateScalesWithSample checks the estimator's core property:
// full sampling with spam filtering lands closer to ground truth than a
// small raw sample, for arbitrary seeds.
func TestMonitorEstimateScalesWithSample(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultEcosystemConfig()
		cfg.Seed = seed
		eco := GenerateEcosystem(cfg)
		small, err := Monitor{SampleFraction: 0.1, Seed: seed}.Scrape(eco)
		if err != nil {
			return false
		}
		full, err := Monitor{SampleFraction: 1, FilterSpam: true, Seed: seed}.Scrape(eco)
		if err != nil {
			return false
		}
		absBias := func(b float64) float64 {
			if b < 0 {
				return -b
			}
			return b
		}
		// Full filtered scrape must not be farther from truth than a 10%
		// raw scrape (which carries both sampling noise and spam).
		return absBias(full.Bias) <= absBias(small.Bias)+0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
