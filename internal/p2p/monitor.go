package p2p

import (
	"fmt"
	"math/rand"
	"sort"
)

// SwarmInfo is a tracker's view of one swarm at scrape time.
type SwarmInfo struct {
	SwarmID   int
	ContentID int // aliased media: several swarms can carry the same content
	Format    string
	Seeds     int
	Leechers  int
}

// Tracker serves scrape data for the swarms it coordinates. Spam trackers
// (inserted by unidentified entities, per the 2010 BTWorld study) report
// fabricated swarms with inflated populations.
type Tracker struct {
	ID     int
	Spam   bool
	Swarms []SwarmInfo
}

// Ecosystem is the ground-truth global BitTorrent ecosystem: many trackers,
// many swarms, content aliased across formats.
type Ecosystem struct {
	Trackers []Tracker
	// TruePeers is the ground-truth number of distinct real peers.
	TruePeers int
	// TrueContents is the number of distinct content items.
	TrueContents int
}

// EcosystemConfig parameterizes ecosystem generation.
type EcosystemConfig struct {
	Trackers     int
	SpamFraction float64
	// SwarmsPerTracker is the mean number of swarms per tracker.
	SwarmsPerTracker int
	// Contents is the number of distinct content items; swarm popularity is
	// Zipf over contents.
	Contents int
	// AliasFormats lists the formats content may be released in; each
	// content item appears in 1..len(AliasFormats) swarms.
	AliasFormats []string
	// MeanSwarmSize scales swarm populations.
	MeanSwarmSize int
	Seed          int64
}

// DefaultEcosystemConfig mirrors the scale ratios of the BTWorld study
// (hundreds of trackers, many swarms, giant-swarm skew), shrunk to test
// scale.
func DefaultEcosystemConfig() EcosystemConfig {
	return EcosystemConfig{
		Trackers:         120,
		SpamFraction:     0.08,
		SwarmsPerTracker: 40,
		Contents:         800,
		AliasFormats:     []string{"avi", "mkv", "x264", "dvdrip"},
		MeanSwarmSize:    120,
		Seed:             1,
	}
}

// GenerateEcosystem builds a synthetic global ecosystem.
func GenerateEcosystem(cfg EcosystemConfig) *Ecosystem {
	r := rand.New(rand.NewSource(cfg.Seed))
	eco := &Ecosystem{TrueContents: cfg.Contents}
	swarmID := 0
	for t := 0; t < cfg.Trackers; t++ {
		tr := Tracker{ID: t + 1, Spam: r.Float64() < cfg.SpamFraction}
		n := cfg.SwarmsPerTracker/2 + r.Intn(cfg.SwarmsPerTracker+1)
		for s := 0; s < n; s++ {
			swarmID++
			content := zipfContent(r, cfg.Contents)
			format := cfg.AliasFormats[r.Intn(len(cfg.AliasFormats))]
			// Popularity: heavy-tailed swarm sizes; rank-1 content forms
			// giant swarms (hundreds of thousands in the study).
			base := float64(cfg.MeanSwarmSize) / float64(content) * float64(cfg.Contents) / 10
			size := int(base * (0.5 + r.Float64()))
			if size < 2 {
				size = 2
			}
			seeds := size / 3
			leechers := size - seeds
			if tr.Spam {
				// Spam trackers fabricate inflated numbers.
				seeds *= 50
				leechers *= 50
			}
			tr.Swarms = append(tr.Swarms, SwarmInfo{
				SwarmID:   swarmID,
				ContentID: content,
				Format:    format,
				Seeds:     seeds,
				Leechers:  leechers,
			})
			if !tr.Spam {
				eco.TruePeers += size
			}
		}
		eco.Trackers = append(eco.Trackers, tr)
	}
	return eco
}

// zipfContent samples a content rank in [1,n] with exponent ~1.
func zipfContent(r *rand.Rand, n int) int {
	// Inverse-power sampling without precomputation: rejection on rank.
	for {
		u := r.Float64()
		rank := int(float64(n)*u*u) + 1 // quadratic skew toward low ranks
		if rank >= 1 && rank <= n {
			return rank
		}
	}
}

// MonitorReport is the output of one BTWorld-style scrape campaign.
type MonitorReport struct {
	TrackersScraped int
	SwarmsSeen      int
	PeersObserved   int
	// PeersEstimate extrapolates the full ecosystem from the scraped sample.
	PeersEstimate int
	// SpamPeers counts observed peers that came from spam trackers.
	SpamPeers int
	// GiantSwarms counts swarms above giantThreshold peers.
	GiantSwarms int
	// Bias is (PeersEstimate - TruePeers) / TruePeers; the meta-study of
	// sampling bias (Zhang et al. Euro-Par'10).
	Bias float64
	// ContentsSeen is the number of distinct content IDs observed.
	ContentsSeen int
	// AliasedContents counts contents observed in 2+ formats.
	AliasedContents int
	// MeanAliasFactor is the mean number of swarms per observed content.
	MeanAliasFactor float64
}

const giantThreshold = 5000

// Monitor scrapes a fraction of trackers (selected deterministically by
// seed) and produces the measurement report, optionally filtering spam.
type Monitor struct {
	// SampleFraction is the fraction of trackers scraped.
	SampleFraction float64
	// FilterSpam drops trackers whose reported populations are implausible
	// (the bias-correction technique of the meta-study).
	FilterSpam bool
	Seed       int64
}

// Scrape runs the campaign against the ecosystem.
func (m Monitor) Scrape(eco *Ecosystem) (*MonitorReport, error) {
	if m.SampleFraction <= 0 || m.SampleFraction > 1 {
		return nil, fmt.Errorf("p2p: sample fraction %v", m.SampleFraction)
	}
	r := rand.New(rand.NewSource(m.Seed))
	idx := r.Perm(len(eco.Trackers))
	n := int(float64(len(eco.Trackers)) * m.SampleFraction)
	if n < 1 {
		n = 1
	}
	rep := &MonitorReport{TrackersScraped: n}
	contentSwarms := make(map[int]int)
	contentFormats := make(map[int]map[string]bool)

	// Median swarm population across the sample, for spam detection.
	var popByTracker []float64
	sample := make([]Tracker, 0, n)
	for _, i := range idx[:n] {
		tr := eco.Trackers[i]
		sample = append(sample, tr)
		tot := 0
		for _, sw := range tr.Swarms {
			tot += sw.Seeds + sw.Leechers
		}
		if len(tr.Swarms) > 0 {
			popByTracker = append(popByTracker, float64(tot)/float64(len(tr.Swarms)))
		}
	}
	medianPop := median(popByTracker)

	for _, tr := range sample {
		avg := 0.0
		if len(tr.Swarms) > 0 {
			tot := 0
			for _, sw := range tr.Swarms {
				tot += sw.Seeds + sw.Leechers
			}
			avg = float64(tot) / float64(len(tr.Swarms))
		}
		if m.FilterSpam && medianPop > 0 && avg > 10*medianPop {
			continue // implausibly inflated: classified as spam
		}
		for _, sw := range tr.Swarms {
			size := sw.Seeds + sw.Leechers
			rep.SwarmsSeen++
			rep.PeersObserved += size
			if tr.Spam {
				rep.SpamPeers += size
			}
			if size >= giantThreshold {
				rep.GiantSwarms++
			}
			contentSwarms[sw.ContentID]++
			if contentFormats[sw.ContentID] == nil {
				contentFormats[sw.ContentID] = make(map[string]bool)
			}
			contentFormats[sw.ContentID][sw.Format] = true
		}
	}

	rep.PeersEstimate = int(float64(rep.PeersObserved) / m.SampleFraction)
	if eco.TruePeers > 0 {
		rep.Bias = (float64(rep.PeersEstimate) - float64(eco.TruePeers)) / float64(eco.TruePeers)
	}
	rep.ContentsSeen = len(contentSwarms)
	totalAlias := 0
	for c, formats := range contentFormats {
		if len(formats) >= 2 {
			rep.AliasedContents++
		}
		totalAlias += contentSwarms[c]
	}
	if rep.ContentsSeen > 0 {
		rep.MeanAliasFactor = float64(totalAlias) / float64(rep.ContentsSeen)
	}
	return rep, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}
