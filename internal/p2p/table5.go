package p2p

import (
	"fmt"
	"math/rand"

	"atlarge/internal/sim"
	"atlarge/internal/stats"
	"atlarge/internal/workload"
)

// Table5Row is one reproduced row of Table 5 (the P2P co-evolving studies).
type Table5Row struct {
	Study   string
	Feature string
	Finding string
	Value   float64
}

// AsymmetryResult reproduces the '06 ecosystem-Internet correlation finding:
// ADSL adoption shifted peers to strongly imbalanced upload/download.
type AsymmetryResult struct {
	MeanDownUpRatio float64 // population mean of down/up capacity
	ADSLFraction    float64
	MeanDownloadS   float64
}

// RunAsymmetryStudy measures bandwidth asymmetry in a standard swarm.
func RunAsymmetryStudy(peers int, seed int64) (*AsymmetryResult, error) {
	cfg := DefaultSwarmConfig()
	cfg.Seed = seed
	sw, err := NewSwarm(cfg)
	if err != nil {
		return nil, err
	}
	arr := workload.PoissonArrivals{Rate: 0.2}
	sw.ScheduleArrivals(arr.Times(peers, rand.New(rand.NewSource(seed))))
	if err := sw.Run(200000, 10); err != nil {
		return nil, err
	}
	res := &AsymmetryResult{}
	// Population-level asymmetry from the class mix.
	var ratioSum, adsl, n float64
	for _, c := range cfg.Classes {
		ratioSum += c.Fraction * c.Down / c.Up
		n += c.Fraction
		if c.Name == "adsl" {
			adsl = c.Fraction
		}
	}
	res.MeanDownUpRatio = ratioSum / n
	res.ADSLFraction = adsl
	var durs []float64
	for _, r := range sw.Records() {
		durs = append(durs, r.Duration)
	}
	res.MeanDownloadS = stats.Mean(durs)
	return res, nil
}

// FlashcrowdStudyResult reproduces the '11 flashcrowd study: identification,
// model fit, and the negative performance phenomenon during the crowd.
type FlashcrowdStudyResult struct {
	Detected      int
	Amplitude     float64
	HalfLifeS     float64
	MeanDurBefore float64 // mean download duration, pre-crowd joiners
	MeanDurDuring float64 // mean download duration, in-crowd joiners
	Degradation   float64 // MeanDurDuring / MeanDurBefore
}

// RunFlashcrowdStudy drives a swarm with a flashcrowd arrival process,
// detects the crowd, and quantifies the performance degradation it causes.
func RunFlashcrowdStudy(peers int, seed int64) (*FlashcrowdStudyResult, error) {
	cfg := DefaultSwarmConfig()
	cfg.Seed = seed
	// Flashcrowd populations are notorious for hit-and-run behaviour: peers
	// leave almost immediately after completing, so the crowd cannot rely on
	// a growing seed pool.
	for i := range cfg.Classes {
		cfg.Classes[i].LingerS = 60
	}
	sw, err := NewSwarm(cfg)
	if err != nil {
		return nil, err
	}
	const crowdStart = 20000
	arr := workload.FlashcrowdArrivals{BaseRate: 0.005, StartAt: crowdStart, Spike: 60, HalfLife: 2000}
	times := arr.Times(peers, rand.New(rand.NewSource(seed)))
	sw.ScheduleArrivals(times)
	if err := sw.Run(400000, 10); err != nil {
		return nil, err
	}

	events := DefaultDetector().Detect(times)
	res := &FlashcrowdStudyResult{Detected: len(events)}
	if len(events) > 0 {
		res.Amplitude = events[0].Amplitude
		res.HalfLifeS = FitDecay(times, events[0].Start, 500)
	}
	// The negative phenomenon hits the first wave of the crowd: they compete
	// for the seed's capacity before mutual piece exchange ramps up.
	var before, during []float64
	for _, r := range sw.Records() {
		switch {
		case r.JoinAt < crowdStart:
			before = append(before, r.Duration)
		case r.JoinAt < crowdStart+1500:
			during = append(during, r.Duration)
		}
	}
	res.MeanDurBefore = stats.Mean(before)
	res.MeanDurDuring = stats.Mean(during)
	if res.MeanDurBefore > 0 {
		res.Degradation = res.MeanDurDuring / res.MeanDurBefore
	}
	return res, nil
}

// TwoFastResult reproduces the 2fast evaluation: collaborative downloads
// improve download time for asymmetric-bandwidth peers.
type TwoFastResult struct {
	PlainMeanS   float64
	TwoFastMeanS float64
	Speedup      float64
}

// RunTwoFastStudy compares plain BitTorrent against 2fast with the given
// group size on an ADSL-only population.
func RunTwoFastStudy(groups int, groupSize int, seed int64) (*TwoFastResult, error) {
	adslOnly := []PeerClass{{Name: "adsl", Down: 1000e3, Up: 128e3, LingerS: 300, Fraction: 1}}

	run := func(twoFast bool) (float64, error) {
		cfg := DefaultSwarmConfig()
		cfg.Seed = seed
		cfg.Classes = adslOnly
		cfg.FileSize = 100e6
		if twoFast {
			cfg.TwoFastGroupSize = groupSize
		}
		sw, err := NewSwarm(cfg)
		if err != nil {
			return 0, err
		}
		arr := workload.PoissonArrivals{Rate: 0.01}
		sw.ScheduleArrivals(arr.Times(groups, rand.New(rand.NewSource(seed))))
		if err := sw.Run(500000, 10); err != nil {
			return 0, err
		}
		var durs []float64
		for _, r := range sw.Records() {
			durs = append(durs, r.Duration)
		}
		if len(durs) == 0 {
			return 0, fmt.Errorf("p2p: no downloads completed (twoFast=%v)", twoFast)
		}
		return stats.Mean(durs), nil
	}

	plain, err := run(false)
	if err != nil {
		return nil, err
	}
	tf, err := run(true)
	if err != nil {
		return nil, err
	}
	res := &TwoFastResult{PlainMeanS: plain, TwoFastMeanS: tf}
	if tf > 0 {
		res.Speedup = plain / tf
	}
	return res, nil
}

// PipelineWindow is one analysis window of the BTWorld big-data use case.
type PipelineWindow struct {
	Window     int
	StageTimes map[string]float64
	Bottleneck string
}

// VicissitudeResult reproduces the '14 vicissitude phenomenon: across the
// windows of a complex big-data workflow, the bottleneck stage shifts
// seemingly at random.
type VicissitudeResult struct {
	Windows             []PipelineWindow
	DistinctBottlenecks int
	Switches            int
}

// pipelineStages are the logical MapReduce workflow stages of the BTWorld
// analytics pipeline.
var pipelineStages = []string{"extract", "map", "shuffle", "reduce", "load"}

// RunVicissitudeStudy processes windows of ecosystem snapshots through a
// modeled analytics pipeline whose stage costs depend on window properties
// (sample volume, tracker skew, alias cardinality), and detects bottleneck
// shifts.
func RunVicissitudeStudy(windows int, seed int64) *VicissitudeResult {
	r := rand.New(rand.NewSource(seed))
	res := &VicissitudeResult{}
	prev := ""
	seen := map[string]bool{}
	for w := 0; w < windows; w++ {
		eco := GenerateEcosystem(EcosystemConfig{
			Trackers:         60 + r.Intn(80),
			SpamFraction:     0.05 + r.Float64()*0.1,
			SwarmsPerTracker: 20 + r.Intn(50),
			Contents:         400 + r.Intn(800),
			AliasFormats:     []string{"avi", "mkv", "x264"},
			MeanSwarmSize:    80 + r.Intn(120),
			Seed:             seed + int64(w),
		})
		swarms, peers := 0, 0
		for _, tr := range eco.Trackers {
			swarms += len(tr.Swarms)
			for _, sw := range tr.Swarms {
				peers += sw.Seeds + sw.Leechers
			}
		}
		// Stage cost models: extract scales with raw samples, map with
		// swarms, shuffle with key skew (alias cardinality proxy), reduce
		// with distinct contents, load with output volume. Random
		// multiplicative noise models infrastructure variability.
		noise := func() float64 { return 0.6 + r.Float64()*0.9 }
		st := map[string]float64{
			"extract": float64(peers) / 1e4 * noise(),
			"map":     float64(swarms) / 1e2 * noise(),
			"shuffle": float64(peers) / 2e4 * (1 + 3*r.Float64()) * noise(),
			"reduce":  float64(eco.TrueContents) / 1e2 * noise(),
			"load":    float64(swarms) / 2e2 * (1 + 2*r.Float64()) * noise(),
		}
		bn := pipelineStages[0]
		for _, s := range pipelineStages {
			if st[s] > st[bn] {
				bn = s
			}
		}
		res.Windows = append(res.Windows, PipelineWindow{Window: w, StageTimes: st, Bottleneck: bn})
		if prev != "" && bn != prev {
			res.Switches++
		}
		prev = bn
		seen[bn] = true
	}
	res.DistinctBottlenecks = len(seen)
	return res
}

// RunTable5 executes every Table 5 study at the given scale and renders the
// row summaries.
func RunTable5(seed int64) ([]Table5Row, error) {
	var rows []Table5Row

	eco := GenerateEcosystem(DefaultEcosystemConfig())
	aliasRep, err := Monitor{SampleFraction: 0.5, Seed: seed}.Scrape(eco)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table5Row{
		Study: "Iosup'05", Feature: "Aliased media",
		Finding: fmt.Sprintf("%d/%d observed contents aliased across formats (mean %.1f swarms/content)",
			aliasRep.AliasedContents, aliasRep.ContentsSeen, aliasRep.MeanAliasFactor),
		Value: float64(aliasRep.AliasedContents) / float64(max(aliasRep.ContentsSeen, 1)),
	})

	asym, err := RunAsymmetryStudy(150, seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table5Row{
		Study: "Iosup'06", Feature: "Ecosystem-Internet",
		Finding: fmt.Sprintf("mean down/up capacity ratio %.1f (ADSL %.0f%% of peers)",
			asym.MeanDownUpRatio, 100*asym.ADSLFraction),
		Value: asym.MeanDownUpRatio,
	})

	rows = append(rows, Table5Row{
		Study: "Wojciechowski'10", Feature: "Global ecosystem",
		Finding: fmt.Sprintf("%d swarms seen, %d giant swarms, %d peers from spam trackers",
			aliasRep.SwarmsSeen, aliasRep.GiantSwarms, aliasRep.SpamPeers),
		Value: float64(aliasRep.GiantSwarms),
	})

	biased, err := Monitor{SampleFraction: 0.25, Seed: seed}.Scrape(eco)
	if err != nil {
		return nil, err
	}
	filtered, err := Monitor{SampleFraction: 0.25, FilterSpam: true, Seed: seed}.Scrape(eco)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table5Row{
		Study: "Zhang'10", Feature: "Bias",
		Finding: fmt.Sprintf("sampling bias %+.0f%% raw, %+.0f%% after spam filtering",
			100*biased.Bias, 100*filtered.Bias),
		Value: biased.Bias,
	})

	fc, err := RunFlashcrowdStudy(250, seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table5Row{
		Study: "Zhang'11", Feature: "Flashcrowds",
		Finding: fmt.Sprintf("%d crowd(s) detected, amplitude %.0fx, download degradation %.1fx",
			fc.Detected, fc.Amplitude, fc.Degradation),
		Value: fc.Degradation,
	})

	vic := RunVicissitudeStudy(12, seed)
	rows = append(rows, Table5Row{
		Study: "Ghit'14", Feature: "Vicissitude",
		Finding: fmt.Sprintf("bottleneck shifted %d times across %d stages in 12 windows",
			vic.Switches, vic.DistinctBottlenecks),
		Value: float64(vic.Switches),
	})

	tf, err := RunTwoFastStudy(40, 4, seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table5Row{
		Study: "Garbacki'06", Feature: "2fast collaborative",
		Finding: fmt.Sprintf("2fast speedup %.2fx over plain BT for ADSL peers", tf.Speedup),
		Value:   tf.Speedup,
	})
	return rows, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// JoinTimes extracts join timestamps from an arrival schedule, a convenience
// for detector tests and examples.
func JoinTimes(times []sim.Time) []sim.Time { return times }
