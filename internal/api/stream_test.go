package api

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"atlarge"
)

// streamLine is the decoded shape of one NDJSON event from /v1/run/stream.
type streamLine struct {
	Type     string               `json:"type"`
	Total    int                  `json:"total"`
	Seed     int64                `json:"seed"`
	Replicas int                  `json:"replicas"`
	ID       string               `json:"id"`
	Done     int                  `json:"done"`
	Document *atlarge.RunDocument `json:"document"`
	Error    string               `json:"error"`
}

// TestServeRunStream: the NDJSON stream opens with a plan line, emits one
// task line per (experiment, replica), and closes with a result document
// identical to the plain /v1/run body for the same query.
func TestServeRunStream(t *testing.T) {
	srv := newTestServer(t)

	resp, err := http.Get(srv.URL + "/v1/run/stream?ids=alpha,beta&seed=42&replicas=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q, want application/x-ndjson", ct)
	}

	var lines []streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	const tasks = 2 * 3 // ids × replicas
	if len(lines) != tasks+2 {
		t.Fatalf("stream emitted %d lines, want %d (plan + tasks + result)", len(lines), tasks+2)
	}
	if lines[0].Type != "plan" || lines[0].Total != tasks || lines[0].Seed != 42 || lines[0].Replicas != 3 {
		t.Errorf("plan line = %+v", lines[0])
	}
	for i, l := range lines[1 : tasks+1] {
		if l.Type != "task" || l.Done != i+1 || l.Total != tasks || l.ID == "" {
			t.Errorf("task line %d = %+v", i, l)
		}
	}
	last := lines[len(lines)-1]
	if last.Type != "result" || last.Document == nil {
		t.Fatalf("terminal line = %+v", last)
	}

	// The streamed document must match the plain endpoint's document — and
	// the stream's results must have populated the cache on the way out.
	plainResp, plain := get(t, srv.URL+"/v1/run?ids=alpha,beta&seed=42&replicas=3")
	if state := plainResp.Header.Get("X-Atlarge-Cache"); state != "hit" {
		t.Errorf("post-stream /v1/run cache state = %q, want hit", state)
	}
	var plainDoc atlarge.RunDocument
	if err := json.Unmarshal([]byte(plain), &plainDoc); err != nil {
		t.Fatal(err)
	}
	streamed, _ := json.Marshal(last.Document)
	direct, _ := json.Marshal(&plainDoc)
	if string(streamed) != string(direct) {
		t.Error("streamed result document differs from /v1/run document")
	}
}

// TestServeRunStreamBadQuery: validation failures surface before any
// streaming starts.
func TestServeRunStreamBadQuery(t *testing.T) {
	srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/v1/run/stream?ids=nope")
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, `"error"`) {
		t.Errorf("status = %d body %s", resp.StatusCode, body)
	}
}

// TestServeRunStreamSeedZero: seed 0 is a valid seed and the plan line must
// carry it explicitly rather than omitting the field.
func TestServeRunStreamSeedZero(t *testing.T) {
	srv := newTestServer(t)
	_, body := get(t, srv.URL+"/v1/run/stream?ids=alpha&seed=0")
	first, _, _ := strings.Cut(body, "\n")
	if !strings.Contains(first, `"seed":0`) {
		t.Errorf("plan line omits seed 0: %s", first)
	}
}

// sweepSpecBody is a small two-cell sweep used by the async job tests.
const sweepSpecBody = `{"version": 2, "name": "api-async", "domain": "sched",
	"policy": "sjf", "workload": {"class": "syn", "jobs": 8},
	"cluster": {"machines": 2},
	"sweep": {"policy": ["sjf", "fcfs"]}}`

// postSweep posts a sweep spec and decodes the JSON envelope.
func postSweep(t *testing.T, url string) (int, map[string]string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(sweepSpecBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	out := map[string]string{}
	_ = json.Unmarshal([]byte(body), &out)
	out["_body"] = body
	return resp.StatusCode, out
}

// TestServeAsyncSweep: the async path accepts with a job id, the job runs
// to done, and its result bytes equal the synchronous response.
func TestServeAsyncSweep(t *testing.T) {
	srv := httptest.NewServer(New(Config{Parallelism: 2}))
	defer srv.Close()

	status, accepted := postSweep(t, srv.URL+"/v1/scenario/sweep?seed=5&replicas=2&async=1")
	if status != http.StatusAccepted || accepted["job"] == "" {
		t.Fatalf("async accept: status %d, body %s", status, accepted["_body"])
	}

	statusURL := srv.URL + accepted["status"]
	deadline := time.Now().Add(30 * time.Second)
	var st jobStatus
	for {
		_, body := get(t, statusURL)
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("bad status body %s: %v", body, err)
		}
		if st.State != jobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck running: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != jobDone || st.Done != st.Total || st.Total != 4 || st.Result == "" {
		t.Fatalf("finished status = %+v", st)
	}

	_, asyncBody := get(t, srv.URL+st.Result)
	syncStatus, syncOut := postSweep(t, srv.URL+"/v1/scenario/sweep?seed=5&replicas=2")
	if syncStatus != http.StatusOK {
		t.Fatalf("sync sweep failed: %d", syncStatus)
	}
	if asyncBody != syncOut["_body"] {
		t.Error("async result bytes differ from synchronous sweep response")
	}
}

// TestServeAsyncSweepResultNotReady: fetching the result of a running or
// unknown job reports the right statuses.
func TestServeAsyncSweepNotFound(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()
	resp, body := get(t, srv.URL+"/v1/scenario/jobs/nope")
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, `"error"`) {
		t.Errorf("unknown job: status %d body %s", resp.StatusCode, body)
	}
	resp2, _ := get(t, srv.URL+"/v1/scenario/jobs/nope/result")
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result: status %d", resp2.StatusCode)
	}
}

// TestServeAsyncSweepCancel: DELETE flips a running job to cancelled and
// its result becomes 410.
func TestServeAsyncSweepCancel(t *testing.T) {
	srv := httptest.NewServer(New(Config{Parallelism: 1}))
	defer srv.Close()

	status, accepted := postSweep(t, srv.URL+"/v1/scenario/sweep?replicas=64&async=1")
	if status != http.StatusAccepted {
		t.Fatalf("async accept: %d", status)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+accepted["status"], nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	var st jobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != jobCancelled && st.State != jobDone {
		t.Fatalf("cancelled job state = %q", st.State)
	}
	if st.State == jobCancelled {
		resp2, _ := get(t, srv.URL+accepted["status"]+"/result")
		if resp2.StatusCode != http.StatusGone {
			t.Errorf("cancelled result: status %d, want 410", resp2.StatusCode)
		}
	}
}

// TestServeSweepCellBound: a spec whose axis cardinalities multiply past
// the server's cell limit is rejected up front — including the degenerate
// many-axis case whose raw product would overflow — without expanding.
func TestServeSweepCellBound(t *testing.T) {
	srv := httptest.NewServer(New(Config{MaxCells: 4}))
	defer srv.Close()
	spec := `{"version": 2, "name": "big", "domain": "sched",
		"workload": {"class": "syn", "jobs": 8},
		"sweep": {"policy": ["sjf", "fcfs", "random"], "load": [0.1, 0.2, 0.3]}}`
	resp, err := http.Post(srv.URL+"/v1/scenario/sweep", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "limit of 4 cells") {
		t.Errorf("oversized sweep: status %d body %s", resp.StatusCode, body)
	}
}

// TestServeSweepSpecReplicaBound: a spec body declaring a huge replica
// count is rejected exactly like a huge ?replicas= query — the bound covers
// both sources, before any work is scheduled.
func TestServeSweepSpecReplicaBound(t *testing.T) {
	srv := httptest.NewServer(New(Config{MaxReplicas: 8}))
	defer srv.Close()
	spec := `{"version": 2, "name": "hostile", "domain": "sched",
		"policy": "sjf", "workload": {"class": "syn", "jobs": 4},
		"replicas": 1000000}`
	for _, path := range []string{"/v1/scenario/sweep", "/v1/scenario/sweep?async=1"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "replicas must be in 1..8") {
			t.Errorf("%s: status %d body %s, want 400 replica bound", path, resp.StatusCode, body)
		}
	}
	// The spec's own replica count still works when it is within bounds.
	ok := strings.Replace(spec, "1000000", "2", 1)
	resp, err := http.Post(srv.URL+"/v1/scenario/sweep", "application/json", strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"replicas": 2`) {
		t.Errorf("in-bounds spec replicas: status %d body %.200s", resp.StatusCode, body)
	}
}

// TestServeAsyncSweepTotalFromSpec: the job's status total reflects the
// spec's replica count from the moment of acceptance.
func TestServeAsyncSweepTotalFromSpec(t *testing.T) {
	srv := httptest.NewServer(New(Config{Parallelism: 2}))
	defer srv.Close()
	spec := `{"version": 2, "name": "tot", "domain": "sched",
		"policy": "sjf", "workload": {"class": "syn", "jobs": 4},
		"replicas": 3, "sweep": {"policy": ["sjf", "fcfs"]}}`
	resp, err := http.Post(srv.URL+"/v1/scenario/sweep?async=1", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	accepted := map[string]string{}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_, body := get(t, srv.URL+accepted["status"])
	var st jobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Total != 6 { // 2 cells × 3 spec replicas
		t.Errorf("job total = %d, want 6 (from the spec's replicas)", st.Total)
	}
}

// TestServeAsyncSweepJobLimit: concurrent running jobs are bounded. The
// occupying job is planted directly in the table (a real sweep could finish
// before the second request lands, making the race untestable).
func TestServeAsyncSweepJobLimit(t *testing.T) {
	api := New(Config{Parallelism: 1, MaxJobs: 1})
	api.jobMu.Lock()
	api.jobs["job-held"] = &job{id: "job-held", cancel: func() {}, state: jobRunning}
	api.jobOrder = append(api.jobOrder, "job-held")
	api.jobMu.Unlock()
	srv := httptest.NewServer(api)
	defer srv.Close()

	status, out := postSweep(t, srv.URL+"/v1/scenario/sweep?async=1")
	if status != http.StatusTooManyRequests {
		t.Fatalf("second job: status %d body %s, want 429", status, out["_body"])
	}

	// Releasing the held job frees a slot.
	api.jobs["job-held"].finish(nil, nil)
	if status, _ := postSweep(t, srv.URL+"/v1/scenario/sweep?async=1"); status != http.StatusAccepted {
		t.Fatalf("freed slot: status %d, want 202", status)
	}
}
