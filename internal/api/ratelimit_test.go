package api

import (
	"net/http"
	"testing"
	"time"
)

// TestRateLimiterBucket drives one client's bucket with a fake clock.
func TestRateLimiterBucket(t *testing.T) {
	l := newRateLimiter(2, 2) // 2 req/s, burst 2
	now := time.Unix(1000, 0)

	for i := 0; i < 2; i++ {
		if _, ok := l.allow("c", now); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	retry, ok := l.allow("c", now)
	if ok || retry < 1 {
		t.Fatalf("empty bucket: ok=%v retry=%d, want refusal with retry >= 1", ok, retry)
	}

	// Half a second refills one token at 2/s.
	now = now.Add(500 * time.Millisecond)
	if _, ok := l.allow("c", now); !ok {
		t.Fatal("refilled token refused")
	}
	if _, ok := l.allow("c", now); ok {
		t.Fatal("second token admitted before refill")
	}

	// Other clients have their own buckets.
	if _, ok := l.allow("d", now); !ok {
		t.Fatal("fresh client refused")
	}
}

// TestRateLimiterRetryAfterWholeSeconds: the wait is ceil'd to >= 1s.
func TestRateLimiterRetryAfter(t *testing.T) {
	l := newRateLimiter(0.5, 1) // one token per 2 s
	now := time.Unix(2000, 0)
	if _, ok := l.allow("c", now); !ok {
		t.Fatal("first request refused")
	}
	retry, ok := l.allow("c", now)
	if ok || retry != 2 {
		t.Fatalf("retry = %d (ok=%v), want 2", retry, ok)
	}
}

// TestRateLimiterBurstDefault: burst <= 0 defaults to max(1, ceil(rate)).
func TestRateLimiterBurstDefault(t *testing.T) {
	if l := newRateLimiter(2.5, 0); l.burst != 3 {
		t.Errorf("burst = %v, want 3", l.burst)
	}
	if l := newRateLimiter(0.1, 0); l.burst != 1 {
		t.Errorf("burst = %v, want 1", l.burst)
	}
}

// TestRateLimiterEviction: on table overflow, idle (fully refilled) buckets
// are dropped and the new client is still tracked.
func TestRateLimiterEviction(t *testing.T) {
	l := newRateLimiter(1000, 1)
	now := time.Unix(3000, 0)
	for i := 0; i < maxBuckets; i++ {
		l.allow(string(rune('a'+i%26))+string(rune(i)), now)
	}
	// All existing buckets refill within a few ms at rate 1000.
	now = now.Add(time.Second)
	if _, ok := l.allow("fresh", now); !ok {
		t.Fatal("fresh client refused after eviction")
	}
	if len(l.buckets) > maxBuckets {
		t.Errorf("bucket table grew past the bound: %d", len(l.buckets))
	}
}

// TestClientKey prefers the self-identification header over the remote host.
func TestClientKey(t *testing.T) {
	r, _ := http.NewRequest("GET", "/v1/run", nil)
	r.RemoteAddr = "192.0.2.7:5511"
	if k := clientKey(r); k != "192.0.2.7" {
		t.Errorf("remote key = %q", k)
	}
	r.Header.Set("X-Atlarge-Client", "fleet-3")
	if k := clientKey(r); k != "fleet-3" {
		t.Errorf("header key = %q", k)
	}
}
