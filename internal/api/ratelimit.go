package api

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each client key owns a bucket
// holding up to burst tokens refilled at rate tokens/second, and every
// admitted request spends one. Clients are keyed by the X-Atlarge-Client
// header when present (so a NATed fleet can self-identify), else by the
// remote address's host part.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the client table; on overflow, buckets idle long enough
// to have refilled completely are dropped (they behave identically to fresh
// ones, so eviction is invisible to those clients).
const maxBuckets = 4096

// newRateLimiter returns a limiter admitting rate requests/second per
// client with the given burst capacity; burst < 1 defaults to
// max(1, ceil(rate)).
func newRateLimiter(rate float64, burst int) *rateLimiter {
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, math.Ceil(rate))
	}
	return &rateLimiter{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// allow spends one token from key's bucket at time now. When the bucket is
// empty it returns ok=false and the whole seconds to wait until a token is
// available (>= 1, the Retry-After value).
func (l *rateLimiter) allow(key string, now time.Time) (retryAfter int, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[key]
	if !exists {
		if len(l.buckets) >= maxBuckets {
			l.evictIdleLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+l.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	wait := (1 - b.tokens) / l.rate
	return int(math.Max(1, math.Ceil(wait))), false
}

// evictIdleLocked drops buckets that have fully refilled — their owners have
// been idle at least burst/rate seconds and an evicted full bucket is
// indistinguishable from a fresh one. Caller holds mu.
func (l *rateLimiter) evictIdleLocked(now time.Time) {
	for k, b := range l.buckets {
		if b.tokens+l.rate*now.Sub(b.last).Seconds() >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// clientKey identifies the requesting client for rate limiting.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Atlarge-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
