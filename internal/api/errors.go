package api

import (
	"fmt"
	"net/http"
	"strconv"
)

// Machine-readable error codes of the v1 error envelope. Every non-2xx API
// response carries {"error": {"code", "message", "retry_after"?}}; clients
// branch on the code, humans read the message, and retry_after (seconds,
// mirrored in the Retry-After header) tells throttled clients when to come
// back.
const (
	errBadRequest      = "bad_request"       // malformed query, body, or spec
	errNotFound        = "not_found"         // unknown experiment or job
	errPayloadTooLarge = "payload_too_large" // request body over the byte cap
	errRateLimited     = "rate_limited"      // per-client token bucket empty
	errQueueFull       = "queue_full"        // pending-task queue over bound
	errJobLimit        = "job_limit"         // concurrent running jobs at cap
	errJobRunning      = "job_running"       // result fetched before done
	errJobFailed       = "job_failed"        // job finished with an error
	errJobCancelled    = "job_cancelled"     // job was cancelled
	errResultEvicted   = "result_evicted"    // finished job aged out of history
	errInternal        = "internal"          // execution failure
)

// apiError is the body of the envelope.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfter is the suggested wait in seconds before retrying; set on
	// 429 responses and mirrored in the Retry-After header.
	RetryAfter int `json:"retry_after,omitempty"`
}

// errorEnvelope is the canonical JSON error document.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

// writeError emits the typed error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: apiError{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// writeRetryError emits the envelope with a retry hint, mirrored in the
// Retry-After header so plain HTTP clients honour it too.
func writeRetryError(w http.ResponseWriter, status int, code string, retryAfter int, format string, args ...any) {
	if retryAfter < 1 {
		retryAfter = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, status, errorEnvelope{Error: apiError{
		Code: code, Message: fmt.Sprintf(format, args...), RetryAfter: retryAfter,
	}})
}
