package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"atlarge"
)

// testRegistry builds a tiny catalog so server tests never pay for the real
// simulations.
func testRegistry(t *testing.T) *atlarge.Registry {
	t.Helper()
	reg := atlarge.NewRegistry()
	for i, id := range []string{"alpha", "beta"} {
		id := id
		reg.MustRegister(atlarge.Experiment{
			ID:    id,
			Title: "experiment " + id,
			Tags:  []string{"fast"},
			Order: (i + 1) * 10,
			Run: func(seed int64) (*atlarge.Report, error) {
				rep := atlarge.NewReport(id, "experiment "+id)
				rep.AddMetric(atlarge.Metric{Name: "value", Value: float64(seed % 1000)})
				tb := rep.AddTable("rows", "label", "value")
				tb.AddRow(atlarge.Label("P2 ("+id+")"), atlarge.Num(float64(seed%7), "%.0f"))
				return rep, nil
			},
		})
	}
	return reg
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(Config{Registry: testRegistry(t), Parallelism: 2}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp, sb.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestServeExperiments(t *testing.T) {
	srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/v1/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var entries []CatalogEntry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(entries) != 2 || entries[0].ID != "alpha" || entries[1].ID != "beta" {
		t.Errorf("catalog = %+v", entries)
	}
}

func TestServeRunAndCache(t *testing.T) {
	srv := newTestServer(t)
	url := srv.URL + "/v1/run?ids=alpha,beta&seed=42&replicas=3"

	resp1, body1 := get(t, url)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp1.StatusCode, body1)
	}
	if state := resp1.Header.Get("X-Atlarge-Cache"); state != "miss" {
		t.Errorf("first request cache state = %q, want miss", state)
	}

	resp2, body2 := get(t, url)
	if state := resp2.Header.Get("X-Atlarge-Cache"); state != "hit" {
		t.Errorf("second request cache state = %q, want hit", state)
	}
	if body1 != body2 {
		t.Error("cached response differs from computed response")
	}

	// A subset of a cached request is fully served from cache.
	resp3, _ := get(t, srv.URL+"/v1/run?ids=beta&seed=42&replicas=3")
	if state := resp3.Header.Get("X-Atlarge-Cache"); state != "hit" {
		t.Errorf("subset cache state = %q, want hit", state)
	}
	// A new seed misses; mixing cached and uncached ids is partial.
	get(t, srv.URL+"/v1/run?ids=alpha&seed=7")
	resp4, _ := get(t, srv.URL+"/v1/run?ids=alpha,beta&seed=7")
	if state := resp4.Header.Get("X-Atlarge-Cache"); state != "partial" {
		t.Errorf("mixed cache state = %q, want partial", state)
	}

	var doc atlarge.RunDocument
	if err := json.Unmarshal([]byte(body1), &doc); err != nil {
		t.Fatalf("invalid run document: %v", err)
	}
	if doc.Seed != 42 || len(doc.Experiments) != 2 {
		t.Fatalf("document shape: %+v", doc)
	}
	for _, e := range doc.Experiments {
		if e.Replicas != 3 || e.Report == nil || e.Aggregate == nil {
			t.Errorf("experiment %s incomplete: %+v", e.ID, e)
		}
	}
}

func TestServeRunErrors(t *testing.T) {
	srv := newTestServer(t)
	for _, tc := range []struct {
		query string
		want  int
	}{
		{"ids=nope", http.StatusNotFound},
		{"seed=abc", http.StatusBadRequest},
		{"replicas=0", http.StatusBadRequest},
		{"replicas=1000000", http.StatusBadRequest},
		{"replicas=x", http.StatusBadRequest},
	} {
		resp, body := get(t, srv.URL+"/v1/run?"+tc.query)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.query, resp.StatusCode, tc.want, body)
		}
		if !strings.Contains(body, `"error"`) {
			t.Errorf("%s: no error envelope: %s", tc.query, body)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/run", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/run status = %d, want 405", resp.StatusCode)
	}
}

func TestServeScenarioSweep(t *testing.T) {
	srv := httptest.NewServer(New(Config{Parallelism: 2}))
	defer srv.Close()
	spec := `{"version": 2, "name": "api-sweep", "domain": "sched",
		"policy": "sjf", "workload": {"class": "syn", "jobs": 8},
		"cluster": {"machines": 2},
		"sweep": {"policy": ["sjf", "fcfs"]}}`
	resp, err := http.Post(srv.URL+"/v1/scenario/sweep?seed=5&replicas=2", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Name     string `json:"name"`
		Domain   string `json:"domain"`
		Seed     int64  `json:"seed"`
		Replicas int    `json:"replicas"`
		Cells    []struct {
			ID      string                        `json:"id"`
			Metrics map[string]map[string]float64 `json:"-"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("invalid sweep report: %v\n%s", err, body)
	}
	if rep.Name != "api-sweep" || rep.Domain != "sched" || rep.Seed != 5 || rep.Replicas != 2 || len(rep.Cells) != 2 {
		t.Errorf("sweep report shape: %+v", rep)
	}

	// A malformed body is a 400 with the scenario validator's message.
	resp2, err := http.Post(srv.URL+"/v1/scenario/sweep", "application/json", strings.NewReader(`{"version": 1, "name": "x", "policy": "nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if body := readAll(t, resp2); resp2.StatusCode != http.StatusBadRequest || !strings.Contains(body, `"error"`) {
		t.Errorf("bad spec: status %d body %s", resp2.StatusCode, body)
	}
}

// TestServeRunCoalescesConcurrentMisses pins the singleflight behavior:
// concurrent identical cache misses simulate once and share the result.
func TestServeRunCoalescesConcurrentMisses(t *testing.T) {
	var runs atomic.Int64
	reg := atlarge.NewRegistry()
	reg.MustRegister(atlarge.Experiment{
		ID: "slow", Title: "slow", Order: 1,
		Run: func(seed int64) (*atlarge.Report, error) {
			runs.Add(1)
			time.Sleep(50 * time.Millisecond)
			rep := atlarge.NewReport("slow", "slow")
			rep.AddMetric(atlarge.Metric{Name: "v", Value: 1})
			return rep, nil
		},
	})
	srv := httptest.NewServer(New(Config{Registry: reg}))
	defer srv.Close()

	const clients = 8
	bodies := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/run?ids=slow&seed=3")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			bodies[i] = readAll(t, resp)
		}(i)
	}
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Errorf("experiment ran %d times for %d concurrent identical requests, want 1", got, clients)
	}
	for i := 1; i < clients; i++ {
		if bodies[i] != bodies[0] {
			t.Errorf("client %d got a different body", i)
		}
	}
}

// TestServeScenarioSweepBodyLimit pins the request-body cap.
func TestServeScenarioSweepBodyLimit(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()
	huge := strings.NewReader(`{"pad": "` + strings.Repeat("x", maxSpecBytes+1) + `"}`)
	resp, err := http.Post(srv.URL+"/v1/scenario/sweep", "application/json", huge)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if body := readAll(t, resp); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413 (%s)", resp.StatusCode, body)
	}
}

func TestLRU(t *testing.T) {
	c := newLRU[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	c.Put("c", 3) // evicts b (a was refreshed by the Get)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	c.Put("a", 9)
	if v, _ := c.Get("a"); v != 9 {
		t.Errorf("refresh lost: %d", v)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}
