package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"atlarge/internal/sim"
)

// TestJobProfileEndpoint: a finished job's /profile reports the span
// aggregates its tasks produced — counts, wait/run summaries, and the
// per-worker breakdown.
func TestJobProfileEndpoint(t *testing.T) {
	srv := httptest.NewServer(New(Config{Parallelism: 2}))
	defer srv.Close()

	status, doc, raw := postJob(t, srv.URL, jobBody(11))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, raw)
	}
	waitJobDone(t, srv.URL, doc.ID)

	resp, body := get(t, srv.URL+"/v1/jobs/"+doc.ID+"/profile")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile: status %d, body %s", resp.StatusCode, body)
	}
	var prof jobProfileDoc
	if err := json.Unmarshal([]byte(body), &prof); err != nil {
		t.Fatalf("bad profile doc %s: %v", body, err)
	}
	if prof.Job != doc.ID || prof.State != jobDone {
		t.Errorf("profile identity = %q/%q", prof.Job, prof.State)
	}
	// 2 cells × 2 replicas, all live runs on a fresh server.
	if prof.Tasks.Observed != 4 || prof.Tasks.Failed != 0 {
		t.Errorf("tasks = %+v, want 4 observed, 0 failed", prof.Tasks)
	}
	if prof.RunMs.Max <= 0 || prof.RunMs.Mean <= 0 {
		t.Errorf("run times not recorded: %+v", prof.RunMs)
	}
	if prof.RunMs.Max < prof.RunMs.Mean {
		t.Errorf("max run %.3f below mean %.3f", prof.RunMs.Max, prof.RunMs.Mean)
	}
	workerTasks := 0
	for _, ws := range prof.Workers {
		workerTasks += ws.Tasks
	}
	if len(prof.Workers) == 0 || workerTasks != prof.Tasks.Observed {
		t.Errorf("worker rows account for %d of %d tasks: %+v",
			workerTasks, prof.Tasks.Observed, prof.Workers)
	}

	// Unknown jobs 404 like the other job routes.
	resp, _ = get(t, srv.URL+"/v1/jobs/nope/profile")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job profile: status %d", resp.StatusCode)
	}
}

// TestKernelMetrics: the /metrics page always carries the process-wide
// kernel event counter and rate; with Config.KernelProfile it also breaks
// fired events and handler wall time out per event name.
func TestKernelMetrics(t *testing.T) {
	defer sim.SetKernelObserver(nil)
	srv := httptest.NewServer(New(Config{Parallelism: 2, KernelProfile: true}))
	defer srv.Close()

	status, doc, raw := postJob(t, srv.URL, jobBody(13))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, raw)
	}
	waitJobDone(t, srv.URL, doc.ID)

	_, page := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		"# TYPE atlarge_kernel_events_total counter",
		"# TYPE atlarge_kernel_events_per_second gauge",
		"# TYPE atlarge_kernel_event_fired_total counter",
		"# TYPE atlarge_kernel_event_wall_seconds_total counter",
		`atlarge_kernel_event_fired_total{event="`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
	if strings.Contains(page, "atlarge_kernel_events_total 0\n") {
		t.Error("kernel event counter still zero after a sweep")
	}
}

// TestKernelMetricsWithoutProfile: the per-event families stay off the page
// unless Config.KernelProfile opted into the tracer cost.
func TestKernelMetricsWithoutProfile(t *testing.T) {
	srv := httptest.NewServer(New(Config{Parallelism: 2}))
	defer srv.Close()
	_, page := get(t, srv.URL+"/metrics")
	if !strings.Contains(page, "atlarge_kernel_events_total") {
		t.Error("metrics page missing the always-on kernel event counter")
	}
	if strings.Contains(page, "atlarge_kernel_event_fired_total") {
		t.Error("per-event kernel families present without KernelProfile")
	}
}
