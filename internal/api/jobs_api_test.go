package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"atlarge/internal/scenario"
)

// jobBody wraps sweepSpecBody in a POST /v1/jobs request with a seed.
func jobBody(seed int64) string {
	return `{"kind": "sweep", "spec": ` + sweepSpecBody + `, "seed": ` + strconvI64(seed) + `, "replicas": 2}`
}

func strconvI64(v int64) string {
	raw, _ := json.Marshal(v)
	return string(raw)
}

// postJob submits a job and decodes the resource document.
func postJob(t *testing.T, url, body string) (int, jobDoc, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw := readAll(t, resp)
	var doc jobDoc
	_ = json.Unmarshal([]byte(raw), &doc)
	return resp.StatusCode, doc, raw
}

// waitJobDone polls GET /v1/jobs/{id} until the job leaves running.
func waitJobDone(t *testing.T, url, id string) jobDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := get(t, url+"/v1/jobs/"+id)
		var doc jobDoc
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("bad job doc %s: %v", body, err)
		}
		if doc.State != jobRunning {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck running: %+v", doc)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJobsLifecycle drives the redesigned resource end to end: submit,
// list (with state filter), poll, fetch a result byte-identical to the
// synchronous sweep, and observe the same job through the deprecated alias.
func TestJobsLifecycle(t *testing.T) {
	srv := httptest.NewServer(New(Config{Parallelism: 2}))
	defer srv.Close()

	status, doc, raw := postJob(t, srv.URL, jobBody(5))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, raw)
	}
	if doc.ID == "" || doc.Kind != jobKindSweep || doc.Name != "api-async" || doc.Links.Self != "/v1/jobs/"+doc.ID {
		t.Fatalf("submit doc = %+v", doc)
	}

	done := waitJobDone(t, srv.URL, doc.ID)
	if done.State != jobDone || done.Done != 4 || done.Total != 4 || done.Links.Result != "/v1/jobs/"+doc.ID+"/result" {
		t.Fatalf("finished doc = %+v", done)
	}

	// The list shows the job; the state filter includes and excludes it.
	_, listBody := get(t, srv.URL+"/v1/jobs")
	if !strings.Contains(listBody, doc.ID) {
		t.Errorf("job missing from list: %s", listBody)
	}
	_, doneList := get(t, srv.URL+"/v1/jobs?state=done")
	if !strings.Contains(doneList, doc.ID) {
		t.Errorf("job missing from ?state=done: %s", doneList)
	}
	_, failedList := get(t, srv.URL+"/v1/jobs?state=failed")
	if strings.Contains(failedList, doc.ID) {
		t.Errorf("done job listed under ?state=failed: %s", failedList)
	}

	// Result bytes equal the synchronous sweep response for the same
	// (spec, seed, replicas).
	_, jobResult := get(t, srv.URL+"/v1/jobs/"+doc.ID+"/result")
	syncStatus, syncOut := postSweep(t, srv.URL+"/v1/scenario/sweep?seed=5&replicas=2")
	if syncStatus != http.StatusOK {
		t.Fatalf("sync sweep failed: %d", syncStatus)
	}
	if jobResult != syncOut["_body"] {
		t.Error("job result bytes differ from synchronous sweep response")
	}

	// The deprecated alias serves the same job in the legacy shape, marked
	// deprecated.
	resp, legacyBody := get(t, srv.URL+"/v1/scenario/jobs/"+doc.ID)
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy alias lacks Deprecation header")
	}
	var st jobStatus
	if err := json.Unmarshal([]byte(legacyBody), &st); err != nil || st.Job != doc.ID || st.State != jobDone {
		t.Errorf("legacy status = %s", legacyBody)
	}
	_, legacyResult := get(t, srv.URL+st.Result)
	if legacyResult != jobResult {
		t.Error("legacy result bytes differ from /v1/jobs result")
	}
}

// TestJobsDedup: identical submissions share one job — 202 on create, 200
// with the same ID after, across both the new route and the legacy async
// sweep (whose ID is the same content hash).
func TestJobsDedup(t *testing.T) {
	srv := httptest.NewServer(New(Config{Parallelism: 2}))
	defer srv.Close()

	status, first, raw := postJob(t, srv.URL, jobBody(11))
	if status != http.StatusAccepted {
		t.Fatalf("first submit: status %d, body %s", status, raw)
	}
	status, second, raw := postJob(t, srv.URL, jobBody(11))
	if status != http.StatusOK || second.ID != first.ID {
		t.Fatalf("dup submit: status %d, id %q (want 200, %q); body %s", status, second.ID, first.ID, raw)
	}

	// The legacy async sweep with the same (spec, seed, replicas) resolves
	// to the same job.
	legacyStatus, out := postSweep(t, srv.URL+"/v1/scenario/sweep?seed=11&replicas=2&async=1")
	if legacyStatus != http.StatusOK || out["job"] != first.ID {
		t.Errorf("legacy async dedup: status %d, job %q (want 200, %q)", legacyStatus, out["job"], first.ID)
	}

	// A different seed is different work: fresh job, fresh ID.
	status, other, _ := postJob(t, srv.URL, jobBody(12))
	if status != http.StatusAccepted || other.ID == first.ID {
		t.Errorf("distinct submit: status %d, id %q", status, other.ID)
	}
}

// TestJobsEvictedResult: a job evicted from the finished-job history
// answers 410 result_evicted — not 404 — on later fetches.
func TestJobsEvictedResult(t *testing.T) {
	srv := httptest.NewServer(New(Config{Parallelism: 2, KeepJobs: 1}))
	defer srv.Close()

	_, first, _ := postJob(t, srv.URL, jobBody(21))
	waitJobDone(t, srv.URL, first.ID)
	_, second, _ := postJob(t, srv.URL, jobBody(22))
	waitJobDone(t, srv.URL, second.ID)

	resp, env, raw := doReq(t, "GET", srv.URL+"/v1/jobs/"+first.ID+"/result", "")
	if resp.StatusCode != http.StatusGone || env.Error.Code != errResultEvicted {
		t.Fatalf("evicted result: status %d, body %s", resp.StatusCode, raw)
	}
	resp, env, raw = doReq(t, "GET", srv.URL+"/v1/jobs/"+first.ID, "")
	if resp.StatusCode != http.StatusGone || env.Error.Code != errResultEvicted {
		t.Fatalf("evicted status: status %d, body %s", resp.StatusCode, raw)
	}
	// The surviving job is unaffected.
	if resp, _ := get(t, srv.URL+"/v1/jobs/"+second.ID+"/result"); resp.StatusCode != http.StatusOK {
		t.Errorf("surviving job result: status %d", resp.StatusCode)
	}
}

// TestJobsDurableRestart: with a state dir, a finished job survives a
// server restart — a fresh Server over the same directory re-lists it and
// serves identical result bytes without re-running anything.
func TestJobsDurableRestart(t *testing.T) {
	dir := t.TempDir()

	api1 := New(Config{Parallelism: 2, StateDir: dir})
	srv1 := httptest.NewServer(api1)
	_, doc, raw := postJob(t, srv1.URL, jobBody(31))
	if doc.ID == "" {
		t.Fatalf("submit: %s", raw)
	}
	waitJobDone(t, srv1.URL, doc.ID)
	_, want := get(t, srv1.URL+"/v1/jobs/"+doc.ID+"/result")
	// The in-memory job settles before its outcome hits the disk; wait for
	// the durable record so the "restart" below sees a finished job.
	store, err := newJobstore(dir)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec, err := store.loadRecord(doc.ID)
		if err == nil && rec.State == jobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("durable record never reached done (err %v)", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv1.Close()

	api2 := New(Config{Parallelism: 2, StateDir: dir})
	resumed, restored, err := api2.RecoverJobs()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if resumed != 0 || restored != 1 {
		t.Fatalf("recover counts = (%d resumed, %d restored), want (0, 1)", resumed, restored)
	}
	srv2 := httptest.NewServer(api2)
	defer srv2.Close()
	resp, got := get(t, srv2.URL+"/v1/jobs/"+doc.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered result: status %d, body %s", resp.StatusCode, got)
	}
	if got != want {
		t.Error("recovered result bytes differ from the pre-restart result")
	}
}

// TestJobsInterruptedResume: a job whose durable record still says running
// (the server died mid-flight) relaunches on recovery and converges to the
// same bytes a synchronous sweep produces.
func TestJobsInterruptedResume(t *testing.T) {
	dir := t.TempDir()

	// Forge the durable state an interrupted server leaves behind: a
	// running job record with no result.
	spec, err := scenario.Parse(strings.NewReader(sweepSpecBody))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := scenario.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	const seed, replicas = 41, 2
	id, err := scenario.RunHash(spec, seed, replicas)
	if err != nil {
		t.Fatal(err)
	}
	store, err := newJobstore(dir)
	if err != nil {
		t.Fatal(err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.saveRecord(&jobRecord{
		ID: id, Kind: jobKindSweep, Name: spec.Name, Domain: spec.Domain,
		Seed: seed, Replicas: replicas, Total: len(cells) * replicas,
		State: jobRunning, Spec: specJSON,
	}); err != nil {
		t.Fatal(err)
	}

	api := New(Config{Parallelism: 2, StateDir: dir})
	resumed, restored, err := api.RecoverJobs()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if resumed != 1 || restored != 0 {
		t.Fatalf("recover counts = (%d resumed, %d restored), want (1, 0)", resumed, restored)
	}
	srv := httptest.NewServer(api)
	defer srv.Close()

	done := waitJobDone(t, srv.URL, id)
	if done.State != jobDone {
		t.Fatalf("resumed job = %+v", done)
	}
	_, resumedResult := get(t, srv.URL+"/v1/jobs/"+id+"/result")
	syncStatus, syncOut := postSweep(t, srv.URL+"/v1/scenario/sweep?seed=41&replicas=2")
	if syncStatus != http.StatusOK {
		t.Fatalf("sync sweep failed: %d", syncStatus)
	}
	if resumedResult != syncOut["_body"] {
		t.Error("resumed result bytes differ from synchronous sweep response")
	}

	// The outcome was persisted (runJob settles in-memory state first, so
	// poll briefly): one more restart would restore, not resume.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec, err := store.loadRecord(id)
		if err == nil && rec.State == jobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("durable record never reached done (err %v)", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, ok := store.loadResult(id); !ok {
		t.Error("no durable result bytes after resume")
	}
}

// TestJobsCancelPersists: cancelling a durable job lands the cancelled
// state on disk (so a restart restores it as terminal instead of resuming),
// and its result answers 410 job_cancelled. A 64-replica sweep on one
// worker gives the DELETE time to land; if the job wins the race anyway the
// cancel-specific assertions are skipped, as in TestServeAsyncSweepCancel.
func TestJobsCancelPersists(t *testing.T) {
	dir := t.TempDir()
	api := New(Config{Parallelism: 1, StateDir: dir})
	srv := httptest.NewServer(api)
	defer srv.Close()

	body := `{"kind": "sweep", "spec": ` + sweepSpecBody + `, "seed": 51, "replicas": 64}`
	status, doc, raw := postJob(t, srv.URL, body)
	if status != http.StatusAccepted || doc.ID == "" {
		t.Fatalf("submit: status %d, body %s", status, raw)
	}
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+doc.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var afterCancel jobDoc
	if err := json.Unmarshal([]byte(readAll(t, res)), &afterCancel); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if afterCancel.State != jobCancelled && afterCancel.State != jobDone {
		t.Fatalf("after DELETE, job = %+v", afterCancel)
	}
	if afterCancel.State != jobCancelled {
		t.Skip("job finished before the cancel landed")
	}

	r, env, resBody := doReq(t, "GET", srv.URL+"/v1/jobs/"+doc.ID+"/result", "")
	if r.StatusCode != http.StatusGone || env.Error.Code != errJobCancelled {
		t.Fatalf("cancelled result: status %d, body %s", r.StatusCode, resBody)
	}

	store, err := newJobstore(dir)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec, err := store.loadRecord(doc.ID)
		if err == nil && rec.State == jobCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("durable record never reached cancelled (err %v)", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRunHashMatchesCheckpointKey: the job ID equals the sweep checkpoint
// run hash, so a job's durable directory is its checkpoint directory.
func TestRunHashMatchesCheckpointKey(t *testing.T) {
	spec, err := scenario.Parse(bytes.NewReader([]byte(sweepSpecBody)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := scenario.RunHash(spec, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.RunHash(spec, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || len(a) != 16 {
		t.Fatalf("RunHash not stable 16-hex: %q vs %q", a, b)
	}
	if c, _ := scenario.RunHash(spec, 6, 2); c == a {
		t.Error("seed change did not change the hash")
	}
}
