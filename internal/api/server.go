package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"atlarge"
	"atlarge/internal/scenario"
)

// maxSpecBytes bounds a /v1/scenario/sweep request body; real specs are a
// few KiB, so 1 MiB is generous while keeping the server un-OOM-able.
const maxSpecBytes = 1 << 20

// Config tunes a Server.
type Config struct {
	// Registry supplies the experiment catalog; nil means the default
	// built-in catalog.
	Registry *atlarge.Registry
	// Parallelism bounds the worker pool behind /v1/run and
	// /v1/scenario/sweep; <= 0 means GOMAXPROCS.
	Parallelism int
	// CacheSize caps the LRU result cache (entries, one per cached
	// (experiment, seed, replicas) triple); <= 0 means 256.
	CacheSize int
	// MaxReplicas rejects run requests asking for more replicas; <= 0
	// means 64.
	MaxReplicas int
}

// runKey identifies one cached experiment result: results are cached per
// experiment, not per request, so overlapping id sets share entries.
type runKey struct {
	id       string
	seed     int64
	replicas int
}

// Server is the HTTP face of the Results API v2:
//
//	GET  /v1/experiments                     the experiment catalog
//	GET  /v1/run?ids=&seed=&replicas=        typed run results (LRU-cached)
//	POST /v1/scenario/sweep?seed=&replicas=  expand + run a scenario spec body
//
// All responses are JSON; run results are byte-identical for a fixed query
// at any parallelism and across cache hits and misses.
type Server struct {
	cfg   Config
	cache *lruCache[runKey, atlarge.ExperimentResult]
	mux   *http.ServeMux

	// mu guards inflight (and makes the cache-lookup/flight-registration
	// pair atomic): concurrent identical misses coalesce onto one flight
	// instead of re-running the same simulation.
	mu       sync.Mutex
	inflight map[runKey]*flight
}

// flight is one in-progress computation of a runKey; waiters block on done.
type flight struct {
	done chan struct{}
	res  atlarge.ExperimentResult
	err  error
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = atlarge.DefaultRegistry()
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 256
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = 64
	}
	s := &Server{
		cfg:      cfg,
		cache:    newLRU[runKey, atlarge.ExperimentResult](cfg.CacheSize),
		mux:      http.NewServeMux(),
		inflight: make(map[runKey]*flight),
	}
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/scenario/sweep", s.handleScenarioSweep)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// CatalogEntry is one experiment in GET /v1/experiments — the same document
// `atlarge list --format json` prints.
type CatalogEntry struct {
	ID    string   `json:"id"`
	Title string   `json:"title"`
	Tags  []string `json:"tags,omitempty"`
	Order int      `json:"order"`
}

// Catalog renders a registry as catalog entries in canonical order.
func Catalog(reg *atlarge.Registry) []CatalogEntry {
	entries := make([]CatalogEntry, 0, reg.Len())
	for _, e := range reg.Experiments() {
		entries = append(entries, CatalogEntry{ID: e.ID, Title: e.Title, Tags: e.Tags, Order: e.Order})
	}
	return entries
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Catalog(s.cfg.Registry))
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seed, err := queryInt64(q.Get("seed"), 42)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad seed: %v", err)
		return
	}
	replicas, err := queryInt(q.Get("replicas"), 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad replicas: %v", err)
		return
	}
	if replicas < 1 || replicas > s.cfg.MaxReplicas {
		writeError(w, http.StatusBadRequest, "replicas must be in 1..%d", s.cfg.MaxReplicas)
		return
	}
	ids := splitIDs(q.Get("ids"))
	if len(ids) == 0 {
		ids = s.cfg.Registry.IDs()
	}
	for _, id := range ids {
		if _, err := s.cfg.Registry.Get(id); err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
	}

	// Serve each experiment from the (id, seed, replicas) cache. Misses
	// either join an identical in-flight computation (so two concurrent
	// queries for the slow tab9 simulate it once) or are claimed by this
	// request and computed in one runner invocation, fanning out over the
	// worker pool.
	results := make(map[string]atlarge.ExperimentResult, len(ids))
	owned := make(map[string]*flight)
	joined := make(map[string]*flight)
	s.mu.Lock()
	for _, id := range ids {
		key := runKey{id, seed, replicas}
		if res, ok := s.cache.Get(key); ok {
			results[id] = res
			continue
		}
		if f, ok := s.inflight[key]; ok {
			joined[id] = f
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		owned[id] = f
	}
	s.mu.Unlock()

	var runErr error
	if len(owned) > 0 {
		// Keyed off the owned set (not ids) so a duplicated id in the query
		// runs once; result bytes are order-independent because seeds derive
		// from (baseSeed, id, replica) alone.
		toRun := make([]string, 0, len(owned))
		for id := range owned {
			toRun = append(toRun, id)
		}
		runner := &atlarge.Runner{
			Registry:    s.cfg.Registry,
			Parallelism: s.cfg.Parallelism,
			Replicas:    replicas,
		}
		runResults, err := runner.Run(toRun, seed)
		runErr = err
		byID := make(map[string]atlarge.ExperimentResult)
		if runResults != nil {
			for _, res := range atlarge.NewRunDocument(seed, runResults).Experiments {
				byID[res.ID] = res
			}
		}
		// Settle every owned flight — success or failure — before any
		// early return, so joined waiters never block forever.
		s.mu.Lock()
		for id, f := range owned {
			key := runKey{id, seed, replicas}
			if res, ok := byID[id]; ok {
				f.res = res
				s.cache.Put(key, res)
				results[id] = res
			} else {
				f.err = err
				if f.err == nil {
					f.err = fmt.Errorf("atlarge: experiment %s produced no result", id)
				}
				runErr = f.err
			}
			delete(s.inflight, key)
			close(f.done)
		}
		s.mu.Unlock()
	}
	for id, f := range joined {
		<-f.done
		if f.err != nil && runErr == nil {
			runErr = f.err
		}
		results[id] = f.res
	}
	if runErr != nil {
		writeError(w, http.StatusInternalServerError, "%v", runErr)
		return
	}

	doc := &atlarge.RunDocument{Seed: seed}
	for _, id := range ids {
		doc.Experiments = append(doc.Experiments, results[id])
	}
	cacheState := "hit"
	if misses := len(owned) + len(joined); misses == len(ids) {
		cacheState = "miss"
	} else if misses > 0 {
		cacheState = "partial"
	}
	w.Header().Set("X-Atlarge-Cache", cacheState)
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleScenarioSweep(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSpecBytes)
	spec, err := scenario.Parse(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "spec body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := r.URL.Query()
	opt := scenario.Options{Parallelism: s.cfg.Parallelism}
	if raw := q.Get("seed"); raw != "" {
		seed, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad seed: %v", err)
			return
		}
		opt.Seed = &seed
	}
	if raw := q.Get("replicas"); raw != "" {
		replicas, err := strconv.Atoi(raw)
		if err != nil || replicas < 1 || replicas > s.cfg.MaxReplicas {
			writeError(w, http.StatusBadRequest, "replicas must be in 1..%d", s.cfg.MaxReplicas)
			return
		}
		opt.Replicas = replicas
	}
	cells, err := scenario.Expand(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rep, err := scenario.Run(spec, cells, opt)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = rep.WriteJSON(w)
}

// splitIDs parses the comma-separated ids parameter.
func splitIDs(raw string) []string {
	var out []string
	for _, id := range strings.Split(raw, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

func queryInt64(raw string, def int64) (int64, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.ParseInt(raw, 10, 64)
}

func queryInt(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}

// writeJSON emits a JSON body with the canonical two-space indent, matching
// the CLI byte for byte.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the canonical JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
