package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"atlarge"
	"atlarge/internal/api/metrics"
	"atlarge/internal/dist"
	"atlarge/internal/exec"
	"atlarge/internal/obs"
	"atlarge/internal/scenario"
	"atlarge/internal/sim"
)

// maxSpecBytes bounds a job or sweep request body; real specs are a few
// KiB, so 1 MiB is generous while keeping the server un-OOM-able.
const maxSpecBytes = 1 << 20

// Config tunes a Server.
type Config struct {
	// Registry supplies the experiment catalog; nil means the default
	// built-in catalog.
	Registry *atlarge.Registry
	// Parallelism bounds the worker pool behind /v1/run and sweeps; <= 0
	// means GOMAXPROCS.
	Parallelism int
	// CacheSize caps the LRU result cache (entries, one per cached
	// (experiment, seed, replicas) triple); <= 0 means 256.
	CacheSize int
	// MaxReplicas rejects run requests asking for more replicas; <= 0
	// means 64.
	MaxReplicas int
	// MaxCells rejects sweep specs whose axis cardinalities alone multiply
	// to more cells, before any cell is materialized; <= 0 means 4096.
	// Values above 4096 (the scenario engine's own hard expansion bound)
	// are clamped to it.
	MaxCells int
	// MaxJobs bounds concurrently running async jobs; <= 0 means 4.
	MaxJobs int
	// KeepJobs bounds the finished-job history retained for status
	// queries; the oldest finished jobs beyond it are evicted (their IDs
	// are remembered, so fetching an evicted result is 410 result_evicted,
	// not 404). <= 0 means 64.
	KeepJobs int
	// Rate is the per-client admission rate for work-submitting endpoints
	// (requests/second, token bucket keyed by X-Atlarge-Client or remote
	// host); <= 0 disables rate limiting.
	Rate float64
	// Burst is the token bucket capacity; <= 0 means max(1, ceil(Rate)).
	Burst int
	// QueueDepth bounds the pending-task queue across all work the server
	// is running: submissions that would push past it are refused with 429
	// and a computed Retry-After. <= 0 means 4096.
	QueueDepth int
	// StateDir, when non-empty, makes jobs durable: specs and state
	// persist under this directory (shared with the sweep checkpoint
	// store, so a job's partial results live next to its record), and
	// RecoverJobs resumes interrupted jobs after a restart.
	StateDir string
	// Workers lists remote worker addresses ("host:port" or http URLs); when
	// non-empty (and after ConnectWorkers succeeds), sweeps execute across
	// those worker processes instead of the in-process pool, byte-identically.
	// /v1/run traffic stays local.
	Workers []string
	// KernelProfile attaches a shared per-event-name profile to every
	// simulation kernel the process creates (it installs the process-global
	// kernel observer), surfacing per-event fire counts and handler wall
	// time as /metrics families. Off by default: profiling adds a tracer
	// call per kernel event.
	KernelProfile bool
}

// runKey identifies one cached experiment result: results are cached per
// experiment, not per request, so overlapping id sets share entries.
type runKey struct {
	id       string
	seed     int64
	replicas int
}

// Server is the HTTP face of the Results API:
//
//	GET    /v1/experiments                     the experiment catalog
//	GET    /v1/run?ids=&seed=&replicas=        typed run results (LRU-cached)
//	GET    /v1/run/stream?ids=&seed=&replicas= the same run as live NDJSON progress events
//	POST   /v1/scenario/sweep?seed=&replicas=  expand + run a scenario spec body synchronously
//	POST   /v1/jobs                            submit async work ({"kind","spec","seed"?,"replicas"?})
//	GET    /v1/jobs?state=                     list jobs, optionally filtered by state
//	GET    /v1/jobs/{id}                       one job's resource document
//	GET    /v1/jobs/{id}/result                the finished job's report (sync-identical bytes)
//	GET    /v1/jobs/{id}/profile               the job's execution profile (span aggregates)
//	DELETE /v1/jobs/{id}                       cancel a running job mid-plan
//	GET    /metrics                            Prometheus text-format server metrics
//
// /v1/scenario/jobs/{id}[...] and POST /v1/scenario/sweep?async=1 remain as
// deprecated aliases of the jobs resource.
//
// Job IDs are the content hash of (spec, seed, replicas) — the same hash
// the sweep checkpoint store uses — so identical sweeps submitted by
// concurrent clients dedup onto one job, and with Config.StateDir set jobs
// survive restarts: RecoverJobs re-lists finished jobs and resumes
// interrupted ones byte-identically from their checkpointed tasks.
//
// All responses are JSON; errors use the typed envelope
// {"error": {"code", "message", "retry_after"?}}. Run results are
// byte-identical for a fixed query at any parallelism and across cache hits
// and misses, and an async job's result is byte-identical to the
// synchronous sweep response for the same spec.
type Server struct {
	cfg   Config
	cache *lruCache[runKey, atlarge.ExperimentResult]
	mux   *http.ServeMux
	stats *exec.Stats
	adm   *admission
	store *jobstore // nil without StateDir

	// Distributed execution (Config.Workers): the dialed worker clients and
	// the process-wide dist counters behind the atlarge_dist_* families.
	// distClients is written once by ConnectWorkers, before traffic.
	distClients []*dist.Client
	distStats   *dist.Stats

	// mu guards inflight (and makes the cache-lookup/flight-registration
	// pair atomic): concurrent identical misses coalesce onto one flight
	// instead of re-running the same simulation.
	mu       sync.Mutex
	inflight map[runKey]*flight

	// jobMu guards the async job table and the evicted-ID memory.
	jobMu        sync.Mutex
	jobs         map[string]*job
	jobOrder     []string
	evicted      map[string]bool
	evictedOrder []string

	// Prometheus instruments (see /metrics).
	metrics      *metrics.Registry
	mRequests    *metrics.CounterVec
	mLatency     *metrics.HistogramVec
	mCacheHits   *metrics.Counter
	mCacheMisses *metrics.Counter

	// Kernel observability: krate smooths the process-wide fired-event
	// counter into events/second; kprof (Config.KernelProfile only)
	// aggregates per-event-name profiles across every kernel.
	krate *rateTracker
	kprof *obs.SharedProfile
}

// flight is one in-progress computation of a runKey; waiters block on done.
type flight struct {
	done chan struct{}
	res  atlarge.ExperimentResult
	err  error
}

// New returns a ready-to-serve Server. With Config.StateDir set, call
// RecoverJobs before serving traffic to re-list and resume persisted jobs;
// New itself never launches work.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = atlarge.DefaultRegistry()
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 256
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = 64
	}
	if cfg.MaxCells <= 0 || cfg.MaxCells > scenario.MaxCells {
		cfg.MaxCells = scenario.MaxCells
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4
	}
	if cfg.KeepJobs <= 0 {
		cfg.KeepJobs = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	s := &Server{
		cfg:       cfg,
		cache:     newLRU[runKey, atlarge.ExperimentResult](cfg.CacheSize),
		mux:       http.NewServeMux(),
		stats:     &exec.Stats{},
		inflight:  make(map[runKey]*flight),
		jobs:      make(map[string]*job),
		evicted:   make(map[string]bool),
		distStats: &dist.Stats{},
	}
	var limiter *rateLimiter
	if cfg.Rate > 0 {
		limiter = newRateLimiter(cfg.Rate, cfg.Burst)
	}
	s.adm = newAdmission(limiter, s.stats, cfg.QueueDepth)
	s.krate = newRateTracker(func() float64 { return float64(sim.GlobalEventsFired()) })
	if cfg.KernelProfile {
		s.kprof = obs.NewSharedProfile()
		kprof := s.kprof
		sim.SetKernelObserver(func(k *sim.Kernel) { k.SetTracer(kprof) })
	}
	if cfg.StateDir != "" {
		store, err := newJobstore(cfg.StateDir)
		if err != nil {
			// An unusable state dir surfaces on the first submission; the
			// server still boots so read endpoints work.
			s.store = nil
		} else {
			s.store = store
		}
	}
	s.initMetrics()

	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/run/stream", s.handleRunStream)
	s.mux.HandleFunc("POST /v1/scenario/sweep", s.handleScenarioSweep)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/profile", s.handleJobProfile)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.Handle("GET /metrics", s.metrics.Handler())
	// Deprecated aliases of the jobs resource; responses keep the legacy
	// shapes and carry a successor pointer.
	s.mux.HandleFunc("GET /v1/scenario/jobs/{id}", s.handleLegacyJobStatus)
	s.mux.HandleFunc("GET /v1/scenario/jobs/{id}/result", s.handleLegacyJobResult)
	s.mux.HandleFunc("DELETE /v1/scenario/jobs/{id}", s.handleLegacyJobCancel)
	return s
}

// ConnectWorkers dials and handshakes every Config.Workers address,
// fail-fast: a sweep must never start against an unreachable or
// version-skewed worker set. Call it once before serving traffic; a no-op
// without configured workers.
func (s *Server) ConnectWorkers(ctx context.Context) error {
	if len(s.cfg.Workers) == 0 {
		return nil
	}
	clients, err := dist.DialAll(ctx, s.cfg.Workers)
	if err != nil {
		return err
	}
	s.distClients = clients
	return nil
}

// maybeDistribute routes a sweep's execution across the connected workers by
// installing the dispatcher as the run's executor; a no-op without workers,
// leaving the in-process pool in place.
func (s *Server) maybeDistribute(opt *scenario.Options, spec *scenario.Spec) error {
	if len(s.distClients) == 0 {
		return nil
	}
	return scenario.Distribute(opt, spec, s.distClients, s.distStats)
}

// initMetrics registers the server's Prometheus instruments: saturation
// signals (queue depth, running tasks, completion rate), cache
// effectiveness, job-table state, and per-endpoint traffic and latency.
func (s *Server) initMetrics() {
	m := metrics.New()
	s.metrics = m
	s.mRequests = m.CounterVec("atlarge_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "endpoint", "code")
	s.mLatency = m.HistogramVec("atlarge_http_request_duration_seconds",
		"HTTP request latency in seconds, by route pattern.", nil, "endpoint")
	s.mCacheHits = m.Counter("atlarge_cache_hits_total",
		"Run-result LRU cache hits.")
	s.mCacheMisses = m.Counter("atlarge_cache_misses_total",
		"Run-result LRU cache misses.")
	m.GaugeFunc("atlarge_cache_hit_ratio",
		"Fraction of run-result cache lookups served from cache.", func() float64 {
			h, miss := float64(s.mCacheHits.Value()), float64(s.mCacheMisses.Value())
			if h+miss == 0 {
				return 0
			}
			return h / (h + miss)
		})
	m.GaugeFunc("atlarge_queue_depth",
		"Pending (queued or running) tasks across all work the server is executing.",
		func() float64 { return float64(s.stats.Pending()) })
	m.GaugeFunc("atlarge_tasks_running",
		"Tasks currently executing on the worker pool.",
		func() float64 { return float64(s.stats.Running()) })
	m.CounterFunc("atlarge_tasks_completed_total",
		"Tasks that produced a result (live runs and checkpoint cache hits).",
		func() float64 { return float64(s.stats.Completed()) })
	m.CounterFunc("atlarge_tasks_failed_total",
		"Tasks that returned an error.",
		func() float64 { return float64(s.stats.Failed()) })
	m.GaugeFunc("atlarge_tasks_per_second",
		"Smoothed task completion rate (feeds Retry-After estimates).",
		s.adm.taskRate)
	jobs := m.GaugeVec("atlarge_jobs", "Jobs in the server's table, by state.", "state")
	for _, state := range jobStates {
		jobs.Set(func() float64 { return float64(s.countJobs(state)) }, state)
	}
	if len(s.cfg.Workers) > 0 {
		m.GaugeFunc("atlarge_dist_tasks_inflight",
			"Tasks currently claimed by remote workers and not yet settled.",
			func() float64 { return float64(s.distStats.InFlight()) })
		m.CounterFunc("atlarge_dist_redispatched_total",
			"Tasks re-dispatched after a lost worker claim (death, lease expiry, protocol failure).",
			func() float64 { return float64(s.distStats.Redispatched()) })
		m.CounterSnapshotFunc("atlarge_dist_worker_completions_total",
			"Tasks settled by each remote worker.",
			[]string{"worker"}, func() []metrics.Sample {
				wcs := s.distStats.WorkerCompletions()
				out := make([]metrics.Sample, 0, len(wcs))
				for _, wc := range wcs {
					out = append(out, metrics.Sample{Labels: []string{wc.Worker}, Value: float64(wc.Tasks)})
				}
				return out
			})
	}
	m.CounterFunc("atlarge_kernel_events_total",
		"Simulation kernel events fired process-wide, flushed once per kernel run.",
		func() float64 { return float64(sim.GlobalEventsFired()) })
	m.GaugeFunc("atlarge_kernel_events_per_second",
		"Smoothed kernel event firing rate across all simulations.",
		s.krate.rate)
	if s.kprof != nil {
		m.CounterSnapshotFunc("atlarge_kernel_event_fired_total",
			"Kernel events fired, by event name (requires --kernel-profile).",
			[]string{"event"}, func() []metrics.Sample {
				rows := s.kprof.Rows()
				out := make([]metrics.Sample, 0, len(rows))
				for _, r := range rows {
					out = append(out, metrics.Sample{Labels: []string{r.Name}, Value: float64(r.Fired)})
				}
				return out
			})
		m.CounterSnapshotFunc("atlarge_kernel_event_wall_seconds_total",
			"Wall-clock time spent in kernel event handlers, by event name (requires --kernel-profile).",
			[]string{"event"}, func() []metrics.Sample {
				rows := s.kprof.Rows()
				out := make([]metrics.Sample, 0, len(rows))
				for _, r := range rows {
					out = append(out, metrics.Sample{Labels: []string{r.Name}, Value: float64(r.WallNs) / 1e9})
				}
				return out
			})
	}
}

// countJobs counts table entries in one state.
func (s *Server) countJobs(state string) int {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.status().State == state {
			n++
		}
	}
	return n
}

// statusWriter captures the response status for the metrics middleware
// while passing streaming (Flush) through.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// ServeHTTP implements http.Handler: every request is measured into the
// per-endpoint counters and latency histograms, labeled by route pattern
// (never raw paths, so cardinality stays bounded).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		pattern = "unmatched"
	}
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	code := sw.code
	if code == 0 {
		code = http.StatusOK
	}
	s.mRequests.With(pattern, strconv.Itoa(code)).Inc()
	s.mLatency.With(pattern).Observe(time.Since(start).Seconds())
}

// CatalogEntry is one experiment in GET /v1/experiments — the same document
// `atlarge list --format json` prints.
type CatalogEntry struct {
	ID    string   `json:"id"`
	Title string   `json:"title"`
	Tags  []string `json:"tags,omitempty"`
	Order int      `json:"order"`
}

// Catalog renders a registry as catalog entries in canonical order.
func Catalog(reg *atlarge.Registry) []CatalogEntry {
	entries := make([]CatalogEntry, 0, reg.Len())
	for _, e := range reg.Experiments() {
		entries = append(entries, CatalogEntry{ID: e.ID, Title: e.Title, Tags: e.Tags, Order: e.Order})
	}
	return entries
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Catalog(s.cfg.Registry))
}

// parseRunQuery validates the shared ids/seed/replicas parameters of the
// run endpoints, writing the error response itself on failure.
func (s *Server) parseRunQuery(w http.ResponseWriter, r *http.Request) (ids []string, seed int64, replicas int, ok bool) {
	q := r.URL.Query()
	seed, err := queryInt64(q.Get("seed"), 42)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadRequest, "bad seed: %v", err)
		return nil, 0, 0, false
	}
	replicas, err = queryInt(q.Get("replicas"), 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadRequest, "bad replicas: %v", err)
		return nil, 0, 0, false
	}
	if replicas < 1 || replicas > s.cfg.MaxReplicas {
		writeError(w, http.StatusBadRequest, errBadRequest, "replicas must be in 1..%d", s.cfg.MaxReplicas)
		return nil, 0, 0, false
	}
	ids = splitIDs(q.Get("ids"))
	if len(ids) == 0 {
		ids = s.cfg.Registry.IDs()
	}
	for _, id := range ids {
		if _, err := s.cfg.Registry.Get(id); err != nil {
			writeError(w, http.StatusNotFound, errNotFound, "%v", err)
			return nil, 0, 0, false
		}
	}
	return ids, seed, replicas, true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	ids, seed, replicas, ok := s.parseRunQuery(w, r)
	if !ok {
		return
	}
	if !s.adm.admitClient(w, r) {
		return
	}

	// Serve each experiment from the (id, seed, replicas) cache. Misses
	// either join an identical in-flight computation (so two concurrent
	// queries for the slow tab9 simulate it once) or are claimed by this
	// request and computed in one runner invocation, fanning out over the
	// worker pool. Queue backpressure applies only when this request would
	// actually enqueue work: fully cached (or coalesced) requests are
	// served even under overload.
	results := make(map[string]atlarge.ExperimentResult, len(ids))
	owned := make(map[string]*flight)
	joined := make(map[string]*flight)
	s.mu.Lock()
	wouldRun := false
	for _, id := range ids {
		key := runKey{id, seed, replicas}
		if _, ok := s.cache.Get(key); ok {
			continue
		}
		if _, ok := s.inflight[key]; ok {
			continue
		}
		wouldRun = true
		break
	}
	if wouldRun && s.stats.Pending() >= int64(s.cfg.QueueDepth) {
		s.mu.Unlock()
		s.adm.admitQueue(w) // writes the 429 + Retry-After envelope
		return
	}
	for _, id := range ids {
		key := runKey{id, seed, replicas}
		if res, ok := s.cache.Get(key); ok {
			results[id] = res
			s.mCacheHits.Inc()
			continue
		}
		if f, ok := s.inflight[key]; ok {
			joined[id] = f
			continue
		}
		s.mCacheMisses.Inc()
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		owned[id] = f
	}
	s.mu.Unlock()

	var runErr error
	if len(owned) > 0 {
		// Keyed off the owned set (not ids) so a duplicated id in the query
		// runs once; result bytes are order-independent because seeds derive
		// from (baseSeed, id, replica) alone.
		toRun := make([]string, 0, len(owned))
		for id := range owned {
			toRun = append(toRun, id)
		}
		runner := &atlarge.Runner{
			Registry:    s.cfg.Registry,
			Parallelism: s.cfg.Parallelism,
			Replicas:    replicas,
			Stats:       s.stats,
		}
		runResults, err := runner.Run(toRun, seed)
		runErr = err
		byID := make(map[string]atlarge.ExperimentResult)
		if runResults != nil {
			for _, res := range atlarge.NewRunDocument(seed, runResults).Experiments {
				byID[res.ID] = res
			}
		}
		// Settle every owned flight — success or failure — before any
		// early return, so joined waiters never block forever.
		s.mu.Lock()
		for id, f := range owned {
			key := runKey{id, seed, replicas}
			if res, ok := byID[id]; ok {
				f.res = res
				s.cache.Put(key, res)
				results[id] = res
			} else {
				f.err = err
				if f.err == nil {
					f.err = fmt.Errorf("atlarge: experiment %s produced no result", id)
				}
				runErr = f.err
			}
			delete(s.inflight, key)
			close(f.done)
		}
		s.mu.Unlock()
	}
	for id, f := range joined {
		<-f.done
		if f.err != nil && runErr == nil {
			runErr = f.err
		}
		results[id] = f.res
	}
	if runErr != nil {
		writeError(w, http.StatusInternalServerError, errInternal, "%v", runErr)
		return
	}

	doc := &atlarge.RunDocument{Seed: seed}
	for _, id := range ids {
		doc.Experiments = append(doc.Experiments, results[id])
	}
	cacheState := "hit"
	if misses := len(owned) + len(joined); misses == len(ids) {
		cacheState = "miss"
	} else if misses > 0 {
		cacheState = "partial"
	}
	w.Header().Set("X-Atlarge-Cache", cacheState)
	writeJSON(w, http.StatusOK, doc)
}

// handleRunStream is the live form of /v1/run: the same validated query,
// but the response is NDJSON — one "plan" line, one "task" line per
// (experiment, replica) completion as it streams out of the executor, and a
// final "result" line carrying the full RunDocument (or an "error" line).
// The connection's context cancels the run, so a client hanging up stops
// the simulation instead of orphaning it.
func (s *Server) handleRunStream(w http.ResponseWriter, r *http.Request) {
	ids, seed, replicas, ok := s.parseRunQuery(w, r)
	if !ok {
		return
	}
	// Streams always simulate live, so both admission checks apply.
	if !s.adm.admit(w, r) {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	line := func(v any) {
		raw, err := json.Marshal(v)
		if err != nil {
			return
		}
		w.Write(append(raw, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
	}

	// One struct per line type, so every field a line owns is always
	// emitted (seed 0 is a valid seed and must not be omitted).
	type planEvent struct {
		Type     string `json:"type"`
		Total    int    `json:"total"`
		Seed     int64  `json:"seed"`
		Replicas int    `json:"replicas"`
	}
	type taskEvent struct {
		Type  string `json:"type"`
		ID    string `json:"id"`
		Done  int    `json:"done"`
		Total int    `json:"total"`
	}
	type resultEvent struct {
		Type     string               `json:"type"`
		Document *atlarge.RunDocument `json:"document,omitempty"`
		Error    string               `json:"error,omitempty"`
	}

	line(planEvent{Type: "plan", Total: len(ids) * replicas, Seed: seed, Replicas: replicas})
	runner := &atlarge.Runner{
		Registry:    s.cfg.Registry,
		Parallelism: s.cfg.Parallelism,
		Replicas:    replicas,
		Stats:       s.stats,
		Progress: func(done, total int, id string) {
			line(taskEvent{Type: "task", ID: id, Done: done, Total: total})
		},
	}
	results, err := runner.RunContext(r.Context(), ids, seed)
	if err != nil {
		line(resultEvent{Type: "error", Error: err.Error()})
		return
	}
	doc := atlarge.NewRunDocument(seed, results)
	// Streams feed the (id, seed, replicas) cache so subsequent /v1/run
	// queries are answered without re-running.
	for _, res := range doc.Experiments {
		s.cache.Put(runKey{res.ID, seed, replicas}, res)
	}
	line(resultEvent{Type: "result", Document: doc})
}

// boundSweep applies the replica and cell bounds shared by every sweep
// entry point (sync, legacy async, /v1/jobs), pinning the effective replica
// count into opt and writing the error response itself on failure. The cell
// bound is enforced from the sweep's axis cardinalities alone, before any
// cell is materialized, so a degenerate spec cannot make the server
// allocate its cross-product.
func (s *Server) boundSweep(w http.ResponseWriter, spec *scenario.Spec, opt *scenario.Options) ([]scenario.Scenario, bool) {
	// Pin the effective replica count (request, else spec, else 1) so the
	// bound covers both sources — a spec body declaring a huge "replicas"
	// must be rejected exactly like a huge request parameter.
	if opt.Replicas <= 0 {
		opt.Replicas = max(spec.Replicas, 1)
	}
	if opt.Replicas > s.cfg.MaxReplicas {
		writeError(w, http.StatusBadRequest, errBadRequest, "replicas must be in 1..%d", s.cfg.MaxReplicas)
		return nil, false
	}
	if size := scenario.SweepSize(spec); size > s.cfg.MaxCells {
		writeError(w, http.StatusBadRequest, errBadRequest,
			"sweep axis cardinalities multiply to more than this server's limit of %d cells; split the sweep", s.cfg.MaxCells)
		return nil, false
	}
	cells, err := scenario.Expand(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadRequest, "%v", err)
		return nil, false
	}
	return cells, true
}

// parseSweepRequest validates a legacy sweep request — body spec plus
// seed/replicas query parameters — writing the error response itself on
// failure.
func (s *Server) parseSweepRequest(w http.ResponseWriter, r *http.Request) (*scenario.Spec, []scenario.Scenario, scenario.Options, bool) {
	none := scenario.Options{}
	r.Body = http.MaxBytesReader(w, r.Body, maxSpecBytes)
	spec, err := scenario.Parse(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, errPayloadTooLarge, "spec body exceeds %d bytes", tooBig.Limit)
			return nil, nil, none, false
		}
		writeError(w, http.StatusBadRequest, errBadRequest, "%v", err)
		return nil, nil, none, false
	}
	q := r.URL.Query()
	opt := scenario.Options{Parallelism: s.cfg.Parallelism}
	if raw := q.Get("seed"); raw != "" {
		seed, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, errBadRequest, "bad seed: %v", err)
			return nil, nil, none, false
		}
		opt.Seed = &seed
	}
	if raw := q.Get("replicas"); raw != "" {
		replicas, err := strconv.Atoi(raw)
		if err != nil || replicas < 1 {
			writeError(w, http.StatusBadRequest, errBadRequest, "replicas must be in 1..%d", s.cfg.MaxReplicas)
			return nil, nil, none, false
		}
		opt.Replicas = replicas
	}
	cells, ok := s.boundSweep(w, spec, &opt)
	if !ok {
		return nil, nil, none, false
	}
	return spec, cells, opt, true
}

func (s *Server) handleScenarioSweep(w http.ResponseWriter, r *http.Request) {
	async := false
	if raw := r.URL.Query().Get("async"); raw != "" {
		var err error
		if async, err = strconv.ParseBool(raw); err != nil {
			writeError(w, http.StatusBadRequest, errBadRequest, "bad async: %v", err)
			return
		}
	}
	if !s.adm.admit(w, r) {
		return
	}
	spec, cells, opt, ok := s.parseSweepRequest(w, r)
	if !ok {
		return
	}
	if async {
		// Deprecated alias of POST /v1/jobs; the response keeps the legacy
		// {"job", "status"} shape.
		j, created, ok := s.launchJob(w, spec, cells, opt)
		if !ok {
			return
		}
		status := http.StatusOK
		if created {
			status = http.StatusAccepted
		}
		writeJSON(w, status, map[string]string{
			"job":    j.id,
			"status": "/v1/scenario/jobs/" + j.id,
		})
		return
	}
	opt.Stats = s.stats
	if err := s.maybeDistribute(&opt, spec); err != nil {
		writeError(w, http.StatusInternalServerError, errInternal, "%v", err)
		return
	}
	rep, err := scenario.Run(r.Context(), spec, cells, opt)
	if err != nil {
		writeError(w, http.StatusInternalServerError, errInternal, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = rep.WriteJSON(w)
}

// jobRequest is the body of POST /v1/jobs: a kind, its spec, and optional
// seed/replicas overrides (which otherwise fall back to the spec's values).
type jobRequest struct {
	Kind     string          `json:"kind"`
	Spec     json.RawMessage `json:"spec"`
	Seed     *int64          `json:"seed,omitempty"`
	Replicas int             `json:"replicas,omitempty"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.adm.admit(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxSpecBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req jobRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, errPayloadTooLarge, "job body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, errBadRequest, "bad job request: %v", err)
		return
	}
	if req.Kind != jobKindSweep {
		writeError(w, http.StatusBadRequest, errBadRequest, "unknown job kind %q (known kinds: %s)", req.Kind, jobKindSweep)
		return
	}
	if len(req.Spec) == 0 {
		writeError(w, http.StatusBadRequest, errBadRequest, "job request carries no spec")
		return
	}
	if req.Replicas < 0 {
		writeError(w, http.StatusBadRequest, errBadRequest, "replicas must be in 1..%d", s.cfg.MaxReplicas)
		return
	}
	spec, err := scenario.Parse(bytes.NewReader(req.Spec))
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadRequest, "%v", err)
		return
	}
	opt := scenario.Options{Parallelism: s.cfg.Parallelism, Seed: req.Seed, Replicas: req.Replicas}
	cells, ok := s.boundSweep(w, spec, &opt)
	if !ok {
		return
	}
	j, created, ok := s.launchJob(w, spec, cells, opt)
	if !ok {
		return
	}
	status := http.StatusOK // deduped onto an existing job
	if created {
		status = http.StatusAccepted
	}
	writeJSON(w, status, j.doc())
}

// launchJob registers and starts one async job, or dedups onto an existing
// one: the job ID is scenario.RunHash(spec, seed, replicas) — the sweep
// checkpoint key — so identical submissions share a single execution (and,
// with a state dir, a single durable record). Failed and cancelled jobs do
// not absorb resubmissions; a fresh attempt relaunches under the same ID.
// Errors (job limit, persistence failure) are written by launchJob itself;
// the caller renders the success response from the returned job.
func (s *Server) launchJob(w http.ResponseWriter, spec *scenario.Spec, cells []scenario.Scenario, opt scenario.Options) (_ *job, created, ok bool) {
	seed := spec.Seed
	if opt.Seed != nil {
		seed = *opt.Seed
	}
	id, err := scenario.RunHash(spec, seed, opt.Replicas)
	if err != nil {
		writeError(w, http.StatusInternalServerError, errInternal, "%v", err)
		return nil, false, false
	}
	total := len(cells) * opt.Replicas

	s.jobMu.Lock()
	if existing, found := s.jobs[id]; found {
		if st := existing.status().State; st == jobRunning || st == jobDone {
			s.jobMu.Unlock()
			return existing, false, true
		}
	}
	running := 0
	for _, j := range s.jobs {
		if j.status().State == jobRunning {
			running++
		}
	}
	if running >= s.cfg.MaxJobs {
		s.jobMu.Unlock()
		retry := s.adm.drainEstimate(s.stats.Pending() + int64(total))
		writeRetryError(w, http.StatusTooManyRequests, errJobLimit, retry,
			"%d job(s) already running (limit %d); retry later or cancel one", running, s.cfg.MaxJobs)
		return nil, false, false
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{id: id, kind: jobKindSweep, name: spec.Name, cancel: cancel, state: jobRunning, total: total}
	if _, seen := s.jobs[id]; !seen {
		s.jobOrder = append(s.jobOrder, id)
	}
	s.jobs[id] = j
	s.evictFinishedLocked()
	s.jobMu.Unlock()

	if s.store != nil {
		specJSON, err := json.Marshal(spec)
		if err == nil {
			err = s.store.saveRecord(&jobRecord{
				ID: id, Kind: jobKindSweep, Name: spec.Name, Domain: spec.Domain,
				Seed: seed, Replicas: opt.Replicas, Total: total,
				State: jobRunning, Spec: specJSON,
			})
		}
		if err != nil {
			// Refuse rather than silently accepting volatile work on a
			// server that promised durability.
			cancel()
			s.jobMu.Lock()
			delete(s.jobs, id)
			s.jobMu.Unlock()
			writeError(w, http.StatusInternalServerError, errInternal, "%v", err)
			return nil, false, false
		}
		opt.Checkpoint = s.store.dir
	}
	opt.Stats = s.stats
	if err := s.maybeDistribute(&opt, spec); err != nil {
		cancel()
		s.jobMu.Lock()
		delete(s.jobs, id)
		s.jobMu.Unlock()
		writeError(w, http.StatusInternalServerError, errInternal, "%v", err)
		return nil, false, false
	}
	go s.runJob(ctx, cancel, j, spec, cells, opt)
	return j, true, true
}

// runJob executes one job's sweep and settles + persists its outcome.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *job, spec *scenario.Spec, cells []scenario.Scenario, opt scenario.Options) {
	defer cancel()
	opt.Progress = func(done, total int, id string) { j.progress(done, total) }
	opt.SpanObserver = j.observeSpan
	rep, err := scenario.Run(ctx, spec, cells, opt)
	var result []byte
	if err == nil {
		var buf bytes.Buffer
		if werr := rep.WriteJSON(&buf); werr != nil {
			err = werr
		} else {
			result = buf.Bytes()
		}
	}
	j.finish(result, err)
	s.persistOutcome(j)
}

// persistOutcome records a settled job's terminal state (and result bytes)
// in the state dir; a no-op without one. Persistence failures here are
// swallowed: the in-memory job still serves, only restart durability of
// this outcome is lost.
func (s *Server) persistOutcome(j *job) {
	if s.store == nil {
		return
	}
	st := j.status()
	if st.State == jobRunning {
		return
	}
	if st.State == jobDone {
		if raw, ok := j.resultBytes(); ok {
			if err := s.store.saveResult(j.id, raw); err != nil {
				return // job.json keeps saying running → restart resumes it
			}
		}
	}
	rec, err := s.store.loadRecord(j.id)
	if err != nil {
		return
	}
	rec.State = st.State
	rec.Error = st.Error
	_ = s.store.saveRecord(rec)
}

// RecoverJobs re-lists the state directory into the job table: finished
// jobs serve their stored results again, and jobs that were running when
// the process died re-launch and resume from their checkpointed (cell,
// replica) tasks to a byte-identical result. Call it once, before serving
// traffic. Interrupted jobs resume regardless of MaxJobs — they were
// admitted before the restart. Returns the number of jobs resumed
// (relaunched) and restored (terminal, re-listed).
func (s *Server) RecoverJobs() (resumed, restored int, err error) {
	if s.store == nil {
		return 0, 0, nil
	}
	recs, listErr := s.store.list()
	if listErr != nil {
		return 0, 0, listErr
	}
	var problems []error
	for _, rec := range recs {
		switch rec.State {
		case jobDone:
			raw, ok := s.store.loadResult(rec.ID)
			if !ok {
				// Killed between the result write and the record update —
				// or the other way round; resuming re-derives the result
				// from the checkpointed tasks either way.
				if rerr := s.resumeJob(rec); rerr != nil {
					problems = append(problems, rerr)
					continue
				}
				resumed++
				continue
			}
			s.addRecovered(&job{
				id: rec.ID, kind: rec.Kind, name: rec.Name, cancel: func() {},
				state: jobDone, done: rec.Total, total: rec.Total, result: raw,
			})
			restored++
		case jobFailed, jobCancelled:
			s.addRecovered(&job{
				id: rec.ID, kind: rec.Kind, name: rec.Name, cancel: func() {},
				state: rec.State, total: rec.Total, errMsg: rec.Error,
			})
			restored++
		case jobRunning:
			if rerr := s.resumeJob(rec); rerr != nil {
				problems = append(problems, rerr)
				continue
			}
			resumed++
		}
	}
	return resumed, restored, errors.Join(problems...)
}

// resumeJob relaunches one interrupted job from its durable record; the
// checkpoint store replays its completed tasks, so only lost work re-runs.
func (s *Server) resumeJob(rec *jobRecord) error {
	spec, err := scenario.Parse(bytes.NewReader(rec.Spec))
	if err != nil {
		return fmt.Errorf("api: recover job %s: %w", rec.ID, err)
	}
	cells, err := scenario.Expand(spec)
	if err != nil {
		return fmt.Errorf("api: recover job %s: %w", rec.ID, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{id: rec.ID, kind: rec.Kind, name: rec.Name, cancel: cancel, state: jobRunning, total: rec.Total}
	s.addRecovered(j)
	opt := scenario.Options{
		Parallelism: s.cfg.Parallelism,
		Replicas:    rec.Replicas,
		Seed:        &rec.Seed, // the effective seed; RunHash stays rec.ID
		Checkpoint:  s.store.dir,
		Stats:       s.stats,
	}
	if err := s.maybeDistribute(&opt, spec); err != nil {
		return fmt.Errorf("api: recover job %s: %w", rec.ID, err)
	}
	go s.runJob(ctx, cancel, j, spec, cells, opt)
	return nil
}

// addRecovered inserts a recovered job into the table (first record wins on
// a duplicate ID, which cannot happen with hash-named directories).
func (s *Server) addRecovered(j *job) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	if _, ok := s.jobs[j.id]; ok {
		return
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	s.evictFinishedLocked()
}

// maxEvicted bounds the evicted-ID memory behind 410 result_evicted.
const maxEvicted = 4096

// evictFinishedLocked drops the oldest finished jobs beyond Config.KeepJobs,
// remembering their IDs so a later result fetch explains the eviction (410
// result_evicted) instead of claiming the job never existed; running jobs
// are never evicted. Caller holds jobMu.
func (s *Server) evictFinishedLocked() {
	for len(s.jobs) > s.cfg.KeepJobs {
		evictedOne := false
		for i, id := range s.jobOrder {
			j, ok := s.jobs[id]
			if !ok {
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evictedOne = true
				break
			}
			if st := j.status().State; st != jobRunning {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				s.noteEvictedLocked(id)
				evictedOne = true
				break
			}
		}
		if !evictedOne {
			return // everything still running
		}
	}
}

// noteEvictedLocked remembers an evicted job ID (bounded FIFO). Caller
// holds jobMu.
func (s *Server) noteEvictedLocked(id string) {
	if s.evicted[id] {
		return
	}
	s.evicted[id] = true
	s.evictedOrder = append(s.evictedOrder, id)
	for len(s.evictedOrder) > maxEvicted {
		delete(s.evicted, s.evictedOrder[0])
		s.evictedOrder = s.evictedOrder[1:]
	}
}

// getJob resolves the {id} path value, writing the 404 — or, for a job
// evicted from the finished-job history, the explanatory 410 — itself.
func (s *Server) getJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	s.jobMu.Lock()
	j, ok := s.jobs[id]
	wasEvicted := s.evicted[id]
	s.jobMu.Unlock()
	if !ok {
		if wasEvicted {
			writeError(w, http.StatusGone, errResultEvicted,
				"job %s finished but was evicted from the %d-entry finished-job history; resubmit to recompute it", id, s.cfg.KeepJobs)
			return nil, false
		}
		writeError(w, http.StatusNotFound, errNotFound, "unknown job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	filter := r.URL.Query().Get("state")
	if filter != "" && !slicesContains(jobStates, filter) {
		writeError(w, http.StatusBadRequest, errBadRequest,
			"unknown state %q (want one of %s)", filter, strings.Join(jobStates, ", "))
		return
	}
	s.jobMu.Lock()
	docs := make([]jobDoc, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		d := j.doc()
		if filter != "" && d.State != filter {
			continue
		}
		docs = append(docs, d)
	}
	s.jobMu.Unlock()
	writeJSON(w, http.StatusOK, map[string][]jobDoc{"jobs": docs})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.getJob(w, r); ok {
		writeJSON(w, http.StatusOK, j.doc())
	}
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	s.writeJobResult(w, j)
}

// writeJobResult serves a job's result bytes, or the typed not-ready error:
// 409 job_running while work is in flight, 410 job_failed/job_cancelled for
// terminal jobs that will never produce one.
func (s *Server) writeJobResult(w http.ResponseWriter, j *job) {
	raw, ready := j.resultBytes()
	if !ready {
		st := j.status()
		switch st.State {
		case jobFailed:
			writeError(w, http.StatusGone, errJobFailed, "job %s failed: %s", j.id, st.Error)
		case jobCancelled:
			writeError(w, http.StatusGone, errJobCancelled, "job %s was cancelled", j.id)
		default:
			writeError(w, http.StatusConflict, errJobRunning,
				"job %s is still %s (%d/%d tasks)", j.id, st.State, st.Done, st.Total)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

// handleJobProfile serves the job's execution profile: span aggregates
// (queue wait, run time, per-worker busy time) collected while the job's
// tasks stream through the executor. Available while the job is still
// running — the aggregates are incremental — and after it settles. Jobs
// restored from the state dir after a restart report zero observed tasks:
// spans are wall-clock facts of one execution and are not persisted.
func (s *Server) handleJobProfile(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.getJob(w, r); ok {
		writeJSON(w, http.StatusOK, j.profileDoc())
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	j.markCancelled()
	s.persistOutcome(j)
	writeJSON(w, http.StatusOK, j.doc())
}

// markDeprecated stamps the alias routes with their successor.
func markDeprecated(w http.ResponseWriter) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/jobs>; rel="successor-version"`)
}

func (s *Server) handleLegacyJobStatus(w http.ResponseWriter, r *http.Request) {
	markDeprecated(w)
	if j, ok := s.getJob(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleLegacyJobResult(w http.ResponseWriter, r *http.Request) {
	markDeprecated(w)
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	s.writeJobResult(w, j)
}

func (s *Server) handleLegacyJobCancel(w http.ResponseWriter, r *http.Request) {
	markDeprecated(w)
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	j.markCancelled()
	s.persistOutcome(j)
	writeJSON(w, http.StatusOK, j.status())
}

// splitIDs parses the comma-separated ids parameter.
func splitIDs(raw string) []string {
	var out []string
	for _, id := range strings.Split(raw, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

// slicesContains reports whether list contains v.
func slicesContains(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}

func queryInt64(raw string, def int64) (int64, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.ParseInt(raw, 10, 64)
}

func queryInt(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}

// writeJSON emits a JSON body with the canonical two-space indent, matching
// the CLI byte for byte.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
