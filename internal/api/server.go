package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"atlarge"
	"atlarge/internal/scenario"
)

// maxSpecBytes bounds a /v1/scenario/sweep request body; real specs are a
// few KiB, so 1 MiB is generous while keeping the server un-OOM-able.
const maxSpecBytes = 1 << 20

// Config tunes a Server.
type Config struct {
	// Registry supplies the experiment catalog; nil means the default
	// built-in catalog.
	Registry *atlarge.Registry
	// Parallelism bounds the worker pool behind /v1/run and
	// /v1/scenario/sweep; <= 0 means GOMAXPROCS.
	Parallelism int
	// CacheSize caps the LRU result cache (entries, one per cached
	// (experiment, seed, replicas) triple); <= 0 means 256.
	CacheSize int
	// MaxReplicas rejects run requests asking for more replicas; <= 0
	// means 64.
	MaxReplicas int
	// MaxCells rejects sweep specs whose axis cardinalities alone multiply
	// to more cells, before any cell is materialized; <= 0 means 4096.
	// Values above 4096 (the scenario engine's own hard expansion bound)
	// are clamped to it.
	MaxCells int
	// MaxJobs bounds concurrently running async sweeps; <= 0 means 4.
	MaxJobs int
}

// runKey identifies one cached experiment result: results are cached per
// experiment, not per request, so overlapping id sets share entries.
type runKey struct {
	id       string
	seed     int64
	replicas int
}

// Server is the HTTP face of the Results API v2:
//
//	GET    /v1/experiments                     the experiment catalog
//	GET    /v1/run?ids=&seed=&replicas=        typed run results (LRU-cached)
//	GET    /v1/run/stream?ids=&seed=&replicas= the same run as live NDJSON progress events
//	POST   /v1/scenario/sweep?seed=&replicas=  expand + run a scenario spec body
//	POST   /v1/scenario/sweep?async=1          start the sweep as a background job (202 + job id)
//	GET    /v1/scenario/jobs/{id}              async job status (state, done/total)
//	GET    /v1/scenario/jobs/{id}/result       the finished job's report (sync-identical bytes)
//	DELETE /v1/scenario/jobs/{id}              cancel a running job mid-sweep
//
// All responses are JSON; run results are byte-identical for a fixed query
// at any parallelism and across cache hits and misses, and an async sweep's
// result is byte-identical to the synchronous response for the same spec.
type Server struct {
	cfg   Config
	cache *lruCache[runKey, atlarge.ExperimentResult]
	mux   *http.ServeMux

	// mu guards inflight (and makes the cache-lookup/flight-registration
	// pair atomic): concurrent identical misses coalesce onto one flight
	// instead of re-running the same simulation.
	mu       sync.Mutex
	inflight map[runKey]*flight

	// jobMu guards the async sweep job table.
	jobMu    sync.Mutex
	jobs     map[string]*job
	jobSeq   int
	jobOrder []string
}

// flight is one in-progress computation of a runKey; waiters block on done.
type flight struct {
	done chan struct{}
	res  atlarge.ExperimentResult
	err  error
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = atlarge.DefaultRegistry()
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 256
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = 64
	}
	if cfg.MaxCells <= 0 || cfg.MaxCells > scenario.MaxCells {
		cfg.MaxCells = scenario.MaxCells
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4
	}
	s := &Server{
		cfg:      cfg,
		cache:    newLRU[runKey, atlarge.ExperimentResult](cfg.CacheSize),
		mux:      http.NewServeMux(),
		inflight: make(map[runKey]*flight),
		jobs:     make(map[string]*job),
	}
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/run/stream", s.handleRunStream)
	s.mux.HandleFunc("POST /v1/scenario/sweep", s.handleScenarioSweep)
	s.mux.HandleFunc("GET /v1/scenario/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/scenario/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /v1/scenario/jobs/{id}", s.handleJobCancel)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// CatalogEntry is one experiment in GET /v1/experiments — the same document
// `atlarge list --format json` prints.
type CatalogEntry struct {
	ID    string   `json:"id"`
	Title string   `json:"title"`
	Tags  []string `json:"tags,omitempty"`
	Order int      `json:"order"`
}

// Catalog renders a registry as catalog entries in canonical order.
func Catalog(reg *atlarge.Registry) []CatalogEntry {
	entries := make([]CatalogEntry, 0, reg.Len())
	for _, e := range reg.Experiments() {
		entries = append(entries, CatalogEntry{ID: e.ID, Title: e.Title, Tags: e.Tags, Order: e.Order})
	}
	return entries
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Catalog(s.cfg.Registry))
}

// parseRunQuery validates the shared ids/seed/replicas parameters of the
// run endpoints, writing the error response itself on failure.
func (s *Server) parseRunQuery(w http.ResponseWriter, r *http.Request) (ids []string, seed int64, replicas int, ok bool) {
	q := r.URL.Query()
	seed, err := queryInt64(q.Get("seed"), 42)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad seed: %v", err)
		return nil, 0, 0, false
	}
	replicas, err = queryInt(q.Get("replicas"), 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad replicas: %v", err)
		return nil, 0, 0, false
	}
	if replicas < 1 || replicas > s.cfg.MaxReplicas {
		writeError(w, http.StatusBadRequest, "replicas must be in 1..%d", s.cfg.MaxReplicas)
		return nil, 0, 0, false
	}
	ids = splitIDs(q.Get("ids"))
	if len(ids) == 0 {
		ids = s.cfg.Registry.IDs()
	}
	for _, id := range ids {
		if _, err := s.cfg.Registry.Get(id); err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return nil, 0, 0, false
		}
	}
	return ids, seed, replicas, true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	ids, seed, replicas, ok := s.parseRunQuery(w, r)
	if !ok {
		return
	}

	// Serve each experiment from the (id, seed, replicas) cache. Misses
	// either join an identical in-flight computation (so two concurrent
	// queries for the slow tab9 simulate it once) or are claimed by this
	// request and computed in one runner invocation, fanning out over the
	// worker pool.
	results := make(map[string]atlarge.ExperimentResult, len(ids))
	owned := make(map[string]*flight)
	joined := make(map[string]*flight)
	s.mu.Lock()
	for _, id := range ids {
		key := runKey{id, seed, replicas}
		if res, ok := s.cache.Get(key); ok {
			results[id] = res
			continue
		}
		if f, ok := s.inflight[key]; ok {
			joined[id] = f
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		owned[id] = f
	}
	s.mu.Unlock()

	var runErr error
	if len(owned) > 0 {
		// Keyed off the owned set (not ids) so a duplicated id in the query
		// runs once; result bytes are order-independent because seeds derive
		// from (baseSeed, id, replica) alone.
		toRun := make([]string, 0, len(owned))
		for id := range owned {
			toRun = append(toRun, id)
		}
		runner := &atlarge.Runner{
			Registry:    s.cfg.Registry,
			Parallelism: s.cfg.Parallelism,
			Replicas:    replicas,
		}
		runResults, err := runner.Run(toRun, seed)
		runErr = err
		byID := make(map[string]atlarge.ExperimentResult)
		if runResults != nil {
			for _, res := range atlarge.NewRunDocument(seed, runResults).Experiments {
				byID[res.ID] = res
			}
		}
		// Settle every owned flight — success or failure — before any
		// early return, so joined waiters never block forever.
		s.mu.Lock()
		for id, f := range owned {
			key := runKey{id, seed, replicas}
			if res, ok := byID[id]; ok {
				f.res = res
				s.cache.Put(key, res)
				results[id] = res
			} else {
				f.err = err
				if f.err == nil {
					f.err = fmt.Errorf("atlarge: experiment %s produced no result", id)
				}
				runErr = f.err
			}
			delete(s.inflight, key)
			close(f.done)
		}
		s.mu.Unlock()
	}
	for id, f := range joined {
		<-f.done
		if f.err != nil && runErr == nil {
			runErr = f.err
		}
		results[id] = f.res
	}
	if runErr != nil {
		writeError(w, http.StatusInternalServerError, "%v", runErr)
		return
	}

	doc := &atlarge.RunDocument{Seed: seed}
	for _, id := range ids {
		doc.Experiments = append(doc.Experiments, results[id])
	}
	cacheState := "hit"
	if misses := len(owned) + len(joined); misses == len(ids) {
		cacheState = "miss"
	} else if misses > 0 {
		cacheState = "partial"
	}
	w.Header().Set("X-Atlarge-Cache", cacheState)
	writeJSON(w, http.StatusOK, doc)
}

// handleRunStream is the live form of /v1/run: the same validated query,
// but the response is NDJSON — one "plan" line, one "task" line per
// (experiment, replica) completion as it streams out of the executor, and a
// final "result" line carrying the full RunDocument (or an "error" line).
// The connection's context cancels the run, so a client hanging up stops
// the simulation instead of orphaning it.
func (s *Server) handleRunStream(w http.ResponseWriter, r *http.Request) {
	ids, seed, replicas, ok := s.parseRunQuery(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	line := func(v any) {
		raw, err := json.Marshal(v)
		if err != nil {
			return
		}
		w.Write(append(raw, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
	}

	// One struct per line type, so every field a line owns is always
	// emitted (seed 0 is a valid seed and must not be omitted).
	type planEvent struct {
		Type     string `json:"type"`
		Total    int    `json:"total"`
		Seed     int64  `json:"seed"`
		Replicas int    `json:"replicas"`
	}
	type taskEvent struct {
		Type  string `json:"type"`
		ID    string `json:"id"`
		Done  int    `json:"done"`
		Total int    `json:"total"`
	}
	type resultEvent struct {
		Type     string               `json:"type"`
		Document *atlarge.RunDocument `json:"document,omitempty"`
		Error    string               `json:"error,omitempty"`
	}

	line(planEvent{Type: "plan", Total: len(ids) * replicas, Seed: seed, Replicas: replicas})
	runner := &atlarge.Runner{
		Registry:    s.cfg.Registry,
		Parallelism: s.cfg.Parallelism,
		Replicas:    replicas,
		Progress: func(done, total int, id string) {
			line(taskEvent{Type: "task", ID: id, Done: done, Total: total})
		},
	}
	results, err := runner.RunContext(r.Context(), ids, seed)
	if err != nil {
		line(resultEvent{Type: "error", Error: err.Error()})
		return
	}
	doc := atlarge.NewRunDocument(seed, results)
	// Streams always simulate live (progress is the point), but their
	// results feed the (id, seed, replicas) cache so subsequent /v1/run
	// queries are answered without re-running.
	for _, res := range doc.Experiments {
		s.cache.Put(runKey{res.ID, seed, replicas}, res)
	}
	line(resultEvent{Type: "result", Document: doc})
}

// parseSweepRequest validates a sweep request — body spec, seed/replicas
// query, and the cell bound — writing the error response itself on failure.
// The cell bound is enforced from the sweep's axis cardinalities alone,
// before any cell is materialized, so a degenerate spec cannot make the
// server allocate its cross-product.
func (s *Server) parseSweepRequest(w http.ResponseWriter, r *http.Request) (*scenario.Spec, []scenario.Scenario, scenario.Options, bool) {
	none := scenario.Options{}
	r.Body = http.MaxBytesReader(w, r.Body, maxSpecBytes)
	spec, err := scenario.Parse(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "spec body exceeds %d bytes", tooBig.Limit)
			return nil, nil, none, false
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, nil, none, false
	}
	q := r.URL.Query()
	opt := scenario.Options{Parallelism: s.cfg.Parallelism}
	if raw := q.Get("seed"); raw != "" {
		seed, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad seed: %v", err)
			return nil, nil, none, false
		}
		opt.Seed = &seed
	}
	if raw := q.Get("replicas"); raw != "" {
		replicas, err := strconv.Atoi(raw)
		if err != nil || replicas < 1 {
			writeError(w, http.StatusBadRequest, "replicas must be in 1..%d", s.cfg.MaxReplicas)
			return nil, nil, none, false
		}
		opt.Replicas = replicas
	}
	// Pin the effective replica count (query, else spec, else 1) so the
	// bound below covers both sources — a spec body declaring a huge
	// "replicas" must be rejected exactly like a huge query parameter.
	if opt.Replicas <= 0 {
		opt.Replicas = max(spec.Replicas, 1)
	}
	if opt.Replicas > s.cfg.MaxReplicas {
		writeError(w, http.StatusBadRequest, "replicas must be in 1..%d", s.cfg.MaxReplicas)
		return nil, nil, none, false
	}
	if size := scenario.SweepSize(spec); size > s.cfg.MaxCells {
		writeError(w, http.StatusBadRequest,
			"sweep axis cardinalities multiply to more than this server's limit of %d cells; split the sweep", s.cfg.MaxCells)
		return nil, nil, none, false
	}
	cells, err := scenario.Expand(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, nil, none, false
	}
	return spec, cells, opt, true
}

func (s *Server) handleScenarioSweep(w http.ResponseWriter, r *http.Request) {
	async := false
	if raw := r.URL.Query().Get("async"); raw != "" {
		var err error
		if async, err = strconv.ParseBool(raw); err != nil {
			writeError(w, http.StatusBadRequest, "bad async: %v", err)
			return
		}
	}
	spec, cells, opt, ok := s.parseSweepRequest(w, r)
	if !ok {
		return
	}
	if async {
		s.startSweepJob(w, spec, cells, opt)
		return
	}
	rep, err := scenario.Run(r.Context(), spec, cells, opt)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = rep.WriteJSON(w)
}

// startSweepJob registers and launches one async sweep, bounded by MaxJobs
// concurrently running jobs; finished jobs beyond keptJobs are evicted
// oldest-first.
func (s *Server) startSweepJob(w http.ResponseWriter, spec *scenario.Spec, cells []scenario.Scenario, opt scenario.Options) {
	ctx, cancel := context.WithCancel(context.Background())
	s.jobMu.Lock()
	running := 0
	for _, j := range s.jobs {
		if j.status().State == jobRunning {
			running++
		}
	}
	if running >= s.cfg.MaxJobs {
		s.jobMu.Unlock()
		cancel()
		writeError(w, http.StatusTooManyRequests, "%d sweep job(s) already running (limit %d); retry later or cancel one", running, s.cfg.MaxJobs)
		return
	}
	s.jobSeq++
	// opt.Replicas is always the pinned effective count here (see
	// parseSweepRequest), so the status total is right from the start.
	j := &job{id: fmt.Sprintf("job-%d", s.jobSeq), cancel: cancel, state: jobRunning, total: len(cells) * opt.Replicas}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	s.evictFinishedLocked()
	s.jobMu.Unlock()

	go func() {
		defer cancel()
		opt.Progress = func(done, total int, id string) { j.progress(done, total) }
		rep, err := scenario.Run(ctx, spec, cells, opt)
		if err != nil {
			j.finish(nil, err)
			return
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			j.finish(nil, err)
			return
		}
		j.finish(buf.Bytes(), nil)
	}()

	writeJSON(w, http.StatusAccepted, map[string]string{
		"job":    j.id,
		"status": "/v1/scenario/jobs/" + j.id,
	})
}

// keptJobs bounds the finished-job history retained for status queries.
const keptJobs = 64

// evictFinishedLocked drops the oldest finished jobs beyond keptJobs;
// running jobs are never evicted. Caller holds jobMu.
func (s *Server) evictFinishedLocked() {
	for len(s.jobs) > keptJobs {
		evicted := false
		for i, id := range s.jobOrder {
			j, ok := s.jobs[id]
			if !ok {
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
			if st := j.status().State; st != jobRunning {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything still running
		}
	}
}

// getJob resolves the {id} path value, writing the 404 itself.
func (s *Server) getJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	s.jobMu.Lock()
	j, ok := s.jobs[id]
	s.jobMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.getJob(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	raw, ready := j.resultBytes()
	if !ready {
		st := j.status()
		if st.State == jobFailed || st.State == jobCancelled {
			msg := fmt.Sprintf("job %s is %s", j.id, st.State)
			if st.Error != "" {
				msg += ": " + st.Error
			}
			writeError(w, http.StatusGone, "%s", msg)
			return
		}
		writeError(w, http.StatusConflict, "job %s is still %s (%d/%d tasks)", j.id, st.State, st.Done, st.Total)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	j.markCancelled()
	writeJSON(w, http.StatusOK, j.status())
}

// splitIDs parses the comma-separated ids parameter.
func splitIDs(raw string) []string {
	var out []string
	for _, id := range strings.Split(raw, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

func queryInt64(raw string, def int64) (int64, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.ParseInt(raw, 10, 64)
}

func queryInt(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}

// writeJSON emits a JSON body with the canonical two-space indent, matching
// the CLI byte for byte.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the canonical JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
