// Package api serves experiment and scenario results over HTTP — the
// `atlarge serve` layer of the Results API v2. Results are machine-readable
// typed documents, so they can feed programmatic design cycles; an LRU cache
// keyed by (experiment, seed, replicas) answers repeated queries without
// re-simulating.
package api

import (
	"container/list"
	"sync"
)

// lruCache is a small concurrency-safe LRU map. The zero value is unusable;
// use newLRU.
type lruCache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *entry[K, V]
	items    map[K]*list.Element
}

type entry[K comparable, V any] struct {
	key   K
	value V
}

// newLRU returns a cache bounded to capacity entries (minimum 1).
func newLRU[K comparable, V any](capacity int) *lruCache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache[K, V]{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[K]*list.Element),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry[K, V]).value, true
}

// Put inserts or refreshes a value, evicting the least recently used entry
// when the cache is full.
func (c *lruCache[K, V]) Put(key K, value V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).value = value
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry[K, V]{key: key, value: value})
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
