package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"atlarge"
)

// doReq issues one request and decodes the typed error envelope.
func doReq(t *testing.T, method, url, body string) (*http.Response, errorEnvelope, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw := readAll(t, resp)
	var env errorEnvelope
	_ = json.Unmarshal([]byte(raw), &env)
	return resp, env, raw
}

// TestErrorEnvelopeShape drives every error family through its endpoint and
// checks the one envelope shape: {"error": {"code", "message"}} with the
// expected status and stable machine-readable code.
func TestErrorEnvelopeShape(t *testing.T) {
	srv := httptest.NewServer(New(Config{Registry: testRegistry(t), Parallelism: 2, MaxReplicas: 8, MaxCells: 4}))
	defer srv.Close()

	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
	}{
		{"bad seed", "GET", "/v1/run?seed=x", "", http.StatusBadRequest, errBadRequest},
		{"bad replicas", "GET", "/v1/run?replicas=x", "", http.StatusBadRequest, errBadRequest},
		{"replicas out of range", "GET", "/v1/run?replicas=99", "", http.StatusBadRequest, errBadRequest},
		{"unknown experiment", "GET", "/v1/run?ids=nope", "", http.StatusNotFound, errNotFound},
		{"stream bad seed", "GET", "/v1/run/stream?seed=x", "", http.StatusBadRequest, errBadRequest},
		{"sweep bad spec", "POST", "/v1/scenario/sweep", "{", http.StatusBadRequest, errBadRequest},
		{"sweep bad async", "POST", "/v1/scenario/sweep?async=maybe", sweepSpecBody, http.StatusBadRequest, errBadRequest},
		{"sweep bad seed", "POST", "/v1/scenario/sweep?seed=x", sweepSpecBody, http.StatusBadRequest, errBadRequest},
		{"sweep body too large", "POST", "/v1/scenario/sweep", `{"pad": "` + strings.Repeat("x", maxSpecBytes+1) + `"}`, http.StatusRequestEntityTooLarge, errPayloadTooLarge},
		{"job body too large", "POST", "/v1/jobs", `{"kind": "sweep", "spec": {"pad": "` + strings.Repeat("x", maxSpecBytes+1) + `"}}`, http.StatusRequestEntityTooLarge, errPayloadTooLarge},
		{"job bad body", "POST", "/v1/jobs", "not json", http.StatusBadRequest, errBadRequest},
		{"job unknown kind", "POST", "/v1/jobs", `{"kind": "bake", "spec": {}}`, http.StatusBadRequest, errBadRequest},
		{"job missing spec", "POST", "/v1/jobs", `{"kind": "sweep"}`, http.StatusBadRequest, errBadRequest},
		{"job unknown field", "POST", "/v1/jobs", `{"kind": "sweep", "spec": {}, "spek": 1}`, http.StatusBadRequest, errBadRequest},
		{"job negative replicas", "POST", "/v1/jobs", `{"kind": "sweep", "spec": ` + sweepSpecBody + `, "replicas": -1}`, http.StatusBadRequest, errBadRequest},
		{"unknown job", "GET", "/v1/jobs/feedbeef", "", http.StatusNotFound, errNotFound},
		{"unknown job result", "GET", "/v1/jobs/feedbeef/result", "", http.StatusNotFound, errNotFound},
		{"unknown job cancel", "DELETE", "/v1/jobs/feedbeef", "", http.StatusNotFound, errNotFound},
		{"bad state filter", "GET", "/v1/jobs?state=paused", "", http.StatusBadRequest, errBadRequest},
		{"legacy unknown job", "GET", "/v1/scenario/jobs/feedbeef", "", http.StatusNotFound, errNotFound},
		{"legacy unknown result", "GET", "/v1/scenario/jobs/feedbeef/result", "", http.StatusNotFound, errNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, env, raw := doReq(t, tc.method, srv.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q (body %s)", env.Error.Code, tc.wantCode, raw)
			}
			if env.Error.Message == "" {
				t.Errorf("empty message (body %s)", raw)
			}
			// The envelope is the whole body: exactly one top-level "error"
			// object with no stray fields.
			var top map[string]map[string]any
			if err := json.Unmarshal([]byte(raw), &top); err != nil || len(top) != 1 {
				t.Errorf("body is not a bare error envelope: %s", raw)
			}
		})
	}
}

// TestRateLimitEnvelope: an over-budget client gets 429 rate_limited with
// both the Retry-After header and the retry_after envelope field.
func TestRateLimitEnvelope(t *testing.T) {
	srv := httptest.NewServer(New(Config{Registry: testRegistry(t), Parallelism: 2, Rate: 0.001, Burst: 1}))
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/v1/run?ids=alpha", nil)
	req.Header.Set("X-Atlarge-Client", "test-client")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp.StatusCode)
	}

	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, body %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After header")
	}
	var env errorEnvelope
	if err := json.Unmarshal([]byte(raw), &env); err != nil {
		t.Fatalf("bad envelope %s: %v", raw, err)
	}
	if env.Error.Code != errRateLimited || env.Error.RetryAfter < 1 {
		t.Errorf("envelope = %+v, want code %s with retry_after >= 1", env.Error, errRateLimited)
	}
}

// blockingExperiment builds an experiment whose hook runs before the report
// is produced — tests park it on a channel to hold tasks on the pool.
func blockingExperiment(id string, hook func(seed int64)) atlarge.Experiment {
	return atlarge.Experiment{
		ID:    id,
		Title: "experiment " + id,
		Order: 99,
		Run: func(seed int64) (*atlarge.Report, error) {
			hook(seed)
			rep := atlarge.NewReport(id, "experiment "+id)
			rep.AddMetric(atlarge.Metric{Name: "value", Value: 1})
			return rep, nil
		},
	}
}

// TestQueueBackpressure: once the pending-task queue exceeds the bound, a
// request that would enqueue work is refused with 429 queue_full — but a
// non-submitting request is still admitted.
func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	reg := testRegistry(t)
	reg.MustRegister(blockingExperiment("block", func(seed int64) {
		started <- struct{}{}
		<-release
	}))

	api := New(Config{Registry: reg, Parallelism: 1, QueueDepth: 1})
	srv := httptest.NewServer(api)
	defer srv.Close()
	defer close(release)

	blocked := make(chan int, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/v1/run?ids=block&replicas=2")
		if err != nil {
			blocked <- 0
			return
		}
		resp.Body.Close()
		blocked <- resp.StatusCode
	}()
	<-started // one replica is on the pool; both count as pending

	resp, env, raw := doReq(t, "GET", srv.URL+"/v1/run?ids=block&seed=7", "")
	if resp.StatusCode != http.StatusTooManyRequests || env.Error.Code != errQueueFull {
		t.Fatalf("overload response: status %d, body %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" || env.Error.RetryAfter < 1 {
		t.Errorf("queue refusal lacks Retry-After: header %q, field %d",
			resp.Header.Get("Retry-After"), env.Error.RetryAfter)
	}

	// Non-submitting endpoints are never refused by backpressure.
	if resp, _ := get(t, srv.URL+"/v1/experiments"); resp.StatusCode != http.StatusOK {
		t.Errorf("catalog refused under overload: %d", resp.StatusCode)
	}

	release <- struct{}{}
	release <- struct{}{}
	if code := <-blocked; code != http.StatusOK {
		t.Fatalf("blocked run finished with %d", code)
	}
}
