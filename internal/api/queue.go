package api

import (
	"net/http"
	"sync"
	"time"

	"atlarge/internal/exec"
)

// admission gates work-submitting endpoints (/v1/run, /v1/run/stream,
// /v1/scenario/sweep, /v1/jobs) behind two checks:
//
//  1. a per-client token bucket (Config.Rate/Burst, keyed by the
//     X-Atlarge-Client header or the remote host), and
//  2. pending-task backpressure: when the executor's pending-task queue —
//     shared across every plan the server runs — exceeds Config.QueueDepth,
//     new work is refused with 429 instead of being accepted into a pool
//     that cannot absorb it.
//
// Both refusals carry a computed Retry-After: the rate limiter knows its
// exact refill time, and the queue check estimates drain time from the
// recently observed task completion rate.
type admission struct {
	limiter  *rateLimiter // nil = no rate limiting
	stats    *exec.Stats
	maxQueue int64

	// completion-rate tracker: completed-counter deltas sampled at least
	// rateSampleMin apart, smoothed 50/50 with the previous estimate.
	mu         sync.Mutex
	lastSample time.Time
	lastCount  int64
	perSecond  float64
}

const rateSampleMin = 250 * time.Millisecond

// rateTracker smooths a monotone counter into a per-second rate with the
// same sampling discipline as admission.taskRate: resample when the last
// sample is at least rateSampleMin old, then blend 50/50 with the previous
// estimate. The source func reads the counter's current value.
type rateTracker struct {
	source func() float64

	mu         sync.Mutex
	lastSample time.Time
	lastCount  float64
	perSecond  float64
}

func newRateTracker(source func() float64) *rateTracker {
	return &rateTracker{source: source, lastSample: time.Now()}
}

// rate returns the smoothed per-second growth of the source counter.
func (t *rateTracker) rate() float64 {
	now := time.Now()
	count := t.source()
	t.mu.Lock()
	defer t.mu.Unlock()
	if dt := now.Sub(t.lastSample).Seconds(); dt >= rateSampleMin.Seconds() {
		inst := (count - t.lastCount) / dt
		if t.perSecond == 0 {
			t.perSecond = inst
		} else {
			t.perSecond = 0.5*t.perSecond + 0.5*inst
		}
		t.lastSample, t.lastCount = now, count
	}
	return t.perSecond
}

func newAdmission(limiter *rateLimiter, stats *exec.Stats, maxQueue int) *admission {
	return &admission{limiter: limiter, stats: stats, maxQueue: int64(maxQueue), lastSample: time.Now()}
}

// taskRate returns the smoothed task completion rate (tasks/second),
// resampling the shared counter when the last sample is old enough.
func (a *admission) taskRate() float64 {
	now := time.Now()
	count := a.stats.Completed()
	a.mu.Lock()
	defer a.mu.Unlock()
	if dt := now.Sub(a.lastSample).Seconds(); dt >= rateSampleMin.Seconds() {
		inst := float64(count-a.lastCount) / dt
		if a.perSecond == 0 {
			a.perSecond = inst
		} else {
			a.perSecond = 0.5*a.perSecond + 0.5*inst
		}
		a.lastSample, a.lastCount = now, count
	}
	return a.perSecond
}

// drainEstimate converts a backlog of tasks into whole seconds until the
// pool has drained it, clamped to [1, 60]; with no observed completion rate
// yet it guesses 5 seconds.
func (a *admission) drainEstimate(backlog int64) int {
	rate := a.taskRate()
	if rate <= 0 {
		return 5
	}
	secs := int(float64(backlog)/rate) + 1
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// admit runs both checks for one work-submitting request, writing the 429
// envelope itself on refusal. Callers that would not enqueue anything (a
// fully cache-served /v1/run) should call admitClient only.
func (a *admission) admit(w http.ResponseWriter, r *http.Request) bool {
	if !a.admitClient(w, r) {
		return false
	}
	return a.admitQueue(w)
}

// admitClient is the token-bucket half of admission.
func (a *admission) admitClient(w http.ResponseWriter, r *http.Request) bool {
	if a.limiter == nil {
		return true
	}
	if retryAfter, ok := a.limiter.allow(clientKey(r), time.Now()); !ok {
		writeRetryError(w, http.StatusTooManyRequests, errRateLimited, retryAfter,
			"client %q exceeded %.3g requests/second; retry after %d s", clientKey(r), a.limiter.rate, retryAfter)
		return false
	}
	return true
}

// admitQueue is the backpressure half of admission.
func (a *admission) admitQueue(w http.ResponseWriter) bool {
	pending := a.stats.Pending()
	if pending < a.maxQueue {
		return true
	}
	retryAfter := a.drainEstimate(pending - a.maxQueue + 1)
	writeRetryError(w, http.StatusTooManyRequests, errQueueFull, retryAfter,
		"pending-task queue is full (%d tasks, bound %d); retry after %d s", pending, a.maxQueue, retryAfter)
	return false
}
