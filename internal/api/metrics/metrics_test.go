package metrics

import (
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestWriteFormat checks the exposition basics: HELP/TYPE headers in
// registration order, counter and gauge samples, label rendering.
func TestWriteFormat(t *testing.T) {
	r := New()
	c := r.Counter("jobs_total", "Jobs ever submitted.")
	c.Add(3)
	r.GaugeFunc("queue_depth", "Pending tasks.", func() float64 { return 7 })
	v := r.CounterVec("requests_total", "Requests.", "endpoint", "code")
	v.With("/v1/run", "200").Add(2)
	v.With("/v1/jobs", "429").Inc()

	out := render(t, r)
	for _, want := range []string{
		"# HELP jobs_total Jobs ever submitted.\n# TYPE jobs_total counter\njobs_total 3\n",
		"# TYPE queue_depth gauge\nqueue_depth 7\n",
		`requests_total{endpoint="/v1/jobs",code="429"} 1`,
		`requests_total{endpoint="/v1/run",code="200"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families render in registration order.
	if strings.Index(out, "jobs_total") > strings.Index(out, "queue_depth") {
		t.Error("families out of registration order")
	}
	// Vec series render sorted by label values (/v1/jobs before /v1/run).
	if strings.Index(out, `endpoint="/v1/jobs"`) > strings.Index(out, `endpoint="/v1/run"`) {
		t.Error("vec series out of label order")
	}
}

// TestHistogram checks cumulative buckets, the implicit +Inf bucket, and
// sum/count lines.
func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.25, 1})
	// Exact binary fractions, so the rendered sum is exact too.
	for _, v := range []float64{0.125, 0.25, 0.5, 2} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`latency_seconds_bucket{le="0.25"} 2`, // 0.125 and the boundary 0.25
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		`latency_seconds_sum 2.875`,
		`latency_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
}

// TestHistogramVec: labeled histograms share buckets but not samples, and
// the le pair renders after the series labels.
func TestHistogramVec(t *testing.T) {
	r := New()
	v := r.HistogramVec("req_seconds", "Request latency.", []float64{1}, "endpoint")
	v.With("/a").Observe(0.5)
	v.With("/b").Observe(2)
	out := render(t, r)
	for _, want := range []string{
		`req_seconds_bucket{endpoint="/a",le="1"} 1`,
		`req_seconds_bucket{endpoint="/a",le="+Inf"} 1`,
		`req_seconds_bucket{endpoint="/b",le="1"} 0`,
		`req_seconds_bucket{endpoint="/b",le="+Inf"} 1`,
		`req_seconds_count{endpoint="/a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestLabelEscaping: quotes, backslashes, and newlines in label values are
// escaped per the format.
func TestLabelEscaping(t *testing.T) {
	r := New()
	v := r.CounterVec("odd_total", "Odd labels.", "name")
	v.With(`a"b\c` + "\n").Inc()
	out := render(t, r)
	if !strings.Contains(out, `odd_total{name="a\"b\\c\n"} 1`) {
		t.Errorf("escaping wrong:\n%s", out)
	}
}

// TestDuplicateFamilyPanics: registering the same family twice is a bug.
func TestDuplicateFamilyPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("x_total", "X again.")
}

// TestGaugeVecCallbacks: per-label callbacks are read at scrape time.
func TestGaugeVecCallbacks(t *testing.T) {
	r := New()
	v := r.GaugeVec("jobs", "Jobs by state.", "state")
	n := 0.0
	v.Set(func() float64 { return n }, "running")
	v.Set(func() float64 { return 2 }, "done")
	n = 5
	out := render(t, r)
	for _, want := range []string{`jobs{state="running"} 5`, `jobs{state="done"} 2`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSnapshotFunc: snapshot families re-enumerate their series at scrape
// time, render them sorted by label values, and enforce label arity.
func TestSnapshotFunc(t *testing.T) {
	r := New()
	samples := []Sample{
		{Labels: []string{"tick"}, Value: 3},
		{Labels: []string{"arrive"}, Value: 7},
	}
	r.CounterSnapshotFunc("events_total", "Events by name.", []string{"event"},
		func() []Sample { return samples })
	r.GaugeSnapshotFunc("event_rate", "Event rate by name.", []string{"event"},
		func() []Sample { return samples[:1] })

	out := render(t, r)
	for _, want := range []string{
		"# TYPE events_total counter",
		`events_total{event="arrive"} 7`,
		`events_total{event="tick"} 3`,
		"# TYPE event_rate gauge",
		`event_rate{event="tick"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, `event="arrive"`) > strings.Index(out, `events_total{event="tick"}`) {
		t.Error("snapshot series not sorted by label value")
	}

	// A new series appears on the next scrape without re-registration.
	samples = append(samples, Sample{Labels: []string{"depart"}, Value: 1})
	if !strings.Contains(render(t, r), `events_total{event="depart"} 1`) {
		t.Error("new series missing after source grew")
	}

	defer func() {
		if recover() == nil {
			t.Error("label arity mismatch did not panic")
		}
	}()
	r.CounterSnapshotFunc("bad_total", "Bad arity.", []string{"a", "b"},
		func() []Sample { return []Sample{{Labels: []string{"only-one"}, Value: 1}} })
	render(t, r)
}
