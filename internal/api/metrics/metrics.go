// Package metrics is a minimal, dependency-free metrics registry rendering
// the Prometheus text exposition format (version 0.0.4). It exists so
// `atlarge serve` can export saturation signals — queue depth, task
// throughput, cache hit ratio, per-endpoint latency histograms — without
// pulling the Prometheus client library into a simulation codebase.
//
// Supported instrument kinds: monotonically increasing counters (stored, or
// computed from a callback over an external counter), callback gauges, and
// fixed-bucket histograms. Counters and histograms come in labeled "vec"
// variants; series within a family render sorted by label values, so the
// output is deterministic for a fixed set of observations.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a fixed set of metric families and renders them in
// registration order. Register every family up front; observation methods
// are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []family
}

// family is one named metric with HELP/TYPE metadata and a sample renderer.
type family struct {
	name, help, typ string
	render          func(w io.Writer, name string)
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

func (r *Registry) add(name, help, typ string, render func(io.Writer, string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		if f.name == name {
			panic("metrics: duplicate family " + name)
		}
	}
	r.families = append(r.families, family{name: name, help: help, typ: typ, render: render})
}

// Write renders every family in the Prometheus text format.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	families := append([]family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		f.render(w, f.name)
	}
	return nil
}

// Handler serves the registry as an HTTP endpoint (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Write(w)
	})
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// labelPairs renders {k1="v1",k2="v2"} for parallel name/value slices.
func labelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + `="` + escapeLabel(values[i]) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Counter is a monotonically increasing integer counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(name, help, "counter", func(w io.Writer, name string) {
		fmt.Fprintf(w, "%s %d\n", name, c.Value())
	})
	return c
}

// CounterFunc registers a counter whose value is read from a callback at
// scrape time (for counts maintained elsewhere, e.g. the executor's
// completed-task total).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(name, help, "counter", func(w io.Writer, name string) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
	})
}

// GaugeFunc registers a gauge read from a callback at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(name, help, "gauge", func(w io.Writer, name string) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
	})
}

// GaugeVec is a family of callback gauges distinguished by label values.
type GaugeVec struct {
	labels []string
	mu     sync.Mutex
	series map[string]func() float64 // key = joined label values
	order  []string
}

// Set registers (or replaces) the gauge callback for one label-value tuple.
func (g *GaugeVec) Set(fn func() float64, values ...string) {
	if len(values) != len(g.labels) {
		panic("metrics: label arity mismatch")
	}
	key := strings.Join(values, "\x00")
	g.mu.Lock()
	if _, ok := g.series[key]; !ok {
		g.order = append(g.order, key)
		sort.Strings(g.order)
	}
	g.series[key] = fn
	g.mu.Unlock()
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	g := &GaugeVec{labels: labels, series: map[string]func() float64{}}
	r.add(name, help, "gauge", func(w io.Writer, name string) {
		g.mu.Lock()
		keys := append([]string(nil), g.order...)
		fns := make([]func() float64, len(keys))
		for i, k := range keys {
			fns[i] = g.series[k]
		}
		g.mu.Unlock()
		for i, k := range keys {
			fmt.Fprintf(w, "%s%s %s\n", name, labelPairs(g.labels, strings.Split(k, "\x00")), formatFloat(fns[i]()))
		}
	})
	return g
}

// CounterVec is a family of counters distinguished by label values; series
// are created on first use.
type CounterVec struct {
	labels []string
	mu     sync.Mutex
	series map[string]*Counter
}

// With returns the counter for a label-value tuple, creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic("metrics: label arity mismatch")
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.series[key]
	if !ok {
		c = &Counter{}
		v.series[key] = c
	}
	return c
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, series: map[string]*Counter{}}
	r.add(name, help, "counter", func(w io.Writer, name string) {
		v.mu.Lock()
		keys := make([]string, 0, len(v.series))
		for k := range v.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		counters := make([]*Counter, len(keys))
		for i, k := range keys {
			counters[i] = v.series[k]
		}
		v.mu.Unlock()
		for i, k := range keys {
			fmt.Fprintf(w, "%s%s %d\n", name, labelPairs(v.labels, strings.Split(k, "\x00")), counters[i].Value())
		}
	})
	return v
}

// Sample is one labeled observation produced by a snapshot callback.
type Sample struct {
	Labels []string
	Value  float64
}

// snapshotFunc registers a labeled family whose complete series set is
// produced by a callback at scrape time. It serves families whose label
// values are not known at registration (e.g. per-event-name kernel
// aggregates): the callback returns every current series, and the renderer
// sorts them by label values so the output stays deterministic.
func (r *Registry) snapshotFunc(name, help, typ string, labels []string, fn func() []Sample) {
	r.add(name, help, typ, func(w io.Writer, name string) {
		samples := append([]Sample(nil), fn()...) // sort a copy, not the source's slice
		sort.Slice(samples, func(i, j int) bool {
			return strings.Join(samples[i].Labels, "\x00") < strings.Join(samples[j].Labels, "\x00")
		})
		for _, s := range samples {
			if len(s.Labels) != len(labels) {
				panic("metrics: label arity mismatch in snapshot for " + name)
			}
			fmt.Fprintf(w, "%s%s %s\n", name, labelPairs(labels, s.Labels), formatFloat(s.Value))
		}
	})
}

// CounterSnapshotFunc registers a labeled counter family rendered from a
// snapshot callback at scrape time (see snapshotFunc). The callback must
// return monotonically non-decreasing values per label tuple.
func (r *Registry) CounterSnapshotFunc(name, help string, labels []string, fn func() []Sample) {
	r.snapshotFunc(name, help, "counter", labels, fn)
}

// GaugeSnapshotFunc registers a labeled gauge family rendered from a
// snapshot callback at scrape time (see snapshotFunc).
func (r *Registry) GaugeSnapshotFunc(name, help string, labels []string, fn func() []Sample) {
	r.snapshotFunc(name, help, "gauge", labels, fn)
}

// DefBuckets are latency histogram bounds in seconds, spanning sub-ms cache
// hits through multi-second simulations.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// Histogram is a fixed-bucket histogram with cumulative bucket counts, a
// sample sum, and a sample count.
type Histogram struct {
	bounds []float64       // upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, last = +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return &Histogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// render writes the bucket/sum/count series, with extra leading label pairs.
func (h *Histogram) render(w io.Writer, name string, labelNames, labelValues []string) {
	// Fresh slices for the le pair: appending to the caller's (shared)
	// label slices could clobber their backing arrays.
	bucketNames := append(append([]string{}, labelNames...), "le")
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			labelPairs(bucketNames, append(append([]string{}, labelValues...), le)), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelPairs(labelNames, labelValues),
		formatFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelPairs(labelNames, labelValues), h.count.Load())
}

// Histogram registers an unlabeled histogram; nil buckets mean DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.add(name, help, "histogram", func(w io.Writer, name string) {
		h.render(w, name, nil, nil)
	})
	return h
}

// HistogramVec is a family of histograms distinguished by label values,
// sharing one bucket layout.
type HistogramVec struct {
	labels  []string
	buckets []float64
	mu      sync.Mutex
	series  map[string]*Histogram
}

// With returns the histogram for a label-value tuple, creating it on first
// use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic("metrics: label arity mismatch")
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.series[key]
	if !ok {
		h = newHistogram(v.buckets)
		v.series[key] = h
	}
	return h
}

// HistogramVec registers a labeled histogram family; nil buckets mean
// DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{labels: labels, buckets: buckets, series: map[string]*Histogram{}}
	r.add(name, help, "histogram", func(w io.Writer, name string) {
		v.mu.Lock()
		keys := make([]string, 0, len(v.series))
		for k := range v.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		hs := make([]*Histogram, len(keys))
		for i, k := range keys {
			hs[i] = v.series[k]
		}
		v.mu.Unlock()
		for i, k := range keys {
			hs[i].render(w, name, v.labels, strings.Split(k, "\x00"))
		}
	})
	return v
}
