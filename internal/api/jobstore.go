package api

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// jobstore persists job specs, state, and results under the server's
// --state-dir, reusing the scenario checkpoint layout: a job's directory is
// <dir>/<id> where id = scenario.RunHash(spec, seed, replicas) — the same
// directory the sweep's checkpointed (cell, replica) task files land in, so
// a job's metadata and its partial results travel together. A server
// restarted on the same directory re-lists every job: finished jobs serve
// their stored result bytes, interrupted ones re-launch and resume from the
// checkpointed tasks to a byte-identical result.
type jobstore struct {
	dir string
}

// jobRecord is the durable job document (<dir>/<id>/job.json). Spec is the
// canonical marshaling of the parsed spec, so re-parsing it on recovery
// reproduces the exact struct — and therefore the exact RunHash — that
// created the job.
type jobRecord struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	Name     string          `json:"name,omitempty"`
	Domain   string          `json:"domain,omitempty"`
	Seed     int64           `json:"seed"` // effective seed (request override or spec)
	Replicas int             `json:"replicas"`
	Total    int             `json:"total"`
	State    string          `json:"state"`
	Error    string          `json:"error,omitempty"`
	Spec     json.RawMessage `json:"spec"`
}

// newJobstore creates (or reopens) the state directory.
func newJobstore(dir string) (*jobstore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("api: state dir: %w", err)
	}
	return &jobstore{dir: dir}, nil
}

func (st *jobstore) recordPath(id string) string {
	return filepath.Join(st.dir, id, "job.json")
}

func (st *jobstore) resultPath(id string) string {
	return filepath.Join(st.dir, id, "result.json")
}

// writeFileAtomic lands content completely or not at all (temp + rename),
// so a SIGKILL mid-write can never leave a torn document for recovery to
// trip over.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// saveRecord persists the job document atomically.
func (st *jobstore) saveRecord(rec *jobRecord) error {
	if err := os.MkdirAll(filepath.Join(st.dir, rec.ID), 0o755); err != nil {
		return fmt.Errorf("api: persist job %s: %w", rec.ID, err)
	}
	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("api: persist job %s: %w", rec.ID, err)
	}
	if err := writeFileAtomic(st.recordPath(rec.ID), append(raw, '\n')); err != nil {
		return fmt.Errorf("api: persist job %s: %w", rec.ID, err)
	}
	return nil
}

// saveResult persists the finished report bytes atomically.
func (st *jobstore) saveResult(id string, result []byte) error {
	if err := writeFileAtomic(st.resultPath(id), result); err != nil {
		return fmt.Errorf("api: persist result %s: %w", id, err)
	}
	return nil
}

// loadRecord reads one job's durable document back.
func (st *jobstore) loadRecord(id string) (*jobRecord, error) {
	raw, err := os.ReadFile(st.recordPath(id))
	if err != nil {
		return nil, err
	}
	var rec jobRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("api: job record %s: %w", id, err)
	}
	return &rec, nil
}

// loadResult reads a finished job's stored report bytes.
func (st *jobstore) loadResult(id string) ([]byte, bool) {
	raw, err := os.ReadFile(st.resultPath(id))
	if err != nil {
		return nil, false
	}
	return raw, true
}

// list returns every recoverable job record under the state directory,
// sorted by ID for deterministic recovery order. Unreadable or torn records
// are skipped (atomic writes make those impossible short of external
// corruption; a skipped record degrades to a lost job, never a crash).
func (st *jobstore) list() ([]*jobRecord, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("api: list state dir: %w", err)
	}
	var recs []*jobRecord
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(st.recordPath(e.Name()))
		if err != nil {
			continue // a checkpoint-only dir (CLI sweeps share the layout)
		}
		var rec jobRecord
		if err := json.Unmarshal(raw, &rec); err != nil || rec.ID != e.Name() {
			continue
		}
		recs = append(recs, &rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, nil
}
