package api

import (
	"context"
	"sort"
	"sync"

	"atlarge/internal/exec"
)

// Job states.
const (
	jobRunning   = "running"
	jobDone      = "done"
	jobFailed    = "failed"
	jobCancelled = "cancelled"
)

// jobKindSweep is the only job kind today: an asynchronous scenario sweep.
// The /v1/jobs resource model is kind-extensible — the submit body names the
// kind next to its spec — so future long-running work (trace imports,
// distributed runs) slots in without new routes.
const jobKindSweep = "sweep"

// jobStates enumerates the valid states for the /v1/jobs?state= filter.
var jobStates = []string{jobRunning, jobDone, jobFailed, jobCancelled}

// job is one asynchronous unit of work: POST /v1/jobs creates it (or dedups
// onto an existing one — the ID is the content hash of spec+seed+replicas),
// the status/result/cancel endpoints observe and steer it, and with a state
// directory configured it survives server restarts. Progress counters
// stream in from the executor while the job runs.
type job struct {
	id     string
	kind   string
	name   string // the spec's name, for humans listing jobs
	cancel context.CancelFunc

	mu     sync.Mutex
	state  string
	done   int
	total  int
	result []byte // final report JSON, byte-identical to the sync response
	errMsg string
	spans  jobSpans // incremental span aggregates for /v1/jobs/{id}/profile
}

// jobSpans aggregates the executor task spans of one job incrementally —
// sums, maxima, and per-worker busy time only, so memory stays constant no
// matter how many tasks the job runs. Guarded by the owning job's mu.
type jobSpans struct {
	tasks   int
	cached  int
	failed  int
	waitNs  int64
	runNs   int64
	waitMax int64
	runMax  int64
	workers map[int]*workerSpan
}

// workerSpan is one pool worker's share of a job's execution.
type workerSpan struct {
	tasks  int
	busyNs int64
}

// observeSpan folds one task span into the job's aggregates; it has the
// SpanObserver signature.
func (j *job) observeSpan(_ int, _ string, span exec.TaskSpan, err error) {
	wait := int64(span.Start - span.Wait)
	run := int64(span.End - span.Start)
	j.mu.Lock()
	defer j.mu.Unlock()
	s := &j.spans
	s.tasks++
	if span.Cached {
		s.cached++
	}
	if err != nil {
		s.failed++
	}
	s.waitNs += wait
	s.runNs += run
	if wait > s.waitMax {
		s.waitMax = wait
	}
	if run > s.runMax {
		s.runMax = run
	}
	if s.workers == nil {
		s.workers = make(map[int]*workerSpan)
	}
	ws := s.workers[span.Worker]
	if ws == nil {
		ws = &workerSpan{}
		s.workers[span.Worker] = ws
	}
	ws.tasks++
	ws.busyNs += run
}

// jobProfileDoc is the span summary of GET /v1/jobs/{id}/profile. All
// durations are milliseconds of wall-clock time.
type jobProfileDoc struct {
	Job   string `json:"job"`
	State string `json:"state"`
	Tasks struct {
		Observed int `json:"observed"`
		Cached   int `json:"cached"`
		Failed   int `json:"failed"`
	} `json:"tasks"`
	QueueWaitMs struct {
		Mean float64 `json:"mean"`
		Max  float64 `json:"max"`
	} `json:"queue_wait_ms"`
	RunMs struct {
		Mean float64 `json:"mean"`
		Max  float64 `json:"max"`
	} `json:"run_ms"`
	Workers []workerProfileDoc `json:"workers,omitempty"`
}

// workerProfileDoc is one worker's row in the profile document.
type workerProfileDoc struct {
	Worker int     `json:"worker"`
	Tasks  int     `json:"tasks"`
	BusyMs float64 `json:"busy_ms"`
}

// profileDoc snapshots the job's span aggregates.
func (j *job) profileDoc() jobProfileDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := &j.spans
	d := jobProfileDoc{Job: j.id, State: j.state}
	d.Tasks.Observed = s.tasks
	d.Tasks.Cached = s.cached
	d.Tasks.Failed = s.failed
	if s.tasks > 0 {
		d.QueueWaitMs.Mean = float64(s.waitNs) / float64(s.tasks) / 1e6
		d.RunMs.Mean = float64(s.runNs) / float64(s.tasks) / 1e6
	}
	d.QueueWaitMs.Max = float64(s.waitMax) / 1e6
	d.RunMs.Max = float64(s.runMax) / 1e6
	ids := make([]int, 0, len(s.workers))
	for id := range s.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ws := s.workers[id]
		d.Workers = append(d.Workers, workerProfileDoc{
			Worker: id, Tasks: ws.tasks, BusyMs: float64(ws.busyNs) / 1e6,
		})
	}
	return d
}

// progress records one streamed task completion.
func (j *job) progress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.mu.Unlock()
}

// finish settles the job from its run outcome; a cancelled job stays
// cancelled even if the runner surfaces the context error afterwards.
func (j *job) finish(result []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == jobCancelled {
		return
	}
	if err != nil {
		j.state = jobFailed
		j.errMsg = err.Error()
		return
	}
	j.state = jobDone
	j.result = result
}

// markCancelled flips a running job to cancelled and fires its context.
func (j *job) markCancelled() bool {
	j.mu.Lock()
	running := j.state == jobRunning
	if running {
		j.state = jobCancelled
	}
	j.mu.Unlock()
	if running {
		j.cancel()
	}
	return running
}

// jobStatus is the legacy status document of GET /v1/scenario/jobs/{id},
// kept byte-compatible for existing clients of the deprecated alias routes.
type jobStatus struct {
	Job   string `json:"job"`
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	// Result is the path serving the finished report; set when done.
	Result string `json:"result,omitempty"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`
}

// status snapshots the job in the legacy shape.
func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{Job: j.id, State: j.state, Done: j.done, Total: j.total, Error: j.errMsg}
	if j.state == jobDone {
		st.Result = "/v1/scenario/jobs/" + j.id + "/result"
	}
	return st
}

// jobDoc is the uniform job resource of the /v1/jobs API.
type jobDoc struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
	Links struct {
		Self   string `json:"self"`
		Result string `json:"result,omitempty"`
	} `json:"links"`
}

// doc snapshots the job as a /v1/jobs resource document.
func (j *job) doc() jobDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	d := jobDoc{ID: j.id, Kind: j.kind, Name: j.name, State: j.state, Done: j.done, Total: j.total, Error: j.errMsg}
	d.Links.Self = "/v1/jobs/" + j.id
	if j.state == jobDone {
		d.Links.Result = "/v1/jobs/" + j.id + "/result"
	}
	return d
}

// resultBytes returns the finished report, or false while it is not ready.
func (j *job) resultBytes() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != jobDone {
		return nil, false
	}
	return j.result, true
}
