package api

import (
	"context"
	"sync"
)

// Job states.
const (
	jobRunning   = "running"
	jobDone      = "done"
	jobFailed    = "failed"
	jobCancelled = "cancelled"
)

// job is one asynchronous sweep: POST /v1/scenario/sweep?async=1 creates it,
// the status/result/cancel endpoints observe and steer it. Progress counters
// stream in from the executor while the sweep runs.
type job struct {
	id     string
	cancel context.CancelFunc

	mu     sync.Mutex
	state  string
	done   int
	total  int
	result []byte // final report JSON, byte-identical to the sync response
	errMsg string
}

// progress records one streamed task completion.
func (j *job) progress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.mu.Unlock()
}

// finish settles the job from its run outcome; a cancelled job stays
// cancelled even if the runner surfaces the context error afterwards.
func (j *job) finish(result []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == jobCancelled {
		return
	}
	if err != nil {
		j.state = jobFailed
		j.errMsg = err.Error()
		return
	}
	j.state = jobDone
	j.result = result
}

// markCancelled flips a running job to cancelled and fires its context.
func (j *job) markCancelled() bool {
	j.mu.Lock()
	running := j.state == jobRunning
	if running {
		j.state = jobCancelled
	}
	j.mu.Unlock()
	if running {
		j.cancel()
	}
	return running
}

// jobStatus is the status document of GET /v1/scenario/jobs/{id}.
type jobStatus struct {
	Job   string `json:"job"`
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	// Result is the path serving the finished report; set when done.
	Result string `json:"result,omitempty"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`
}

// status snapshots the job.
func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{Job: j.id, State: j.state, Done: j.done, Total: j.total, Error: j.errMsg}
	if j.state == jobDone {
		st.Result = "/v1/scenario/jobs/" + j.id + "/result"
	}
	return st
}

// resultBytes returns the finished report, or false while it is not ready.
func (j *job) resultBytes() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != jobDone {
		return nil, false
	}
	return j.result, true
}
