package api

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"atlarge/internal/dist"
	"atlarge/internal/scenario"
)

// startDistWorkers boots k sweep workers and returns their addresses.
func startDistWorkers(t *testing.T, k int) []string {
	t.Helper()
	addrs := make([]string, k)
	for i := range addrs {
		w := &dist.Worker{Build: map[string]dist.Builder{scenario.DistJobKind: scenario.WorkerBuilder()}, Parallelism: 2}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	return addrs
}

// TestServeDistributedSweep: a server with Config.Workers executes sweeps
// across them — the synchronous sweep response is byte-identical to a
// worker-less server's, and the dist metric families report the work.
func TestServeDistributedSweep(t *testing.T) {
	local := httptest.NewServer(New(Config{Registry: testRegistry(t), Parallelism: 2}))
	t.Cleanup(local.Close)
	resp, want := postBody(t, local.URL+"/v1/scenario/sweep", sweepSpecBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-process sweep status = %d: %s", resp.StatusCode, want)
	}

	srv := New(Config{Registry: testRegistry(t), Parallelism: 2, Workers: startDistWorkers(t, 2)})
	if err := srv.ConnectWorkers(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	resp, got := postBody(t, ts.URL+"/v1/scenario/sweep", sweepSpecBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distributed sweep status = %d: %s", resp.StatusCode, got)
	}
	if got != want {
		t.Error("distributed sweep response differs from in-process response")
	}

	_, metricsBody := get(t, ts.URL+"/metrics")
	for _, family := range []string{
		"atlarge_dist_tasks_inflight 0",
		"atlarge_dist_redispatched_total 0",
		`atlarge_dist_worker_completions_total{worker=`,
	} {
		if !strings.Contains(metricsBody, family) {
			t.Errorf("/metrics is missing %q after a distributed sweep", family)
		}
	}
}

// TestServeDistributedJob: the async jobs path distributes too, and the
// job's result bytes match the synchronous sweep response.
func TestServeDistributedJob(t *testing.T) {
	srv := New(Config{Registry: testRegistry(t), Parallelism: 2, Workers: startDistWorkers(t, 2)})
	if err := srv.ConnectWorkers(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, want := postBody(t, ts.URL+"/v1/scenario/sweep", sweepSpecBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync sweep status = %d", resp.StatusCode)
	}
	status, doc, raw := postJob(t, ts.URL, `{"kind": "sweep", "spec": `+sweepSpecBody+`}`)
	if status != http.StatusAccepted {
		t.Fatalf("job submit status = %d: %s", status, raw)
	}
	if final := waitJobDone(t, ts.URL, doc.ID); final.State != jobDone {
		t.Fatalf("distributed job ended %q, want done: %+v", final.State, final)
	}
	resp, got := get(t, ts.URL+"/v1/jobs/"+doc.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job result status = %d: %s", resp.StatusCode, got)
	}
	if got != want {
		t.Error("distributed job result differs from sync sweep response")
	}
}

// TestConnectWorkersFailFast: an unreachable worker fails ConnectWorkers
// instead of surfacing later inside someone's sweep.
func TestConnectWorkersFailFast(t *testing.T) {
	srv := New(Config{Registry: testRegistry(t), Workers: []string{"127.0.0.1:1"}})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.ConnectWorkers(ctx); err == nil {
		t.Fatal("ConnectWorkers succeeded against an unreachable address")
	}
}

// postBody posts a JSON body and returns the response and its body text.
func postBody(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, readAll(t, resp)
}
