package faas

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atlarge/internal/sim"
)

// TestPlatformInvariantsProperty checks, over random arrival patterns:
//
//  1. every scheduled invocation completes;
//  2. end >= start >= arrive for every invocation;
//  3. cold invocations pay at least the cold-start delay;
//  4. instance-seconds are positive when any invocation ran.
func TestPlatformInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		cfg := DefaultPlatformConfig()
		cfg.Seed = seed
		p := NewPlatform(cfg)
		if err := p.Register(Function{Name: "f", ExecMean: 0.5, ExecSigma: 0.5}); err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			at := sim.Time(r.Float64() * 1000)
			if err := p.ScheduleInvocation(at, "f", nil); err != nil {
				return false
			}
		}
		if err := p.Run(); err != nil {
			return false
		}
		ivs := p.Invocations()
		if len(ivs) != n {
			return false
		}
		for _, iv := range ivs {
			if iv.End < iv.Start || iv.Start < iv.Arrive {
				return false
			}
			if iv.Cold && float64(iv.Start-iv.Arrive) < cfg.ColdStart-1e-9 {
				return false
			}
		}
		return p.InstanceSeconds() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestWorkflowStepConservationProperty checks that a workflow invokes
// exactly its leaf count, for random fan-out shapes.
func TestWorkflowStepConservationProperty(t *testing.T) {
	f := func(seed int64, widthRaw, depthRaw uint8) bool {
		width := int(widthRaw%4) + 1
		depth := int(depthRaw%3) + 1
		cfg := DefaultPlatformConfig()
		cfg.Seed = seed
		p := NewPlatform(cfg)
		if err := p.Register(Function{Name: "w", ExecMean: 0.2, ExecSigma: 0.1}); err != nil {
			return false
		}
		// Build a sequence of `depth` parallel fan-outs of `width` tasks.
		var stages []*WorkflowNode
		for d := 0; d < depth; d++ {
			var par []*WorkflowNode
			for wdt := 0; wdt < width; wdt++ {
				par = append(par, Task("w"))
			}
			stages = append(stages, Par(par...))
		}
		wf := Seq(stages...)
		eng := &Engine{Platform: p, StepOverhead: 0.01}
		var got WorkflowResult
		if err := eng.ScheduleWorkflow(0, wf, func(r WorkflowResult) { got = r }); err != nil {
			return false
		}
		if err := p.Run(); err != nil {
			return false
		}
		return got.Steps == width*depth && len(p.Invocations()) == width*depth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
