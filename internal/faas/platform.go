// Package faas simulates serverless (Function-as-a-Service) platforms per
// the SPEC-RG FaaS reference architecture the paper's team proposed
// (Table 7): a router/scheduler in front of per-function instance pools with
// cold starts and keep-alive expiry, a workflow execution engine in the
// style of Fission Workflows, and an always-on microservice baseline for the
// operational-model comparison.
package faas

import (
	"fmt"
	"math"
	"sort"

	"atlarge/internal/sim"
	"atlarge/internal/stats"
)

// Function is a registered function.
type Function struct {
	Name string
	// ExecMean/ExecSigma parameterize a log-normal execution time (seconds).
	ExecMean  float64
	ExecSigma float64
	// MemoryMB drives the cost model.
	MemoryMB int
}

// Invocation is one completed function invocation.
type Invocation struct {
	Function string
	Arrive   sim.Time
	Start    sim.Time // when execution began (after any cold start)
	End      sim.Time
	Cold     bool
}

// Latency returns end-to-end latency (seconds).
func (iv Invocation) Latency() float64 { return float64(iv.End - iv.Arrive) }

// PlatformConfig parameterizes the FaaS platform.
type PlatformConfig struct {
	// ColdStart is the instance provisioning delay (s).
	ColdStart float64
	// KeepAlive is how long an idle instance stays warm (s).
	KeepAlive float64
	// MaxConcurrent caps the number of instances per function (0 = no cap).
	MaxConcurrent int
	Seed          int64
}

// DefaultPlatformConfig mirrors public-cloud FaaS behaviour (sub-second to
// seconds cold starts, minutes of keep-alive).
func DefaultPlatformConfig() PlatformConfig {
	return PlatformConfig{ColdStart: 1.5, KeepAlive: 600, MaxConcurrent: 200, Seed: 1}
}

// instance is one function container.
type instance struct {
	fn       string
	idleAt   sim.Time
	busy     bool
	expireEv sim.EventRef
	// aliveFrom/aliveTo track lifetime for the cost integral.
	aliveFrom sim.Time
	aliveTo   sim.Time
	dead      bool
}

// Platform is the simulated FaaS platform (router + scheduler + pools).
type Platform struct {
	cfg       PlatformConfig
	k         *sim.Kernel
	functions map[string]Function
	idle      map[string][]*instance
	instances []*instance
	countByFn map[string]int
	pending   map[string][]pendingInv // queued when MaxConcurrent reached
	done      []Invocation
}

type pendingInv struct {
	arrive sim.Time
}

// NewPlatform builds a platform on a fresh kernel.
func NewPlatform(cfg PlatformConfig) *Platform {
	return &Platform{
		cfg:       cfg,
		k:         sim.NewKernel(cfg.Seed),
		functions: make(map[string]Function),
		idle:      make(map[string][]*instance),
		countByFn: make(map[string]int),
		pending:   make(map[string][]pendingInv),
	}
}

// Kernel exposes the simulation kernel.
func (p *Platform) Kernel() *sim.Kernel { return p.k }

// Register adds a function. Registering a duplicate name is an error.
func (p *Platform) Register(fn Function) error {
	if fn.Name == "" {
		return fmt.Errorf("faas: function without name")
	}
	if _, ok := p.functions[fn.Name]; ok {
		return fmt.Errorf("faas: function %q already registered", fn.Name)
	}
	if fn.ExecMean <= 0 {
		return fmt.Errorf("faas: function %q exec mean %v", fn.Name, fn.ExecMean)
	}
	p.functions[fn.Name] = fn
	return nil
}

// Invocations returns completed invocations.
func (p *Platform) Invocations() []Invocation { return p.done }

// ScheduleInvocation registers an invocation arrival; onDone (optional) runs
// at completion — the hook the workflow engine uses for chaining.
func (p *Platform) ScheduleInvocation(at sim.Time, fn string, onDone func(Invocation)) error {
	if _, ok := p.functions[fn]; !ok {
		return fmt.Errorf("faas: unknown function %q", fn)
	}
	p.k.At(at, "invoke", func(k *sim.Kernel) {
		p.route(fn, k.Now(), onDone)
	})
	return nil
}

// route implements the router/scheduler: reuse a warm instance, cold-start a
// new one, or queue when at the concurrency cap.
func (p *Platform) route(fn string, arrive sim.Time, onDone func(Invocation)) {
	if pool := p.idle[fn]; len(pool) > 0 {
		inst := pool[len(pool)-1]
		p.idle[fn] = pool[:len(pool)-1]
		inst.expireEv.Cancel()
		p.execute(inst, fn, arrive, arrive, false, onDone)
		return
	}
	if p.cfg.MaxConcurrent > 0 && p.countByFn[fn] >= p.cfg.MaxConcurrent {
		p.pending[fn] = append(p.pending[fn], pendingInv{arrive: arrive})
		return
	}
	inst := &instance{fn: fn, aliveFrom: arrive}
	p.instances = append(p.instances, inst)
	p.countByFn[fn]++
	start := arrive + sim.Duration(p.cfg.ColdStart)
	p.execute(inst, fn, arrive, start, true, onDone)
}

func (p *Platform) execute(inst *instance, fn string, arrive, start sim.Time, cold bool, onDone func(Invocation)) {
	inst.busy = true
	f := p.functions[fn]
	mu := math.Log(f.ExecMean) - f.ExecSigma*f.ExecSigma/2
	exec := sim.LogNormal{Mu: mu, Sigma: f.ExecSigma}.Sample(p.k.Rand("exec/" + fn))
	end := start + sim.Duration(exec)
	p.k.At(end, "complete", func(k *sim.Kernel) {
		inst.busy = false
		iv := Invocation{Function: fn, Arrive: arrive, Start: start, End: end, Cold: cold}
		p.done = append(p.done, iv)
		if onDone != nil {
			onDone(iv)
		}
		// Serve queued work first.
		if q := p.pending[fn]; len(q) > 0 {
			p.pending[fn] = q[1:]
			p.execute(inst, fn, q[0].arrive, k.Now(), false, onDone)
			return
		}
		// Idle: schedule keep-alive expiry.
		inst.idleAt = k.Now()
		p.idle[fn] = append(p.idle[fn], inst)
		ii := inst
		ii.expireEv = k.After(sim.Duration(p.cfg.KeepAlive), "expire", func(k *sim.Kernel) {
			p.expire(ii)
		})
	})
}

// expire removes an idle instance from the pool.
func (p *Platform) expire(inst *instance) {
	if inst.busy || inst.dead {
		return
	}
	pool := p.idle[inst.fn]
	for i, cand := range pool {
		if cand == inst {
			p.idle[inst.fn] = append(pool[:i], pool[i+1:]...)
			break
		}
	}
	inst.dead = true
	inst.aliveTo = p.k.Now()
	p.countByFn[inst.fn]--
}

// Run executes the simulation until the event queue drains.
func (p *Platform) Run() error {
	if err := p.k.Run(); err != nil {
		return fmt.Errorf("faas: %w", err)
	}
	// Close lifetimes of instances still alive.
	for _, inst := range p.instances {
		if !inst.dead {
			inst.aliveTo = p.k.Now()
		}
	}
	return nil
}

// InstanceSeconds returns the total instance lifetime (the pay-per-use cost
// proxy; FaaS bills only while instances exist).
func (p *Platform) InstanceSeconds() float64 {
	s := 0.0
	for _, inst := range p.instances {
		s += float64(inst.aliveTo - inst.aliveFrom)
	}
	return s
}

// Report summarizes platform behaviour.
type Report struct {
	Invocations     int
	ColdStarts      int
	ColdStartPct    float64
	MeanLatency     float64
	P50Latency      float64
	P99Latency      float64
	InstanceSeconds float64
}

// BuildReport computes the summary over completed invocations.
func (p *Platform) BuildReport() Report {
	rep := Report{Invocations: len(p.done), InstanceSeconds: p.InstanceSeconds()}
	if len(p.done) == 0 {
		return rep
	}
	lats := make([]float64, len(p.done))
	for i, iv := range p.done {
		lats[i] = iv.Latency()
		if iv.Cold {
			rep.ColdStarts++
		}
	}
	sort.Float64s(lats)
	rep.ColdStartPct = 100 * float64(rep.ColdStarts) / float64(len(p.done))
	rep.MeanLatency = stats.Mean(lats)
	rep.P50Latency = stats.Percentile(lats, 50)
	rep.P99Latency = stats.Percentile(lats, 99)
	return rep
}

// Microservice is the always-on baseline: k instances of one service with a
// shared FCFS queue. It answers the serverless-vs-microservices operational
// trade-off question (§6.4): no cold starts and lower tail latency, but the
// operator pays for idle capacity.
type Microservice struct {
	Instances int
	ExecMean  float64
	ExecSigma float64
	Seed      int64
}

// Simulate processes arrivals and returns (report, always-on instance
// seconds over the horizon).
func (m Microservice) Simulate(arrivals []sim.Time) (Report, error) {
	if m.Instances < 1 {
		return Report{}, fmt.Errorf("faas: microservice with %d instances", m.Instances)
	}
	k := sim.NewKernel(m.Seed)
	freeAt := make([]sim.Time, m.Instances)
	var lats []float64
	mu := math.Log(m.ExecMean) - m.ExecSigma*m.ExecSigma/2
	dist := sim.LogNormal{Mu: mu, Sigma: m.ExecSigma}
	var horizon sim.Time
	for _, at := range arrivals {
		// Earliest-free instance.
		best := 0
		for i := 1; i < m.Instances; i++ {
			if freeAt[i] < freeAt[best] {
				best = i
			}
		}
		start := at
		if freeAt[best] > start {
			start = freeAt[best]
		}
		exec := sim.Duration(dist.Sample(k.Rand("exec")))
		end := start + exec
		freeAt[best] = end
		lats = append(lats, float64(end-at))
		if end > horizon {
			horizon = end
		}
	}
	rep := Report{Invocations: len(arrivals)}
	if len(lats) > 0 {
		sort.Float64s(lats)
		rep.MeanLatency = stats.Mean(lats)
		rep.P50Latency = stats.Percentile(lats, 50)
		rep.P99Latency = stats.Percentile(lats, 99)
	}
	rep.InstanceSeconds = float64(horizon) * float64(m.Instances)
	return rep, nil
}
