package faas

import (
	"fmt"
	"math/rand"

	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// Table7Row is one reproduced row of Table 7 (the serverless studies).
type Table7Row struct {
	Study   string
	Feature string
	Finding string
	Value   float64
}

// ServerlessPrinciples are the three defining principles of serverless
// computing from the SPEC-RG vision paper ('17).
func ServerlessPrinciples() []string {
	return []string{
		"operational logic is abstracted away from the users",
		"users pay only for the resources they need, at fine granularity",
		"the computing model is event-driven with elastic scaling",
	}
}

// ReferenceComponents are the common processes/components the SPEC-RG FaaS
// reference architecture ('19) identified across ~50 surveyed platforms.
func ReferenceComponents() []string {
	return []string{
		"trigger/event source", "router", "scheduler", "instance pool",
		"function registry", "autoscaler", "state store", "monitoring",
	}
}

// ComparisonResult is the serverless-vs-microservices operational study.
type ComparisonResult struct {
	Serverless Report
	Micro      Report
	// CostRatio is serverless instance-seconds / microservice
	// instance-seconds (< 1 means serverless is cheaper).
	CostRatio float64
	// TailPenalty is serverless P99 / microservice P99 (> 1 means serverless
	// pays a cold-start tail).
	TailPenalty float64
}

// RunComparison drives the same bursty arrival trace through the FaaS
// platform and an always-on microservice deployment sized for the peak.
func RunComparison(invocations int, seed int64) (*ComparisonResult, error) {
	// Bursty arrivals with long idle gaps: the regime where serverless wins
	// on cost.
	arr := workload.FlashcrowdArrivals{BaseRate: 0.02, StartAt: 2000, Spike: 30, HalfLife: 500}
	times := arr.Times(invocations, rand.New(rand.NewSource(seed)))

	p := NewPlatform(DefaultPlatformConfig())
	if err := p.Register(Function{Name: "handler", ExecMean: 0.4, ExecSigma: 0.4, MemoryMB: 256}); err != nil {
		return nil, err
	}
	for _, at := range times {
		if err := p.ScheduleInvocation(at, "handler", nil); err != nil {
			return nil, err
		}
	}
	if err := p.Run(); err != nil {
		return nil, err
	}
	sRep := p.BuildReport()

	micro := Microservice{Instances: 12, ExecMean: 0.4, ExecSigma: 0.4, Seed: seed}
	mRep, err := micro.Simulate(times)
	if err != nil {
		return nil, err
	}

	res := &ComparisonResult{Serverless: sRep, Micro: mRep}
	if mRep.InstanceSeconds > 0 {
		res.CostRatio = sRep.InstanceSeconds / mRep.InstanceSeconds
	}
	if mRep.P99Latency > 0 {
		res.TailPenalty = sRep.P99Latency / mRep.P99Latency
	}
	return res, nil
}

// WorkflowOverheadResult is the Fission-Workflows engine study.
type WorkflowOverheadResult struct {
	MeanDuration  float64
	MeanOverhead  float64
	OverheadShare float64 // orchestration / total
	Workflows     int
}

// RunWorkflowStudy executes fan-out/fan-in workflows and measures the
// orchestration overhead share.
func RunWorkflowStudy(workflows int, seed int64) (*WorkflowOverheadResult, error) {
	p := NewPlatform(DefaultPlatformConfig())
	for _, fn := range []string{"split", "work", "merge"} {
		if err := p.Register(Function{Name: fn, ExecMean: 0.3, ExecSigma: 0.3, MemoryMB: 128}); err != nil {
			return nil, err
		}
	}
	eng := &Engine{Platform: p, StepOverhead: 0.02}
	wf := Seq(Task("split"), Par(Task("work"), Task("work"), Task("work"), Task("work")), Task("merge"))

	var results []WorkflowResult
	for i := 0; i < workflows; i++ {
		at := sim.Time(float64(i) * 30)
		if err := eng.ScheduleWorkflow(at, wf, func(r WorkflowResult) { results = append(results, r) }); err != nil {
			return nil, err
		}
	}
	if err := p.Run(); err != nil {
		return nil, err
	}
	if len(results) != workflows {
		return nil, fmt.Errorf("faas: %d/%d workflows completed", len(results), workflows)
	}
	out := &WorkflowOverheadResult{Workflows: len(results)}
	var durSum, ovSum float64
	for _, r := range results {
		durSum += r.Duration()
		ovSum += r.OrchestrationOverhead
	}
	out.MeanDuration = durSum / float64(len(results))
	out.MeanOverhead = ovSum / float64(len(results))
	if out.MeanDuration > 0 {
		out.OverheadShare = out.MeanOverhead / out.MeanDuration
	}
	return out, nil
}

// EvolutionEras documents the '18 "Serverless is More" finding: the
// technology waves that serverless builds on, with the capability each
// contributed. Its emergence "could not have happened ten years ago".
func EvolutionEras() []struct{ Era, Contribution string } {
	return []struct{ Era, Contribution string }{
		{"1990s shared hosting", "multi-tenant operation"},
		{"2000s grid/utility computing", "pay-per-use resource pools"},
		{"2006+ IaaS clouds", "elastic virtual infrastructure"},
		{"2010s PaaS", "managed application runtimes"},
		{"2013+ containers", "second-scale lightweight isolation"},
		{"2015+ FaaS", "event-driven managed functions"},
	}
}

// RunTable7 executes the serverless studies and renders the rows.
func RunTable7(seed int64) ([]Table7Row, error) {
	var rows []Table7Row

	rows = append(rows, Table7Row{
		Study: "van Eyk'17 (SPEC RG)", Feature: "Terminology & principles",
		Finding: fmt.Sprintf("%d defining principles catalogued", len(ServerlessPrinciples())),
		Value:   float64(len(ServerlessPrinciples())),
	})

	cmp, err := RunComparison(400, seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table7Row{
		Study: "van Eyk'18 (ICPEW)", Feature: "Performance challenges",
		Finding: fmt.Sprintf("cold starts on %.1f%% of invocations; P99 %.2fs vs %.2fs microservice (%.1fx tail); cost ratio %.2f",
			cmp.Serverless.ColdStartPct, cmp.Serverless.P99Latency, cmp.Micro.P99Latency, cmp.TailPenalty, cmp.CostRatio),
		Value: cmp.TailPenalty,
	})

	rows = append(rows, Table7Row{
		Study: "van Eyk'18 (IC)", Feature: "Evolution",
		Finding: fmt.Sprintf("%d technology eras feed serverless; emergence impossible a decade earlier", len(EvolutionEras())),
		Value:   float64(len(EvolutionEras())),
	})

	wf, err := RunWorkflowStudy(40, seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table7Row{
		Study: "Fission WF ('17-'19)", Feature: "Workflow engine",
		Finding: fmt.Sprintf("fan-out workflows run with %.1f%% orchestration overhead (%.2fs of %.2fs)",
			100*wf.OverheadShare, wf.MeanOverhead, wf.MeanDuration),
		Value: wf.OverheadShare,
	})

	rows = append(rows, Table7Row{
		Study: "van Eyk'19 (ICPE)", Feature: "Reference architecture",
		Finding: fmt.Sprintf("%d common components identified across platforms", len(ReferenceComponents())),
		Value:   float64(len(ReferenceComponents())),
	})
	return rows, nil
}
