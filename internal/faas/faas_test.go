package faas

import (
	"testing"

	"atlarge/internal/sim"
)

func TestRegisterValidation(t *testing.T) {
	p := NewPlatform(DefaultPlatformConfig())
	if err := p.Register(Function{Name: ""}); err == nil {
		t.Error("unnamed function accepted")
	}
	if err := p.Register(Function{Name: "f", ExecMean: 0}); err == nil {
		t.Error("zero exec mean accepted")
	}
	if err := p.Register(Function{Name: "f", ExecMean: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(Function{Name: "f", ExecMean: 1}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := p.ScheduleInvocation(0, "ghost", nil); err == nil {
		t.Error("unknown function invocation accepted")
	}
}

func TestFirstInvocationIsCold(t *testing.T) {
	p := NewPlatform(DefaultPlatformConfig())
	if err := p.Register(Function{Name: "f", ExecMean: 0.5, ExecSigma: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := p.ScheduleInvocation(0, "f", nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	ivs := p.Invocations()
	if len(ivs) != 1 {
		t.Fatalf("invocations = %d", len(ivs))
	}
	if !ivs[0].Cold {
		t.Error("first invocation was not cold")
	}
	if ivs[0].Latency() < p.cfg.ColdStart {
		t.Errorf("latency %v below cold start %v", ivs[0].Latency(), p.cfg.ColdStart)
	}
}

func TestWarmReuseWithinKeepAlive(t *testing.T) {
	p := NewPlatform(DefaultPlatformConfig())
	if err := p.Register(Function{Name: "f", ExecMean: 0.5, ExecSigma: 0.1}); err != nil {
		t.Fatal(err)
	}
	// Second invocation arrives well after the first finishes but inside
	// keep-alive.
	if err := p.ScheduleInvocation(0, "f", nil); err != nil {
		t.Fatal(err)
	}
	if err := p.ScheduleInvocation(100, "f", nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	ivs := p.Invocations()
	if len(ivs) != 2 {
		t.Fatalf("invocations = %d", len(ivs))
	}
	if ivs[1].Cold {
		t.Error("second invocation cold despite warm pool")
	}
	if ivs[1].Latency() >= ivs[0].Latency() {
		t.Errorf("warm latency %v not below cold latency %v", ivs[1].Latency(), ivs[0].Latency())
	}
}

func TestColdAfterKeepAliveExpiry(t *testing.T) {
	cfg := DefaultPlatformConfig()
	cfg.KeepAlive = 10
	p := NewPlatform(cfg)
	if err := p.Register(Function{Name: "f", ExecMean: 0.5, ExecSigma: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := p.ScheduleInvocation(0, "f", nil); err != nil {
		t.Fatal(err)
	}
	if err := p.ScheduleInvocation(1000, "f", nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	ivs := p.Invocations()
	if !ivs[1].Cold {
		t.Error("invocation after expiry was warm")
	}
}

func TestConcurrencyCapQueues(t *testing.T) {
	cfg := DefaultPlatformConfig()
	cfg.MaxConcurrent = 1
	p := NewPlatform(cfg)
	if err := p.Register(Function{Name: "f", ExecMean: 10, ExecSigma: 0.01}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.ScheduleInvocation(sim.Time(i), "f", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	ivs := p.Invocations()
	if len(ivs) != 3 {
		t.Fatalf("invocations = %d, want 3 (queued work served)", len(ivs))
	}
	cold := 0
	for _, iv := range ivs {
		if iv.Cold {
			cold++
		}
	}
	if cold != 1 {
		t.Errorf("cold starts = %d, want 1 (cap forces reuse)", cold)
	}
}

func TestInstanceSecondsPositive(t *testing.T) {
	p := NewPlatform(DefaultPlatformConfig())
	if err := p.Register(Function{Name: "f", ExecMean: 1, ExecSigma: 0.2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := p.ScheduleInvocation(sim.Time(i*2), "f", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if p.InstanceSeconds() <= 0 {
		t.Error("no instance seconds accrued")
	}
	rep := p.BuildReport()
	if rep.Invocations != 5 || rep.MeanLatency <= 0 || rep.P99Latency < rep.P50Latency {
		t.Errorf("report = %+v", rep)
	}
}

func TestMicroserviceBaseline(t *testing.T) {
	times := []sim.Time{0, 0.1, 0.2, 5, 5.1}
	rep, err := Microservice{Instances: 2, ExecMean: 0.5, ExecSigma: 0.1, Seed: 1}.Simulate(times)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Invocations != 5 {
		t.Errorf("invocations = %d", rep.Invocations)
	}
	if rep.ColdStarts != 0 {
		t.Error("microservice reported cold starts")
	}
	if rep.InstanceSeconds <= 0 {
		t.Error("no always-on cost")
	}
	if _, err := (Microservice{Instances: 0}).Simulate(times); err == nil {
		t.Error("zero instances accepted")
	}
}

func TestComparisonShapes(t *testing.T) {
	res, err := RunComparison(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Serverless pays a cold-start tail; microservice pays idle cost.
	if res.Serverless.ColdStartPct <= 0 {
		t.Error("no cold starts in serverless run")
	}
	if res.CostRatio >= 1 {
		t.Errorf("cost ratio = %v, want < 1 (serverless cheaper on bursty workload)", res.CostRatio)
	}
	if res.TailPenalty <= 1 {
		t.Errorf("tail penalty = %v, want > 1 (cold-start tail)", res.TailPenalty)
	}
}

func TestWorkflowValidate(t *testing.T) {
	if err := (&WorkflowNode{}).Validate(); err == nil {
		t.Error("empty node accepted")
	}
	bad := &WorkflowNode{Task: "x", Sequence: []*WorkflowNode{Task("y")}}
	if err := bad.Validate(); err == nil {
		t.Error("ambiguous node accepted")
	}
	good := Seq(Task("a"), Par(Task("b"), Task("c")))
	if err := good.Validate(); err != nil {
		t.Errorf("valid workflow rejected: %v", err)
	}
	tasks := good.Tasks()
	if len(tasks) != 3 || tasks[0] != "a" {
		t.Errorf("Tasks = %v", tasks)
	}
}

func TestWorkflowUnknownFunctionRejected(t *testing.T) {
	p := NewPlatform(DefaultPlatformConfig())
	eng := &Engine{Platform: p, StepOverhead: 0.01}
	if err := eng.ScheduleWorkflow(0, Task("ghost"), nil); err == nil {
		t.Error("workflow with unknown function accepted")
	}
}

func TestWorkflowSequenceAndParallelSemantics(t *testing.T) {
	cfg := DefaultPlatformConfig()
	cfg.ColdStart = 0 // isolate execution semantics
	p := NewPlatform(cfg)
	for _, fn := range []string{"a", "b", "c"} {
		if err := p.Register(Function{Name: fn, ExecMean: 1, ExecSigma: 0.0001}); err != nil {
			t.Fatal(err)
		}
	}
	eng := &Engine{Platform: p, StepOverhead: 0}
	var seqRes, parRes WorkflowResult
	if err := eng.ScheduleWorkflow(0, Seq(Task("a"), Task("b"), Task("c")), func(r WorkflowResult) { seqRes = r }); err != nil {
		t.Fatal(err)
	}
	if err := eng.ScheduleWorkflow(1000, Par(Task("a"), Task("b"), Task("c")), func(r WorkflowResult) { parRes = r }); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if seqRes.Steps != 3 || parRes.Steps != 3 {
		t.Fatalf("steps = %d/%d", seqRes.Steps, parRes.Steps)
	}
	// Sequence ~3s, parallel ~1s.
	if seqRes.Duration() < 2.5 {
		t.Errorf("sequence duration = %v, want ~3", seqRes.Duration())
	}
	if parRes.Duration() > 2 {
		t.Errorf("parallel duration = %v, want ~1", parRes.Duration())
	}
}

func TestWorkflowStudyOverheadBounded(t *testing.T) {
	res, err := RunWorkflowStudy(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workflows != 20 {
		t.Fatalf("workflows = %d", res.Workflows)
	}
	if res.OverheadShare <= 0 || res.OverheadShare > 0.5 {
		t.Errorf("overhead share = %v, want (0, 0.5]", res.OverheadShare)
	}
}

func TestRunTable7AllRows(t *testing.T) {
	rows, err := RunTable7(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Finding == "" || r.Study == "" {
			t.Errorf("incomplete row %+v", r)
		}
	}
}

func TestCatalogs(t *testing.T) {
	if len(ServerlessPrinciples()) != 3 {
		t.Error("serverless principles != 3")
	}
	if len(ReferenceComponents()) < 6 {
		t.Error("reference components too few")
	}
	if len(EvolutionEras()) < 5 {
		t.Error("evolution eras too few")
	}
}
