package faas

import (
	"fmt"

	"atlarge/internal/sim"
)

// WorkflowNode is a step in a serverless workflow (Fission-Workflows style):
// either a task (function invocation) or a composite (sequence / parallel).
type WorkflowNode struct {
	// Task names a function; set for leaves.
	Task string
	// Sequence runs children one after another.
	Sequence []*WorkflowNode
	// Parallel runs children concurrently and joins.
	Parallel []*WorkflowNode
}

// Validate checks the node is exactly one of task/sequence/parallel.
func (n *WorkflowNode) Validate() error {
	set := 0
	if n.Task != "" {
		set++
	}
	if len(n.Sequence) > 0 {
		set++
	}
	if len(n.Parallel) > 0 {
		set++
	}
	if set != 1 {
		return fmt.Errorf("faas: workflow node must be exactly one of task/sequence/parallel")
	}
	for _, c := range append(append([]*WorkflowNode{}, n.Sequence...), n.Parallel...) {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Tasks returns the leaf function names in execution order.
func (n *WorkflowNode) Tasks() []string {
	if n.Task != "" {
		return []string{n.Task}
	}
	var out []string
	for _, c := range n.Sequence {
		out = append(out, c.Tasks()...)
	}
	for _, c := range n.Parallel {
		out = append(out, c.Tasks()...)
	}
	return out
}

// Seq builds a sequence node.
func Seq(children ...*WorkflowNode) *WorkflowNode { return &WorkflowNode{Sequence: children} }

// Par builds a parallel node.
func Par(children ...*WorkflowNode) *WorkflowNode { return &WorkflowNode{Parallel: children} }

// Task builds a leaf node.
func Task(fn string) *WorkflowNode { return &WorkflowNode{Task: fn} }

// WorkflowResult records one workflow execution.
type WorkflowResult struct {
	Start sim.Time
	End   sim.Time
	// Steps is the number of function invocations performed.
	Steps int
	// OrchestrationOverhead is the total engine-added delay (s).
	OrchestrationOverhead float64
}

// Duration returns the workflow makespan in seconds.
func (r WorkflowResult) Duration() float64 { return float64(r.End - r.Start) }

// Engine executes workflows on a Platform, adding a fixed orchestration
// latency before each function invocation (the scheduling/state-store hop of
// a workflow engine).
type Engine struct {
	Platform *Platform
	// StepOverhead is the orchestration delay per invocation (s).
	StepOverhead float64
}

// ScheduleWorkflow registers a workflow execution starting at the given
// time; the result lands in results when the simulation runs.
func (e *Engine) ScheduleWorkflow(at sim.Time, wf *WorkflowNode, onDone func(WorkflowResult)) error {
	if err := wf.Validate(); err != nil {
		return err
	}
	// Pre-validate all referenced functions.
	for _, fn := range wf.Tasks() {
		if _, ok := e.Platform.functions[fn]; !ok {
			return fmt.Errorf("faas: workflow references unknown function %q", fn)
		}
	}
	e.Platform.Kernel().At(at, "workflow-start", func(k *sim.Kernel) {
		res := &WorkflowResult{Start: k.Now()}
		e.exec(wf, res, func() {
			res.End = e.Platform.Kernel().Now()
			if onDone != nil {
				onDone(*res)
			}
		})
	})
	return nil
}

// exec runs a node and calls done when it (and all children) complete.
func (e *Engine) exec(n *WorkflowNode, res *WorkflowResult, done func()) {
	k := e.Platform.Kernel()
	switch {
	case n.Task != "":
		res.Steps++
		res.OrchestrationOverhead += e.StepOverhead
		k.After(sim.Duration(e.StepOverhead), "orchestrate", func(k *sim.Kernel) {
			// The error was pre-validated in ScheduleWorkflow.
			_ = e.Platform.ScheduleInvocation(k.Now(), n.Task, func(Invocation) { done() })
		})
	case len(n.Sequence) > 0:
		var runFrom func(i int)
		runFrom = func(i int) {
			if i == len(n.Sequence) {
				done()
				return
			}
			e.exec(n.Sequence[i], res, func() { runFrom(i + 1) })
		}
		runFrom(0)
	case len(n.Parallel) > 0:
		remaining := len(n.Parallel)
		for _, c := range n.Parallel {
			e.exec(c, res, func() {
				remaining--
				if remaining == 0 {
					done()
				}
			})
		}
	default:
		done()
	}
}
